package repro_test

// Cross-module integration tests: these validate consistency *between*
// subsystems (strategies vs Voronoi tessellations, simulation cost vs
// link-routing totals, configuration graph vs the live strategy), which no
// single package's unit tests can see.

import (
	"math"
	"testing"

	"repro"
	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/confgraph"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/voronoi"
	"repro/internal/xrand"
)

func TestNearestStrategyAgreesWithVoronoi(t *testing.T) {
	// Strategy I must serve every request at exactly the Voronoi distance
	// of the request's file.
	g := grid.New(12, grid.Torus)
	p := cache.Place(g.N(), 2, dist.NewUniform(30), cache.WithReplacement,
		xrand.NewSource(3).Stream(0))
	strat := core.NewNearestReplica(g, p)
	loads := ballsbins.NewLoads(g.N())
	r := xrand.NewSource(4).Stream(0)
	for j := 0; j < p.K(); j++ {
		if len(p.Replicas(j)) == 0 {
			continue
		}
		tess := voronoi.Compute(g, p, j, r)
		for u := 0; u < g.N(); u += 7 {
			a := strat.Assign(core.Request{Origin: int32(u), File: int32(j)}, loads, r)
			if a.Hops != tess.Dist[u] {
				t.Fatalf("file %d origin %d: strategy %d hops, voronoi %d", j, u, a.Hops, tess.Dist[u])
			}
		}
	}
}

func TestSimCostMatchesRoutedLinkTotals(t *testing.T) {
	// The engine's mean cost times requests must equal total link
	// crossings: the scalar metric and the wire-level metric are two
	// views of the same deliveries.
	g := grid.New(10, grid.Torus)
	p := cache.Place(g.N(), 3, dist.NewUniform(40), cache.WithReplacement,
		xrand.NewSource(5).Stream(0))
	strat := core.NewTwoChoice(g, p, core.TwoChoiceConfig{Radius: 4})
	loads := ballsbins.NewLoads(g.N())
	links := routing.NewLinkLoads(g)
	r := xrand.NewSource(6).Stream(0)
	var hops int64
	const reqs = 400
	for i := 0; i < reqs; i++ {
		file := r.IntN(p.K())
		if len(p.Replicas(file)) == 0 {
			continue
		}
		req := core.Request{Origin: int32(r.IntN(g.N())), File: int32(file)}
		a := strat.Assign(req, loads, r)
		loads.Add(int(a.Server))
		hops += int64(a.Hops)
		links.Route(int(req.Origin), int(a.Server))
	}
	if links.Total() != hops {
		t.Fatalf("link crossings %d != summed hops %d", links.Total(), hops)
	}
}

func TestConfigGraphPredictsStrategyIILoad(t *testing.T) {
	// Theorem 4's proof route: Strategy II ≈ edge sampling on H followed
	// by lesser-loaded placement (Theorem 5). The two processes must land
	// at similar average max loads on the same world.
	g := grid.New(45, grid.Torus)
	n := g.N()
	m := int(math.Pow(float64(n), 0.4))
	radius := 14
	src := xrand.NewSource(7)
	const trials = 4
	var simSum, graphSum float64
	for i := 0; i < trials; i++ {
		p := cache.Place(n, m, dist.NewUniform(n), cache.WithReplacement, src.Stream(uint64(i)))
		// Live Strategy II.
		strat := core.NewTwoChoice(g, p, core.TwoChoiceConfig{Radius: radius})
		loads := ballsbins.NewLoads(n)
		r := src.Stream(uint64(100 + i))
		for q := 0; q < n; q++ {
			file := r.IntN(p.K())
			if len(p.Replicas(file)) == 0 {
				continue
			}
			a := strat.Assign(core.Request{Origin: int32(r.IntN(n)), File: int32(file)}, loads, r)
			loads.Add(int(a.Server))
		}
		simSum += float64(loads.Max())
		// Theorem 5 process on H.
		h := confgraph.Build(g, p, radius)
		graphSum += float64(ballsbins.GraphAllocate(h, n, src.Stream(uint64(200+i))).Max())
	}
	simAvg, graphAvg := simSum/trials, graphSum/trials
	if diff := math.Abs(simAvg - graphAvg); diff > 1.5 {
		t.Fatalf("Strategy II max load %.2f vs Theorem 5 process %.2f differ by %.2f (> 1.5)",
			simAvg, graphAvg, diff)
	}
}

func TestStrategyOrderingInvariant(t *testing.T) {
	// Global sanity across the whole stack: oracle ≤ two-choices ≤
	// one-choice in average max load, on the same worlds, via the public
	// facade only.
	mk := func(kind sim.StrategyKind) repro.Config {
		return repro.Config{
			Side: 30, K: 100, M: 8, Seed: 11,
			Strategy: repro.StrategySpec{Kind: kind, Radius: repro.RadiusUnbounded},
		}
	}
	const trials = 12
	orc, err := repro.Run(mk(repro.Oracle), trials, 0)
	if err != nil {
		t.Fatal(err)
	}
	two, err := repro.Run(mk(repro.TwoChoices), trials, 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := repro.Run(mk(repro.OneChoiceRandom), trials, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(orc.MaxLoad.Mean() <= two.MaxLoad.Mean()+0.3) {
		t.Fatalf("oracle %.2f above two-choices %.2f", orc.MaxLoad.Mean(), two.MaxLoad.Mean())
	}
	if !(two.MaxLoad.Mean() < one.MaxLoad.Mean()) {
		t.Fatalf("two-choices %.2f not below one-choice %.2f", two.MaxLoad.Mean(), one.MaxLoad.Mean())
	}
}

func TestTheorem4ShapeEndToEnd(t *testing.T) {
	// The headline claim, end to end through the facade: in the
	// above-threshold regime, Strategy II's max load grows dramatically
	// slower than Strategy I's between two network sizes.
	if testing.Short() {
		t.Skip("multi-size study skipped in -short")
	}
	run := func(side int, kind sim.StrategyKind, radius int) float64 {
		cfg := repro.Config{Side: side, K: side * side, M: int(math.Pow(float64(side*side), 0.4)), Seed: 13}
		cfg.Strategy = repro.StrategySpec{Kind: kind, Radius: radius}
		agg, err := repro.Run(cfg, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		return agg.MaxLoad.Mean()
	}
	rad := func(side int) int {
		return int(math.Ceil(math.Pow(float64(side*side), 0.35)))
	}
	growthI := run(60, repro.Nearest, 0) - run(15, repro.Nearest, 0)
	growthII := run(60, repro.TwoChoices, rad(60)) - run(15, repro.TwoChoices, rad(15))
	if growthII >= growthI {
		t.Fatalf("Strategy II growth %.2f not below Strategy I growth %.2f across 16x n",
			growthII, growthI)
	}
}
