package repro_test

// bench_test.go regenerates every table and figure of the paper's
// evaluation as testing.B benchmarks, plus ablation benches for the
// design choices called out in DESIGN.md §4 (search procedures, candidate
// sampling, miss policies, with/without-replacement choices).
//
// Each BenchmarkFigureN iteration executes the figure's full parameter
// sweep at a reduced trial count; run with -benchtime=1x for a single
// regeneration, or use cmd/figures for CSV output at any preset.

import (
	"testing"

	"repro"
	"repro/internal/experiments"
)

// benchOpt keeps one benchmark iteration to a few seconds while exercising
// the exact code paths of the paper-scale runs.
var benchOpt = experiments.Options{Trials: 3, Seed: 2017}

func benchTable(b *testing.B, run func(experiments.Options) (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := run(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Series) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure1 regenerates Fig. 1 (Strategy I max load vs n).
func BenchmarkFigure1(b *testing.B) { benchTable(b, experiments.Figure1) }

// BenchmarkFigure2 regenerates Fig. 2 (Strategy I cost vs cache size).
func BenchmarkFigure2(b *testing.B) { benchTable(b, experiments.Figure2) }

// BenchmarkFigure3And4 regenerates Figs. 3 and 4 from shared simulations
// (Strategy II at r=∞: max load and cost vs n up to 1.2e5 servers).
func BenchmarkFigure3And4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, c, err := experiments.Figure34(experiments.Options{Trials: 1, Seed: 2017})
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Series) == 0 || len(c.Series) == 0 {
			b.Fatal("empty tables")
		}
	}
}

// BenchmarkFigure5 regenerates Fig. 5 (max load vs cost trade-off).
func BenchmarkFigure5(b *testing.B) { benchTable(b, experiments.Figure5) }

// BenchmarkZipfCostTable regenerates the Theorem 3 / Eq. (1) Zipf table.
func BenchmarkZipfCostTable(b *testing.B) { benchTable(b, experiments.ZipfCostTable) }

// BenchmarkUniformCostLaw regenerates the C = Θ(√(K/M)) validation.
func BenchmarkUniformCostLaw(b *testing.B) { benchTable(b, experiments.UniformCostLaw) }

// BenchmarkTheorem12Fit regenerates the Θ(log n) fits (Theorems 1-2).
func BenchmarkTheorem12Fit(b *testing.B) { benchTable(b, experiments.Theorem12Fit) }

// BenchmarkTheorem4Regimes regenerates the α+2β threshold study (Thm 4).
func BenchmarkTheorem4Regimes(b *testing.B) { benchTable(b, experiments.Theorem4Regimes) }

// BenchmarkLemma1Cells regenerates the Voronoi max-cell study (Lemma 1).
func BenchmarkLemma1Cells(b *testing.B) { benchTable(b, experiments.Lemma1Cells) }

// BenchmarkConfigGraphStats regenerates the H-regularity study (Lemma 3).
func BenchmarkConfigGraphStats(b *testing.B) {
	benchTable(b, experiments.ConfigGraphStats)
}

// BenchmarkExample3 regenerates the disjoint-subproblem study (Example 3).
func BenchmarkExample3(b *testing.B) { benchTable(b, experiments.Example3Study) }

// BenchmarkSupermarket regenerates the §VI queueing-conjecture study.
func BenchmarkSupermarket(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Supermarket(experiments.Options{Trials: 1, Seed: 2017})
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Series) == 0 {
			b.Fatal("empty table")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §4): same workload, alternative mechanism.
// ---------------------------------------------------------------------------

// nearestWorldCfg is a Fig. 2-like workload (n=2025, K=2000, M=1): sparse
// replication where the nearest-replica search procedure matters most.
func nearestWorldCfg(kind repro.StrategySpec) repro.Config {
	return repro.Config{Side: 45, K: 2000, M: 1, Strategy: kind, Seed: 7}
}

// BenchmarkAblationNearestAdaptive measures Strategy I with the adaptive
// search (production default).
func BenchmarkAblationNearestAdaptive(b *testing.B) {
	cfg := nearestWorldCfg(repro.StrategySpec{Kind: repro.Nearest})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunTrial(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTwoChoiceRejection measures Strategy II's rejection
// sampler on a dense-replica world (its fast path).
func BenchmarkAblationTwoChoiceRejection(b *testing.B) {
	cfg := repro.Config{Side: 45, K: 100, M: 20, Seed: 7,
		Strategy: repro.StrategySpec{Kind: repro.TwoChoices, Radius: 8}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunTrial(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTwoChoiceExact measures the same workload forced down
// the exact-filter path via distinct-candidate sampling.
func BenchmarkAblationTwoChoiceExact(b *testing.B) {
	cfg := repro.Config{Side: 45, K: 100, M: 20, Seed: 7,
		Strategy: repro.StrategySpec{Kind: repro.TwoChoices, Radius: 8, WithoutReplacement: true}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunTrial(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMissPolicies measures the three miss policies on a
// miss-heavy world (K >> nM).
func BenchmarkAblationMissPolicies(b *testing.B) {
	for _, mp := range []repro.MissPolicy{repro.MissResample, repro.MissEscalate, repro.MissOrigin} {
		b.Run(mp.String(), func(b *testing.B) {
			cfg := repro.Config{Side: 31, K: 4000, M: 1, MissPolicy: mp, Seed: 7,
				Strategy: repro.StrategySpec{Kind: repro.TwoChoices, Radius: 5}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := repro.RunTrial(cfg, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationChoices sweeps d to show diminishing returns beyond
// d = 2 (the classical two-choices phenomenon).
func BenchmarkAblationChoices(b *testing.B) {
	for _, d := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "d=1", 2: "d=2", 4: "d=4"}[d], func(b *testing.B) {
			cfg := repro.Config{Side: 45, K: 200, M: 10, Seed: 7,
				Strategy: repro.StrategySpec{Kind: repro.TwoChoices, Radius: repro.RadiusUnbounded, Choices: d}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := repro.RunTrial(cfg, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrialLargestScale measures one Fig. 3 trial at the paper's
// largest point (n ≈ 1.2e5, M = 100) — the library's heaviest single run.
func BenchmarkTrialLargestScale(b *testing.B) {
	cfg := repro.Config{Side: 346, K: 2000, M: 100, Seed: 7,
		Strategy: repro.StrategySpec{Kind: repro.TwoChoices, Radius: repro.RadiusUnbounded}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunTrial(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPopularityDrift regenerates the dynamic-popularity study.
func BenchmarkPopularityDrift(b *testing.B) { benchTable(b, experiments.PopularityDrift) }

// BenchmarkDirectoryOverhead regenerates the DHT control-cost study.
func BenchmarkDirectoryOverhead(b *testing.B) { benchTable(b, experiments.DirectoryOverhead) }

// BenchmarkHeavyLoad regenerates the heavily-loaded-case study.
func BenchmarkHeavyLoad(b *testing.B) { benchTable(b, experiments.HeavyLoad) }

// BenchmarkPlacementPolicies regenerates the placement-policy ablation.
func BenchmarkPlacementPolicies(b *testing.B) { benchTable(b, experiments.PlacementPolicies) }

// BenchmarkLinkCongestion regenerates the wire-congestion study.
func BenchmarkLinkCongestion(b *testing.B) { benchTable(b, experiments.LinkCongestion) }

// BenchmarkBetaChoice regenerates the (1+β)-choice sweep.
func BenchmarkBetaChoice(b *testing.B) { benchTable(b, experiments.BetaChoice) }
