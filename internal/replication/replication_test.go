package replication

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		Proportional: "proportional", SquareRoot: "sqrt",
		UniformPlace: "uniform", Capped: "capped", Policy(9): "Policy(9)",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"proportional": Proportional, "sqrt": SquareRoot,
		"square-root": SquareRoot, "uniform": UniformPlace, "capped": Capped,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestProportionalIsIdentity(t *testing.T) {
	pop := dist.NewZipf(50, 1.1)
	place := PlacementProfile(pop, Proportional, 0)
	for j := 0; j < 50; j++ {
		if place.P(j) != pop.P(j) {
			t.Fatalf("proportional changed P(%d)", j)
		}
	}
}

func TestSquareRootFlattens(t *testing.T) {
	pop := dist.NewZipf(100, 1.4)
	place := PlacementProfile(pop, SquareRoot, 0)
	// Sqrt placement compresses the head/tail ratio: (p0/pK)^(1/2).
	ratioPop := pop.P(0) / pop.P(99)
	ratioPlace := place.P(0) / place.P(99)
	if math.Abs(ratioPlace-math.Sqrt(ratioPop)) > 1e-9*ratioPop {
		t.Fatalf("sqrt ratio %v, want %v", ratioPlace, math.Sqrt(ratioPop))
	}
	// Still a distribution.
	s := 0.0
	for j := 0; j < place.K(); j++ {
		s += place.P(j)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("sqrt profile sums to %v", s)
	}
}

func TestUniformIgnoresPopularity(t *testing.T) {
	pop := dist.NewZipf(40, 2)
	place := PlacementProfile(pop, UniformPlace, 0)
	for j := 0; j < 40; j++ {
		if math.Abs(place.P(j)-1.0/40) > 1e-12 {
			t.Fatalf("uniform place P(%d) = %v", j, place.P(j))
		}
	}
}

func TestCappedBoundsMass(t *testing.T) {
	pop := dist.NewZipf(100, 1.5) // heavy head
	place := PlacementProfile(pop, Capped, 4)
	// After renormalization the max file mass can exceed cap/Σw slightly;
	// the defining property is that the *ratio* head/median shrinks and
	// no single file dominates: max mass ≤ 2 × 4/K is a safe envelope
	// given Σw ≥ 1/2 for this profile.
	maxP := 0.0
	for j := 0; j < place.K(); j++ {
		if place.P(j) > maxP {
			maxP = place.P(j)
		}
	}
	if maxP > 3*4.0/100 {
		t.Fatalf("capped max mass %v exceeds envelope %v", maxP, 3*4.0/100)
	}
	if maxP >= pop.P(0) {
		t.Fatalf("cap did not reduce head mass: %v vs %v", maxP, pop.P(0))
	}
	// Default factor path.
	place2 := PlacementProfile(pop, Capped, 0)
	if place2.K() != 100 {
		t.Fatal("default-cap profile broken")
	}
}

func TestPlacementProfilePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy did not panic")
		}
	}()
	PlacementProfile(dist.NewUniform(3), Policy(42), 0)
}

func TestMinExpectedReplicas(t *testing.T) {
	pop := dist.NewZipf(100, 1.2)
	n, m := 1000, 4
	prop := MinExpectedReplicas(PlacementProfile(pop, Proportional, 0), n, m)
	sq := MinExpectedReplicas(PlacementProfile(pop, SquareRoot, 0), n, m)
	uni := MinExpectedReplicas(PlacementProfile(pop, UniformPlace, 0), n, m)
	// Flattening placement raises the worst file's replica mass.
	if !(prop < sq && sq < uni) {
		t.Fatalf("min replicas not ordered: prop %v sqrt %v uniform %v", prop, sq, uni)
	}
	if math.Abs(uni-float64(n*m)/100) > 1e-9 {
		t.Fatalf("uniform min replicas %v, want %v", uni, float64(n*m)/100)
	}
}

func TestLoadSkew(t *testing.T) {
	pop := dist.NewZipf(50, 1.3)
	if s := LoadSkew(pop, PlacementProfile(pop, Proportional, 0)); math.Abs(s-1) > 1e-9 {
		t.Fatalf("proportional skew %v, want 1", s)
	}
	su := LoadSkew(pop, PlacementProfile(pop, UniformPlace, 0))
	ss := LoadSkew(pop, PlacementProfile(pop, SquareRoot, 0))
	// Uniform placement of a skewed catalog concentrates demand on the
	// head's few replicas: skew = K·p_0 > sqrt skew > 1.
	if !(su > ss && ss > 1) {
		t.Fatalf("skews not ordered: uniform %v sqrt %v", su, ss)
	}
	if math.Abs(su-50*pop.P(0)) > 1e-9 {
		t.Fatalf("uniform skew %v, want %v", su, 50*pop.P(0))
	}
}

func TestLoadSkewMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	LoadSkew(dist.NewUniform(3), dist.NewUniform(4))
}

func TestLoadSkewZeroPlacementMass(t *testing.T) {
	pop := dist.NewCustom([]float64{1, 1}, "pop")
	place := dist.NewCustom([]float64{1, 0}, "place")
	if s := LoadSkew(pop, place); !math.IsInf(s, 1) {
		t.Fatalf("uncacheable popular file should give +Inf skew, got %v", s)
	}
}
