// Package replication provides alternative cache content placement
// policies beyond the paper's proportional rule, expressed as weight
// transformations of the popularity profile:
//
//   - Proportional — the paper's baseline: cache i.i.d. ∝ p_j;
//   - SquareRoot — ∝ √p_j, the classic optimum for search/replication
//     trade-offs in unstructured networks (Cohen & Shenker);
//   - Uniform — ignore popularity entirely (every file equally likely);
//   - Capped — proportional but with per-file replica mass capped, the
//     mitigation Example 2 motivates (low-replication files strangle the
//     power of two choices).
//
// Each policy yields a dist.Popularity that cache.Place consumes, so all
// existing strategies, engines and experiments compose with it unchanged.
package replication

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// Policy transforms a popularity profile into a placement profile.
type Policy int

// Placement policies.
const (
	// Proportional caches ∝ p_j (the paper's model).
	Proportional Policy = iota
	// SquareRoot caches ∝ √p_j.
	SquareRoot
	// UniformPlace caches every file with equal probability.
	UniformPlace
	// Capped caches ∝ min(p_j, cap) with the cap chosen so no file
	// expects more than capFactor× the mean replica mass.
	Capped
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Proportional:
		return "proportional"
	case SquareRoot:
		return "sqrt"
	case UniformPlace:
		return "uniform"
	case Capped:
		return "capped"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a CLI name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "proportional":
		return Proportional, nil
	case "sqrt", "square-root":
		return SquareRoot, nil
	case "uniform":
		return UniformPlace, nil
	case "capped":
		return Capped, nil
	}
	return 0, fmt.Errorf("replication: unknown policy %q", s)
}

// DefaultCapFactor bounds any file's placement mass to 4× the mean under
// the Capped policy.
const DefaultCapFactor = 4.0

// PlacementProfile derives the distribution used to fill cache slots from
// the request popularity under the given policy. capFactor is only used by
// Capped (pass 0 for DefaultCapFactor).
func PlacementProfile(pop dist.Popularity, policy Policy, capFactor float64) dist.Popularity {
	k := pop.K()
	switch policy {
	case Proportional:
		return pop
	case SquareRoot:
		w := make([]float64, k)
		for j := 0; j < k; j++ {
			w[j] = math.Sqrt(pop.P(j))
		}
		return dist.NewCustom(w, pop.Name()+"|sqrt")
	case UniformPlace:
		return dist.NewUniform(k)
	case Capped:
		if capFactor <= 0 {
			capFactor = DefaultCapFactor
		}
		cap := capFactor / float64(k)
		w := make([]float64, k)
		for j := 0; j < k; j++ {
			w[j] = math.Min(pop.P(j), cap)
		}
		return dist.NewCustom(w, fmt.Sprintf("%s|cap%.1f", pop.Name(), capFactor))
	default:
		panic(fmt.Sprintf("replication: unknown policy %v", policy))
	}
}

// MinExpectedReplicas returns the smallest expected replica count
// n·M·q_j over files, a proxy for the Example 2 bottleneck (files whose
// few replicas must absorb Θ(log n/ log log n) requests).
func MinExpectedReplicas(place dist.Popularity, n, m int) float64 {
	minQ := math.Inf(1)
	for j := 0; j < place.K(); j++ {
		if q := place.P(j); q < minQ {
			minQ = q
		}
	}
	return float64(n) * float64(m) * minQ
}

// LoadSkew estimates the expected per-replica demand skew: the max over
// files of p_j / q_j (request mass per unit of placement mass). Uniform
// placement of a skewed catalog has high skew; proportional placement has
// skew exactly 1.
func LoadSkew(pop, place dist.Popularity) float64 {
	if pop.K() != place.K() {
		panic("replication: profile size mismatch")
	}
	skew := 0.0
	for j := 0; j < pop.K(); j++ {
		q := place.P(j)
		if q == 0 {
			if pop.P(j) > 0 {
				return math.Inf(1)
			}
			continue
		}
		if s := pop.P(j) / q; s > skew {
			skew = s
		}
	}
	return skew
}
