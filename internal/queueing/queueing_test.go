package queueing

import (
	"math"
	"testing"
)

func baseCfg() Config {
	return Config{
		Side:    15, // n = 225
		K:       50,
		M:       4,
		Lambda:  0.7,
		Radius:  -1,
		Horizon: 200,
		WarmUp:  50,
		Seed:    1,
	}
}

func TestValidation(t *testing.T) {
	for name, mut := range map[string]func(*Config){
		"side":        func(c *Config) { c.Side = 0 },
		"k":           func(c *Config) { c.K = 0 },
		"m":           func(c *Config) { c.M = 0 },
		"lambda zero": func(c *Config) { c.Lambda = 0 },
		"lambda one":  func(c *Config) { c.Lambda = 1 },
		"horizon":     func(c *Config) { c.Horizon = 0 },
		"warmup":      func(c *Config) { c.WarmUp = 500 },
	} {
		c := baseCfg()
		mut(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxQueue != b.MaxQueue || a.Arrivals != b.Arrivals ||
		math.Abs(a.MeanQueue-b.MeanQueue) > 1e-12 {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	c := baseCfg()
	c.Seed = 2
	d, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Arrivals == a.Arrivals && d.MeanQueue == a.MeanQueue {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestStabilityAndThroughput(t *testing.T) {
	res, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Post-warm-up arrivals ≈ λ·n·(Horizon-WarmUp) within 10%.
	expect := 0.7 * 225 * 150
	if math.Abs(float64(res.Arrivals)-expect)/expect > 0.1 {
		t.Fatalf("arrivals %d, expected ≈ %.0f", res.Arrivals, expect)
	}
	// Stable system: departures keep pace with arrivals.
	if float64(res.Departures) < 0.9*float64(res.Arrivals) {
		t.Fatalf("departures %d lag arrivals %d", res.Departures, res.Arrivals)
	}
	// Little's law sanity: mean queue ≈ λ · mean sojourn (±30%).
	little := 0.7 * res.Sojourn.Mean()
	if res.MeanQueue < 0.7*little || res.MeanQueue > 1.3*little {
		t.Fatalf("Little's law violated: L=%v λW=%v", res.MeanQueue, little)
	}
	if res.MaxQueue < 1 {
		t.Fatal("no queueing observed at λ=0.7")
	}
}

func TestSupermarketEffect(t *testing.T) {
	// JSQ(2) must beat random assignment (d=1) on both max queue and
	// sojourn — Mitzenmacher's supermarket result, and the paper's §VI
	// conjecture in our cache-constrained setting.
	c1 := baseCfg()
	c1.Choices = 1
	c1.Lambda = 0.85
	c2 := baseCfg()
	c2.Choices = 2
	c2.Lambda = 0.85
	r1, err := Run(c1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	if !(r2.MaxQueue < r1.MaxQueue) {
		t.Fatalf("JSQ(2) max queue %d not below random %d", r2.MaxQueue, r1.MaxQueue)
	}
	if !(r2.Sojourn.Mean() < r1.Sojourn.Mean()) {
		t.Fatalf("JSQ(2) sojourn %.3f not below random %.3f", r2.Sojourn.Mean(), r1.Sojourn.Mean())
	}
}

func TestRadiusBoundsHops(t *testing.T) {
	c := baseCfg()
	c.M = 16 // dense replication so the radius rarely escalates
	c.K = 30
	c.Radius = 3
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanHops > 3.5 {
		t.Fatalf("mean hops %.2f well above radius 3", res.MeanHops)
	}
	cInf := baseCfg()
	cInf.M = 16
	cInf.K = 30
	rInf, err := Run(cInf)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.MeanHops < rInf.MeanHops) {
		t.Fatalf("radius 3 hops %.2f not below unbounded %.2f", res.MeanHops, rInf.MeanHops)
	}
}

func TestBackhaulAccounting(t *testing.T) {
	c := baseCfg()
	c.K = 5000 // K >> nM: many uncached files
	c.M = 1
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backhauls == 0 {
		t.Fatal("expected backhauls with a mostly-uncached library")
	}
	if res.Backhauls > res.Arrivals {
		t.Fatalf("backhauls %d exceed arrivals %d", res.Backhauls, res.Arrivals)
	}
}

func TestZipfRuns(t *testing.T) {
	c := baseCfg()
	c.Gamma = 1.1
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
}

func TestLowLoadShortQueues(t *testing.T) {
	c := baseCfg()
	c.Lambda = 0.2
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// At λ=0.2 with two choices, queues should stay tiny.
	if res.MeanQueue > 0.5 || res.MaxQueue > 6 {
		t.Fatalf("low-load queues too long: mean %.3f max %d", res.MeanQueue, res.MaxQueue)
	}
}

func BenchmarkSupermarketRun(b *testing.B) {
	c := baseCfg()
	c.Horizon = 60
	c.WarmUp = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Seed = uint64(i)
		if _, err := Run(c); err != nil {
			b.Fatal(err)
		}
	}
}
