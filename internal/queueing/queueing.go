// Package queueing implements the continuous-time counterpart of the
// paper's static model: the proximity-aware supermarket model conjectured
// in §VI to behave like the balls-into-bins analysis. Requests arrive as a
// Poisson process of rate λ·n, each at a uniform origin for a file drawn
// from the popularity profile; the dispatcher samples d replicas within
// hop radius r and joins the shortest queue (JSQ(d)); every server is an
// exponential-rate-1 FCFS queue. A discrete-event engine (binary heap)
// simulates the system and reports queue-length and sojourn statistics.
package queueing

import (
	"container/heap"
	"fmt"
	"math/rand/v2"

	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Config declares one supermarket-model run.
type Config struct {
	// Side is the torus side L (n = L² servers).
	Side int
	// K, M are the library and cache sizes; Gamma the Zipf exponent
	// (0 = uniform popularity).
	K, M  int
	Gamma float64
	// Lambda is the per-server arrival rate; the system is stable for
	// Lambda < 1.
	Lambda float64
	// Radius is the proximity constraint in hops (negative = ∞).
	Radius int
	// Choices is d, the number of sampled replicas per arrival (0 → 2).
	Choices int
	// Horizon is the simulated time span (time units of mean service).
	Horizon float64
	// WarmUp discards statistics before this time (transient removal).
	WarmUp float64
	// Seed is the deterministic root seed.
	Seed uint64
}

func (c Config) validate() error {
	if c.Side <= 0 || c.K <= 0 || c.M <= 0 {
		return fmt.Errorf("queueing: need Side, K, M > 0, got %d %d %d", c.Side, c.K, c.M)
	}
	if c.Lambda <= 0 || c.Lambda >= 1 {
		return fmt.Errorf("queueing: Lambda must be in (0,1), got %v", c.Lambda)
	}
	if c.Horizon <= 0 || c.WarmUp < 0 || c.WarmUp >= c.Horizon {
		return fmt.Errorf("queueing: need 0 <= WarmUp < Horizon, got %v, %v", c.WarmUp, c.Horizon)
	}
	return nil
}

// Result aggregates one run's steady-state observations.
type Result struct {
	// MaxQueue is the largest instantaneous queue length observed after
	// warm-up — the continuous-time analogue of the paper's max load.
	MaxQueue int
	// MeanQueue is the time-averaged per-server queue length.
	MeanQueue float64
	// Sojourn summarizes response times of jobs completed after warm-up.
	Sojourn stats.Summary
	// MeanHops is the average origin→server distance (communication cost).
	MeanHops float64
	// Arrivals and Departures count post-warm-up events.
	Arrivals, Departures int
	// Backhauls counts arrivals for files cached nowhere (served at the
	// origin, mirroring sim's backhaul accounting).
	Backhauls int
}

// event kinds for the simulation heap.
const (
	evArrival = iota
	evDeparture
)

type event struct {
	at   float64
	kind int
	node int32
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes the discrete-event simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	d := cfg.Choices
	if d == 0 {
		d = 2
	}
	src := xrand.NewSource(cfg.Seed)
	placeRNG := src.Split(1).Stream(0)
	evRNG := src.Split(2).Stream(0)

	g := grid.New(cfg.Side, grid.Torus)
	var pop dist.Popularity
	if cfg.Gamma > 0 {
		pop = dist.NewZipf(cfg.K, cfg.Gamma)
	} else {
		pop = dist.NewUniform(cfg.K)
	}
	p := cache.Place(g.N(), cfg.M, pop, cache.WithReplacement, placeRNG)

	radius := cfg.Radius
	if radius < 0 || radius >= g.Diameter() {
		radius = -1
	}

	n := g.N()
	qlen := make([]int32, n)     // jobs in system per server
	fifo := make([][]float64, n) // arrival stamps per server (FCFS)
	totalRate := cfg.Lambda * float64(n)

	var res Result
	var queueArea float64 // ∫ Σ qlen dt after warm-up
	var hopSum float64
	var hopCount int
	now := 0.0
	lastT := cfg.WarmUp

	h := &eventHeap{{at: evRNG.ExpFloat64() / totalRate, kind: evArrival}}
	heap.Init(h)

	var candBuf []int32
	pickServer := func(origin, file int, r *rand.Rand) (int32, bool) {
		reps := p.Replicas(file)
		if len(reps) == 0 {
			return int32(origin), false
		}
		pool := reps
		if radius >= 0 {
			candBuf = candBuf[:0]
			for _, v := range reps {
				if g.Dist(origin, int(v)) <= radius {
					candBuf = append(candBuf, v)
				}
			}
			if len(candBuf) > 0 {
				pool = candBuf
			} // else escalate to the full replica set
		}
		best := pool[r.IntN(len(pool))]
		for c := 1; c < d; c++ {
			v := pool[r.IntN(len(pool))]
			if qlen[v] < qlen[best] || (qlen[v] == qlen[best] && r.IntN(2) == 0) {
				best = v
			}
		}
		return best, true
	}

	advance := func(t float64) {
		if t > cfg.WarmUp {
			from := lastT
			if from < cfg.WarmUp {
				from = cfg.WarmUp
			}
			var tot int64
			for _, q := range qlen {
				tot += int64(q)
			}
			queueArea += float64(tot) * (t - from)
			lastT = t
		}
	}

	for h.Len() > 0 {
		ev := heap.Pop(h).(event)
		if ev.at > cfg.Horizon {
			break
		}
		advance(ev.at)
		now = ev.at
		switch ev.kind {
		case evArrival:
			// Schedule the next arrival first (Poisson process).
			heap.Push(h, event{at: now + evRNG.ExpFloat64()/totalRate, kind: evArrival})
			origin := evRNG.IntN(n)
			file := pop.Sample(evRNG)
			srv, served := pickServer(origin, file, evRNG)
			if now > cfg.WarmUp {
				res.Arrivals++
				if !served {
					res.Backhauls++
				}
				hopSum += float64(g.Dist(origin, int(srv)))
				hopCount++
			}
			qlen[srv]++
			fifo[srv] = append(fifo[srv], now)
			if int(qlen[srv]) > res.MaxQueue && now > cfg.WarmUp {
				res.MaxQueue = int(qlen[srv])
			}
			if qlen[srv] == 1 {
				heap.Push(h, event{at: now + evRNG.ExpFloat64(), kind: evDeparture, node: srv})
			}
		case evDeparture:
			srv := ev.node
			qlen[srv]--
			arrivedAt := fifo[srv][0]
			fifo[srv] = fifo[srv][1:]
			if now > cfg.WarmUp {
				res.Departures++
				res.Sojourn.Add(now - arrivedAt)
			}
			if qlen[srv] > 0 {
				heap.Push(h, event{at: now + evRNG.ExpFloat64(), kind: evDeparture, node: srv})
			}
		}
	}
	advance(cfg.Horizon)
	span := cfg.Horizon - cfg.WarmUp
	if span > 0 {
		res.MeanQueue = queueArea / span / float64(n)
	}
	if hopCount > 0 {
		res.MeanHops = hopSum / float64(hopCount)
	}
	return res, nil
}
