// Package dist implements the file-popularity distributions that drive
// every experiment in the reproduction: the paper's placement rule caches
// file j on each server with probability proportional to its popularity
// p_j, and the request process of Definition 1 draws files i.i.d. from the
// same profile. Three concrete profiles are provided:
//
//   - Uniform — p_j = 1/K, the paper's simulation setting (§V);
//   - Zipf — p_j ∝ 1/(j+1)^γ, the rank-skewed profile of Theorem 3 /
//     Eq. (1), used for the communication-cost tables;
//   - Custom — arbitrary non-negative weights, normalized; used for
//     conditioned streams (MissResample), replication policies
//     (proportional / square-root / capped placement profiles), and
//     empirical window estimates under popularity drift.
//
// Sampling is the hot path of the whole simulator (one draw per request,
// one draw per cache slot), so the skewed profiles sample through a Walker
// alias table (O(1) per draw, see Alias) rather than inverse-CDF binary
// search (O(log K), see CDF, kept for benchmarking and verification).
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Popularity is a probability distribution over a file library indexed
// 0..K-1. Implementations are immutable after construction and safe for
// concurrent use.
type Popularity interface {
	// K returns the library size.
	K() int
	// P returns the probability of file i. It panics if i is out of
	// [0, K).
	P(i int) float64
	// PMF returns a fresh copy of the full probability mass function.
	PMF() []float64
	// Sample draws one file index according to the distribution.
	Sample(r *rand.Rand) int
	// Name identifies the profile in experiment output.
	Name() string
}

// BatchSampler is implemented by profiles that can fill a whole slice of
// draws in one call. Batch draws consume the RNG exactly as the same
// number of sequential Sample calls would, so the two forms are
// interchangeable bit for bit; the batch form avoids per-draw interface
// dispatch on hot paths (cache placement draws n·M files per trial).
type BatchSampler interface {
	SampleBatch(r *rand.Rand, dst []int32)
}

// SampleBatch fills dst with draws from p, using the profile's batch path
// when it has one and falling back to sequential Sample calls otherwise.
func SampleBatch(p Popularity, r *rand.Rand, dst []int32) {
	if bs, ok := p.(BatchSampler); ok {
		bs.SampleBatch(r, dst)
		return
	}
	for i := range dst {
		dst[i] = int32(p.Sample(r))
	}
}

// Uniform is the equal-popularity profile p_j = 1/K (the paper's
// simulation setting).
type Uniform struct {
	k int
}

// NewUniform returns the Uniform profile over k files. It panics if
// k <= 0.
func NewUniform(k int) Uniform {
	if k <= 0 {
		panic(fmt.Sprintf("dist: need k > 0, got %d", k))
	}
	return Uniform{k: k}
}

// K implements Popularity.
func (u Uniform) K() int { return u.k }

// P implements Popularity.
func (u Uniform) P(i int) float64 {
	if i < 0 || i >= u.k {
		panic(fmt.Sprintf("dist: file %d out of [0,%d)", i, u.k))
	}
	return 1 / float64(u.k)
}

// PMF implements Popularity.
func (u Uniform) PMF() []float64 {
	pmf := make([]float64, u.k)
	p := 1 / float64(u.k)
	for i := range pmf {
		pmf[i] = p
	}
	return pmf
}

// Sample implements Popularity. A uniform draw needs no table: it is a
// single bounded integer draw.
func (u Uniform) Sample(r *rand.Rand) int { return r.IntN(u.k) }

// SampleBatch implements BatchSampler.
func (u Uniform) SampleBatch(r *rand.Rand, dst []int32) {
	for i := range dst {
		dst[i] = int32(r.IntN(u.k))
	}
}

// Name implements Popularity.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(k=%d)", u.k) }

// Zipf is the rank-skewed profile p_j = (j+1)^-γ / H_{K,γ} with
// H_{K,γ} = Σ_{i=1..K} i^-γ (generalized harmonic number), precomputed at
// construction. γ = 0 degenerates to Uniform; larger γ concentrates mass
// on the head of the catalog.
type Zipf struct {
	k     int
	gamma float64
	pmf   []float64
	alias *Alias
}

// NewZipf returns the Zipf(γ) profile over k files with precomputed
// normalization and alias table. It panics if k <= 0 or γ < 0.
func NewZipf(k int, gamma float64) *Zipf {
	if k <= 0 {
		panic(fmt.Sprintf("dist: need k > 0, got %d", k))
	}
	if gamma < 0 || math.IsNaN(gamma) || math.IsInf(gamma, 0) {
		panic(fmt.Sprintf("dist: need finite gamma >= 0, got %v", gamma))
	}
	pmf := make([]float64, k)
	h := 0.0
	for i := range pmf {
		w := math.Pow(float64(i+1), -gamma)
		pmf[i] = w
		h += w
	}
	for i := range pmf {
		pmf[i] /= h
	}
	return &Zipf{k: k, gamma: gamma, pmf: pmf, alias: NewAlias(pmf)}
}

// K implements Popularity.
func (z *Zipf) K() int { return z.k }

// Gamma returns the skew exponent γ.
func (z *Zipf) Gamma() float64 { return z.gamma }

// P implements Popularity.
func (z *Zipf) P(i int) float64 { return z.pmf[i] }

// PMF implements Popularity.
func (z *Zipf) PMF() []float64 { return append([]float64(nil), z.pmf...) }

// Sample implements Popularity via the O(1) alias table.
func (z *Zipf) Sample(r *rand.Rand) int { return z.alias.Sample(r) }

// SampleBatch implements BatchSampler.
func (z *Zipf) SampleBatch(r *rand.Rand, dst []int32) { z.alias.SampleBatch(r, dst) }

// Name implements Popularity.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(k=%d,g=%.2f)", z.k, z.gamma) }

// Custom is an arbitrary profile built from non-negative weights,
// normalized to sum to one. Files with zero weight are never sampled but
// keep their index, so a Custom profile over the full library can encode
// conditioned streams (e.g. "cached files only").
type Custom struct {
	name  string
	pmf   []float64
	alias *Alias
}

// NewCustom returns the profile proportional to weights. It copies
// weights, so the caller may reuse the slice. It panics if weights is
// empty, contains a negative or non-finite entry, or sums to zero.
func NewCustom(weights []float64, name string) *Custom {
	sum := validWeightSum("NewCustom", weights)
	pmf := make([]float64, len(weights))
	for i, w := range weights {
		pmf[i] = w / sum
	}
	return &Custom{name: name, pmf: pmf, alias: NewAlias(pmf)}
}

// K implements Popularity.
func (c *Custom) K() int { return len(c.pmf) }

// P implements Popularity.
func (c *Custom) P(i int) float64 { return c.pmf[i] }

// PMF implements Popularity.
func (c *Custom) PMF() []float64 { return append([]float64(nil), c.pmf...) }

// Sample implements Popularity via the O(1) alias table.
func (c *Custom) Sample(r *rand.Rand) int { return c.alias.Sample(r) }

// SampleBatch implements BatchSampler.
func (c *Custom) SampleBatch(r *rand.Rand, dst []int32) { c.alias.SampleBatch(r, dst) }

// Name implements Popularity.
func (c *Custom) Name() string { return c.name }

// CustomBuilder rebuilds Custom profiles of a fixed library size into
// preallocated arenas: Build is NewCustom with zero allocations and a bit
// identical result (same normalization order, same alias construction via
// AliasBuilder). The simulation engine uses one per worker to recondition
// the MissResample request stream every trial without reallocating the
// ~K-sized tables. Each Build overwrites the previously returned profile,
// so at most one profile per builder may be live at a time. Not safe for
// concurrent use.
type CustomBuilder struct {
	c  Custom
	ab *AliasBuilder
}

// NewCustomBuilder returns a builder for profiles over k files. It panics
// if k <= 0.
func NewCustomBuilder(k int) *CustomBuilder {
	if k <= 0 {
		panic(fmt.Sprintf("dist: NewCustomBuilder needs k > 0, got %d", k))
	}
	return &CustomBuilder{
		c:  Custom{pmf: make([]float64, k)},
		ab: NewAliasBuilder(k),
	}
}

// K returns the library size the builder was sized for.
func (b *CustomBuilder) K() int { return len(b.c.pmf) }

// Build constructs the profile proportional to weights (same contract as
// NewCustom) into the builder's arenas and returns it. The returned
// profile aliases the builder's memory: the next Build invalidates it. It
// panics if len(weights) differs from the builder's size.
func (b *CustomBuilder) Build(weights []float64, name string) *Custom {
	if len(weights) != len(b.c.pmf) {
		panic(fmt.Sprintf("dist: CustomBuilder sized for k=%d, got %d weights", len(b.c.pmf), len(weights)))
	}
	sum := validWeightSum("NewCustom", weights)
	for i, w := range weights {
		b.c.pmf[i] = w / sum
	}
	b.c.alias = b.ab.Build(b.c.pmf)
	b.c.name = name
	return &b.c
}

// validWeightSum enforces the shared weight contract of every
// constructor that consumes raw weights (NewCustom, NewAlias, NewCDF):
// non-empty, every entry non-negative and finite, positive total. It
// returns the total and panics (naming the caller) on violation.
func validWeightSum(caller string, weights []float64) float64 {
	if len(weights) == 0 {
		panic("dist: " + caller + " needs at least one weight")
	}
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("dist: %s: invalid weight %v at %d", caller, w, i))
		}
		sum += w
	}
	if sum <= 0 {
		panic("dist: " + caller + " weights sum to zero")
	}
	return sum
}
