package dist

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func sumsToOne(t *testing.T, p Popularity) {
	t.Helper()
	s := 0.0
	for _, q := range p.PMF() {
		if q < 0 {
			t.Fatalf("%s: negative mass %v", p.Name(), q)
		}
		s += q
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("%s: PMF sums to %v, want 1", p.Name(), s)
	}
}

func TestPMFSumsToOne(t *testing.T) {
	for _, p := range []Popularity{
		NewUniform(1),
		NewUniform(1000),
		NewZipf(1, 0.8),
		NewZipf(100, 0),
		NewZipf(100, 0.56),
		NewZipf(10000, 1.2),
		NewZipf(50, 4),
		NewCustom([]float64{1, 0, 2, 0, 3}, "gaps"),
		NewCustom([]float64{5}, "single"),
	} {
		sumsToOne(t, p)
	}
}

func TestPAgreesWithPMF(t *testing.T) {
	for _, p := range []Popularity{
		NewUniform(7),
		NewZipf(9, 1.3),
		NewCustom([]float64{0.5, 0, 2}, "c"),
	} {
		pmf := p.PMF()
		if len(pmf) != p.K() {
			t.Fatalf("%s: len(PMF) = %d, K = %d", p.Name(), len(pmf), p.K())
		}
		for i, q := range pmf {
			if p.P(i) != q {
				t.Fatalf("%s: P(%d) = %v, PMF[%d] = %v", p.Name(), i, p.P(i), i, q)
			}
		}
	}
}

func TestZipfShape(t *testing.T) {
	z := NewZipf(100, 1.4)
	// p_j ∝ (j+1)^-γ: check the head/tail ratio exactly.
	want := math.Pow(100, 1.4)
	got := z.P(0) / z.P(99)
	if math.Abs(got/want-1) > 1e-9 {
		t.Fatalf("head/tail ratio %v, want %v", got, want)
	}
	for j := 1; j < 100; j++ {
		if z.P(j) > z.P(j-1) {
			t.Fatalf("pmf not monotone at %d: %v > %v", j, z.P(j), z.P(j-1))
		}
	}
	if z.Gamma() != 1.4 {
		t.Fatalf("Gamma() = %v", z.Gamma())
	}
}

func TestZipfZeroGammaIsUniform(t *testing.T) {
	z := NewZipf(50, 0)
	for j := 0; j < 50; j++ {
		if math.Abs(z.P(j)-0.02) > 1e-12 {
			t.Fatalf("P(%d) = %v, want 0.02", j, z.P(j))
		}
	}
}

func TestCustomNormalizesAndCopies(t *testing.T) {
	w := []float64{2, 0, 6}
	c := NewCustom(w, "mix")
	w[0] = 1e9 // mutation after construction must not leak in
	if c.P(0) != 0.25 || c.P(1) != 0 || c.P(2) != 0.75 {
		t.Fatalf("pmf = %v", c.PMF())
	}
	if c.Name() != "mix" || c.K() != 3 {
		t.Fatalf("name=%q k=%d", c.Name(), c.K())
	}
}

func TestPMFReturnsCopy(t *testing.T) {
	z := NewZipf(4, 1)
	pmf := z.PMF()
	pmf[0] = 42
	if z.P(0) == 42 {
		t.Fatal("PMF aliases internal storage")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"uniform k=0", func() { NewUniform(0) }},
		{"zipf k=-1", func() { NewZipf(-1, 1) }},
		{"zipf gamma<0", func() { NewZipf(10, -0.5) }},
		{"zipf gamma NaN", func() { NewZipf(10, math.NaN()) }},
		{"custom empty", func() { NewCustom(nil, "x") }},
		{"custom negative", func() { NewCustom([]float64{1, -1}, "x") }},
		{"custom zero sum", func() { NewCustom([]float64{0, 0}, "x") }},
		{"alias empty", func() { NewAlias(nil) }},
		{"alias zero sum", func() { NewAlias([]float64{0}) }},
		{"cdf empty", func() { NewCDF(nil) }},
		{"cdf negative", func() { NewCDF([]float64{-1, 2}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

// empiricalMatches draws from sample and checks per-file frequencies
// against pmf within tol (absolute).
func empiricalMatches(t *testing.T, pmf []float64, sample func() int, draws int, tol float64) {
	t.Helper()
	counts := make([]int, len(pmf))
	for i := 0; i < draws; i++ {
		j := sample()
		if j < 0 || j >= len(pmf) {
			t.Fatalf("sample %d out of range [0,%d)", j, len(pmf))
		}
		counts[j]++
	}
	for j, p := range pmf {
		got := float64(counts[j]) / float64(draws)
		if math.Abs(got-p) > tol {
			t.Fatalf("file %d: empirical %v vs pmf %v (tol %v)", j, got, p, tol)
		}
		if p == 0 && counts[j] > 0 {
			t.Fatalf("file %d has zero mass but %d draws", j, counts[j])
		}
	}
}

func TestEmpiricalFrequencies(t *testing.T) {
	r := xrand.NewSource(7).Stream(0)
	const draws = 200000
	for _, p := range []Popularity{
		NewUniform(20),
		NewZipf(20, 1.0),
		NewZipf(30, 2.5),
		NewCustom([]float64{3, 0, 1, 6}, "mix"),
	} {
		empiricalMatches(t, p.PMF(), func() int { return p.Sample(r) }, draws, 0.01)
	}
}

func TestAliasMatchesCDFDistribution(t *testing.T) {
	// Alias and CDF implement the same distribution independently; their
	// empirical frequencies must both match the pmf.
	z := NewZipf(100, 1.2)
	pmf := z.PMF()
	al := NewAlias(pmf)
	cdf := NewCDF(pmf)
	r1 := xrand.NewSource(11).Stream(0)
	r2 := xrand.NewSource(11).Stream(1)
	const draws = 300000
	empiricalMatches(t, pmf, func() int { return al.Sample(r1) }, draws, 0.01)
	empiricalMatches(t, pmf, func() int { return cdf.Sample(r2) }, draws, 0.01)
}

func TestAliasUnnormalizedInput(t *testing.T) {
	// NewAlias accepts raw weights; scaling must not change the law.
	a := NewAlias([]float64{2, 6})
	r := xrand.NewSource(3).Stream(0)
	empiricalMatches(t, []float64{0.25, 0.75}, func() int { return a.Sample(r) }, 100000, 0.01)
	if a.K() != 2 {
		t.Fatalf("K = %d", a.K())
	}
}

func TestCDFTailReachable(t *testing.T) {
	// The last file must be sampled even with float residue in the table.
	c := NewCDF([]float64{1, 1, 1})
	r := xrand.NewSource(5).Stream(0)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[c.Sample(r)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("support not covered: %v", seen)
	}
}

func TestSampleDeterminism(t *testing.T) {
	z := NewZipf(64, 1.1)
	a := make([]int, 100)
	b := make([]int, 100)
	r1 := xrand.NewSource(9).Stream(4)
	r2 := xrand.NewSource(9).Stream(4)
	for i := range a {
		a[i] = z.Sample(r1)
		b[i] = z.Sample(r2)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDegenerateSingleFile(t *testing.T) {
	r := xrand.NewSource(1).Stream(0)
	for _, p := range []Popularity{NewUniform(1), NewZipf(1, 2), NewCustom([]float64{7}, "one")} {
		for i := 0; i < 10; i++ {
			if got := p.Sample(r); got != 0 {
				t.Fatalf("%s sampled %d", p.Name(), got)
			}
		}
		if p.P(0) != 1 {
			t.Fatalf("%s: P(0) = %v", p.Name(), p.P(0))
		}
	}
}

func TestSampleBatchMatchesSequentialSample(t *testing.T) {
	// Batch and sequential draws must consume the RNG identically — the
	// placement phase relies on this for bit-reproducible trials.
	profiles := []Popularity{
		NewUniform(37),
		NewZipf(64, 1.3),
		NewCustom([]float64{1, 0, 2, 5, 0.25}, "w"),
	}
	for _, p := range profiles {
		a := xrand.NewSource(7).Stream(3)
		b := xrand.NewSource(7).Stream(3)
		dst := make([]int32, 257)
		SampleBatch(p, a, dst)
		for i, got := range dst {
			if want := int32(p.Sample(b)); got != want {
				t.Fatalf("%s: draw %d: batch %d != sequential %d", p.Name(), i, got, want)
			}
		}
	}
}
