package dist

import (
	"testing"

	"repro/internal/xrand"
)

// The acceptance bar for the alias default: at k = 10^4 the O(1) alias
// draw must be at least as fast as the O(log k) CDF binary search, and its
// cost must stay flat as k grows.
const benchK = 10000

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(benchK, 1.2)
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(r)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	a := NewAlias(NewZipf(benchK, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(r)
	}
}

func BenchmarkCDFSample(b *testing.B) {
	c := NewCDF(NewZipf(benchK, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sample(r)
	}
}

func BenchmarkUniformSample(b *testing.B) {
	u := NewUniform(benchK)
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Sample(r)
	}
}

// Scaling check: alias cost should be flat in k, CDF cost logarithmic.
func BenchmarkAliasSampleK1e6(b *testing.B) {
	a := NewAlias(NewZipf(1000000, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(r)
	}
}

func BenchmarkCDFSampleK1e6(b *testing.B) {
	c := NewCDF(NewZipf(1000000, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sample(r)
	}
}

// Batched draws amortize the interface dispatch and keep the alias table
// hot; reported per draw for comparison with BenchmarkAliasSample.
func BenchmarkAliasSampleBatch(b *testing.B) {
	a := NewAlias(NewZipf(benchK, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	dst := make([]int32, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(dst) {
		a.SampleBatch(r, dst)
	}
}

func BenchmarkUniformSampleBatch(b *testing.B) {
	u := NewUniform(benchK)
	r := xrand.NewSource(1).Stream(0)
	dst := make([]int32, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(dst) {
		u.SampleBatch(r, dst)
	}
}
