package dist

import (
	"testing"

	"repro/internal/xrand"
)

// The acceptance bar for the alias default: at k = 10^4 the O(1) alias
// draw must be at least as fast as the O(log k) CDF binary search, and its
// cost must stay flat as k grows.
const benchK = 10000

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(benchK, 1.2)
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(r)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	a := NewAlias(NewZipf(benchK, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(r)
	}
}

func BenchmarkCDFSample(b *testing.B) {
	c := NewCDF(NewZipf(benchK, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sample(r)
	}
}

func BenchmarkUniformSample(b *testing.B) {
	u := NewUniform(benchK)
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Sample(r)
	}
}

// Scaling check: alias cost should be flat in k, CDF cost logarithmic.
func BenchmarkAliasSampleK1e6(b *testing.B) {
	a := NewAlias(NewZipf(1000000, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(r)
	}
}

func BenchmarkCDFSampleK1e6(b *testing.B) {
	c := NewCDF(NewZipf(1000000, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sample(r)
	}
}

// Batched draws amortize the interface dispatch and keep the alias table
// hot; reported per draw for comparison with BenchmarkAliasSample.
func BenchmarkAliasSampleBatch(b *testing.B) {
	a := NewAlias(NewZipf(benchK, 1.2).PMF())
	r := xrand.NewSource(1).Stream(0)
	dst := make([]int32, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(dst) {
		a.SampleBatch(r, dst)
	}
}

func BenchmarkUniformSampleBatch(b *testing.B) {
	u := NewUniform(benchK)
	r := xrand.NewSource(1).Stream(0)
	dst := make([]int32, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(dst) {
		u.SampleBatch(r, dst)
	}
}

// BenchmarkNewAlias is the per-trial cost the conditioned request stream
// used to pay: a fresh table over the full library.
func BenchmarkNewAlias(b *testing.B) {
	pmf := NewZipf(benchK, 1.2).PMF()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewAlias(pmf)
	}
}

// BenchmarkAliasBuilderBuild is the arena rebuild that replaces it:
// identical table bits, zero allocations.
func BenchmarkAliasBuilderBuild(b *testing.B) {
	pmf := NewZipf(benchK, 1.2).PMF()
	ab := NewAliasBuilder(benchK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab.Build(pmf)
	}
}

// BenchmarkCustomBuilderBuild is the full conditioned-profile rebuild
// (normalize + alias) the MissResample path runs per trial.
func BenchmarkCustomBuilderBuild(b *testing.B) {
	w := NewZipf(benchK, 1.2).PMF()
	cb := NewCustomBuilder(benchK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb.Build(w, "bench")
	}
}

// BenchmarkRequestBatch measures one pipeline chunk of two-stream request
// generation (1024 requests per call, Zipf files).
func BenchmarkRequestBatch(b *testing.B) {
	pop := NewZipf(benchK, 1.2)
	or := xrand.NewSource(1).Stream(0)
	fr := xrand.NewSource(1).Stream(1)
	origins, files := make([]int32, 1024), make([]int32, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RequestBatch(or, fr, 4900, pop, origins, files)
	}
}
