package dist

import (
	"fmt"
	"math/rand/v2"
)

// Alias is a Walker/Vose alias table: after O(K) construction it draws
// from an arbitrary discrete distribution in O(1) — one bounded integer
// draw, one float draw, one comparison — independent of K. It is the
// hot-path sampler behind Zipf and Custom; CDF is the O(log K) alternative
// kept for verification and benchmarks.
//
// Construction follows Vose's stable two-worklist formulation: columns are
// scaled to mean 1 and split into "small" (< 1) and "large" (≥ 1); each
// small column is topped up by an alias into a large one.
type Alias struct {
	prob  []float64 // acceptance threshold per column, in [0, 1]
	alias []int32   // donor column used when the threshold draw fails
}

// NewAlias builds the table from probs, which must be non-empty with
// non-negative finite entries and a positive sum. probs need not be
// normalized; it is copied, so the caller may reuse the slice.
func NewAlias(probs []float64) *Alias {
	n := len(probs)
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	fillAlias(a, probs, make([]float64, n), make([]int32, 0, n), make([]int32, 0, n))
	return a
}

// fillAlias runs Vose's construction into a's (pre-sized) tables using the
// provided scratch. It is the single construction path shared by NewAlias
// and AliasBuilder, so arena-built and freshly allocated tables are bit
// identical — same summation order, same scaling, same worklist order.
func fillAlias(a *Alias, probs []float64, scaled []float64, small, large []int32) {
	n := len(probs)
	sum := validWeightSum("NewAlias", probs)

	// Scale so the mean column height is exactly 1.
	scale := float64(n) / sum
	for i, p := range probs {
		scaled[i] = p * scale
	}

	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]

		a.prob[s] = scaled[s]
		a.alias[s] = l
		// The donor loses the mass it lent to column s.
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are 1 up to floating-point residue.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
}

// AliasBuilder rebuilds alias tables of a fixed support size into
// preallocated arenas. Build produces tables bit-identical to NewAlias with
// zero allocations, so hot paths that recondition a distribution every
// trial (the MissResample request stream) can rebuild instead of
// reallocate. Each Build overwrites the previously returned table, so at
// most one table per builder may be live at a time. Not safe for
// concurrent use.
type AliasBuilder struct {
	out          Alias
	scaled       []float64
	small, large []int32
}

// NewAliasBuilder returns a builder for k-column tables. It panics if
// k <= 0.
func NewAliasBuilder(k int) *AliasBuilder {
	if k <= 0 {
		panic(fmt.Sprintf("dist: NewAliasBuilder needs k > 0, got %d", k))
	}
	return &AliasBuilder{
		out:    Alias{prob: make([]float64, k), alias: make([]int32, k)},
		scaled: make([]float64, k),
		small:  make([]int32, 0, k),
		large:  make([]int32, 0, k),
	}
}

// K returns the support size the builder was sized for.
func (b *AliasBuilder) K() int { return len(b.out.prob) }

// Build constructs the table for probs (same contract as NewAlias) into
// the builder's arenas and returns it. The returned table aliases the
// builder's memory: the next Build invalidates it. It panics if len(probs)
// differs from the builder's size.
func (b *AliasBuilder) Build(probs []float64) *Alias {
	if len(probs) != len(b.out.prob) {
		panic(fmt.Sprintf("dist: AliasBuilder sized for k=%d, got %d weights", len(b.out.prob), len(probs)))
	}
	fillAlias(&b.out, probs, b.scaled, b.small[:0], b.large[:0])
	return &b.out
}

// K returns the support size.
func (a *Alias) K() int { return len(a.prob) }

// Sample draws one index in O(1).
func (a *Alias) Sample(r *rand.Rand) int {
	i := r.IntN(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// SampleBatch fills dst with independent draws. It consumes the RNG in
// exactly the same order as len(dst) sequential Sample calls, so batched
// and one-at-a-time sampling are interchangeable bit for bit; the batch
// form exists to keep the table hot in cache and avoid the per-draw
// interface dispatch on the placement fast path.
func (a *Alias) SampleBatch(r *rand.Rand, dst []int32) {
	n := len(a.prob)
	for i := range dst {
		j := r.IntN(n)
		if r.Float64() < a.prob[j] {
			dst[i] = int32(j)
		} else {
			dst[i] = a.alias[j]
		}
	}
}

// CDF samples by inverse transform over the cumulative distribution with
// binary search: O(K) construction, O(log K) per draw. It exists as the
// baseline the alias method is benchmarked against and as an independent
// implementation for cross-checking Alias in tests.
type CDF struct {
	cum []float64
}

// NewCDF builds the cumulative table from probs (same contract as
// NewAlias: non-empty, non-negative, positive sum; need not be
// normalized).
func NewCDF(probs []float64) *CDF {
	n := len(probs)
	sum := validWeightSum("NewCDF", probs)
	cum := make([]float64, n)
	acc := 0.0
	for i, p := range probs {
		acc += p
		cum[i] = acc / sum
	}
	cum[n-1] = 1 // guard against residue leaving the tail unreachable
	return &CDF{cum: cum}
}

// K returns the support size.
func (c *CDF) K() int { return len(c.cum) }

// Sample draws one index in O(log K).
func (c *CDF) Sample(r *rand.Rand) int {
	u := r.Float64()
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
