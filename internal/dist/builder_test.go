package dist

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

// builderCases are weight vectors spanning the shapes the conditioned
// request stream produces: dense, gappy (uncached files at zero), single
// survivor, heavy skew.
func builderCases() [][]float64 {
	zipfish := make([]float64, 400)
	for i := range zipfish {
		zipfish[i] = 1 / float64((i+1)*(i+1))
	}
	gappy := make([]float64, 50)
	for i := 0; i < 50; i += 3 {
		gappy[i] = float64(i + 1)
	}
	return [][]float64{
		{1},
		{1, 2, 3, 4},
		{0, 5, 0, 0, 1, 0},
		{1e-12, 1, 1e12},
		gappy,
		zipfish,
	}
}

// TestAliasBuilderMatchesNewAlias pins the arena construction to the
// allocating one: identical tables, identical sample streams, across
// repeated reuse of one builder (no state may leak between builds).
func TestAliasBuilderMatchesNewAlias(t *testing.T) {
	for ci, w := range builderCases() {
		b := NewAliasBuilder(len(w))
		if b.K() != len(w) {
			t.Fatalf("case %d: K() = %d, want %d", ci, b.K(), len(w))
		}
		// Build twice through the same builder: the second build must not
		// see residue from the first.
		for round := 0; round < 2; round++ {
			want := NewAlias(w)
			got := b.Build(w)
			for i := range w {
				if got.prob[i] != want.prob[i] || got.alias[i] != want.alias[i] {
					t.Fatalf("case %d round %d: column %d: built (%v,%d), want (%v,%d)",
						ci, round, i, got.prob[i], got.alias[i], want.prob[i], want.alias[i])
				}
			}
			ra := xrand.NewSource(uint64(ci)).Stream(uint64(round))
			rb := xrand.NewSource(uint64(ci)).Stream(uint64(round))
			for n := 0; n < 2000; n++ {
				if a, b := want.Sample(ra), got.Sample(rb); a != b {
					t.Fatalf("case %d round %d: draw %d: %d != %d", ci, round, n, a, b)
				}
			}
		}
	}
}

// TestAliasBuilderReuseAcrossShapes rebuilds one builder over different
// weight vectors of the same size; every build must equal a fresh table.
func TestAliasBuilderReuseAcrossShapes(t *testing.T) {
	const k = 64
	b := NewAliasBuilder(k)
	for seed := uint64(0); seed < 8; seed++ {
		r := xrand.NewSource(seed).Stream(0)
		w := make([]float64, k)
		for i := range w {
			if r.IntN(3) > 0 { // leave ~1/3 at zero, like a conditioned stream
				w[i] = r.Float64() + 1e-3
			}
		}
		want, got := NewAlias(w), b.Build(w)
		for i := range w {
			if got.prob[i] != want.prob[i] || got.alias[i] != want.alias[i] {
				t.Fatalf("seed %d column %d: built (%v,%d), want (%v,%d)",
					seed, i, got.prob[i], got.alias[i], want.prob[i], want.alias[i])
			}
		}
	}
}

// TestAliasBuilderZeroAllocs is the arena contract: steady-state rebuilds
// allocate nothing.
func TestAliasBuilderZeroAllocs(t *testing.T) {
	w := builderCases()[5]
	b := NewAliasBuilder(len(w))
	if n := testing.AllocsPerRun(20, func() { b.Build(w) }); n != 0 {
		t.Fatalf("AliasBuilder.Build allocates %.1f/op, want 0", n)
	}
}

// TestCustomBuilderMatchesNewCustom pins the arena profile to NewCustom:
// same pmf bits, same name, same sample stream.
func TestCustomBuilderMatchesNewCustom(t *testing.T) {
	for ci, w := range builderCases() {
		b := NewCustomBuilder(len(w))
		if b.K() != len(w) {
			t.Fatalf("case %d: K() = %d, want %d", ci, b.K(), len(w))
		}
		for round := 0; round < 2; round++ {
			name := fmt.Sprintf("case%d", ci)
			want := NewCustom(w, name)
			got := b.Build(w, name)
			if got.Name() != want.Name() || got.K() != want.K() {
				t.Fatalf("case %d: name/k mismatch: %q/%d vs %q/%d",
					ci, got.Name(), got.K(), want.Name(), want.K())
			}
			for i := range w {
				if got.P(i) != want.P(i) {
					t.Fatalf("case %d: P(%d) = %v, want %v", ci, i, got.P(i), want.P(i))
				}
			}
			ra := xrand.NewSource(uint64(ci)).Stream(7)
			rb := xrand.NewSource(uint64(ci)).Stream(7)
			for n := 0; n < 2000; n++ {
				if a, b := want.Sample(ra), got.Sample(rb); a != b {
					t.Fatalf("case %d round %d: draw %d: %d != %d", ci, round, n, a, b)
				}
			}
		}
	}
}

// TestCustomBuilderZeroAllocs: a rebuild with a precomputed name string is
// allocation-free.
func TestCustomBuilderZeroAllocs(t *testing.T) {
	w := builderCases()[5]
	b := NewCustomBuilder(len(w))
	const name = "steady"
	if n := testing.AllocsPerRun(20, func() { b.Build(w, name) }); n != 0 {
		t.Fatalf("CustomBuilder.Build allocates %.1f/op, want 0", n)
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("NewAliasBuilder(0)", func() { NewAliasBuilder(0) })
	expectPanic("NewCustomBuilder(-1)", func() { NewCustomBuilder(-1) })
	expectPanic("AliasBuilder size mismatch", func() { NewAliasBuilder(3).Build([]float64{1, 2}) })
	expectPanic("CustomBuilder size mismatch", func() { NewCustomBuilder(2).Build([]float64{1, 2, 3}, "x") })
	expectPanic("AliasBuilder zero weights", func() { NewAliasBuilder(2).Build([]float64{0, 0}) })
}

// TestRequestBatchMatchesSequential is the RNG-stream equivalence
// property: for every profile family, filling a trial block in one call
// consumes the two streams exactly as per-request sequential draws would,
// and any chunk partition of the block produces bit-identical ids.
func TestRequestBatchMatchesSequential(t *testing.T) {
	const n = 225 // origin space
	profiles := []Popularity{
		NewUniform(40),
		NewZipf(300, 1.2),
		NewCustom([]float64{3, 0, 1, 0, 0, 8, 2}, "gaps"),
	}
	for pi, pop := range profiles {
		const total = 1000
		// Sequential reference: one draw per request from each stream.
		or, fr := xrand.NewSource(9).Stream(uint64(pi)), xrand.NewSource(10).Stream(uint64(pi))
		wantO, wantF := make([]int32, total), make([]int32, total)
		for i := 0; i < total; i++ {
			wantO[i] = int32(or.IntN(n))
			wantF[i] = int32(pop.Sample(fr))
		}
		for _, chunk := range []int{1, 7, 64, total} {
			or := xrand.NewSource(9).Stream(uint64(pi))
			fr := xrand.NewSource(10).Stream(uint64(pi))
			gotO, gotF := make([]int32, total), make([]int32, total)
			for base := 0; base < total; base += chunk {
				c := min(chunk, total-base)
				RequestBatch(or, fr, n, pop, gotO[base:base+c], gotF[base:base+c])
			}
			for i := 0; i < total; i++ {
				if gotO[i] != wantO[i] || gotF[i] != wantF[i] {
					t.Fatalf("%s chunk=%d: request %d: got (%d,%d), want (%d,%d)",
						pop.Name(), chunk, i, gotO[i], gotF[i], wantO[i], wantF[i])
				}
			}
		}
	}
}

func TestRequestBatchPanics(t *testing.T) {
	r := xrand.NewSource(1).Stream(0)
	pop := NewUniform(4)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slices did not panic")
		}
	}()
	RequestBatch(r, r, 10, pop, make([]int32, 3), make([]int32, 4))
}
