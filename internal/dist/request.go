package dist

import (
	"fmt"
	"math/rand/v2"
)

// RequestBatch fills one block of the request process in a single call:
// origins[i] is a uniform draw over [0, originN) from originRNG and
// files[i] a draw from pop using fileRNG. The two generators are the two
// independent request streams of the simulation engine's split-stream
// discipline (one for origins, one for file ids).
//
// Each stream is consumed exactly as the same number of sequential
// per-request draws would consume it — origins by repeated IntN, files by
// repeated Sample (see BatchSampler) — so partitioning a trial's request
// block into chunks of any size yields bit-identical ids. This is the same
// property-test discipline as SampleBatch; the batch form exists to keep
// the alias table hot in cache and to hoist the per-draw interface
// dispatch out of the request loop.
//
// It panics if the two destination slices differ in length or originN is
// not positive.
func RequestBatch(originRNG, fileRNG *rand.Rand, originN int, pop Popularity, origins, files []int32) {
	if len(origins) != len(files) {
		panic(fmt.Sprintf("dist: RequestBatch needs matched slices, got %d origins / %d files", len(origins), len(files)))
	}
	if originN <= 0 {
		panic(fmt.Sprintf("dist: RequestBatch needs originN > 0, got %d", originN))
	}
	for i := range origins {
		origins[i] = int32(originRNG.IntN(originN))
	}
	SampleBatch(pop, fileRNG, files)
}
