package core

import (
	"math"
	"math/rand/v2"

	"repro/internal/cache"
	"repro/internal/grid"
)

// NearestReplica is Strategy I (Definition 2): assign each request to the
// closest node caching the file, ties broken uniformly at random.
//
// Two exact search procedures are available and chosen adaptively per
// request (DESIGN.md §4.5):
//
//   - ring search: expand rings d = 0, 1, 2, ... around the origin until a
//     ring contains a replica; expected probes ≈ n/|S_j|;
//   - replica scan: walk the file's replica list computing distances;
//     probes = |S_j|.
//
// The crossover sits at |S_j| ≈ √n. Both return the same distribution
// (property-tested), so the adaptive pick is purely a performance choice.
type NearestReplica struct {
	common
	sqrtN    int
	rings    *grid.RingTable // precomputed ring templates (nil on bounded)
	ringBuf  []int32
	tieBuf   []int32
	searchFn SearchMode
	live     *cache.Liveness // nil = liveness-blind (golden-pinned paths)
	retried  bool            // per-Assign: a dead candidate was rejected
}

// SearchMode forces a specific nearest-replica search procedure; the zero
// value (SearchAdaptive) picks per request.
type SearchMode int

const (
	// SearchAdaptive switches between ring and scan per request based on
	// replica density.
	SearchAdaptive SearchMode = iota
	// SearchRing always expands rings outward from the origin.
	SearchRing
	// SearchScan always walks the replica list.
	SearchScan
)

// String implements fmt.Stringer.
func (m SearchMode) String() string {
	switch m {
	case SearchAdaptive:
		return "adaptive"
	case SearchRing:
		return "ring"
	case SearchScan:
		return "scan"
	default:
		return "unknown"
	}
}

// NewNearestReplica builds Strategy I over the given topology/placement.
func NewNearestReplica(g *grid.Grid, p *cache.Placement) *NearestReplica {
	return NewNearestReplicaMode(g, p, SearchAdaptive)
}

// NewNearestReplicaMode builds Strategy I with a forced search procedure
// (used by the ablation benchmarks).
func NewNearestReplicaMode(g *grid.Grid, p *cache.Placement, mode SearchMode) *NearestReplica {
	return &NearestReplica{
		common:   newCommon(g, p),
		sqrtN:    int(math.Sqrt(float64(g.N()))),
		rings:    g.NewRingTable(),
		searchFn: mode,
	}
}

// Rebind implements Rebindable: swap the placement, keep scratch and the
// precomputed ring templates.
func (s *NearestReplica) Rebind(p *cache.Placement) { s.common.rebind(p) }

// Name implements Strategy.
func (s *NearestReplica) Name() string { return "nearest-replica" }

// SetLiveness implements LivenessAware: with a mask bound, both search
// procedures skip dead replicas (nearest LIVE replica); a file whose
// replicas are all dead is served by backhaul at the origin.
func (s *NearestReplica) SetLiveness(lv *cache.Liveness) { s.live = lv }

// Assign implements Strategy.
func (s *NearestReplica) Assign(req Request, _ LoadReader, r *rand.Rand) Assignment {
	s.retried = false
	reps := s.p.Replicas(int(req.File))
	if len(reps) == 0 {
		return backhaul(req)
	}
	var server int32
	switch {
	case s.searchFn == SearchRing,
		s.searchFn == SearchAdaptive && len(reps) > s.sqrtN:
		server = s.ringSearch(req, r)
	default:
		server = s.scanSearch(req, reps, r)
	}
	if server < 0 {
		// Every replica is dead: the cache network cannot serve the file.
		a := backhaul(req)
		a.Retried = s.retried
		return a
	}
	a := assignmentTo(s.g, req, server, false)
	a.Retried = s.retried
	return a
}

// ringSearch expands rings until one contains a replica, then picks
// uniformly among that ring's replicas.
func (s *NearestReplica) ringSearch(req Request, r *rand.Rand) int32 {
	for d := 0; d <= s.g.Diameter(); d++ {
		if s.rings != nil {
			s.ringBuf = s.rings.Ring(int(req.Origin), d, s.ringBuf[:0])
		} else {
			s.ringBuf = s.g.Ring(int(req.Origin), d, s.ringBuf[:0])
		}
		s.tieBuf = s.tieBuf[:0]
		for _, v := range s.ringBuf {
			if s.p.Has(int(v), int(req.File)) {
				if s.live != nil && !s.live.Live(int(v)) {
					s.retried = true
					continue
				}
				s.tieBuf = append(s.tieBuf, v)
			}
		}
		if len(s.tieBuf) > 0 {
			return s.tieBuf[r.IntN(len(s.tieBuf))]
		}
	}
	if s.live != nil {
		return -1 // every replica of the file is dead
	}
	// Unreachable when the replica list is non-empty.
	panic("core: ring search exhausted the torus with a non-empty replica set")
}

// scanSearch walks the replica list, tracking the minimum distance and
// reservoir-sampling uniformly among ties without allocating. Dead
// replicas are skipped under a liveness mask; -1 means none was live.
// The first survivor enters as sole tie without an RNG draw, so the
// draw sequence is unchanged from the historical reps[0]-seeded loop.
func (s *NearestReplica) scanSearch(req Request, reps []int32, r *rand.Rand) int32 {
	best, bestD, ties := int32(-1), math.MaxInt, 0
	for _, v := range reps {
		if s.live != nil && !s.live.Live(int(v)) {
			s.retried = true
			continue
		}
		d := s.g.Dist(int(req.Origin), int(v))
		switch {
		case d < bestD:
			best, bestD, ties = v, d, 1
		case d == bestD:
			ties++
			if r.IntN(ties) == 0 {
				best = v
			}
		}
	}
	return best
}

var _ Strategy = (*NearestReplica)(nil)
var _ LivenessAware = (*NearestReplica)(nil)

// NearestDistance returns the hop distance from u to the closest replica
// of file j, or -1 if the file is cached nowhere. Exposed for the Voronoi
// cross-checks and the Theorem 2 experiments.
func NearestDistance(g *grid.Grid, p *cache.Placement, u, j int) int {
	reps := p.Replicas(j)
	if len(reps) == 0 {
		return -1
	}
	best := math.MaxInt
	for _, v := range reps {
		if d := g.Dist(u, int(v)); d < best {
			best = d
		}
	}
	return best
}
