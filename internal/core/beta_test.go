package core

import (
	"testing"

	"repro/internal/ballsbins"
	"repro/internal/xrand"
)

func TestBetaValidation(t *testing.T) {
	g, p := testWorld(5, 3, 1, 1)
	for _, bad := range []float64{-0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("beta %v accepted", bad)
				}
			}()
			NewTwoChoice(g, p, TwoChoiceConfig{Beta: bad})
		}()
	}
	// Boundary values are legal (mean "always d choices").
	NewTwoChoice(g, p, TwoChoiceConfig{Beta: 0})
	NewTwoChoice(g, p, TwoChoiceConfig{Beta: 1})
}

func TestBetaInterpolatesMaxLoad(t *testing.T) {
	// Run the same allocation with β ∈ {~0, 0.5, ~1}: average max load
	// must interpolate between the one-choice and two-choice levels.
	g, p := testWorld(32, 64, 4, 5) // n=1024, ~64 replicas/file
	src := xrand.NewSource(6)
	avgMax := func(beta float64) float64 {
		const trials = 12
		sum := 0
		for i := 0; i < trials; i++ {
			s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: RadiusUnbounded, Beta: beta})
			r := src.Stream(uint64(i) + uint64(beta*1e6))
			loads := ballsbins.NewLoads(g.N())
			for q := 0; q < g.N(); q++ {
				req := Request{Origin: int32(r.IntN(g.N())), File: int32(r.IntN(p.K()))}
				if len(p.Replicas(int(req.File))) == 0 {
					continue
				}
				a := s.Assign(req, loads, r)
				loads.Add(int(a.Server))
			}
			sum += loads.Max()
		}
		return float64(sum) / trials
	}
	lo := avgMax(0.001) // ≈ one choice
	mid := avgMax(0.5)
	hi := avgMax(0.999) // ≈ two choices
	if !(hi < mid && mid < lo) {
		t.Fatalf("beta does not interpolate: β≈0 %.2f, β=0.5 %.2f, β≈1 %.2f", lo, mid, hi)
	}
}
