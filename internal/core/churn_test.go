package core

import (
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/grid"
)

// stormStep applies one random churn event (migration, or exchange when
// the destination is full) to p, mirroring the engine's event shape.
// Returns whether a mutation was applied.
func stormStep(p *cache.Placement, rng *rand.Rand) bool {
	j, u := p.SlotReplica(rng.IntN(p.ReplicaSlots()))
	v := int32(rng.IntN(p.N()))
	if v == u || p.Has(int(v), j) {
		return false
	}
	if p.T(int(v)) < p.M() {
		p.ReplaceReplica(j, u, v)
		return true
	}
	vFiles := p.NodeFiles(int(v))
	j2 := int(vFiles[rng.IntN(len(vFiles))])
	if !p.CanSwap(j, u, j2, v) {
		return false
	}
	p.SwapReplicas(j, u, j2, v)
	return true
}

// TestIndexedCandidatesUnderChurn is the strategy-level mutation-storm
// contract: after every batch of ReplaceReplica/SwapReplicas mutations,
// the tile-walk candidate enumeration must still equal the exact
// radius filter as a set, for every file class (bitmap-dense and
// tile-run sparse) and under template, fallback and bounded-grid
// covers. Churn-enabled placements keep node lists sorted, so the same
// placement serves as its own exact-path oracle.
func TestIndexedCandidatesUnderChurn(t *testing.T) {
	for _, tc := range []struct {
		name string
		l    int
		tile int
		topo grid.Topology
	}{
		{"template", 24, 3, grid.Torus},
		{"fallback", 22, 4, grid.Torus},
		{"bounded", 20, 3, grid.Bounded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const k, m, radius = 48, 3, 5
			g := grid.New(tc.l, tc.topo)
			pl := cache.NewPlacer(g.N(), m, k)
			pl.EnableTiles(g.NewTiling(tc.tile))
			pl.EnableChurn()
			rng := rand.New(rand.NewPCG(uint64(tc.l), 0xBEEF))
			p := pl.Place(dist.NewZipf(k, 1.1), cache.WithReplacement, rng)
			s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius})
			if s.tix == nil {
				t.Fatal("strategy did not bind the tile index")
			}
			applied := 0
			for batch := 0; batch < 20; batch++ {
				for e := 0; e < 40; e++ {
					if stormStep(p, rng) {
						applied++
					}
				}
				for q := 0; q < 40; q++ {
					req := Request{Origin: int32(rng.IntN(g.N())), File: int32(rng.IntN(k))}
					reps := p.Replicas(int(req.File))
					want := slices.Clone(s.exactCandidates(req, reps, nil))
					got := slices.Clone(s.indexedCandidates(req, nil))
					slices.Sort(want)
					slices.Sort(got)
					if !slices.Equal(got, want) {
						t.Fatalf("batch %d u=%d j=%d:\n index %v\n exact %v",
							batch, req.Origin, req.File, got, want)
					}
				}
			}
			if applied < 100 {
				t.Fatalf("storm applied only %d mutations; fixture too tame", applied)
			}
		})
	}
}

// TestAssignUnderChurnStaysInRadius interleaves churn batches with full
// Assign calls across strategies, checking that every non-miss
// assignment lands inside the live S_j ∩ B_r(u) — the "strategies
// always observe a consistent index" contract at the Assign level.
func TestAssignUnderChurnStaysInRadius(t *testing.T) {
	const l, k, m, radius = 18, 60, 3, 4
	g := grid.New(l, grid.Torus)
	for _, indexed := range []bool{false, true} {
		pl := cache.NewPlacer(g.N(), m, k)
		if indexed {
			pl.EnableTiles(g.NewTiling(3))
		}
		pl.EnableChurn()
		rng := rand.New(rand.NewPCG(7, 0xF00D))
		p := pl.Place(dist.NewZipf(k, 1.0), cache.WithReplacement, rng)
		strats := []Strategy{
			NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius}),
			NewLeastLoadedOracle(g, p, radius),
			NewNearestReplica(g, p),
		}
		loads := ballsbins.NewLoads(g.N())
		for round := 0; round < 60; round++ {
			for e := 0; e < 10; e++ {
				stormStep(p, rng)
			}
			for q := 0; q < 30; q++ {
				req := Request{Origin: int32(rng.IntN(g.N())), File: int32(rng.IntN(k))}
				for _, s := range strats {
					a := s.Assign(req, loads, rng)
					loads.Add(int(a.Server))
					if a.Backhaul {
						continue
					}
					if !p.Has(int(a.Server), int(req.File)) {
						t.Fatalf("indexed=%v %s: server %d does not cache file %d",
							indexed, s.Name(), a.Server, req.File)
					}
					if _, ok := s.(*NearestReplica); ok {
						continue
					}
					if !a.Escalated && g.Dist(int(req.Origin), int(a.Server)) > radius {
						t.Fatalf("indexed=%v %s: server %d outside radius", indexed, s.Name(), a.Server)
					}
				}
			}
		}
	}
}
