package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/xrand"
)

func testWorld(l, k, m int, seed uint64) (*grid.Grid, *cache.Placement) {
	g := grid.New(l, grid.Torus)
	p := cache.Place(g.N(), m, dist.NewUniform(k), cache.WithReplacement,
		xrand.NewSource(seed).Stream(0))
	return g, p
}

// cachedFile returns some file with ≥ minReps replicas, or -1.
func cachedFile(p *cache.Placement, minReps int) int {
	for j := 0; j < p.K(); j++ {
		if len(p.Replicas(j)) >= minReps {
			return j
		}
	}
	return -1
}

// uncachedFile returns some file with zero replicas, or -1.
func uncachedFile(p *cache.Placement) int {
	for j := 0; j < p.K(); j++ {
		if len(p.Replicas(j)) == 0 {
			return j
		}
	}
	return -1
}

func TestNearestReplicaIsNearest(t *testing.T) {
	g, p := testWorld(9, 20, 2, 1)
	s := NewNearestReplica(g, p)
	r := xrand.NewSource(2).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	for origin := 0; origin < g.N(); origin++ {
		for j := 0; j < p.K(); j++ {
			if len(p.Replicas(j)) == 0 {
				continue
			}
			a := s.Assign(Request{Origin: int32(origin), File: int32(j)}, loads, r)
			want := NearestDistance(g, p, origin, j)
			if int(a.Hops) != want {
				t.Fatalf("origin %d file %d: hops %d, want %d", origin, j, a.Hops, want)
			}
			if !p.Has(int(a.Server), j) {
				t.Fatalf("server %d does not cache file %d", a.Server, j)
			}
			if a.Backhaul || a.Escalated {
				t.Fatalf("unexpected flags: %+v", a)
			}
		}
	}
}

func TestNearestReplicaModesAgreeOnDistance(t *testing.T) {
	// Ring and scan searches must return servers at identical distances
	// for every (origin, file) — the tie *choice* may differ, the
	// distance may not.
	g, p := testWorld(8, 15, 2, 3)
	ring := NewNearestReplicaMode(g, p, SearchRing)
	scan := NewNearestReplicaMode(g, p, SearchScan)
	r := xrand.NewSource(4).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	for origin := 0; origin < g.N(); origin++ {
		for j := 0; j < p.K(); j++ {
			if len(p.Replicas(j)) == 0 {
				continue
			}
			req := Request{Origin: int32(origin), File: int32(j)}
			if a, b := ring.Assign(req, loads, r), scan.Assign(req, loads, r); a.Hops != b.Hops {
				t.Fatalf("origin %d file %d: ring %d hops, scan %d hops", origin, j, a.Hops, b.Hops)
			}
		}
	}
}

func TestNearestReplicaTieUniformity(t *testing.T) {
	// Pick a (origin, file) pair with several equidistant nearest
	// replicas and verify both search modes spread choices uniformly.
	g, p := testWorld(10, 8, 1, 7)
	r := xrand.NewSource(8).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	for origin := 0; origin < g.N(); origin++ {
		for j := 0; j < p.K(); j++ {
			reps := p.Replicas(j)
			if len(reps) < 2 {
				continue
			}
			d := NearestDistance(g, p, origin, j)
			var ties []int32
			for _, v := range reps {
				if g.Dist(origin, int(v)) == d {
					ties = append(ties, v)
				}
			}
			if len(ties) < 3 {
				continue
			}
			for _, mode := range []SearchMode{SearchRing, SearchScan} {
				s := NewNearestReplicaMode(g, p, mode)
				counts := map[int32]int{}
				const trials = 3000
				for i := 0; i < trials; i++ {
					a := s.Assign(Request{Origin: int32(origin), File: int32(j)}, loads, r)
					counts[a.Server]++
				}
				want := 1.0 / float64(len(ties))
				for _, v := range ties {
					got := float64(counts[v]) / trials
					if math.Abs(got-want) > 0.05 {
						t.Fatalf("mode %v: tie server %d frequency %.3f, want %.3f", mode, v, got, want)
					}
				}
			}
			return
		}
	}
	t.Skip("no multi-way tie found")
}

func TestNearestReplicaBackhaul(t *testing.T) {
	g, p := testWorld(6, 500, 1, 2) // K >> nM guarantees uncached files
	j := uncachedFile(p)
	if j < 0 {
		t.Skip("no uncached file")
	}
	s := NewNearestReplica(g, p)
	a := s.Assign(Request{Origin: 5, File: int32(j)}, ballsbins.NewLoads(g.N()), xrand.NewSource(0).Stream(0))
	if !a.Backhaul || a.Server != 5 || a.Hops != 0 {
		t.Fatalf("backhaul assignment wrong: %+v", a)
	}
}

func TestSearchModeString(t *testing.T) {
	if SearchAdaptive.String() != "adaptive" || SearchRing.String() != "ring" ||
		SearchScan.String() != "scan" || SearchMode(9).String() != "unknown" {
		t.Fatal("SearchMode strings wrong")
	}
}

func TestTwoChoicePicksLesserLoaded(t *testing.T) {
	g, p := testWorld(7, 5, 2, 11)
	j := cachedFile(p, 2)
	s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: RadiusUnbounded})
	r := xrand.NewSource(12).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	// Load every replica of j except one heavily; the strategy must then
	// almost always route to the unloaded one (it is picked whenever
	// sampled at least once: probability 1-(1-1/c)^2).
	reps := p.Replicas(j)
	free := reps[0]
	for _, v := range reps[1:] {
		for i := 0; i < 50; i++ {
			loads.Add(int(v))
		}
	}
	wins := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		a := s.Assign(Request{Origin: 0, File: int32(j)}, loads, r)
		if !p.Has(int(a.Server), j) {
			t.Fatalf("server %d does not cache %d", a.Server, j)
		}
		if a.Server == free {
			wins++
		}
	}
	c := float64(len(reps))
	wantMin := 1 - math.Pow(1-1/c, 2) - 0.05
	if got := float64(wins) / trials; got < wantMin {
		t.Fatalf("unloaded replica chosen %.3f of the time, want ≥ %.3f", got, wantMin)
	}
}

func TestTwoChoiceUniformOverCandidatesWhenTied(t *testing.T) {
	// With all loads equal, the served node should be uniform over the
	// candidate set for d=2 with replacement + uniform tie breaking.
	g, p := testWorld(8, 4, 1, 13)
	j := cachedFile(p, 3)
	if j < 0 {
		t.Skip("no well-replicated file")
	}
	s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: RadiusUnbounded})
	r := xrand.NewSource(14).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	reps := p.Replicas(j)
	counts := map[int32]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[s.Assign(Request{Origin: 3, File: int32(j)}, loads, r).Server]++
	}
	want := 1.0 / float64(len(reps))
	for _, v := range reps {
		got := float64(counts[v]) / trials
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("replica %d frequency %.4f, want %.4f", v, got, want)
		}
	}
}

func TestTwoChoiceRadiusRespected(t *testing.T) {
	g, p := testWorld(15, 10, 1, 17)
	radius := 3
	s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius})
	r := xrand.NewSource(18).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	for origin := 0; origin < g.N(); origin++ {
		for j := 0; j < p.K(); j++ {
			if len(p.Replicas(j)) == 0 {
				continue
			}
			a := s.Assign(Request{Origin: int32(origin), File: int32(j)}, loads, r)
			if a.Backhaul {
				t.Fatalf("unexpected backhaul for cached file %d", j)
			}
			hasLocal := false
			for _, v := range p.Replicas(j) {
				if g.Dist(origin, int(v)) <= radius {
					hasLocal = true
					break
				}
			}
			if hasLocal {
				if a.Escalated || int(a.Hops) > radius {
					t.Fatalf("local replica exists but assignment %+v (radius %d)", a, radius)
				}
			} else if !a.Escalated {
				t.Fatalf("no local replica yet not escalated: origin %d file %d", origin, j)
			}
		}
	}
}

func TestTwoChoiceNoEscalateBackhauls(t *testing.T) {
	g, p := testWorld(15, 10, 1, 17)
	s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: 2, NoEscalate: true})
	r := xrand.NewSource(19).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	sawBackhaul := false
	for origin := 0; origin < g.N() && !sawBackhaul; origin++ {
		for j := 0; j < p.K(); j++ {
			if len(p.Replicas(j)) == 0 {
				continue
			}
			a := s.Assign(Request{Origin: int32(origin), File: int32(j)}, loads, r)
			if a.Backhaul {
				if a.Server != int32(origin) || a.Hops != 0 {
					t.Fatalf("backhaul must serve at origin: %+v", a)
				}
				sawBackhaul = true
				break
			}
			if int(a.Hops) > 2 {
				t.Fatalf("NoEscalate served beyond radius: %+v", a)
			}
		}
	}
	if !sawBackhaul {
		t.Skip("every (origin,file) pair had a local replica (unlikely)")
	}
}

func TestTwoChoiceRejectionMatchesExactDistribution(t *testing.T) {
	// The rejection sampler (big replica lists) and the exact filter
	// (small lists) must produce the same served-node distribution.
	// Force both paths by toggling maxTry on the same world.
	g, p := testWorld(12, 3, 1, 23) // K=3, M=1 ⇒ huge replica lists
	j := cachedFile(p, 10)
	radius := 4
	origin := int32(50)
	loads := ballsbins.NewLoads(g.N())

	run := func(forceExact bool) map[int32]float64 {
		s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius})
		if forceExact {
			s.maxTry = 0 // force exact-filter fallback
		}
		r := xrand.NewSource(24).Stream(0)
		counts := map[int32]int{}
		const trials = 40000
		for i := 0; i < trials; i++ {
			counts[s.Assign(Request{Origin: origin, File: int32(j)}, loads, r).Server]++
		}
		freq := map[int32]float64{}
		for k, v := range counts {
			freq[k] = float64(v) / trials
		}
		return freq
	}
	fr, fe := run(false), run(true)
	for k := range fe {
		if math.Abs(fr[k]-fe[k]) > 0.02 {
			t.Fatalf("server %d: rejection %.4f vs exact %.4f", k, fr[k], fe[k])
		}
	}
}

func TestTwoChoiceWithoutReplacementDistinct(t *testing.T) {
	// With exactly 2 candidates and one heavily loaded, without-
	// replacement sampling must *always* pick the light one (both
	// candidates always inspected), unlike with-replacement.
	g := grid.New(6, grid.Torus)
	// Build a placement with a file cached at exactly 2 nodes by retrying.
	for seed := uint64(0); seed < 100; seed++ {
		p := cache.Place(g.N(), 1, dist.NewUniform(30), cache.WithReplacement,
			xrand.NewSource(seed).Stream(0))
		for j := 0; j < p.K(); j++ {
			reps := p.Replicas(j)
			if len(reps) != 2 {
				continue
			}
			loads := ballsbins.NewLoads(g.N())
			for i := 0; i < 10; i++ {
				loads.Add(int(reps[1]))
			}
			s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: RadiusUnbounded, WithoutReplacement: true})
			r := xrand.NewSource(25).Stream(0)
			for i := 0; i < 500; i++ {
				a := s.Assign(Request{Origin: 0, File: int32(j)}, loads, r)
				if a.Server != reps[0] {
					t.Fatalf("without-replacement missed the light replica: %+v", a)
				}
			}
			return
		}
	}
	t.Skip("no two-replica file found")
}

func TestOneChoiceIgnoresLoad(t *testing.T) {
	g, p := testWorld(8, 4, 1, 29)
	j := cachedFile(p, 4)
	s := NewOneChoice(g, p, RadiusUnbounded)
	if s.Name() != "one-choice(r=inf)" {
		t.Fatalf("name: %s", s.Name())
	}
	loads := ballsbins.NewLoads(g.N())
	reps := p.Replicas(j)
	// Load all but one replica; one-choice must still pick uniformly.
	for _, v := range reps[1:] {
		loads.Add(int(v))
	}
	r := xrand.NewSource(30).Stream(0)
	c0 := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if s.Assign(Request{Origin: 1, File: int32(j)}, loads, r).Server == reps[0] {
			c0++
		}
	}
	want := 1.0 / float64(len(reps))
	if got := float64(c0) / trials; math.Abs(got-want) > 0.02 {
		t.Fatalf("one-choice picked light replica %.4f, want %.4f (load-blind)", got, want)
	}
}

func TestLeastLoadedOracle(t *testing.T) {
	g, p := testWorld(9, 6, 2, 31)
	j := cachedFile(p, 3)
	o := NewLeastLoadedOracle(g, p, RadiusUnbounded)
	r := xrand.NewSource(32).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	reps := p.Replicas(j)
	// Give distinct loads: oracle must always choose the global minimum.
	for i, v := range reps {
		for k := 0; k < i; k++ {
			loads.Add(int(v))
		}
	}
	for i := 0; i < 200; i++ {
		a := o.Assign(Request{Origin: 7, File: int32(j)}, loads, r)
		if a.Server != reps[0] {
			t.Fatalf("oracle chose %d (load %d), want %d (load 0)", a.Server, loads.Load(int(a.Server)), reps[0])
		}
	}
	if o.Name() == "" {
		t.Fatal("empty oracle name")
	}
}

func TestLeastLoadedOracleRadiusAndBackhaul(t *testing.T) {
	g, p := testWorld(15, 600, 1, 33)
	o := NewLeastLoadedOracle(g, p, 2)
	r := xrand.NewSource(34).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	if j := uncachedFile(p); j >= 0 {
		a := o.Assign(Request{Origin: 3, File: int32(j)}, loads, r)
		if !a.Backhaul {
			t.Fatalf("oracle should backhaul uncached file: %+v", a)
		}
	}
	j := cachedFile(p, 1)
	a := o.Assign(Request{Origin: 3, File: int32(j)}, loads, r)
	if a.Backhaul {
		t.Fatalf("oracle backhauled a cached file")
	}
}

func TestTwoChoiceConfigValidation(t *testing.T) {
	g, p := testWorld(5, 3, 1, 35)
	for name, fn := range map[string]func(){
		"neg choices": func() { NewTwoChoice(g, p, TwoChoiceConfig{Choices: -1}) },
		"bad radius":  func() { NewTwoChoice(g, p, TwoChoiceConfig{Radius: -7}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	// Radius ≥ diameter normalizes to unbounded.
	s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: 1000})
	if s.Radius() != RadiusUnbounded {
		t.Fatalf("huge radius not normalized: %d", s.Radius())
	}
	if s.Name() != "2-choice(r=inf)" {
		t.Fatalf("name: %s", s.Name())
	}
	if n := NewTwoChoice(g, p, TwoChoiceConfig{Radius: 1}).Name(); n != "2-choice(r=1)" {
		t.Fatalf("finite-radius name: %s", n)
	}
}

func TestGridPlacementMismatchPanics(t *testing.T) {
	g := grid.New(5, grid.Torus)
	p := cache.Place(9, 1, dist.NewUniform(3), cache.WithReplacement, xrand.NewSource(0).Stream(0))
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched sizes did not panic")
		}
	}()
	NewNearestReplica(g, p)
}

func TestAssignmentServerAlwaysValid(t *testing.T) {
	// Property: for random worlds and random requests, every strategy
	// returns a server in range that caches the file (or flags backhaul).
	prop := func(seed uint64, lRaw, kRaw, mRaw, radRaw uint8) bool {
		l := int(lRaw)%8 + 3
		k := int(kRaw)%40 + 1
		m := int(mRaw)%5 + 1
		g, p := testWorld(l, k, m, seed)
		radius := int(radRaw) % (g.Diameter() + 2)
		r := xrand.NewSource(seed + 1).Stream(0)
		loads := ballsbins.NewLoads(g.N())
		strategies := []Strategy{
			NewNearestReplica(g, p),
			NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius}),
			NewTwoChoice(g, p, TwoChoiceConfig{Radius: RadiusUnbounded, WithoutReplacement: true}),
			NewOneChoice(g, p, radius),
			NewLeastLoadedOracle(g, p, radius),
		}
		for trial := 0; trial < 30; trial++ {
			req := Request{Origin: int32(r.IntN(g.N())), File: int32(r.IntN(k))}
			for _, s := range strategies {
				a := s.Assign(req, loads, r)
				if a.Server < 0 || int(a.Server) >= g.N() {
					return false
				}
				if a.Backhaul {
					if len(p.Replicas(int(req.File))) != 0 || a.Server != req.Origin {
						return false
					}
					continue
				}
				if !p.Has(int(a.Server), int(req.File)) {
					return false
				}
				if int(a.Hops) != g.Dist(int(req.Origin), int(a.Server)) {
					return false
				}
				loads.Add(int(a.Server))
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNearestAdaptive(b *testing.B) {
	g, p := testWorld(45, 100, 1, 1)
	s := NewNearestReplica(g, p)
	r := xrand.NewSource(2).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := Request{Origin: int32(r.IntN(g.N())), File: int32(r.IntN(100))}
		if len(p.Replicas(int(req.File))) == 0 {
			continue
		}
		_ = s.Assign(req, loads, r)
	}
}

func BenchmarkTwoChoiceUnbounded(b *testing.B) {
	g, p := testWorld(45, 500, 10, 1)
	s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: RadiusUnbounded})
	r := xrand.NewSource(2).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := Request{Origin: int32(r.IntN(g.N())), File: int32(r.IntN(500))}
		a := s.Assign(req, loads, r)
		loads.Add(int(a.Server))
	}
}

func BenchmarkTwoChoiceRadius8(b *testing.B) {
	g, p := testWorld(45, 500, 10, 1)
	s := NewTwoChoice(g, p, TwoChoiceConfig{Radius: 8})
	r := xrand.NewSource(2).Stream(0)
	loads := ballsbins.NewLoads(g.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := Request{Origin: int32(r.IntN(g.N())), File: int32(r.IntN(500))}
		a := s.Assign(req, loads, r)
		loads.Add(int(a.Server))
	}
}
