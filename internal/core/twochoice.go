package core

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/grid"
)

// RadiusUnbounded selects r = ∞ (equivalently r ≥ torus diameter; the
// paper uses r = √n and r = ∞ interchangeably, footnote 2).
const RadiusUnbounded = -1

// TwoChoiceConfig parameterizes Strategy II and its generalizations.
type TwoChoiceConfig struct {
	// Radius is the proximity constraint r in hops. RadiusUnbounded (or
	// any value ≥ the torus diameter) removes the constraint.
	Radius int
	// Choices is d, the number of candidate replicas sampled per request
	// (0 defaults to the paper's d = 2; d = 1 is the random-replica
	// baseline).
	Choices int
	// WithoutReplacement samples the d candidates distinct when possible.
	// The default (false) matches the standard Azar et al. model of
	// independent choices, which the paper's analysis uses.
	WithoutReplacement bool
	// NoEscalate disables widening the search to r = ∞ when B_r(u) holds
	// no replica; such requests are then served via backhaul at the
	// origin. The default escalation matches DESIGN.md §4.4.
	NoEscalate bool
	// Beta, when in (0, 1), enables the (1+β)-choice process
	// (Mitzenmacher et al.): each request uses the full d choices with
	// probability β and a single random choice otherwise, trading load
	// balance for probe traffic. 0 (and 1) mean "always d choices".
	Beta float64
}

// TwoChoice is Strategy II (Definition 3): sample d (=2) uniform replicas
// of the requested file within hop radius r of the origin and assign the
// request to the least loaded, ties uniform.
type TwoChoice struct {
	common
	cfg     TwoChoiceConfig
	ballN   int             // |B_r| on the torus (candidate-space size for rejection)
	maxTry  int             // rejection budget before exact fallback
	ball    *grid.BallTable // precomputed B_r template (nil when inapplicable)
	ballBuf []int32
	candBuf []int32
	seenBuf []int32 // distinct-candidate scratch (WithoutReplacement)
}

// NewTwoChoice builds Strategy II. It panics on nonsensical configuration
// (Choices < 0 or Radius < RadiusUnbounded).
func NewTwoChoice(g *grid.Grid, p *cache.Placement, cfg TwoChoiceConfig) *TwoChoice {
	if cfg.Choices < 0 {
		panic(fmt.Sprintf("core: negative choice count %d", cfg.Choices))
	}
	if cfg.Choices == 0 {
		cfg.Choices = 2
	}
	if cfg.Radius < RadiusUnbounded {
		panic(fmt.Sprintf("core: invalid radius %d", cfg.Radius))
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		panic(fmt.Sprintf("core: beta must lie in [0,1], got %v", cfg.Beta))
	}
	if cfg.Radius == RadiusUnbounded || cfg.Radius >= g.Diameter() {
		cfg.Radius = RadiusUnbounded
	}
	t := &TwoChoice{common: newCommon(g, p), cfg: cfg}
	if cfg.Radius != RadiusUnbounded {
		t.ballN = g.BallSize(cfg.Radius)
		t.ball = g.NewBallTable(cfg.Radius)
		// Expected rejection tries per accepted draw is n/|B_r|; budget a
		// small multiple before paying for the exact candidate list.
		// Distinct-candidate sampling always uses the exact list (the
		// rejection loop cannot guarantee distinctness cheaply).
		if !cfg.WithoutReplacement {
			t.maxTry = 4*(g.N()/t.ballN+1) + 16
		}
	}
	return t
}

// Rebind implements Rebindable: swap the placement, keep scratch.
func (s *TwoChoice) Rebind(p *cache.Placement) { s.common.rebind(p) }

// Name implements Strategy.
func (s *TwoChoice) Name() string {
	if s.cfg.Choices == 1 {
		return fmt.Sprintf("one-choice(r=%s)", s.radiusLabel())
	}
	return fmt.Sprintf("%d-choice(r=%s)", s.cfg.Choices, s.radiusLabel())
}

func (s *TwoChoice) radiusLabel() string {
	if s.cfg.Radius == RadiusUnbounded {
		return "inf"
	}
	return fmt.Sprintf("%d", s.cfg.Radius)
}

// Radius returns the effective proximity constraint (RadiusUnbounded when
// unrestricted).
func (s *TwoChoice) Radius() int { return s.cfg.Radius }

// Assign implements Strategy.
func (s *TwoChoice) Assign(req Request, loads *ballsbins.Loads, r *rand.Rand) Assignment {
	reps := s.p.Replicas(int(req.File))
	if len(reps) == 0 {
		return backhaul(req)
	}
	d := s.cfg.Choices
	if s.cfg.Beta > 0 && s.cfg.Beta < 1 && r.Float64() >= s.cfg.Beta {
		d = 1 // the (1+β) process degrades to one choice this round
	}
	if s.cfg.Radius == RadiusUnbounded {
		return assignmentTo(s.g, req, s.pickFromPool(reps, d, loads, r), false)
	}
	// Bounded radius. Rejection sampling pays off only when the replica
	// list is larger than the try budget; the budget is zero for
	// distinct-candidate sampling (the rejection loop cannot guarantee
	// distinctness cheaply), which therefore goes straight to the exact
	// filter instead of through a doomed sampler. Both rejection forms
	// draw uniformly over S_j ∩ B_r(u), from whichever side of the
	// intersection is denser: a uniform replica accepted when it lies in
	// the ball (sparse files), or a uniform ball node accepted when it
	// caches the file (popular files, where the replica list can be
	// almost the whole network and in-ball hits are rare).
	if len(reps) > s.maxTry && s.maxTry > 0 {
		if s.ball != nil && len(reps) > s.ballN {
			if srv, ok := s.sampleFromBall(req, d, loads, r); ok {
				return assignmentTo(s.g, req, srv, false)
			}
		} else if srv, ok := s.sampleByRejection(req, reps, d, loads, r); ok {
			return assignmentTo(s.g, req, srv, false)
		}
	}
	// Exact in-radius candidate list (also the rejection fallback).
	s.candBuf = s.exactCandidates(req, reps, s.candBuf[:0])
	pool, escalated := s.candBuf, false
	if len(pool) == 0 {
		if s.cfg.NoEscalate {
			return backhaul(req)
		}
		pool, escalated = reps, true
	}
	return assignmentTo(s.g, req, s.pickFromPool(pool, d, loads, r), escalated)
}

// exactCandidates filters the replicas of req.File to those within the
// radius, choosing the cheaper of scanning the replica list or enumerating
// the ball.
func (s *TwoChoice) exactCandidates(req Request, reps []int32, dst []int32) []int32 {
	if len(reps) <= s.ballN {
		for _, v := range reps {
			if s.g.Dist(int(req.Origin), int(v)) <= s.cfg.Radius {
				dst = append(dst, v)
			}
		}
		return dst
	}
	if s.ball != nil {
		s.ballBuf = s.ball.Append(int(req.Origin), s.ballBuf[:0])
	} else {
		s.ballBuf = s.g.Ball(int(req.Origin), s.cfg.Radius, s.ballBuf[:0])
	}
	for _, v := range s.ballBuf {
		if s.p.Has(int(v), int(req.File)) {
			dst = append(dst, v)
		}
	}
	return dst
}

// sampleByRejection draws the d candidates by rejection from the replica
// list (accept when within radius). Returns ok=false when the try budget
// is exhausted before d acceptances.
func (s *TwoChoice) sampleByRejection(req Request, reps []int32, d int, loads *ballsbins.Loads, r *rand.Rand) (int32, bool) {
	var best int32 = -1
	ties := 0
	accepted := 0
	tries := 0
	for accepted < d {
		if tries >= s.maxTry {
			return -1, false
		}
		tries++
		v := reps[r.IntN(len(reps))]
		if s.g.Dist(int(req.Origin), int(v)) > s.cfg.Radius {
			continue
		}
		accepted++
		best, ties = s.foldCandidate(best, ties, v, loads, r)
	}
	return best, true
}

// sampleFromBall draws the d candidates by rejection from the ball
// (uniform node of B_r(u), accepted when it caches the file). Uniform over
// S_j ∩ B_r(u), exactly like sampleByRejection, but with acceptance
// probability |S_j ∩ B_r|/|B_r| instead of |S_j ∩ B_r|/|S_j| — the right
// side of the intersection when replicas outnumber the ball. Returns
// ok=false when the try budget is exhausted before d acceptances.
func (s *TwoChoice) sampleFromBall(req Request, d int, loads *ballsbins.Loads, r *rand.Rand) (int32, bool) {
	// Expected tries per accepted draw is |B_r|/|S_j ∩ B_r| ≈ n/|S_j| ≤
	// n/|B_r| here; reuse the symmetric budget of the replica-side loop.
	var best int32 = -1
	ties := 0
	accepted := 0
	tries := 0
	file := int(req.File)
	for accepted < d {
		if tries >= s.maxTry {
			return -1, false
		}
		tries++
		v := s.ball.Node(int(req.Origin), r.IntN(s.ballN))
		if !s.p.Has(int(v), file) {
			continue
		}
		accepted++
		best, ties = s.foldCandidate(best, ties, v, loads, r)
	}
	return best, true
}

// pickFromPool samples d candidates uniformly from pool and returns the
// least-loaded (ties uniform).
func (s *TwoChoice) pickFromPool(pool []int32, d int, loads *ballsbins.Loads, r *rand.Rand) int32 {
	if len(pool) == 1 {
		return pool[0]
	}
	var best int32 = -1
	ties := 0
	if s.cfg.WithoutReplacement {
		if d >= len(pool) {
			// Degenerates to the full-information oracle over the pool.
			for _, v := range pool {
				best, ties = s.foldCandidate(best, ties, v, loads, r)
			}
			return best
		}
		// Partial Fisher–Yates over indices via a small map-free trick:
		// for d ≪ |pool| rejection on a tiny set is cheapest.
		seen := s.seenBuf[:0]
	draw:
		for len(seen) < d {
			v := pool[r.IntN(len(pool))]
			for _, u := range seen {
				if u == v {
					continue draw
				}
			}
			seen = append(seen, v)
			best, ties = s.foldCandidate(best, ties, v, loads, r)
		}
		s.seenBuf = seen
		return best
	}
	for i := 0; i < d; i++ {
		v := pool[r.IntN(len(pool))]
		best, ties = s.foldCandidate(best, ties, v, loads, r)
	}
	return best
}

// foldCandidate updates the running least-loaded winner with uniform tie
// breaking (reservoir over minima).
func (s *TwoChoice) foldCandidate(best int32, ties int, v int32, loads *ballsbins.Loads, r *rand.Rand) (int32, int) {
	if best < 0 {
		return v, 1
	}
	lv, lb := loads.Load(int(v)), loads.Load(int(best))
	switch {
	case lv < lb:
		return v, 1
	case lv == lb:
		ties++
		if r.IntN(ties) == 0 {
			return v, ties
		}
	}
	return best, ties
}

var _ Strategy = (*TwoChoice)(nil)

// LeastLoadedOracle assigns each request to the least-loaded replica
// within the radius (full load information — the unattainable lower
// envelope for any sampling strategy; used in ablation benches).
type LeastLoadedOracle struct {
	inner *TwoChoice
}

// NewLeastLoadedOracle builds the oracle baseline.
func NewLeastLoadedOracle(g *grid.Grid, p *cache.Placement, radius int) *LeastLoadedOracle {
	return &LeastLoadedOracle{inner: NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius})}
}

// Name implements Strategy.
func (o *LeastLoadedOracle) Name() string {
	return fmt.Sprintf("least-loaded(r=%s)", o.inner.radiusLabel())
}

// Rebind implements Rebindable.
func (o *LeastLoadedOracle) Rebind(p *cache.Placement) { o.inner.Rebind(p) }

// Assign implements Strategy.
func (o *LeastLoadedOracle) Assign(req Request, loads *ballsbins.Loads, r *rand.Rand) Assignment {
	s := o.inner
	reps := s.p.Replicas(int(req.File))
	if len(reps) == 0 {
		return backhaul(req)
	}
	pool := reps
	escalated := false
	if s.cfg.Radius != RadiusUnbounded {
		s.candBuf = s.exactCandidates(req, reps, s.candBuf[:0])
		pool = s.candBuf
		if len(pool) == 0 {
			pool, escalated = reps, true
		}
	}
	var best int32 = -1
	ties := 0
	for _, v := range pool {
		best, ties = s.foldCandidate(best, ties, v, loads, r)
	}
	return assignmentTo(s.g, req, best, escalated)
}

var _ Strategy = (*LeastLoadedOracle)(nil)

// NewOneChoice returns the random-replica-in-radius baseline (d = 1),
// the natural "no load information" counterpart of Strategy II.
func NewOneChoice(g *grid.Grid, p *cache.Placement, radius int) *TwoChoice {
	return NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius, Choices: 1})
}
