package core

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/cache"
	"repro/internal/grid"
)

// RadiusUnbounded selects r = ∞ (equivalently r ≥ torus diameter; the
// paper uses r = √n and r = ∞ interchangeably, footnote 2).
const RadiusUnbounded = -1

// TwoChoiceConfig parameterizes Strategy II and its generalizations.
type TwoChoiceConfig struct {
	// Radius is the proximity constraint r in hops. RadiusUnbounded (or
	// any value ≥ the torus diameter) removes the constraint.
	Radius int
	// Choices is d, the number of candidate replicas sampled per request
	// (0 defaults to the paper's d = 2; d = 1 is the random-replica
	// baseline).
	Choices int
	// WithoutReplacement samples the d candidates distinct when possible.
	// The default (false) matches the standard Azar et al. model of
	// independent choices, which the paper's analysis uses.
	WithoutReplacement bool
	// NoEscalate disables widening the search to r = ∞ when B_r(u) holds
	// no replica; such requests are then served via backhaul at the
	// origin. The default escalation matches DESIGN.md §4.4.
	NoEscalate bool
	// Beta, when in (0, 1), enables the (1+β)-choice process
	// (Mitzenmacher et al.): each request uses the full d choices with
	// probability β and a single random choice otherwise, trading load
	// balance for probe traffic. 0 (and 1) mean "always d choices".
	Beta float64
}

// TwoChoice is Strategy II (Definition 3): sample d (=2) uniform replicas
// of the requested file within hop radius r of the origin and assign the
// request to the least loaded, ties uniform.
type TwoChoice struct {
	common
	cfg     TwoChoiceConfig
	ballN   int             // |B_r| on the torus (candidate-space size for rejection)
	maxTry  int             // rejection budget before exact fallback
	ball    *grid.BallTable // precomputed B_r template (nil when inapplicable)
	ballBuf []int32
	candBuf []int32
	seenBuf []int32 // distinct-candidate scratch (WithoutReplacement)

	// Tile-index path (bound when the placement carries a TileIndex).
	tix         *cache.TileIndex
	boundTiling *grid.Tiling     // geometry the cover/buffers were built for
	cover       *grid.CoverTable // radius cover template (nil → per-query Cover)
	coverBuf    grid.CoverBuf
	runs        []tileRun // per covered tile holding replicas of the file
	gl          int       // grid side, for table-free distance arithmetic
	torus       bool

	// Fault-injection path (bound when the engine runs with Faults on).
	live      *cache.Liveness // nil = liveness-blind (golden-pinned paths)
	liveTiles bool            // live counts share boundTiling: tile skip valid
	liveBuf   []int32         // live-filtered pool scratch (degradation ladder)
	retried   bool            // per-Assign: a dead candidate was rejected
}

// tileRun is one covered tile's replica slice: nodes()[start:start+n],
// with full reporting whether the tile lies entirely inside B_r(u).
type tileRun struct {
	start int32
	n     int32
	full  bool
}

// NewTwoChoice builds Strategy II. It panics on nonsensical configuration
// (Choices < 0 or Radius < RadiusUnbounded).
func NewTwoChoice(g *grid.Grid, p *cache.Placement, cfg TwoChoiceConfig) *TwoChoice {
	if cfg.Choices < 0 {
		panic(fmt.Sprintf("core: negative choice count %d", cfg.Choices))
	}
	if cfg.Choices == 0 {
		cfg.Choices = 2
	}
	if cfg.Radius < RadiusUnbounded {
		panic(fmt.Sprintf("core: invalid radius %d", cfg.Radius))
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		panic(fmt.Sprintf("core: beta must lie in [0,1], got %v", cfg.Beta))
	}
	if cfg.Radius == RadiusUnbounded || cfg.Radius >= g.Diameter() {
		cfg.Radius = RadiusUnbounded
	}
	t := &TwoChoice{common: newCommon(g, p), cfg: cfg,
		gl: g.Side(), torus: g.Topology() == grid.Torus}
	if cfg.Radius != RadiusUnbounded {
		t.ballN = g.BallSize(cfg.Radius)
		t.ball = g.NewBallTable(cfg.Radius)
		// Expected rejection tries per accepted draw is n/|B_r|; budget a
		// small multiple before paying for the exact candidate list.
		// Distinct-candidate sampling always uses the exact list (the
		// rejection loop cannot guarantee distinctness cheaply).
		if !cfg.WithoutReplacement {
			t.maxTry = 4*(g.N()/t.ballN+1) + 16
		}
		t.bindIndex()
	}
	return t
}

// bindIndex adopts the placement's spatial replica index, if any, and
// (re)builds the radius cover template over its tile geometry. With an
// index bound, Assign routes bounded-radius candidate work through the
// tile walk instead of the rejection/exact-filter ladder.
func (s *TwoChoice) bindIndex() {
	tix := s.p.TileIndex()
	if tix == nil {
		s.tix, s.cover, s.boundTiling = nil, nil, nil
		s.bindLiveTiles()
		return
	}
	// Compare against the tiling the cover was actually built for — a
	// Placer rebinding a different tiling reuses the same TileIndex
	// address, so comparing through s.tix could never detect the swap.
	if s.boundTiling != tix.Tiling() {
		s.boundTiling = tix.Tiling()
		s.cover = tix.Tiling().NewCoverTable(s.cfg.Radius)
		// Pre-size the per-request buffers to their worst case — every
		// covered tile holds an in-ball cell, so covers and runs are
		// bounded by min(|B_r|, #tiles) and exact candidate lists by
		// |B_r| — keeping steady-state trials allocation-free from the
		// first placement instead of creeping to a high-water mark.
		maxRuns := min(s.ballN, tix.Tiling().Tiles())
		if cap(s.runs) < maxRuns {
			s.runs = make([]tileRun, 0, maxRuns)
		}
		if cap(s.coverBuf.IDs) < maxRuns {
			s.coverBuf.IDs = make([]int32, 0, maxRuns)
			s.coverBuf.Full = make([]bool, 0, maxRuns)
		}
		if cap(s.candBuf) < s.ballN {
			s.candBuf = make([]int32, 0, s.ballN)
		}
		if cap(s.ballBuf) < s.ballN {
			s.ballBuf = make([]int32, 0, s.ballN) // dense exact fallback
		}
		if d := max(s.cfg.Choices, 4); cap(s.seenBuf) < d {
			s.seenBuf = make([]int32, 0, d)
		}
	}
	s.tix = tix
	s.bindLiveTiles()
}

// bindLiveTiles decides whether the per-tile live counts can gate the
// tile walk: only when the liveness mask counts over the very tiling the
// index buckets by (the engine binds both to the world's tiling; any
// mismatch just disables the skip, never corrupts it).
func (s *TwoChoice) bindLiveTiles() {
	s.liveTiles = s.live != nil && s.boundTiling != nil && s.live.Tiling() == s.boundTiling
}

// SetLiveness implements LivenessAware. Binding a mask routes every
// candidate path through the graceful-degradation ladder; binding nil
// restores the exact liveness-blind draw sequences.
func (s *TwoChoice) SetLiveness(lv *cache.Liveness) {
	s.live = lv
	if lv != nil && cap(s.liveBuf) < s.g.N() {
		s.liveBuf = make([]int32, 0, s.g.N())
	}
	s.bindLiveTiles()
}

// Rebind implements Rebindable: swap the placement, keep scratch.
func (s *TwoChoice) Rebind(p *cache.Placement) {
	s.common.rebind(p)
	if s.cfg.Radius != RadiusUnbounded {
		s.bindIndex()
	}
}

// Name implements Strategy.
func (s *TwoChoice) Name() string {
	if s.cfg.Choices == 1 {
		return fmt.Sprintf("one-choice(r=%s)", s.radiusLabel())
	}
	return fmt.Sprintf("%d-choice(r=%s)", s.cfg.Choices, s.radiusLabel())
}

func (s *TwoChoice) radiusLabel() string {
	if s.cfg.Radius == RadiusUnbounded {
		return "inf"
	}
	return fmt.Sprintf("%d", s.cfg.Radius)
}

// Radius returns the effective proximity constraint (RadiusUnbounded when
// unrestricted).
func (s *TwoChoice) Radius() int { return s.cfg.Radius }

// Assign implements Strategy.
func (s *TwoChoice) Assign(req Request, loads LoadReader, r *rand.Rand) Assignment {
	s.retried = false
	a := s.assign(req, loads, r)
	a.Retried = s.retried
	return a
}

// assign is the dispatch body behind Assign; the wrapper exists only to
// reset and stamp the per-request retried flag across its many returns.
func (s *TwoChoice) assign(req Request, loads LoadReader, r *rand.Rand) Assignment {
	reps := s.p.Replicas(int(req.File))
	if len(reps) == 0 {
		return backhaul(req)
	}
	d := s.cfg.Choices
	if s.cfg.Beta > 0 && s.cfg.Beta < 1 && r.Float64() >= s.cfg.Beta {
		d = 1 // the (1+β) process degrades to one choice this round
	}
	if s.cfg.Radius == RadiusUnbounded {
		if srv, ok := s.pickLivePool(reps, d, loads, r); ok {
			return assignmentTo(s.g, req, srv, false)
		}
		return backhaul(req) // every replica of the file is dead
	}
	if s.tix != nil {
		return s.assignIndexed(req, reps, d, loads, r)
	}
	// Bounded radius. Rejection sampling pays off only when the replica
	// list is larger than the try budget; the budget is zero for
	// distinct-candidate sampling (the rejection loop cannot guarantee
	// distinctness cheaply), which therefore goes straight to the exact
	// filter instead of through a doomed sampler. Both rejection forms
	// draw uniformly over S_j ∩ B_r(u), from whichever side of the
	// intersection is denser: a uniform replica accepted when it lies in
	// the ball (sparse files), or a uniform ball node accepted when it
	// caches the file (popular files, where the replica list can be
	// almost the whole network and in-ball hits are rare).
	if len(reps) > s.maxTry && s.maxTry > 0 {
		if s.ball != nil && len(reps) > s.ballN {
			if srv, ok := s.sampleFromBall(req, d, loads, r); ok {
				return assignmentTo(s.g, req, srv, false)
			}
		} else if srv, ok := s.sampleByRejection(req, reps, d, loads, r); ok {
			return assignmentTo(s.g, req, srv, false)
		}
	}
	// Exact in-radius candidate list (also the rejection fallback).
	s.candBuf = s.exactCandidates(req, reps, s.candBuf[:0])
	pool, escalated := s.candBuf, false
	if len(pool) == 0 {
		if s.cfg.NoEscalate {
			return backhaul(req)
		}
		pool, escalated = reps, true
	}
	if srv, ok := s.pickLivePool(pool, d, loads, r); ok {
		return assignmentTo(s.g, req, srv, escalated)
	}
	return backhaul(req) // escalated pool held no live replica either
}

// exactCandidates filters the replicas of req.File to those within the
// radius, choosing the cheaper of scanning the replica list or enumerating
// the ball.
func (s *TwoChoice) exactCandidates(req Request, reps []int32, dst []int32) []int32 {
	if len(reps) <= s.ballN {
		for _, v := range reps {
			if s.g.Dist(int(req.Origin), int(v)) <= s.cfg.Radius {
				if s.live != nil && !s.live.Live(int(v)) {
					s.retried = true
					continue
				}
				dst = append(dst, v)
			}
		}
		return dst
	}
	if s.ball != nil {
		s.ballBuf = s.ball.Append(int(req.Origin), s.ballBuf[:0])
	} else {
		s.ballBuf = s.g.Ball(int(req.Origin), s.cfg.Radius, s.ballBuf[:0])
	}
	for _, v := range s.ballBuf {
		if s.p.Has(int(v), int(req.File)) {
			if s.live != nil && !s.live.Live(int(v)) {
				s.retried = true
				continue
			}
			dst = append(dst, v)
		}
	}
	return dst
}

// indexedCandidates materializes S_j ∩ B_r(u) through the index,
// dispatching on the file's representation (bitmap or tile runs). Equal
// as a set to exactCandidates.
func (s *TwoChoice) indexedCandidates(req Request, dst []int32) []int32 {
	if bits := s.tix.FileBits(int(req.File)); bits != nil {
		return s.bitExactCandidates(int(req.Origin), bits, dst)
	}
	s.collectRuns(req.Origin, req.File)
	return s.indexExactCandidates(req.Origin, dst)
}

// collectRuns walks the tiles overlapping B_r(u) and gathers, for the
// requested file, one run per covered tile holding replicas: its offset
// into the index arena, its length, and whether the tile is fully inside
// the ball. Returns the total replica count across the runs. The runs
// are a superset of S_j ∩ B_r(u) (partial tiles may hold out-of-ball
// replicas) and cover it completely, so weight 0 proves the
// intersection empty.
func (s *TwoChoice) collectRuns(origin, file int32) int {
	tiles, starts, segEnd := s.tix.FileRuns(int(file))
	s.runs = s.runs[:0]
	n := len(tiles)
	if n == 0 {
		return 0
	}
	tl := s.tix.Tiling()
	tileSpan := int(tiles[n-1]-tiles[0]) + 1
	density := float64(n) / float64(tileSpan)
	if s.cover != nil {
		// Sparse directory with an unwrapped templated cover: the
		// cover's id bounds come straight off the template in O(1), and
		// one linear walk of the bracketed directory slice with an O(1)
		// geometric classification per entry replaces both the cover
		// materialization and the per-tile searches.
		if n*16 <= tl.Tiles() {
			if lo, hi, ok := s.cover.Bounds(int(origin)); ok {
				total := 0
				for pos := interpSearch(tiles, 0, lo, density); pos < n && tiles[pos] <= hi; pos++ {
					overlap, full := tl.Classify(tiles[pos], int(origin), s.cfg.Radius)
					if !overlap {
						continue
					}
					total += s.pushRun(starts, pos, segEnd, full, tiles[pos])
				}
				return total
			}
		}
		return s.collectRunsRows(origin, tiles, starts, segEnd, density)
	}

	// No template (bounded grids, tiles that do not divide the side,
	// wrapping radii): materialize the cover, then intersect.
	tl.Cover(int(origin), s.cfg.Radius, &s.coverBuf)
	ids := s.coverBuf.IDs
	total := 0
	switch {
	case tileSpan == n:
		// Contiguous directory: direct indexing.
		base := tiles[0]
		for i, tid := range ids {
			pos := int(tid - base)
			if pos < 0 || pos >= n {
				continue
			}
			total += s.pushRun(starts, pos, segEnd, s.coverBuf.Full[i], tid)
		}
	case n*16 <= tl.Tiles() && ascendingIDs(ids):
		// Sparse directory, unwrapped cover: one bracketed walk. (A
		// wrapped cover splits into segments whose id ranges can
		// interleave, which would double-count — those origins take the
		// merge below.)
		lo, hi := ids[0], ids[len(ids)-1]
		for pos := interpSearch(tiles, 0, lo, density); pos < n && tiles[pos] <= hi; pos++ {
			overlap, full := tl.Classify(tiles[pos], int(origin), s.cfg.Radius)
			if !overlap {
				continue
			}
			total += s.pushRun(starts, pos, segEnd, full, tiles[pos])
		}
	default:
		// Merge join: cover tiles are emitted in ascending-id segments
		// (the order only resets where the cover wraps around the
		// torus), and the directory is sorted, so an interpolating
		// cursor replaces a full binary search per tile.
		pos := 0
		prev := int32(-1)
		for i, tid := range ids {
			if tid < prev {
				pos = 0 // cover wrapped: new ascending segment
			}
			prev = tid
			pos = interpSearch(tiles, pos, tid, density)
			if pos >= n || tiles[pos] != tid {
				continue
			}
			total += s.pushRun(starts, pos, segEnd, s.coverBuf.Full[i], tid)
		}
	}
	return total
}

// pushRun appends directory entry pos as a tileRun and returns its
// replica count. The run ends at the next entry's start (usually the
// same cache line) or the segment end. Tiles with zero live nodes are
// skipped outright when the liveness counts share the index's tiling —
// their replicas cannot serve, so dropping the run keeps the sampler
// weights proportional to potentially-live candidates and lets a
// region-wide failure erase whole tiles in O(1).
func (s *TwoChoice) pushRun(starts []int32, pos int, segEnd int32, full bool, tid int32) int {
	if s.liveTiles && s.live.TileLive(tid) == 0 {
		return 0
	}
	start := starts[pos]
	end := segEnd
	if pos+1 < len(starts) {
		end = starts[pos+1]
	}
	s.runs = append(s.runs, tileRun{start, end - start, full})
	return int(end - start)
}

// collectRunsRows intersects the file's directory with the row-span
// form of the cover template: one position jump per covered tile row
// (interpolated on sparse directories, direct indexing on contiguous
// ones) followed by a contiguous walk — the hot shape of the wide-world
// request loop.
func (s *TwoChoice) collectRunsRows(origin int32, tiles, starts []int32, segEnd int32, density float64) int {
	n := len(tiles)
	rows, utx, uty, per := s.cover.Rows(int(origin))
	base := int(tiles[0])
	dense := int(tiles[n-1])-base == n-1
	total := 0
	pos := 0
	lastID := -1
	for _, row := range rows {
		ty := uty + int(row.Dty)
		if ty >= per {
			ty -= per
		} else if ty < 0 {
			ty += per
		}
		rowBase := ty * per
		c0, c1 := utx+int(row.C0), utx+int(row.C1)
		// Wrapped rows split into at most two absolute column spans.
		var spans [2][2]int
		ns := 1
		switch {
		case c0 < 0:
			spans[0] = [2]int{c0 + per, per - 1}
			spans[1] = [2]int{0, c1}
			ns = 2
		case c1 >= per:
			spans[0] = [2]int{c0, per - 1}
			spans[1] = [2]int{0, c1 - per}
			ns = 2
		default:
			spans[0] = [2]int{c0, c1}
		}
		for si := 0; si < ns; si++ {
			lo := rowBase + spans[si][0]
			hi := rowBase + spans[si][1]
			if dense {
				p0, p1 := lo-base, hi-base
				if p0 < 0 {
					p0 = 0
				}
				if p1 > n-1 {
					p1 = n - 1
				}
				for p := p0; p <= p1; p++ {
					d := base + p - rowBase - utx
					if d > int(row.C1) {
						d -= per
					} else if d < int(row.C0) {
						d += per
					}
					total += s.pushRun(starts, p, segEnd, d >= int(row.F0) && d <= int(row.F1), int32(base+p))
				}
				continue
			}
			if lo <= lastID {
				pos = 0 // wrapped span: the cursor is past it
			}
			lastID = hi
			pos = interpSearch(tiles, pos, int32(lo), density)
			for ; pos < n && int(tiles[pos]) <= hi; pos++ {
				d := int(tiles[pos]) - rowBase - utx
				if d > int(row.C1) {
					d -= per
				} else if d < int(row.C0) {
					d += per
				}
				total += s.pushRun(starts, pos, segEnd, d >= int(row.F0) && d <= int(row.F1), tiles[pos])
			}
		}
	}
	return total
}

// ascendingIDs reports whether the cover ids form one strictly ascending
// run (i.e. the cover did not wrap around the torus).
func ascendingIDs(ids []int32) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return false
		}
	}
	return true
}

// interpSearch returns the smallest i ≥ pos with tiles[i] ≥ tid. The
// first probe interpolates by the directory's tile density (entries per
// tile id), which lands within a few slots on the near-uniform
// directories the placement produces; a doubling gallop brackets any
// miss and a binary search finishes.
func interpSearch(tiles []int32, pos int, tid int32, density float64) int {
	n := len(tiles)
	if pos >= n || tiles[pos] >= tid {
		return pos
	}
	lo := pos // invariant: tiles[lo] < tid
	hi := pos + 1 + int(float64(tid-tiles[pos])*density)
	if hi >= n {
		hi = n - 1
	}
	if tiles[hi] < tid {
		lo = hi
		step := 4
		hi = lo + step
		for hi < n && tiles[hi] < tid {
			lo = hi
			step <<= 1
			hi = lo + step
		}
		if hi > n {
			hi = n
		}
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if tiles[mid] < tid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// indexExactCandidates materializes S_j ∩ B_r(u) from the collected runs
// (tile-major order): full-tile runs are copied wholesale, partial-tile
// runs are distance-filtered. Equal as a set to exactCandidates.
func (s *TwoChoice) indexExactCandidates(origin int32, dst []int32) []int32 {
	nodes := s.tix.Nodes()
	oy := int(origin) / s.gl
	ox := int(origin) - oy*s.gl
	for _, run := range s.runs {
		span := nodes[run.start : run.start+run.n]
		if run.full {
			if s.live == nil {
				dst = append(dst, span...)
				continue
			}
			for _, v := range span {
				if !s.live.Live(int(v)) {
					s.retried = true
					continue
				}
				dst = append(dst, v)
			}
			continue
		}
		for _, v := range span {
			if s.distFrom(ox, oy, v) <= s.cfg.Radius {
				if s.live != nil && !s.live.Live(int(v)) {
					s.retried = true
					continue
				}
				dst = append(dst, v)
			}
		}
	}
	return dst
}

// distFrom computes the hop distance from coordinates (ox, oy) to node v
// arithmetically — one division, no coordinate-table loads, which on
// wide worlds turns a near-certain cache miss into a handful of ALU ops.
// Identical to Grid.Dist by construction.
func (s *TwoChoice) distFrom(ox, oy int, v int32) int {
	vy := int(v) / s.gl
	vx := int(v) - vy*s.gl
	dx := ox - vx
	if dx < 0 {
		dx = -dx
	}
	dy := oy - vy
	if dy < 0 {
		dy = -dy
	}
	if s.torus {
		if w := s.gl - dx; w < dx {
			dx = w
		}
		if w := s.gl - dy; w < dy {
			dy = w
		}
	}
	return dx + dy
}

// assignIndexed is the tile-index discipline for a bounded radius: the
// candidate space is enumerated through the O((r/t+2)²) covered tiles.
// Candidates are drawn by a two-stage sampler — a weighted draw over the
// per-tile replica counts, then a uniform pick inside the tile's run —
// with rejection of out-of-ball picks from partial tiles, which is
// uniform over S_j ∩ B_r(u) exactly like the rejection samplers of the
// non-indexed path. Distinct-candidate sampling and exhausted budgets
// fall back to the materialized exact list.
func (s *TwoChoice) assignIndexed(req Request, reps []int32, d int, loads LoadReader, r *rand.Rand) Assignment {
	// Dense files (|S_j| ≥ n/8, see cache.denseBitThreshold — the bound
	// also sizes the bitmap arena) skip the tile walk entirely: a uniform
	// ball cell accepted on a bitmap hit is uniform over S_j ∩ B_r(u)
	// with acceptance ≈ |S_j|/n, and the bitmap probe is O(1). Their
	// exact fallback enumerates the ball against the bitmap — dense
	// files carry no tile runs at all.
	if bits := s.tix.FileBits(int(req.File)); bits != nil {
		if !s.cfg.WithoutReplacement && s.ball != nil {
			if srv, ok := s.sampleFromBits(req, reps, bits, d, loads, r); ok {
				return s.assignArith(req, srv, false)
			}
		}
		s.candBuf = s.bitExactCandidates(int(req.Origin), bits, s.candBuf[:0])
		pool, escalated := s.candBuf, false
		if len(pool) == 0 {
			if s.cfg.NoEscalate {
				return backhaul(req)
			}
			pool, escalated = reps, true
		}
		if srv, ok := s.pickLivePool(pool, d, loads, r); ok {
			return s.assignArith(req, srv, escalated)
		}
		return backhaul(req) // escalated pool held no live replica either
	}
	total := s.collectRuns(req.Origin, req.File)
	if total == 0 {
		// No replica in any covered tile (under a liveness mask: none in
		// any covered tile with a live node) ⇒ live S_j ∩ B_r(u) = ∅.
		if s.cfg.NoEscalate {
			return backhaul(req)
		}
		if srv, ok := s.pickLivePool(reps, d, loads, r); ok {
			return s.assignArith(req, srv, true)
		}
		return backhaul(req) // every replica of the file is dead
	}
	if !s.cfg.WithoutReplacement && total > 3*d {
		if srv, ok := s.sampleFromRuns(req, total, d, loads, r); ok {
			return s.assignArith(req, srv, false)
		}
	}
	// Tiny run totals (the common shape for mid-popularity files) skip
	// the rejection sampler: materializing ≤ 3d contiguous candidates
	// and drawing from the pool is the same uniform law at fewer
	// scattered reads. The materialization is also the sampler's
	// budget-exhaustion fallback.
	// Exact materialization: distinct-candidate sampling, or the two-stage
	// sampler burned its budget on out-of-ball picks from partial tiles.
	s.candBuf = s.indexExactCandidates(req.Origin, s.candBuf[:0])
	pool, escalated := s.candBuf, false
	if len(pool) == 0 {
		if s.cfg.NoEscalate {
			return backhaul(req)
		}
		pool, escalated = reps, true
	}
	if srv, ok := s.pickLivePool(pool, d, loads, r); ok {
		return s.assignArith(req, srv, escalated)
	}
	return backhaul(req) // escalated pool held no live replica either
}

// assignArith is assignmentTo with the hop count computed arithmetically
// (no coordinate-table loads); identical output by construction.
func (s *TwoChoice) assignArith(req Request, server int32, escalated bool) Assignment {
	oy := int(req.Origin) / s.gl
	ox := int(req.Origin) - oy*s.gl
	return Assignment{
		Server:    server,
		Hops:      int32(s.distFrom(ox, oy, server)),
		Escalated: escalated,
	}
}

// sampleFromRuns draws the d candidates through the two-stage tile
// sampler: a uniform index into the concatenated runs (equivalently a
// replica-count-weighted tile draw followed by a uniform in-tile pick),
// accepted outright for full tiles and distance-checked for partial
// ones. Every replica in the run union is equally likely per try and
// acceptance keeps exactly the in-ball ones, so accepted draws are
// uniform over S_j ∩ B_r(u). Returns ok=false when the try budget is
// exhausted first (the run union may hold no in-ball replica at all);
// partial progress is discarded, which leaves the fallback's law intact.
func (s *TwoChoice) sampleFromRuns(req Request, total, d int, loads LoadReader, r *rand.Rand) (int32, bool) {
	// Covered tiles overshoot the ball by less than a tile ring, so the
	// acceptance rate is Ω(|ball| / |cover|) ≈ 1/2 whenever the
	// intersection is non-empty; a small per-candidate budget suffices.
	budget := 8*d + 8
	nodes := s.tix.Nodes()
	// Accept all d candidates before reading any load: the load vector
	// reads are the trial's cache misses, and issuing them back to back
	// lets them overlap instead of serializing behind each draw.
	if cap(s.seenBuf) < d {
		s.seenBuf = make([]int32, 0, d)
	}
	oy := int(req.Origin) / s.gl
	ox := int(req.Origin) - oy*s.gl
	cand := s.seenBuf[:0]
	nodesArena := nodes
	// Draw positions in mini-batches and only then read the node ids:
	// the arena reads are this loop's cache misses, and issuing a batch
	// back to back lets them overlap instead of serializing per try.
	var off [4]int32
	var vs [4]int32
	for tries := 0; len(cand) < d; {
		if tries >= budget {
			return -1, false
		}
		// Full-width batches even when one candidate is missing: the
		// surplus accepted draws are discarded (selection is value-
		// independent, so the law stays uniform), and overlapping four
		// arena reads beats serializing refills on low-acceptance files.
		batch := len(off)
		for k := 0; k < batch; k++ {
			w := int32(r.IntN(total))
			i := 0
			for w >= s.runs[i].n {
				w -= s.runs[i].n
				i++
			}
			if s.runs[i].full {
				off[k] = s.runs[i].start + w
			} else {
				off[k] = -(s.runs[i].start + w) - 1 // needs the distance check
			}
		}
		for k := 0; k < batch; k++ {
			o := off[k]
			if o < 0 {
				o = -o - 1
			}
			vs[k] = nodesArena[o]
		}
		for k := 0; k < batch; k++ {
			tries++
			if off[k] < 0 && s.distFrom(ox, oy, vs[k]) > s.cfg.Radius {
				continue
			}
			if s.live != nil && !s.live.Live(int(vs[k])) {
				s.retried = true
				continue
			}
			if len(cand) < d {
				cand = append(cand, vs[k])
			}
		}
	}
	s.seenBuf = cand
	return pickLeastLoaded(cand, loads, r), true
}

// bitExactCandidates materializes S_j ∩ B_r(u) for a dense file by
// enumerating the ball and keeping the bitmap hits — exact, and cheap
// because dense files are the ones whose replica lists are enormous.
func (s *TwoChoice) bitExactCandidates(origin int, bits []uint64, dst []int32) []int32 {
	if s.ball != nil {
		s.ballBuf = s.ball.Append(origin, s.ballBuf[:0])
	} else {
		s.ballBuf = s.g.Ball(origin, s.cfg.Radius, s.ballBuf[:0])
	}
	for _, v := range s.ballBuf {
		if bits[v>>6]&(1<<(uint(v)&63)) != 0 {
			if s.live != nil && !s.live.Live(int(v)) {
				s.retried = true
				continue
			}
			dst = append(dst, v)
		}
	}
	return dst
}

// sampleFromBits draws the d candidates by ball-cell rejection against a
// dense file's node bitmap: a uniform node of B_r(u) (O(1) through the
// ball template) is accepted when its bit is set — the sampleFromBall
// law with an O(1) membership probe instead of a cached-list scan.
// Returns ok=false when the try budget is exhausted (the caller falls
// back to the exact tile walk; partial progress is discarded).
func (s *TwoChoice) sampleFromBits(req Request, reps []int32, bits []uint64, d int, loads LoadReader, r *rand.Rand) (int32, bool) {
	budget := 6*d*(s.g.N()/(len(reps)+1)+1) + 8
	if cap(s.seenBuf) < d {
		s.seenBuf = make([]int32, 0, d)
	}
	cand := s.seenBuf[:0]
	oy := int(req.Origin) / s.gl
	ox := int(req.Origin) - oy*s.gl
	// Low-acceptance files probe in full-width mini-batches (surplus
	// accepts are discarded; the law stays uniform) so the bitmap word
	// reads — this loop's cache misses — overlap instead of serializing
	// refills; high-acceptance files draw only what they need.
	lowAcceptance := 2*len(reps) < s.g.N()
	var vs [4]int32
	var ws [4]uint64
	for tries := 0; len(cand) < d; {
		if tries >= budget {
			return -1, false
		}
		batch := d - len(cand)
		if batch > len(vs) || lowAcceptance {
			batch = len(vs)
		}
		for k := 0; k < batch; k++ {
			vs[k] = s.ball.NodeAt(ox, oy, r.IntN(s.ballN))
		}
		for k := 0; k < batch; k++ {
			ws[k] = bits[vs[k]>>6]
		}
		for k := 0; k < batch; k++ {
			tries++
			if ws[k]&(1<<(uint(vs[k])&63)) == 0 {
				continue
			}
			if s.live != nil && !s.live.Live(int(vs[k])) {
				s.retried = true
				continue
			}
			if len(cand) < d {
				cand = append(cand, vs[k])
			}
		}
	}
	s.seenBuf = cand
	return pickLeastLoaded(cand, loads, r), true
}

// pickLeastLoaded returns the least-loaded candidate, breaking ties
// uniformly (reservoir over minima, as foldCandidate does, but with the
// incumbent's load cached so each candidate costs one load read).
func pickLeastLoaded(cand []int32, loads LoadReader, r *rand.Rand) int32 {
	best := cand[0]
	bestLoad := loads.Load(int(best))
	ties := 1
	for _, v := range cand[1:] {
		lv := loads.Load(int(v))
		switch {
		case lv < bestLoad:
			best, bestLoad, ties = v, lv, 1
		case lv == bestLoad:
			ties++
			if r.IntN(ties) == 0 {
				best = v
			}
		}
	}
	return best
}

// sampleByRejection draws the d candidates by rejection from the replica
// list (accept when within radius). Returns ok=false when the try budget
// is exhausted before d acceptances.
func (s *TwoChoice) sampleByRejection(req Request, reps []int32, d int, loads LoadReader, r *rand.Rand) (int32, bool) {
	var best int32 = -1
	ties := 0
	accepted := 0
	tries := 0
	for accepted < d {
		if tries >= s.maxTry {
			return -1, false
		}
		tries++
		v := reps[r.IntN(len(reps))]
		if s.g.Dist(int(req.Origin), int(v)) > s.cfg.Radius {
			continue
		}
		if s.live != nil && !s.live.Live(int(v)) {
			s.retried = true
			continue
		}
		accepted++
		best, ties = s.foldCandidate(best, ties, v, loads, r)
	}
	return best, true
}

// sampleFromBall draws the d candidates by rejection from the ball
// (uniform node of B_r(u), accepted when it caches the file). Uniform over
// S_j ∩ B_r(u), exactly like sampleByRejection, but with acceptance
// probability |S_j ∩ B_r|/|B_r| instead of |S_j ∩ B_r|/|S_j| — the right
// side of the intersection when replicas outnumber the ball. Returns
// ok=false when the try budget is exhausted before d acceptances.
func (s *TwoChoice) sampleFromBall(req Request, d int, loads LoadReader, r *rand.Rand) (int32, bool) {
	// Expected tries per accepted draw is |B_r|/|S_j ∩ B_r| ≈ n/|S_j| ≤
	// n/|B_r| here; reuse the symmetric budget of the replica-side loop.
	var best int32 = -1
	ties := 0
	accepted := 0
	tries := 0
	file := int(req.File)
	for accepted < d {
		if tries >= s.maxTry {
			return -1, false
		}
		tries++
		v := s.ball.Node(int(req.Origin), r.IntN(s.ballN))
		if !s.p.Has(int(v), file) {
			continue
		}
		if s.live != nil && !s.live.Live(int(v)) {
			s.retried = true
			continue
		}
		accepted++
		best, ties = s.foldCandidate(best, ties, v, loads, r)
	}
	return best, true
}

// pickFromPool samples d candidates uniformly from pool and returns the
// least-loaded (ties uniform).
func (s *TwoChoice) pickFromPool(pool []int32, d int, loads LoadReader, r *rand.Rand) int32 {
	if len(pool) == 1 {
		return pool[0]
	}
	var best int32 = -1
	ties := 0
	if s.cfg.WithoutReplacement {
		if d >= len(pool) {
			// Degenerates to the full-information oracle over the pool.
			for _, v := range pool {
				best, ties = s.foldCandidate(best, ties, v, loads, r)
			}
			return best
		}
		// Partial Fisher–Yates over indices via a small map-free trick:
		// for d ≪ |pool| rejection on a tiny set is cheapest.
		seen := s.seenBuf[:0]
	draw:
		for len(seen) < d {
			v := pool[r.IntN(len(pool))]
			for _, u := range seen {
				if u == v {
					continue draw
				}
			}
			seen = append(seen, v)
			best, ties = s.foldCandidate(best, ties, v, loads, r)
		}
		s.seenBuf = seen
		return best
	}
	for i := 0; i < d; i++ {
		v := pool[r.IntN(len(pool))]
		best, ties = s.foldCandidate(best, ties, v, loads, r)
	}
	return best
}

// pickLivePool is pickFromPool behind the liveness mask — the pool pick
// of the graceful-degradation ladder. Without a mask it delegates
// unchanged (zero extra draws: the golden matrices pin this). With one,
// a bounded rejection loop resamples dead picks among the pool's live
// members; exhaustion (or distinct-candidate sampling, which cannot
// reject cheaply) falls back to filtering the pool into preallocated
// scratch, and ok=false reports a pool with no live member at all — the
// caller then degrades to backhaul. Partial rejection progress is
// discarded so the fallback's law stays uniform over the live members.
func (s *TwoChoice) pickLivePool(pool []int32, d int, loads LoadReader, r *rand.Rand) (int32, bool) {
	if s.live == nil {
		return s.pickFromPool(pool, d, loads, r), true
	}
	if !s.cfg.WithoutReplacement && len(pool) > 1 {
		var best int32 = -1
		ties, accepted := 0, 0
		for tries, budget := 0, 4*d+16; accepted < d; tries++ {
			if tries >= budget {
				best = -1
				break
			}
			v := pool[r.IntN(len(pool))]
			if !s.live.Live(int(v)) {
				s.retried = true
				continue
			}
			accepted++
			best, ties = s.foldCandidate(best, ties, v, loads, r)
		}
		if best >= 0 {
			return best, true
		}
	}
	s.liveBuf = s.liveBuf[:0]
	for _, v := range pool {
		if s.live.Live(int(v)) {
			s.liveBuf = append(s.liveBuf, v)
		} else {
			s.retried = true
		}
	}
	if len(s.liveBuf) == 0 {
		return -1, false
	}
	return s.pickFromPool(s.liveBuf, d, loads, r), true
}

// foldCandidate updates the running least-loaded winner with uniform tie
// breaking (reservoir over minima).
func (s *TwoChoice) foldCandidate(best int32, ties int, v int32, loads LoadReader, r *rand.Rand) (int32, int) {
	if best < 0 {
		return v, 1
	}
	lv, lb := loads.Load(int(v)), loads.Load(int(best))
	switch {
	case lv < lb:
		return v, 1
	case lv == lb:
		ties++
		if r.IntN(ties) == 0 {
			return v, ties
		}
	}
	return best, ties
}

var _ Strategy = (*TwoChoice)(nil)
var _ LivenessAware = (*TwoChoice)(nil)

// LeastLoadedOracle assigns each request to the least-loaded replica
// within the radius (full load information — the unattainable lower
// envelope for any sampling strategy; used in ablation benches).
type LeastLoadedOracle struct {
	inner *TwoChoice
}

// NewLeastLoadedOracle builds the oracle baseline.
func NewLeastLoadedOracle(g *grid.Grid, p *cache.Placement, radius int) *LeastLoadedOracle {
	return &LeastLoadedOracle{inner: NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius})}
}

// Name implements Strategy.
func (o *LeastLoadedOracle) Name() string {
	return fmt.Sprintf("least-loaded(r=%s)", o.inner.radiusLabel())
}

// Rebind implements Rebindable.
func (o *LeastLoadedOracle) Rebind(p *cache.Placement) { o.inner.Rebind(p) }

// SetLiveness implements LivenessAware (delegating to the inner
// TwoChoice, whose candidate paths carry the mask).
func (o *LeastLoadedOracle) SetLiveness(lv *cache.Liveness) { o.inner.SetLiveness(lv) }

// Assign implements Strategy.
func (o *LeastLoadedOracle) Assign(req Request, loads LoadReader, r *rand.Rand) Assignment {
	s := o.inner
	s.retried = false
	reps := s.p.Replicas(int(req.File))
	if len(reps) == 0 {
		return backhaul(req)
	}
	pool := reps
	escalated := false
	if s.cfg.Radius != RadiusUnbounded {
		if s.tix != nil {
			s.candBuf = s.indexedCandidates(req, s.candBuf[:0])
		} else {
			s.candBuf = s.exactCandidates(req, reps, s.candBuf[:0])
		}
		pool = s.candBuf
		if len(pool) == 0 {
			pool, escalated = reps, true
		}
	}
	var best int32 = -1
	ties := 0
	for _, v := range pool {
		if s.live != nil && !s.live.Live(int(v)) {
			s.retried = true
			continue
		}
		best, ties = s.foldCandidate(best, ties, v, loads, r)
	}
	if best < 0 {
		// Oracle or not, a file whose live replica set is empty can only
		// be served upstream.
		a := backhaul(req)
		a.Retried = s.retried
		return a
	}
	a := assignmentTo(s.g, req, best, escalated)
	a.Retried = s.retried
	return a
}

var _ Strategy = (*LeastLoadedOracle)(nil)
var _ LivenessAware = (*LeastLoadedOracle)(nil)

// NewOneChoice returns the random-replica-in-radius baseline (d = 1),
// the natural "no load information" counterpart of Strategy II.
func NewOneChoice(g *grid.Grid, p *cache.Placement, radius int) *TwoChoice {
	return NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius, Choices: 1})
}
