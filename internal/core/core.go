// Package core implements the paper's primary contribution: the request
// assignment strategies for cache networks.
//
//   - Strategy I, "Nearest Replica" (Definition 2): each request goes to
//     the closest replica of its file; minimum communication cost, but
//     maximum load Θ(log n).
//   - Strategy II, "Proximity-Aware Two Choices" (Definition 3): each
//     request samples two uniform replicas within hop radius r of its
//     origin and joins the lesser-loaded one; for M = n^α, r = n^β with
//     α + 2β ≥ 1 + 2 log log n / log n this achieves maximum load
//     Θ(log log n) at communication cost Θ(r) (Theorem 4).
//
// The package also provides the one-choice-in-radius process and a
// full-information least-loaded oracle as ablation baselines, plus the
// d-choice generalization of Strategy II.
//
// Strategies carry per-instance scratch buffers and are therefore NOT safe
// for concurrent use; the simulation engine keeps one instance per worker
// and rebinds it to each trial's placement (Rebindable). Strategies read
// the bound placement (and its optional tile index) live on every Assign,
// so the engine's churn phase can mutate both between pipeline chunks —
// never during an Assign — and every candidate enumeration observes a
// consistent post-mutation state.
package core

import (
	"math/rand/v2"

	"repro/internal/cache"
	"repro/internal/grid"
)

// Request is one content demand: a file requested at an origin node.
type Request struct {
	Origin int32 // requesting server
	File   int32 // library index of the requested file
}

// Assignment records where a request was served and at what cost.
type Assignment struct {
	Server    int32 // serving node
	Hops      int32 // torus hop distance origin -> server
	Escalated bool  // radius held no replica; search widened to r = ∞
	Backhaul  bool  // file cached nowhere; served at origin from upstream
	Retried   bool  // a dead candidate was rejected and the search resampled
}

// LoadReader is the strategies' read-only view of the running load
// vector. *ballsbins.Loads is the canonical sequential implementation;
// the sharded engine substitutes a frozen per-chunk snapshot
// (ShardDeterministic) or an atomically read shared vector (ShardRacy)
// without the strategies knowing which discipline they run under.
type LoadReader interface {
	// Load returns the current load of node i.
	Load(i int) int
}

// Strategy maps requests to servers, observing (and updating through the
// caller) the running load vector.
type Strategy interface {
	// Assign chooses the serving node for req given current loads.
	// It must not mutate loads; the caller applies the placement.
	Assign(req Request, loads LoadReader, r *rand.Rand) Assignment
	// Name identifies the strategy in experiment output.
	Name() string
}

// backhaul builds the no-replica-anywhere assignment: the origin fetches
// from upstream (outside the cache network), contributing zero hops inside
// the network but one unit of load at the origin.
func backhaul(req Request) Assignment {
	return Assignment{Server: req.Origin, Hops: 0, Backhaul: true}
}

// assignmentTo fills in the hop count for a chosen server.
func assignmentTo(g *grid.Grid, req Request, server int32, escalated bool) Assignment {
	return Assignment{
		Server:    server,
		Hops:      int32(g.Dist(int(req.Origin), int(server))),
		Escalated: escalated,
	}
}

// LivenessAware is implemented by strategies that can mask dead nodes.
// With a non-nil Liveness bound, every candidate path rejects dead
// servers and walks the graceful-degradation ladder instead: bounded
// resampling among live replicas, then escalation to r = ∞ over the
// live replica set, then backhaul at the origin. Binding nil restores
// the exact liveness-blind behaviour (bit-identical to a strategy that
// was never bound — the golden matrices pin this).
//
// Like churn, liveness is mutated only between Assign calls (at the
// engine's chunk barriers), so every candidate enumeration observes a
// consistent view.
type LivenessAware interface {
	Strategy
	// SetLiveness binds (or, with nil, unbinds) the liveness mask.
	SetLiveness(lv *cache.Liveness)
}

// Rebindable is implemented by strategies whose placement can be swapped
// between trials while the topology, configuration and scratch buffers are
// kept. The compiled simulation world uses it to run many trials through
// one strategy instance instead of rebuilding it per trial.
type Rebindable interface {
	Strategy
	// Rebind points the strategy at a new placement over the same grid.
	Rebind(p *cache.Placement)
}

// common wires the topology and placement into every concrete strategy.
type common struct {
	g *grid.Grid
	p *cache.Placement
}

func newCommon(g *grid.Grid, p *cache.Placement) common {
	if g.N() != p.N() {
		panic("core: grid and placement disagree on node count")
	}
	return common{g: g, p: p}
}

func (c *common) rebind(p *cache.Placement) {
	if c.g.N() != p.N() {
		panic("core: grid and placement disagree on node count")
	}
	c.p = p
}
