package core

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/grid"
)

// indexedWorld builds an index-carrying placement plus a TwoChoice bound
// to it, and — from an identical RNG history — a plain sorted placement
// with a plain strategy, to serve as the PR 3 exact-path oracle (indexed
// placements skip the per-node sort, so NodeFiles-order consumers like
// exactCandidates' ball side must run against the sorted twin).
func indexedWorld(l, tile int, topo grid.Topology, k, m int, gamma float64, cfg TwoChoiceConfig, seed uint64) (*grid.Grid, *cache.Placement, *TwoChoice, *TwoChoice) {
	g := grid.New(l, topo)
	var pop dist.Popularity = dist.NewUniform(k)
	if gamma > 0 {
		pop = dist.NewZipf(k, gamma)
	}
	pli := cache.NewPlacer(g.N(), m, k)
	pli.EnableTiles(g.NewTiling(tile))
	pi := pli.Place(pop, cache.WithReplacement, rand.New(rand.NewPCG(seed, seed^0xabcd)))
	plp := cache.NewPlacer(g.N(), m, k)
	pp := plp.Place(pop, cache.WithReplacement, rand.New(rand.NewPCG(seed, seed^0xabcd)))
	for j := 0; j < k; j++ {
		if !slices.Equal(pp.Replicas(j), pi.Replicas(j)) {
			panic("indexedWorld: twin placements diverged")
		}
	}
	return g, pi, NewTwoChoice(g, pi, cfg), NewTwoChoice(g, pp, cfg)
}

// TestIndexExactCandidatesMatchExactCandidates: for random worlds,
// origins and files, the tile-walk candidate list must equal the PR 3
// exact filter's output as a set (orders differ: tile-major vs replica-
// list / ball order).
func TestIndexExactCandidatesMatchExactCandidates(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	for it := 0; it < 60; it++ {
		l := 8 + rng.IntN(16)
		tile := 1 + rng.IntN(6)
		topo := grid.Topology(rng.IntN(2))
		radius := 1 + rng.IntN(l/2+1)
		k := 20 + rng.IntN(100)
		m := 1 + rng.IntN(3)
		gamma := float64(rng.IntN(3)) * 0.7
		g, p, s, oracle := indexedWorld(l, tile, topo, k, m, gamma, TwoChoiceConfig{Radius: radius}, uint64(1000+it))
		if s.cfg.Radius == RadiusUnbounded {
			continue // radius ≥ diameter collapses to the unbounded path
		}
		if s.tix == nil {
			t.Fatalf("it=%d: strategy did not bind the tile index", it)
		}
		for q := 0; q < 20; q++ {
			origin := int32(rng.IntN(g.N()))
			file := int32(rng.IntN(k))
			reps := p.Replicas(int(file))
			req := Request{Origin: origin, File: file}
			want := slices.Clone(oracle.exactCandidates(req, reps, nil))
			got := slices.Clone(s.indexedCandidates(req, nil))
			slices.Sort(want)
			slices.Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("it=%d l=%d tile=%d r=%d %v u=%d j=%d:\n index %v\n exact %v",
					it, l, tile, radius, topo, origin, file, got, want)
			}
		}
	}
}

// chiSquaredUniform draws n single-candidate assignments for a fixed
// request through the full Assign path (flat loads, d = 1, so the
// returned server IS the sampled candidate) and returns the chi-squared
// statistic against the uniform law over the exact candidate set.
func chiSquaredUniform(t *testing.T, g *grid.Grid, s, oracle *TwoChoice, req Request, n int, seed uint64) (chi2 float64, df int) {
	t.Helper()
	reps := oracle.p.Replicas(int(req.File))
	cands := slices.Clone(oracle.exactCandidates(req, reps, nil))
	if len(cands) < 2 {
		t.Fatalf("degenerate candidate set %v for origin=%d file=%d", cands, req.Origin, req.File)
	}
	slices.Sort(cands)
	counts := make(map[int32]int, len(cands))
	loads := ballsbins.NewLoads(g.N())
	rng := rand.New(rand.NewPCG(seed, seed*2+1))
	for i := 0; i < n; i++ {
		a := s.Assign(req, loads, rng)
		if a.Escalated || a.Backhaul {
			t.Fatalf("unexpected miss for origin=%d file=%d: %+v", req.Origin, req.File, a)
		}
		counts[a.Server]++
	}
	expected := float64(n) / float64(len(cands))
	for _, v := range cands {
		d := float64(counts[v]) - expected
		chi2 += d * d / expected
		delete(counts, v)
	}
	if len(counts) != 0 {
		t.Fatalf("sampler produced servers outside S_j ∩ B_r: %v", counts)
	}
	return chi2, len(cands) - 1
}

// TestTwoStageSamplerUniformLaw: the two-stage tile sampler must draw
// uniformly over S_j ∩ B_r(u) across the popularity spectrum (sparse,
// mid, popular files), under both the precomputed cover template and the
// per-query fallback. Thresholds sit far above the 99.9th chi-squared
// percentile; seeds are fixed, so the test is deterministic.
func TestTwoStageSamplerUniformLaw(t *testing.T) {
	for _, tc := range []struct {
		name string
		l    int
		tile int
		topo grid.Topology
	}{
		{"template", 24, 3, grid.Torus},  // 24 % 3 == 0, r+t-1 ≤ 12: CoverTable path
		{"fallback", 22, 4, grid.Torus},  // 22 % 4 != 0: per-query Cover path
		{"bounded", 20, 3, grid.Bounded}, // boundary clipping: per-query Cover path
	} {
		t.Run(tc.name, func(t *testing.T) {
			const k, m, radius = 40, 2, 6
			g, p, s, oracle := indexedWorld(tc.l, tc.tile, tc.topo, k, m, 1.1, TwoChoiceConfig{Radius: radius, Choices: 1}, 77)
			if (tc.name == "template") != (s.cover != nil) {
				t.Fatalf("cover template presence = %v, want %v", s.cover != nil, tc.name == "template")
			}
			// Pick one sparse, one mid, one popular file relative to the
			// candidate space, each with ≥ 2 in-radius candidates from a
			// suitable origin.
			type probe struct {
				file   int32
				origin int32
				size   int
			}
			var probes []probe
			for class, want := range map[string]func(sj, inBall int) bool{
				"sparse":  func(sj, inBall int) bool { return sj <= 6 && inBall >= 2 },
				"mid":     func(sj, inBall int) bool { return sj > 6 && sj <= 40 && inBall >= 3 },
				"popular": func(sj, inBall int) bool { return sj > 40 && inBall >= 8 },
			} {
				found := false
			search:
				for j := 0; j < k && !found; j++ {
					reps := p.Replicas(j)
					for u := 0; u < g.N(); u += 7 {
						req := Request{Origin: int32(u), File: int32(j)}
						in := len(oracle.exactCandidates(req, reps, nil))
						if want(len(reps), in) {
							probes = append(probes, probe{int32(j), int32(u), in})
							found = true
							continue search
						}
					}
				}
				if !found {
					t.Fatalf("no %s file found in this world (tune the fixture)", class)
				}
			}
			for _, pr := range probes {
				const n = 40000
				chi2, df := chiSquaredUniform(t, g, s, oracle, Request{Origin: pr.origin, File: pr.file}, n, 1234+uint64(pr.file))
				// 99.9th percentile of chi² ≈ df + 3.09·√(2df) for moderate
				// df; allow a wide margin on top.
				limit := float64(df) + 4.5*math.Sqrt(2*float64(df)) + 6
				if chi2 > limit {
					t.Errorf("file %d origin %d (%d candidates): chi² = %.1f > %.1f (df=%d) — sampler not uniform",
						pr.file, pr.origin, pr.size, chi2, limit, df)
				}
			}
		})
	}
}

// TestIndexedAssignMatchesSemantics: with and without the index, Assign
// must agree on everything the RNG does not influence — escalation/
// backhaul outcomes and the candidate-set membership of the server — for
// every miss policy combination.
func TestIndexedAssignMatchesSemantics(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 17))
	for _, noEsc := range []bool{false, true} {
		for _, wr := range []bool{false, true} {
			cfg := TwoChoiceConfig{Radius: 4, NoEscalate: noEsc, WithoutReplacement: wr}
			g, p, indexed, plain := indexedWorld(14, 2, grid.Torus, 200, 1, 0, cfg, 5)
			loads := ballsbins.NewLoads(g.N())
			for q := 0; q < 4000; q++ {
				req := Request{Origin: int32(rng.IntN(g.N())), File: int32(rng.IntN(200))}
				reps := p.Replicas(int(req.File))
				cands := plain.exactCandidates(req, reps, nil)
				ai := indexed.Assign(req, loads, rng)
				ap := plain.Assign(req, loads, rng)
				if ai.Escalated != ap.Escalated || ai.Backhaul != ap.Backhaul {
					t.Fatalf("noEsc=%v wr=%v req=%+v: flags diverge: indexed %+v plain %+v", noEsc, wr, req, ai, ap)
				}
				if !ai.Escalated && !ai.Backhaul && !slices.Contains(cands, ai.Server) {
					t.Fatalf("noEsc=%v wr=%v req=%+v: indexed server %d outside S_j ∩ B_r %v", noEsc, wr, req, ai.Server, cands)
				}
				loads.Add(int(ai.Server))
			}
		}
	}
}

// TestOracleIndexedMatchesExact: the full-information oracle must pick a
// least-loaded in-radius replica whether or not the index is bound.
func TestOracleIndexedMatchesExact(t *testing.T) {
	g, p, _, plainStrat := indexedWorld(12, 3, grid.Torus, 100, 2, 0.9, TwoChoiceConfig{Radius: 3}, 8)
	indexed := NewLeastLoadedOracle(g, p, 3)
	plain := NewLeastLoadedOracle(g, plainStrat.p, 3)
	loads := ballsbins.NewLoads(g.N())
	rng := rand.New(rand.NewPCG(3, 33))
	for q := 0; q < 3000; q++ {
		req := Request{Origin: int32(rng.IntN(g.N())), File: int32(rng.IntN(100))}
		ai := indexed.Assign(req, loads, rng)
		ap := plain.Assign(req, loads, rng)
		if ai.Escalated != ap.Escalated || ai.Backhaul != ap.Backhaul {
			t.Fatalf("req=%+v: flags diverge: %+v vs %+v", req, ai, ap)
		}
		// Both picks must be least-loaded over the same pool (the winners
		// may differ on ties, which the reservoir breaks uniformly).
		if loads.Load(int(ai.Server)) != loads.Load(int(ap.Server)) {
			t.Fatalf("req=%+v: oracle loads diverge: %d@%d vs %d@%d",
				req, ai.Server, loads.Load(int(ai.Server)), ap.Server, loads.Load(int(ap.Server)))
		}
		loads.Add(int(ai.Server))
	}
}
