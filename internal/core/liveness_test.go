package core

import (
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/grid"
)

// bruteLiveCandidates is the liveness oracle: {v ∈ S_j : dist(u,v) ≤ r ∧
// live(v)} by direct enumeration, no index, no sampler.
func bruteLiveCandidates(g *grid.Grid, p *cache.Placement, lv *cache.Liveness, origin, file, radius int) []int32 {
	var out []int32
	for _, v := range p.Replicas(file) {
		if g.Dist(origin, int(v)) <= radius && lv.Live(int(v)) {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

// liveStorm applies one random batch of kills and revives.
func liveStorm(lv *cache.Liveness, n int, rng *rand.Rand) {
	for e := 0; e < 1+rng.IntN(8); e++ {
		u := int32(rng.IntN(n))
		if rng.IntN(2) == 0 {
			lv.Kill(u)
		} else {
			lv.Revive(u)
		}
	}
}

// TestLivenessMaskedCandidatesMatchBruteForce: under a crash/recover
// storm, the masked exact filters — both the PR 3 replica/ball filter
// and the tile-walk enumeration, with the per-tile live-count skip
// active — must equal the brute-force live filter as a set.
func TestLivenessMaskedCandidatesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 83))
	for it := 0; it < 40; it++ {
		l := 8 + rng.IntN(12)
		tile := 1 + rng.IntN(5)
		radius := 1 + rng.IntN(l/2+1)
		k := 20 + rng.IntN(80)
		m := 1 + rng.IntN(3)
		g, p, s, plain := indexedWorld(l, tile, grid.Torus, k, m, 0, TwoChoiceConfig{Radius: radius}, uint64(4000+it))
		if s.cfg.Radius == RadiusUnbounded {
			continue
		}
		lv := cache.NewLiveness(g.N())
		lv.BindTiling(p.TileIndex().Tiling())
		s.SetLiveness(lv)
		plain.SetLiveness(lv)
		if !s.liveTiles {
			t.Fatalf("it=%d: tile skip not armed despite shared tiling", it)
		}
		for step := 0; step < 15; step++ {
			liveStorm(lv, g.N(), rng)
			origin := int32(rng.IntN(g.N()))
			file := int32(rng.IntN(k))
			want := bruteLiveCandidates(g, p, lv, int(origin), int(file), radius)
			req := Request{Origin: origin, File: file}
			got := slices.Clone(s.indexedCandidates(req, nil))
			slices.Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("it=%d step=%d (indexed): got %v want %v", it, step, got, want)
			}
			got = slices.Clone(plain.exactCandidates(req, p.Replicas(int(file)), nil))
			slices.Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("it=%d step=%d (exact): got %v want %v", it, step, got, want)
			}
		}
	}
}

// TestLivenessAssignNeverPicksDead: through the full Assign path of
// every strategy, with storms between batches, a non-backhaul
// assignment must land on a live server (backhaul serves at the origin
// from upstream, so the origin's own liveness is irrelevant there).
func TestLivenessAssignNeverPicksDead(t *testing.T) {
	const l, k, m, radius = 12, 120, 2, 4
	g := grid.New(l, grid.Torus)
	pop := dist.NewZipf(k, 0.9)
	pl := cache.NewPlacer(g.N(), m, k)
	pl.EnableTiles(g.NewTiling(3))
	p := pl.Place(pop, cache.WithReplacement, rand.New(rand.NewPCG(5, 6)))
	lv := cache.NewLiveness(g.N())
	lv.BindTiling(p.TileIndex().Tiling())
	strategies := map[string]Strategy{
		"nearest":     NewNearestReplica(g, p),
		"two-bounded": NewTwoChoice(g, p, TwoChoiceConfig{Radius: radius}),
		"two-inf":     NewTwoChoice(g, p, TwoChoiceConfig{Radius: RadiusUnbounded}),
		"two-distinct": NewTwoChoice(g, p, TwoChoiceConfig{
			Radius: radius, Choices: 3, WithoutReplacement: true}),
		"oracle": NewLeastLoadedOracle(g, p, radius),
	}
	for name, st := range strategies {
		st.(LivenessAware).SetLiveness(lv)
		lv.Reset()
		rng := rand.New(rand.NewPCG(17, 23))
		loads := ballsbins.NewLoads(g.N())
		for step := 0; step < 60; step++ {
			liveStorm(lv, g.N(), rng)
			for q := 0; q < 40; q++ {
				req := Request{Origin: int32(rng.IntN(g.N())), File: int32(rng.IntN(k))}
				a := st.Assign(req, loads, rng)
				if a.Backhaul {
					if a.Server != req.Origin {
						t.Fatalf("%s: backhaul served away from origin: %+v", name, a)
					}
					continue
				}
				if !lv.Live(int(a.Server)) {
					t.Fatalf("%s step=%d: assigned dead server %d (req %+v)", name, step, a.Server, req)
				}
				loads.Add(int(a.Server))
			}
		}
	}
}

// TestLivenessAllDeadBackhaul: with every node dead, every strategy must
// serve every request via backhaul — the bottom rung of the ladder.
func TestLivenessAllDeadBackhaul(t *testing.T) {
	const l, k, m = 8, 40, 2
	g := grid.New(l, grid.Torus)
	p := cache.Place(g.N(), m, dist.NewUniform(k), cache.WithReplacement, rand.New(rand.NewPCG(1, 2)))
	lv := cache.NewLiveness(g.N())
	for u := int32(0); u < int32(g.N()); u++ {
		lv.Kill(u)
	}
	for _, st := range []Strategy{
		NewNearestReplica(g, p),
		NewTwoChoice(g, p, TwoChoiceConfig{Radius: 3}),
		NewTwoChoice(g, p, TwoChoiceConfig{Radius: RadiusUnbounded}),
		NewLeastLoadedOracle(g, p, 3),
	} {
		st.(LivenessAware).SetLiveness(lv)
		rng := rand.New(rand.NewPCG(9, 9))
		loads := ballsbins.NewLoads(g.N())
		for q := 0; q < 50; q++ {
			req := Request{Origin: int32(rng.IntN(g.N())), File: int32(rng.IntN(k))}
			a := st.Assign(req, loads, rng)
			if !a.Backhaul || a.Server != req.Origin {
				t.Fatalf("%s: all-dead world served %+v", st.Name(), a)
			}
			if len(p.Replicas(int(req.File))) > 0 && !a.Retried {
				t.Fatalf("%s: all-dead assignment of a replicated file not marked Retried: %+v", st.Name(), a)
			}
		}
	}
}

// TestLivenessAllLiveBitIdentical: an all-live mask must reproduce the
// unmasked strategy's assignments draw for draw — binding the mask adds
// checks, never RNG consumption, so the two runs stay in lockstep.
func TestLivenessAllLiveBitIdentical(t *testing.T) {
	const l, k, m, radius = 10, 80, 2, 3
	g := grid.New(l, grid.Torus)
	p := cache.Place(g.N(), m, dist.NewZipf(k, 1.1), cache.WithReplacement, rand.New(rand.NewPCG(3, 4)))
	lv := cache.NewLiveness(g.N())
	for _, cfg := range []TwoChoiceConfig{
		{Radius: radius},
		{Radius: RadiusUnbounded},
		{Radius: radius, Choices: 3, WithoutReplacement: true},
	} {
		masked := NewTwoChoice(g, p, cfg)
		masked.SetLiveness(lv)
		bare := NewTwoChoice(g, p, cfg)
		rngA := rand.New(rand.NewPCG(42, 43))
		rngB := rand.New(rand.NewPCG(42, 43))
		loadsA := ballsbins.NewLoads(g.N())
		loadsB := ballsbins.NewLoads(g.N())
		reqRng := rand.New(rand.NewPCG(7, 8))
		for q := 0; q < 400; q++ {
			req := Request{Origin: int32(reqRng.IntN(g.N())), File: int32(reqRng.IntN(k))}
			a := masked.Assign(req, loadsA, rngA)
			b := bare.Assign(req, loadsB, rngB)
			if a.Server != b.Server || a.Hops != b.Hops || a.Escalated != b.Escalated ||
				a.Backhaul != b.Backhaul || a.Retried {
				t.Fatalf("%s q=%d: masked %+v vs bare %+v", masked.Name(), q, a, b)
			}
			loadsA.Add(int(a.Server))
			loadsB.Add(int(b.Server))
		}
	}
}
