// Package confgraph builds the configuration graph H of Definition 4:
// servers are vertices, and u ~ v iff they cache a common file and lie
// within torus distance 2r of each other. Lemma 3 proves that (conditioned
// on the goodness property) H is almost Δ-regular with Δ = Θ(M²r²/K) and
// that Strategy II samples edges of H with probability O(1/e(H)) — the
// preconditions of Theorem 5. This package computes H exactly so those
// claims can be validated empirically.
package confgraph

import (
	"math"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/stats"
)

// Graph is the materialized configuration graph.
type Graph struct {
	Nodes   int
	Degrees []int32
	Edges   [][2]int32 // u < v, each undirected edge once
}

// Build constructs H for the given placement and proximity parameter r.
// Cost is O(n·|B_2r|·avg t) — intended for n up to a few thousand; the
// experiment harness uses it at paper Fig. 5 scale (n = 2025).
func Build(g *grid.Grid, p *cache.Placement, r int) *Graph {
	n := g.N()
	h := &Graph{Nodes: n, Degrees: make([]int32, n)}
	reach := 2 * r
	var ball []int32
	for u := 0; u < n; u++ {
		ball = g.Ball(u, reach, ball[:0])
		for _, v32 := range ball {
			v := int(v32)
			if v <= u {
				continue // each unordered pair once
			}
			if p.TPair(u, v) > 0 {
				h.Edges = append(h.Edges, [2]int32{int32(u), int32(v)})
				h.Degrees[u]++
				h.Degrees[v]++
			}
		}
	}
	return h
}

// NumEdges returns e(H).
func (h *Graph) NumEdges() int { return len(h.Edges) }

// NumNodes implements ballsbins.EdgeGraph.
func (h *Graph) NumNodes() int { return h.Nodes }

// Edge implements ballsbins.EdgeGraph, so the Theorem 5 allocation process
// can run directly on H.
func (h *Graph) Edge(i int) (int, int) { return int(h.Edges[i][0]), int(h.Edges[i][1]) }

var _ ballsbins.EdgeGraph = (*Graph)(nil)

// DegreeStats summarizes the regularity structure Lemma 3(a) predicts.
type DegreeStats struct {
	Mean      float64
	Min, Max  int
	CV        float64 // coefficient of variation σ/µ; ≈ 0 for regular graphs
	Isolated  int     // nodes with degree 0
	NumEdges  int
	PredDelta float64 // Lemma 3's Δ = M²·|B_2r|/K prediction (unit constant)
}

// Stats computes degree statistics and the Lemma 3 Δ-prediction.
func (h *Graph) Stats(g *grid.Grid, p *cache.Placement, r int) DegreeStats {
	var s stats.Summary
	ds := DegreeStats{Min: math.MaxInt}
	for _, d := range h.Degrees {
		s.Add(float64(d))
		if int(d) < ds.Min {
			ds.Min = int(d)
		}
		if int(d) > ds.Max {
			ds.Max = int(d)
		}
		if d == 0 {
			ds.Isolated++
		}
	}
	ds.Mean = s.Mean()
	if s.Mean() > 0 {
		ds.CV = s.Std() / s.Mean()
	}
	ds.NumEdges = h.NumEdges()
	m, k := float64(p.M()), float64(p.K())
	ds.PredDelta = m * m * float64(g.BallSize(2*r)) / k
	return ds
}

// AlmostRegular reports whether max/min degree stays within factor c —
// the "almost Δ-regular" notion of Theorem 5 (degree Θ(Δ) for all nodes).
func (h *Graph) AlmostRegular(c float64) bool {
	if h.Nodes == 0 {
		return true
	}
	minD, maxD := math.MaxInt, 0
	for _, d := range h.Degrees {
		if int(d) < minD {
			minD = int(d)
		}
		if int(d) > maxD {
			maxD = int(d)
		}
	}
	if minD == 0 {
		return false
	}
	return float64(maxD) <= c*float64(minD)
}
