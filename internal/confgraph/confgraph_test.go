package confgraph

import (
	"testing"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/xrand"
)

func world(l, k, m int, seed uint64) (*grid.Grid, *cache.Placement) {
	g := grid.New(l, grid.Torus)
	p := cache.Place(g.N(), m, dist.NewUniform(k), cache.WithReplacement,
		xrand.NewSource(seed).Stream(0))
	return g, p
}

func TestBuildMatchesDefinition(t *testing.T) {
	g, p := world(8, 10, 2, 1)
	r := 2
	h := Build(g, p, r)
	// Brute-force the definition: u~v iff t(u,v) ≥ 1 and d(u,v) ≤ 2r.
	want := map[[2]int32]bool{}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if p.TPair(u, v) > 0 && g.Dist(u, v) <= 2*r {
				want[[2]int32{int32(u), int32(v)}] = true
			}
		}
	}
	if len(want) != h.NumEdges() {
		t.Fatalf("edge count %d, want %d", h.NumEdges(), len(want))
	}
	for _, e := range h.Edges {
		if !want[e] {
			t.Fatalf("spurious edge %v", e)
		}
		if e[0] >= e[1] {
			t.Fatalf("edge %v not canonically ordered", e)
		}
	}
	// Degrees consistent with edges.
	deg := make([]int32, g.N())
	for _, e := range h.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for u := range deg {
		if deg[u] != h.Degrees[u] {
			t.Fatalf("degree of %d: %d vs %d", u, h.Degrees[u], deg[u])
		}
	}
}

func TestEdgeInterface(t *testing.T) {
	g, p := world(6, 5, 2, 2)
	h := Build(g, p, 1)
	if h.NumEdges() == 0 {
		t.Skip("degenerate world")
	}
	u, v := h.Edge(0)
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v {
		t.Fatalf("bad edge endpoints %d %d", u, v)
	}
	if h.NumNodes() != g.N() {
		t.Fatalf("NumNodes %d", h.NumNodes())
	}
}

func TestStatsAndPrediction(t *testing.T) {
	// Lemma 3(a) regime approximation at n=2025: K=n, M=n^0.4≈21,
	// r=n^0.35≈14 gives α+2β≈1.1>1. Degrees should concentrate: CV small,
	// mean within a constant factor of Δ = M²|B_2r|/K.
	g, p := world(45, 2025, 21, 3)
	r := 14
	h := Build(g, p, r)
	ds := h.Stats(g, p, r)
	if ds.Isolated > 0 {
		t.Fatalf("%d isolated nodes in dense regime", ds.Isolated)
	}
	if ds.CV > 0.35 {
		t.Fatalf("degree CV %.3f too high for almost-regularity", ds.CV)
	}
	ratio := ds.Mean / ds.PredDelta
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("mean degree %.1f vs predicted Δ %.1f (ratio %.2f) outside Θ(1) band",
			ds.Mean, ds.PredDelta, ratio)
	}
	if !h.AlmostRegular(3) {
		t.Fatalf("graph not almost-regular within factor 3: min %d max %d", ds.Min, ds.Max)
	}
	if ds.NumEdges != h.NumEdges() {
		t.Fatal("stats edge count mismatch")
	}
}

func TestAlmostRegularEdgeCases(t *testing.T) {
	empty := &Graph{}
	if !empty.AlmostRegular(2) {
		t.Fatal("empty graph should be trivially regular")
	}
	withIsolated := &Graph{Nodes: 2, Degrees: []int32{0, 0}}
	if withIsolated.AlmostRegular(100) {
		t.Fatal("isolated nodes must fail almost-regularity")
	}
}

func TestTheorem5ProcessOnConfigGraph(t *testing.T) {
	// End-to-end: run the Kenthapadi–Panigrahy allocation on H built in
	// the Theorem 4 regime; max load should be small (≤ 2-choice-like),
	// far below one-choice.
	g, p := world(45, 2025, 21, 5)
	h := Build(g, p, 14)
	r := xrand.NewSource(6).Stream(0)
	const trials = 5
	sumH, sumOne := 0, 0
	for i := 0; i < trials; i++ {
		sumH += ballsbins.GraphAllocate(h, g.N(), r).Max()
		sumOne += ballsbins.OneChoice(g.N(), g.N(), r).Max()
	}
	if !(float64(sumH)/trials < float64(sumOne)/trials-1) {
		t.Fatalf("graph allocation on H (%.2f) not clearly below one-choice (%.2f)",
			float64(sumH)/trials, float64(sumOne)/trials)
	}
}

func BenchmarkBuildN2025(b *testing.B) {
	g, p := world(45, 500, 10, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Build(g, p, 5)
	}
}
