package sim

import (
	"fmt"
	"testing"
)

// shardMatrix spans the discipline surface of the sharded engine:
// strategies × miss policies, plus index, churn, and metrics variants.
// All configs run StreamsSplit (a Workers requirement) at a scale with
// several chunks per trial so the barrier machinery is exercised.
func shardMatrix() []Config {
	base := Config{
		Side: 10, K: 120, M: 2,
		Popularity: PopSpec{Kind: PopZipf, Gamma: 0.9},
		Requests:   4096,
		Streams:    StreamsSplit,
		Seed:       0x5eed,
	}
	var cfgs []Config
	for _, sk := range []StrategyKind{Nearest, TwoChoices, OneChoiceRandom, Oracle} {
		for _, mp := range []MissPolicy{MissResample, MissEscalate, MissOrigin} {
			cfg := base
			cfg.Strategy = StrategySpec{Kind: sk, Radius: 3}
			cfg.MissPolicy = mp
			cfgs = append(cfgs, cfg)
		}
	}
	tiles := base
	tiles.Strategy = StrategySpec{Kind: TwoChoices, Radius: 3}
	tiles.Index = IndexTiles
	cfgs = append(cfgs, tiles)

	churn := base
	churn.Strategy = StrategySpec{Kind: TwoChoices, Radius: 3}
	churn.Churn = ChurnReplicas
	churn.ChurnRate = 0.5
	cfgs = append(cfgs, churn)

	drift := churn
	drift.Churn = ChurnDrift
	drift.Index = IndexTiles
	cfgs = append(cfgs, drift)

	streaming := base
	streaming.Strategy = StrategySpec{Kind: TwoChoices, Radius: 3}
	streaming.Metrics = MetricsStreaming
	cfgs = append(cfgs, streaming)

	links := base
	links.Strategy = StrategySpec{Kind: TwoChoices, Radius: 3}
	links.Metrics = MetricsLinks
	cfgs = append(cfgs, links)

	return cfgs
}

// TestShardDeterministicWorkerInvariance is the parallel-equivalence
// property: under ShardDeterministic, a trial's Result is a pure
// function of (cfg, trial) — bit-identical across every worker count —
// for every chunk size. This is the invariant that lets the parallel
// golden matrix be captured at P=1 and enforced at any P.
func TestShardDeterministicWorkerInvariance(t *testing.T) {
	for _, cfg := range shardMatrix() {
		for _, chunk := range []int{64, 1024} {
			ref := cfg
			ref.Workers, ref.Chunk = 1, chunk
			wRef, err := Compile(ref)
			if err != nil {
				t.Fatal(err)
			}
			var want [2]Result
			for trial := range want {
				want[trial] = wRef.RunTrial(uint64(trial))
			}
			for _, p := range []int{2, 3, 8} {
				c := cfg
				c.Workers, c.Chunk = p, chunk
				w, err := Compile(c)
				if err != nil {
					t.Fatal(err)
				}
				for trial := range want {
					got := w.RunTrial(uint64(trial))
					if got != want[trial] {
						t.Errorf("%s/%s chunk=%d t=%d: P=%d diverged from P=1\n got %+v\nwant %+v",
							cfg.Strategy.Kind, cfg.MissPolicy, chunk, trial, p, got, want[trial])
					}
				}
			}
		}
	}
}

// TestShardChunkInvariance: with churn off, the deterministic sharded
// process is also invariant to the chunk partition — granule labels are
// global request indices, so any granule-aligned chunking yields the
// same streams and the same frozen-snapshot visibility per chunk...
// except that visibility *does* change with chunk size (smaller chunks
// refresh the snapshot more often). This test therefore asserts the
// weaker, true property: chunk size changes results only through
// snapshot cadence, so configurations whose strategies ignore loads
// (Nearest) are exactly chunk-invariant.
func TestShardChunkInvariance(t *testing.T) {
	cfg := shardMatrix()[0] // Nearest / MissResample: load-blind
	if cfg.Strategy.Kind != Nearest {
		t.Fatalf("matrix order changed: want Nearest first, got %v", cfg.Strategy.Kind)
	}
	cfg.Workers = 4
	var want Result
	for i, chunk := range []int{64, 256, 1024} {
		c := cfg
		c.Chunk = chunk
		w, err := Compile(c)
		if err != nil {
			t.Fatal(err)
		}
		got := w.RunTrial(3)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("chunk=%d diverged for load-blind strategy:\n got %+v\nwant %+v", chunk, got, want)
		}
	}
}

// TestShardValidation pins the config surface errors of the sharded
// engine.
func TestShardValidation(t *testing.T) {
	ok := Config{Side: 6, K: 30, M: 2, Streams: StreamsSplit, Workers: 2}
	if _, err := Compile(ok); err != nil {
		t.Fatalf("valid sharded config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative workers", func(c *Config) { c.Workers = -1 }},
		{"racy without workers", func(c *Config) { c.Workers = 0; c.Shard = ShardRacy }},
		{"workers with interleaved streams", func(c *Config) { c.Streams = StreamsInterleaved }},
		{"chunk not granule-aligned", func(c *Config) { c.Chunk = 96 }},
		{"negative chunk", func(c *Config) { c.Chunk = -1 }},
		{"unknown shard mode", func(c *Config) { c.Shard = ShardRacy + 1 }},
	}
	for _, tc := range cases {
		cfg := ok
		tc.mutate(&cfg)
		if _, err := Compile(cfg); err == nil {
			t.Errorf("%s: config %+v compiled, want error", tc.name, cfg)
		}
	}
}

// TestShardModeRoundTrip pins the CLI names.
func TestShardModeRoundTrip(t *testing.T) {
	for _, m := range []ShardMode{ShardDeterministic, ShardRacy} {
		got, err := ParseShard(m.String())
		if err != nil || got != m {
			t.Errorf("ParseShard(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseShard(""); err != nil || m != ShardDeterministic {
		t.Errorf("ParseShard(\"\") = %v, %v, want deterministic", m, err)
	}
	if _, err := ParseShard("bogus"); err == nil {
		t.Error("ParseShard(\"bogus\") succeeded")
	}
}

// TestShardRacySanity checks the invariants the racy mode does keep:
// request conservation, a max load no smaller than the perfect-balance
// floor and no larger than the request count, and generation that stays
// on the deterministic granule streams (miss accounting for a
// load-blind strategy is identical to the deterministic mode's, because
// only load *reads* are racy).
func TestShardRacySanity(t *testing.T) {
	cfg := Config{
		Side: 10, K: 120, M: 2,
		Popularity: PopSpec{Kind: PopZipf, Gamma: 0.9},
		Strategy:   StrategySpec{Kind: TwoChoices, Radius: 3},
		Requests:   4096,
		Streams:    StreamsSplit,
		Workers:    4,
		Shard:      ShardRacy,
		Seed:       0x5eed,
	}
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := uint64(0); trial < 3; trial++ {
		res := w.RunTrial(trial)
		if res.Requests != cfg.Requests {
			t.Fatalf("t=%d: Requests = %d, want %d", trial, res.Requests, cfg.Requests)
		}
		floor := (cfg.Requests + cfg.N() - 1) / cfg.N()
		if res.MaxLoad < floor || res.MaxLoad > cfg.Requests {
			t.Errorf("t=%d: MaxLoad = %d outside [%d, %d]", trial, res.MaxLoad, floor, cfg.Requests)
		}
		if res.MeanCost < 0 || res.MeanCost > float64(w.Grid().Diameter()) {
			t.Errorf("t=%d: MeanCost = %v outside the hop range", trial, res.MeanCost)
		}
	}

	det := cfg
	det.Shard = ShardDeterministic
	det.Strategy = StrategySpec{Kind: Nearest}
	racy := det
	racy.Shard = ShardRacy
	wd, err := Compile(det)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := Compile(racy)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := wr.RunTrial(1), wd.RunTrial(1); got != want {
		t.Errorf("load-blind racy trial diverged from deterministic:\n got %+v\nwant %+v", got, want)
	}
}

// TestShardRacyChurnStress hammers the racy mode's shared atomic load
// vector from 8 workers while the churn engine splices the placement
// (and tile index) at every barrier, across streaming metrics and
// several trials. Its job is to give the race detector (the dedicated
// CI tier runs -race over 'Parallel|Shard|Churn') a worst-case
// interleaving surface: any non-atomic access to shared loads, any
// merge outside the barrier, or any churn splice overlapping an assign
// would be flagged here.
func TestShardRacyChurnStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, ix := range []IndexMode{IndexNone, IndexTiles} {
		cfg := Config{
			Side: 16, K: 400, M: 2,
			Popularity: PopSpec{Kind: PopZipf, Gamma: 1.1},
			Strategy:   StrategySpec{Kind: TwoChoices, Radius: 4},
			Requests:   16 * 1024,
			Metrics:    MetricsStreaming,
			Streams:    StreamsSplit,
			Index:      ix,
			Churn:      ChurnReplicas,
			ChurnRate:  0.5,
			Workers:    8,
			Shard:      ShardRacy,
			Chunk:      256, // short chunks → many barriers and splices
			Seed:       0xace,
		}
		w, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := uint64(0); trial < 4; trial++ {
			res := w.RunTrial(trial)
			if res.Requests != cfg.Requests {
				t.Fatalf("index=%v t=%d: Requests = %d, want %d", ix, trial, res.Requests, cfg.Requests)
			}
			if res.ChurnEvents == 0 {
				t.Errorf("index=%v t=%d: churn never fired under rate %v", ix, trial, cfg.ChurnRate)
			}
			if res.MaxLoad <= 0 || !res.Streamed {
				t.Errorf("index=%v t=%d: implausible result %+v", ix, trial, res)
			}
		}
	}
}

// TestShardWideWorkerCounts runs more shards than a chunk has granules
// (empty shards) and P far beyond GOMAXPROCS, checking the barrier
// protocol tolerates idle workers.
func TestShardWideWorkerCounts(t *testing.T) {
	cfg := Config{
		Side: 6, K: 60, M: 2,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 2},
		Requests: 128, // 2 granules per 64-chunk
		Streams:  StreamsSplit,
		Chunk:    64,
		Seed:     9,
	}
	ref := cfg
	ref.Workers = 1
	wr, err := Compile(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := wr.RunTrial(0)
	for _, p := range []int{5, 32} {
		c := cfg
		c.Workers = p
		w, err := Compile(c)
		if err != nil {
			t.Fatal(err)
		}
		if got := w.RunTrial(0); got != want {
			t.Errorf("P=%d (mostly idle shards) diverged:\n got %+v\nwant %+v", p, got, want)
		}
	}
}

// TestShardRunnerReuse runs many trials through one pooled world at
// P=4, interleaving trial indices, and checks against fresh worlds — no
// state may leak across sharded trials (worker goroutines from a
// previous trial, stale shard accounts, unreset granule accumulators).
func TestShardRunnerReuse(t *testing.T) {
	cfg := Config{
		Side: 10, K: 120, M: 2,
		Popularity: PopSpec{Kind: PopZipf, Gamma: 0.9},
		Strategy:   StrategySpec{Kind: TwoChoices, Radius: 3},
		Requests:   2048,
		Metrics:    MetricsStreaming,
		Streams:    StreamsSplit,
		Workers:    4,
		Seed:       0x77,
	}
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := []uint64{3, 0, 3, 1, 2, 0}
	for i, trial := range seq {
		got := w.RunTrial(trial)
		fresh, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := fresh.RunTrial(trial)
		if got != want {
			t.Errorf("reuse step %d (t=%d) diverged:\n got %+v\nwant %+v", i, trial, got, want)
		}
	}
}

// TestShardAggregateAcrossWorkers runs Run (trial-level parallelism) on
// a sharded config and checks the aggregate matches the serial fold —
// the two parallelism layers compose.
func TestShardAggregateAcrossWorkers(t *testing.T) {
	cfg := Config{
		Side: 8, K: 80, M: 2,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 3},
		Requests: 1024,
		Streams:  StreamsSplit,
		Workers:  2,
		Seed:     5,
	}
	const trials = 8
	got, err := Run(cfg, trials, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want Aggregate
	for trial := uint64(0); trial < trials; trial++ {
		want.Add(w.RunTrial(trial))
	}
	// Run merges per-block aggregates pairwise (Chan et al.), which is
	// not bit-identical to the serial Welford fold — compare trial
	// counts exactly and moments within float slack.
	if got.Trials != want.Trials {
		t.Fatalf("Trials = %d, want %d", got.Trials, want.Trials)
	}
	if d := got.MaxLoad.Mean() - want.MaxLoad.Mean(); d > 1e-9 || d < -1e-9 {
		t.Errorf("MaxLoad mean diverged: got %v, want %v", got.MaxLoad.Mean(), want.MaxLoad.Mean())
	}
	if d := got.MeanCost.Mean() - want.MeanCost.Mean(); d > 1e-9 || d < -1e-9 {
		t.Errorf("MeanCost mean diverged: got %v, want %v", got.MeanCost.Mean(), want.MeanCost.Mean())
	}
}

func ExampleConfig_workers() {
	cfg := Config{
		Side: 8, K: 64, M: 2,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 3},
		Streams:  StreamsSplit,
		Workers:  4,
		Seed:     1,
	}
	w, err := Compile(cfg)
	if err != nil {
		panic(err)
	}
	res := w.RunTrial(0)
	fmt.Println(res.Requests == cfg.N())
	// Output: true
}

// TestShardedTrialSteadyStateAllocs extends the engine's allocation
// contract to the sharded path: after warm-up, a P-worker trial's only
// allocations are the P−1 per-trial goroutine spawns of the barrier
// protocol — the per-shard request loops and the coordinator's barrier
// merge run out of reused arenas. The budget of 4 allocs per spawned
// worker (goroutine + argument frame, with headroom for runtime stack
// bookkeeping) would be blown three orders of magnitude over by a
// single allocation inside the per-request loop (paperScaleCfg issues
// 4900 requests/trial), so passing here certifies 0 allocs/op per
// shard and an O(P) barrier merge.
func TestShardedTrialSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and disables pool caching")
	}
	for _, variant := range []struct {
		name string
		mut  func(*Config)
	}{
		{"det-scalar-p4", func(c *Config) { c.Workers = 4 }},
		{"det-streaming-p4", func(c *Config) { c.Workers = 4; c.Metrics = MetricsStreaming }},
		{"det-tiles-streaming-p8", func(c *Config) {
			c.Workers = 8
			c.Index = IndexTiles
			c.Metrics = MetricsStreaming
		}},
		{"racy-scalar-p4", func(c *Config) { c.Workers = 4; c.Shard = ShardRacy }},
		{"det-churn-p4", func(c *Config) { c.Workers = 4; c.Churn = ChurnReplicas; c.ChurnRate = 0.25 }},
	} {
		cfg := paperScaleCfg()
		cfg.Streams = StreamsSplit
		variant.mut(&cfg)
		w, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := w.NewRunner()
		r.RunTrial(0)
		r.RunTrial(1) // second warm-up: buffers at steady-state size
		trial := uint64(2)
		budget := float64(4 * (cfg.Workers - 1))
		if n := testing.AllocsPerRun(3, func() {
			r.RunTrial(trial)
			trial++
		}); n > budget {
			t.Errorf("%s: steady-state sharded RunTrial allocates %.1f/op, want <= %.0f (worker spawns only)",
				variant.name, n, budget)
		}
	}
}
