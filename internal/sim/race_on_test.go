//go:build race

package sim

// raceEnabled reports that the race detector is instrumenting this build
// (sync.Pool caching is disabled and every allocation is wrapped, so the
// allocation-free contracts cannot be asserted).
const raceEnabled = true
