package sim

import "testing"

// faultPin is one (config, trial) → Result pair captured from the fault
// engine at introduction time. The fault disciplines are new seeded
// processes — FaultsNone never derives the namespace-7 stream and is
// frozen by the existing golden matrices, whose configs all carry the
// zero-valued fault fields — so these pins freeze the failure schedule
// from day one: any change to the event scheduler (credit accumulators,
// crash-before-recover drain order, chunk gating), the event shape
// (uniform live/dead draws, region draws), the region geometry
// (regionSize) or the degradation ladder (dead-candidate rejection,
// live-pool retry budget, escalation, backhaul) that perturbs seeded
// trajectories must be deliberate and re-pinned.
type faultPin struct {
	name  string
	trial uint64
	cfg   Config
	want  Result
}

// TestGoldenMatrixFaults replays the fault-mode matrix (faults ×
// strategy × index × streams, plus miss-origin, churn-composed,
// heavy-MTTR, sharded, Zipf-regional and streaming-metrics variants)
// against the captured outputs.
func TestGoldenMatrixFaults(t *testing.T) {
	for _, p := range faultPins {
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s t=%d: %v", p.name, p.trial, err)
		}
		if got != p.want {
			t.Errorf("%s t=%d:\n got %+v\nwant %+v", p.name, p.trial, got, p.want)
		}
	}
}

// TestFaultsNoneBitIdentity re-asserts the FaultsNone freeze explicitly:
// a Config with Faults spelled out as FaultsNone is the same comparable
// value as the configs of the existing golden matrices (the fault fields
// are zero-valued there), so replaying representative pins from the
// head, index and churn matrices with Faults set documents — and
// enforces — that the fault engine left every frozen trajectory
// untouched.
func TestFaultsNoneBitIdentity(t *testing.T) {
	for _, i := range []int{0, 9, 25, 60, 101} {
		p := headPins[i%len(headPins)]
		p.cfg.Faults = FaultsNone
		p.cfg.FaultRate = 0
		p.cfg.RecoverRate = 0
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if got != p.want {
			t.Errorf("head pin %s t=%d diverged under explicit FaultsNone:\n got %+v\nwant %+v",
				p.name, p.trial, got, p.want)
		}
	}
	for _, i := range []int{0, 11, 29, 44} {
		p := indexPins[i%len(indexPins)]
		p.cfg.Faults = FaultsNone
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if got != p.want {
			t.Errorf("index pin %s t=%d diverged under explicit FaultsNone:\n got %+v\nwant %+v",
				p.name, p.trial, got, p.want)
		}
	}
	for _, i := range []int{0, 7, 19} {
		p := churnPins[i%len(churnPins)]
		p.cfg.Faults = FaultsNone
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if got != p.want {
			t.Errorf("churn pin %s t=%d diverged under explicit FaultsNone:\n got %+v\nwant %+v",
				p.name, p.trial, got, p.want)
		}
	}
}

var faultPins = []faultPin{
	{name: "crash/two-choices/none/interleaved", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 69, MeanCost: 4.399169921875, Requests: 4096, Escalated: 2297, Backhaul: 780, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 850, Retried: 441, Availability: 0.8095703125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/two-choices/none/interleaved", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 64, MeanCost: 4.36474609375, Requests: 4096, Escalated: 2303, Backhaul: 759, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 954, Retried: 466, Availability: 0.814697265625, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/two-choices/tiles/interleaved", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 78, MeanCost: 4.391357421875, Requests: 4096, Escalated: 2306, Backhaul: 770, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 875, Retried: 444, Availability: 0.81201171875, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/two-choices/tiles/interleaved", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 65, MeanCost: 4.37255859375, Requests: 4096, Escalated: 2298, Backhaul: 748, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 966, Retried: 463, Availability: 0.8173828125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/two-choices/none/split", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 67, MeanCost: 4.4013671875, Requests: 4096, Escalated: 2343, Backhaul: 768, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 912, Retried: 446, Availability: 0.8125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/two-choices/none/split", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 69, MeanCost: 4.37109375, Requests: 4096, Escalated: 2284, Backhaul: 747, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 944, Retried: 468, Availability: 0.817626953125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/two-choices/tiles/split", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 67, MeanCost: 4.409912109375, Requests: 4096, Escalated: 2343, Backhaul: 768, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 920, Retried: 454, Availability: 0.8125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/two-choices/tiles/split", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 69, MeanCost: 4.3662109375, Requests: 4096, Escalated: 2284, Backhaul: 747, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 928, Retried: 462, Availability: 0.817626953125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/nearest", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 0}, Requests: 4096, MissPolicy: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 68, MeanCost: 3.967529296875, Requests: 4096, Escalated: 0, Backhaul: 742, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 886, Retried: 727, Availability: 0.81884765625, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/nearest", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 0}, Requests: 4096, MissPolicy: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 64, MeanCost: 3.901611328125, Requests: 4096, Escalated: 0, Backhaul: 812, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 884, Retried: 700, Availability: 0.8017578125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/oracle/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 3, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 66, MeanCost: 4.412109375, Requests: 4096, Escalated: 2322, Backhaul: 746, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 897, Retried: 556, Availability: 0.81787109375, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/oracle/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 3, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 64, MeanCost: 4.341796875, Requests: 4096, Escalated: 2272, Backhaul: 779, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 894, Retried: 567, Availability: 0.809814453125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/heavy-mttr/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Faults: 1, FaultRate: 0.2, RecoverRate: 0.2, Seed: 0x63},
		want: Result{MaxLoad: 72, MeanCost: 4.50732421875, Requests: 4096, Escalated: 2325, Backhaul: 634, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 432, RecoverEvents: 432, FaultSkipped: 364, DeadNodes: 0, DeadLoad: 6144, Retried: 0, Availability: 0.84521484375, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/heavy-mttr/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Faults: 1, FaultRate: 0.2, RecoverRate: 0.2, Seed: 0x63},
		want: Result{MaxLoad: 62, MeanCost: 4.492431640625, Requests: 4096, Escalated: 2318, Backhaul: 611, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 432, RecoverEvents: 432, FaultSkipped: 364, DeadNodes: 0, DeadLoad: 6144, Retried: 0, Availability: 0.850830078125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/miss-origin/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 2, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 42, MeanCost: 0.55810546875, Requests: 4096, Escalated: 0, Backhaul: 3073, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 832, Retried: 136, Availability: 0.249755859375, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/miss-origin/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 2, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 46, MeanCost: 0.55517578125, Requests: 4096, Escalated: 0, Backhaul: 3113, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 858, Retried: 139, Availability: 0.239990234375, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash+churn/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Churn: 1, ChurnRate: 0.5, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 60, MeanCost: 4.511474609375, Requests: 4096, Escalated: 2363, Backhaul: 723, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 856, Retried: 435, Availability: 0.823486328125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash+churn/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Churn: 1, ChurnRate: 0.5, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 58, MeanCost: 4.461669921875, Requests: 4096, Escalated: 2338, Backhaul: 736, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 936, Retried: 427, Availability: 0.8203125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/streaming/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Metrics: 2, Streams: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 67, MeanCost: 4.409912109375, Requests: 4096, Escalated: 2343, Backhaul: 768, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 920, Retried: 454, Availability: 0.8125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: true, HopMax: 12, HopStd: 3.2143891068896284, LoadP99: 55, LinkMaxApprox: 56}},
	{name: "crash/streaming/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Metrics: 2, Streams: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 69, MeanCost: 4.3662109375, Requests: 4096, Escalated: 2284, Backhaul: 747, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 928, Retried: 462, Availability: 0.817626953125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: true, HopMax: 12, HopStd: 3.191513609457571, LoadP99: 61, LinkMaxApprox: 67}},
	{name: "crash/workers2/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Workers: 2, Seed: 0x63},
		want: Result{MaxLoad: 62, MeanCost: 4.3359375, Requests: 4096, Escalated: 2262, Backhaul: 803, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 911, Retried: 462, Availability: 0.803955078125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "crash/workers2/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Index: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Workers: 2, Seed: 0x63},
		want: Result{MaxLoad: 78, MeanCost: 4.38525390625, Requests: 4096, Escalated: 2281, Backhaul: 755, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 926, Retried: 482, Availability: 0.815673828125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "regional/two-choices/none/interleaved", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 2, FaultRate: 0.002, RecoverRate: 0.002, Seed: 0x63},
		want: Result{MaxLoad: 68, MeanCost: 4.483154296875, Requests: 4096, Escalated: 2345, Backhaul: 717, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 5, RecoverEvents: 2, FaultSkipped: 5, DeadNodes: 27, DeadLoad: 546, Retried: 441, Availability: 0.824951171875, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "regional/two-choices/none/interleaved", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 2, FaultRate: 0.002, RecoverRate: 0.002, Seed: 0x63},
		want: Result{MaxLoad: 71, MeanCost: 4.2744140625, Requests: 4096, Escalated: 2244, Backhaul: 840, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 5, RecoverEvents: 2, FaultSkipped: 5, DeadNodes: 27, DeadLoad: 643, Retried: 510, Availability: 0.794921875, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "regional/two-choices/tiles/split", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Index: 1, Faults: 2, FaultRate: 0.002, RecoverRate: 0.002, Seed: 0x63},
		want: Result{MaxLoad: 66, MeanCost: 4.469970703125, Requests: 4096, Escalated: 2394, Backhaul: 734, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 5, RecoverEvents: 2, FaultSkipped: 5, DeadNodes: 27, DeadLoad: 587, Retried: 428, Availability: 0.82080078125, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "regional/two-choices/tiles/split", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Index: 1, Faults: 2, FaultRate: 0.002, RecoverRate: 0.002, Seed: 0x63},
		want: Result{MaxLoad: 67, MeanCost: 4.3251953125, Requests: 4096, Escalated: 2277, Backhaul: 797, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 5, RecoverEvents: 2, FaultSkipped: 5, DeadNodes: 27, DeadLoad: 594, Retried: 493, Availability: 0.805419921875, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "regional/nearest", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 0}, Requests: 4096, MissPolicy: 1, Faults: 2, FaultRate: 0.002, RecoverRate: 0.002, Seed: 0x63},
		want: Result{MaxLoad: 68, MeanCost: 4.138427734375, Requests: 4096, Escalated: 0, Backhaul: 655, Uncached: 22, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 5, RecoverEvents: 2, FaultSkipped: 5, DeadNodes: 27, DeadLoad: 539, Retried: 702, Availability: 0.840087890625, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "regional/nearest", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 0}, Requests: 4096, MissPolicy: 1, Faults: 2, FaultRate: 0.002, RecoverRate: 0.002, Seed: 0x63},
		want: Result{MaxLoad: 65, MeanCost: 3.91748046875, Requests: 4096, Escalated: 0, Backhaul: 833, Uncached: 23, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 5, RecoverEvents: 2, FaultSkipped: 5, DeadNodes: 27, DeadLoad: 684, Retried: 866, Availability: 0.796630859375, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "regional/zipf/heavy", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 1.2}, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 2, FaultRate: 0.01, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 47, MeanCost: 2.837890625, Requests: 4096, Escalated: 809, Backhaul: 633, Uncached: 79, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 17, RecoverEvents: 10, FaultSkipped: 33, DeadNodes: 63, DeadLoad: 2290, Retried: 1435, Availability: 0.845458984375, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "regional/zipf/heavy", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 1.2}, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 2, FaultRate: 0.01, RecoverRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 76, MeanCost: 2.98583984375, Requests: 4096, Escalated: 936, Backhaul: 593, Uncached: 85, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 15, RecoverEvents: 10, FaultSkipped: 35, DeadNodes: 45, DeadLoad: 1911, Retried: 1230, Availability: 0.855224609375, MaxLinkLoad: 0, LinkCongestion: 0, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
}
