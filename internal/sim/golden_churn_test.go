package sim

import "testing"

// churnPin is one (config, trial) → Result pair captured from the churn
// engine at introduction time (PR 5). The churn disciplines are new
// seeded processes — ChurnNone stays bit-identical to the PR 4 engine
// and is frozen by the existing 110-case (IndexNone) and 50-case
// (IndexTiles) golden matrices, whose configs all carry the zero-valued
// Churn fields — so these pins freeze the churn RNG consumption from
// day one: any change to the event schedule (credit accumulator, chunk
// gating), the event shape (slot draw, destination draw, swap
// displacement draw), the drift constants or the splice order that
// perturbs seeded trajectories must be deliberate and re-pinned.
type churnPin struct {
	name  string
	trial uint64
	cfg   Config
	want  Result
}

// TestGoldenMatrixChurn replays the churn-mode matrix (churn × strategy
// × index × streams, plus miss-origin, bounded-grid, Zipf-drift,
// heavy-rate, without-replacement, beta/d-choice and streaming-metrics
// variants) against the captured outputs.
func TestGoldenMatrixChurn(t *testing.T) {
	for _, p := range churnPins {
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s t=%d: %v", p.name, p.trial, err)
		}
		if got != p.want {
			t.Errorf("%s t=%d:\n got %+v\nwant %+v", p.name, p.trial, got, p.want)
		}
	}
}

// TestChurnNoneBitIdentity re-asserts the ChurnNone freeze explicitly:
// a Config with Churn spelled out as ChurnNone is the same comparable
// value as the PR 4 configs of the existing golden matrices (the churn
// fields are zero-valued there), so replaying representative pins from
// both matrices with Churn set documents — and enforces — that the
// churn engine left every frozen trajectory untouched.
func TestChurnNoneBitIdentity(t *testing.T) {
	for _, i := range []int{0, 9, 25, 60, 101} {
		p := headPins[i%len(headPins)]
		p.cfg.Churn = ChurnNone
		p.cfg.ChurnRate = 0
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if got != p.want {
			t.Errorf("head pin %s t=%d diverged under explicit ChurnNone:\n got %+v\nwant %+v",
				p.name, p.trial, got, p.want)
		}
	}
	for _, i := range []int{0, 11, 29, 44} {
		p := indexPins[i%len(indexPins)]
		p.cfg.Churn = ChurnNone
		p.cfg.ChurnRate = 0
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if got != p.want {
			t.Errorf("index pin %s t=%d diverged under explicit ChurnNone:\n got %+v\nwant %+v",
				p.name, p.trial, got, p.want)
		}
	}
}

var churnPins = []churnPin{
	{name: "replicas/two-choices/none/interleaved", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 46, MeanCost: 5.3515625, Requests: 4096, Escalated: 2789, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/two-choices/none/interleaved", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 47, MeanCost: 5.2578125, Requests: 4096, Escalated: 2726, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/two-choices/tiles/interleaved", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 45, MeanCost: 5.33642578125, Requests: 4096, Escalated: 2782, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/two-choices/tiles/interleaved", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 47, MeanCost: 5.271728515625, Requests: 4096, Escalated: 2747, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/two-choices/none/split", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 48, MeanCost: 5.321044921875, Requests: 4096, Escalated: 2741, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/two-choices/none/split", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 56, MeanCost: 5.27490234375, Requests: 4096, Escalated: 2737, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/two-choices/tiles/split", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 45, MeanCost: 5.305908203125, Requests: 4096, Escalated: 2741, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/two-choices/tiles/split", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 54, MeanCost: 5.26123046875, Requests: 4096, Escalated: 2737, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/two-choices/none/interleaved", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 46, MeanCost: 5.26904296875, Requests: 4096, Escalated: 2725, Backhaul: 0, Uncached: 22, ChurnEvents: 1499, ChurnSkipped: 37, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/two-choices/none/interleaved", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 54, MeanCost: 5.2392578125, Requests: 4096, Escalated: 2683, Backhaul: 0, Uncached: 23, ChurnEvents: 1507, ChurnSkipped: 29, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/two-choices/tiles/interleaved", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 52, MeanCost: 5.277587890625, Requests: 4096, Escalated: 2706, Backhaul: 0, Uncached: 22, ChurnEvents: 1499, ChurnSkipped: 37, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/two-choices/tiles/interleaved", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 55, MeanCost: 5.290283203125, Requests: 4096, Escalated: 2738, Backhaul: 0, Uncached: 23, ChurnEvents: 1507, ChurnSkipped: 29, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/two-choices/none/split", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 51, MeanCost: 5.240478515625, Requests: 4096, Escalated: 2714, Backhaul: 0, Uncached: 22, ChurnEvents: 1499, ChurnSkipped: 37, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/two-choices/none/split", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 46, MeanCost: 5.331787109375, Requests: 4096, Escalated: 2770, Backhaul: 0, Uncached: 23, ChurnEvents: 1507, ChurnSkipped: 29, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/two-choices/tiles/split", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 50, MeanCost: 5.249755859375, Requests: 4096, Escalated: 2714, Backhaul: 0, Uncached: 22, ChurnEvents: 1499, ChurnSkipped: 37, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/two-choices/tiles/split", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 46, MeanCost: 5.32470703125, Requests: 4096, Escalated: 2770, Backhaul: 0, Uncached: 23, ChurnEvents: 1507, ChurnSkipped: 29, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/nearest", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 0, Radius: 0, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 57, MeanCost: 4.747802734375, Requests: 4096, Escalated: 0, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/nearest", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 0, Radius: 0, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 63, MeanCost: 4.73388671875, Requests: 4096, Escalated: 0, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/oracle/tiles", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 3, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 46, MeanCost: 5.3740234375, Requests: 4096, Escalated: 2828, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/oracle/tiles", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 3, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 56, MeanCost: 5.267822265625, Requests: 4096, Escalated: 2756, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/one-choice/none", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 2, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 64, MeanCost: 5.348388671875, Requests: 4096, Escalated: 2805, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/one-choice/none", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 2, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 57, MeanCost: 5.23583984375, Requests: 4096, Escalated: 2734, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/miss-origin/tiles", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 46, MeanCost: 0.613525390625, Requests: 4096, Escalated: 0, Backhaul: 2957, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/miss-origin/tiles", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 41, MeanCost: 0.615234375, Requests: 4096, Escalated: 0, Backhaul: 2973, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/grid/tiles", trial: 0,
		cfg:  Config{Side: 12, Topology: 1, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 53, MeanCost: 7.1533203125, Requests: 4096, Escalated: 3000, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/grid/tiles", trial: 1,
		cfg:  Config{Side: 12, Topology: 1, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 47, MeanCost: 7.025634765625, Requests: 4096, Escalated: 2940, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/zipf/tiles", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 1.2}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 35, MeanCost: 3.186279296875, Requests: 4096, Escalated: 852, Backhaul: 0, Uncached: 79, ChurnEvents: 1382, ChurnSkipped: 154, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "drift/zipf/tiles", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 1.2}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 2, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 50, MeanCost: 3.27392578125, Requests: 4096, Escalated: 933, Backhaul: 0, Uncached: 85, ChurnEvents: 1309, ChurnSkipped: 227, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/heavy-rate/tiles", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 5, Seed: 0x63},
		want: Result{MaxLoad: 50, MeanCost: 5.37353515625, Requests: 4096, Escalated: 2782, Backhaul: 0, Uncached: 22, ChurnEvents: 14909, ChurnSkipped: 451, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/heavy-rate/tiles", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 5, Seed: 0x63},
		want: Result{MaxLoad: 43, MeanCost: 5.316162109375, Requests: 4096, Escalated: 2730, Backhaul: 0, Uncached: 23, ChurnEvents: 14919, ChurnSkipped: 441, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/wor-degenerate", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 1, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 48, MeanCost: 5.326904296875, Requests: 4096, Escalated: 2780, Backhaul: 0, Uncached: 22, ChurnEvents: 1495, ChurnSkipped: 41, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/wor-degenerate", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 1, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 0, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 47, MeanCost: 5.2578125, Requests: 4096, Escalated: 2726, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/beta-d3/tiles", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 3, WithoutReplacement: false, Beta: 0.7}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 43, MeanCost: 5.40234375, Requests: 4096, Escalated: 2805, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/beta-d3/tiles", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 3, WithoutReplacement: false, Beta: 0.7}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 0, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 53, MeanCost: 5.296875, Requests: 4096, Escalated: 2729, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: false, HopMax: 0, HopStd: 0, LoadP99: 0, LinkMaxApprox: 0}},
	{name: "replicas/streaming/tiles", trial: 0,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 2, Streams: 1, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 45, MeanCost: 5.305908203125, Requests: 4096, Escalated: 2741, Backhaul: 0, Uncached: 22, ChurnEvents: 1481, ChurnSkipped: 55, Streamed: true, HopMax: 12, HopStd: 2.7518313148196554, LoadP99: 43, LinkMaxApprox: 59}},
	{name: "replicas/streaming/tiles", trial: 1,
		cfg:  Config{Side: 12, Topology: 0, K: 150, M: 2, Popularity: PopSpec{Kind: 0, Gamma: 0}, PlacementMode: 0, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 2, Streams: 1, Index: 1, Churn: 1, ChurnRate: 0.5, Seed: 0x63},
		want: Result{MaxLoad: 54, MeanCost: 5.26123046875, Requests: 4096, Escalated: 2737, Backhaul: 0, Uncached: 23, ChurnEvents: 1490, ChurnSkipped: 46, Streamed: true, HopMax: 12, HopStd: 2.6955615578113887, LoadP99: 51, LinkMaxApprox: 62}},
}
