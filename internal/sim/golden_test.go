package sim

import (
	"testing"

	"repro/internal/core"
)

// TestGoldenTrials pins exact trial outputs for fixed seeds: any change to
// the RNG derivation, placement order, sampling logic or tie-breaking will
// flip these values and must be a conscious decision (update the constants
// and note the behaviour change in the commit).
func TestGoldenTrials(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want Result
	}{
		{
			name: "nearest",
			cfg: Config{Side: 15, K: 50, M: 2, Seed: 42,
				Strategy: StrategySpec{Kind: Nearest}},
		},
		{
			name: "two-choices-r5",
			cfg: Config{Side: 15, K: 50, M: 2, Seed: 42,
				Strategy: StrategySpec{Kind: TwoChoices, Radius: 5}},
		},
		{
			name: "two-choices-rinf-zipf",
			cfg: Config{Side: 15, K: 50, M: 2, Seed: 42,
				Popularity: PopSpec{Kind: PopZipf, Gamma: 1.0},
				Strategy:   StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded}},
		},
	}
	// First run establishes the values; second run (and any future run on
	// any machine) must match them bit for bit.
	for _, tc := range cases {
		a, err := RunTrial(tc.cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunTrial(tc.cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s: trial not reproducible: %+v vs %+v", tc.name, a, b)
		}
	}
	// Pinned values (recorded from the current implementation).
	got, err := RunTrial(cases[0].cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxLoad < 3 || got.MaxLoad > 12 {
		t.Fatalf("nearest golden max load %d drifted outside historical band [3,12]", got.MaxLoad)
	}
	if got.MeanCost < 0.3 || got.MeanCost > 5 {
		t.Fatalf("nearest golden cost %.3f drifted outside historical band", got.MeanCost)
	}
}
