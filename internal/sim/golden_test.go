package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// TestGoldenTrials pins exact trial outputs for fixed seeds: any change to
// the RNG derivation, placement order, sampling logic or tie-breaking will
// flip these values and must be a conscious decision (update the constants
// and note the behaviour change in the commit).
func TestGoldenTrials(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want Result
	}{
		{
			name: "nearest",
			cfg: Config{Side: 15, K: 50, M: 2, Seed: 42,
				Strategy: StrategySpec{Kind: Nearest}},
		},
		{
			name: "two-choices-r5",
			cfg: Config{Side: 15, K: 50, M: 2, Seed: 42,
				Strategy: StrategySpec{Kind: TwoChoices, Radius: 5}},
		},
		{
			name: "two-choices-rinf-zipf",
			cfg: Config{Side: 15, K: 50, M: 2, Seed: 42,
				Popularity: PopSpec{Kind: PopZipf, Gamma: 1.0},
				Strategy:   StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded}},
		},
	}
	// First run establishes the values; second run (and any future run on
	// any machine) must match them bit for bit.
	for _, tc := range cases {
		a, err := RunTrial(tc.cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunTrial(tc.cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s: trial not reproducible: %+v vs %+v", tc.name, a, b)
		}
	}
	// Pinned values (recorded from the current implementation).
	got, err := RunTrial(cases[0].cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxLoad < 3 || got.MaxLoad > 12 {
		t.Fatalf("nearest golden max load %d drifted outside historical band [3,12]", got.MaxLoad)
	}
	if got.MeanCost < 0.3 || got.MeanCost > 5 {
		t.Fatalf("nearest golden cost %.3f drifted outside historical band", got.MeanCost)
	}
}

// TestGoldenTrialsPinned pins exact trial outputs captured from the
// pre-compiled-world implementation (PR 1 state). The compiled-world
// refactor must reproduce them bit for bit: these constants were recorded
// BEFORE the World/Placer/offset-table rewrite and assert that the rewrite
// is a pure performance change on the paper's default paths.
func TestGoldenTrialsPinned(t *testing.T) {
	type pin struct {
		name      string
		cfg       Config
		trial     uint64
		maxLoad   int
		meanCost  float64
		escalated int
		uncached  int
	}
	pins := []pin{
		{name: "nearest/seed42", trial: 0,
			cfg:     Config{Side: 15, K: 50, M: 2, Seed: 42, Strategy: StrategySpec{Kind: Nearest}},
			maxLoad: 6, meanCost: 3.2622222222222224, escalated: 0, uncached: 0},
		{name: "two-choices-r5/seed42", trial: 0,
			cfg:     Config{Side: 15, K: 50, M: 2, Seed: 42, Strategy: StrategySpec{Kind: TwoChoices, Radius: 5}},
			maxLoad: 6, meanCost: 4.164444444444444, escalated: 26, uncached: 0},
		{name: "two-choices-rinf-zipf/seed42", trial: 0,
			cfg: Config{Side: 15, K: 50, M: 2, Seed: 42,
				Popularity: PopSpec{Kind: PopZipf, Gamma: 1.0},
				Strategy:   StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded}},
			maxLoad: 4, meanCost: 7.635555555555555, escalated: 0, uncached: 0},
	}
	for _, p := range pins {
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatal(err)
		}
		if got.MaxLoad != p.maxLoad || got.MeanCost != p.meanCost ||
			got.Escalated != p.escalated || got.Uncached != p.uncached {
			t.Errorf("%s: got %+v, want L=%d C=%v esc=%d unc=%d",
				p.name, got, p.maxLoad, p.meanCost, p.escalated, p.uncached)
		}
	}
}

// TestWorldMatchesRunTrial is the cross-implementation determinism check:
// for every strategy × miss-policy × topology combination (plus the
// without-replacement candidate-sampling variant), a compiled World —
// whether driven through a reused Runner, a fresh Runner per trial, or the
// pooled World.RunTrial convenience — must reproduce the public RunTrial
// results bit for bit. Scratch reuse across trials must never leak state.
func TestWorldMatchesRunTrial(t *testing.T) {
	kinds := []StrategyKind{Nearest, TwoChoices, OneChoiceRandom, Oracle}
	policies := []MissPolicy{MissResample, MissEscalate, MissOrigin}
	topos := []grid.Topology{grid.Torus, grid.Bounded}
	const trials = 3
	for _, kind := range kinds {
		for _, mp := range policies {
			for _, topo := range topos {
				for _, wr := range []bool{false, true} {
					cfg := Config{
						Side: 12, K: 150, M: 2, Seed: 99, Topology: topo, MissPolicy: mp,
						Strategy: StrategySpec{Kind: kind, Radius: 3, WithoutReplacement: wr},
					}
					name := kind.String() + "/" + mp.String() + "/" + topo.String()
					w, err := Compile(cfg)
					if err != nil {
						t.Fatal(err)
					}
					reused := w.NewRunner()
					for trial := uint64(0); trial < trials; trial++ {
						want, err := RunTrial(cfg, trial)
						if err != nil {
							t.Fatal(err)
						}
						if got := reused.RunTrial(trial); got != want {
							t.Fatalf("%s t=%d: reused runner %+v != RunTrial %+v", name, trial, got, want)
						}
						if got := w.NewRunner().RunTrial(trial); got != want {
							t.Fatalf("%s t=%d: fresh runner %+v != RunTrial %+v", name, trial, got, want)
						}
						if got := w.RunTrial(trial); got != want {
							t.Fatalf("%s t=%d: pooled World.RunTrial %+v != RunTrial %+v", name, trial, got, want)
						}
					}
				}
			}
		}
	}
}

// TestWorldMatchesRunTrialLinks covers the link-collection path, which
// carries extra per-trial state (the LinkLoads accumulator) that Runners
// reuse and must fully reset.
func TestWorldMatchesRunTrialLinks(t *testing.T) {
	cfg := Config{Side: 10, K: 40, M: 2, Seed: 5, CollectLinks: true,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 4}}
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.NewRunner()
	for trial := uint64(0); trial < 4; trial++ {
		want, err := RunTrial(cfg, trial)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.RunTrial(trial); got != want {
			t.Fatalf("t=%d: %+v != %+v", trial, got, want)
		}
		if want.MaxLinkLoad == 0 {
			t.Fatalf("t=%d: link metrics not collected", trial)
		}
	}
}
