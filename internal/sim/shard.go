package sim

import (
	"math/rand/v2"

	"repro/internal/ballsbins"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/routing"
	"repro/internal/stats"
)

// This file is the intra-trial sharded engine (Config.Workers > 0): the
// request pipeline of one trial runs on P workers instead of one, while
// everything order-sensitive — load application, accounting, churn —
// stays with the coordinator at the chunk barrier.
//
// Execution model. Each pipeline chunk is cut into fixed 64-request
// granules (shardGranule); shard s owns the contiguous granule range
// [G·s/P, G·(s+1)/P). A granule is the unit of RNG determinism: its
// origin, file and assignment streams are derived from the granule's
// global first-request index (xrand Split by label, then the trial
// stream), so the draws a request sees depend only on (cfg, trial,
// request index) — never on P or on scheduling. Workers generate and
// assign their granules concurrently, writing disjoint slices of the
// shared chunk record buffers; at the barrier the coordinator applies
// the recorded load deltas in request order (ShardDeterministic), folds
// the per-shard scalar accounts and per-granule hop accumulators (in
// shard and granule order respectively), routes link metrics, and runs
// the churn phase — then releases the workers into the next chunk.
//
// Barrier protocol. The coordinator runs shard 0 itself and parks the
// P−1 worker goroutines on per-worker start channels between chunks.
// Publishing the chunk descriptor before the start signal and collecting
// workers through a WaitGroup before merging gives the two
// happens-before edges that make the shared buffers race-free: workers
// never read a descriptor before it is written, and the coordinator
// never reads records before their writers are done. Workers are
// spawned per trial (they exit after the last chunk), which keeps the
// steady-state allocation bill at the O(P) goroutine spawns — the chunk
// loop itself allocates nothing.
//
// Determinism. ShardDeterministic strategies read the frozen base load
// vector, which no one writes during a chunk, so assignments within a
// chunk are a pure function of the granule streams: results are
// bit-identical for every P ≥ 1 (pinned by TestGoldenMatrixParallel and
// the P-sweep property tests). This batched-visibility process is
// deliberately a *distinct seeded process* from the sequential engine —
// the same convention as StreamsSplit and IndexTiles, each frozen by
// its own golden matrix, with Workers = 0 keeping the sequential
// goldens bit-identical. ShardRacy swaps the frozen snapshot for one
// shared ballsbins.AtomicLoads: reads are live but unsynchronized with
// other workers' in-flight adds (balls into bins with outdated
// information), so assignment outcomes are scheduling-dependent while
// generation stays on the deterministic granule streams.

// shardGranule is the fixed request-count unit of shard ownership and
// RNG stream derivation: small enough to balance shards within a
// 1024-request chunk at P = 8, large enough that per-granule reseeding
// (three PCG seeds per granule) is noise. Part of the seeded process
// frozen by the parallel golden matrix.
const shardGranule = 64

// shardAcct is one shard's order-insensitive chunk account. Hop counts
// sum in int64, so folding shards in any grouping is exact — float
// summation here would make MeanCost depend on the shard partition and
// hence on P.
type shardAcct struct {
	hops      int64
	escalated int
	backhaul  int
	retried   int
}

// shardState is one worker's private scratch: its strategy instance
// (strategies carry per-instance buffers and are not concurrency-safe),
// its three granule-reseeded generators, its chunk account and, in racy
// mode, the running maximum over its atomic Add returns.
type shardState struct {
	strat                core.Strategy
	origin, file, assign reseedRand
	acct                 shardAcct
	maxSeen              int
}

// initShards lazily builds the per-shard scratch and barrier plumbing.
func (r *Runner) initShards() {
	w := r.w
	p := w.cfg.Workers
	if r.shards == nil {
		r.shards = make([]shardState, p)
		r.startCh = make([]chan struct{}, p)
		for s := 1; s < p; s++ {
			r.startCh[s] = make(chan struct{}, 1)
		}
	}
	if w.cfg.Shard == ShardRacy && r.atomicLoads == nil {
		r.atomicLoads = ballsbins.NewAtomicLoads(w.g.N())
	}
	if w.metrics == MetricsStreaming && r.granAccs == nil {
		g := (min(w.chunk, w.nReq) + shardGranule - 1) / shardGranule
		r.granAccs = make([]*stats.Accumulator, g)
		for i := range r.granAccs {
			r.granAccs[i] = stats.NewAccumulator(w.g.Diameter())
		}
	}
}

// runTrialSharded executes one trial through the sharded engine. The
// trial-invariant setup (placement, conditioning, metric arenas, churn
// stream) matches the sequential engine exactly; only the request
// pipeline changes discipline.
func (r *Runner) runTrialSharded(t uint64) Result {
	w := r.w
	r.initShards()
	arrivalRNG := r.armHetero(t)
	placement := r.placer.Place(w.placeProfile, w.cfg.PlacementMode, r.place.stream(w.placeSrc, t))
	for s := range r.shards {
		st := &r.shards[s]
		if st.strat == nil {
			st.strat = buildStrategy(w.cfg, w.g, placement)
		} else if rb, ok := st.strat.(core.Rebindable); ok {
			rb.Rebind(placement)
		} else {
			st.strat = buildStrategy(w.cfg, w.g, placement)
		}
		st.acct = shardAcct{}
		st.maxSeen = 0
	}

	n := w.g.N()
	r.loads.Reset()
	r.shardRacy = w.cfg.Shard == ShardRacy
	if r.shardRacy {
		r.atomicLoads.Reset()
		r.shardLoads = r.atomicLoads
	} else {
		r.shardLoads = r.loads
	}
	// Under capacity skew the strategies compare through the weighted
	// view; writes, MaxLoad and the load summary stay on the raw vector.
	r.shardView = r.wrapView(r.shardLoads)
	r.shardT = t
	r.shardSampler = r.fileSampler(placement)

	res := Result{Requests: w.nReq, Uncached: placement.UncachedCount()}
	var links *routing.LinkLoads
	var hopAcc *stats.Accumulator
	switch w.metrics {
	case MetricsLinks:
		if r.links == nil {
			r.links = routing.NewLinkLoads(w.g)
		} else {
			r.links.Reset()
		}
		links = r.links
	case MetricsStreaming:
		if r.hopAcc == nil {
			r.hopAcc = stats.NewAccumulator(w.g.Diameter())
			r.loadAcc = stats.NewAccumulator(w.loadBound)
			if n <= LinkSketchMaxN {
				r.links64 = stats.NewSpaceSaving(LinkSketchCap)
				r.linkBuf = make([]uint64, 0, w.g.Diameter()+1)
			}
		}
		r.hopAcc.Reset()
		r.loadAcc.Reset()
		if r.links64 != nil {
			r.links64.Reset()
		}
		for _, acc := range r.granAccs {
			acc.Reset()
		}
		hopAcc = r.hopAcc
	}

	var churnRNG *rand.Rand
	if w.cfg.Churn != ChurnNone {
		churnRNG = r.churn.stream(w.churnSrc, t)
		r.churnSt.reset()
	}
	// Faults compose with sharding: one shared mask, bound into every
	// shard's strategy, mutated only by the coordinator at the chunk
	// barrier (workers read it concurrently but never during a mutation —
	// the same happens-before edges that protect the chunk buffers).
	var faultRNG *rand.Rand
	if r.live != nil {
		r.live.Reset()
		r.faultSt.reset()
		for s := range r.shards {
			r.shards[s].strat.(core.LivenessAware).SetLiveness(r.live)
		}
		faultRNG = r.fault.stream(w.faultSrc, t)
	}

	chunk := len(r.origins)
	nChunks := (w.nReq + chunk - 1) / chunk
	p := len(r.shards)
	for s := 1; s < p; s++ {
		go r.shardWorker(s, nChunks)
	}

	var a shardAcct
	for base := 0; base < w.nReq; base += chunk {
		c := min(chunk, w.nReq-base)
		r.shardBase, r.shardC = base, c
		r.doneWG.Add(p - 1)
		for s := 1; s < p; s++ {
			r.startCh[s] <- struct{}{}
		}
		r.runShard(0)
		r.doneWG.Wait()
		// Barrier: the workers are parked; the coordinator owns every
		// shared structure until the next start signal.
		if !r.shardRacy {
			// Apply the chunk's load deltas in request order; the base
			// vector's running max tracks exactly as in the sequential
			// engine.
			for i := 0; i < c; i++ {
				r.loads.Add(int(r.servers[i]))
			}
		}
		for s := range r.shards {
			st := &r.shards[s]
			a.hops += st.acct.hops
			a.escalated += st.acct.escalated
			a.backhaul += st.acct.backhaul
			a.retried += st.acct.retried
			st.acct = shardAcct{}
		}
		if links != nil {
			for i := 0; i < c; i++ {
				links.Route(int(r.origins[i]), int(r.servers[i]))
			}
		}
		if hopAcc != nil {
			g := (c + shardGranule - 1) / shardGranule
			for i := 0; i < g; i++ {
				hopAcc.Merge(r.granAccs[i])
				r.granAccs[i].Reset()
			}
			if r.links64 != nil {
				gr := w.g
				for i := 0; i < c; i++ {
					if r.hops[i] == 0 {
						continue
					}
					r.linkBuf = routing.AppendLinks(gr, int(r.origins[i]), int(r.servers[i]), r.linkBuf[:0])
					for _, id := range r.linkBuf {
						r.links64.Observe(id)
					}
				}
			}
		}
		if base+c < w.nReq {
			if arrivalRNG != nil {
				r.arrivalChunk(arrivalRNG, c, &res)
			}
			if faultRNG != nil {
				r.faultChunk(faultRNG, c, &res)
			}
			if churnRNG != nil {
				r.churnChunk(placement, churnRNG, c, &res)
			}
		}
	}

	res.Escalated, res.Backhaul, res.Retried = a.escalated, a.backhaul, a.retried
	r.finishHetero(&res)
	if links != nil {
		res.MaxLinkLoad = links.Max()
		res.LinkCongestion = links.CongestionFactor()
	}
	if r.shardRacy {
		for s := range r.shards {
			if r.shards[s].maxSeen > res.MaxLoad {
				res.MaxLoad = r.shards[s].maxSeen
			}
		}
	} else {
		res.MaxLoad = r.loads.Max()
	}
	if w.nReq > 0 {
		res.MeanCost = float64(a.hops) / float64(w.nReq)
	}
	if hopAcc != nil {
		for u := 0; u < n; u++ {
			r.loadAcc.Observe(r.shardLoads.Load(u))
		}
		res.Streamed = true
		res.HopMax = hopAcc.Max()
		res.HopStd = hopAcc.Std()
		res.LoadP99 = r.loadAcc.Quantile(0.99)
		if r.links64 != nil {
			res.LinkMaxApprox = r.links64.MaxCount()
		}
	}
	r.finishFaults(&res)
	return res
}

// shardWorker is the goroutine body of shard s: one barrier round per
// chunk, exiting after the trial's last chunk.
func (r *Runner) shardWorker(s, nChunks int) {
	for i := 0; i < nChunks; i++ {
		<-r.startCh[s]
		r.runShard(s)
		r.doneWG.Done()
	}
}

// runShard processes shard s's granules of the current chunk: per
// granule, reseed the three streams from the granule label (its global
// first-request index), batch-generate the ids, then assign each
// request against the shard's load view, recording results into the
// shard's disjoint slice of the chunk buffers.
func (r *Runner) runShard(s int) {
	w := r.w
	st := &r.shards[s]
	t, base, c := r.shardT, r.shardBase, r.shardC
	p := len(r.shards)
	g := (c + shardGranule - 1) / shardGranule
	n := w.g.N()
	racy := r.shardRacy
	for gi := g * s / p; gi < g*(s+1)/p; gi++ {
		lo := gi * shardGranule
		hi := min(lo+shardGranule, c)
		label := uint64(base + lo)
		originRNG := st.origin.stream(w.originSrc.Split(label), t)
		fileRNG := st.file.stream(w.fileSrc.Split(label), t)
		assignRNG := st.assign.stream(w.assignSrc.Split(label), t)
		dist.RequestBatch(originRNG, fileRNG, n, r.shardSampler, r.origins[lo:hi], r.files[lo:hi])
		var acc *stats.Accumulator
		if r.granAccs != nil {
			acc = r.granAccs[gi]
		}
		for i := lo; i < hi; i++ {
			req := core.Request{Origin: r.origins[i], File: r.files[i]}
			a := st.strat.Assign(req, r.shardView, assignRNG)
			if racy {
				if v := r.atomicLoads.Add(int(a.Server)); v > st.maxSeen {
					st.maxSeen = v
				}
			}
			r.servers[i] = a.Server
			r.hops[i] = a.Hops
			var f uint8
			if a.Escalated {
				f |= flagEscalated
				st.acct.escalated++
			}
			if a.Backhaul {
				f |= flagBackhaul
				st.acct.backhaul++
			}
			if a.Retried {
				f |= flagRetried
				st.acct.retried++
			}
			r.flags[i] = f
			st.acct.hops += int64(a.Hops)
			if acc != nil {
				acc.Observe(int(a.Hops))
			}
		}
	}
}
