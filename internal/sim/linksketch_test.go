package sim

import "testing"

// TestLinkMaxApproxBracketsExact verifies the streaming link sketch
// against the exact MetricsLinks maximum on quick-preset-sized worlds.
// The metrics mode never touches the RNG streams, so the same (cfg,
// trial) pair replays the identical request trajectory under both modes
// and the space-saving guarantees must hold exactly:
//
//	exact ≤ approx ≤ exact + totalHops/sketchCapacity
//
// On worlds whose 4n directed links fit the sketch, approx == exact.
func TestLinkMaxApproxBracketsExact(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cfg   Config
		exact bool // 4n ≤ sketch capacity: counts must match exactly
	}{
		{"small-exact", Config{Side: 12, K: 150, M: 2, Seed: 0x63,
			Strategy: StrategySpec{Kind: TwoChoices, Radius: 3}}, true},
		{"small-nearest", Config{Side: 14, K: 200, M: 2, Seed: 5,
			Strategy: StrategySpec{Kind: Nearest}}, true},
		{"quick-preset", Config{Side: 40, K: 2000, M: 4, Seed: 7,
			Strategy: StrategySpec{Kind: TwoChoices, Radius: 8}, Streams: StreamsSplit}, false},
		{"quick-indexed", Config{Side: 40, K: 2000, M: 4, Seed: 7,
			Strategy: StrategySpec{Kind: TwoChoices, Radius: 8}, Streams: StreamsSplit, Index: IndexTiles}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.exact && 4*tc.cfg.N() > LinkSketchCap {
				t.Fatalf("fixture bug: %d links exceed sketch capacity %d", 4*tc.cfg.N(), LinkSketchCap)
			}
			for trial := uint64(0); trial < 3; trial++ {
				ecfg := tc.cfg
				ecfg.Metrics = MetricsLinks
				exact, err := RunTrial(ecfg, trial)
				if err != nil {
					t.Fatal(err)
				}
				scfg := tc.cfg
				scfg.Metrics = MetricsStreaming
				got, err := RunTrial(scfg, trial)
				if err != nil {
					t.Fatal(err)
				}
				totalHops := int64(got.MeanCost*float64(got.Requests) + 0.5)
				bound := totalHops / LinkSketchCap
				if got.LinkMaxApprox < exact.MaxLinkLoad {
					t.Errorf("t=%d: LinkMaxApprox %d below exact max %d", trial, got.LinkMaxApprox, exact.MaxLinkLoad)
				}
				if got.LinkMaxApprox > exact.MaxLinkLoad+bound {
					t.Errorf("t=%d: LinkMaxApprox %d exceeds exact %d + bound %d", trial, got.LinkMaxApprox, exact.MaxLinkLoad, bound)
				}
				if tc.exact && got.LinkMaxApprox != exact.MaxLinkLoad {
					t.Errorf("t=%d: links fit the sketch but approx %d != exact %d", trial, got.LinkMaxApprox, exact.MaxLinkLoad)
				}
				if exact.MaxLinkLoad == 0 {
					t.Fatalf("t=%d: degenerate trial with no link traffic", trial)
				}
			}
		})
	}
}

// TestLinkMaxApproxInAggregate: the new field flows into aggregates.
func TestLinkMaxApproxInAggregate(t *testing.T) {
	cfg := Config{Side: 12, K: 150, M: 2, Seed: 1, Metrics: MetricsStreaming,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 3}}
	agg, err := Run(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.LinkMaxApprox.N() != 4 || agg.LinkMaxApprox.Mean() <= 0 {
		t.Fatalf("LinkMaxApprox missing from aggregate: %+v", agg.LinkMaxApprox)
	}
}
