package sim

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestBlockRange pins the partition formula: blocks tile [0, trials)
// exactly, in order, with no gaps or overlaps, and match the historical
// trials*b/blocks arithmetic that Run and RunSeries always used.
func TestBlockRange(t *testing.T) {
	for _, tc := range []struct{ trials, blocks int }{
		{10, 1}, {10, 3}, {10, 10}, {7, 4}, {1, 1}, {1024, 7},
	} {
		prev := 0
		for b := 0; b < tc.blocks; b++ {
			lo, hi := BlockRange(tc.trials, tc.blocks, b)
			if lo != prev {
				t.Fatalf("BlockRange(%d,%d,%d) lo=%d, want %d (gap or overlap)", tc.trials, tc.blocks, b, lo, prev)
			}
			if hi < lo {
				t.Fatalf("BlockRange(%d,%d,%d) hi=%d < lo=%d", tc.trials, tc.blocks, b, hi, lo)
			}
			if want := tc.trials * b / tc.blocks; lo != want {
				t.Fatalf("BlockRange(%d,%d,%d) lo=%d, want %d", tc.trials, tc.blocks, b, lo, want)
			}
			prev = hi
		}
		if prev != tc.trials {
			t.Fatalf("BlockRange(%d,%d,·) covers [0,%d), want [0,%d)", tc.trials, tc.blocks, prev, tc.trials)
		}
	}
}

// TestRunBlockMatchesRun pins the core distribution invariant: folding
// RunBlock partials in ascending block order reproduces Run's aggregate
// bit-for-bit, because both sides use the same partition, the same
// per-trial seeds, and the same ascending Add/Merge order.
func TestRunBlockMatchesRun(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: 3}
	const trials, blocks = 10, 4

	want, err := Run(cfg, trials, blocks)
	if err != nil {
		t.Fatal(err)
	}

	world, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got Aggregate
	for b := 0; b < blocks; b++ {
		lo, hi := BlockRange(trials, blocks, b)
		got.Merge(world.RunBlock(uint64(lo), uint64(hi)))
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunBlock fold diverges from Run:\n got %+v\nwant %+v", got, want)
	}
}

// TestAggregateJSONRoundTrip pins the wire property the sweep layer
// depends on: an Aggregate survives JSON encode/decode bit-exactly,
// because stats.Summary marshals its raw moments and Go's float64 JSON
// round-trip is exact.
func TestAggregateJSONRoundTrip(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: 2}
	cfg.Churn = ChurnReplicas
	cfg.ChurnRate = 0.01
	want, err := Run(cfg, 6, 2)
	if err != nil {
		t.Fatal(err)
	}

	b, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Aggregate
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("aggregate mutated in JSON transit:\n got %+v\nwant %+v", got, want)
	}

	// Round-tripping again must produce identical bytes — the property
	// content hashes and byte-identical artifacts rest on.
	b2, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("marshal not stable:\n %s\n %s", b, b2)
	}
}

// TestValidateExported checks the exported validator agrees with Run's
// gate on a bad config.
func TestValidateExported(t *testing.T) {
	if err := Validate(baseConfig()); err != nil {
		t.Fatalf("Validate(baseConfig()) = %v", err)
	}
	bad := baseConfig()
	bad.Side = 0
	if err := Validate(bad); err == nil {
		t.Fatal("Validate accepted Side=0")
	}
}
