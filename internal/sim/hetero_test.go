package sim

import (
	"math/rand/v2"
	"testing"

	"repro/internal/ballsbins"
	"repro/internal/core"
)

// heteroArrivalBase is the arrival-regime reference configuration of the
// invariance tests: power-law capacities, ~25% vacant start, 30 joins
// over the trial at the default chunk cadence.
func heteroArrivalBase() Config {
	return Config{
		Side: 12, K: 150, M: 2,
		Strategy:    StrategySpec{Kind: TwoChoices, Radius: 3},
		Requests:    4096,
		MissPolicy:  MissEscalate,
		Hetero:      HeteroArrival,
		Profile:     ProfilePowerLaw,
		ArrivalRate: 0.01,
		Seed:        0x63,
	}
}

// TestHeteroArrivalScheduleInvariance: the arrival schedule lives on the
// dedicated namespace-8 stream, so which nodes start vacant, how many
// join, and how many remain at trial end must be identical whichever
// candidate index, request discipline or worker count the trial runs
// under — those knobs perturb assignment, never the hetero stream.
func TestHeteroArrivalScheduleInvariance(t *testing.T) {
	base := heteroArrivalBase()
	type sched struct{ events, skipped, vacant int }
	want := map[uint64]sched{}
	for trial := uint64(0); trial < 2; trial++ {
		res, err := RunTrial(base, trial)
		if err != nil {
			t.Fatal(err)
		}
		if res.ArrivalEvents == 0 {
			t.Fatalf("t=%d: base config admits no arrivals; invariance test is vacuous", trial)
		}
		want[trial] = sched{res.ArrivalEvents, res.ArrivalSkipped, res.Vacant}
	}
	for _, v := range []struct {
		name string
		mut  func(*Config)
	}{
		{"tiles", func(c *Config) { c.Index = IndexTiles }},
		{"split", func(c *Config) { c.Streams = StreamsSplit }},
		{"split/p2", func(c *Config) { c.Streams = StreamsSplit; c.Workers = 2 }},
		{"split/p4", func(c *Config) { c.Streams = StreamsSplit; c.Workers = 4 }},
		{"churn-composed", func(c *Config) { c.Churn = ChurnReplicas; c.ChurnRate = 0.5 }},
		{"faults-composed", func(c *Config) { c.Faults = FaultsCrash; c.FaultRate = 0.02; c.RecoverRate = 0.01 }},
		{"two-tier", func(c *Config) { c.Profile = ProfileTwoTier }},
	} {
		cfg := base
		v.mut(&cfg)
		for trial := uint64(0); trial < 2; trial++ {
			res, err := RunTrial(cfg, trial)
			if err != nil {
				t.Fatalf("%s t=%d: %v", v.name, trial, err)
			}
			got := sched{res.ArrivalEvents, res.ArrivalSkipped, res.Vacant}
			w := want[trial]
			// The profile draw precedes the vacancy coins on one stream, so
			// a different profile may legitimately shift which nodes are
			// vacant — but never the event count, which is pure credit
			// arithmetic.
			if v.name == "two-tier" {
				if got.events+got.skipped != w.events+w.skipped {
					t.Errorf("%s t=%d: scheduled arrivals %d, want %d",
						v.name, trial, got.events+got.skipped, w.events+w.skipped)
				}
				continue
			}
			if got != w {
				t.Errorf("%s t=%d: arrival schedule (events=%d skipped=%d vacant=%d), want (%d %d %d)",
					v.name, trial, got.events, got.skipped, got.vacant, w.events, w.skipped, w.vacant)
			}
		}
	}
}

// TestHeteroShardedWorkerInvariance extends the parallel-equivalence
// property to the heterogeneity regimes: under ShardDeterministic a
// hetero trial's Result — including the arrival counters and the
// capacity-weighted assignment trajectory — is bit-identical across
// every worker count.
func TestHeteroShardedWorkerInvariance(t *testing.T) {
	capacity := Config{
		Side: 12, K: 150, M: 2,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 3},
		Requests: 4096,
		Streams:  StreamsSplit,
		Hetero:   HeteroCapacity,
		Profile:  ProfileTwoTier,
		Seed:     0x63,
	}
	arrival := heteroArrivalBase()
	arrival.Streams = StreamsSplit
	churned := arrival
	churned.Index = IndexTiles
	churned.Churn = ChurnReplicas
	churned.ChurnRate = 0.5
	for _, cfg := range []Config{capacity, arrival, churned} {
		for _, chunk := range []int{64, 0} {
			ref := cfg
			ref.Workers, ref.Chunk = 1, chunk
			wRef, err := Compile(ref)
			if err != nil {
				t.Fatal(err)
			}
			var want [2]Result
			for trial := range want {
				want[trial] = wRef.RunTrial(uint64(trial))
			}
			for _, p := range []int{2, 3, 8} {
				c := cfg
				c.Workers, c.Chunk = p, chunk
				w, err := Compile(c)
				if err != nil {
					t.Fatal(err)
				}
				for trial := range want {
					got := w.RunTrial(uint64(trial))
					if got != want[trial] {
						t.Errorf("%v/%v chunk=%d t=%d: P=%d diverged from P=1\n got %+v\nwant %+v",
							cfg.Hetero, cfg.Profile, chunk, trial, p, got, want[trial])
					}
				}
			}
		}
	}
}

// TestHeteroShardedRacyStress hammers the racy shared-load mode while
// arrivals rebuild the placement and tile index and churn splices it at
// every barrier — the worst-case interleaving surface for the race
// detector tier (the weighted view binds before workers spawn and the
// multiplier vector is read-only during a chunk; anything else would be
// flagged here).
func TestHeteroShardedRacyStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := Config{
		Side: 16, K: 400, M: 2,
		Popularity:  PopSpec{Kind: PopZipf, Gamma: 1.1},
		Strategy:    StrategySpec{Kind: TwoChoices, Radius: 3},
		Requests:    8192,
		MissPolicy:  MissEscalate,
		Streams:     StreamsSplit,
		Index:       IndexTiles,
		Churn:       ChurnReplicas,
		ChurnRate:   0.5,
		Hetero:      HeteroArrival,
		Profile:     ProfilePowerLaw,
		ArrivalRate: 0.02,
		Workers:     8,
		Shard:       ShardRacy,
		Seed:        0x5eed,
	}
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := uint64(0); trial < 3; trial++ {
		res := w.RunTrial(trial)
		if res.Requests != cfg.Requests {
			t.Fatalf("t=%d: Requests = %d, want %d", trial, res.Requests, cfg.Requests)
		}
		if res.ArrivalEvents == 0 {
			t.Fatalf("t=%d: no arrivals under the racy stress; rebuild path not exercised", trial)
		}
	}
}

// TestHeteroWeightedTwoChoicesUniformity: with every raw load zero the
// weighted view ties all candidates regardless of their C_u, and the
// two-choices draw over S_j ∩ B_r(u) must remain uniform — capacity
// weighting biases the comparison, never the sampling. A chi-squared
// statistic over the serving-node histogram of repeated identical
// requests (loads never accumulated) checks the seeded draw against the
// uniform law.
func TestHeteroWeightedTwoChoicesUniformity(t *testing.T) {
	cfg := Config{
		Side: 12, K: 150, M: 2,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 3},
		Requests: 144,
		Hetero:   HeteroCapacity,
		Profile:  ProfileTwoTier,
		Seed:     0x63,
	}
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot(0)
	if snap.heteroSt.mults == nil {
		t.Fatal("two-tier profile installed no weighted view")
	}
	g := w.Grid()

	// Find a (origin, file) pair whose in-radius replica set is non-trivial
	// and capacity-mixed: uniformity must hold across distinct C_u.
	origin, file := -1, -1
	var support []int32
	for u := 0; u < g.N() && file < 0; u++ {
		for j := 0; j < cfg.K; j++ {
			var cand []int32
			for _, v := range snap.p.Replicas(j) {
				if g.Dist(u, int(v)) <= cfg.Strategy.Radius {
					cand = append(cand, v)
				}
			}
			if len(cand) < 4 || len(cand) > 12 {
				continue
			}
			mixed := false
			for _, v := range cand[1:] {
				if snap.heteroSt.mults[v] != snap.heteroSt.mults[cand[0]] {
					mixed = true
					break
				}
			}
			if mixed {
				origin, file, support = u, j, cand
				break
			}
		}
	}
	if file < 0 {
		t.Fatal("no capacity-mixed support set found; placement shape too degenerate")
	}

	strat := snap.NewStrategy()
	loads := ballsbins.NewLoads(g.N())
	view := snap.WrapLoads(loads)
	rng := rand.New(rand.NewPCG(0xD1CE, 7))
	inSupport := make(map[int32]int, len(support))
	for _, v := range support {
		inSupport[v] = 0
	}
	const draws = 20000
	req := core.Request{Origin: int32(origin), File: int32(file)}
	for i := 0; i < draws; i++ {
		a := strat.Assign(req, view, rng)
		if _, ok := inSupport[a.Server]; !ok {
			t.Fatalf("draw %d served by node %d outside S_j ∩ B_r (support %v)", i, a.Server, support)
		}
		inSupport[a.Server]++
	}
	exp := float64(draws) / float64(len(support))
	chi2 := 0.0
	for _, obs := range inSupport {
		d := float64(obs) - exp
		chi2 += d * d / exp
	}
	// df = |support|-1 ≤ 11; the 99.9th percentile of chi²(11) is 31.3 —
	// a seeded draw landing above that means the sampling is biased, not
	// that the test is unlucky.
	if chi2 > 31.3 {
		t.Errorf("chi² = %.2f over %d support nodes (df=%d); weighted two-choices sampling is not uniform: %v",
			chi2, len(support), len(support)-1, inSupport)
	}
}

// TestHeteroSteadyStateAllocs holds the heterogeneity regimes to the
// engine's allocation-free bar: profile draws, weighted-view rebinds and
// in-place arrival rebuilds must all run out of the arenas sized at
// compile time.
func TestHeteroSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and disables pool caching")
	}
	for _, variant := range []struct {
		name string
		mut  func(*Config)
	}{
		{"capacity-two-tier", func(c *Config) {
			c.Hetero, c.Profile = HeteroCapacity, ProfileTwoTier
		}},
		{"capacity-power-law-tiles", func(c *Config) {
			c.Hetero, c.Profile = HeteroCapacity, ProfilePowerLaw
			c.Index = IndexTiles
		}},
		{"arrival-power-law-tiles-split", func(c *Config) {
			c.Hetero, c.Profile, c.ArrivalRate = HeteroArrival, ProfilePowerLaw, 0.01
			c.MissPolicy = MissEscalate
			c.Index = IndexTiles
			c.Streams = StreamsSplit
		}},
	} {
		cfg := Config{
			Side: 12, K: 150, M: 2,
			Strategy: StrategySpec{Kind: TwoChoices, Radius: 3},
			Requests: 4096,
			Seed:     0x63,
		}
		variant.mut(&cfg)
		w, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := w.NewRunner()
		if res := r.RunTrial(0); cfg.Hetero == HeteroArrival && res.ArrivalEvents == 0 {
			t.Fatalf("%s: no arrivals; the rebuild path is not exercised", variant.name)
		}
		r.RunTrial(1) // second warm-up: buffers at steady-state size
		trial := uint64(2)
		if n := testing.AllocsPerRun(3, func() {
			r.RunTrial(trial)
			trial++
		}); n != 0 {
			t.Errorf("%s: steady-state Runner.RunTrial allocates %.1f/op, want 0", variant.name, n)
		}
	}
}
