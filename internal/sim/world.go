package sim

import (
	"math/rand/v2"
	"sync"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/replication"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// defaultChunk is the request-pipeline block size: the number of requests
// that flow through one generate → assign → account pass. Sized so the
// per-runner chunk buffers (5 × 4 B × chunk) stay far inside L2 while the
// per-chunk loop overhead vanishes.
const defaultChunk = 1024

// LinkSketchCap is the capacity of the streaming mode's space-saving
// link sketch (stats.SpaceSaving): the number of directed-link counters
// Result.LinkMaxApprox is summarized through. Worlds whose active link
// count fits the sketch get exact maxima; wider worlds an upper bound
// within totalHops/LinkSketchCap.
const LinkSketchCap = 1 << 10

// LinkSketchMaxN gates Result.LinkMaxApprox: the sketch runs only on
// worlds with n ≤ LinkSketchMaxN nodes, i.e. while the directed-link
// count 4n stays within 64× the sketch capacity. Beyond that a k-counter
// heavy-hitter summary is pure churn — its guarantee degrades to
// "within totalHops/k", which on near-uniform torus link loads dwarfs
// any real maximum (meaningful wide-world link accounting needs Ω(n)
// counters, i.e. MetricsLinks) — and the O(totalHops) feed would
// dominate the trial. Out-of-range trials report LinkMaxApprox = 0.
const LinkSketchMaxN = 16 * LinkSketchCap

// loadHistBound is the baseline resolution of the streaming load
// histogram. The actual bound scales with the mean per-node load (see
// Compile), so heavy-load configs (Requests ≫ n) keep exact quantiles;
// observations beyond the bound clamp into the top bucket as a last
// resort, and the exact maximum is tracked separately and never clamps.
const loadHistBound = 1 << 10

// World is one compiled simulation configuration: everything that is
// invariant across trials — the lattice, the popularity profile and its
// alias table, the placement profile, the ball/ring offset templates and
// the derived RNG sources — built exactly once by Compile. A World is
// immutable and safe for concurrent use; per-trial mutable state lives in
// Runners.
//
// Compiling amortizes the expensive trial-invariant setup (the Zipf PMF
// alone is K pow() calls) across the hundreds-to-thousands of trials every
// experiment point runs, which is where the simulator spends its life.
type World struct {
	cfg          Config
	g            *grid.Grid
	pop          dist.Popularity
	placeProfile dist.Popularity
	condName     string       // name of the MissResample-conditioned stream
	placeSrc     xrand.Source // namespace 1: placement streams, one per trial
	reqSrc       xrand.Source // namespace 2: interleaved request streams
	originSrc    xrand.Source // namespace 3: split-discipline origin streams
	fileSrc      xrand.Source // namespace 4: split-discipline file streams
	assignSrc    xrand.Source // namespace 5: split-discipline assignment streams
	churnSrc     xrand.Source // namespace 6: churn event streams
	faultSrc     xrand.Source // namespace 7: fault event streams
	heteroSrc    xrand.Source // namespace 8: hetero profile + arrival streams
	nReq         int
	metrics      MetricsMode  // resolved (CollectLinks folded in)
	chunk        int          // request-pipeline block size (tests override)
	loadBound    int          // streaming load-histogram bound
	tiling       *grid.Tiling // spatial-index geometry (IndexTiles, bounded radius)
	regionTiling *grid.Tiling // FaultsRegional failure-domain geometry

	runners sync.Pool // *Runner recycling for the RunTrial convenience path
}

// Compile validates cfg and builds its trial-invariant state.
func Compile(cfg Config) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := xrand.NewSource(cfg.Seed)
	w := &World{
		cfg:       cfg,
		g:         grid.New(cfg.Side, cfg.Topology),
		placeSrc:  src.Split(1),
		reqSrc:    src.Split(2),
		originSrc: src.Split(3),
		fileSrc:   src.Split(4),
		assignSrc: src.Split(5),
		churnSrc:  src.Split(6),
		faultSrc:  src.Split(7),
		heteroSrc: src.Split(8),
		metrics:   cfg.Metrics,
		chunk:     defaultChunk,
	}
	if cfg.Chunk > 0 {
		w.chunk = cfg.Chunk
	}
	if w.metrics == MetricsScalar && cfg.CollectLinks {
		w.metrics = MetricsLinks
	}
	w.pop = cfg.Popularity.Build(cfg.K)
	w.condName = w.pop.Name() + "|cached"
	w.placeProfile = replication.PlacementProfile(w.pop, cfg.PlacementPolicy, cfg.CapFactor)
	w.nReq = cfg.Requests
	if w.nReq == 0 {
		w.nReq = w.g.N()
	}
	// The spatial replica index applies to bounded-radius choice
	// strategies; the tile side tracks the radius (t ∈ [r/3, r], see
	// tileSize) so a ball cover spans a handful of tiles whose footprint
	// scales with |B_r|.
	if cfg.Index == IndexTiles {
		if r, ok := indexedRadius(cfg, w.g); ok {
			w.tiling = w.g.NewTiling(tileSize(cfg.Side, r))
		}
	}
	// Regional faults kill whole tile-aligned failure domains. The region
	// side is independent of the index tiling (which tracks the search
	// radius): a fixed geometry of roughly 4×4 regions per lattice axis
	// keeps a single event correlated but survivable.
	if cfg.Faults == FaultsRegional {
		w.regionTiling = w.g.NewTiling(regionSize(cfg.Side))
	}
	// Size the streaming load histogram to the regime: 32× the mean
	// per-node load on top of the baseline keeps quantiles exact far past
	// any max-load concentration bound, while staying O(Requests/n) —
	// constant in n for the paper's one-request-per-server regime.
	w.loadBound = loadHistBound + 32*((w.nReq+w.g.N()-1)/w.g.N())
	return w, nil
}

// Config returns the configuration the world was compiled from.
func (w *World) Config() Config { return w.cfg }

// Grid returns the compiled lattice.
func (w *World) Grid() *grid.Grid { return w.g }

// N returns the number of servers.
func (w *World) N() int { return w.g.N() }

// RunTrial executes one independent trial (trial index t under cfg.Seed).
// Identical (cfg, t) pairs produce identical results regardless of whether
// they run through a fresh world, a reused Runner, or the package-level
// RunTrial. Safe for concurrent use; runners are pooled internally.
func (w *World) RunTrial(t uint64) Result {
	r, _ := w.runners.Get().(*Runner)
	if r == nil {
		r = w.NewRunner()
	}
	res := r.RunTrial(t)
	w.runners.Put(r)
	return res
}

// reseedRand is a reusable deterministic generator: one PCG wrapped by one
// *rand.Rand for the runner's lifetime, reseeded per trial through
// xrand.Source.StreamSeed. Reseeding in place yields sequences
// bit-identical to a freshly constructed xrand Stream while allocating
// nothing, which is what makes steady-state trials allocation-free.
type reseedRand struct {
	pcg rand.PCG
	r   *rand.Rand
}

// stream reseeds the generator to source s, stream t and returns it.
func (rr *reseedRand) stream(s xrand.Source, t uint64) *rand.Rand {
	if rr.r == nil {
		rr.r = rand.New(&rr.pcg)
	}
	rr.pcg.Seed(s.StreamSeed(t))
	return rr.r
}

// Request-record flags carried from the assign phase to the account phase.
const (
	flagEscalated = 1 << 0
	flagBackhaul  = 1 << 1
	flagRetried   = 1 << 2
)

// regionSize picks the FaultsRegional failure-domain side for a lattice
// of the given side: the largest divisor of side no larger than side/4,
// so one regional event takes out at most ~1/16 of the world. Degenerates
// to single-node regions on tiny or prime sides.
func regionSize(side int) int {
	bound := max(1, side/4)
	for t := bound; t >= 1; t-- {
		if side%t == 0 {
			return t
		}
	}
	return 1
}

// RegionNodes reports the node count of one FaultsRegional failure
// domain on an L×L lattice — the per-event blast radius. Exposed so
// experiments can scale FaultRate from a target failed fraction
// (events × RegionNodes ≈ nodes killed, ignoring region re-draws).
func RegionNodes(side int) int {
	t := regionSize(side)
	return t * t
}

// Runner executes trials of one World through reusable per-worker scratch:
// the placement builder, the load vector, the strategy instance with its
// candidate buffers, the miss-policy conditioning arenas, the per-trial
// generators and the request-pipeline chunk buffers. After the first trial
// a Runner's steady state allocates nothing. A Runner is NOT safe for
// concurrent use; create one per worker.
//
// A trial's request phase is a streaming pipeline over fixed-size chunks:
//
//	generate — draw (origin, file) ids into the chunk buffers;
//	assign   — run the strategy per request, updating the load vector and
//	           recording (server, hops, flags);
//	account  — fold the chunk's records into the trial accumulators
//	           (hop sum, miss counters, link loads or streaming moments);
//	churn    — under a non-none Config.Churn, mutate the placement (and
//	           tile index) in place through cache.ReplaceReplica before
//	           the next chunk is generated (see churn.go), so strategies
//	           never observe a half-spliced index.
//
// Under the default StreamsInterleaved discipline the generate and assign
// phases are fused into one pass: every strategy draws from the same
// per-trial stream as the id generation (candidate sampling, tie breaks),
// so separating them would reorder RNG consumption and break
// bit-compatibility with the pinned goldens. StreamsSplit gives each role
// its own stream, which is what lets generate run as one batched
// dist.RequestBatch call per chunk.
type Runner struct {
	w       *World
	placer  *cache.Placer
	loads   *ballsbins.Loads
	strat   core.Strategy
	links   *routing.LinkLoads
	weights []float64
	cond    *dist.CustomBuilder

	place, req, origin, file, assign, churn, fault, hetero reseedRand

	// Heterogeneity state (Config.Hetero != HeteroNone): the per-trial
	// capacity profile and vacancy scratch, the weighted load view bound
	// into the strategies' comparisons, and the reader the sequential
	// engine routes Assign through (the raw vector under HeteroNone or
	// ProfileUniform — see hetero.go).
	heteroSt heteroState
	weighted *ballsbins.WeightedLoads
	loadView core.LoadReader

	// Churn state (Config.Churn != ChurnNone): the event schedule and
	// drift machinery, shared with the served mode's snapshots (see
	// churn.go).
	churnSt churnState

	// Fault state (Config.Faults != FaultsNone): the node liveness mask
	// bound into the strategies, plus the crash/recover event schedule
	// shared with the served mode's snapshots (see faults.go).
	live    *cache.Liveness
	faultSt faultState

	// Chunk buffers of the request pipeline (len = min(chunk, requests)).
	origins []int32
	files   []int32
	servers []int32
	hops    []int32
	flags   []uint8

	// Streaming-metrics accumulators (MetricsStreaming only).
	hopAcc  *stats.Accumulator
	loadAcc *stats.Accumulator
	links64 *stats.SpaceSaving // link heavy hitters → Result.LinkMaxApprox
	linkBuf []uint64           // per-request link ids of the XY route

	// Sharded-engine state (Config.Workers > 0; see shard.go): per-shard
	// worker scratch, the racy mode's shared atomic load vector, the
	// per-granule hop accumulators merged at each barrier, the reusable
	// start-signal channels of the worker barrier protocol, and the
	// current chunk descriptor the coordinator publishes before each
	// start signal (the channel send/recv is the happens-before edge).
	shards       []shardState
	atomicLoads  *ballsbins.AtomicLoads
	granAccs     []*stats.Accumulator
	startCh      []chan struct{}
	doneWG       sync.WaitGroup
	shardT       uint64
	shardBase    int
	shardC       int
	shardSampler dist.Popularity
	shardLoads   core.LoadReader // raw per-chunk reader (frozen or atomic)
	shardView    core.LoadReader // what Assign compares through: shardLoads, weighted under capacity skew
	shardRacy    bool
}

// tileSize picks the index tile side for radius r: the largest divisor
// of the lattice side in [r/3, r], falling back to r/2 when none
// divides. Divisibility makes the precomputed cover template apply
// (uniform tiles, t | L); within the admissible band, larger tiles won
// the wide-world sweep — fewer cover rows to intersect against the
// per-file directories outweighs the extra rejection sampling on
// partial tiles (see docs/perf.md for the measured tradeoff).
func tileSize(side, r int) int {
	best := 0
	for t := max(1, r/3); t <= max(1, r); t++ {
		if side%t == 0 {
			best = t
		}
	}
	if best == 0 {
		return max(1, r/2)
	}
	return best
}

// indexedRadius reports the proximity radius the spatial index would
// serve, and whether the configured strategy has one (choice-based, with
// an effective bounded radius).
func indexedRadius(cfg Config, g *grid.Grid) (int, bool) {
	switch cfg.Strategy.Kind {
	case TwoChoices, OneChoiceRandom, Oracle:
		r := cfg.Strategy.Radius
		if r < 0 || r >= g.Diameter() {
			return 0, false // unbounded: the whole replica list is the pool
		}
		return r, true
	}
	return 0, false
}

// churnDrift* parameterize the ChurnDrift popularity drifter, in chunk
// ticks (the drifter steps once per pipeline chunk): roughly one file in
// a thousand surges per chunk, surges last 64 chunks on average and
// boost a file's migration weight 10×. The constants aim the drifter at
// visible catalog turnover within a 10⁵–10⁶ request trial; they are part
// of the seeded process frozen by the churn golden pins.
const (
	churnDriftBoost    = 10.0
	churnDriftBirth    = 1e-3
	churnDriftLifespan = 64.0
)

// NewRunner returns a fresh Runner over w.
func (w *World) NewRunner() *Runner {
	b := min(w.chunk, w.nReq)
	placer := cache.NewPlacer(w.g.N(), w.cfg.M, w.cfg.K)
	// Hetero layout first: EnableTiles and EnableChurn size their arenas
	// off the per-node slot budget EnableHetero installs.
	if w.cfg.Hetero != HeteroNone {
		placer.EnableHetero(profileMaxCap(w.cfg.Profile, w.cfg.M))
	}
	if w.tiling != nil {
		placer.EnableTiles(w.tiling)
	}
	r := &Runner{
		w:       w,
		placer:  placer,
		loads:   ballsbins.NewLoads(w.g.N()),
		origins: make([]int32, b),
		files:   make([]int32, b),
		servers: make([]int32, b),
		hops:    make([]int32, b),
		flags:   make([]uint8, b),
	}
	if w.cfg.Hetero != HeteroNone {
		r.heteroSt.init(w)
		if r.heteroSt.mults != nil {
			r.weighted = &ballsbins.WeightedLoads{}
		}
	}
	// Arrivals mutate the placement mid-trial, so HeteroArrival needs the
	// churn (mutable slab) layout even with churn itself off.
	if w.cfg.Churn != ChurnNone || w.cfg.Hetero == HeteroArrival {
		placer.EnableChurn()
	}
	if w.cfg.Churn != ChurnNone {
		r.churnSt.init(w)
		// Churn must not target vacant nodes: a not-yet-arrived node has
		// no cache to receive migrated replicas.
		r.churnSt.vacant = r.heteroSt.vacant
	}
	if w.cfg.Faults != FaultsNone {
		r.live = cache.NewLiveness(w.g.N())
		if w.tiling != nil {
			// Share the index tiling so the tile walks can skip fully dead
			// tiles through the per-tile live counts.
			r.live.BindTiling(w.tiling)
		}
	}
	return r
}

// strategy returns the per-runner strategy instance bound to p, rebinding
// the existing instance when the strategy supports it (all built-ins do).
func (r *Runner) strategy(p *cache.Placement) core.Strategy {
	if r.strat == nil {
		r.strat = buildStrategy(r.w.cfg, r.w.g, p)
		return r.strat
	}
	if rb, ok := r.strat.(core.Rebindable); ok {
		rb.Rebind(p)
		return r.strat
	}
	return buildStrategy(r.w.cfg, r.w.g, p)
}

// fileSampler returns the request-stream file distribution for this
// trial's placement under the configured miss policy. The conditioned
// MissResample stream is rebuilt into the runner's arenas (weights +
// CustomBuilder), so reconditioning allocates nothing after the first
// trial while sampling bit-identically to a fresh dist.NewCustom.
func (r *Runner) fileSampler(p *cache.Placement) dist.Popularity {
	w := r.w
	if w.cfg.MissPolicy != MissResample || p.UncachedCount() == 0 {
		return w.pop
	}
	// Condition the stream on files cached somewhere in the network.
	if r.weights == nil {
		r.weights = make([]float64, w.cfg.K)
		r.cond = dist.NewCustomBuilder(w.cfg.K)
	} else {
		clear(r.weights)
	}
	for _, j := range p.CachedFiles() {
		r.weights[j] = w.pop.P(int(j))
	}
	return r.cond.Build(r.weights, w.condName)
}

// acct carries the scalar trial accumulators between account passes.
type acct struct {
	hops      float64
	escalated int
	backhaul  int
	retried   int
}

// RunTrial executes one independent trial. Identical (cfg, t) pairs
// produce identical results; the reused scratch never leaks state between
// trials (pinned by the cross-implementation golden tests).
func (r *Runner) RunTrial(t uint64) Result {
	if r.w.cfg.Workers > 0 {
		return r.runTrialSharded(t)
	}
	w := r.w
	// The hetero stream (namespace 8) is derived only for non-none modes;
	// it installs the trial's capacity/vacancy vectors ahead of Place and
	// stays live for the arrival schedule under HeteroArrival.
	arrivalRNG := r.armHetero(t)
	placement := r.placer.Place(w.placeProfile, w.cfg.PlacementMode, r.place.stream(w.placeSrc, t))
	strat := r.strategy(placement)
	fileSampler := r.fileSampler(placement)

	n := w.g.N()
	r.loads.Reset()
	r.loadView = r.wrapView(r.loads)
	res := Result{Requests: w.nReq, Uncached: placement.UncachedCount()}
	var links *routing.LinkLoads
	var hopAcc *stats.Accumulator
	switch w.metrics {
	case MetricsLinks:
		if r.links == nil {
			r.links = routing.NewLinkLoads(w.g)
		} else {
			r.links.Reset()
		}
		links = r.links
	case MetricsStreaming:
		if r.hopAcc == nil {
			r.hopAcc = stats.NewAccumulator(w.g.Diameter())
			r.loadAcc = stats.NewAccumulator(w.loadBound)
			if n <= LinkSketchMaxN {
				r.links64 = stats.NewSpaceSaving(LinkSketchCap)
				r.linkBuf = make([]uint64, 0, w.g.Diameter()+1)
			}
		}
		r.hopAcc.Reset()
		r.loadAcc.Reset()
		if r.links64 != nil {
			r.links64.Reset()
		}
		hopAcc = r.hopAcc
	}

	// The churn stream is derived (and consumed) only for non-none churn,
	// so ChurnNone trials remain bit-identical to the pre-churn engine.
	var churnRNG *rand.Rand
	if w.cfg.Churn != ChurnNone {
		churnRNG = r.churn.stream(w.churnSrc, t)
		r.churnSt.reset()
	}
	// Likewise the fault stream (namespace 7): FaultsNone never derives
	// it, never binds a mask, and stays bit-identical to the fault-free
	// engine (pinned by the golden matrices).
	faultRNG := r.armFaults(strat, t)

	var a acct
	chunk := len(r.origins)
	switch w.cfg.Streams {
	case StreamsInterleaved:
		reqRNG := r.req.stream(w.reqSrc, t)
		for base := 0; base < w.nReq; base += chunk {
			c := min(chunk, w.nReq-base)
			r.generateAssign(strat, fileSampler, reqRNG, c)
			r.account(c, &a, links, hopAcc)
			if base+c < w.nReq {
				if arrivalRNG != nil {
					r.arrivalChunk(arrivalRNG, c, &res)
				}
				if faultRNG != nil {
					r.faultChunk(faultRNG, c, &res)
				}
				if churnRNG != nil {
					r.churnChunk(placement, churnRNG, c, &res)
				}
			}
		}
	case StreamsSplit:
		originRNG := r.origin.stream(w.originSrc, t)
		fileRNG := r.file.stream(w.fileSrc, t)
		assignRNG := r.assign.stream(w.assignSrc, t)
		for base := 0; base < w.nReq; base += chunk {
			c := min(chunk, w.nReq-base)
			dist.RequestBatch(originRNG, fileRNG, n, fileSampler, r.origins[:c], r.files[:c])
			r.assignChunk(strat, assignRNG, c)
			r.account(c, &a, links, hopAcc)
			if base+c < w.nReq {
				if arrivalRNG != nil {
					r.arrivalChunk(arrivalRNG, c, &res)
				}
				if faultRNG != nil {
					r.faultChunk(faultRNG, c, &res)
				}
				if churnRNG != nil {
					r.churnChunk(placement, churnRNG, c, &res)
				}
			}
		}
	}

	res.Escalated, res.Backhaul, res.Retried = a.escalated, a.backhaul, a.retried
	r.finishHetero(&res)
	r.finishFaults(&res)
	if links != nil {
		res.MaxLinkLoad = links.Max()
		res.LinkCongestion = links.CongestionFactor()
	}
	res.MaxLoad = r.loads.Max()
	if w.nReq > 0 {
		res.MeanCost = a.hops / float64(w.nReq)
	}
	if hopAcc != nil {
		for u := 0; u < n; u++ {
			r.loadAcc.Observe(r.loads.Load(u))
		}
		res.Streamed = true
		res.HopMax = hopAcc.Max()
		res.HopStd = hopAcc.Std()
		res.LoadP99 = r.loadAcc.Quantile(0.99)
		if r.links64 != nil {
			res.LinkMaxApprox = r.links64.MaxCount()
		}
	}
	return res
}

// generateAssign is the fused generate+assign phase of the interleaved
// discipline: ids and strategy draws share one stream, consumed per
// request in the exact pre-pipeline order (origin, file, then the
// strategy's own draws).
func (r *Runner) generateAssign(strat core.Strategy, pop dist.Popularity, rng *rand.Rand, c int) {
	n := r.w.g.N()
	for i := 0; i < c; i++ {
		req := core.Request{
			Origin: int32(rng.IntN(n)),
			File:   int32(pop.Sample(rng)),
		}
		r.origins[i] = req.Origin
		r.record(i, strat.Assign(req, r.loadView, rng))
	}
}

// assignChunk is the assign phase of the split discipline: it consumes the
// pre-generated chunk ids, running the strategy against the dedicated
// assignment stream.
func (r *Runner) assignChunk(strat core.Strategy, rng *rand.Rand, c int) {
	for i := 0; i < c; i++ {
		req := core.Request{Origin: r.origins[i], File: r.files[i]}
		r.record(i, strat.Assign(req, r.loadView, rng))
	}
}

// record applies one assignment to the load vector and stores its request
// record for the account phase.
func (r *Runner) record(i int, a core.Assignment) {
	r.loads.Add(int(a.Server))
	r.servers[i] = a.Server
	r.hops[i] = a.Hops
	var f uint8
	if a.Escalated {
		f |= flagEscalated
	}
	if a.Backhaul {
		f |= flagBackhaul
	}
	if a.Retried {
		f |= flagRetried
	}
	r.flags[i] = f
}

// account folds one chunk of request records into the trial accumulators.
// It never touches the RNG streams, so deferring it out of the assign loop
// is invisible to the draw order. The hop sum adds in request order,
// keeping MeanCost bit-identical to the pre-pipeline per-request fold.
func (r *Runner) account(c int, a *acct, links *routing.LinkLoads, hopAcc *stats.Accumulator) {
	for i := 0; i < c; i++ {
		a.hops += float64(r.hops[i])
		f := r.flags[i]
		if f&flagEscalated != 0 {
			a.escalated++
		}
		if f&flagBackhaul != 0 {
			a.backhaul++
		}
		if f&flagRetried != 0 {
			a.retried++
		}
	}
	if links != nil {
		for i := 0; i < c; i++ {
			links.Route(int(r.origins[i]), int(r.servers[i]))
		}
	}
	if hopAcc != nil {
		for i := 0; i < c; i++ {
			hopAcc.Observe(int(r.hops[i]))
		}
		if r.links64 != nil {
			// Recover per-link traffic without the O(n) link vector:
			// replay each delivery's XY route into the heavy-hitter
			// sketch.
			g := r.w.g
			for i := 0; i < c; i++ {
				if r.hops[i] == 0 {
					continue
				}
				r.linkBuf = routing.AppendLinks(g, int(r.origins[i]), int(r.servers[i]), r.linkBuf[:0])
				for _, id := range r.linkBuf {
					r.links64.Observe(id)
				}
			}
		}
	}
}
