package sim

import (
	"sync"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/replication"
	"repro/internal/routing"
	"repro/internal/xrand"
)

// World is one compiled simulation configuration: everything that is
// invariant across trials — the lattice, the popularity profile and its
// alias table, the placement profile, the ball/ring offset templates and
// the derived RNG sources — built exactly once by Compile. A World is
// immutable and safe for concurrent use; per-trial mutable state lives in
// Runners.
//
// Compiling amortizes the expensive trial-invariant setup (the Zipf PMF
// alone is K pow() calls) across the hundreds-to-thousands of trials every
// experiment point runs, which is where the simulator spends its life.
type World struct {
	cfg          Config
	g            *grid.Grid
	pop          dist.Popularity
	placeProfile dist.Popularity
	placeSrc     xrand.Source // namespace 1: placement streams, one per trial
	reqSrc       xrand.Source // namespace 2: request streams, one per trial
	nReq         int

	runners sync.Pool // *Runner recycling for the RunTrial convenience path
}

// Compile validates cfg and builds its trial-invariant state.
func Compile(cfg Config) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := xrand.NewSource(cfg.Seed)
	w := &World{
		cfg:      cfg,
		g:        grid.New(cfg.Side, cfg.Topology),
		placeSrc: src.Split(1),
		reqSrc:   src.Split(2),
	}
	w.pop = cfg.Popularity.Build(cfg.K)
	w.placeProfile = replication.PlacementProfile(w.pop, cfg.PlacementPolicy, cfg.CapFactor)
	w.nReq = cfg.Requests
	if w.nReq == 0 {
		w.nReq = w.g.N()
	}
	return w, nil
}

// Config returns the configuration the world was compiled from.
func (w *World) Config() Config { return w.cfg }

// Grid returns the compiled lattice.
func (w *World) Grid() *grid.Grid { return w.g }

// N returns the number of servers.
func (w *World) N() int { return w.g.N() }

// RunTrial executes one independent trial (trial index t under cfg.Seed).
// Identical (cfg, t) pairs produce identical results regardless of whether
// they run through a fresh world, a reused Runner, or the package-level
// RunTrial. Safe for concurrent use; runners are pooled internally.
func (w *World) RunTrial(t uint64) Result {
	r, _ := w.runners.Get().(*Runner)
	if r == nil {
		r = w.NewRunner()
	}
	res := r.RunTrial(t)
	w.runners.Put(r)
	return res
}

// Runner executes trials of one World through reusable per-worker scratch:
// the placement builder, the load vector, the strategy instance with its
// candidate buffers, and the miss-policy conditioning weights. A Runner is
// NOT safe for concurrent use; create one per worker.
type Runner struct {
	w       *World
	placer  *cache.Placer
	loads   *ballsbins.Loads
	strat   core.Strategy
	links   *routing.LinkLoads
	weights []float64
}

// NewRunner returns a fresh Runner over w.
func (w *World) NewRunner() *Runner {
	return &Runner{
		w:      w,
		placer: cache.NewPlacer(w.g.N(), w.cfg.M, w.cfg.K),
		loads:  ballsbins.NewLoads(w.g.N()),
	}
}

// strategy returns the per-runner strategy instance bound to p, rebinding
// the existing instance when the strategy supports it (all built-ins do).
func (r *Runner) strategy(p *cache.Placement) core.Strategy {
	if r.strat == nil {
		r.strat = buildStrategy(r.w.cfg, r.w.g, p)
		return r.strat
	}
	if rb, ok := r.strat.(core.Rebindable); ok {
		rb.Rebind(p)
		return r.strat
	}
	return buildStrategy(r.w.cfg, r.w.g, p)
}

// fileSampler returns the request-stream file distribution for this
// trial's placement under the configured miss policy.
func (r *Runner) fileSampler(p *cache.Placement) dist.Popularity {
	w := r.w
	if w.cfg.MissPolicy != MissResample || p.UncachedCount() == 0 {
		return w.pop
	}
	// Condition the stream on files cached somewhere in the network.
	if r.weights == nil {
		r.weights = make([]float64, w.cfg.K)
	} else {
		clear(r.weights)
	}
	for _, j := range p.CachedFiles() {
		r.weights[j] = w.pop.P(int(j))
	}
	return dist.NewCustom(r.weights, w.pop.Name()+"|cached")
}

// RunTrial executes one independent trial. Identical (cfg, t) pairs
// produce identical results; the reused scratch never leaks state between
// trials (pinned by the cross-implementation golden tests).
func (r *Runner) RunTrial(t uint64) Result {
	w := r.w
	placeRNG := w.placeSrc.Stream(t)
	reqRNG := w.reqSrc.Stream(t)

	placement := r.placer.Place(w.placeProfile, w.cfg.PlacementMode, placeRNG)
	strat := r.strategy(placement)
	fileSampler := r.fileSampler(placement)

	n := w.g.N()
	r.loads.Reset()
	res := Result{Requests: w.nReq, Uncached: placement.UncachedCount()}
	var links *routing.LinkLoads
	if w.cfg.CollectLinks {
		if r.links == nil {
			r.links = routing.NewLinkLoads(w.g)
		} else {
			r.links.Reset()
		}
		links = r.links
	}
	var hops float64
	for i := 0; i < w.nReq; i++ {
		req := core.Request{
			Origin: int32(reqRNG.IntN(n)),
			File:   int32(fileSampler.Sample(reqRNG)),
		}
		a := strat.Assign(req, r.loads, reqRNG)
		r.loads.Add(int(a.Server))
		hops += float64(a.Hops)
		if a.Escalated {
			res.Escalated++
		}
		if a.Backhaul {
			res.Backhaul++
		}
		if links != nil {
			links.Route(int(req.Origin), int(a.Server))
		}
	}
	if links != nil {
		res.MaxLinkLoad = links.Max()
		res.LinkCongestion = links.CongestionFactor()
	}
	res.MaxLoad = r.loads.Max()
	if w.nReq > 0 {
		res.MeanCost = hops / float64(w.nReq)
	}
	return res
}
