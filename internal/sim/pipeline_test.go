package sim

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// pipelineMatrix is the strategy × miss-policy grid the pipeline
// invariance tests sweep (torus; the topology dimension is covered by the
// golden matrix).
func pipelineMatrix() []Config {
	var cfgs []Config
	for _, kind := range []StrategyKind{Nearest, TwoChoices, OneChoiceRandom, Oracle} {
		for _, mp := range []MissPolicy{MissResample, MissEscalate, MissOrigin} {
			cfgs = append(cfgs, Config{
				Side: 10, K: 120, M: 2, Seed: 77, MissPolicy: mp,
				Strategy: StrategySpec{Kind: kind, Radius: 3},
			})
		}
	}
	return cfgs
}

// compileChunked compiles cfg with a forced pipeline chunk size.
func compileChunked(t *testing.T, cfg Config, chunk int) *World {
	t.Helper()
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.chunk = chunk
	return w
}

// TestPipelineChunkInvariance: a trial's result must not depend on how the
// request block is partitioned into pipeline chunks — for the interleaved
// discipline because generate+assign stay fused, for the split discipline
// because each role's stream is consumed in sequential order regardless of
// batch boundaries (the RequestBatch property lifted to the whole engine).
func TestPipelineChunkInvariance(t *testing.T) {
	for _, streams := range []Streams{StreamsInterleaved, StreamsSplit} {
		for _, base := range pipelineMatrix() {
			cfg := base
			cfg.Streams = streams
			want := compileChunked(t, cfg, 1).NewRunner().RunTrial(0)
			for _, chunk := range []int{3, 17, 64, defaultChunk} {
				got := compileChunked(t, cfg, chunk).NewRunner().RunTrial(0)
				if got != want {
					t.Fatalf("%s/%s/%s chunk=%d: %+v != chunk=1 %+v",
						cfg.Strategy.Kind, cfg.MissPolicy, streams, chunk, got, want)
				}
			}
		}
	}
}

// TestSplitStreamsDeterministic: the split discipline is a first-class
// citizen of the determinism contract — reused runner, fresh runner and
// pooled World.RunTrial agree, and reruns reproduce.
func TestSplitStreamsDeterministic(t *testing.T) {
	for _, base := range pipelineMatrix() {
		cfg := base
		cfg.Streams = StreamsSplit
		w, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reused := w.NewRunner()
		for trial := uint64(0); trial < 3; trial++ {
			want := reused.RunTrial(trial)
			if got := w.NewRunner().RunTrial(trial); got != want {
				t.Fatalf("%s/%s t=%d: fresh runner %+v != reused %+v",
					cfg.Strategy.Kind, cfg.MissPolicy, trial, got, want)
			}
			if got := w.RunTrial(trial); got != want {
				t.Fatalf("%s/%s t=%d: pooled %+v != reused %+v",
					cfg.Strategy.Kind, cfg.MissPolicy, trial, got, want)
			}
			if got := reused.RunTrial(trial); got != want {
				t.Fatalf("%s/%s t=%d: rerun %+v != first %+v",
					cfg.Strategy.Kind, cfg.MissPolicy, trial, got, want)
			}
		}
	}
}

// TestSplitStreamsDifferFromInterleaved documents that the two
// disciplines are distinct seeded processes (the split streams are new RNG
// namespaces), so nobody mistakes StreamsSplit for a bit-compatible
// drop-in: estimator distributions match, trajectories do not.
func TestSplitStreamsDifferFromInterleaved(t *testing.T) {
	cfg := Config{Side: 10, K: 120, M: 2, Seed: 77,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 3}}
	inter, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Streams = StreamsSplit
	split, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inter == split {
		t.Fatalf("interleaved and split produced identical trials %+v — namespaces collapsed?", inter)
	}
}

// TestMetricsModesAgreeOnScalars: the instrumentation knob must be purely
// additive — scalar, links and streaming modes report identical
// Definition 1 scalars for identical (cfg, trial) pairs, under both
// stream disciplines.
func TestMetricsModesAgreeOnScalars(t *testing.T) {
	for _, streams := range []Streams{StreamsInterleaved, StreamsSplit} {
		for _, base := range pipelineMatrix() {
			cfg := base
			cfg.Streams = streams
			want, err := RunTrial(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []MetricsMode{MetricsLinks, MetricsStreaming} {
				mcfg := cfg
				mcfg.Metrics = mode
				got, err := RunTrial(mcfg, 1)
				if err != nil {
					t.Fatal(err)
				}
				// Blank the mode-specific extras; the scalars must match.
				got.MaxLinkLoad, got.LinkCongestion = 0, 0
				got.Streamed, got.HopMax, got.HopStd, got.LoadP99 = false, 0, 0, 0
				got.LinkMaxApprox = 0
				if got != want {
					t.Fatalf("%s/%s/%s metrics=%s: scalars %+v != %+v",
						cfg.Strategy.Kind, cfg.MissPolicy, streams, mode, got, want)
				}
			}
		}
	}
}

// TestStreamingMetricsMatchSequentialOracle verifies the streaming
// extras against an independent unchunked replay of the same trial: the
// plain sequential loop records every per-request hop count and every
// final node load, and the streaming accumulators must agree exactly
// (same observation order → identical Welford bits; nearest-rank quantile
// against a full sort).
func TestStreamingMetricsMatchSequentialOracle(t *testing.T) {
	cfg := Config{Side: 11, K: 90, M: 2, Seed: 13, Metrics: MetricsStreaming,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 3}}
	const trial = 2
	got, err := RunTrial(cfg, trial)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the pre-pipeline sequential loop over the same world state.
	oracle := cfg
	oracle.Metrics = MetricsScalar
	w, err := Compile(oracle)
	if err != nil {
		t.Fatal(err)
	}
	r := w.NewRunner()
	placement := r.placer.Place(w.placeProfile, w.cfg.PlacementMode, r.place.stream(w.placeSrc, trial))
	strat := r.strategy(placement)
	sampler := r.fileSampler(placement)
	reqRNG := r.req.stream(w.reqSrc, trial)
	r.loads.Reset()
	var hopMoments stats.Summary // Welford, as the streaming accumulator folds
	hopSum := 0.0                // plain running sum, as MeanCost folds
	hopMax := 0
	for i := 0; i < w.nReq; i++ {
		req := core.Request{Origin: int32(reqRNG.IntN(w.g.N())), File: int32(sampler.Sample(reqRNG))}
		a := strat.Assign(req, r.loads, reqRNG)
		r.loads.Add(int(a.Server))
		hopMoments.Add(float64(a.Hops))
		hopSum += float64(a.Hops)
		if int(a.Hops) > hopMax {
			hopMax = int(a.Hops)
		}
	}
	loads := make([]int, w.g.N())
	for u := range loads {
		loads[u] = r.loads.Load(u)
	}
	sort.Ints(loads)
	p99 := loads[int(math.Ceil(0.99*float64(len(loads))))-1]

	if got.HopMax != hopMax {
		t.Errorf("HopMax = %d, oracle %d", got.HopMax, hopMax)
	}
	if got.HopStd != hopMoments.Std() {
		t.Errorf("HopStd = %v, oracle %v", got.HopStd, hopMoments.Std())
	}
	if got.MeanCost != hopSum/float64(w.nReq) {
		t.Errorf("MeanCost = %v, oracle %v", got.MeanCost, hopSum/float64(w.nReq))
	}
	if got.LoadP99 != p99 {
		t.Errorf("LoadP99 = %d, oracle %d", got.LoadP99, p99)
	}
	if got.HopMax == 0 || got.LoadP99 == 0 {
		t.Fatalf("streaming extras not populated: %+v", got)
	}
}

// TestStreamingMetricsAcrossMatrix smoke-checks the streaming extras'
// internal consistency on every strategy × miss-policy combination.
func TestStreamingMetricsAcrossMatrix(t *testing.T) {
	for _, base := range pipelineMatrix() {
		cfg := base
		cfg.Metrics = MetricsStreaming
		res, err := RunTrial(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.HopMax) < res.MeanCost {
			t.Errorf("%s/%s: HopMax %d below mean cost %v", cfg.Strategy.Kind, cfg.MissPolicy, res.HopMax, res.MeanCost)
		}
		if res.LoadP99 > res.MaxLoad {
			t.Errorf("%s/%s: LoadP99 %d exceeds MaxLoad %d", cfg.Strategy.Kind, cfg.MissPolicy, res.LoadP99, res.MaxLoad)
		}
		if res.HopStd < 0 {
			t.Errorf("%s/%s: negative HopStd %v", cfg.Strategy.Kind, cfg.MissPolicy, res.HopStd)
		}
	}
}

// TestStreamingLoadQuantileHeavyLoad: the load histogram must scale with
// the mean per-node load so heavy-load regimes (Requests ≫ n) report
// exact quantiles instead of clamping at the baseline bound.
func TestStreamingLoadQuantileHeavyLoad(t *testing.T) {
	cfg := Config{Side: 5, K: 20, M: 4, Seed: 2, Requests: 200_000,
		Metrics:  MetricsStreaming,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded}}
	res, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(cfg.Requests) / 25 // 8000 requests per node
	if float64(res.LoadP99) < mean || res.LoadP99 > res.MaxLoad {
		t.Fatalf("LoadP99 = %d implausible for mean load %.0f (max %d) — histogram clamped?",
			res.LoadP99, mean, res.MaxLoad)
	}
}

// TestStreamingExtrasSurviveZeroHops: a trial where every request is
// served at its origin (full library on every node) has HopMax = 0, yet
// its streaming extras are real data and must flow into the aggregate.
func TestStreamingExtrasSurviveZeroHops(t *testing.T) {
	cfg := Config{Side: 5, K: 4, M: 64, Seed: 3, Metrics: MetricsStreaming,
		Strategy: StrategySpec{Kind: Nearest}}
	res, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Streamed {
		t.Fatal("Streamed not set in MetricsStreaming mode")
	}
	if res.HopMax != 0 || res.MeanCost != 0 {
		t.Fatalf("expected an all-local trial, got %+v", res)
	}
	if res.LoadP99 < 1 {
		t.Fatalf("LoadP99 = %d, want >= 1 with n requests over n nodes", res.LoadP99)
	}
	var agg Aggregate
	agg.Add(res)
	if agg.LoadP99.N() != 1 || agg.HopMax.N() != 1 {
		t.Fatalf("zero-hop streaming trial dropped from aggregate: %+v", agg)
	}
}

// TestMetricsStreamsValidation covers the new knob validation.
func TestMetricsStreamsValidation(t *testing.T) {
	base := Config{Side: 5, K: 10, M: 1}
	bad := base
	bad.Metrics = MetricsMode(9)
	if _, err := Compile(bad); err == nil {
		t.Error("unknown metrics mode accepted")
	}
	bad = base
	bad.Streams = Streams(9)
	if _, err := Compile(bad); err == nil {
		t.Error("unknown streams discipline accepted")
	}
	bad = base
	bad.CollectLinks = true
	bad.Metrics = MetricsStreaming
	if _, err := Compile(bad); err == nil {
		t.Error("CollectLinks + MetricsStreaming accepted")
	}
	ok := base
	ok.CollectLinks = true
	res, err := RunTrial(ok, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkLoad == 0 {
		t.Error("CollectLinks no longer upgrades to MetricsLinks")
	}
}

// TestRunTrialSteadyStateAllocs is the allocation-free contract of the
// request engine at the paper-scale acceptance point (MissResample with
// uncached files every trial, so the conditioned sampler is rebuilt into
// the arenas each time): a warmed Runner allocates nothing per trial, and
// the pooled World.RunTrial convenience stays ≤ 1 alloc/op. The split
// discipline and the streaming metrics mode are held to the same bar.
func TestRunTrialSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and disables pool caching")
	}
	for _, variant := range []struct {
		name string
		mut  func(*Config)
	}{
		{"interleaved-scalar", func(*Config) {}},
		{"split-scalar", func(c *Config) { c.Streams = StreamsSplit }},
		{"split-streaming", func(c *Config) { c.Streams = StreamsSplit; c.Metrics = MetricsStreaming }},
		{"interleaved-streaming", func(c *Config) { c.Metrics = MetricsStreaming }},
		{"tiles-scalar", func(c *Config) { c.Index = IndexTiles }},
		{"tiles-split-streaming", func(c *Config) {
			c.Index = IndexTiles
			c.Streams = StreamsSplit
			c.Metrics = MetricsStreaming
		}},
	} {
		cfg := paperScaleCfg()
		variant.mut(&cfg)
		w, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := w.NewRunner()
		if res := r.RunTrial(0); res.Uncached == 0 {
			t.Fatalf("%s: paper-scale point leaves no uncached files; conditioned-sampler path not exercised", variant.name)
		}
		r.RunTrial(1) // second warm-up: buffers at steady-state size
		trial := uint64(2)
		if n := testing.AllocsPerRun(3, func() {
			r.RunTrial(trial)
			trial++
		}); n != 0 {
			t.Errorf("%s: steady-state Runner.RunTrial allocates %.1f/op, want 0", variant.name, n)
		}
		w.RunTrial(trial) // warm the pool
		if n := testing.AllocsPerRun(3, func() {
			w.RunTrial(trial)
			trial++
		}); n > 1 {
			t.Errorf("%s: pooled World.RunTrial allocates %.1f/op, want <= 1", variant.name, n)
		}
	}
}

// TestChunkBuffersSizedToRequests: tiny request counts must not pin
// full-chunk buffers, and requests > chunk must still produce the same
// totals (covered above); here we check the boundary bookkeeping.
func TestChunkBuffersSizedToRequests(t *testing.T) {
	cfg := Config{Side: 6, K: 20, M: 1, Requests: 5,
		Strategy: StrategySpec{Kind: Nearest}}
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.NewRunner()
	if len(r.origins) != 5 {
		t.Fatalf("chunk buffer length %d, want 5", len(r.origins))
	}
	if res := r.RunTrial(0); res.Requests != 5 {
		t.Fatalf("Requests = %d, want 5", res.Requests)
	}
}

// TestWideWorldStreamingTrial is a scaled-down widegrid acceptance check
// that still crosses multiple chunk boundaries and runs both strategies
// with streaming metrics + split streams on a torus larger than every
// paper figure; the full Side=1000 (n=10⁶) point runs in
// BenchmarkWideWorldTrial and the widegrid experiment's paper preset.
func TestWideWorldStreamingTrial(t *testing.T) {
	side := 120
	if testing.Short() {
		side = 60
	}
	for _, kind := range []StrategyKind{Nearest, TwoChoices} {
		cfg := Config{
			Side: side, K: 4000, M: 4, Seed: 9,
			Strategy: StrategySpec{Kind: kind, Radius: 16},
			Metrics:  MetricsStreaming,
			Streams:  StreamsSplit,
		}
		w, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := w.NewRunner()
		res := r.RunTrial(0)
		if res.Requests != side*side || res.MaxLoad == 0 || res.HopMax == 0 {
			t.Fatalf("%s: implausible wide trial %+v", kind, res)
		}
		if !raceEnabled {
			if n := testing.AllocsPerRun(2, func() { r.RunTrial(1) }); n != 0 {
				t.Errorf("%s: wide streaming trial allocates %.1f/op, want 0", kind, n)
			}
		}
	}
}
