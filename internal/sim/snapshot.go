package sim

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
)

// Served-mode extraction: a Snapshot packages the mutable state a trial
// threads through one Runner — placement, tile index, liveness mask and
// the churn/fault event schedules — into a value that can live outside
// the batch engine. The serving daemon (internal/serve, cmd/cachesimd)
// compiles one Snapshot per era, applies mutation batches to it through
// Advance, and publishes immutable Clones to concurrent readers through
// an atomic pointer; the batch engine and the daemon therefore run the
// same placement, strategy and mutation code over the same state, which
// is what lets a quiesced daemon answer bit-identically to RunTrial
// (pinned by the serve golden tests).
//
// A Snapshot is NOT safe for concurrent mutation: exactly one goroutine
// may call Advance. The read-only views (Placement, Liveness, sampler
// and strategies built over them) are safe for any number of concurrent
// readers as long as nobody calls Advance on that same value — which is
// the copy-on-write discipline internal/serve enforces by mutating a
// private shadow and publishing Clones.

// Snapshot is one era of served placement state: a churn-capable
// placement (with tile index when the world is indexed), the liveness
// mask (when faults are configured) and the event schedules that evolve
// them.
type Snapshot struct {
	w    *World
	p    *cache.Placement
	live *cache.Liveness
	pop  dist.Popularity

	era uint64 // trial index the placement was compiled from
	seq uint64 // mutation batches applied since compile

	churnSt  churnState
	faultSt  faultState
	heteroSt heteroState
	churnRNG *rand.Rand
	faultRNG *rand.Rand
	// arrivalRNG (HeteroArrival only) drives the era's arrival schedule;
	// placer is retained because arrivals rebuild the placement's derived
	// indexes through it. Both nil on clones, which cannot Advance.
	arrivalRNG *rand.Rand
	placer     *cache.Placer

	ev Result // churn/fault/arrival event counters accumulated by Advance
}

// Snapshot compiles the served state for trial era t: the placement is
// built from the same per-trial placement stream as RunTrial(t) — so
// its content (replica sets, tile index, cached-file set) is identical
// to the batch trial's — but in the mutable churn layout, ready for
// in-place migration. The churn and fault schedules are armed from the
// same per-trial streams the batch engine would consume, so the served
// mutation sequence is the trial's seeded process applied at the
// daemon's own batch cadence.
func (w *World) Snapshot(t uint64) *Snapshot {
	placer := cache.NewPlacer(w.g.N(), w.cfg.M, w.cfg.K)
	// Hetero layout first (EnableTiles and EnableChurn size arenas off
	// its slot budget), then churn: EnableTiles keys its sort policy off
	// the churn layout.
	if w.cfg.Hetero != HeteroNone {
		placer.EnableHetero(profileMaxCap(w.cfg.Profile, w.cfg.M))
	}
	placer.EnableChurn()
	if w.tiling != nil {
		placer.EnableTiles(w.tiling)
	}
	// One reseedRand per role: stream() reuses its receiver's generator,
	// so sharing one across roles would alias every stream to the last
	// reseed.
	var placeRR, churnRR, faultRR, heteroRR reseedRand
	s := &Snapshot{
		w:   w,
		era: t,
	}
	if w.cfg.Hetero != HeteroNone {
		s.heteroSt.init(w)
		rng := heteroRR.stream(w.heteroSrc, t)
		s.heteroSt.arm(w, rng)
		placer.SetHetero(s.heteroSt.caps, s.heteroSt.vacant)
		if w.cfg.Hetero == HeteroArrival {
			// The hetero RNG stays live for the era's arrival schedule,
			// and the placer is retained: arrivals rebuild the replica and
			// tile indexes through it.
			s.arrivalRNG = rng
			s.placer = placer
		}
	}
	s.p = placer.Place(w.placeProfile, w.cfg.PlacementMode, placeRR.stream(w.placeSrc, t))
	if w.cfg.MissPolicy == MissResample && s.p.UncachedCount() > 0 {
		// Condition the request file stream on the cached set — invariant
		// under churn (ReplaceReplica/SwapReplicas preserve it), so one
		// build at compile time serves the whole era.
		weights := make([]float64, w.cfg.K)
		for _, j := range s.p.CachedFiles() {
			weights[j] = w.pop.P(int(j))
		}
		s.pop = dist.NewCustom(weights, w.condName)
	} else {
		s.pop = w.pop
	}
	if w.cfg.Churn != ChurnNone {
		s.churnSt.init(w)
		s.churnSt.reset()
		s.churnSt.vacant = s.heteroSt.vacant // never migrate onto not-yet-arrived nodes
		s.churnRNG = churnRR.stream(w.churnSrc, t)
	}
	if w.cfg.Faults != FaultsNone {
		s.live = cache.NewLiveness(w.g.N())
		if w.tiling != nil {
			s.live.BindTiling(w.tiling)
		}
		s.faultSt.reset()
		s.faultRNG = faultRR.stream(w.faultSrc, t)
	}
	return s
}

// Placement returns the snapshot's placement view (replica CSR + tile
// index). Read-only for everyone except the single Advance caller.
func (s *Snapshot) Placement() *cache.Placement { return s.p }

// Liveness returns the snapshot's node liveness mask, nil when the
// world has no fault process (all nodes permanently live).
func (s *Snapshot) Liveness() *cache.Liveness { return s.live }

// World returns the world the snapshot was compiled from.
func (s *Snapshot) World() *World { return s.w }

// Era returns the trial index the snapshot's placement was compiled
// from; Seq returns the number of mutation batches applied since.
// Together they name the exact state version a decision observed.
func (s *Snapshot) Era() uint64 { return s.era }

// Seq returns the number of Advance batches applied since compile.
func (s *Snapshot) Seq() uint64 { return s.seq }

// FileSampler returns the request file distribution conditioned for
// this snapshot's placement under the world's miss policy — the served
// twin of the batch engine's per-trial sampler. Safe for concurrent
// use with a caller-owned RNG.
func (s *Snapshot) FileSampler() dist.Popularity { return s.pop }

// NewStrategy builds a fresh strategy instance bound to this snapshot's
// placement and liveness mask. Each concurrent decision context needs
// its own instance (strategies carry per-call scratch); rebinding an
// existing instance to a newer snapshot is cheaper — see Bind.
func (s *Snapshot) NewStrategy() core.Strategy {
	strat := buildStrategy(s.w.cfg, s.w.g, s.p)
	if s.live != nil {
		strat.(core.LivenessAware).SetLiveness(s.live)
	}
	return strat
}

// Bind rebinds an existing strategy instance (built by NewStrategy on
// an older snapshot of the same world) to this snapshot's state. All
// built-in strategies support rebinding; a non-rebindable custom
// strategy falls back to a fresh build. Returns the bound instance.
func (s *Snapshot) Bind(strat core.Strategy) core.Strategy {
	rb, ok := strat.(core.Rebindable)
	if !ok {
		return s.NewStrategy()
	}
	rb.Rebind(s.p)
	if la, ok := strat.(core.LivenessAware); ok {
		if s.live != nil {
			la.SetLiveness(s.live)
		} else {
			la.SetLiveness(nil)
		}
	}
	return strat
}

// Advance applies the arrival, fault and churn schedules accrued by c
// served requests, mutating the snapshot in place — arrivals first,
// then faults, then churn, the batch engine's chunk-barrier order. One
// call is the served analogue of one pipeline chunk boundary. Only the
// single mutator goroutine may call Advance; concurrent readers must
// hold a Clone.
func (s *Snapshot) Advance(c int) {
	if s.arrivalRNG != nil {
		s.heteroSt.applyArrivals(s.w, s.placer, s.live, s.arrivalRNG, c,
			&s.ev.ArrivalEvents, &s.ev.ArrivalSkipped)
	}
	if s.faultRNG != nil {
		s.faultSt.apply(s.w, s.live, s.faultRNG, c, nil, &s.ev)
	}
	if s.churnRNG != nil {
		s.churnSt.apply(s.w, s.p, s.churnRNG, c, &s.ev.ChurnEvents, &s.ev.ChurnSkipped)
	}
	s.seq++
}

// Clone returns an immutable deep copy of the snapshot's state for
// publication: placement, tile index and liveness are independently
// owned, so later Advance calls on s never disturb readers of the
// clone. The clone carries the era/seq stamp and event counters but no
// schedule state — it cannot be Advanced, only read.
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{
		w:   s.w,
		p:   s.p.Clone(),
		pop: s.pop,
		era: s.era,
		seq: s.seq,
		ev:  s.ev,
	}
	if s.live != nil {
		c.live = s.live.Clone()
	}
	// The weighted-view multipliers are immutable for the era (arrivals
	// change caps' occupancy, never C_u), so clones share the slice.
	c.heteroSt.mults = s.heteroSt.mults
	return c
}

// WrapLoads returns the load view strategies bound to this snapshot
// should compare through: l itself for homogeneous (or uniform-profile)
// worlds, a capacity-weighted wrapper otherwise. Writes always go to
// the raw vector; only the comparison view is weighted.
func (s *Snapshot) WrapLoads(l core.LoadReader) core.LoadReader {
	if s.heteroSt.mults == nil {
		return l
	}
	return ballsbins.NewWeightedLoads(l, s.heteroSt.mults)
}

// Info returns the snapshot's era diagnostics — the state-version stamp
// and mutation counters batch and served modes both report.
func (s *Snapshot) Info() SnapshotInfo {
	info := SnapshotInfo{
		Era:           s.era,
		Seq:           s.seq,
		Uncached:      s.p.UncachedCount(),
		ChurnEvents:   s.ev.ChurnEvents,
		ChurnSkipped:  s.ev.ChurnSkipped,
		FaultEvents:   s.ev.FaultEvents,
		RecoverEvents: s.ev.RecoverEvents,
		FaultSkipped:  s.ev.FaultSkipped,
	}
	if s.live != nil {
		info.DeadNodes = s.live.DeadCount()
	}
	info.ArrivalEvents = s.ev.ArrivalEvents
	info.ArrivalSkipped = s.ev.ArrivalSkipped
	info.Vacant = len(s.heteroSt.vacantList)
	return info
}

// SnapshotInfo is the placement-era diagnostic stamp shared by the
// batch engine (cachesim -v) and the served mode (/metrics): which era
// the active placement was compiled from, how many mutation batches it
// has absorbed, and the cumulative event counts behind them.
type SnapshotInfo struct {
	Era           uint64 // trial index the placement was compiled from
	Seq           uint64 // mutation batches applied since compile
	Uncached      int    // library files with zero replicas this era
	ChurnEvents   int    // replica migrations applied
	ChurnSkipped  int    // infeasible churn events dropped
	FaultEvents   int    // crash events applied
	RecoverEvents int    // recovery events applied
	FaultSkipped  int    // infeasible fault events dropped
	DeadNodes     int    // currently dead nodes

	ArrivalEvents  int // node arrivals applied (HeteroArrival)
	ArrivalSkipped int // arrival events burned with no vacant node left
	Vacant         int // currently vacant (not-yet-arrived) nodes
}

// String renders the stamp in the compact era=…/seq=… form both
// cachesim -v and the daemon logs use. The arrival counters render only
// when the arrival process is in play, so homogeneous stamps keep their
// historical shape.
func (i SnapshotInfo) String() string {
	s := fmt.Sprintf("era=%d seq=%d uncached=%d churn=%d/%d faults=%d/%d/%d dead=%d",
		i.Era, i.Seq, i.Uncached, i.ChurnEvents, i.ChurnSkipped,
		i.FaultEvents, i.RecoverEvents, i.FaultSkipped, i.DeadNodes)
	if i.ArrivalEvents > 0 || i.ArrivalSkipped > 0 || i.Vacant > 0 {
		s += fmt.Sprintf(" arrivals=%d/%d vacant=%d", i.ArrivalEvents, i.ArrivalSkipped, i.Vacant)
	}
	return s
}

// RequestStream returns the split-discipline request generation streams
// for trial era t: a dedicated origin RNG and file RNG, exactly the
// streams RunTrial(t) consumes under StreamsSplit. The served loadgen
// replays them through dist.RequestBatch, which draws all origins then
// all files per batch — so any batch partition of the same request
// count consumes the streams identically (the chunk-partition
// invariance the golden pin leans on).
func (w *World) RequestStream(t uint64) (originRNG, fileRNG *rand.Rand) {
	var ro, rf reseedRand
	return ro.stream(w.originSrc, t), rf.stream(w.fileSrc, t)
}

// AssignSeed returns the per-trial seed pair of the split-discipline
// assignment stream — the stream the strategies draw candidate picks
// and tie breaks from in RunTrial(t). A single served context seeded
// with it reproduces the batch trial's decision sequence exactly.
func (w *World) AssignSeed(t uint64) (uint64, uint64) {
	return w.assignSrc.StreamSeed(t)
}

// Requests returns the per-trial request count the world was compiled
// for (Config.Requests, defaulted to one request per server).
func (w *World) Requests() int { return w.nReq }
