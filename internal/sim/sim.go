// Package sim is the experiment engine: it assembles a cache network
// (topology + placement + strategy) from a declarative Config, replays the
// paper's request process (n sequential requests, uniform origins, files
// drawn from the popularity profile), and aggregates the two metrics of
// Definition 1 — maximum load L and communication cost C — over many
// independent trials run in parallel.
package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/replication"
	"repro/internal/stats"
)

// PopKind selects the popularity profile family.
type PopKind int

const (
	// PopUniform is p_i = 1/K.
	PopUniform PopKind = iota
	// PopZipf is p_i ∝ 1/i^γ.
	PopZipf
)

// PopSpec declares the popularity profile.
type PopSpec struct {
	Kind  PopKind
	Gamma float64 // Zipf exponent; ignored for PopUniform
}

// Build materializes the profile for library size k.
func (ps PopSpec) Build(k int) dist.Popularity {
	switch ps.Kind {
	case PopUniform:
		return dist.NewUniform(k)
	case PopZipf:
		return dist.NewZipf(k, ps.Gamma)
	default:
		panic(fmt.Sprintf("sim: unknown popularity kind %d", ps.Kind))
	}
}

// StrategyKind selects the assignment strategy family.
type StrategyKind int

const (
	// Nearest is Strategy I.
	Nearest StrategyKind = iota
	// TwoChoices is Strategy II (and its d-choice generalization).
	TwoChoices
	// OneChoiceRandom is the load-blind random-replica baseline.
	OneChoiceRandom
	// Oracle is the full-information least-loaded-in-radius baseline.
	Oracle
)

// String implements fmt.Stringer.
func (s StrategyKind) String() string {
	switch s {
	case Nearest:
		return "nearest"
	case TwoChoices:
		return "two-choices"
	case OneChoiceRandom:
		return "one-choice"
	case Oracle:
		return "oracle"
	default:
		return fmt.Sprintf("StrategyKind(%d)", int(s))
	}
}

// StrategySpec declares the assignment strategy.
type StrategySpec struct {
	Kind StrategyKind
	// Radius is the proximity constraint in hops for the choice-based
	// strategies (core.RadiusUnbounded = ∞). Ignored by Nearest.
	Radius int
	// Choices is d for TwoChoices (0 → 2).
	Choices int
	// WithoutReplacement samples candidates distinct when possible.
	WithoutReplacement bool
	// Beta in (0,1) selects the (1+β)-choice process for TwoChoices.
	Beta float64
}

// MissPolicy resolves requests the placement cannot serve (DESIGN.md §4.4).
type MissPolicy int

const (
	// MissResample conditions the request stream on files cached
	// somewhere in the network (popularity renormalized), and escalates
	// to r = ∞ when the radius holds no replica. Default for paper
	// reproductions.
	MissResample MissPolicy = iota
	// MissEscalate keeps the unconditioned request stream; uncached
	// files are served via backhaul at the origin, radius misses escalate.
	MissEscalate
	// MissOrigin keeps the unconditioned stream and serves any miss
	// (uncached file or empty radius) via backhaul at the origin.
	MissOrigin
)

// String implements fmt.Stringer.
func (m MissPolicy) String() string {
	switch m {
	case MissResample:
		return "resample"
	case MissEscalate:
		return "escalate"
	case MissOrigin:
		return "origin"
	default:
		return fmt.Sprintf("MissPolicy(%d)", int(m))
	}
}

// ParseMiss converts a CLI name.
func ParseMiss(s string) (MissPolicy, error) {
	switch s {
	case "resample", "":
		return MissResample, nil
	case "escalate":
		return MissEscalate, nil
	case "origin":
		return MissOrigin, nil
	}
	return 0, fmt.Errorf("sim: unknown miss policy %q (want resample, escalate or origin)", s)
}

// MetricsMode selects how much per-trial instrumentation a trial carries
// beyond the Definition 1 scalars (max load L, mean cost C, miss
// counters), and at what memory cost.
type MetricsMode int

const (
	// MetricsScalar reports only the Definition 1 scalars. Default.
	MetricsScalar MetricsMode = iota
	// MetricsLinks additionally routes every delivery hop-by-hop (XY
	// routing) and reports link-congestion metrics. Materializes an O(n)
	// per-link load vector per runner.
	MetricsLinks
	// MetricsStreaming additionally reports per-request hop moments and a
	// load quantile through constant-memory streaming accumulators
	// (running max, Welford moments, bounded histogram — see
	// stats.Accumulator). Never materializes an O(n) metric vector, which
	// is what keeps 10⁶-node worlds at a flat memory profile.
	MetricsStreaming
)

// String implements fmt.Stringer.
func (m MetricsMode) String() string {
	switch m {
	case MetricsScalar:
		return "scalar"
	case MetricsLinks:
		return "links"
	case MetricsStreaming:
		return "streaming"
	default:
		return fmt.Sprintf("MetricsMode(%d)", int(m))
	}
}

// ParseMetricsMode converts a CLI name.
func ParseMetricsMode(s string) (MetricsMode, error) {
	switch s {
	case "scalar", "":
		return MetricsScalar, nil
	case "links":
		return MetricsLinks, nil
	case "streaming":
		return MetricsStreaming, nil
	}
	return 0, fmt.Errorf("sim: unknown metrics mode %q (want scalar, links or streaming)", s)
}

// Streams selects the request-phase RNG discipline.
type Streams int

const (
	// StreamsInterleaved is the legacy discipline: one stream per trial,
	// consumed request by request — origin and file draws interleaved with
	// the strategy's candidate sampling and tie breaks. Bit-compatible
	// with every pre-pipeline golden. Default.
	StreamsInterleaved Streams = iota
	// StreamsSplit derives three independent per-trial streams (origins,
	// files, assignment), decoupling id generation from the strategy's
	// draws. That makes generation batchable — the engine pre-draws whole
	// chunks through dist.RequestBatch — and results invariant to the
	// chunk partition (property-tested). Statistically equivalent to, but
	// not bit-identical with, StreamsInterleaved.
	StreamsSplit
)

// String implements fmt.Stringer.
func (s Streams) String() string {
	switch s {
	case StreamsInterleaved:
		return "interleaved"
	case StreamsSplit:
		return "split"
	default:
		return fmt.Sprintf("Streams(%d)", int(s))
	}
}

// ParseStreams converts a CLI name.
func ParseStreams(s string) (Streams, error) {
	switch s {
	case "interleaved", "":
		return StreamsInterleaved, nil
	case "split":
		return StreamsSplit, nil
	}
	return 0, fmt.Errorf("sim: unknown streams discipline %q (want interleaved or split)", s)
}

// IndexMode selects the candidate-enumeration discipline of the
// radius-bounded choice strategies.
type IndexMode int

const (
	// IndexNone is the PR 3 discipline: rejection sampling from the
	// denser side of S_j ∩ B_r(u) with an exact-filter fallback that
	// costs O(min(|S_j|, |B_r|)) per miss. Bit-compatible with every
	// pinned golden. Default.
	IndexNone IndexMode = iota
	// IndexTiles compiles a tile-bucketed spatial replica index into the
	// world (cache.TileIndex over grid.Tiling): S_j ∩ B_r(u) is
	// enumerated by walking only the O((r/t+2)²) tiles overlapping the
	// ball, and candidates are drawn by a two-stage sampler (replica-
	// count-weighted tile draw, then uniform within the tile) — the same
	// uniform law as IndexNone but a distinct seeded process, pinned by
	// its own golden matrix. This is what makes 10⁶-node bounded-radius
	// trials sub-second; it is a no-op for Nearest and unbounded radii.
	IndexTiles
)

// String implements fmt.Stringer.
func (m IndexMode) String() string {
	switch m {
	case IndexNone:
		return "none"
	case IndexTiles:
		return "tiles"
	default:
		return fmt.Sprintf("IndexMode(%d)", int(m))
	}
}

// ParseIndex converts a CLI name.
func ParseIndex(s string) (IndexMode, error) {
	switch s {
	case "none", "":
		return IndexNone, nil
	case "tiles":
		return IndexTiles, nil
	}
	return 0, fmt.Errorf("sim: unknown index mode %q (want none or tiles)", s)
}

// ChurnMode selects the mid-trial placement-mutation discipline — the
// engine side of the paper's §VI dynamic regime, where caches evict and
// re-place replicas while requests keep arriving.
type ChurnMode int

const (
	// ChurnNone freezes the placement for the whole trial (every golden
	// matrix runs here; the churn RNG stream is never consumed). Default.
	ChurnNone ChurnMode = iota
	// ChurnReplicas migrates uniformly random cached replicas: each event
	// picks a (file, node) replica slot uniformly over all Σ|S_j| slots
	// and a uniformly random destination node. A destination with a free
	// cache slot receives the replica outright (cache.ReplaceReplica); a
	// full destination — the common case when K ≫ M — exchanges it for a
	// uniformly chosen resident, whose replica moves back to the source
	// (cache.SwapReplicas), so one event may relocate two files. Events
	// whose destination is the source or already caches the file, or
	// whose displaced file is already at the source, are dropped and
	// counted in Result.ChurnSkipped. Replica counts |S_j| are invariant
	// either way — only replica geography drifts.
	ChurnReplicas
	// ChurnDrift couples the migration schedule to a shot-noise
	// popularity drifter (workload.Drifter): surging files have their
	// replicas migrated proportionally more often, modelling caches that
	// chase a drifting catalog. Event mechanics (free-slot migration,
	// full-cache exchange, skip rules) and the |S_j| invariance are those
	// of ChurnReplicas.
	ChurnDrift
)

// String implements fmt.Stringer.
func (c ChurnMode) String() string {
	switch c {
	case ChurnNone:
		return "none"
	case ChurnReplicas:
		return "replicas"
	case ChurnDrift:
		return "drift"
	default:
		return fmt.Sprintf("ChurnMode(%d)", int(c))
	}
}

// ParseChurn converts a CLI name.
func ParseChurn(s string) (ChurnMode, error) {
	switch s {
	case "none", "":
		return ChurnNone, nil
	case "replicas":
		return ChurnReplicas, nil
	case "drift":
		return ChurnDrift, nil
	}
	return 0, fmt.Errorf("sim: unknown churn mode %q (want none, replicas or drift)", s)
}

// ShardMode selects the load-visibility discipline of the intra-trial
// sharded engine (Config.Workers > 0): what a worker's strategy sees in
// the load vector while other workers are assigning concurrently.
type ShardMode int

const (
	// ShardDeterministic freezes the load vector for the duration of each
	// pipeline chunk: every worker's strategy reads the snapshot taken at
	// the chunk barrier, assignments are recorded per shard, and the
	// coordinator applies all load deltas (and the chunk's accounting and
	// churn) serially in request order at the barrier. Request ids and
	// strategy draws come from per-granule RNG streams (see shardGranule),
	// so the result is a pure function of (cfg, trial) — bit-identical
	// across every worker count P ≥ 1, pinned by the parallel golden
	// matrix. It is a distinct seeded process from the sequential engine
	// (frozen-snapshot chunk semantics vs live per-request loads), exactly
	// as StreamsSplit and IndexTiles are distinct processes from their
	// predecessors. Default.
	ShardDeterministic ShardMode = iota
	// ShardRacy shares one atomic load vector among the workers: adds are
	// atomic increments, reads are atomic but unsynchronized with other
	// workers' in-flight assignments — the classic balls-into-bins with
	// outdated information. Generation stays on the deterministic
	// per-granule streams, but assignment outcomes depend on scheduling;
	// results are NOT reproducible. Data-race-free by construction (every
	// access is atomic; see ballsbins.AtomicLoads).
	ShardRacy
)

// String implements fmt.Stringer.
func (m ShardMode) String() string {
	switch m {
	case ShardDeterministic:
		return "deterministic"
	case ShardRacy:
		return "racy"
	default:
		return fmt.Sprintf("ShardMode(%d)", int(m))
	}
}

// ParseShard converts a CLI name.
func ParseShard(s string) (ShardMode, error) {
	switch s {
	case "deterministic", "":
		return ShardDeterministic, nil
	case "racy":
		return ShardRacy, nil
	}
	return 0, fmt.Errorf("sim: unknown shard mode %q (want deterministic or racy)", s)
}

// FaultsMode selects the node fault-injection discipline: servers crash
// (and optionally recover) mid-trial while the placement stays put —
// liveness over fixed geometry, the node-departure half of the §VI
// dynamic regime. Crash and recovery events are drawn from a dedicated
// fault RNG stream and applied at chunk barriers exactly like churn, so
// the strategies always observe a consistent liveness view; between
// barriers every candidate path masks dead nodes and walks the
// graceful-degradation ladder (retry among live replicas → escalate to
// r = ∞ over live nodes → backhaul at the origin).
type FaultsMode int

const (
	// FaultsNone keeps every node live for the whole trial (every golden
	// matrix runs here; the fault RNG stream is never consumed). Default.
	FaultsNone FaultsMode = iota
	// FaultsCrash kills i.i.d. uniform live nodes at FaultRate events per
	// request and re-admits uniform dead nodes at RecoverRate — the
	// classic independent-failure model with exponential-like MTTR.
	FaultsCrash
	// FaultsRegional kills tile-aligned regions instead of single nodes:
	// each crash event picks a uniform region of the world's fault
	// tiling and kills every live node in it; each recovery event picks
	// a uniform region and revives every dead node in it — correlated
	// failures (rack, pod or geography outages) under the same rates.
	FaultsRegional
)

// String implements fmt.Stringer.
func (f FaultsMode) String() string {
	switch f {
	case FaultsNone:
		return "none"
	case FaultsCrash:
		return "crash"
	case FaultsRegional:
		return "regional"
	default:
		return fmt.Sprintf("FaultsMode(%d)", int(f))
	}
}

// ParseFaults converts a CLI name.
func ParseFaults(s string) (FaultsMode, error) {
	switch s {
	case "none", "":
		return FaultsNone, nil
	case "crash":
		return FaultsCrash, nil
	case "regional":
		return FaultsRegional, nil
	}
	return 0, fmt.Errorf("sim: unknown faults mode %q (want none, crash or regional)", s)
}

// Config declares one simulated world. The zero value is not runnable; use
// the documented fields (Side, K, M are mandatory).
type Config struct {
	// Side is the lattice side L; the network has n = L² servers.
	Side int
	// Topology is torus (paper default) or bounded grid.
	Topology grid.Topology
	// K is the library size; M the per-node cache size.
	K, M int
	// Popularity declares the file popularity profile (zero value:
	// Uniform, the paper's simulation setting).
	Popularity PopSpec
	// PlacementMode is with-replacement (paper) or without (ablation).
	PlacementMode cache.Mode
	// PlacementPolicy transforms popularity into the placement profile
	// (zero value: Proportional, the paper's rule). See replication.
	PlacementPolicy replication.Policy
	// CapFactor parameterizes replication.Capped (0 = default factor).
	CapFactor float64
	// Strategy declares the assignment strategy (zero value: Nearest).
	Strategy StrategySpec
	// Requests is the number of sequential requests (0 → n, the paper's
	// one-request-per-server-on-average regime).
	Requests int
	// MissPolicy resolves unservable requests (zero value: MissResample).
	MissPolicy MissPolicy
	// Metrics selects the per-trial instrumentation level (zero value:
	// MetricsScalar; see MetricsMode).
	Metrics MetricsMode
	// Streams selects the request-phase RNG discipline (zero value:
	// StreamsInterleaved; see Streams).
	Streams Streams
	// Index selects the candidate-enumeration discipline for bounded-
	// radius strategies (zero value: IndexNone; see IndexMode).
	Index IndexMode
	// Churn selects the mid-trial placement-mutation discipline (zero
	// value: ChurnNone; see ChurnMode). Non-none churn requires a
	// positive ChurnRate.
	Churn ChurnMode
	// ChurnRate is the expected number of replica migration events per
	// request; events are applied between pipeline chunks from a
	// dedicated churn RNG stream, so the strategies always observe a
	// consistent placement and index.
	ChurnRate float64
	// Faults selects the node fault-injection discipline (zero value:
	// FaultsNone; see FaultsMode). Non-none faults require a positive
	// FaultRate and exclude MissPolicy == MissResample: the resampled
	// request stream conditions on cached files, not live ones, so a
	// faulted world would silently re-weight the workload — use
	// MissEscalate or MissOrigin, whose streams are unconditioned.
	Faults FaultsMode
	// FaultRate is the expected number of crash events per request
	// (under FaultsRegional each event fells a whole region). Events are
	// applied between pipeline chunks from a dedicated fault RNG stream.
	FaultRate float64
	// RecoverRate is the expected number of recovery events per request
	// — the MTTR-style re-admission knob. 0 means crashes are permanent
	// for the trial.
	RecoverRate float64
	// Hetero selects the node-heterogeneity regime (zero value:
	// HeteroNone; see HeteroMode). Non-none heterogeneity draws per-node
	// cache capacities M_u and service capacities C_u from Profile.
	Hetero HeteroMode
	// Profile selects the per-node capacity distribution under a
	// non-none Hetero (zero value: ProfileUniform, the degenerate
	// M_u ≡ M, C_u ≡ 1 profile; see CacheProfile).
	Profile CacheProfile
	// ArrivalRate is the expected number of node-arrival events per
	// request under HeteroArrival: vacant nodes join the network
	// mid-trial (placement grows, liveness admits them, strategies see
	// them at the next chunk barrier). Events draw from the same
	// dedicated hetero RNG stream as the capacity profile.
	ArrivalRate float64
	// CollectLinks is the pre-Metrics spelling of MetricsLinks, kept for
	// compatibility: it upgrades MetricsScalar to MetricsLinks.
	CollectLinks bool
	// Workers is the intra-trial shard count P. 0 (default) runs the
	// sequential engine, bit-identical to every pinned golden. P ≥ 1
	// engages the sharded engine: each pipeline chunk is partitioned into
	// fixed 64-request granules owned by P workers, with loads visible
	// per Shard's discipline and all merging done at the chunk barrier.
	// Requires Streams == StreamsSplit (the interleaved discipline fuses
	// generation into the strategy stream and is inherently serial).
	// Orthogonal to trial-level parallelism (Run's workers): a sharded
	// trial uses P goroutines by itself.
	Workers int
	// Shard selects the sharded engine's load-visibility discipline
	// (zero value: ShardDeterministic; see ShardMode). Only meaningful
	// with Workers ≥ 1.
	Shard ShardMode
	// Chunk overrides the request-pipeline block size (0 → the engine
	// default, 1024). Under Workers ≥ 1 a positive Chunk must be a
	// multiple of the 64-request shard granule so chunk boundaries never
	// split a granule. Smaller chunks tighten the racy mode's staleness
	// window and the churn cadence at the cost of more barriers.
	Chunk int
	// Seed is the deterministic root seed for this configuration.
	Seed uint64
}

// N returns the number of servers n = Side².
func (c Config) N() int { return c.Side * c.Side }

func (c Config) validate() error {
	if c.Side <= 0 {
		return fmt.Errorf("sim: Side must be positive, got %d", c.Side)
	}
	if c.K <= 0 || c.M <= 0 {
		return fmt.Errorf("sim: K and M must be positive, got K=%d M=%d", c.K, c.M)
	}
	if c.Requests < 0 {
		return fmt.Errorf("sim: Requests must be non-negative, got %d", c.Requests)
	}
	if c.Metrics < MetricsScalar || c.Metrics > MetricsStreaming {
		return fmt.Errorf("sim: unknown metrics mode %d", int(c.Metrics))
	}
	if c.Streams < StreamsInterleaved || c.Streams > StreamsSplit {
		return fmt.Errorf("sim: unknown streams discipline %d", int(c.Streams))
	}
	if c.Index < IndexNone || c.Index > IndexTiles {
		return fmt.Errorf("sim: unknown index mode %d", int(c.Index))
	}
	if c.Churn < ChurnNone || c.Churn > ChurnDrift {
		return fmt.Errorf("sim: unknown churn mode %d", int(c.Churn))
	}
	if c.Churn != ChurnNone && c.ChurnRate <= 0 {
		return fmt.Errorf("sim: churn mode %v needs a positive ChurnRate", c.Churn)
	}
	if c.Churn == ChurnNone && c.ChurnRate != 0 {
		return fmt.Errorf("sim: ChurnRate %v needs a churn mode (set Config.Churn)", c.ChurnRate)
	}
	if c.Faults < FaultsNone || c.Faults > FaultsRegional {
		return fmt.Errorf("sim: unknown faults mode %d", int(c.Faults))
	}
	if c.Faults != FaultsNone && c.FaultRate <= 0 {
		return fmt.Errorf("sim: faults mode %v needs a positive FaultRate", c.Faults)
	}
	if c.Faults == FaultsNone && (c.FaultRate != 0 || c.RecoverRate != 0) {
		return fmt.Errorf("sim: FaultRate/RecoverRate %v/%v need a faults mode (set Config.Faults)", c.FaultRate, c.RecoverRate)
	}
	if c.RecoverRate < 0 {
		return fmt.Errorf("sim: RecoverRate must be non-negative, got %v", c.RecoverRate)
	}
	if c.Faults != FaultsNone && c.MissPolicy == MissResample {
		return fmt.Errorf("sim: faults mode %v cannot combine with MissPolicy=resample (the resampled stream conditions on cached files, not live ones); use MissEscalate or MissOrigin", c.Faults)
	}
	if c.Hetero < HeteroNone || c.Hetero > HeteroArrival {
		return fmt.Errorf("sim: unknown hetero mode %d", int(c.Hetero))
	}
	if c.Profile < ProfileUniform || c.Profile > ProfilePowerLaw {
		return fmt.Errorf("sim: unknown cache profile %d", int(c.Profile))
	}
	if c.Hetero == HeteroNone && c.Profile != ProfileUniform {
		return fmt.Errorf("sim: Profile %v needs a hetero mode (set Config.Hetero)", c.Profile)
	}
	if c.Hetero != HeteroArrival && c.ArrivalRate != 0 {
		return fmt.Errorf("sim: ArrivalRate %v needs Hetero=arrival", c.ArrivalRate)
	}
	if c.Hetero == HeteroArrival && c.ArrivalRate <= 0 {
		return fmt.Errorf("sim: Hetero=arrival needs a positive ArrivalRate")
	}
	if c.Hetero == HeteroArrival && c.MissPolicy == MissResample {
		return fmt.Errorf("sim: Hetero=arrival cannot combine with MissPolicy=resample (arrivals grow the cached set mid-trial, invalidating the conditioned stream); use MissEscalate or MissOrigin")
	}
	if c.CollectLinks && c.Metrics == MetricsStreaming {
		return fmt.Errorf("sim: CollectLinks materializes per-link loads; it cannot combine with MetricsStreaming")
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: Workers must be non-negative, got %d", c.Workers)
	}
	if c.Shard < ShardDeterministic || c.Shard > ShardRacy {
		return fmt.Errorf("sim: unknown shard mode %d", int(c.Shard))
	}
	if c.Workers == 0 && c.Shard != ShardDeterministic {
		return fmt.Errorf("sim: shard mode %v needs intra-trial workers (set Config.Workers)", c.Shard)
	}
	if c.Workers > 0 && c.Streams != StreamsSplit {
		return fmt.Errorf("sim: Workers=%d needs Streams=split (the interleaved discipline is inherently serial)", c.Workers)
	}
	if c.Chunk < 0 {
		return fmt.Errorf("sim: Chunk must be non-negative, got %d", c.Chunk)
	}
	if c.Workers > 0 && c.Chunk > 0 && c.Chunk%shardGranule != 0 {
		return fmt.Errorf("sim: Workers=%d needs Chunk to be a multiple of the %d-request shard granule, got %d", c.Workers, shardGranule, c.Chunk)
	}
	return nil
}

// Result holds the metrics of a single trial.
type Result struct {
	MaxLoad   int     // L = max_i T_i (Definition 1)
	MeanCost  float64 // C = average hops over requests (Definition 1)
	Requests  int     // requests issued
	Escalated int     // radius misses that widened to r = ∞
	Backhaul  int     // requests served from upstream at the origin
	Uncached  int     // library files with zero replicas in this trial

	// Churn counters, populated only under a non-none Config.Churn.
	ChurnEvents  int // replica migrations applied this trial
	ChurnSkipped int // scheduled events dropped as infeasible (see ChurnMode)

	// Fault-injection metrics, populated only under a non-none
	// Config.Faults (Faulted marks them live so all-zero outcomes stay
	// distinguishable from FaultsNone).
	Faulted       bool    // the fault scheduler ran for this trial
	FaultEvents   int     // crash events applied (regions under FaultsRegional)
	RecoverEvents int     // recovery events applied
	FaultSkipped  int     // scheduled events dropped (no live/dead node to hit)
	DeadNodes     int     // dead nodes at trial end
	DeadLoad      int     // load stranded on servers at their crash instants
	Retried       int     // requests that rejected ≥ 1 dead candidate (degraded path)
	Availability  float64 // served in-network: (Requests - Backhaul) / Requests

	// Node-arrival counters, populated only under Hetero == HeteroArrival
	// (HeteroCapacity leaves them zero, which is what keeps the
	// degenerate-profile Result equal to HeteroNone's field for field).
	ArrivalEvents  int // vacant nodes admitted this trial
	ArrivalSkipped int // scheduled arrivals dropped (no vacant node left)
	Vacant         int // nodes still vacant at trial end

	// Link metrics, populated only in MetricsLinks mode (or the
	// compatibility Config.CollectLinks spelling).
	MaxLinkLoad    int64   // traffic on the hottest directed link
	LinkCongestion float64 // max/mean link load (1 = perfectly even)

	// Streaming metrics, populated only in MetricsStreaming mode:
	// computed through constant-memory accumulators, never materializing
	// an O(n) metric vector.
	Streamed bool    // streaming accumulators ran for this trial
	HopMax   int     // longest single delivery path (hops)
	HopStd   float64 // sample std dev of per-request hops
	LoadP99  int     // 99th-percentile final node load
	// LinkMaxApprox upper-bounds the busiest directed link's traffic via
	// a space-saving heavy-hitter sketch over link ids (stats.
	// SpaceSaving, capacity LinkSketchCap): ≥ the exact MetricsLinks
	// maximum, exceeding it by at most totalHops/LinkSketchCap, and
	// exact on worlds whose active link count fits the sketch. Reported
	// only on worlds with n ≤ LinkSketchMaxN nodes; beyond that it is
	// 0 — a k-counter summary of near-uniform wide-world link loads
	// could only report noise (see LinkSketchMaxN for the full
	// argument).
	LinkMaxApprox int64
}

// lastWorld memoizes the most recently compiled world, so callers that
// loop RunTrial over one configuration (benchmarks, simple drivers) get
// compile-once behaviour without managing a World themselves. Config is a
// comparable value type, so the lookup is a single struct compare.
var lastWorld atomic.Pointer[World]

// RunTrial executes one independent trial (trial index t under cfg.Seed).
// Identical (cfg, t) pairs produce identical results. This is a thin
// wrapper over Compile + World.RunTrial; use those directly to amortize
// compilation across many trials of many configurations.
func RunTrial(cfg Config, t uint64) (Result, error) {
	w := lastWorld.Load()
	if w == nil || w.cfg != cfg {
		var err error
		if w, err = Compile(cfg); err != nil {
			return Result{}, err
		}
		lastWorld.Store(w)
	}
	return w.RunTrial(t), nil
}

// buildStrategy materializes cfg.Strategy over a concrete world.
func buildStrategy(cfg Config, g *grid.Grid, p *cache.Placement) core.Strategy {
	sp := cfg.Strategy
	switch sp.Kind {
	case Nearest:
		return core.NewNearestReplica(g, p)
	case TwoChoices:
		return core.NewTwoChoice(g, p, core.TwoChoiceConfig{
			Radius:             sp.Radius,
			Choices:            sp.Choices,
			WithoutReplacement: sp.WithoutReplacement,
			Beta:               sp.Beta,
			NoEscalate:         cfg.MissPolicy == MissOrigin,
		})
	case OneChoiceRandom:
		return core.NewTwoChoice(g, p, core.TwoChoiceConfig{
			Radius:     sp.Radius,
			Choices:    1,
			NoEscalate: cfg.MissPolicy == MissOrigin,
		})
	case Oracle:
		return core.NewLeastLoadedOracle(g, p, sp.Radius)
	default:
		panic(fmt.Sprintf("sim: unknown strategy kind %d", sp.Kind))
	}
}

// Aggregate folds trial results into experiment-level statistics.
type Aggregate struct {
	Trials    int
	MaxLoad   stats.Summary
	MeanCost  stats.Summary
	Escalated stats.Summary // per-trial escalation fraction
	Backhaul  stats.Summary // per-trial backhaul fraction
	Uncached  stats.Summary // per-trial uncached-file count

	// Link metrics (only meaningful in MetricsLinks mode).
	MaxLinkLoad    stats.Summary
	LinkCongestion stats.Summary

	// Streaming metrics (only meaningful in MetricsStreaming mode).
	HopMax        stats.Summary
	HopStd        stats.Summary
	LoadP99       stats.Summary
	LinkMaxApprox stats.Summary

	// Churn counters (only meaningful under a non-none Config.Churn).
	ChurnEvents  stats.Summary
	ChurnSkipped stats.Summary

	// Fault-injection metrics (only meaningful under a non-none
	// Config.Faults). Availability and Retried are per-trial fractions
	// of requests; the rest are per-trial counts.
	Availability  stats.Summary
	Retried       stats.Summary
	FaultEvents   stats.Summary
	RecoverEvents stats.Summary
	FaultSkipped  stats.Summary
	DeadNodes     stats.Summary
	DeadLoad      stats.Summary

	// Node-arrival counters (only meaningful under Hetero ==
	// HeteroArrival).
	ArrivalEvents  stats.Summary
	ArrivalSkipped stats.Summary
	Vacant         stats.Summary
}

// Add folds one trial result into the aggregate.
func (a *Aggregate) Add(r Result) {
	a.Trials++
	a.MaxLoad.Add(float64(r.MaxLoad))
	a.MeanCost.Add(r.MeanCost)
	if r.Requests > 0 {
		a.Escalated.Add(float64(r.Escalated) / float64(r.Requests))
		a.Backhaul.Add(float64(r.Backhaul) / float64(r.Requests))
	}
	a.Uncached.Add(float64(r.Uncached))
	if r.LinkCongestion > 0 {
		a.MaxLinkLoad.Add(float64(r.MaxLinkLoad))
		a.LinkCongestion.Add(r.LinkCongestion)
	}
	if r.Streamed {
		a.HopMax.Add(float64(r.HopMax))
		a.HopStd.Add(r.HopStd)
		a.LoadP99.Add(float64(r.LoadP99))
		a.LinkMaxApprox.Add(float64(r.LinkMaxApprox))
	}
	if r.ChurnEvents > 0 || r.ChurnSkipped > 0 {
		a.ChurnEvents.Add(float64(r.ChurnEvents))
		a.ChurnSkipped.Add(float64(r.ChurnSkipped))
	}
	if r.Faulted {
		a.Availability.Add(r.Availability)
		if r.Requests > 0 {
			a.Retried.Add(float64(r.Retried) / float64(r.Requests))
		}
		a.FaultEvents.Add(float64(r.FaultEvents))
		a.RecoverEvents.Add(float64(r.RecoverEvents))
		a.FaultSkipped.Add(float64(r.FaultSkipped))
		a.DeadNodes.Add(float64(r.DeadNodes))
		a.DeadLoad.Add(float64(r.DeadLoad))
	}
	if r.ArrivalEvents > 0 || r.ArrivalSkipped > 0 || r.Vacant > 0 {
		a.ArrivalEvents.Add(float64(r.ArrivalEvents))
		a.ArrivalSkipped.Add(float64(r.ArrivalSkipped))
		a.Vacant.Add(float64(r.Vacant))
	}
}

// Merge folds another aggregate into a (parallel reduction).
func (a *Aggregate) Merge(o Aggregate) {
	a.Trials += o.Trials
	a.MaxLoad.Merge(o.MaxLoad)
	a.MeanCost.Merge(o.MeanCost)
	a.Escalated.Merge(o.Escalated)
	a.Backhaul.Merge(o.Backhaul)
	a.Uncached.Merge(o.Uncached)
	a.MaxLinkLoad.Merge(o.MaxLinkLoad)
	a.LinkCongestion.Merge(o.LinkCongestion)
	a.HopMax.Merge(o.HopMax)
	a.HopStd.Merge(o.HopStd)
	a.LoadP99.Merge(o.LoadP99)
	a.LinkMaxApprox.Merge(o.LinkMaxApprox)
	a.ChurnEvents.Merge(o.ChurnEvents)
	a.ChurnSkipped.Merge(o.ChurnSkipped)
	a.Availability.Merge(o.Availability)
	a.Retried.Merge(o.Retried)
	a.FaultEvents.Merge(o.FaultEvents)
	a.RecoverEvents.Merge(o.RecoverEvents)
	a.FaultSkipped.Merge(o.FaultSkipped)
	a.DeadNodes.Merge(o.DeadNodes)
	a.DeadLoad.Merge(o.DeadLoad)
	a.ArrivalEvents.Merge(o.ArrivalEvents)
	a.ArrivalSkipped.Merge(o.ArrivalSkipped)
	a.Vacant.Merge(o.Vacant)
}

// String renders the headline metrics.
func (a Aggregate) String() string {
	return fmt.Sprintf("L=%.3f±%.3f C=%.3f±%.3f (trials=%d)",
		a.MaxLoad.Mean(), a.MaxLoad.CI95(), a.MeanCost.Mean(), a.MeanCost.CI95(), a.Trials)
}
