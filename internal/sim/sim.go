// Package sim is the experiment engine: it assembles a cache network
// (topology + placement + strategy) from a declarative Config, replays the
// paper's request process (n sequential requests, uniform origins, files
// drawn from the popularity profile), and aggregates the two metrics of
// Definition 1 — maximum load L and communication cost C — over many
// independent trials run in parallel.
package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/replication"
	"repro/internal/stats"
)

// PopKind selects the popularity profile family.
type PopKind int

const (
	// PopUniform is p_i = 1/K.
	PopUniform PopKind = iota
	// PopZipf is p_i ∝ 1/i^γ.
	PopZipf
)

// PopSpec declares the popularity profile.
type PopSpec struct {
	Kind  PopKind
	Gamma float64 // Zipf exponent; ignored for PopUniform
}

// Build materializes the profile for library size k.
func (ps PopSpec) Build(k int) dist.Popularity {
	switch ps.Kind {
	case PopUniform:
		return dist.NewUniform(k)
	case PopZipf:
		return dist.NewZipf(k, ps.Gamma)
	default:
		panic(fmt.Sprintf("sim: unknown popularity kind %d", ps.Kind))
	}
}

// StrategyKind selects the assignment strategy family.
type StrategyKind int

const (
	// Nearest is Strategy I.
	Nearest StrategyKind = iota
	// TwoChoices is Strategy II (and its d-choice generalization).
	TwoChoices
	// OneChoiceRandom is the load-blind random-replica baseline.
	OneChoiceRandom
	// Oracle is the full-information least-loaded-in-radius baseline.
	Oracle
)

// String implements fmt.Stringer.
func (s StrategyKind) String() string {
	switch s {
	case Nearest:
		return "nearest"
	case TwoChoices:
		return "two-choices"
	case OneChoiceRandom:
		return "one-choice"
	case Oracle:
		return "oracle"
	default:
		return fmt.Sprintf("StrategyKind(%d)", int(s))
	}
}

// StrategySpec declares the assignment strategy.
type StrategySpec struct {
	Kind StrategyKind
	// Radius is the proximity constraint in hops for the choice-based
	// strategies (core.RadiusUnbounded = ∞). Ignored by Nearest.
	Radius int
	// Choices is d for TwoChoices (0 → 2).
	Choices int
	// WithoutReplacement samples candidates distinct when possible.
	WithoutReplacement bool
	// Beta in (0,1) selects the (1+β)-choice process for TwoChoices.
	Beta float64
}

// MissPolicy resolves requests the placement cannot serve (DESIGN.md §4.4).
type MissPolicy int

const (
	// MissResample conditions the request stream on files cached
	// somewhere in the network (popularity renormalized), and escalates
	// to r = ∞ when the radius holds no replica. Default for paper
	// reproductions.
	MissResample MissPolicy = iota
	// MissEscalate keeps the unconditioned request stream; uncached
	// files are served via backhaul at the origin, radius misses escalate.
	MissEscalate
	// MissOrigin keeps the unconditioned stream and serves any miss
	// (uncached file or empty radius) via backhaul at the origin.
	MissOrigin
)

// String implements fmt.Stringer.
func (m MissPolicy) String() string {
	switch m {
	case MissResample:
		return "resample"
	case MissEscalate:
		return "escalate"
	case MissOrigin:
		return "origin"
	default:
		return fmt.Sprintf("MissPolicy(%d)", int(m))
	}
}

// Config declares one simulated world. The zero value is not runnable; use
// the documented fields (Side, K, M are mandatory).
type Config struct {
	// Side is the lattice side L; the network has n = L² servers.
	Side int
	// Topology is torus (paper default) or bounded grid.
	Topology grid.Topology
	// K is the library size; M the per-node cache size.
	K, M int
	// Popularity declares the file popularity profile (zero value:
	// Uniform, the paper's simulation setting).
	Popularity PopSpec
	// PlacementMode is with-replacement (paper) or without (ablation).
	PlacementMode cache.Mode
	// PlacementPolicy transforms popularity into the placement profile
	// (zero value: Proportional, the paper's rule). See replication.
	PlacementPolicy replication.Policy
	// CapFactor parameterizes replication.Capped (0 = default factor).
	CapFactor float64
	// Strategy declares the assignment strategy (zero value: Nearest).
	Strategy StrategySpec
	// Requests is the number of sequential requests (0 → n, the paper's
	// one-request-per-server-on-average regime).
	Requests int
	// MissPolicy resolves unservable requests (zero value: MissResample).
	MissPolicy MissPolicy
	// CollectLinks additionally routes every delivery hop-by-hop (XY
	// routing) and reports link-congestion metrics in Result.
	CollectLinks bool
	// Seed is the deterministic root seed for this configuration.
	Seed uint64
}

// N returns the number of servers n = Side².
func (c Config) N() int { return c.Side * c.Side }

func (c Config) validate() error {
	if c.Side <= 0 {
		return fmt.Errorf("sim: Side must be positive, got %d", c.Side)
	}
	if c.K <= 0 || c.M <= 0 {
		return fmt.Errorf("sim: K and M must be positive, got K=%d M=%d", c.K, c.M)
	}
	if c.Requests < 0 {
		return fmt.Errorf("sim: Requests must be non-negative, got %d", c.Requests)
	}
	return nil
}

// Result holds the metrics of a single trial.
type Result struct {
	MaxLoad   int     // L = max_i T_i (Definition 1)
	MeanCost  float64 // C = average hops over requests (Definition 1)
	Requests  int     // requests issued
	Escalated int     // radius misses that widened to r = ∞
	Backhaul  int     // requests served from upstream at the origin
	Uncached  int     // library files with zero replicas in this trial

	// Link metrics, populated only when Config.CollectLinks is set.
	MaxLinkLoad    int64   // traffic on the hottest directed link
	LinkCongestion float64 // max/mean link load (1 = perfectly even)
}

// lastWorld memoizes the most recently compiled world, so callers that
// loop RunTrial over one configuration (benchmarks, simple drivers) get
// compile-once behaviour without managing a World themselves. Config is a
// comparable value type, so the lookup is a single struct compare.
var lastWorld atomic.Pointer[World]

// RunTrial executes one independent trial (trial index t under cfg.Seed).
// Identical (cfg, t) pairs produce identical results. This is a thin
// wrapper over Compile + World.RunTrial; use those directly to amortize
// compilation across many trials of many configurations.
func RunTrial(cfg Config, t uint64) (Result, error) {
	w := lastWorld.Load()
	if w == nil || w.cfg != cfg {
		var err error
		if w, err = Compile(cfg); err != nil {
			return Result{}, err
		}
		lastWorld.Store(w)
	}
	return w.RunTrial(t), nil
}

// buildStrategy materializes cfg.Strategy over a concrete world.
func buildStrategy(cfg Config, g *grid.Grid, p *cache.Placement) core.Strategy {
	sp := cfg.Strategy
	switch sp.Kind {
	case Nearest:
		return core.NewNearestReplica(g, p)
	case TwoChoices:
		return core.NewTwoChoice(g, p, core.TwoChoiceConfig{
			Radius:             sp.Radius,
			Choices:            sp.Choices,
			WithoutReplacement: sp.WithoutReplacement,
			Beta:               sp.Beta,
			NoEscalate:         cfg.MissPolicy == MissOrigin,
		})
	case OneChoiceRandom:
		return core.NewTwoChoice(g, p, core.TwoChoiceConfig{
			Radius:     sp.Radius,
			Choices:    1,
			NoEscalate: cfg.MissPolicy == MissOrigin,
		})
	case Oracle:
		return core.NewLeastLoadedOracle(g, p, sp.Radius)
	default:
		panic(fmt.Sprintf("sim: unknown strategy kind %d", sp.Kind))
	}
}

// Aggregate folds trial results into experiment-level statistics.
type Aggregate struct {
	Trials    int
	MaxLoad   stats.Summary
	MeanCost  stats.Summary
	Escalated stats.Summary // per-trial escalation fraction
	Backhaul  stats.Summary // per-trial backhaul fraction
	Uncached  stats.Summary // per-trial uncached-file count

	// Link metrics (only meaningful when Config.CollectLinks is set).
	MaxLinkLoad    stats.Summary
	LinkCongestion stats.Summary
}

// Add folds one trial result into the aggregate.
func (a *Aggregate) Add(r Result) {
	a.Trials++
	a.MaxLoad.Add(float64(r.MaxLoad))
	a.MeanCost.Add(r.MeanCost)
	if r.Requests > 0 {
		a.Escalated.Add(float64(r.Escalated) / float64(r.Requests))
		a.Backhaul.Add(float64(r.Backhaul) / float64(r.Requests))
	}
	a.Uncached.Add(float64(r.Uncached))
	if r.LinkCongestion > 0 {
		a.MaxLinkLoad.Add(float64(r.MaxLinkLoad))
		a.LinkCongestion.Add(r.LinkCongestion)
	}
}

// Merge folds another aggregate into a (parallel reduction).
func (a *Aggregate) Merge(o Aggregate) {
	a.Trials += o.Trials
	a.MaxLoad.Merge(o.MaxLoad)
	a.MeanCost.Merge(o.MeanCost)
	a.Escalated.Merge(o.Escalated)
	a.Backhaul.Merge(o.Backhaul)
	a.Uncached.Merge(o.Uncached)
	a.MaxLinkLoad.Merge(o.MaxLinkLoad)
	a.LinkCongestion.Merge(o.LinkCongestion)
}

// String renders the headline metrics.
func (a Aggregate) String() string {
	return fmt.Sprintf("L=%.3f±%.3f C=%.3f±%.3f (trials=%d)",
		a.MaxLoad.Mean(), a.MaxLoad.CI95(), a.MeanCost.Mean(), a.MeanCost.CI95(), a.Trials)
}
