//go:build !race

package sim

// raceEnabled reports that the race detector is instrumenting this build.
const raceEnabled = false
