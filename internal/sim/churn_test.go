package sim

import (
	"testing"
)

// churnBaseCfg is the shared fixture for the churn engine tests: big
// enough to cross several pipeline chunks (so the churn phase actually
// runs mid-trial), small enough to stay fast.
func churnBaseCfg() Config {
	return Config{Side: 16, K: 300, M: 3,
		Popularity: PopSpec{Kind: PopZipf, Gamma: 0.9},
		Strategy:   StrategySpec{Kind: TwoChoices, Radius: 4},
		Requests:   4096, Seed: 0x5EED}
}

// TestChurnValidation pins the Config contract: churn modes need a
// positive rate, a rate needs a mode, out-of-range modes are rejected.
func TestChurnValidation(t *testing.T) {
	cfg := churnBaseCfg()
	cfg.Churn = ChurnReplicas
	if _, err := Compile(cfg); err == nil {
		t.Error("churn without rate accepted")
	}
	cfg = churnBaseCfg()
	cfg.ChurnRate = 0.5
	if _, err := Compile(cfg); err == nil {
		t.Error("rate without churn mode accepted")
	}
	cfg = churnBaseCfg()
	cfg.Churn = ChurnMode(99)
	if _, err := Compile(cfg); err == nil {
		t.Error("unknown churn mode accepted")
	}
	cfg = churnBaseCfg()
	cfg.Churn = ChurnDrift
	cfg.ChurnRate = 0.25
	if _, err := Compile(cfg); err != nil {
		t.Errorf("valid churn config rejected: %v", err)
	}
}

// TestChurnDeterminism: identical (cfg, t) pairs must produce identical
// results whether they run through a fresh world, a reused runner, or
// the pooled convenience path — the same contract every other engine
// discipline honours.
func TestChurnDeterminism(t *testing.T) {
	for _, churn := range []ChurnMode{ChurnReplicas, ChurnDrift} {
		for _, index := range []IndexMode{IndexNone, IndexTiles} {
			cfg := churnBaseCfg()
			cfg.Churn = churn
			cfg.ChurnRate = 0.4
			cfg.Index = index
			w1, err := Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reused := w1.NewRunner()
			for trial := uint64(0); trial < 3; trial++ {
				a := reused.RunTrial(trial)
				b := w2.NewRunner().RunTrial(trial)
				c := w2.RunTrial(trial)
				if a != b || a != c {
					t.Fatalf("churn=%v index=%v t=%d: reused %+v fresh %+v pooled %+v",
						churn, index, trial, a, b, c)
				}
				if a.ChurnEvents == 0 {
					t.Fatalf("churn=%v index=%v t=%d: no churn events applied", churn, index, trial)
				}
			}
		}
	}
}

// TestChurnScheduleIndexInvariant: the churn stream is independent of
// the candidate-enumeration discipline and of the request-stream
// discipline — event draws depend only on placement content, which is
// identical across Index and Streams. The applied/skipped schedule must
// therefore match exactly, even though the load results differ (the
// strategies are distinct seeded processes).
func TestChurnScheduleIndexInvariant(t *testing.T) {
	for _, churn := range []ChurnMode{ChurnReplicas, ChurnDrift} {
		type variant struct {
			index   IndexMode
			streams Streams
		}
		var ref Result
		for i, v := range []variant{
			{IndexNone, StreamsInterleaved},
			{IndexTiles, StreamsInterleaved},
			{IndexNone, StreamsSplit},
			{IndexTiles, StreamsSplit},
		} {
			cfg := churnBaseCfg()
			cfg.Churn = churn
			cfg.ChurnRate = 0.4
			cfg.Index = v.index
			cfg.Streams = v.streams
			res, err := RunTrial(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = res
				continue
			}
			if res.ChurnEvents != ref.ChurnEvents || res.ChurnSkipped != ref.ChurnSkipped {
				t.Errorf("churn=%v index=%v streams=%v: schedule (%d,%d) != reference (%d,%d)",
					churn, v.index, v.streams,
					res.ChurnEvents, res.ChurnSkipped, ref.ChurnEvents, ref.ChurnSkipped)
			}
		}
	}
}

// TestChurnMovesLoad sanity-checks that churn actually perturbs the
// measured process relative to the frozen placement: same seed, same
// request streams, different serving geography.
func TestChurnMovesLoad(t *testing.T) {
	frozen := churnBaseCfg()
	churned := churnBaseCfg()
	churned.Churn = ChurnReplicas
	churned.ChurnRate = 2
	a, err := RunTrial(frozen, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(churned, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.ChurnEvents == 0 {
		t.Fatal("no churn events at rate 2")
	}
	if a.MaxLoad == b.MaxLoad && a.MeanCost == b.MeanCost {
		t.Fatalf("churn left the trial untouched: %+v vs %+v", a, b)
	}
	if a.Uncached != b.Uncached {
		t.Fatalf("churn changed the cached-file set: %d vs %d uncached", a.Uncached, b.Uncached)
	}
}

// TestChurnSteadyStateAllocs extends the engine's allocation-free
// contract to the churn path: a warmed Runner allocates nothing per
// trial under either churn mode, with and without the tile index —
// migrations, swaps, drift ticks and drift-sampler rebuilds included.
func TestChurnSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and disables pool caching")
	}
	for _, variant := range []struct {
		name string
		mut  func(*Config)
	}{
		{"replicas", func(c *Config) { c.Churn = ChurnReplicas; c.ChurnRate = 0.5 }},
		{"drift", func(c *Config) { c.Churn = ChurnDrift; c.ChurnRate = 0.5 }},
		{"replicas-tiles-streaming", func(c *Config) {
			c.Churn = ChurnReplicas
			c.ChurnRate = 0.5
			c.Index = IndexTiles
			c.Metrics = MetricsStreaming
			c.Streams = StreamsSplit
		}},
		{"drift-tiles", func(c *Config) {
			c.Churn = ChurnDrift
			c.ChurnRate = 0.5
			c.Index = IndexTiles
		}},
	} {
		cfg := paperScaleCfg()
		variant.mut(&cfg)
		w, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := w.NewRunner()
		if res := r.RunTrial(0); res.ChurnEvents == 0 {
			t.Fatalf("%s: warm-up trial applied no churn", variant.name)
		}
		r.RunTrial(1)
		trial := uint64(2)
		if n := testing.AllocsPerRun(3, func() {
			r.RunTrial(trial)
			trial++
		}); n != 0 {
			t.Errorf("%s: steady-state Runner.RunTrial allocates %.1f/op, want 0", variant.name, n)
		}
	}
}
