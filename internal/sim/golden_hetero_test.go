package sim

import "testing"

// heteroPin is one (config, trial) → Result pair captured from the
// heterogeneity engine at introduction time. The hetero regimes are new
// seeded processes — HeteroNone never derives the namespace-8 stream
// and is frozen by the six existing golden matrices, whose configs all
// carry the zero-valued hetero fields — so these pins freeze the
// profile draws and the arrival schedule from day one: any change to
// the per-node cache-size draws (two-tier coin, power-law inverse
// transform, clamps), the service-capacity weighting (capMultLCM
// multipliers, WeightedLoads comparison), the vacancy coin, the
// arrival credit accumulator, the vacant-list swap-delete order, or
// the rebuild-on-arrival splice that perturbs seeded trajectories
// must be deliberate and re-pinned.
type heteroPin struct {
	name  string
	trial uint64
	cfg   Config
	want  Result
}

// TestGoldenMatrixHetero replays the hetero-mode matrix (hetero mode ×
// profile × strategy × index × streams, plus churn-composed,
// fault-composed, streaming-metrics and sharded variants) against the
// captured outputs.
func TestGoldenMatrixHetero(t *testing.T) {
	for _, p := range heteroPins {
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s t=%d: %v", p.name, p.trial, err)
		}
		if got != p.want {
			t.Errorf("%s t=%d:\n got %+v\nwant %+v", p.name, p.trial, got, p.want)
		}
	}
}

// TestHeteroDegenerateBitIdentical pins the degenerate-profile
// identity: HeteroCapacity with ProfileUniform draws every M_u = M and
// every C_u = 1, allocates no multiplier vector, and therefore installs
// no weighted view — the engine must reproduce the homogeneous
// trajectories draw for draw, not merely statistically. Representative
// pins from the head, index and churn matrices are replayed with the
// hetero fields spelled out; any divergence means the uniform profile
// consumed RNG or perturbed the comparison path.
func TestHeteroDegenerateBitIdentical(t *testing.T) {
	for _, i := range []int{0, 9, 25, 60, 101} {
		p := headPins[i%len(headPins)]
		p.cfg.Hetero = HeteroCapacity
		p.cfg.Profile = ProfileUniform
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if got != p.want {
			t.Errorf("head pin %s t=%d diverged under degenerate HeteroCapacity:\n got %+v\nwant %+v",
				p.name, p.trial, got, p.want)
		}
	}
	for _, i := range []int{0, 11, 29, 44} {
		p := indexPins[i%len(indexPins)]
		p.cfg.Hetero = HeteroCapacity
		p.cfg.Profile = ProfileUniform
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if got != p.want {
			t.Errorf("index pin %s t=%d diverged under degenerate HeteroCapacity:\n got %+v\nwant %+v",
				p.name, p.trial, got, p.want)
		}
	}
	for _, i := range []int{0, 7, 19} {
		p := churnPins[i%len(churnPins)]
		p.cfg.Hetero = HeteroCapacity
		p.cfg.Profile = ProfileUniform
		got, err := RunTrial(p.cfg, p.trial)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if got != p.want {
			t.Errorf("churn pin %s t=%d diverged under degenerate HeteroCapacity:\n got %+v\nwant %+v",
				p.name, p.trial, got, p.want)
		}
	}
}

var heteroPins = []heteroPin{
	{name: "capacity/two-tier/two-choices/none/interleaved", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 118, MeanCost: 5.372802734375, Requests: 4096, Escalated: 2811, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/none/interleaved", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 112, MeanCost: 5.358154296875, Requests: 4096, Escalated: 2822, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/tiles/interleaved", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Index: 1, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 121, MeanCost: 5.376953125, Requests: 4096, Escalated: 2812, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/tiles/interleaved", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Index: 1, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 104, MeanCost: 5.39208984375, Requests: 4096, Escalated: 2826, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/none/split", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Streams: 1, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 104, MeanCost: 5.43798828125, Requests: 4096, Escalated: 2879, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/none/split", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Streams: 1, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 127, MeanCost: 5.4423828125, Requests: 4096, Escalated: 2875, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/power-law/two-choices/none/interleaved", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Hetero: 1, Profile: 2, Seed: 0x63},
		want: Result{MaxLoad: 177, MeanCost: 5.3525390625, Requests: 4096, Escalated: 2783, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/power-law/two-choices/none/interleaved", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Hetero: 1, Profile: 2, Seed: 0x63},
		want: Result{MaxLoad: 217, MeanCost: 5.33349609375, Requests: 4096, Escalated: 2787, Backhaul: 0, Uncached: 25, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/power-law/two-choices/tiles/split", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Streams: 1, Index: 1, Hetero: 1, Profile: 2, Seed: 0x63},
		want: Result{MaxLoad: 186, MeanCost: 5.421630859375, Requests: 4096, Escalated: 2826, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/power-law/two-choices/tiles/split", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Streams: 1, Index: 1, Hetero: 1, Profile: 2, Seed: 0x63},
		want: Result{MaxLoad: 212, MeanCost: 5.44775390625, Requests: 4096, Escalated: 2850, Backhaul: 0, Uncached: 25, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/nearest", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 0}, Requests: 4096, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 113, MeanCost: 4.857177734375, Requests: 4096, Escalated: 0, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/nearest", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 0}, Requests: 4096, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 119, MeanCost: 4.897216796875, Requests: 4096, Escalated: 0, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/power-law/oracle/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 3, Radius: 3}, Requests: 4096, Index: 1, Hetero: 1, Profile: 2, Seed: 0x63},
		want: Result{MaxLoad: 151, MeanCost: 5.378173828125, Requests: 4096, Escalated: 2821, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/power-law/oracle/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 3, Radius: 3}, Requests: 4096, Index: 1, Hetero: 1, Profile: 2, Seed: 0x63},
		want: Result{MaxLoad: 188, MeanCost: 5.260498046875, Requests: 4096, Escalated: 2756, Backhaul: 0, Uncached: 25, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/one-choice", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 2, Radius: 3}, Requests: 4096, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 121, MeanCost: 5.31005859375, Requests: 4096, Escalated: 2766, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/one-choice", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 2, Radius: 3}, Requests: 4096, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 114, MeanCost: 5.31787109375, Requests: 4096, Escalated: 2800, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/churn-replicas", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Churn: 1, ChurnRate: 0.5, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 94, MeanCost: 5.3544921875, Requests: 4096, Escalated: 2802, Backhaul: 0, Uncached: 33, ChurnEvents: 1482, ChurnSkipped: 54, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/churn-replicas", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Churn: 1, ChurnRate: 0.5, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 90, MeanCost: 5.35791015625, Requests: 4096, Escalated: 2795, Backhaul: 0, Uncached: 33, ChurnEvents: 1493, ChurnSkipped: 43, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/power-law/two-choices/churn-drift", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Churn: 2, ChurnRate: 0.5, Hetero: 1, Profile: 2, Seed: 0x63},
		want: Result{MaxLoad: 219, MeanCost: 5.357666015625, Requests: 4096, Escalated: 2797, Backhaul: 0, Uncached: 33, ChurnEvents: 1485, ChurnSkipped: 51, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/power-law/two-choices/churn-drift", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Churn: 2, ChurnRate: 0.5, Hetero: 1, Profile: 2, Seed: 0x63},
		want: Result{MaxLoad: 169, MeanCost: 5.26708984375, Requests: 4096, Escalated: 2758, Backhaul: 0, Uncached: 25, ChurnEvents: 1489, ChurnSkipped: 47, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/faults-crash", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 115, MeanCost: 3.98779296875, Requests: 4096, Escalated: 2110, Backhaul: 1044, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 918, Retried: 313, Availability: 0.7451171875, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/faults-crash", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 91, MeanCost: 4.000732421875, Requests: 4096, Escalated: 2126, Backhaul: 1084, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 31, DeadLoad: 830, Retried: 405, Availability: 0.7353515625, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/streaming", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Metrics: 2, Streams: 1, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 104, MeanCost: 5.43798828125, Requests: 4096, Escalated: 2879, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, Streamed: true, HopMax: 12, HopStd: 2.693557140060985, LoadP99: 102, LinkMaxApprox: 86}},
	{name: "capacity/two-tier/two-choices/streaming", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Metrics: 2, Streams: 1, Hetero: 1, Profile: 1, Seed: 0x63},
		want: Result{MaxLoad: 127, MeanCost: 5.4423828125, Requests: 4096, Escalated: 2875, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, Streamed: true, HopMax: 12, HopStd: 2.691296619739495, LoadP99: 112, LinkMaxApprox: 83}},
	{name: "arrival/two-tier/two-choices", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Hetero: 2, Profile: 1, ArrivalRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 81, MeanCost: 3.90625, Requests: 4096, Escalated: 2078, Backhaul: 1118, Uncached: 52, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 8, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "arrival/two-tier/two-choices", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Hetero: 2, Profile: 1, ArrivalRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 85, MeanCost: 3.85107421875, Requests: 4096, Escalated: 2045, Backhaul: 1200, Uncached: 48, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 3, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "arrival/power-law/two-choices/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Hetero: 2, Profile: 2, ArrivalRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 175, MeanCost: 4.00927734375, Requests: 4096, Escalated: 2120, Backhaul: 1094, Uncached: 49, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 8, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "arrival/power-law/two-choices/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Index: 1, Hetero: 2, Profile: 2, ArrivalRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 182, MeanCost: 4.24609375, Requests: 4096, Escalated: 2245, Backhaul: 825, Uncached: 35, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 3, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "arrival/power-law/two-choices/churn-replicas", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Churn: 1, ChurnRate: 0.5, Hetero: 2, Profile: 2, ArrivalRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 207, MeanCost: 4.046630859375, Requests: 4096, Escalated: 2150, Backhaul: 1083, Uncached: 49, ChurnEvents: 1270, ChurnSkipped: 266, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 8, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "arrival/power-law/two-choices/churn-replicas", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Churn: 1, ChurnRate: 0.5, Hetero: 2, Profile: 2, ArrivalRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 194, MeanCost: 4.2578125, Requests: 4096, Escalated: 2249, Backhaul: 844, Uncached: 35, ChurnEvents: 1353, ChurnSkipped: 183, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 3, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "arrival/two-tier/two-choices/faults-crash", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Hetero: 2, Profile: 1, ArrivalRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 88, MeanCost: 3.800048828125, Requests: 4096, Escalated: 2048, Backhaul: 1228, Uncached: 52, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 30, DeadLoad: 881, Retried: 270, Availability: 0.7001953125, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 8, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "arrival/two-tier/two-choices/faults-crash", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Faults: 1, FaultRate: 0.02, RecoverRate: 0.01, Hetero: 2, Profile: 1, ArrivalRate: 0.01, Seed: 0x63},
		want: Result{MaxLoad: 92, MeanCost: 3.714599609375, Requests: 4096, Escalated: 1985, Backhaul: 1331, Uncached: 48, ChurnEvents: 0, ChurnSkipped: 0, Faulted: true, FaultEvents: 61, RecoverEvents: 30, FaultSkipped: 0, DeadNodes: 28, DeadLoad: 893, Retried: 359, Availability: 0.675048828125, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 3, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/sharded-p4", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Streams: 1, Hetero: 1, Profile: 1, Workers: 4, Seed: 0x63},
		want: Result{MaxLoad: 107, MeanCost: 5.364013671875, Requests: 4096, Escalated: 2798, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "capacity/two-tier/two-choices/sharded-p4", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, Streams: 1, Hetero: 1, Profile: 1, Workers: 4, Seed: 0x63},
		want: Result{MaxLoad: 106, MeanCost: 5.2900390625, Requests: 4096, Escalated: 2769, Backhaul: 0, Uncached: 33, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 0, ArrivalSkipped: 0, Vacant: 0, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "arrival/power-law/two-choices/sharded-p4", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Hetero: 2, Profile: 2, ArrivalRate: 0.01, Workers: 4, Seed: 0x63},
		want: Result{MaxLoad: 173, MeanCost: 3.93701171875, Requests: 4096, Escalated: 2109, Backhaul: 1152, Uncached: 49, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 8, HopMax: 0, HopStd: 0, LoadP99: 0}},
	{name: "arrival/power-law/two-choices/sharded-p4", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Strategy: StrategySpec{Kind: 1, Radius: 3}, Requests: 4096, MissPolicy: 1, Streams: 1, Hetero: 2, Profile: 2, ArrivalRate: 0.01, Workers: 4, Seed: 0x63},
		want: Result{MaxLoad: 182, MeanCost: 4.357177734375, Requests: 4096, Escalated: 2314, Backhaul: 790, Uncached: 35, ChurnEvents: 0, ChurnSkipped: 0, Faulted: false, FaultEvents: 0, RecoverEvents: 0, FaultSkipped: 0, DeadNodes: 0, DeadLoad: 0, Retried: 0, Availability: 0, ArrivalEvents: 30, ArrivalSkipped: 0, Vacant: 3, HopMax: 0, HopStd: 0, LoadP99: 0}},
}
