package sim

// This file exports the shard-execution hooks the sweep orchestration
// layer (internal/sweep) builds on: the trial-block partition shared
// with Run/RunSeries, the block fold a remote worker executes, and a
// configuration validator cheap enough to run over a whole expanded
// grid before any world is compiled. Keeping the partition and the fold
// here — next to the engines that define them — is what lets a
// distributed sweep's merged artifact stay bit-identical to a
// single-process RunSeries run: both sides call the same code.

// BlockRange returns the half-open trial range [lo, hi) of block b when
// trials are partitioned into `blocks` contiguous blocks. It is the
// exact partition Run and RunSeries use for their parallel reduction,
// exported so a distributed sweep shards trials identically and its
// block-ordered merge reproduces the single-host merge bit for bit.
// blocks must be in [1, trials] and b in [0, blocks).
func BlockRange(trials, blocks, b int) (lo, hi int) {
	return trials * b / blocks, trials * (b + 1) / blocks
}

// RunBlock executes the contiguous trial block [lo, hi) and returns its
// aggregate, folding results in ascending trial order — the same fold a
// Run/RunSeries worker performs for that block, so the returned
// Aggregate is bit-identical to the corresponding in-process partial.
// Safe for concurrent use (runners are pooled internally).
func (w *World) RunBlock(lo, hi uint64) Aggregate {
	var agg Aggregate
	r, _ := w.runners.Get().(*Runner)
	if r == nil {
		r = w.NewRunner()
	}
	for t := lo; t < hi; t++ {
		agg.Add(r.RunTrial(t))
	}
	w.runners.Put(r)
	return agg
}

// Validate reports whether cfg is a well-formed configuration, without
// compiling a world (no lattice or alias-table allocation). The sweep
// coordinator runs it over every expanded grid point so a bad spec
// fails fast at submission instead of on a remote worker.
func Validate(cfg Config) error { return cfg.validate() }
