package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/replication"
)

func TestCollectLinksMetrics(t *testing.T) {
	cfg := baseConfig()
	cfg.CollectLinks = true
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded}
	res, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkLoad <= 0 {
		t.Fatalf("link load not collected: %+v", res)
	}
	if res.LinkCongestion < 1 {
		t.Fatalf("congestion factor %v must be ≥ 1 when traffic flows", res.LinkCongestion)
	}
	// Without the flag, link metrics stay zero.
	cfg.CollectLinks = false
	res2, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MaxLinkLoad != 0 || res2.LinkCongestion != 0 {
		t.Fatalf("link metrics leaked without CollectLinks: %+v", res2)
	}
	// Aggregates fold link metrics only when present.
	var agg Aggregate
	agg.Add(res)
	agg.Add(res2)
	if agg.MaxLinkLoad.N() != 1 {
		t.Fatalf("aggregate folded %d link observations, want 1", agg.MaxLinkLoad.N())
	}
}

func TestNearestTrafficBelowUnboundedTwoChoice(t *testing.T) {
	mk := func(kind StrategySpec) Config {
		c := baseConfig()
		c.CollectLinks = true
		c.Strategy = kind
		return c
	}
	near, err := Run(mk(StrategySpec{Kind: Nearest}), 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(mk(StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded}), 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if near.MaxLinkLoad.Mean() >= two.MaxLinkLoad.Mean() {
		t.Fatalf("nearest max link %.1f not below two-choice(inf) %.1f",
			near.MaxLinkLoad.Mean(), two.MaxLinkLoad.Mean())
	}
}

func TestPlacementPolicyChangesBehaviour(t *testing.T) {
	// Proportional placement equalizes demand per replica (LoadSkew = 1),
	// so on a skewed catalog it must yield a far lower Strategy II max
	// load than popularity-blind uniform placement, whose few head
	// replicas absorb the bulk of the traffic. Square-root placement
	// sits in between.
	mk := func(pol replication.Policy) Config {
		c := Config{Side: 45, K: 500, M: 2, Seed: 3}
		c.Popularity = PopSpec{Kind: PopZipf, Gamma: 1.4}
		c.PlacementPolicy = pol
		c.Strategy = StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded}
		return c
	}
	prop, err := Run(mk(replication.Proportional), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	sqrtP, err := Run(mk(replication.SquareRoot), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Run(mk(replication.UniformPlace), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(prop.MaxLoad.Mean() < sqrtP.MaxLoad.Mean() && sqrtP.MaxLoad.Mean() < uni.MaxLoad.Mean()) {
		t.Fatalf("placement loads not ordered prop < sqrt < uniform: %.2f, %.2f, %.2f",
			prop.MaxLoad.Mean(), sqrtP.MaxLoad.Mean(), uni.MaxLoad.Mean())
	}
	// The flip side: uniform placement covers more of the tail (fewer
	// uncached files) than proportional under heavy skew.
	if uni.Uncached.Mean() >= prop.Uncached.Mean() {
		t.Fatalf("uniform placement left %.1f files uncached, proportional %.1f — expected the reverse",
			uni.Uncached.Mean(), prop.Uncached.Mean())
	}
}

func TestBetaSpecPlumbed(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded, Beta: 0.5}
	if _, err := RunTrial(cfg, 0); err != nil {
		t.Fatal(err)
	}
	// Determinism must hold with beta randomization too.
	a, _ := RunTrial(cfg, 1)
	b, _ := RunTrial(cfg, 1)
	if a != b {
		t.Fatalf("beta runs nondeterministic: %+v vs %+v", a, b)
	}
}

func TestHeavyRequestsGap(t *testing.T) {
	// m = 8n requests: two-choice max load should stay within a few units
	// of the mean load 8, far below one-choice.
	mk := func(kind StrategyKind) Config {
		c := Config{Side: 20, K: 50, M: 8, Requests: 8 * 400, Seed: 5}
		c.Strategy = StrategySpec{Kind: kind, Radius: core.RadiusUnbounded}
		return c
	}
	two, err := Run(mk(TwoChoices), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(mk(OneChoiceRandom), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gap := two.MaxLoad.Mean() - 8; gap > 5 {
		t.Fatalf("two-choice heavy gap %.2f too large", gap)
	}
	if two.MaxLoad.Mean() >= one.MaxLoad.Mean() {
		t.Fatalf("two-choice %.2f not below one-choice %.2f under heavy load",
			two.MaxLoad.Mean(), one.MaxLoad.Mean())
	}
}
