package sim

import (
	"math/rand/v2"

	"repro/internal/cache"
	"repro/internal/core"
)

// The fault phase of the request pipeline (robustness regime): after a
// chunk of requests is assigned and accounted, the node liveness mask
// mutates before the next chunk is generated — exactly the churn
// discipline, so strategies never observe a half-applied failure and
// every candidate enumeration sees a consistent mask.
//
// Crash and recovery events are scheduled by fractional credit
// accumulators (FaultRate and RecoverRate expected events per request,
// exact over the trial) and drawn from a dedicated per-trial fault
// stream (xrand namespace 7), making the failure schedule a seeded
// process independent of the placement, request and churn streams:
// FaultsNone never derives the stream and stays bit-identical to the
// fault-free engine, and the schedule itself is invariant across
// Streams, Index, Workers and Strategy (pinned by
// TestFaultScheduleIndexInvariant).
//
//   - FaultsCrash kills a uniform live node per crash event and revives
//     a uniform dead node per recovery event (MTTR-style re-admission);
//     draws are O(1) through the liveness permutation.
//   - FaultsRegional kills every live node of a uniform tile-aligned
//     region (the World's regionTiling failure domains, regionSize), and
//     revives every dead node of a uniform region — correlated failures
//     with the same O(1)-per-node cost.
//
// An event that finds nothing to kill (no live node, or a fully dead
// region) or nothing to revive is dropped and counted in
// Result.FaultSkipped. Load carried by a node at the instant it crashes
// is accounted into Result.DeadLoad — work the failure stranded.
//
// Like churn, the schedule state lives in faultState so both owners of
// mutable liveness state can drive it: the batch engine's Runner and
// the served mode's sim.Snapshot (see snapshot.go, internal/serve).

// faultState is the fault-schedule state of one liveness mask: the
// fractional crash and recovery event credits carried between
// applications.
type faultState struct {
	crashCredit   float64
	recoverCredit float64
}

// reset zeroes both event credits (the trial-start state).
func (fs *faultState) reset() { fs.crashCredit, fs.recoverCredit = 0, 0 }

// armFaults prepares the fault engine for one trial: reset the mask to
// all-live, zero the event credits, bind the mask into the strategy and
// derive the per-trial fault stream. Returns nil (and unbinds nothing)
// under FaultsNone, keeping the fault-free engine untouched.
func (r *Runner) armFaults(strat core.Strategy, t uint64) *rand.Rand {
	if r.live == nil {
		return nil
	}
	r.live.Reset()
	r.faultSt.reset()
	strat.(core.LivenessAware).SetLiveness(r.live)
	return r.fault.stream(r.w.faultSrc, t)
}

// faultChunk applies the crash/recovery schedule accrued by one
// accounted chunk of c requests. The engine skips the call after the
// trial's final chunk (no request would ever observe the mutation).
func (r *Runner) faultChunk(rng *rand.Rand, c int, res *Result) {
	r.faultSt.apply(r.w, r.live, rng, c, r.nodeLoad, res)
}

// nodeLoad reads node u's current load through the engine's active view:
// the base vector everywhere except racy sharded trials, whose live
// loads accumulate in the shared atomic vector instead.
func (r *Runner) nodeLoad(u int32) int {
	if r.shardRacy {
		return r.atomicLoads.Load(int(u))
	}
	return r.loads.Load(int(u))
}

// apply executes the schedule accrued by c elapsed requests against lv,
// counting outcomes into res. Crash events drain before recovery events
// within an application — the order is part of the seeded process
// frozen by the fault golden matrix. loadOf reads a node's load at its
// crash instant for the DeadLoad account; nil skips that account (the
// served mode, where loads live in per-connection contexts rather than
// one engine vector).
func (fs *faultState) apply(w *World, lv *cache.Liveness, rng *rand.Rand, c int, loadOf func(int32) int, res *Result) {
	fs.crashCredit += w.cfg.FaultRate * float64(c)
	fs.recoverCredit += w.cfg.RecoverRate * float64(c)
	for ; fs.crashCredit >= 1; fs.crashCredit-- {
		crashEvent(w, lv, rng, loadOf, res)
	}
	for ; fs.recoverCredit >= 1; fs.recoverCredit-- {
		recoverEvent(w, lv, rng, res)
	}
}

// crashEvent executes one crash: a uniform live node (FaultsCrash) or
// every live node of a uniform region (FaultsRegional).
func crashEvent(w *World, lv *cache.Liveness, rng *rand.Rand, loadOf func(int32) int, res *Result) {
	switch w.cfg.Faults {
	case FaultsCrash:
		if lv.LiveCount() == 0 {
			res.FaultSkipped++
			return
		}
		u := lv.LiveAt(rng.IntN(lv.LiveCount()))
		if loadOf != nil {
			res.DeadLoad += loadOf(u)
		}
		lv.Kill(u)
		res.FaultEvents++
	case FaultsRegional:
		tl := w.regionTiling
		tid := int32(rng.IntN(tl.Tiles()))
		members := tl.Order()[tl.OrderOff()[tid]:tl.OrderOff()[tid+1]]
		killed := false
		for _, u := range members {
			if lv.Live(int(u)) {
				if loadOf != nil {
					res.DeadLoad += loadOf(u)
				}
				lv.Kill(u)
				killed = true
			}
		}
		if !killed {
			res.FaultSkipped++
			return
		}
		res.FaultEvents++
	}
}

// recoverEvent executes one recovery: a uniform dead node (FaultsCrash)
// or every dead node of a uniform region (FaultsRegional).
func recoverEvent(w *World, lv *cache.Liveness, rng *rand.Rand, res *Result) {
	switch w.cfg.Faults {
	case FaultsCrash:
		if lv.DeadCount() == 0 {
			res.FaultSkipped++
			return
		}
		lv.Revive(lv.DeadAt(rng.IntN(lv.DeadCount())))
		res.RecoverEvents++
	case FaultsRegional:
		tl := w.regionTiling
		tid := int32(rng.IntN(tl.Tiles()))
		members := tl.Order()[tl.OrderOff()[tid]:tl.OrderOff()[tid+1]]
		revived := false
		for _, u := range members {
			if !lv.Live(int(u)) {
				lv.Revive(u)
				revived = true
			}
		}
		if !revived {
			res.FaultSkipped++
			return
		}
		res.RecoverEvents++
	}
}

// finishFaults stamps the trial's fault summary: the end-of-trial dead
// population and the availability ratio — the fraction of requests the
// cache network itself served (everything that did not fall through to
// backhaul at the origin). A no-op under FaultsNone, whose Results stay
// bit-identical to the fault-free engine.
func (r *Runner) finishFaults(res *Result) {
	if r.live == nil {
		return
	}
	res.Faulted = true
	res.DeadNodes = r.live.DeadCount()
	if res.Requests > 0 {
		res.Availability = float64(res.Requests-res.Backhaul) / float64(res.Requests)
	}
}
