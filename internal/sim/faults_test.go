package sim

import (
	"strings"
	"testing"
)

// faultBase is the shared fault-test configuration: a 144-node torus
// under proximity-aware two choices with crash/recovery pressure heavy
// enough that every rung of the degradation ladder fires.
func faultBase() Config {
	return Config{
		Side: 12, K: 150, M: 2,
		Strategy:   StrategySpec{Kind: TwoChoices, Radius: 3},
		Requests:   4096,
		MissPolicy: MissEscalate,
		Faults:     FaultsCrash, FaultRate: 0.02, RecoverRate: 0.01,
		Seed: 0xfa17,
	}
}

// schedule is the engine-invariant slice of a fault trial: the failure
// trajectory reads only the namespace-7 stream and the liveness state,
// so it cannot depend on how requests are generated, indexed, assigned
// or sharded.
type schedule struct {
	events, recovers, skipped, dead int
}

func scheduleOf(r Result) schedule {
	return schedule{r.FaultEvents, r.RecoverEvents, r.FaultSkipped, r.DeadNodes}
}

// TestFaultScheduleIndexInvariant: the crash/recovery schedule must be
// bit-identical across Index, Streams, Strategy and the sharded engine —
// the fault stream is a seeded process of (Seed, trial) alone.
func TestFaultScheduleIndexInvariant(t *testing.T) {
	for _, mode := range []FaultsMode{FaultsCrash, FaultsRegional} {
		ref := faultBase()
		ref.Faults = mode
		base, err := RunTrial(ref, 3)
		if err != nil {
			t.Fatal(err)
		}
		if base.FaultEvents == 0 || base.DeadNodes == 0 {
			t.Fatalf("%v: reference trial saw no faults: %+v", mode, base)
		}
		variants := map[string]func(c *Config){
			"tiles":       func(c *Config) { c.Index = IndexTiles },
			"split":       func(c *Config) { c.Streams = StreamsSplit },
			"tiles/split": func(c *Config) { c.Index = IndexTiles; c.Streams = StreamsSplit },
			"nearest":     func(c *Config) { c.Strategy = StrategySpec{Kind: Nearest} },
			"oracle":      func(c *Config) { c.Strategy = StrategySpec{Kind: Oracle, Radius: 3} },
			"one-choice":  func(c *Config) { c.Strategy = StrategySpec{Kind: OneChoiceRandom, Radius: 3} },
			"workers2":    func(c *Config) { c.Streams = StreamsSplit; c.Workers = 2 },
			"workers5":    func(c *Config) { c.Streams = StreamsSplit; c.Workers = 5 },
			"miss-origin": func(c *Config) { c.MissPolicy = MissOrigin },
			"churn":       func(c *Config) { c.Churn = ChurnReplicas; c.ChurnRate = 0.5 },
		}
		for name, mut := range variants {
			cfg := ref
			mut(&cfg)
			got, err := RunTrial(cfg, 3)
			if err != nil {
				t.Fatalf("%v/%s: %v", mode, name, err)
			}
			if scheduleOf(got) != scheduleOf(base) {
				t.Errorf("%v/%s: schedule %+v diverged from reference %+v",
					mode, name, scheduleOf(got), scheduleOf(base))
			}
		}
	}
}

// TestFaultShardedPIndependent: a faulted ShardDeterministic trial is
// bit-identical for every worker count — the mask mutates only at the
// coordinator's barrier, inside the frozen-snapshot discipline.
func TestFaultShardedPIndependent(t *testing.T) {
	for _, mode := range []FaultsMode{FaultsCrash, FaultsRegional} {
		cfg := faultBase()
		cfg.Faults = mode
		cfg.Streams = StreamsSplit
		cfg.Index = IndexTiles
		cfg.Churn = ChurnReplicas
		cfg.ChurnRate = 0.5
		cfg.Workers = 1
		ref, err := RunTrial(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 3, 4, 8} {
			cfg.Workers = p
			got, err := RunTrial(cfg, 2)
			if err != nil {
				t.Fatalf("%v P=%d: %v", mode, p, err)
			}
			if got != ref {
				t.Errorf("%v P=%d:\n got %+v\nwant %+v", mode, p, got, ref)
			}
		}
	}
}

// TestFaultShardRacyStress drives the racy sharded engine under crash
// and regional faults composed with churn: outcomes are scheduling-
// dependent, but the failure schedule stays seeded and the availability
// accounting must stay coherent. Run under -race, this is the proof
// that barrier-only liveness mutation leaves the workers race-free.
func TestFaultShardRacyStress(t *testing.T) {
	for _, mode := range []FaultsMode{FaultsCrash, FaultsRegional} {
		cfg := faultBase()
		cfg.Faults = mode
		cfg.Streams = StreamsSplit
		cfg.Index = IndexTiles
		cfg.Churn = ChurnReplicas
		cfg.ChurnRate = 0.5
		cfg.Workers = 4
		cfg.Shard = ShardRacy
		w, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := uint64(0); trial < 4; trial++ {
			res := w.RunTrial(trial)
			if !res.Faulted || res.FaultEvents == 0 {
				t.Fatalf("%v t=%d: fault engine did not run: %+v", mode, trial, res)
			}
			if res.Availability < 0 || res.Availability > 1 {
				t.Fatalf("%v t=%d: availability %v out of range", mode, trial, res.Availability)
			}
			if got := float64(res.Requests-res.Backhaul) / float64(res.Requests); res.Availability != got {
				t.Fatalf("%v t=%d: availability %v inconsistent with backhaul %d", mode, trial, res.Availability, res.Backhaul)
			}
		}
	}
}

// TestFaultGracefulDegradation: permanent crashes (no recovery) must
// degrade service smoothly — requests keep completing, the network
// stays partially available, the degraded-path mass is visible in
// Retried, and the unserved remainder lands on backhaul.
func TestFaultGracefulDegradation(t *testing.T) {
	cfg := faultBase()
	cfg.FaultRate = 0.1
	cfg.RecoverRate = 0
	res, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Faulted || res.DeadNodes == 0 || res.RecoverEvents != 0 {
		t.Fatalf("implausible no-recovery trial: %+v", res)
	}
	if res.Retried == 0 {
		t.Errorf("no request ever walked the degraded path: %+v", res)
	}
	if res.Availability <= 0 || res.Availability >= 1 {
		t.Errorf("availability %v not strictly inside (0,1) under partial failure", res.Availability)
	}
	if res.DeadLoad == 0 {
		t.Errorf("crashes stranded no load despite %d events", res.FaultEvents)
	}
	// Recovery pressure equal to the crash pressure must strictly improve
	// availability: MTTR-style re-admission is what the ladder degrades
	// gracefully toward.
	cfg.RecoverRate = 0.1
	rec, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Availability <= res.Availability {
		t.Errorf("recovery did not improve availability: %v (MTTR) vs %v (permanent)",
			rec.Availability, res.Availability)
	}
}

// TestFaultValidate is the Config.validate table for the fault knobs and
// their interactions with the miss policy.
func TestFaultValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(c *Config)
		want string // substring of the error; "" = valid
	}{
		{"crash-valid", func(c *Config) {}, ""},
		{"regional-valid", func(c *Config) { c.Faults = FaultsRegional }, ""},
		{"zero-recover-valid", func(c *Config) { c.RecoverRate = 0 }, ""},
		{"unknown-mode", func(c *Config) { c.Faults = FaultsMode(9) }, "unknown faults mode"},
		{"negative-mode", func(c *Config) { c.Faults = FaultsMode(-1) }, "unknown faults mode"},
		{"no-rate", func(c *Config) { c.FaultRate = 0 }, "needs a positive FaultRate"},
		{"negative-rate", func(c *Config) { c.FaultRate = -0.5 }, "needs a positive FaultRate"},
		{"rate-without-mode", func(c *Config) { c.Faults = FaultsNone }, "need a faults mode"},
		{"recover-without-mode", func(c *Config) {
			c.Faults = FaultsNone
			c.FaultRate = 0
		}, "need a faults mode"},
		{"negative-recover", func(c *Config) { c.RecoverRate = -1 }, "RecoverRate must be non-negative"},
		{"resample-conflict", func(c *Config) { c.MissPolicy = MissResample }, "MissPolicy=resample"},
		{"regional-resample-conflict", func(c *Config) {
			c.Faults = FaultsRegional
			c.MissPolicy = MissResample
		}, "MissPolicy=resample"},
	}
	for _, tc := range cases {
		cfg := faultBase()
		tc.mut(&cfg)
		err := cfg.validate()
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.want != "" && err == nil:
			t.Errorf("%s: validate accepted an invalid config", tc.name)
		case tc.want != "" && !strings.Contains(err.Error(), tc.want):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestFaultSteadyStateAllocs: the masked request loop — liveness checks
// in every sampler, the live-pool retry ladder, the fault scheduler at
// the barrier — allocates nothing at steady state, matching the
// fault-free engine's bar.
func TestFaultSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and disables pool caching")
	}
	for _, variant := range []struct {
		name string
		mut  func(c *Config)
	}{
		{"crash/none", func(c *Config) {}},
		{"crash/tiles", func(c *Config) { c.Index = IndexTiles }},
		{"regional/tiles", func(c *Config) { c.Faults = FaultsRegional; c.Index = IndexTiles }},
		{"crash/tiles/split", func(c *Config) { c.Index = IndexTiles; c.Streams = StreamsSplit }},
	} {
		cfg := faultBase()
		variant.mut(&cfg)
		w, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := w.NewRunner()
		r.RunTrial(0) // warm the scratch (liveBuf, strategy buffers)
		r.RunTrial(1)
		if n := testing.AllocsPerRun(2, func() { r.RunTrial(2) }); n != 0 {
			t.Errorf("%s: faulted trial allocates %.1f/op, want 0", variant.name, n)
		}
	}
}

// TestFaultRegionGeometry pins regionSize: the failure-domain side is
// the largest divisor of the lattice side no larger than side/4, with a
// single-node degenerate floor.
func TestFaultRegionGeometry(t *testing.T) {
	cases := map[int]int{12: 3, 16: 4, 20: 5, 25: 5, 13: 1, 6: 1, 8: 2, 100: 25, 2: 1}
	for side, want := range cases {
		if got := regionSize(side); got != want {
			t.Errorf("regionSize(%d) = %d, want %d", side, got, want)
		}
	}
}
