package sim

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/ballsbins"
	"repro/internal/core"
	"repro/internal/dist"
)

// replayTrial reruns trial t of w through the served-mode state machine:
// compile a Snapshot, generate requests from the split-discipline
// streams, assign through a snapshot-bound strategy with the trial's
// assignment stream, and Advance the snapshot at every chunk barrier —
// the exact sequence the daemon's mutator and decision contexts execute
// between them. Returns the replayed Result scalars (DeadLoad excluded:
// the served mutation path does not account stranded load).
func replayTrial(t *testing.T, w *World, trial uint64) Result {
	t.Helper()
	s := w.Snapshot(trial)
	strat := s.NewStrategy()
	pop := s.FileSampler()
	loads := ballsbins.NewLoads(w.N())
	originRNG, fileRNG := w.RequestStream(trial)
	s1, s2 := w.AssignSeed(trial)
	assignRNG := rand.New(rand.NewPCG(s1, s2))

	nReq := w.Requests()
	chunk := min(w.chunk, nReq)
	origins := make([]int32, chunk)
	files := make([]int32, chunk)
	res := Result{Requests: nReq, Uncached: s.p.UncachedCount()}
	var hops float64
	for base := 0; base < nReq; base += chunk {
		c := min(chunk, nReq-base)
		dist.RequestBatch(originRNG, fileRNG, w.N(), pop, origins[:c], files[:c])
		for i := 0; i < c; i++ {
			a := strat.Assign(core.Request{Origin: origins[i], File: files[i]}, loads, assignRNG)
			loads.Add(int(a.Server))
			hops += float64(a.Hops)
			if a.Escalated {
				res.Escalated++
			}
			if a.Backhaul {
				res.Backhaul++
			}
			if a.Retried {
				res.Retried++
			}
		}
		if base+c < nReq {
			s.Advance(c)
			strat = s.Bind(strat)
		}
	}
	res.MaxLoad = loads.Max()
	if nReq > 0 {
		res.MeanCost = hops / float64(nReq)
	}
	info := s.Info()
	res.ChurnEvents, res.ChurnSkipped = info.ChurnEvents, info.ChurnSkipped
	res.FaultEvents, res.RecoverEvents = info.FaultEvents, info.RecoverEvents
	res.FaultSkipped, res.DeadNodes = info.FaultSkipped, info.DeadNodes
	return res
}

// snapshotReplayConfigs spans the regimes the served mode must
// reproduce: quiesced, both churn modes, both fault modes, a combined
// storm, the tile index on and off, and the conditioned miss stream.
func snapshotReplayConfigs() map[string]Config {
	base := Config{
		Side: 12, K: 100, M: 3, Requests: 600, Seed: 99,
		Strategy:   StrategySpec{Kind: TwoChoices, Radius: 3},
		Popularity: PopSpec{Kind: PopZipf, Gamma: 0.8},
		Streams:    StreamsSplit,
		Chunk:      128,
	}
	cfgs := map[string]Config{"quiesced": base}

	c := base
	c.Index = IndexTiles
	cfgs["indexed"] = c

	c = base
	c.Index = IndexTiles
	c.Churn = ChurnReplicas
	c.ChurnRate = 0.05
	cfgs["churn-replicas"] = c

	c = base
	c.Churn = ChurnDrift
	c.ChurnRate = 0.05
	cfgs["churn-drift"] = c

	c = base
	c.Index = IndexTiles
	c.MissPolicy = MissEscalate
	c.Faults = FaultsCrash
	c.FaultRate = 0.01
	c.RecoverRate = 0.005
	cfgs["faults-crash"] = c

	c = base
	c.MissPolicy = MissEscalate
	c.Faults = FaultsRegional
	c.FaultRate = 0.002
	cfgs["faults-regional"] = c

	c = base
	c.Index = IndexTiles
	c.MissPolicy = MissEscalate
	c.Churn = ChurnReplicas
	c.ChurnRate = 0.05
	c.Faults = FaultsCrash
	c.FaultRate = 0.01
	c.RecoverRate = 0.005
	cfgs["storm"] = c

	c = base
	c.K = 4000 // K ≫ n·M: some files stay uncached
	c.MissPolicy = MissResample
	cfgs["miss-resample"] = c

	return cfgs
}

// TestSnapshotReplayMatchesTrial pins the served-mode state machine to
// the batch engine: for every regime, replaying a trial through
// Snapshot/Advance/Bind must reproduce RunTrial's decision scalars and
// event counts bit-identically.
func TestSnapshotReplayMatchesTrial(t *testing.T) {
	for name, cfg := range snapshotReplayConfigs() {
		t.Run(name, func(t *testing.T) {
			w, err := Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for trial := uint64(0); trial < 3; trial++ {
				want := w.RunTrial(trial)
				got := replayTrial(t, w, trial)
				if got.MaxLoad != want.MaxLoad || got.MeanCost != want.MeanCost ||
					got.Escalated != want.Escalated || got.Backhaul != want.Backhaul ||
					got.Retried != want.Retried || got.Uncached != want.Uncached {
					t.Errorf("trial %d: replay %+v, want %+v", trial, got, want)
				}
				if got.ChurnEvents != want.ChurnEvents || got.ChurnSkipped != want.ChurnSkipped ||
					got.FaultEvents != want.FaultEvents || got.RecoverEvents != want.RecoverEvents ||
					got.FaultSkipped != want.FaultSkipped || got.DeadNodes != want.DeadNodes {
					t.Errorf("trial %d: replay events %+v, want %+v", trial, got, want)
				}
			}
		})
	}
}

// TestSnapshotCloneIsolation checks the copy-on-write contract: a clone
// taken mid-era keeps answering from its frozen state while the shadow
// advances underneath it.
func TestSnapshotCloneIsolation(t *testing.T) {
	cfg := snapshotReplayConfigs()["storm"]
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := w.Snapshot(0)
	s.Advance(256)
	pub := s.Clone()
	if pub.Era() != s.Era() || pub.Seq() != s.Seq() {
		t.Fatalf("clone stamp %d/%d, want %d/%d", pub.Era(), pub.Seq(), s.Era(), s.Seq())
	}
	frozen := make([][]int32, 0, cfg.K)
	for j := 0; j < cfg.K; j++ {
		frozen = append(frozen, append([]int32(nil), pub.Placement().Replicas(j)...))
	}
	deadBefore := pub.Info().DeadNodes
	for i := 0; i < 50; i++ {
		s.Advance(256)
	}
	if s.Seq() != pub.Seq()+50 {
		t.Fatalf("shadow seq %d, want %d", s.Seq(), pub.Seq()+50)
	}
	for j := 0; j < cfg.K; j++ {
		got := pub.Placement().Replicas(j)
		if len(got) != len(frozen[j]) {
			t.Fatalf("file %d: clone replica count changed under shadow mutation", j)
		}
		for i := range got {
			if got[i] != frozen[j][i] {
				t.Fatalf("file %d: clone replicas changed under shadow mutation", j)
			}
		}
	}
	if pub.Info().DeadNodes != deadBefore {
		t.Fatal("clone liveness changed under shadow mutation")
	}
}

// TestSnapshotInfoString pins the diagnostic stamp format shared by
// cachesim -v and the daemon.
func TestSnapshotInfoString(t *testing.T) {
	info := SnapshotInfo{Era: 2, Seq: 7, Uncached: 1, ChurnEvents: 30, ChurnSkipped: 4,
		FaultEvents: 5, RecoverEvents: 3, FaultSkipped: 1, DeadNodes: 2}
	got := info.String()
	want := "era=2 seq=7 uncached=1 churn=30/4 faults=5/3/1 dead=2"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if !strings.Contains(got, "era=") {
		t.Fatal("stamp must carry the era")
	}
}

// TestSnapshotQuiescedIsStable checks that with no churn or fault
// process, Advance is a pure sequence bump: no RNG is consumed and the
// state never changes, so a quiesced daemon serves one frozen placement
// forever.
func TestSnapshotQuiescedIsStable(t *testing.T) {
	w, err := Compile(snapshotReplayConfigs()["quiesced"])
	if err != nil {
		t.Fatal(err)
	}
	s := w.Snapshot(1)
	if s.Liveness() != nil {
		t.Fatal("quiesced snapshot must not carry a liveness mask")
	}
	before := s.Info()
	s.Advance(1 << 20)
	after := s.Info()
	if after.ChurnEvents != before.ChurnEvents || after.FaultEvents != before.FaultEvents {
		t.Fatalf("quiesced Advance applied events: %+v", after)
	}
	if after.Seq != before.Seq+1 {
		t.Fatalf("Seq = %d, want %d", after.Seq, before.Seq+1)
	}
	if math.IsNaN(float64(after.Era)) || after.Era != 1 {
		t.Fatalf("Era = %d, want 1", after.Era)
	}
}
