package sim

import "testing"

// TestIndexTilesDeterministic: the tile-index discipline is a first-
// class citizen of the determinism contract — reused runner, fresh
// runner and pooled World.RunTrial agree, and reruns reproduce — across
// the strategy × miss-policy matrix and both stream disciplines.
func TestIndexTilesDeterministic(t *testing.T) {
	for _, streams := range []Streams{StreamsInterleaved, StreamsSplit} {
		for _, base := range pipelineMatrix() {
			cfg := base
			cfg.Streams = streams
			cfg.Index = IndexTiles
			w, err := Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reused := w.NewRunner()
			for trial := uint64(0); trial < 2; trial++ {
				want := reused.RunTrial(trial)
				if got := w.NewRunner().RunTrial(trial); got != want {
					t.Fatalf("%s/%s/%s t=%d: fresh runner %+v != reused %+v",
						cfg.Strategy.Kind, cfg.MissPolicy, streams, trial, got, want)
				}
				if got := w.RunTrial(trial); got != want {
					t.Fatalf("%s/%s/%s t=%d: pooled %+v != reused %+v",
						cfg.Strategy.Kind, cfg.MissPolicy, streams, trial, got, want)
				}
				if got := reused.RunTrial(trial); got != want {
					t.Fatalf("%s/%s/%s t=%d: rerun %+v != first %+v",
						cfg.Strategy.Kind, cfg.MissPolicy, streams, trial, got, want)
				}
			}
		}
	}
}

// TestIndexTilesNoOpWithoutBoundedRadius: for Nearest and for unbounded
// radii the index has nothing to serve, so IndexTiles must be a true
// no-op — bit-identical results to IndexNone, not merely equivalent.
func TestIndexTilesNoOpWithoutBoundedRadius(t *testing.T) {
	for _, cfg := range []Config{
		{Side: 10, K: 120, M: 2, Seed: 4, Strategy: StrategySpec{Kind: Nearest}},
		{Side: 10, K: 120, M: 2, Seed: 4, Strategy: StrategySpec{Kind: TwoChoices, Radius: -1}},
		{Side: 10, K: 120, M: 2, Seed: 4, Strategy: StrategySpec{Kind: TwoChoices, Radius: 99}},
		{Side: 10, K: 120, M: 2, Seed: 4, Strategy: StrategySpec{Kind: Oracle, Radius: -1}},
	} {
		plain, err := RunTrial(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		icfg := cfg
		icfg.Index = IndexTiles
		w, err := Compile(icfg)
		if err != nil {
			t.Fatal(err)
		}
		if w.tiling != nil {
			t.Fatalf("%s r=%d: tiling built for a configuration the index cannot serve",
				cfg.Strategy.Kind, cfg.Strategy.Radius)
		}
		if got := w.RunTrial(0); got != plain {
			t.Fatalf("%s r=%d: IndexTiles diverged on a no-op config:\n got %+v\nwant %+v",
				cfg.Strategy.Kind, cfg.Strategy.Radius, got, plain)
		}
	}
}

// TestIndexTilesDiffersFromIndexNone documents that the tile index is a
// distinct seeded process on bounded radii (its candidate sampling
// consumes the RNG differently), so nobody mistakes it for a
// bit-compatible drop-in.
func TestIndexTilesDiffersFromIndexNone(t *testing.T) {
	cfg := Config{Side: 12, K: 150, M: 2, Seed: 0x63,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 3}}
	plain, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Index = IndexTiles
	tiles, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain == tiles {
		t.Fatalf("IndexNone and IndexTiles produced identical trials %+v — disciplines collapsed?", plain)
	}
}

// TestIndexValidationAndParse covers the knob's plumbing.
func TestIndexValidationAndParse(t *testing.T) {
	bad := Config{Side: 5, K: 10, M: 1, Index: IndexMode(9)}
	if _, err := Compile(bad); err == nil {
		t.Error("unknown index mode accepted")
	}
	for in, want := range map[string]IndexMode{"": IndexNone, "none": IndexNone, "tiles": IndexTiles} {
		got, err := ParseIndex(in)
		if err != nil || got != want {
			t.Errorf("ParseIndex(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseIndex("bogus"); err == nil {
		t.Error("bogus index mode accepted")
	}
	if IndexNone.String() != "none" || IndexTiles.String() != "tiles" {
		t.Errorf("String(): %v/%v", IndexNone, IndexTiles)
	}
}

// TestIndexTilesScalarsPlausible: cross-discipline statistical sanity —
// the tile index changes trajectories, not distributions, so per-trial
// scalars must stay in the same regime as IndexNone over a small batch.
func TestIndexTilesScalarsPlausible(t *testing.T) {
	// Split streams: the request sequence then comes from dedicated
	// generation streams, so it is identical across index disciplines
	// and the escalation fraction (placement- and request-determined)
	// must match exactly. Under interleaved streams the index's
	// different RNG consumption would shift subsequent requests.
	base := Config{Side: 20, K: 300, M: 3, Seed: 11, Streams: StreamsSplit,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 4}}
	var plain, tiles Aggregate
	for trial := uint64(0); trial < 20; trial++ {
		r1, err := RunTrial(base, trial)
		if err != nil {
			t.Fatal(err)
		}
		plain.Add(r1)
		icfg := base
		icfg.Index = IndexTiles
		r2, err := RunTrial(icfg, trial)
		if err != nil {
			t.Fatal(err)
		}
		tiles.Add(r2)
	}
	// Means within 4 pooled standard errors; the escalation fraction is
	// RNG-free given the placement, so it must match exactly.
	if d := plain.MaxLoad.Mean() - tiles.MaxLoad.Mean(); d > 4*(plain.MaxLoad.SE()+tiles.MaxLoad.SE())+1e-9 || -d > 4*(plain.MaxLoad.SE()+tiles.MaxLoad.SE())+1e-9 {
		t.Errorf("max-load means diverge: %v vs %v", plain.MaxLoad.Mean(), tiles.MaxLoad.Mean())
	}
	if plain.Escalated.Mean() != tiles.Escalated.Mean() {
		t.Errorf("escalation fractions diverge: %v vs %v (placement-determined, must be exact)",
			plain.Escalated.Mean(), tiles.Escalated.Mean())
	}
}

// TestWideWorldIndexedTrial is the scaled-down widegrid acceptance check
// under the tile index: multiple chunk boundaries, streaming metrics,
// split streams, allocation-free steady state.
func TestWideWorldIndexedTrial(t *testing.T) {
	side := 120
	if testing.Short() {
		side = 60
	}
	cfg := Config{
		Side: side, K: 4000, M: 4, Seed: 9,
		Strategy: StrategySpec{Kind: TwoChoices, Radius: 16},
		Metrics:  MetricsStreaming,
		Streams:  StreamsSplit,
		Index:    IndexTiles,
	}
	w, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.NewRunner()
	res := r.RunTrial(0)
	if res.Requests != side*side || res.MaxLoad == 0 || res.HopMax == 0 {
		t.Fatalf("implausible wide indexed trial %+v", res)
	}
	if !raceEnabled {
		if n := testing.AllocsPerRun(2, func() { r.RunTrial(1) }); n != 0 {
			t.Errorf("wide indexed trial allocates %.1f/op, want 0", n)
		}
	}
}
