package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/grid"
)

func baseConfig() Config {
	return Config{
		Side: 15, // n = 225
		K:    50,
		M:    2,
		Seed: 42,
	}
}

func TestKindStrings(t *testing.T) {
	if Nearest.String() != "nearest" || TwoChoices.String() != "two-choices" ||
		OneChoiceRandom.String() != "one-choice" || Oracle.String() != "oracle" ||
		StrategyKind(9).String() != "StrategyKind(9)" {
		t.Fatal("StrategyKind strings wrong")
	}
	if MissResample.String() != "resample" || MissEscalate.String() != "escalate" ||
		MissOrigin.String() != "origin" || MissPolicy(9).String() != "MissPolicy(9)" {
		t.Fatal("MissPolicy strings wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	for name, mut := range map[string]func(*Config){
		"side":     func(c *Config) { c.Side = 0 },
		"k":        func(c *Config) { c.K = 0 },
		"m":        func(c *Config) { c.M = -1 },
		"requests": func(c *Config) { c.Requests = -5 },
	} {
		c := baseConfig()
		mut(&c)
		if _, err := RunTrial(c, 0); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
		if _, err := Run(c, 1, 1); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
	if _, err := Run(baseConfig(), 0, 1); err == nil {
		t.Error("Run accepted zero trials")
	}
}

func TestTrialDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded}
	a, err := RunTrial(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same trial differs: %+v vs %+v", a, b)
	}
	c, err := RunTrial(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatalf("different trials identical: %+v", a)
	}
}

func TestRunWorkerCountInvariance(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: 5}
	a1, err := Run(cfg, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := Run(cfg, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.MaxLoad.Mean()-a8.MaxLoad.Mean()) > 1e-12 ||
		math.Abs(a1.MeanCost.Mean()-a8.MeanCost.Mean()) > 1e-12 {
		t.Fatalf("worker count changed results: %v vs %v", a1, a8)
	}
	if a1.Trials != 20 || a8.Trials != 20 {
		t.Fatalf("trial counts wrong: %d %d", a1.Trials, a8.Trials)
	}
}

func TestResultInvariants(t *testing.T) {
	prop := func(seed uint64, stratRaw, missRaw uint8, radiusRaw uint8) bool {
		cfg := baseConfig()
		cfg.Seed = seed
		cfg.Strategy = StrategySpec{
			Kind:   StrategyKind(int(stratRaw) % 4),
			Radius: int(radiusRaw)%10 + 1,
		}
		cfg.MissPolicy = MissPolicy(int(missRaw) % 3)
		r, err := RunTrial(cfg, 0)
		if err != nil {
			return false
		}
		n := cfg.N()
		// n requests over n servers: max load within [ceil(1), n].
		if r.MaxLoad < 1 || r.MaxLoad > n {
			return false
		}
		if r.MeanCost < 0 || r.MeanCost > float64(2*cfg.Side) {
			return false
		}
		if r.Requests != n || r.Escalated < 0 || r.Escalated > n ||
			r.Backhaul < 0 || r.Backhaul > n {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMissResampleNeverBackhauls(t *testing.T) {
	cfg := baseConfig()
	cfg.K = 2000 // K >> nM: many uncached files
	cfg.M = 1
	cfg.MissPolicy = MissResample
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: 4}
	r, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Uncached == 0 {
		t.Fatal("expected uncached files in this regime")
	}
	if r.Backhaul != 0 {
		t.Fatalf("resample policy produced %d backhauls", r.Backhaul)
	}
}

func TestMissEscalateBackhaulsUncached(t *testing.T) {
	cfg := baseConfig()
	cfg.K = 2000
	cfg.M = 1
	cfg.MissPolicy = MissEscalate
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: 4}
	agg, err := Run(cfg, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Backhaul.Mean() <= 0 {
		t.Fatal("escalate policy should backhaul uncached files in this regime")
	}
}

func TestMissOriginNeverEscalates(t *testing.T) {
	cfg := baseConfig()
	cfg.K = 500
	cfg.M = 1
	cfg.MissPolicy = MissOrigin
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: 2}
	r, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Escalated != 0 {
		t.Fatalf("origin policy escalated %d times", r.Escalated)
	}
	if r.Backhaul == 0 {
		t.Fatal("origin policy should have served some misses at the origin")
	}
}

func TestTwoChoicesBeatsOneChoice(t *testing.T) {
	// The paper's central claim in miniature: with ample replication,
	// Strategy II's max load sits well below the load-blind baseline.
	mk := func(kind StrategyKind) Config {
		c := Config{Side: 32, K: 64, M: 4, Seed: 7} // n=1024, ~64 replicas/file
		c.Strategy = StrategySpec{Kind: kind, Radius: core.RadiusUnbounded}
		return c
	}
	two, err := Run(mk(TwoChoices), 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(mk(OneChoiceRandom), 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(two.MaxLoad.Mean() < one.MaxLoad.Mean()-0.5) {
		t.Fatalf("two-choices %.2f not clearly below one-choice %.2f",
			two.MaxLoad.Mean(), one.MaxLoad.Mean())
	}
	// And the oracle lower-bounds Strategy II.
	orc, err := Run(mk(Oracle), 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if orc.MaxLoad.Mean() > two.MaxLoad.Mean()+0.25 {
		t.Fatalf("oracle %.2f above two-choices %.2f", orc.MaxLoad.Mean(), two.MaxLoad.Mean())
	}
}

func TestNearestCostBelowTwoChoiceCost(t *testing.T) {
	// Strategy I is the communication-cost optimum: its mean cost must
	// lower-bound Strategy II's with r = ∞ on the same worlds.
	near := baseConfig()
	near.Strategy = StrategySpec{Kind: Nearest}
	twoc := baseConfig()
	twoc.Strategy = StrategySpec{Kind: TwoChoices, Radius: core.RadiusUnbounded}
	an, err := Run(near, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	at, err := Run(twoc, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if an.MeanCost.Mean() >= at.MeanCost.Mean() {
		t.Fatalf("nearest cost %.2f not below two-choice(∞) cost %.2f",
			an.MeanCost.Mean(), at.MeanCost.Mean())
	}
}

func TestRadiusControlsCost(t *testing.T) {
	// Communication cost must grow with the proximity radius r (Θ(r)) in
	// the regime where B_r(u) reliably contains replicas. (With sparse
	// replication small radii *raise* cost via escalation — covered by
	// TestEscalationDominatesSparseRadii below.)
	costs := make([]float64, 0, 3)
	for _, r := range []int{3, 8, 16} {
		cfg := Config{Side: 45, K: 100, M: 20, Seed: 9} // ~20% replica density
		cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: r}
		a, err := Run(cfg, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.Escalated.Mean() > 0.05 {
			t.Fatalf("r=%d: escalation fraction %.3f too high for this test", r, a.Escalated.Mean())
		}
		costs = append(costs, a.MeanCost.Mean())
	}
	if !(costs[0] < costs[1] && costs[1] < costs[2]) {
		t.Fatalf("cost not increasing in radius: %v", costs)
	}
}

func TestEscalationDominatesSparseRadii(t *testing.T) {
	// With sparse replication, a tiny radius forces frequent escalation
	// to r = ∞, so cost *exceeds* a moderate radius — the trade-off edge
	// the Fig. 5 harness must navigate.
	mk := func(r int) Config {
		cfg := Config{Side: 45, K: 100, M: 4, Seed: 9}
		cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: r}
		return cfg
	}
	tiny, err := Run(mk(2), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Run(mk(8), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Escalated.Mean() < 0.2 {
		t.Fatalf("expected heavy escalation at r=2, got %.3f", tiny.Escalated.Mean())
	}
	if tiny.MeanCost.Mean() <= mid.MeanCost.Mean() {
		t.Fatalf("escalation should make r=2 cost %.2f exceed r=8 cost %.2f",
			tiny.MeanCost.Mean(), mid.MeanCost.Mean())
	}
}

func TestRequestsOverride(t *testing.T) {
	cfg := baseConfig()
	cfg.Requests = 17
	r, err := RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 17 {
		t.Fatalf("requests = %d, want 17", r.Requests)
	}
}

func TestBoundedGridRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.Topology = grid.Bounded
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: 3}
	if _, err := Run(cfg, 4, 2); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPopularityRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.Popularity = PopSpec{Kind: PopZipf, Gamma: 1.2}
	a, err := Run(cfg, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zipf skew lowers nearest-replica cost versus uniform (Theorem 3).
	cfgU := baseConfig()
	b, err := Run(cfgU, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanCost.Mean() >= b.MeanCost.Mean() {
		t.Fatalf("zipf cost %.3f not below uniform cost %.3f", a.MeanCost.Mean(), b.MeanCost.Mean())
	}
}

func TestAggregateString(t *testing.T) {
	var a Aggregate
	a.Add(Result{MaxLoad: 3, MeanCost: 1.5, Requests: 10})
	if a.String() == "" || a.Trials != 1 {
		t.Fatal("aggregate bookkeeping broken")
	}
}

func TestRunSeries(t *testing.T) {
	cfgs := []Config{baseConfig(), baseConfig()}
	cfgs[1].M = 4
	aggs, err := RunSeries(cfgs, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 || aggs[0].Trials != 4 || aggs[1].Trials != 4 {
		t.Fatalf("series shape wrong: %+v", aggs)
	}
	// Larger caches reduce nearest-replica cost.
	if aggs[1].MeanCost.Mean() >= aggs[0].MeanCost.Mean() {
		t.Fatalf("M=4 cost %.3f not below M=2 cost %.3f",
			aggs[1].MeanCost.Mean(), aggs[0].MeanCost.Mean())
	}
	cfgs[0].Side = 0
	if _, err := RunSeries(cfgs, 1, 1); err == nil {
		t.Fatal("series accepted invalid config")
	}
}

func TestRunSeriesMatchesRun(t *testing.T) {
	// The shared-pool series scheduler must reproduce per-point Run
	// exactly: same block partition, same merge order, any interleaving.
	cfgs := make([]Config, 0, 6)
	for _, m := range []int{1, 2, 4} {
		for _, kind := range []StrategyKind{Nearest, TwoChoices} {
			c := baseConfig()
			c.M = m
			c.Strategy = StrategySpec{Kind: kind, Radius: 4}
			cfgs = append(cfgs, c)
		}
	}
	const trials, workers = 7, 3
	series, err := RunSeries(cfgs, trials, workers)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := Run(cfg, trials, workers)
		if err != nil {
			t.Fatal(err)
		}
		if series[i] != want {
			t.Fatalf("point %d: series %+v != run %+v", i, series[i], want)
		}
	}
}

// TestRunSeriesConfigParallelism exercises config-level parallelism with
// more workers than any single point's trials; run under -race (CI does)
// to validate that Worlds are shared safely across workers while Runners
// stay worker-local.
func TestRunSeriesConfigParallelism(t *testing.T) {
	cfgs := make([]Config, 8)
	for i := range cfgs {
		cfgs[i] = baseConfig()
		cfgs[i].Seed = uint64(100 + i)
		cfgs[i].Strategy = StrategySpec{Kind: TwoChoices, Radius: 5}
	}
	a, err := RunSeries(cfgs, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeries(cfgs, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if a[i].Trials != 2 || a[i] != b[i] {
			t.Fatalf("point %d: worker count changed series results: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func BenchmarkTrialNearestN2025(b *testing.B) {
	cfg := Config{Side: 45, K: 100, M: 10, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrial(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrialTwoChoiceN2025(b *testing.B) {
	cfg := Config{Side: 45, K: 500, M: 10, Seed: 1}
	cfg.Strategy = StrategySpec{Kind: TwoChoices, Radius: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrial(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
