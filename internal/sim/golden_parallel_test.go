package sim

import "testing"

// parallelPin is one (config, trial) → Result pair of the intra-trial
// sharded engine (Config.Workers > 0, ShardDeterministic), captured at
// introduction time (PR 6) by running the matrix at P=1 — which, by the
// engine's granule-stream construction, is bit-identical to every other
// worker count. The sharded discipline is a new seeded process (frozen
// chunk snapshots, per-granule RNG streams); the sequential engine's
// 110/50/36-case matrices stay untouched because Workers = 0 bypasses
// sharding entirely. Any change to the granule size, the stream
// labeling, the shard ownership rule, the barrier merge order or the
// frozen-snapshot semantics perturbs these trajectories and must be
// deliberate and re-pinned.
type parallelPin struct {
	name  string
	trial uint64
	cfg   Config
	want  Result
}

// TestGoldenMatrixParallel replays the sharded-engine matrix (strategy
// × miss policy × index × churn, plus streaming/links metrics, custom
// chunk, beta and d-choice variants) against the captured outputs — at
// the pinned P=4 and again at P ∈ {1, 2, 8}, enforcing both the frozen
// trajectories and the any-P bit-identity they were captured under.
func TestGoldenMatrixParallel(t *testing.T) {
	for _, p := range parallelPins {
		if p.cfg.Workers != 4 || p.cfg.Shard != ShardDeterministic {
			t.Fatalf("%s: parallel pins must be captured at Workers=4 deterministic, got %+v", p.name, p.cfg)
		}
		for _, workers := range []int{4, 1, 2, 8} {
			cfg := p.cfg
			cfg.Workers = workers
			got, err := RunTrial(cfg, p.trial)
			if err != nil {
				t.Fatalf("%s t=%d P=%d: %v", p.name, p.trial, workers, err)
			}
			if got != p.want {
				t.Errorf("%s t=%d P=%d:\n got %+v\nwant %+v", p.name, p.trial, workers, got, p.want)
			}
		}
	}
}

var parallelPins = []parallelPin{
	{name: "nearest/resample/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 0, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 78, MeanCost: 3.08935546875, Requests: 4096, Escalated: 0, Backhaul: 0, Uncached: 62}},
	{name: "nearest/resample/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 0, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 78, MeanCost: 3.08935546875, Requests: 4096, Escalated: 0, Backhaul: 0, Uncached: 62}},
	{name: "nearest/escalate/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 0, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 1, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 71, MeanCost: 2.6318359375, Requests: 4096, Escalated: 0, Backhaul: 651, Uncached: 62}},
	{name: "nearest/escalate/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 0, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 1, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 71, MeanCost: 2.6318359375, Requests: 4096, Escalated: 0, Backhaul: 651, Uncached: 62}},
	{name: "nearest/origin/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 0, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 71, MeanCost: 2.6318359375, Requests: 4096, Escalated: 0, Backhaul: 651, Uncached: 62}},
	{name: "nearest/origin/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 0, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 71, MeanCost: 2.6318359375, Requests: 4096, Escalated: 0, Backhaul: 651, Uncached: 62}},
	{name: "two-choices/resample/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 68, MeanCost: 3.844482421875, Requests: 4096, Escalated: 1438, Backhaul: 0, Uncached: 62}},
	{name: "two-choices/resample/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 69, MeanCost: 3.826904296875, Requests: 4096, Escalated: 1438, Backhaul: 0, Uncached: 62}},
	{name: "two-choices/escalate/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 1, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 65, MeanCost: 3.27490234375, Requests: 4096, Escalated: 1241, Backhaul: 651, Uncached: 62}},
	{name: "two-choices/escalate/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 1, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 67, MeanCost: 3.278076171875, Requests: 4096, Escalated: 1241, Backhaul: 651, Uncached: 62}},
	{name: "two-choices/origin/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 49, MeanCost: 1.227783203125, Requests: 4096, Escalated: 0, Backhaul: 1892, Uncached: 62}},
	{name: "two-choices/origin/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 50, MeanCost: 1.23583984375, Requests: 4096, Escalated: 0, Backhaul: 1892, Uncached: 62}},
	{name: "one-choice/resample/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 2, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 83, MeanCost: 3.849365234375, Requests: 4096, Escalated: 1438, Backhaul: 0, Uncached: 62}},
	{name: "one-choice/resample/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 2, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 76, MeanCost: 3.827392578125, Requests: 4096, Escalated: 1438, Backhaul: 0, Uncached: 62}},
	{name: "one-choice/escalate/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 2, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 1, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 71, MeanCost: 3.263671875, Requests: 4096, Escalated: 1241, Backhaul: 651, Uncached: 62}},
	{name: "one-choice/escalate/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 2, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 1, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 70, MeanCost: 3.26611328125, Requests: 4096, Escalated: 1241, Backhaul: 651, Uncached: 62}},
	{name: "one-choice/origin/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 2, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 56, MeanCost: 1.225341796875, Requests: 4096, Escalated: 0, Backhaul: 1892, Uncached: 62}},
	{name: "one-choice/origin/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 2, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 69, MeanCost: 1.22509765625, Requests: 4096, Escalated: 0, Backhaul: 1892, Uncached: 62}},
	{name: "oracle/resample/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 3, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 67, MeanCost: 3.84521484375, Requests: 4096, Escalated: 1438, Backhaul: 0, Uncached: 62}},
	{name: "oracle/resample/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 3, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 66, MeanCost: 3.830810546875, Requests: 4096, Escalated: 1438, Backhaul: 0, Uncached: 62}},
	{name: "oracle/escalate/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 3, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 1, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 58, MeanCost: 3.306640625, Requests: 4096, Escalated: 1241, Backhaul: 651, Uncached: 62}},
	{name: "oracle/escalate/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 3, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 1, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 58, MeanCost: 3.311279296875, Requests: 4096, Escalated: 1241, Backhaul: 651, Uncached: 62}},
	{name: "oracle/origin/none", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 3, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 58, MeanCost: 3.306640625, Requests: 4096, Escalated: 1241, Backhaul: 651, Uncached: 62}},
	{name: "oracle/origin/tiles", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 3, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 2, Metrics: 0, Streams: 1, Index: 1, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 58, MeanCost: 3.311279296875, Requests: 4096, Escalated: 1241, Backhaul: 651, Uncached: 62}},
	{name: "churn-replicas/two-choices/none", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Churn: 1, ChurnRate: 0.5, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 50, MeanCost: 3.999267578125, Requests: 4096, Escalated: 1567, Backhaul: 0, Uncached: 50, ChurnEvents: 1394, ChurnSkipped: 142}},
	{name: "churn-replicas/two-choices/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Churn: 1, ChurnRate: 0.5, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 48, MeanCost: 3.970947265625, Requests: 4096, Escalated: 1567, Backhaul: 0, Uncached: 50, ChurnEvents: 1394, ChurnSkipped: 142}},
	{name: "churn-drift/two-choices/none", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Churn: 2, ChurnRate: 0.5, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 43, MeanCost: 3.96875, Requests: 4096, Escalated: 1555, Backhaul: 0, Uncached: 50, ChurnEvents: 1456, ChurnSkipped: 80}},
	{name: "churn-drift/two-choices/tiles", trial: 1,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 1, Churn: 2, ChurnRate: 0.5, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 42, MeanCost: 3.983154296875, Requests: 4096, Escalated: 1555, Backhaul: 0, Uncached: 50, ChurnEvents: 1456, ChurnSkipped: 80}},
	{name: "streaming/two-choices", trial: 2,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 2, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 78, MeanCost: 3.91845703125, Requests: 4096, Escalated: 1486, Backhaul: 0, Uncached: 58, Streamed: true, HopMax: 12, HopStd: 2.6019042828386927, LoadP99: 53, LinkMaxApprox: 59}},
	{name: "links/two-choices", trial: 2,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 1, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 78, MeanCost: 3.91845703125, Requests: 4096, Escalated: 1486, Backhaul: 0, Uncached: 58, MaxLinkLoad: 59, LinkCongestion: 2.117383177570093}},
	{name: "chunk256/two-choices", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Chunk: 256, Seed: 0x71},
		want: Result{MaxLoad: 68, MeanCost: 3.82861328125, Requests: 4096, Escalated: 1438, Backhaul: 0, Uncached: 62}},
	{name: "beta0.5/two-choices", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 3, Choices: 0, WithoutReplacement: false, Beta: 0.5}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 70, MeanCost: 3.829345703125, Requests: 4096, Escalated: 1438, Backhaul: 0, Uncached: 62}},
	{name: "d3-wor/two-choices", trial: 0,
		cfg:  Config{Side: 12, K: 150, M: 2, Popularity: PopSpec{Kind: 1, Gamma: 0.9}, Strategy: StrategySpec{Kind: 1, Radius: 4, Choices: 3, WithoutReplacement: true, Beta: 0}, Requests: 4096, MissPolicy: 0, Metrics: 0, Streams: 1, Index: 0, Workers: 4, Shard: 0, Seed: 0x71},
		want: Result{MaxLoad: 67, MeanCost: 3.969482421875, Requests: 4096, Escalated: 966, Backhaul: 0, Uncached: 62}},
}
