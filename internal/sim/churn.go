package sim

import (
	"math/rand/v2"

	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/workload"
)

// The churn phase of the request pipeline (§VI dynamic regime): after a
// chunk of requests is assigned and accounted, the placement mutates
// through cache.ReplaceReplica before the next chunk is generated, so
// the strategies always observe a fully consistent placement and tile
// index — mutations never interleave with candidate enumeration.
//
// Events are scheduled by a fractional credit accumulator (ChurnRate
// expected events per request, exact over the trial) and drawn from a
// dedicated per-trial churn stream (xrand namespace 6), making the
// discipline a seeded process independent of the placement and request
// streams: ChurnNone never consumes it and stays bit-identical to the
// pre-churn engine. An event migrates one replica to a uniform
// destination — a plain cache.ReplaceReplica when the destination has a
// free slot, a cache.SwapReplicas exchange (displacing a uniform
// resident back to the source) when it is full, which is the common
// shape in the K ≫ M regime. Infeasible events — the destination equals
// the source or already caches the file, or the displaced file is
// already at the source — are dropped and counted in
// Result.ChurnSkipped. Either way |S_j| and the cached-file set are
// invariant (see cache.ReplaceReplica), and the whole path is
// allocation-free at steady state.
//
// The schedule state lives in churnState so that both owners of mutable
// placement state can drive it: the batch engine's Runner (per trial,
// applied at pipeline-chunk barriers) and the served mode's
// sim.Snapshot (long-running, applied by the daemon's mutator between
// request batches — see snapshot.go and internal/serve).

// churnState is the churn-schedule state of one mutable placement: the
// fractional event credit carried between applications and, for
// ChurnDrift, the shot-noise drifter plus the arenas its conditioned
// file sampler is rebuilt into (CustomBuilder reuse keeps the churn
// path allocation-free).
type churnState struct {
	credit       float64
	drift        *workload.Drifter
	driftWeights []float64
	driftCond    *dist.CustomBuilder
	driftPop     dist.Popularity
	// vacant, when non-nil (HeteroArrival), marks nodes that have not yet
	// joined: churn never migrates replicas onto them.
	vacant []bool
}

// init allocates the drift machinery when the world's churn mode needs
// it. Call once per owner; reset() rewinds the state between trials.
func (cs *churnState) init(w *World) {
	if w.cfg.Churn == ChurnDrift {
		cs.drift = workload.NewDrifter(w.cfg.K, churnDriftBoost, churnDriftBirth, churnDriftLifespan)
		cs.driftWeights = make([]float64, w.cfg.K)
		cs.driftCond = dist.NewCustomBuilder(w.cfg.K)
	}
}

// reset rewinds the schedule to its trial-start state: zero credit, a
// fresh drifter epoch, and a sampler rebuild forced on first use.
func (cs *churnState) reset() {
	cs.credit = 0
	if cs.drift != nil {
		cs.drift.Reset()
		cs.driftPop = nil
	}
}

// churnChunk applies the churn schedule accrued by one accounted chunk
// of c requests. The engine skips the call after the trial's final
// chunk (no request would ever observe the mutation).
func (r *Runner) churnChunk(p *cache.Placement, rng *rand.Rand, c int, res *Result) {
	r.churnSt.apply(r.w, p, rng, c, &res.ChurnEvents, &res.ChurnSkipped)
}

// apply executes the schedule accrued by c elapsed requests against p,
// counting applied migrations into events and infeasible drops into
// skipped. One drifter tick per call: under the batch engine a call is
// one pipeline chunk, under the served mode one mutator batch — each is
// its own seeded process over the shared event mechanics.
func (cs *churnState) apply(w *World, p *cache.Placement, rng *rand.Rand, c int, events, skipped *int) {
	cs.credit += w.cfg.ChurnRate * float64(c)
	if cs.drift != nil {
		// One drift tick per application; rebuild the conditioned
		// migration sampler only when the active set actually changed.
		cs.drift.Step(rng)
		if cs.driftPop == nil || cs.drift.Dirty() {
			cs.rebuildDriftSampler(p)
		}
	}
	n := w.g.N()
	slots := p.ReplicaSlots()
	for ; cs.credit >= 1; cs.credit-- {
		var j int
		var u int32
		switch w.cfg.Churn {
		case ChurnReplicas:
			// A uniform index into the flat replica arena is a uniform
			// cached replica: files are hit ∝ |S_j|.
			j, u = p.SlotReplica(rng.IntN(slots))
		case ChurnDrift:
			// Files are hit ∝ drifting popularity (restricted to cached
			// files, so a replica always exists); the migrated replica
			// is uniform within S_j.
			j = cs.driftPop.Sample(rng)
			reps := p.Replicas(j)
			u = reps[rng.IntN(len(reps))]
		}
		v := int32(rng.IntN(n))
		if v == u || p.Has(int(v), j) {
			*skipped++
			continue
		}
		// A vacant destination (HeteroArrival) must stay empty until its
		// arrival event: its t = 0 would read as a free slot below and the
		// swap branch would sample from an empty file list.
		if cs.vacant != nil && cs.vacant[v] {
			*skipped++
			continue
		}
		if p.T(int(v)) < p.Cap(int(v)) {
			// Destination has a free slot: plain migration.
			p.ReplaceReplica(j, u, v)
			*events++
			continue
		}
		// Destination full — the common shape when K ≫ M, where almost
		// every cache holds exactly M distinct files: displace a uniform
		// resident of v back to u (an exchange; both replica counts stay
		// invariant). Skipped only when u already caches the displaced
		// file (probability ≈ M/K).
		vFiles := p.NodeFiles(int(v))
		j2 := int(vFiles[rng.IntN(len(vFiles))])
		if !p.CanSwap(j, u, j2, v) {
			*skipped++
			continue
		}
		p.SwapReplicas(j, u, j2, v)
		*events++
	}
}

// rebuildDriftSampler reconditions the ChurnDrift file sampler on the
// drifter's instantaneous weights masked to the placement's cached
// files, rebuilt into the state's CustomBuilder arenas (bit-identical
// to a fresh dist.NewCustom, allocation-free after the first build).
func (cs *churnState) rebuildDriftSampler(p *cache.Placement) {
	clear(cs.driftWeights)
	dw := cs.drift.Weights()
	for _, j := range p.CachedFiles() {
		cs.driftWeights[j] = dw[j]
	}
	cs.driftPop = cs.driftCond.Build(cs.driftWeights, "churn-drift")
	cs.drift.ClearDirty()
}
