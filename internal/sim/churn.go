package sim

import (
	"math/rand/v2"

	"repro/internal/cache"
)

// The churn phase of the request pipeline (§VI dynamic regime): after a
// chunk of requests is assigned and accounted, the placement mutates
// through cache.ReplaceReplica before the next chunk is generated, so
// the strategies always observe a fully consistent placement and tile
// index — mutations never interleave with candidate enumeration.
//
// Events are scheduled by a fractional credit accumulator (ChurnRate
// expected events per request, exact over the trial) and drawn from a
// dedicated per-trial churn stream (xrand namespace 6), making the
// discipline a seeded process independent of the placement and request
// streams: ChurnNone never consumes it and stays bit-identical to the
// pre-churn engine. An event migrates one replica to a uniform
// destination — a plain cache.ReplaceReplica when the destination has a
// free slot, a cache.SwapReplicas exchange (displacing a uniform
// resident back to the source) when it is full, which is the common
// shape in the K ≫ M regime. Infeasible events — the destination equals
// the source or already caches the file, or the displaced file is
// already at the source — are dropped and counted in
// Result.ChurnSkipped. Either way |S_j| and the cached-file set are
// invariant (see cache.ReplaceReplica), and the whole path is
// allocation-free at steady state.

// churnChunk applies the churn schedule accrued by one accounted chunk
// of c requests. The engine skips the call after the trial's final
// chunk (no request would ever observe the mutation).
func (r *Runner) churnChunk(p *cache.Placement, rng *rand.Rand, c int, res *Result) {
	w := r.w
	r.churnCredit += w.cfg.ChurnRate * float64(c)
	if r.drift != nil {
		// One drift tick per chunk; rebuild the conditioned migration
		// sampler only when the active set actually changed.
		r.drift.Step(rng)
		if r.driftPop == nil || r.drift.Dirty() {
			r.rebuildDriftSampler(p)
		}
	}
	n := w.g.N()
	slots := p.ReplicaSlots()
	for ; r.churnCredit >= 1; r.churnCredit-- {
		var j int
		var u int32
		switch w.cfg.Churn {
		case ChurnReplicas:
			// A uniform index into the flat replica arena is a uniform
			// cached replica: files are hit ∝ |S_j|.
			j, u = p.SlotReplica(rng.IntN(slots))
		case ChurnDrift:
			// Files are hit ∝ drifting popularity (restricted to cached
			// files, so a replica always exists); the migrated replica
			// is uniform within S_j.
			j = r.driftPop.Sample(rng)
			reps := p.Replicas(j)
			u = reps[rng.IntN(len(reps))]
		}
		v := int32(rng.IntN(n))
		if v == u || p.Has(int(v), j) {
			res.ChurnSkipped++
			continue
		}
		if p.T(int(v)) < w.cfg.M {
			// Destination has a free slot: plain migration.
			p.ReplaceReplica(j, u, v)
			res.ChurnEvents++
			continue
		}
		// Destination full — the common shape when K ≫ M, where almost
		// every cache holds exactly M distinct files: displace a uniform
		// resident of v back to u (an exchange; both replica counts stay
		// invariant). Skipped only when u already caches the displaced
		// file (probability ≈ M/K).
		vFiles := p.NodeFiles(int(v))
		j2 := int(vFiles[rng.IntN(len(vFiles))])
		if !p.CanSwap(j, u, j2, v) {
			res.ChurnSkipped++
			continue
		}
		p.SwapReplicas(j, u, j2, v)
		res.ChurnEvents++
	}
}

// rebuildDriftSampler reconditions the ChurnDrift file sampler on the
// drifter's instantaneous weights masked to the placement's cached
// files, rebuilt into the runner's CustomBuilder arenas (bit-identical
// to a fresh dist.NewCustom, allocation-free after the first build).
func (r *Runner) rebuildDriftSampler(p *cache.Placement) {
	clear(r.driftWeights)
	dw := r.drift.Weights()
	for _, j := range p.CachedFiles() {
		r.driftWeights[j] = dw[j]
	}
	r.driftPop = r.driftCond.Build(r.driftWeights, "churn-drift")
	r.drift.ClearDirty()
}
