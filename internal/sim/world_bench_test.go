package sim

import "testing"

// paperScaleCfg is the acceptance-benchmark point for the compiled-world
// layer: n = 4900 servers, K = 10^4 files, Zipf γ = 1.2, two-choices r = 8.
func paperScaleCfg() Config {
	return Config{
		Side: 70, K: 10000, M: 10, Seed: 1,
		Popularity: PopSpec{Kind: PopZipf, Gamma: 1.2},
		Strategy:   StrategySpec{Kind: TwoChoices, Radius: 8},
	}
}

// BenchmarkRunTrial measures one end-to-end trial through the public
// RunTrial wrapper at the paper-scale point (compile-once world memoized
// behind the wrapper, runner pooled).
func BenchmarkRunTrial(b *testing.B) {
	cfg := paperScaleCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrial(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldRunTrial measures the same trial on an explicit compiled
// World with a dedicated reused Runner — the exact per-worker path of
// Run/RunSeries, with zero steady-state allocations.
func BenchmarkWorldRunTrial(b *testing.B) {
	w, err := Compile(paperScaleCfg())
	if err != nil {
		b.Fatal(err)
	}
	r := w.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RunTrial(uint64(i))
	}
}

// BenchmarkCompile measures the trial-invariant setup the World layer
// amortizes (grid + coordinate tables, Zipf PMF + alias table, placement
// profile, RNG sources).
func BenchmarkCompile(b *testing.B) {
	cfg := paperScaleCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
