package sim

import (
	"fmt"
	"testing"
)

// paperScaleCfg is the acceptance-benchmark point for the compiled-world
// layer: n = 4900 servers, K = 10^4 files, Zipf γ = 1.2, two-choices r = 8.
func paperScaleCfg() Config {
	return Config{
		Side: 70, K: 10000, M: 10, Seed: 1,
		Popularity: PopSpec{Kind: PopZipf, Gamma: 1.2},
		Strategy:   StrategySpec{Kind: TwoChoices, Radius: 8},
	}
}

// BenchmarkRunTrial measures one end-to-end trial through the public
// RunTrial wrapper at the paper-scale point (compile-once world memoized
// behind the wrapper, runner pooled).
func BenchmarkRunTrial(b *testing.B) {
	cfg := paperScaleCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrial(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldRunTrial measures the same trial on an explicit compiled
// World with a dedicated reused Runner — the exact per-worker path of
// Run/RunSeries, with zero steady-state allocations.
func BenchmarkWorldRunTrial(b *testing.B) {
	w, err := Compile(paperScaleCfg())
	if err != nil {
		b.Fatal(err)
	}
	r := w.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RunTrial(uint64(i))
	}
}

// BenchmarkWorldRunTrialSplit measures the same paper-scale trial under
// the split-stream discipline, where the generate phase runs as one
// batched dist.RequestBatch call per pipeline chunk instead of two
// interface dispatches per request.
func BenchmarkWorldRunTrialSplit(b *testing.B) {
	cfg := paperScaleCfg()
	cfg.Streams = StreamsSplit
	w, err := Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := w.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RunTrial(uint64(i))
	}
}

// wideWorldCfg is the widegrid acceptance point: one Side=1000
// (n = 10⁶ servers, 10⁶ requests) two-choices r=8 trial with streaming
// metrics and split streams. The request path allocates nothing; all
// memory is the compiled world plus the runner's O(n) placement/load
// state — no O(n) metric vector is ever materialized.
func wideWorldCfg(ix IndexMode) Config {
	return Config{
		Side: 1000, K: 10000, M: 10, Seed: 1,
		Popularity: PopSpec{Kind: PopZipf, Gamma: 1.2},
		Strategy:   StrategySpec{Kind: TwoChoices, Radius: 8},
		Metrics:    MetricsStreaming,
		Streams:    StreamsSplit,
		Index:      ix,
	}
}

// BenchmarkWideWorldTrial is the PR 4 headline: the wide-world trial
// through the tile-bucketed spatial replica index (sub-second; was ~9.8s
// through the exact filter, kept below as the NoIndex baseline).
func BenchmarkWideWorldTrial(b *testing.B) {
	benchWideWorld(b, wideWorldCfg(IndexTiles))
}

// BenchmarkWideWorldTrialNoIndex is the same point under the PR 3
// discipline: at K = 10⁴, M = 10 the mid-popularity files have
// |S_j| ≈ 10³ ≈ the rejection budget, so most assignments pay the exact
// O(min(|S_j|, |B_r|)) filter.
func BenchmarkWideWorldTrialNoIndex(b *testing.B) {
	benchWideWorld(b, wideWorldCfg(IndexNone))
}

// BenchmarkWideWorldTrialParallel is the PR 6 scaling curve: the
// wide-world trial through the intra-trial sharded engine
// (ShardDeterministic) at P ∈ {1, 2, 4, 8} workers. P=1 measures the
// sharded discipline's sequential cost (granule streams + barrier
// bookkeeping, no concurrency); higher P divide the assign phase while
// placement build, delta application and accounting stay with the
// coordinator — the Amdahl floor of the curve.
func BenchmarkWideWorldTrialParallel(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			cfg := wideWorldCfg(IndexTiles)
			cfg.Workers = p
			benchWideWorld(b, cfg)
		})
	}
}

func benchWideWorld(b *testing.B, cfg Config) {
	w, err := Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := w.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RunTrial(uint64(i))
	}
}

// BenchmarkWorldRunTrialIndexed is the paper-scale point under the
// tile-index discipline (compare BenchmarkWorldRunTrial).
func BenchmarkWorldRunTrialIndexed(b *testing.B) {
	cfg := paperScaleCfg()
	cfg.Index = IndexTiles
	w, err := Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := w.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RunTrial(uint64(i))
	}
}

// BenchmarkWideWorldTrialFaults is the wide-world trial with the fault
// engine live: FaultsCrash at a rate that kills ~1% of the 10⁶ nodes
// over the trial with MTTR-style recovery at half that rate, under the
// tile index and MissEscalate (the resampling policy is incompatible
// with faults). Measures the steady-state cost of the liveness mask on
// the request path — per-candidate Live() checks, tile live-count
// consultation, and the occasional degradation-ladder retry — on top of
// the per-chunk fault events themselves.
func BenchmarkWideWorldTrialFaults(b *testing.B) {
	cfg := wideWorldCfg(IndexTiles)
	cfg.MissPolicy = MissEscalate
	cfg.Faults = FaultsCrash
	cfg.FaultRate = 0.01
	cfg.RecoverRate = 0.005
	benchWideWorld(b, cfg)
}

// BenchmarkWideWorldTrialHetero is the wide-world trial with the
// heterogeneity engine live: power-law per-node cache sizes under
// HeteroCapacity, so every two-choices comparison reads loads through
// the capacity-weighted view and the placement build runs the
// variable-stride CSR path. Measures the steady-state cost of the
// weighted reads plus the per-trial profile draw on top of the
// homogeneous BenchmarkWideWorldTrial.
func BenchmarkWideWorldTrialHetero(b *testing.B) {
	cfg := wideWorldCfg(IndexTiles)
	cfg.Hetero = HeteroCapacity
	cfg.Profile = ProfilePowerLaw
	benchWideWorld(b, cfg)
}

// BenchmarkWorldRunTrialHeteroArrival is the open-system regime at the
// paper-scale point (compare BenchmarkWorldRunTrialChurn): ~25% of the
// nodes start vacant and join at chunk barriers, and every join refills
// the node's slots and rebuilds the replica index and tile index —
// an O(n·M) rebuild per event, which is why this benchmark lives at
// paper scale: at the wide-world point the per-join rebuild alone is
// ~10⁷ entries and arrivals would dominate the trial by orders of
// magnitude. MissEscalate handles requests whose in-radius candidates
// are still vacant.
func BenchmarkWorldRunTrialHeteroArrival(b *testing.B) {
	cfg := paperScaleCfg()
	cfg.Index = IndexTiles
	cfg.MissPolicy = MissEscalate
	cfg.Hetero = HeteroArrival
	cfg.Profile = ProfilePowerLaw
	cfg.ArrivalRate = 0.01
	w, err := Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := w.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RunTrial(uint64(i))
	}
}

// BenchmarkCompile measures the trial-invariant setup the World layer
// amortizes (grid + coordinate tables, Zipf PMF + alias table, placement
// profile, RNG sources).
func BenchmarkCompile(b *testing.B) {
	cfg := paperScaleCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldRunTrialChurn measures the paper-scale trial with the
// dynamic regime switched on (ChurnReplicas, rate 0.5 — one migration
// per two requests, ~2k events per trial) under the tile index: the
// incremental Placement/TileIndex maintenance costs under a µs per
// event (~0.9 µs including the swap double-splices), so even this heavy
// schedule keeps the dynamic trial at ~1.6× the frozen-placement
// BenchmarkWorldRunTrialIndexed, where per-chunk from-scratch rebuilds
// would more than double it (see docs/perf.md's tradeoff table).
func BenchmarkWorldRunTrialChurn(b *testing.B) {
	cfg := paperScaleCfg()
	cfg.Index = IndexTiles
	cfg.Churn = ChurnReplicas
	cfg.ChurnRate = 0.5
	w, err := Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := w.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RunTrial(uint64(i))
	}
}

// BenchmarkWorldRunTrialChurnDrift is the same point under the
// popularity-drift-coupled schedule (drifter tick + conditioned-sampler
// rebuild per chunk on top of the migrations).
func BenchmarkWorldRunTrialChurnDrift(b *testing.B) {
	cfg := paperScaleCfg()
	cfg.Index = IndexTiles
	cfg.Churn = ChurnDrift
	cfg.ChurnRate = 0.5
	w, err := Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := w.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RunTrial(uint64(i))
	}
}
