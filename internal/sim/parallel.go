package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// resolveWorkers applies the worker-count defaulting shared by Run and
// RunSeries: non-positive means GOMAXPROCS, and a single configuration's
// trials are never split across more blocks than there are trials (the
// block partition is part of the deterministic reduction order).
func resolveWorkers(workers, trials int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	return workers
}

// Run executes trials independent trials of cfg across a worker pool and
// returns the merged aggregate. The world is compiled once and shared;
// each worker carries its own Runner, and each trial its own deterministic
// RNG streams, so the result is identical for any worker count (workers
// ≤ 0 uses GOMAXPROCS).
func Run(cfg Config, trials, workers int) (Aggregate, error) {
	if trials <= 0 {
		if err := cfg.validate(); err != nil {
			return Aggregate{}, err
		}
		return Aggregate{}, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	w, err := Compile(cfg)
	if err != nil {
		return Aggregate{}, err
	}
	workers = resolveWorkers(workers, trials)

	// Static block partition keeps per-worker state cache-friendly and
	// the reduction deterministic: worker w owns trials [lo_w, hi_w).
	partials := make([]Aggregate, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := BlockRange(trials, workers, i)
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			r := w.NewRunner()
			for t := lo; t < hi; t++ {
				partials[i].Add(r.RunTrial(uint64(t)))
			}
		}(i, lo, hi)
	}
	wg.Wait()
	var agg Aggregate
	for i := 0; i < workers; i++ {
		agg.Merge(partials[i])
	}
	return agg, nil
}

// RunSeries executes Run over a slice of configs (one experiment curve),
// fanning configurations AND trials out across one shared worker pool, so
// a sweep with many cheap points saturates all cores instead of
// parallelizing only within a point. Results are returned in input order
// and are bit-identical to calling Run(cfg, trials, workers) per point:
// each point keeps Run's static trial partition and merge order, only the
// scheduling of the resulting blocks is shared. A non-nil error aborts
// the series.
func RunSeries(cfgs []Config, trials, workers int) ([]Aggregate, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	if trials <= 0 {
		return nil, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	worlds := make([]*World, len(cfgs))
	for i, cfg := range cfgs {
		w, err := Compile(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: point %d (%+v): %w", i, cfg, err)
		}
		worlds[i] = w
	}
	workers = resolveWorkers(workers, trials*len(cfgs))
	blocks := resolveWorkers(workers, trials) // per-point partition, as in Run

	type task struct {
		point, block, lo, hi int
	}
	tasks := make([]task, 0, len(cfgs)*blocks)
	for i := range cfgs {
		for b := 0; b < blocks; b++ {
			lo, hi := BlockRange(trials, blocks, b)
			tasks = append(tasks, task{point: i, block: b, lo: lo, hi: hi})
		}
	}

	partials := make([][]Aggregate, len(cfgs))
	for i := range partials {
		partials[i] = make([]Aggregate, blocks)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Runners are per-(worker, point); reuse the last one while a
			// worker drains consecutive blocks of the same point.
			var r *Runner
			lastPoint := -1
			for ti := range next {
				tk := tasks[ti]
				if tk.point != lastPoint {
					r = worlds[tk.point].NewRunner()
					lastPoint = tk.point
				}
				for t := tk.lo; t < tk.hi; t++ {
					partials[tk.point][tk.block].Add(r.RunTrial(uint64(t)))
				}
			}
		}()
	}
	for ti := range tasks {
		next <- ti
	}
	close(next)
	wg.Wait()

	out := make([]Aggregate, len(cfgs))
	for i := range cfgs {
		for b := 0; b < blocks; b++ {
			out[i].Merge(partials[i][b])
		}
	}
	return out, nil
}
