package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// Run executes trials independent trials of cfg across a worker pool and
// returns the merged aggregate. Trials are embarrassingly parallel; each
// carries its own deterministic RNG streams, so the result is identical
// for any worker count (workers ≤ 0 uses GOMAXPROCS).
func Run(cfg Config, trials, workers int) (Aggregate, error) {
	if err := cfg.validate(); err != nil {
		return Aggregate{}, err
	}
	if trials <= 0 {
		return Aggregate{}, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	// Static block partition keeps per-worker state cache-friendly and
	// the reduction deterministic: worker w owns trials [lo_w, hi_w).
	partials := make([]Aggregate, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := trials * w / workers
		hi := trials * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for t := lo; t < hi; t++ {
				res, err := RunTrial(cfg, uint64(t))
				if err != nil {
					errs[w] = err
					return
				}
				partials[w].Add(res)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var agg Aggregate
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return Aggregate{}, errs[w]
		}
		agg.Merge(partials[w])
	}
	return agg, nil
}

// RunSeries executes Run over a slice of configs (one experiment curve),
// parallelizing trials within each point. Results are returned in input
// order. A non-nil error aborts the series.
func RunSeries(cfgs []Config, trials, workers int) ([]Aggregate, error) {
	out := make([]Aggregate, len(cfgs))
	for i, cfg := range cfgs {
		a, err := Run(cfg, trials, workers)
		if err != nil {
			return nil, fmt.Errorf("sim: point %d (%+v): %w", i, cfg, err)
		}
		out[i] = a
	}
	return out, nil
}
