package sim

import "testing"

// The Parse* converters share one contract: the empty string and each
// canonical mode name round-trip to a valid mode with a nil error, and
// every other input is rejected with a non-nil error (never a panic,
// never a silently defaulted mode). The fuzz targets below pin that
// contract over arbitrary inputs; the seed corpus covers every valid
// name plus representative junk (case variants, whitespace, prefixes).

// fuzzSeedInputs is the shared seed corpus: all canonical names of all
// seven parsers plus near-misses that must be rejected.
var fuzzSeedInputs = []string{
	"", "none", "replicas", "drift", "deterministic", "racy",
	"tiles", "resample", "escalate", "origin", "crash", "regional",
	"capacity", "arrival", "uniform", "two-tier", "power-law",
	"None", "CRASH", " crash", "crash ", "crashx", "regiona",
	"tile", "det", "\x00", "日本語",
	"Capacity", "arrivals", " uniform", "two-tier ", "powerlaw", "two_tier",
}

func fuzzParse[M comparable](f *testing.F, parse func(string) (M, error), valid map[string]M) {
	for _, s := range fuzzSeedInputs {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, err := parse(s)
		want, ok := valid[s]
		if ok {
			if err != nil {
				t.Fatalf("parse(%q) rejected a canonical name: %v", s, err)
			}
			if got != want {
				t.Fatalf("parse(%q) = %v, want %v", s, got, want)
			}
			return
		}
		if err == nil {
			t.Fatalf("parse(%q) accepted junk as %v", s, got)
		}
	})
}

func FuzzParseChurn(f *testing.F) {
	fuzzParse(f, ParseChurn, map[string]ChurnMode{
		"": ChurnNone, "none": ChurnNone, "replicas": ChurnReplicas, "drift": ChurnDrift,
	})
}

func FuzzParseShard(f *testing.F) {
	fuzzParse(f, ParseShard, map[string]ShardMode{
		"": ShardDeterministic, "deterministic": ShardDeterministic, "racy": ShardRacy,
	})
}

func FuzzParseIndex(f *testing.F) {
	fuzzParse(f, ParseIndex, map[string]IndexMode{
		"": IndexNone, "none": IndexNone, "tiles": IndexTiles,
	})
}

func FuzzParseMiss(f *testing.F) {
	fuzzParse(f, ParseMiss, map[string]MissPolicy{
		"": MissResample, "resample": MissResample, "escalate": MissEscalate, "origin": MissOrigin,
	})
}

func FuzzParseFaults(f *testing.F) {
	fuzzParse(f, ParseFaults, map[string]FaultsMode{
		"": FaultsNone, "none": FaultsNone, "crash": FaultsCrash, "regional": FaultsRegional,
	})
}

func FuzzParseHetero(f *testing.F) {
	fuzzParse(f, ParseHetero, map[string]HeteroMode{
		"": HeteroNone, "none": HeteroNone, "capacity": HeteroCapacity, "arrival": HeteroArrival,
	})
}

func FuzzParseProfile(f *testing.F) {
	fuzzParse(f, ParseProfile, map[string]CacheProfile{
		"": ProfileUniform, "uniform": ProfileUniform, "two-tier": ProfileTwoTier, "power-law": ProfilePowerLaw,
	})
}
