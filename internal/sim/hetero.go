package sim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/cache"
	"repro/internal/core"
)

// This file implements the heterogeneity regime: per-node cache sizes
// M_u and service capacities C_u drawn from a CacheProfile, and — under
// HeteroArrival — genuinely new nodes joining the network mid-trial.
// Everything is driven from a dedicated xrand namespace (Split(8)), so
// enabling heterogeneity perturbs no other stream: the placement,
// request, origin, file, assignment, churn and fault schedules of a
// trial are unchanged draw for draw.
//
// Capacities feed the load comparison, not the accounting: strategies
// compare load/C_u via a ballsbins.WeightedLoads view over the raw load
// vector (integer-exact — multipliers are capMultLCM/C_u with capMultLCM
// the LCM of the admissible capacity range), while writes, MaxLoad and
// the per-trial summaries stay on raw request counts. The uniform
// profile has C_u ≡ 1 and installs no view at all, which is what makes
// the degenerate configuration (Hetero on, ProfileUniform) bit-identical
// to HeteroNone.
//
// Vacancy and liveness are orthogonal: a vacant node (HeteroArrival's
// not-yet-joined state) is up but caches nothing — it appears in no S_j,
// so no strategy can route to it, and it can still serve backhaul
// traffic at its own attached users. Fault injection may crash and
// recover it like any other node; an arrival event on a crashed node
// simply revives it as it joins.

// HeteroMode selects the node-heterogeneity regime.
type HeteroMode int

const (
	// HeteroNone is the homogeneous paper model: every node caches
	// exactly M files and serves at unit capacity.
	HeteroNone HeteroMode = iota
	// HeteroCapacity draws a per-node cache size M_u and service
	// capacity C_u from Config.Profile once per trial; placements become
	// variable-stride and the two-choices comparison becomes load/C_u.
	HeteroCapacity
	// HeteroArrival is HeteroCapacity plus node arrivals: a random ~25%
	// of nodes start vacant (empty cache) and join mid-trial at rate
	// Config.ArrivalRate, entering the placement, the replica and tile
	// indexes and the strategies' view at the next chunk barrier.
	HeteroArrival
)

// String returns the CLI name.
func (h HeteroMode) String() string {
	switch h {
	case HeteroNone:
		return "none"
	case HeteroCapacity:
		return "capacity"
	case HeteroArrival:
		return "arrival"
	default:
		return fmt.Sprintf("HeteroMode(%d)", int(h))
	}
}

// ParseHetero converts a CLI name.
func ParseHetero(s string) (HeteroMode, error) {
	switch s {
	case "none", "":
		return HeteroNone, nil
	case "capacity":
		return HeteroCapacity, nil
	case "arrival":
		return HeteroArrival, nil
	}
	return 0, fmt.Errorf("sim: unknown hetero mode %q (want none, capacity or arrival)", s)
}

// CacheProfile selects the per-node (M_u, C_u) distribution used by the
// heterogeneous regimes. Draws come from the dedicated hetero stream in
// node order, one trial at a time.
type CacheProfile int

const (
	// ProfileUniform is the degenerate profile: M_u = M and C_u = 1 for
	// every node, consuming no randomness — with it, HeteroCapacity
	// reproduces the homogeneous engine draw for draw.
	ProfileUniform CacheProfile = iota
	// ProfileTwoTier makes ~25% of nodes "big" (M_u = 2M, C_u = 2) and
	// the rest "small" (M_u = max(1, 2M/3), C_u = 1).
	ProfileTwoTier
	// ProfilePowerLaw draws M_u from a Pareto(α=3/2, x_m=M/3) tail
	// clamped to [1, 8M], with C_u = 1 + ⌊M_u/2M⌋ clamped to [1, 8].
	ProfilePowerLaw
)

// String returns the CLI name.
func (p CacheProfile) String() string {
	switch p {
	case ProfileUniform:
		return "uniform"
	case ProfileTwoTier:
		return "two-tier"
	case ProfilePowerLaw:
		return "power-law"
	default:
		return fmt.Sprintf("CacheProfile(%d)", int(p))
	}
}

// ParseProfile converts a CLI name.
func ParseProfile(s string) (CacheProfile, error) {
	switch s {
	case "uniform", "":
		return ProfileUniform, nil
	case "two-tier":
		return ProfileTwoTier, nil
	case "power-law":
		return ProfilePowerLaw, nil
	}
	return 0, fmt.Errorf("sim: unknown cache profile %q (want uniform, two-tier or power-law)", s)
}

const (
	// capMultLCM is the common load-view scale: LCM(1..8), divisible by
	// every admissible C_u, so the weighted comparison load·(capMultLCM/C_u)
	// orders exactly like load/C_u with no rounding.
	capMultLCM = 840
	// maxServiceCap bounds C_u (the power-law clamp; two-tier tops out
	// at 2).
	maxServiceCap = 8
	// paretoAlpha is the power-law profile's tail exponent.
	paretoAlpha = 1.5
	// vacantDenom: under HeteroArrival each node starts vacant with
	// probability 1/vacantDenom (same odds as the two-tier "big" coin).
	vacantDenom = 4
)

// capMult returns the weighted-view multiplier for service capacity c.
func capMult(c int) int32 { return int32(capMultLCM / c) }

// profileMaxCap returns the largest M_u profile p can emit — the
// per-node slot budget EnableHetero sizes the placement arenas with.
func profileMaxCap(p CacheProfile, m int) int {
	switch p {
	case ProfileTwoTier:
		return 2 * m
	case ProfilePowerLaw:
		return 8 * m
	default:
		return m
	}
}

// drawProfile fills caps (M_u) and, for non-uniform profiles, mults
// (capMultLCM/C_u) from rng in node order. ProfileUniform consumes no
// randomness, keeping the hetero stream's schedule identical whether or
// not the degenerate profile is in play.
func drawProfile(cfg Config, caps, mults []int32, rng *rand.Rand) {
	m := cfg.M
	switch cfg.Profile {
	case ProfileUniform:
		for u := range caps {
			caps[u] = int32(m)
		}
	case ProfileTwoTier:
		small := int32(max(1, (2*m)/3))
		for u := range caps {
			if rng.IntN(vacantDenom) == 0 {
				caps[u] = int32(2 * m)
				mults[u] = capMult(2)
			} else {
				caps[u] = small
				mults[u] = capMult(1)
			}
		}
	case ProfilePowerLaw:
		xm := float64(m) / 3
		for u := range caps {
			// Inverse-CDF Pareto: x_m·(1-x)^(-1/α), x uniform in [0,1).
			x := rng.Float64()
			mu := int(math.Round(xm * math.Pow(1-x, -1/paretoAlpha)))
			mu = min(max(mu, 1), 8*m)
			caps[u] = int32(mu)
			mults[u] = capMult(min(1+mu/(2*m), maxServiceCap))
		}
	default:
		panic(fmt.Sprintf("sim: unknown cache profile %v", cfg.Profile))
	}
}

// heteroState is the per-runner (and per-snapshot) heterogeneity
// scratch: the trial's capacity vector, weighted-view multipliers,
// vacancy mask and the arrival schedule's fractional-event credit. All
// arenas are allocated once; arming a trial only refills them.
type heteroState struct {
	caps       []int32
	mults      []int32 // nil for ProfileUniform: C_u ≡ 1 needs no view
	vacant     []bool  // nil unless HeteroArrival
	vacantList []int32 // still-vacant nodes, swap-removed on arrival
	credit     float64 // accumulated arrival events (ArrivalRate · requests)
}

// init sizes the arenas for w. No-op shape under HeteroNone (callers
// never init then).
func (hs *heteroState) init(w *World) {
	n := w.g.N()
	hs.caps = make([]int32, n)
	if w.cfg.Profile != ProfileUniform {
		hs.mults = make([]int32, n)
	}
	if w.cfg.Hetero == HeteroArrival {
		hs.vacant = make([]bool, n)
		hs.vacantList = make([]int32, 0, n)
	}
}

// arm draws trial state from rng: the capacity profile first, then —
// under HeteroArrival — one vacancy coin per node, in node order. The
// fixed draw order is what the golden pins rely on.
func (hs *heteroState) arm(w *World, rng *rand.Rand) {
	drawProfile(w.cfg, hs.caps, hs.mults, rng)
	hs.credit = 0
	if hs.vacant == nil {
		return
	}
	hs.vacantList = hs.vacantList[:0]
	for u := range hs.vacant {
		hs.vacant[u] = rng.IntN(vacantDenom) == 0
		if hs.vacant[u] {
			hs.vacantList = append(hs.vacantList, int32(u))
		}
	}
}

// wrapView returns the load view the strategies should compare through:
// inner itself when no capacity skew is in play, or the runner's
// WeightedLoads rebound over inner. Rebinding is in place — no
// allocation on the trial path.
func (r *Runner) wrapView(inner core.LoadReader) core.LoadReader {
	if r.w.cfg.Hetero == HeteroNone || r.heteroSt.mults == nil {
		return inner
	}
	r.weighted.Bind(inner, r.heteroSt.mults)
	return r.weighted
}

// armHetero prepares trial t's heterogeneity: it derives the dedicated
// hetero stream, draws the capacity profile and vacancy pattern, and
// installs them into the placer ahead of Place. It returns the hetero
// RNG — live for the trial's arrival schedule — under HeteroArrival and
// nil otherwise; under HeteroNone the stream is never derived.
func (r *Runner) armHetero(t uint64) *rand.Rand {
	w := r.w
	if w.cfg.Hetero == HeteroNone {
		return nil
	}
	rng := r.hetero.stream(w.heteroSrc, t)
	r.heteroSt.arm(w, rng)
	r.placer.SetHetero(r.heteroSt.caps, r.heteroSt.vacant)
	if w.cfg.Hetero != HeteroArrival {
		return nil
	}
	return rng
}

// applyArrivals advances the arrival schedule past c served requests:
// credit accrues at ArrivalRate events per request, and each whole
// event picks a uniform still-vacant node, fills it via the placer
// (rebuilding the replica and tile indexes in place) and revives it if
// fault injection had crashed it. With no vacant nodes left the event
// is burned as skipped, keeping the RNG schedule independent of how
// fast the network fills up. Both mutable-placement owners drive it at
// their barriers — the batch Runner per pipeline chunk, the served
// Snapshot per Advance — always before the fault and churn engines.
func (hs *heteroState) applyArrivals(w *World, placer *cache.Placer, live *cache.Liveness, rng *rand.Rand, c int, events, skipped *int) {
	hs.credit += w.cfg.ArrivalRate * float64(c)
	for ; hs.credit >= 1; hs.credit-- {
		if len(hs.vacantList) == 0 {
			*skipped++
			continue
		}
		i := rng.IntN(len(hs.vacantList))
		u := hs.vacantList[i]
		hs.vacantList[i] = hs.vacantList[len(hs.vacantList)-1]
		hs.vacantList = hs.vacantList[:len(hs.vacantList)-1]
		placer.ArriveNode(u, w.placeProfile, w.cfg.PlacementMode, rng)
		if live != nil {
			live.Revive(u)
		}
		*events++
	}
}

// arrivalChunk is the batch engine's barrier hook over applyArrivals.
func (r *Runner) arrivalChunk(rng *rand.Rand, c int, res *Result) {
	r.heteroSt.applyArrivals(r.w, r.placer, r.live, rng, c, &res.ArrivalEvents, &res.ArrivalSkipped)
}

// finishHetero records trial-end heterogeneity counters.
func (r *Runner) finishHetero(res *Result) {
	if r.w.cfg.Hetero == HeteroArrival {
		res.Vacant = len(r.heteroSt.vacantList)
	}
}
