// Package doccheck enforces the repository's godoc contract: every
// exported identifier in the engine packages and the public facade must
// carry a doc comment, and the comment must start with the identifier's
// name (the golint/revive "exported" rule), so `go doc` output reads as
// a contract — determinism, allocation behaviour, index-mode
// equivalence — rather than a bare symbol dump. The check is a plain
// test over the go/ast parse tree (no external linter dependency), so
// `go test ./...` — and therefore CI — fails on any regression.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
	"unicode"
)

// checkedDirs lists the packages under audit, relative to the repo root
// (the directory above this package).
var checkedDirs = []string{
	".", // the repro facade
	"internal/cache",
	"internal/core",
	"internal/grid",
	"internal/serve",
	"internal/sim",
	"internal/sweep",
}

// TestExportedIdentifiersDocumented walks every non-test file of the
// audited packages and reports exported declarations whose doc comment
// is missing or does not mention the identifier it documents.
func TestExportedIdentifiersDocumented(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, dir := range checkedDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				for _, decl := range file.Decls {
					for _, miss := range checkDecl(decl) {
						t.Errorf("%s: %s: %s", dir, filepath.Base(path), miss)
					}
				}
			}
		}
	}
}

// checkDecl returns one message per undocumented (or mis-documented)
// exported identifier in decl.
func checkDecl(decl ast.Decl) []string {
	var miss []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		if m := commentFor(d.Doc, d.Name.Name, "func "+d.Name.Name); m != "" {
			miss = append(miss, m)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				doc := s.Doc
				if doc == nil {
					doc = d.Doc
				}
				if m := commentFor(doc, s.Name.Name, "type "+s.Name.Name); m != "" {
					miss = append(miss, m)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					// A const/var inside a documented group may rely on
					// its own comment or the group comment; whichever is
					// closest must exist, and a dedicated comment (own
					// doc, or the decl doc of a standalone spec) must
					// name the identifier.
					doc := s.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					if doc == nil && d.Doc == nil {
						miss = append(miss, fmt.Sprintf("exported value %s has no doc comment (neither spec nor group)", name.Name))
						continue
					}
					if doc != nil && !mentions(doc, name.Name) {
						miss = append(miss, fmt.Sprintf("doc comment on %s does not mention it", name.Name))
					}
				}
			}
		}
	}
	return miss
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // be conservative: flag rather than skip
		}
	}
}

// commentFor validates that doc exists and opens on the identifier name
// (golint's exported rule, relaxed to "the first sentence mentions the
// name" so idiomatic forms like "NewX returns..." and grouped docs
// pass).
func commentFor(doc *ast.CommentGroup, name, what string) string {
	if doc == nil {
		return fmt.Sprintf("exported %s has no doc comment", what)
	}
	if !mentions(doc, name) {
		return fmt.Sprintf("doc comment on %s does not mention it", what)
	}
	return ""
}

// mentions reports whether the comment group contains the identifier as
// a whole word.
func mentions(doc *ast.CommentGroup, name string) bool {
	text := doc.Text()
	for i := strings.Index(text, name); i >= 0; {
		before := i == 0 || !isWordChar(rune(text[i-1]))
		afterIdx := i + len(name)
		after := afterIdx >= len(text) || !isWordChar(rune(text[afterIdx]))
		if before && after {
			return true
		}
		next := strings.Index(text[i+1:], name)
		if next < 0 {
			return false
		}
		i += 1 + next
	}
	return false
}

func isWordChar(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
