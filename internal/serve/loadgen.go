package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
)

// LoadgenResult summarizes one in-process load generation run.
type LoadgenResult struct {
	Decisions int           // placement decisions answered
	Conns     int           // concurrent decision contexts
	Batch     int           // queries per PlaceBatch call
	Elapsed   time.Duration // wall time of the serving phase only
	PerSec    float64       // decisions per second
	MaxLoad   int           // largest per-context node load observed
}

// Loadgen drives the engine from inside the process: total queries,
// pre-generated from the published era's request streams (generation is
// excluded from the timing), served through conns concurrent pooled
// contexts in batches of batch. This is the ≥10⁶ decisions/s headline
// path — no sockets, no JSON, just the snapshot engine under real
// goroutine concurrency.
func Loadgen(e *Engine, total, conns, batch int) LoadgenResult {
	if conns < 1 {
		conns = 1
	}
	if batch < 1 {
		batch = 1
	}
	w := e.World()
	snap := e.Snapshot()
	pairs := make([]Pair, total)
	origins := make([]int32, total)
	files := make([]int32, total)
	originRNG, fileRNG := w.RequestStream(snap.Era())
	dist.RequestBatch(originRNG, fileRNG, w.N(), snap.FileSampler(), origins, files)
	for i := range pairs {
		pairs[i] = Pair{User: origins[i], File: files[i]}
	}

	var next atomic.Int64
	var maxLoad atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := e.Get()
			out := make([]Decision, batch)
			for {
				base := int(next.Add(int64(batch))) - batch
				if base >= total {
					break
				}
				n := min(batch, total-base)
				ctx.PlaceBatch(pairs[base:base+n], out[:n])
			}
			for {
				cur := maxLoad.Load()
				if int64(ctx.MaxLoad()) <= cur || maxLoad.CompareAndSwap(cur, int64(ctx.MaxLoad())) {
					break
				}
			}
			e.Put(ctx)
		}()
	}
	wg.Wait()
	el := time.Since(t0)
	res := LoadgenResult{
		Decisions: total,
		Conns:     conns,
		Batch:     batch,
		Elapsed:   el,
		MaxLoad:   int(maxLoad.Load()),
	}
	if el > 0 {
		res.PerSec = float64(total) / el.Seconds()
	}
	return res
}
