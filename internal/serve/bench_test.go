package serve

import (
	"math/rand/v2"
	"testing"

	"repro/internal/sim"
)

// benchConfig is the headline serving configuration: a 1024-node torus,
// Zipf popularity, two-choices within radius 6 over the tile index —
// the paper's strategy at a realistic service scale, quiesced so the
// benchmark measures the pure decision path.
func benchConfig() sim.Config {
	return sim.Config{
		Side: 32, K: 2000, M: 4, Seed: 2017,
		Strategy:   sim.StrategySpec{Kind: sim.TwoChoices, Radius: 6},
		Popularity: sim.PopSpec{Kind: sim.PopZipf, Gamma: 0.8},
		Streams:    sim.StreamsSplit,
		Index:      sim.IndexTiles,
	}
}

const benchBatch = 256

// benchPairs pre-generates a query ring so the benchmark loop measures
// only the decision path.
func benchPairs(w *sim.World, n int) []Pair {
	rng := rand.New(rand.NewPCG(7, 7))
	pop := w.Config().Popularity.Build(w.Config().K)
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{User: int32(rng.IntN(w.N())), File: int32(pop.Sample(rng))}
	}
	return pairs
}

// BenchmarkServePlace is the ≥10⁶ decisions/s headline: all GOMAXPROCS
// workers place batches of 256 through pooled contexts against one
// published snapshot. One op is one batch; the decisions/s metric is
// the number that matters.
func BenchmarkServePlace(b *testing.B) {
	w, err := sim.Compile(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	e := New(w, 0)
	defer e.Close()
	pairs := benchPairs(w, 1<<16)

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := e.Get()
		defer e.Put(ctx)
		out := make([]Decision, benchBatch)
		off := 0
		for pb.Next() {
			ctx.PlaceBatch(pairs[off:off+benchBatch], out)
			off += benchBatch
			if off+benchBatch > len(pairs) {
				off = 0
			}
		}
	})
	b.StopTimer()
	dec := float64(b.N) * benchBatch
	b.ReportMetric(dec/b.Elapsed().Seconds(), "decisions/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/dec, "ns/decision")
}

// BenchmarkServePlaceSingle is the single-context path with allocation
// accounting: the hot loop must be 0 allocs/op at steady state.
func BenchmarkServePlaceSingle(b *testing.B) {
	w, err := sim.Compile(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	e := New(w, 0)
	defer e.Close()
	pairs := benchPairs(w, 1<<16)
	ctx := e.Get()
	defer e.Put(ctx)
	out := make([]Decision, benchBatch)

	b.ReportAllocs()
	b.ResetTimer()
	off := 0
	for i := 0; i < b.N; i++ {
		ctx.PlaceBatch(pairs[off:off+benchBatch], out)
		off += benchBatch
		if off+benchBatch > len(pairs) {
			off = 0
		}
	}
	b.StopTimer()
	dec := float64(b.N) * benchBatch
	b.ReportMetric(dec/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkServePlaceStorm measures the concurrent decision path while
// the mutator applies churn and fault events and republishes snapshots
// between batches — the served dynamic regime.
func BenchmarkServePlaceStorm(b *testing.B) {
	cfg := benchConfig()
	cfg.MissPolicy = sim.MissEscalate
	cfg.Churn = sim.ChurnReplicas
	cfg.ChurnRate = 0.01
	cfg.Faults = sim.FaultsCrash
	cfg.FaultRate = 0.001
	cfg.RecoverRate = 0.001
	w, err := sim.Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e := New(w, 0)
	defer e.Close()
	pairs := benchPairs(w, 1<<16)

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := e.Get()
		defer e.Put(ctx)
		out := make([]Decision, benchBatch)
		off := 0
		for pb.Next() {
			ctx.PlaceBatch(pairs[off:off+benchBatch], out)
			off += benchBatch
			if off+benchBatch > len(pairs) {
				off = 0
			}
		}
	})
	b.StopTimer()
	dec := float64(b.N) * benchBatch
	b.ReportMetric(dec/b.Elapsed().Seconds(), "decisions/s")
}
