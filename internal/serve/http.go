package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/stats"
)

// latencyBound caps the per-batch latency histogram at 100ms in
// microsecond resolution — far above any healthy batch, so quantiles
// stay exact where they matter and the histogram stays a fixed 800KB.
const latencyBound = 100_000

// Server is the HTTP front of an Engine: batched placement queries on
// POST /v1/place, liveness on GET /healthz, and qps/latency/era
// diagnostics on GET /metrics. Decision contexts are pooled per
// request, so concurrent connections scale like the in-process engine.
type Server struct {
	e     *Engine
	mux   *http.ServeMux
	start time.Time

	mu      sync.Mutex
	lat     *stats.Accumulator // per-batch service latency, µs
	batches int64
}

// NewServer wraps e in an HTTP handler.
func NewServer(e *Engine) *Server {
	s := &Server{
		e:     e,
		mux:   http.NewServeMux(),
		start: time.Now(),
		lat:   stats.NewAccumulator(latencyBound),
	}
	s.mux.HandleFunc("POST /v1/place", s.handlePlace)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Engine returns the wrapped engine.
func (s *Server) Engine() *Engine { return s.e }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// PlaceRequest is the POST /v1/place body: a batch of queries.
type PlaceRequest struct {
	Pairs []Pair `json:"pairs"`
}

// PlaceResponse is the POST /v1/place answer: one decision per query,
// all stamped with the single snapshot version they observed.
type PlaceResponse struct {
	Stamp
	Decisions []Decision `json:"decisions"`
}

// maxBatch bounds one /v1/place request; larger batches should be
// split client-side (the stamp is per batch, so a bound also bounds
// how stale a batch's pinned snapshot can get).
const maxBatch = 1 << 16

// maxPlaceBody caps the /v1/place request body before JSON decoding
// starts: a full maxBatch of pairs is well under 4MB, so anything
// larger is a hostile or broken client, answered 413 instead of being
// buffered.
const maxPlaceBody = 4 << 20

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxPlaceBody)
	var req PlaceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", maxPlaceBody), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Pairs) == 0 {
		http.Error(w, "bad request: empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Pairs) > maxBatch {
		http.Error(w, fmt.Sprintf("bad request: batch %d exceeds limit %d", len(req.Pairs), maxBatch), http.StatusBadRequest)
		return
	}
	n := s.e.World().N()
	k := s.e.World().Config().K
	for i, p := range req.Pairs {
		if p.User < 0 || int(p.User) >= n || p.File < 0 || int(p.File) >= k {
			http.Error(w, fmt.Sprintf("bad request: pair %d (u=%d f=%d) out of range (n=%d K=%d)", i, p.User, p.File, n, k), http.StatusBadRequest)
			return
		}
	}

	t0 := time.Now()
	ctx := s.e.Get()
	resp := PlaceResponse{Decisions: make([]Decision, len(req.Pairs))}
	resp.Stamp = ctx.PlaceBatch(req.Pairs, resp.Decisions)
	s.e.Put(ctx)
	el := time.Since(t0).Microseconds()

	s.mu.Lock()
	s.lat.Observe(int(el))
	s.batches++
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// Metrics is the GET /metrics payload.
type Metrics struct {
	UptimeSec   float64 `json:"uptime_sec"`
	Decisions   int64   `json:"decisions"`
	Batches     int64   `json:"batches"`
	QPS         float64 `json:"qps"` // decisions/s over uptime
	LatMeanUS   float64 `json:"lat_mean_us"`
	LatP50US    int     `json:"lat_p50_us"`
	LatP99US    int     `json:"lat_p99_us"`
	LatMaxUS    int     `json:"lat_max_us"`
	Era         uint64  `json:"era"`
	Seq         uint64  `json:"seq"`
	DeadNodes   int     `json:"dead_nodes"`
	ChurnEvents int     `json:"churn_events"`
	FaultEvents int     `json:"fault_events"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	info := s.e.Info()
	up := time.Since(s.start).Seconds()
	served := s.e.Served()
	s.mu.Lock()
	m := Metrics{
		UptimeSec:   up,
		Decisions:   served,
		Batches:     s.batches,
		LatMeanUS:   s.lat.Mean(),
		LatP50US:    s.lat.Quantile(0.5),
		LatP99US:    s.lat.Quantile(0.99),
		LatMaxUS:    s.lat.Max(),
		Era:         info.Era,
		Seq:         info.Seq,
		DeadNodes:   info.DeadNodes,
		ChurnEvents: info.ChurnEvents,
		FaultEvents: info.FaultEvents,
	}
	s.mu.Unlock()
	if up > 0 {
		m.QPS = float64(served) / up
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&m)
}
