// Package serve promotes the batch simulation engine to a long-running
// concurrent placement service: the paper's two-choices allocation
// answered as an online query — "which replica of file j should user u
// fetch?" — at millions of decisions per second on one host.
//
// The design separates the single-runner mutable state of the batch
// engine into two halves with different ownership:
//
//   - Read-mostly world state (placement CSR + tile index + liveness
//     mask), packaged as a sim.Snapshot and published through an
//     atomic.Pointer. Readers never lock: a decision context pins the
//     current snapshot once per batch and answers every query in the
//     batch against that immutable version (epoch-based copy-on-write).
//   - Per-context decision state (strategy scratch, load accumulator,
//     RNG), pooled per connection so the hot path allocates nothing.
//
// A single mutator goroutine owns a private shadow snapshot. Served
// batches report their sizes; the mutator drains the count, applies the
// world's churn and fault schedules to the shadow (the exact event
// machinery of the batch engine — see sim.Snapshot.Advance), clones it
// and publishes the clone. Readers therefore never observe a
// half-spliced placement or a torn liveness mask, and a quiesced world
// (no churn, no faults) serves one frozen snapshot forever,
// bit-identical to sim.RunTrial on the same era (pinned by the golden
// tests).
package serve

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"repro/internal/ballsbins"
	"repro/internal/core"
	"repro/internal/sim"
)

// Pair is one placement query: user (origin node) u requests file j.
type Pair struct {
	User int32 `json:"u"`
	File int32 `json:"f"`
}

// Decision is the service's answer to one Pair: the serving node, the
// torus hop distance user → node, and whether the search had to reject
// dead candidates (Retried) on the way.
type Decision struct {
	Node    int32 `json:"node"`
	Hops    int32 `json:"hops"`
	Retried bool  `json:"retried,omitempty"`
}

// Stamp names the exact state version a batch of decisions observed:
// the placement era (trial index it was compiled from) and the mutation
// sequence number within that era. Every decision of one PlaceBatch
// call carries the same stamp — that is the consistency contract the
// snapshot engine exists to provide.
type Stamp struct {
	Era uint64 `json:"era"`
	Seq uint64 `json:"seq"`
}

// Engine is the served-mode core: it owns the published snapshot
// pointer, the mutator goroutine evolving the shadow copy, and the
// decision-context pool. Safe for concurrent use by any number of
// goroutines; Close stops the mutator.
type Engine struct {
	w   *sim.World
	cur atomic.Pointer[sim.Snapshot]

	// dynamic is true when the world has a churn or fault process; a
	// quiesced world never wakes the mutator and never republishes.
	dynamic bool

	pending atomic.Int64  // decisions served since the last mutator drain
	wake    chan struct{} // capacity 1: batch-boundary doorbell
	reload  chan uint64   // era reload requests (SIGHUP path)
	quit    chan struct{}
	wg      sync.WaitGroup

	served atomic.Int64 // total decisions answered (monotonic, /metrics)

	ctxPool sync.Pool
	ctxSeq  atomic.Uint64
}

// New builds an Engine over w serving placement era. The era's snapshot
// is compiled synchronously (so the first query never waits) and the
// mutator goroutine is started; callers must Close the engine to stop
// it.
func New(w *sim.World, era uint64) *Engine {
	cfg := w.Config()
	e := &Engine{
		w:       w,
		dynamic: cfg.Churn != sim.ChurnNone || cfg.Faults != sim.FaultsNone || cfg.Hetero == sim.HeteroArrival,
		wake:    make(chan struct{}, 1),
		reload:  make(chan uint64),
		quit:    make(chan struct{}),
	}
	shadow := w.Snapshot(era)
	e.cur.Store(shadow.Clone())
	e.wg.Add(1)
	go e.mutator(shadow)
	return e
}

// Close stops the mutator goroutine and waits for it to exit. The
// engine keeps answering reads after Close (the published snapshot
// stays valid); it just stops evolving.
func (e *Engine) Close() {
	close(e.quit)
	e.wg.Wait()
}

// Reload compiles a fresh snapshot for placement era and publishes it,
// abandoning the current shadow — the SIGHUP semantics: in-flight
// batches finish against the old snapshot, later batches pin the new
// one. Blocks until the mutator has accepted the request.
func (e *Engine) Reload(era uint64) {
	select {
	case e.reload <- era:
	case <-e.quit:
	}
}

// Snapshot returns the currently published snapshot (never nil). The
// returned value is immutable — safe to read until program exit.
func (e *Engine) Snapshot() *sim.Snapshot { return e.cur.Load() }

// Info returns the published snapshot's era diagnostics — the same
// stamp cachesim -v prints for batch trials.
func (e *Engine) Info() sim.SnapshotInfo { return e.cur.Load().Info() }

// Served returns the total number of decisions answered.
func (e *Engine) Served() int64 { return e.served.Load() }

// World returns the world the engine serves.
func (e *Engine) World() *sim.World { return e.w }

// mutator is the single goroutine that owns the shadow snapshot. It
// wakes at batch boundaries, folds the decisions served since the last
// drain into the churn/fault schedules, and publishes a fresh clone.
// The clone-on-publish discipline is what lets readers skip locking
// entirely: the published value is never written again.
func (e *Engine) mutator(shadow *sim.Snapshot) {
	defer e.wg.Done()
	for {
		select {
		case <-e.wake:
			n := e.pending.Swap(0)
			if n == 0 {
				continue
			}
			shadow.Advance(int(n))
			e.cur.Store(shadow.Clone())
		case era := <-e.reload:
			shadow = e.w.Snapshot(era)
			e.pending.Store(0)
			e.cur.Store(shadow.Clone())
		case <-e.quit:
			return
		}
	}
}

// batchDone reports a served batch of n decisions to the mutator. For
// a quiesced world this is a pair of atomic adds and nothing more —
// the doorbell channel is never touched.
func (e *Engine) batchDone(n int) {
	e.served.Add(int64(n))
	if !e.dynamic {
		return
	}
	e.pending.Add(int64(n))
	select {
	case e.wake <- struct{}{}:
	default: // doorbell already rung; the mutator will drain our count too
	}
}

// Context is one connection's pooled decision state: a strategy
// instance (with its per-call scratch) bound to a pinned snapshot, a
// private load accumulator, and a private RNG. A Context is NOT safe
// for concurrent use — each goroutine must Get its own — but any number
// of Contexts run concurrently against the same Engine.
type Context struct {
	e     *Engine
	snap  *sim.Snapshot
	strat core.Strategy
	loads *ballsbins.Loads
	// view is what the strategy compares through: loads itself on
	// homogeneous worlds, a capacity-weighted wrapper (load/C_u) under a
	// non-uniform hetero profile. Writes always hit loads directly.
	view core.LoadReader
	rng  *rand.Rand
	id   uint64
}

// Get returns a decision context, reusing a pooled one when available.
// Pair with Put to keep the steady-state hot path allocation-free.
func (e *Engine) Get() *Context {
	if c, _ := e.ctxPool.Get().(*Context); c != nil {
		return c
	}
	return e.newContext()
}

// Put returns a context to the pool.
func (e *Engine) Put(c *Context) { e.ctxPool.Put(c) }

// newContext builds a fresh context bound to the published snapshot.
// Context 0 consumes the era's pure assignment stream — a single
// context serving a quiesced era therefore reproduces the batch trial's
// decision sequence exactly (the golden pin). Later contexts perturb
// the seed with their id for distinct but deterministic streams.
func (e *Engine) newContext() *Context {
	snap := e.cur.Load()
	c := &Context{
		e:     e,
		snap:  snap,
		strat: snap.NewStrategy(),
		loads: ballsbins.NewLoads(e.w.N()),
		id:    e.ctxSeq.Add(1) - 1,
	}
	c.view = snap.WrapLoads(c.loads)
	c.seedRNG()
	return c
}

// seedRNG (re)seeds the context's assignment RNG for the snapshot's
// era.
func (c *Context) seedRNG() {
	s1, s2 := c.e.w.AssignSeed(c.snap.Era())
	mix := c.id * 0x9e3779b97f4a7c15
	c.rng = rand.New(rand.NewPCG(s1^mix, s2+mix))
}

// refresh re-pins the context to the published snapshot when it moved:
// rebind the strategy (and liveness mask) to the new placement, and on
// an era change also reset the load accumulator and reseed the RNG —
// a new era is a new trial, not a continuation.
func (c *Context) refresh() {
	snap := c.e.cur.Load()
	if snap == c.snap {
		return
	}
	newEra := snap.Era() != c.snap.Era()
	c.snap = snap
	c.strat = snap.Bind(c.strat)
	if newEra {
		c.loads.Reset()
		// The weighted multipliers are era-scoped (redrawn per trial
		// stream), so the comparison view re-wraps here and nowhere else —
		// within an era every published clone shares the same vector.
		c.view = snap.WrapLoads(c.loads)
		c.seedRNG()
	}
}

// PlaceBatch answers every query in pairs against one pinned snapshot,
// writing decisions into out (len(out) must equal len(pairs)) and
// returning the stamp of the snapshot every decision observed. The
// batch's size is reported to the mutator afterwards, so churn and
// fault events land between batches, never inside one. Zero
// allocations at steady state.
func (c *Context) PlaceBatch(pairs []Pair, out []Decision) Stamp {
	if len(pairs) != len(out) {
		panic("serve: PlaceBatch needs len(out) == len(pairs)")
	}
	c.refresh()
	strat, loads, view, rng := c.strat, c.loads, c.view, c.rng
	for i, p := range pairs {
		a := strat.Assign(core.Request{Origin: p.User, File: p.File}, view, rng)
		loads.Add(int(a.Server))
		out[i] = Decision{Node: a.Server, Hops: a.Hops, Retried: a.Retried}
	}
	c.e.batchDone(len(pairs))
	return Stamp{Era: c.snap.Era(), Seq: c.snap.Seq()}
}

// MaxLoad returns the largest per-node load this context has assigned
// in the current era — the served analogue of Result.MaxLoad for a
// single-context replay.
func (c *Context) MaxLoad() int { return c.loads.Max() }
