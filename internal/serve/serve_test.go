package serve

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sim"
)

// quiescedConfig is a served world with no churn or fault process: one
// frozen snapshot forever, the golden-pin regime.
func quiescedConfig() sim.Config {
	return sim.Config{
		Side: 12, K: 100, M: 3, Requests: 600, Seed: 2017,
		Strategy:   sim.StrategySpec{Kind: sim.TwoChoices, Radius: 3},
		Popularity: sim.PopSpec{Kind: sim.PopZipf, Gamma: 0.8},
		Streams:    sim.StreamsSplit,
		Index:      sim.IndexTiles,
	}
}

// stormConfig is a served world under simultaneous churn and faults —
// the regime that exercises the mutator and snapshot swap path.
func stormConfig() sim.Config {
	cfg := quiescedConfig()
	cfg.MissPolicy = sim.MissEscalate
	cfg.Churn = sim.ChurnReplicas
	cfg.ChurnRate = 0.05
	cfg.Faults = sim.FaultsCrash
	cfg.FaultRate = 0.01
	cfg.RecoverRate = 0.005
	return cfg
}

func compile(t testing.TB, cfg sim.Config) *sim.World {
	t.Helper()
	w, err := sim.Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestServeGoldenPin pins the served mode to the batch engine: a
// quiesced daemon answering the era's request stream through a single
// context must reproduce sim.RunTrial's decision scalars
// bit-identically.
func TestServeGoldenPin(t *testing.T) {
	w := compile(t, quiescedConfig())
	for era := uint64(0); era < 3; era++ {
		want := w.RunTrial(era)

		e := New(w, era)
		ctx := e.Get() // context 0: the era's pure assignment stream
		snap := e.Snapshot()
		nReq := w.Requests()
		origins := make([]int32, nReq)
		files := make([]int32, nReq)
		originRNG, fileRNG := w.RequestStream(era)
		dist.RequestBatch(originRNG, fileRNG, w.N(), snap.FileSampler(), origins, files)

		const batch = 97 // deliberately unaligned with the engine chunk
		pairs := make([]Pair, batch)
		out := make([]Decision, batch)
		var hops float64
		retried := 0
		for base := 0; base < nReq; base += batch {
			c := min(batch, nReq-base)
			for i := 0; i < c; i++ {
				pairs[i] = Pair{User: origins[base+i], File: files[base+i]}
			}
			st := ctx.PlaceBatch(pairs[:c], out[:c])
			if st.Era != era || st.Seq != 0 {
				t.Fatalf("era %d: quiesced stamp %+v, want {%d 0}", era, st, era)
			}
			for i := 0; i < c; i++ {
				hops += float64(out[i].Hops)
				if out[i].Retried {
					retried++
				}
			}
		}
		if got := ctx.MaxLoad(); got != want.MaxLoad {
			t.Errorf("era %d: served max load %d, batch trial %d", era, got, want.MaxLoad)
		}
		if got := hops / float64(nReq); got != want.MeanCost {
			t.Errorf("era %d: served mean cost %v, batch trial %v", era, got, want.MeanCost)
		}
		if retried != want.Retried {
			t.Errorf("era %d: served retried %d, batch trial %d", era, retried, want.Retried)
		}
		e.Close()
	}
}

// TestServeSnapshotStress hammers the snapshot swap path under -race:
// concurrent reader contexts place batches while the mutator applies
// churn and fault storms and republishes. Every decision must observe
// one consistent snapshot version (per-batch stamp, monotone per
// context) and stay structurally valid.
func TestServeSnapshotStress(t *testing.T) {
	w := compile(t, stormConfig())
	e := New(w, 0)
	defer e.Close()

	const (
		readers = 8
		batches = 60
		batch   = 64
	)
	n := int32(w.N())
	diam := int32(w.Grid().Diameter())
	var wg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			ctx := e.Get()
			defer e.Put(ctx)
			rng := rand.New(rand.NewPCG(uint64(rd), 42))
			pairs := make([]Pair, batch)
			out := make([]Decision, batch)
			var last Stamp
			for b := 0; b < batches; b++ {
				for i := range pairs {
					pairs[i] = Pair{User: int32(rng.IntN(int(n))), File: int32(rng.IntN(w.Config().K))}
				}
				st := ctx.PlaceBatch(pairs, out)
				if st.Era != 0 {
					t.Errorf("reader %d: era changed to %d without a reload", rd, st.Era)
					return
				}
				if st.Seq < last.Seq {
					t.Errorf("reader %d: stamp went backwards: %+v after %+v", rd, st, last)
					return
				}
				last = st
				for i, d := range out {
					if d.Node < 0 || d.Node >= n {
						t.Errorf("reader %d: decision %d node %d out of range", rd, i, d.Node)
						return
					}
					if d.Hops < 0 || d.Hops > diam {
						t.Errorf("reader %d: decision %d hops %d out of range", rd, i, d.Hops)
						return
					}
				}
			}
		}(rd)
	}
	wg.Wait()

	// The mutator must have actually advanced the state under the
	// readers: readers*batches*batch decisions were reported.
	deadline := time.Now().Add(5 * time.Second)
	for e.Info().Seq == 0 {
		if time.Now().After(deadline) {
			t.Fatal("mutator never published a new snapshot version")
		}
		time.Sleep(time.Millisecond)
	}
	info := e.Info()
	if info.ChurnEvents == 0 && info.FaultEvents == 0 {
		t.Fatalf("storm applied no events: %+v", info)
	}
	if got := e.Served(); got != readers*batches*batch {
		t.Fatalf("served %d decisions, want %d", got, readers*batches*batch)
	}
}

// TestServeReload checks the SIGHUP path: Reload compiles and publishes
// a fresh era, and contexts re-pin to it with reset load state.
func TestServeReload(t *testing.T) {
	w := compile(t, quiescedConfig())
	e := New(w, 0)
	defer e.Close()

	ctx := e.Get()
	pairs := []Pair{{User: 1, File: 2}, {User: 3, File: 4}}
	out := make([]Decision, len(pairs))
	if st := ctx.PlaceBatch(pairs, out); st.Era != 0 {
		t.Fatalf("initial era %d, want 0", st.Era)
	}
	if ctx.MaxLoad() == 0 {
		t.Fatal("no load assigned before reload")
	}
	e.Reload(7)
	deadline := time.Now().Add(5 * time.Second)
	for e.Info().Era != 7 {
		if time.Now().After(deadline) {
			t.Fatal("reload never published era 7")
		}
		time.Sleep(time.Millisecond)
	}
	st := ctx.PlaceBatch(pairs, out)
	if st.Era != 7 || st.Seq != 0 {
		t.Fatalf("post-reload stamp %+v, want {7 0}", st)
	}
	if got := ctx.MaxLoad(); got > len(pairs) {
		t.Fatalf("load accumulator not reset across eras: max %d", got)
	}
}

// TestServeHTTP drives the full HTTP surface: a placement batch, the
// health probe, the metrics endpoint and the malformed-input paths.
func TestServeHTTP(t *testing.T) {
	w := compile(t, quiescedConfig())
	e := New(w, 0)
	defer e.Close()
	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()

	body, _ := json.Marshal(PlaceRequest{Pairs: []Pair{{User: 0, File: 1}, {User: 5, File: 0}}})
	resp, err := http.Post(srv.URL+"/v1/place", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/place status %d", resp.StatusCode)
	}
	var pr PlaceResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pr.Decisions) != 2 {
		t.Fatalf("got %d decisions, want 2", len(pr.Decisions))
	}
	for i, d := range pr.Decisions {
		if d.Node < 0 || int(d.Node) >= w.N() {
			t.Fatalf("decision %d node %d out of range", i, d.Node)
		}
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v status %v", err, hz.Status)
	}
	hz.Body.Close()

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if m.Decisions != 2 || m.Batches != 1 {
		t.Fatalf("metrics decisions=%d batches=%d, want 2/1", m.Decisions, m.Batches)
	}

	for name, payload := range map[string]string{
		"empty batch":  `{"pairs":[]}`,
		"bad json":     `{"pairs":`,
		"out of range": `{"pairs":[{"u":99999,"f":0}]}`,
		"bad file":     `{"pairs":[{"u":0,"f":-1}]}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/place", "application/json", bytes.NewReader([]byte(payload)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestLoadgen smoke-tests the in-process driver on both regimes.
func TestLoadgen(t *testing.T) {
	for name, cfg := range map[string]sim.Config{"quiesced": quiescedConfig(), "storm": stormConfig()} {
		t.Run(name, func(t *testing.T) {
			e := New(compile(t, cfg), 0)
			defer e.Close()
			res := Loadgen(e, 5000, 4, 128)
			if res.Decisions != 5000 || res.PerSec <= 0 {
				t.Fatalf("loadgen result %+v", res)
			}
			if res.MaxLoad == 0 {
				t.Fatal("loadgen assigned no load")
			}
			if e.Served() != 5000 {
				t.Fatalf("served %d, want 5000", e.Served())
			}
		})
	}
}

// TestServeHTTPBodyCap pins the /v1/place body cap: an oversized
// request is cut off with 413 before it is buffered, and the server
// keeps answering normal batches afterwards.
func TestServeHTTPBodyCap(t *testing.T) {
	w := compile(t, quiescedConfig())
	e := New(w, 0)
	defer e.Close()
	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()

	// One JSON document longer than the cap: the padding is legal
	// whitespace between tokens, so only the byte cap can stop it.
	huge := append([]byte(`{"pairs":[`), bytes.Repeat([]byte(" "), maxPlaceBody+1)...)
	huge = append(huge, []byte(`{"u":0,"f":1}]}`)...)
	resp, err := http.Post(srv.URL+"/v1/place", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// A body under the cap still works on the same server.
	body, _ := json.Marshal(PlaceRequest{Pairs: []Pair{{User: 0, File: 1}}})
	resp, err = http.Post(srv.URL+"/v1/place", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("normal batch after 413: status %d", resp.StatusCode)
	}
}
