package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	s := NewSource(42)
	a := s.Stream(7)
	b := s.Stream(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, stream) produced different sequences at step %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	s := NewSource(42)
	a := s.Stream(1)
	b := s.Stream(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams 1 and 2 collide in %d/64 draws", same)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := NewSource(1).Stream(0)
	b := NewSource(2).Stream(0)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitNamespacing(t *testing.T) {
	root := NewSource(99)
	c1 := root.Split(1)
	c2 := root.Split(2)
	if c1.Stream(0).Uint64() == c2.Stream(0).Uint64() {
		t.Fatal("split children share stream 0 output")
	}
	// Split is deterministic.
	if c1.Stream(3).Uint64() != root.Split(1).Stream(3).Uint64() {
		t.Fatal("Split not deterministic")
	}
}

func TestStreamUniformity(t *testing.T) {
	// Coarse frequency check: 10 buckets over 100k draws should each hold
	// 10% ± 1.5%.
	r := NewSource(7).Stream(0)
	const draws = 100000
	var buckets [10]int
	for i := 0; i < draws; i++ {
		buckets[r.IntN(10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.015 {
			t.Errorf("bucket %d frequency %.4f, want 0.1 ± 0.015", i, frac)
		}
	}
}

func TestPerm(t *testing.T) {
	r := NewSource(1).Stream(0)
	dst := make([]int32, 50)
	Perm(r, dst)
	seen := make([]bool, 50)
	for _, v := range dst {
		if v < 0 || int(v) >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", dst)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := NewSource(3).Stream(0)
	dst := make([]int32, 4)
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		Perm(r, dst)
		counts[dst[0]]++
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("position 0 value %d frequency %.4f, want 0.25 ± 0.02", i, frac)
		}
	}
}

func TestTwoDistinct(t *testing.T) {
	r := NewSource(5).Stream(0)
	prop := func(nRaw uint8) bool {
		n := int(nRaw)%20 + 2
		i, j := TwoDistinct(r, n)
		return i != j && i >= 0 && i < n && j >= 0 && j < n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoDistinctUniformPairs(t *testing.T) {
	// All ordered pairs (i, j), i != j, over n=4 should be equally likely.
	r := NewSource(11).Stream(0)
	counts := map[[2]int]int{}
	const trials = 60000
	for k := 0; k < trials; k++ {
		i, j := TwoDistinct(r, 4)
		counts[[2]int{i, j}]++
	}
	if len(counts) != 12 {
		t.Fatalf("saw %d ordered pairs, want 12", len(counts))
	}
	for p, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-1.0/12) > 0.01 {
			t.Errorf("pair %v frequency %.4f, want %.4f ± 0.01", p, frac, 1.0/12)
		}
	}
}

func TestTwoDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TwoDistinct(r, 1) did not panic")
		}
	}()
	TwoDistinct(NewSource(0).Stream(0), 1)
}

func BenchmarkStreamCreation(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		_ = s.Stream(uint64(i))
	}
}
