// Package xrand provides deterministic, splittable random number streams
// for parallel simulation. Every trial of an experiment receives its own
// PCG stream derived from a root seed by SplitMix64 mixing, so results are
// bit-reproducible regardless of how trials are scheduled across workers.
package xrand

import (
	"math/rand/v2"
)

// splitMix64 advances and mixes a 64-bit state (Steele et al., the standard
// seed-expansion finalizer). It is used only to derive independent stream
// seeds, never as the simulation generator itself.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic seed from which independent streams are split.
type Source struct {
	seed uint64
}

// NewSource returns a Source rooted at seed.
func NewSource(seed uint64) Source { return Source{seed: seed} }

// Stream returns the i-th independent generator of this source. Streams
// with distinct (seed, i) pairs are statistically independent PCG
// instances; calling Stream(i) twice yields identical sequences.
func (s Source) Stream(i uint64) *rand.Rand {
	s1, s2 := s.StreamSeed(i)
	return rand.New(rand.NewPCG(s1, s2))
}

// StreamSeed returns the PCG seed pair of the i-th stream:
// Stream(i) ≡ rand.New(rand.NewPCG(StreamSeed(i))). Callers that hold a
// long-lived generator (the simulation engine's per-worker runners) reseed
// a reused PCG in place with it, making per-trial stream derivation
// allocation-free while producing bit-identical sequences.
func (s Source) StreamSeed(i uint64) (uint64, uint64) {
	st := s.seed
	a := splitMix64(&st)
	st ^= i * 0x9e3779b97f4a7c15
	b := splitMix64(&st)
	st ^= 0xd1342543de82ef95
	c := splitMix64(&st)
	return a ^ c, b + i
}

// Split returns a child source for namespacing (e.g. one per experiment
// stage) so that adding streams to one stage never perturbs another.
func (s Source) Split(label uint64) Source {
	st := s.seed ^ (label * 0xbf58476d1ce4e5b9)
	return Source{seed: splitMix64(&st)}
}

// Perm fills dst with a uniform random permutation of 0..len(dst)-1.
func Perm(r *rand.Rand, dst []int32) {
	for i := range dst {
		dst[i] = int32(i)
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// TwoDistinct returns two distinct uniform indices in [0, n). It panics if
// n < 2. Used by the without-replacement variant of the two-choices rule.
func TwoDistinct(r *rand.Rand, n int) (int, int) {
	if n < 2 {
		panic("xrand: TwoDistinct needs n >= 2")
	}
	i := r.IntN(n)
	j := r.IntN(n - 1)
	if j >= i {
		j++
	}
	return i, j
}
