package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// runGrid executes one figure's full configuration grid through
// sim.RunSeries, so every (curve, point) pair shares one worker pool:
// cheap points no longer serialize behind expensive ones and `figures -id
// all` saturates all cores. Results come back in input order and are
// bit-identical to running each point through sim.Run.
func runGrid(cfgs []sim.Config, trials int, opt Options) ([]sim.Aggregate, error) {
	return sim.RunSeries(cfgs, trials, opt.Workers)
}

// fig1Sides spans n ≈ 100 .. 3025 as in Fig. 1's x axis.
var fig1Sides = []int{10, 15, 20, 25, 30, 35, 40, 45, 50, 55}

// fig1CacheSizes is the per-curve cache-size axis M ∈ {1, 2, 10, 100}.
var fig1CacheSizes = []int{1, 2, 10, 100}

// Figure1 reproduces Fig. 1: maximum load of Strategy I versus the number
// of servers, one curve per cache size M ∈ {1, 2, 10, 100}; torus, K = 100
// files, uniform popularity. Paper: 10000 runs/point.
func Figure1(opt Options) (*Table, error) {
	trials := opt.trials(40, 10000)
	t := &Table{
		ID:     "fig1",
		Title:  "Strategy I: maximum load vs number of servers (K=100)",
		XLabel: "n",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d (paper: 10000)", trials),
			"expected shape: Θ(log n) growth; larger M flattens the curve",
		},
	}
	var cfgs []sim.Config
	for _, m := range fig1CacheSizes {
		for _, side := range fig1Sides {
			cfgs = append(cfgs, sim.Config{
				Side: side, K: 100, M: m,
				Strategy: sim.StrategySpec{Kind: sim.Nearest},
				Seed:     opt.seed() + uint64(m*1000+side),
			})
		}
	}
	aggs, err := runGrid(cfgs, trials, opt)
	if err != nil {
		return nil, err
	}
	for i, m := range fig1CacheSizes {
		s := Series{Name: fmt.Sprintf("M=%d", m)}
		for j, side := range fig1Sides {
			agg := aggs[i*len(fig1Sides)+j]
			s.Points = append(s.Points, Point{
				X: float64(side * side), Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
				Extra: map[string]float64{"cost": agg.MeanCost.Mean()},
			})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// fig2CacheSizes samples M ∈ [1, 100] as in Fig. 2's x axis.
var fig2CacheSizes = []int{1, 2, 3, 4, 5, 6, 8, 10, 13, 16, 20, 25, 30, 40, 50, 60, 70, 85, 100}

// fig2LibrarySizes is the per-curve library axis K ∈ {100, 1000, 2000}.
var fig2LibrarySizes = []int{100, 1000, 2000}

// Figure2 reproduces Fig. 2: communication cost of Strategy I versus cache
// size, one curve per library size K ∈ {100, 1000, 2000}; torus n = 2025.
// Paper: 10000 runs/point.
func Figure2(opt Options) (*Table, error) {
	trials := opt.trials(15, 10000)
	t := &Table{
		ID:     "fig2",
		Title:  "Strategy I: communication cost vs cache size (n=2025)",
		XLabel: "M",
		YLabel: "avg cost (hops)",
		Notes: []string{
			fmt.Sprintf("trials/point = %d (paper: 10000)", trials),
			"expected shape: C = Θ(√(K/M)) (Theorem 3, uniform popularity)",
		},
	}
	var cfgs []sim.Config
	for _, k := range fig2LibrarySizes {
		for _, m := range fig2CacheSizes {
			cfgs = append(cfgs, sim.Config{
				Side: 45, K: k, M: m,
				Strategy: sim.StrategySpec{Kind: sim.Nearest},
				Seed:     opt.seed() + uint64(k*1000+m),
			})
		}
	}
	aggs, err := runGrid(cfgs, trials, opt)
	if err != nil {
		return nil, err
	}
	for i, k := range fig2LibrarySizes {
		s := Series{Name: fmt.Sprintf("K=%d", k)}
		for j, m := range fig2CacheSizes {
			agg := aggs[i*len(fig2CacheSizes)+j]
			s.Points = append(s.Points, Point{
				X: float64(m), Y: agg.MeanCost.Mean(), CI: agg.MeanCost.CI95(),
				Extra: map[string]float64{"maxload": agg.MaxLoad.Mean()},
			})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// fig3Sides spans n ≈ 2000 .. 1.2e5 as in Fig. 3/4's x axes.
var fig3Sides = []int{45, 77, 110, 155, 200, 245, 283, 316, 346}

// fig3CacheSizes is the per-curve cache-size axis M ∈ {1, 2, 10, 100}.
var fig3CacheSizes = []int{1, 2, 10, 100}

// Figure34 reproduces Figs. 3 and 4 from the same simulations: Strategy II
// with r = ∞, K = 2000, uniform popularity, M ∈ {1, 2, 10, 100}; max load
// (Fig. 3) and communication cost (Fig. 4) versus n. Paper: 800 runs/point.
func Figure34(opt Options) (*Table, *Table, error) {
	trials := opt.trials(6, 800)
	load := &Table{
		ID:     "fig3",
		Title:  "Strategy II (r=∞): maximum load vs number of servers (K=2000)",
		XLabel: "n",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d (paper: 800)", trials),
			"expected shape: high max load at low replication (nM/K small), dropping to two-choice levels once replication is ample; M=10,100 flat",
		},
	}
	cost := &Table{
		ID:     "fig4",
		Title:  "Strategy II (r=∞): communication cost vs number of servers (K=2000)",
		XLabel: "n",
		YLabel: "avg cost (hops)",
		Notes: []string{
			fmt.Sprintf("trials/point = %d (paper: 800)", trials),
			"expected shape: Θ(√n) growth, insensitive to M",
		},
	}
	var cfgs []sim.Config
	for _, m := range fig3CacheSizes {
		for _, side := range fig3Sides {
			cfgs = append(cfgs, sim.Config{
				Side: side, K: 2000, M: m,
				Strategy: sim.StrategySpec{Kind: sim.TwoChoices, Radius: core.RadiusUnbounded},
				Seed:     opt.seed() + uint64(m*10000+side),
			})
		}
	}
	aggs, err := runGrid(cfgs, trials, opt)
	if err != nil {
		return nil, nil, err
	}
	for i, m := range fig3CacheSizes {
		sl := Series{Name: fmt.Sprintf("M=%d", m)}
		sc := Series{Name: fmt.Sprintf("M=%d", m)}
		for j, side := range fig3Sides {
			agg := aggs[i*len(fig3Sides)+j]
			n := float64(side * side)
			extra := map[string]float64{"uncached": agg.Uncached.Mean()}
			sl.Points = append(sl.Points, Point{X: n, Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(), Extra: extra})
			sc.Points = append(sc.Points, Point{X: n, Y: agg.MeanCost.Mean(), CI: agg.MeanCost.CI95()})
		}
		load.Series = append(load.Series, sl)
		cost.Series = append(cost.Series, sc)
	}
	return load, cost, nil
}

// Figure3 returns only the Fig. 3 table (max load).
func Figure3(opt Options) (*Table, error) {
	l, _, err := Figure34(opt)
	return l, err
}

// Figure4 returns only the Fig. 4 table (communication cost).
func Figure4(opt Options) (*Table, error) {
	_, c, err := Figure34(opt)
	return c, err
}

// fig5Radii sweeps the proximity constraint to trace the trade-off curve.
var fig5Radii = []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 26, 32, 44}

// fig5CacheSizes is the per-curve cache-size axis of the trade-off study.
var fig5CacheSizes = []int{1, 2, 5, 10, 20, 50, 200}

// Figure5 reproduces Fig. 5: the maximum-load/communication-cost trade-off
// of Strategy II, sweeping radius r; torus n = 2025, K = 500, uniform
// popularity, M ∈ {1, 2, 5, 10, 20, 50, 200}. Each point is one radius:
// x = measured cost, y = measured max load. Paper: 5000 runs/point.
func Figure5(opt Options) (*Table, error) {
	trials := opt.trials(10, 5000)
	t := &Table{
		ID:     "fig5",
		Title:  "Strategy II: max load vs communication cost trade-off (n=2025, K=500)",
		XLabel: "avg cost (hops)",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d (paper: 5000); one point per radius r ∈ %v", trials, fig5Radii),
			"expected shape: high-M curves drop to ~log log n at tiny cost; M=1 stays flat-high; intermediate M trade off",
		},
	}
	var cfgs []sim.Config
	for _, m := range fig5CacheSizes {
		for _, r := range fig5Radii {
			cfgs = append(cfgs, sim.Config{
				Side: 45, K: 500, M: m,
				Strategy: sim.StrategySpec{Kind: sim.TwoChoices, Radius: r},
				Seed:     opt.seed() + uint64(m*1000+r),
			})
		}
	}
	aggs, err := runGrid(cfgs, trials, opt)
	if err != nil {
		return nil, err
	}
	for i, m := range fig5CacheSizes {
		s := Series{Name: fmt.Sprintf("M=%d", m)}
		for j, r := range fig5Radii {
			agg := aggs[i*len(fig5Radii)+j]
			s.Points = append(s.Points, Point{
				X: agg.MeanCost.Mean(), Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
				Extra: map[string]float64{
					"radius":    float64(r),
					"escalated": agg.Escalated.Mean(),
				},
			})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}
