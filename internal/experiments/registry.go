package experiments

import (
	"fmt"
	"sort"
)

// Runner produces one reproduced table or figure.
type Runner func(Options) (*Table, error)

// registry maps experiment IDs to their runners. Figure34 is registered
// through its two single-table views so every ID yields exactly one table.
var registry = map[string]Runner{
	"fig1":             Figure1,
	"fig2":             Figure2,
	"fig3":             Figure3,
	"fig4":             Figure4,
	"fig5":             Figure5,
	"zipf-cost":        ZipfCostTable,
	"uniform-cost-law": UniformCostLaw,
	"thm12":            Theorem12Fit,
	"thm4":             Theorem4Regimes,
	"lemma1":           Lemma1Cells,
	"confgraph":        ConfigGraphStats,
	"example3":         Example3Study,
	"supermarket":      Supermarket,
	"placement":        PlacementPolicies,
	"linkload":         LinkCongestion,
	"heavyload":        HeavyLoad,
	"beta-choice":      BetaChoice,
	"directory":        DirectoryOverhead,
	"drift":            PopularityDrift,
	"widegrid":         WideGrid,
	"churn":            Churn,
	"staleness":        Staleness,
	"faults":           Faults,
	"hetero":           Hetero,
}

// IDs returns all experiment identifiers, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup resolves an experiment ID.
func Lookup(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r, nil
}
