package experiments

import (
	"fmt"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// PopularityDrift probes the §VI deferred problem — dynamic popularity —
// with the shot-noise catalog model: files surge and fade, so a placement
// computed once decays. Three cache-management policies run Strategy II
// (r=∞) over the same drifting request stream:
//
//   - stale       — place once from the truth at time zero, never adapt;
//   - adaptive    — re-place each epoch from a sliding-window estimate;
//   - clairvoyant — re-place each epoch from the instantaneous truth.
//
// The per-epoch max load (averaged over trials) measures how much of the
// power of two choices survives drift under each policy: the stale
// placement starves freshly risen files, while the adaptive one should
// track the clairvoyant within estimation noise.
func PopularityDrift(opt Options) (*Table, error) {
	trials := opt.trials(4, 200)
	const (
		side   = 25 // n = 625
		k      = 300
		m      = 4
		epochs = 12
		// Shot-noise drift at epoch scale: ~10%% of the catalog active
		// (boost 10x), mean surge lifetime ≈ 8 epochs, a few births per
		// epoch — slow enough that per-epoch adaptation is meaningful,
		// fast enough that the active set fully turns over within the
		// run.
		boost    = 10.0
		birth    = 2.2e-5
		lifespan = 5000.0
	)
	n := side * side
	t := &Table{
		ID:     "drift",
		Title:  "Dynamic popularity (shot noise): stale vs adaptive vs clairvoyant placement (n=625, K=300, M=4)",
		XLabel: "epoch",
		YLabel: "max load (per epoch)",
		Notes: []string{
			fmt.Sprintf("trials = %d; epoch = n requests; shot-noise boost %.0fx, mean lifetime %.0f steps", trials, boost, lifespan),
			"expected: the stale placement degrades as the active set turns over; adaptive tracks clairvoyant within estimation noise",
		},
	}
	g := grid.New(side, grid.Torus)
	type policy int
	const (
		stale policy = iota
		adaptive
		clairvoyant
	)
	policies := []struct {
		pol  policy
		name string
	}{
		{stale, "stale(t=0 truth)"},
		{adaptive, "adaptive(window)"},
		{clairvoyant, "clairvoyant"},
	}
	for _, pc := range policies {
		pol, name := pc.pol, pc.name
		perEpoch := make([]stats.Summary, epochs)
		tvSum := make([]stats.Summary, epochs)
		for trial := 0; trial < trials; trial++ {
			src := xrand.NewSource(opt.seed() + uint64(trial)*31)
			streamRNG := src.Split(1).Stream(0)
			placeRNG := src.Split(2).Stream(0)
			reqRNG := src.Split(3).Stream(0)
			stream := workload.NewShotNoise(k, boost, birth, lifespan)
			// Warm the chain into stationarity before measuring.
			for i := 0; i < 5*n; i++ {
				stream.Next(streamRNG)
			}
			window := workload.NewWindow(k, 2*n)
			profile := stream.Truth() // every policy starts well-placed
			placement := cache.Place(n, m, profile, cache.WithReplacement, placeRNG)
			strat := core.NewTwoChoice(g, placement, core.TwoChoiceConfig{Radius: core.RadiusUnbounded})
			for e := 0; e < epochs; e++ {
				if e > 0 && pol != stale {
					if pol == adaptive && window.Len() > 0 {
						profile = window.Estimate()
					} else if pol == clairvoyant {
						profile = stream.Truth()
					}
					placement = cache.Place(n, m, profile, cache.WithReplacement, placeRNG)
					strat = core.NewTwoChoice(g, placement, core.TwoChoiceConfig{Radius: core.RadiusUnbounded})
				}
				loads := ballsbins.NewLoads(n)
				for i := 0; i < n; i++ {
					file := stream.Next(streamRNG)
					window.Observe(file)
					if len(placement.Replicas(file)) == 0 {
						// Uncached under this placement: served from
						// backhaul at the origin (strict accounting so
						// placement quality is visible in the load).
						loads.Add(reqRNG.IntN(n))
						continue
					}
					req := core.Request{Origin: int32(reqRNG.IntN(n)), File: int32(file)}
					a := strat.Assign(req, loads, reqRNG)
					loads.Add(int(a.Server))
				}
				perEpoch[e].Add(float64(loads.Max()))
				tvSum[e].Add(workload.TotalVariation(stream.Truth(), profileOf(placement, k)))
			}
		}
		s := Series{Name: name}
		for e := 0; e < epochs; e++ {
			s.Points = append(s.Points, Point{
				X: float64(e), Y: perEpoch[e].Mean(), CI: perEpoch[e].CI95(),
				Extra: map[string]float64{"tv_truth_vs_placement": tvSum[e].Mean()},
			})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// profileOf recovers the empirical placement profile (replica mass per
// file) for TV comparison against the instantaneous truth.
func profileOf(p *cache.Placement, k int) dist.Popularity {
	w := make([]float64, k)
	for j := 0; j < k; j++ {
		w[j] = float64(len(p.Replicas(j))) + 1e-9
	}
	return dist.NewCustom(w, "placement-profile")
}
