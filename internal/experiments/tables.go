package experiments

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// zipfTheoryExponent returns the K-growth exponent of the communication
// cost predicted by Theorem 3 / Eq. (1) for Zipf(γ), M = Θ(1):
//
//	γ < 1:      C = Θ(√(K/M))          → exponent 1/2
//	γ = 1:      Θ(√(K/M) / log K)      → 1/2 (up to log)
//	1 < γ < 2:  Θ(K^{1-γ/2} / √M)      → 1 - γ/2
//	γ = 2:      Θ(log K / √M)          → 0 (up to log)
//	γ > 2:      Θ(1/√M)                → 0
func zipfTheoryExponent(gamma float64) float64 {
	switch {
	case gamma < 1:
		return 0.5
	case gamma == 1:
		return 0.5
	case gamma < 2:
		return 1 - gamma/2
	default:
		return 0
	}
}

// zipfKSweep is the library-size grid for the Eq. (1) scaling study.
var zipfKSweep = []int{250, 500, 1000, 2000, 4000}

// ZipfCostTable reproduces the Theorem 3 / Eq. (1) result empirically:
// Strategy I communication cost as a function of K for Zipf exponents
// γ ∈ {0.5, 1, 1.5, 2, 2.5} at M = 1, n = 2025. Each series is one γ; the
// Notes record the fitted K-exponent against the theoretical one.
func ZipfCostTable(opt Options) (*Table, error) {
	trials := opt.trials(12, 2000)
	t := &Table{
		ID:     "zipf-cost",
		Title:  "Strategy I: Zipf communication-cost scaling in K (Eq. 1 / Theorem 3)",
		XLabel: "K",
		YLabel: "avg cost (hops)",
		Notes: []string{
			fmt.Sprintf("trials/point = %d; n = 2025, M = 1", trials),
			"finite-torus caveats: for γ<1 the cost nears the torus diameter at large K (exponent depressed below 0.5); for γ>1 tail files fall out of the network (resampled away), flattening the curve. The regime *structure* — cost strictly decreasing in γ, growing in K for small γ, K-flat beyond γ=2 — is the reproducible content of Eq. (1) at n = 2025.",
		},
	}
	for _, gamma := range []float64{0.5, 1.0, 1.5, 2.0, 2.5} {
		s := Series{Name: fmt.Sprintf("gamma=%.1f", gamma)}
		xs := make([]float64, 0, len(zipfKSweep))
		ys := make([]float64, 0, len(zipfKSweep))
		for _, k := range zipfKSweep {
			cfg := sim.Config{
				Side: 45, K: k, M: 1,
				Popularity: sim.PopSpec{Kind: sim.PopZipf, Gamma: gamma},
				Strategy:   sim.StrategySpec{Kind: sim.Nearest},
				Seed:       opt.seed() + uint64(int(gamma*10)*100000+k),
			}
			agg, err := sim.Run(cfg, trials, opt.Workers)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{
				X: float64(k), Y: agg.MeanCost.Mean(), CI: agg.MeanCost.CI95(),
			})
			xs = append(xs, float64(k))
			ys = append(ys, agg.MeanCost.Mean())
		}
		measured := stats.GrowthExponent(xs, ys)
		theory := zipfTheoryExponent(gamma)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"gamma=%.1f: measured K-exponent %.3f, asymptotic theory %.3f",
			gamma, measured, theory))
		for i := range s.Points {
			if s.Points[i].Extra == nil {
				s.Points[i].Extra = map[string]float64{}
			}
			s.Points[i].Extra["measured_exponent"] = measured
			s.Points[i].Extra["theory_exponent"] = theory
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// UniformCostLaw validates the C = Θ(√(K/M)) law (Theorem 3, uniform)
// directly: it sweeps K/M across two decades and reports the measured
// cost against c·√(K/M) with the fitted constant c.
func UniformCostLaw(opt Options) (*Table, error) {
	trials := opt.trials(12, 2000)
	type pt struct{ k, m int }
	grid := []pt{{100, 4}, {100, 1}, {400, 1}, {1000, 1}, {2000, 1}, {2000, 4}, {500, 2}, {4000, 2}}
	t := &Table{
		ID:     "uniform-cost-law",
		Title:  "Strategy I: cost vs √(K/M) (Theorem 3, uniform popularity, n=2025)",
		XLabel: "sqrt(K/M)",
		YLabel: "avg cost (hops)",
	}
	s := Series{Name: "measured"}
	xs := make([]float64, 0, len(grid))
	ys := make([]float64, 0, len(grid))
	for _, g := range grid {
		cfg := sim.Config{
			Side: 45, K: g.k, M: g.m,
			Strategy: sim.StrategySpec{Kind: sim.Nearest},
			Seed:     opt.seed() + uint64(g.k*10+g.m),
		}
		agg, err := sim.Run(cfg, trials, opt.Workers)
		if err != nil {
			return nil, err
		}
		x := math.Sqrt(float64(g.k) / float64(g.m))
		s.Points = append(s.Points, Point{
			X: x, Y: agg.MeanCost.Mean(), CI: agg.MeanCost.CI95(),
			Extra: map[string]float64{"K": float64(g.k), "M": float64(g.m)},
		})
		xs = append(xs, x)
		ys = append(ys, agg.MeanCost.Mean())
	}
	a, b, r2 := stats.LinearFit(xs, ys)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"linear fit C = %.3f + %.3f·√(K/M), r² = %.4f (theory: straight line through origin region)", a, b, r2))
	t.Series = append(t.Series, s)
	return t, nil
}
