package experiments

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/confgraph"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/voronoi"
	"repro/internal/xrand"
)

// theoremSides is the n-grid for the asymptotic-law fits.
var theoremSides = []int{12, 17, 24, 34, 45, 60, 80}

// Theorem12Fit validates Theorems 1 and 2: Strategy I maximum load grows
// as Θ(log n). Two regimes are measured — K = n^(1-ε) with M = Θ(1)
// (Theorem 1, ε = 1/2) and K = n with M = n^α (Theorem 2, α = 0.4) — and
// each series is fitted against log n; Notes record slope and r².
func Theorem12Fit(opt Options) (*Table, error) {
	trials := opt.trials(15, 1000)
	t := &Table{
		ID:     "thm12",
		Title:  "Strategy I: max load grows as Θ(log n) (Theorems 1 and 2)",
		XLabel: "n",
		YLabel: "max load",
		Notes:  []string{fmt.Sprintf("trials/point = %d", trials)},
	}
	type regime struct {
		name string
		km   func(n int) (int, int)
	}
	regimes := []regime{
		{"K=sqrt(n), M=1 (Thm 1)", func(n int) (int, int) { return int(math.Sqrt(float64(n))), 1 }},
		{"K=n, M=n^0.4 (Thm 2)", func(n int) (int, int) { return n, int(math.Pow(float64(n), 0.4)) }},
	}
	for _, rg := range regimes {
		s := Series{Name: rg.name}
		xs := make([]float64, 0, len(theoremSides))
		ys := make([]float64, 0, len(theoremSides))
		for _, side := range theoremSides {
			n := side * side
			k, m := rg.km(n)
			cfg := sim.Config{
				Side: side, K: k, M: m,
				Strategy: sim.StrategySpec{Kind: sim.Nearest},
				Seed:     opt.seed() + uint64(side),
			}
			agg, err := sim.Run(cfg, trials, opt.Workers)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95()})
			xs = append(xs, float64(n))
			ys = append(ys, agg.MaxLoad.Mean())
		}
		_, slope, r2 := stats.FitAgainst(xs, ys, stats.Log)
		t.Notes = append(t.Notes, fmt.Sprintf("%s: fit L = a + %.3f·ln n, r² = %.4f (theory: positive slope, high r²)",
			rg.name, slope, r2))
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// Theorem4Regimes validates Theorem 4's threshold α + 2β ≥ 1: Strategy II
// with K = n, M = n^α, r = n^β stays at Θ(log log n) above the threshold
// and degrades below it. α = 0.4; β = 0.35 (above, α+2β = 1.1) versus
// β = 0.1 (below, α+2β = 0.6). Strategy I is included for reference.
func Theorem4Regimes(opt Options) (*Table, error) {
	trials := opt.trials(12, 1000)
	t := &Table{
		ID:     "thm4",
		Title:  "Strategy II: Theorem 4 threshold α+2β ≥ 1 (K=n, M=n^0.4)",
		XLabel: "n",
		YLabel: "max load",
		Notes:  []string{fmt.Sprintf("trials/point = %d", trials)},
	}
	type regime struct {
		name   string
		beta   float64
		kind   sim.StrategyKind
		strict bool
	}
	// Below the threshold B_r(u) often holds no replica and the strategy
	// of Definition 3 is undefined; with the default escalation the
	// search silently widens to r = ∞ (restoring the load bound but
	// paying Θ(√n) cost), so the strict variant — misses served at the
	// origin — is what exposes the load degradation.
	regimes := []regime{
		{"two-choices beta=0.35 (above)", 0.35, sim.TwoChoices, false},
		{"two-choices beta=0.10 (below, strict)", 0.10, sim.TwoChoices, true},
		{"nearest (Strategy I)", 0, sim.Nearest, false},
	}
	for _, rg := range regimes {
		s := Series{Name: rg.name}
		xs := make([]float64, 0, len(theoremSides))
		ys := make([]float64, 0, len(theoremSides))
		for _, side := range theoremSides {
			n := side * side
			m := int(math.Pow(float64(n), 0.4))
			cfg := sim.Config{
				Side: side, K: n, M: m,
				Seed: opt.seed() + uint64(side)*7,
			}
			if rg.strict {
				cfg.MissPolicy = sim.MissOrigin
			}
			if rg.kind == sim.TwoChoices {
				radius := int(math.Ceil(math.Pow(float64(n), rg.beta)))
				cfg.Strategy = sim.StrategySpec{Kind: sim.TwoChoices, Radius: radius}
			} else {
				cfg.Strategy = sim.StrategySpec{Kind: sim.Nearest}
			}
			agg, err := sim.Run(cfg, trials, opt.Workers)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{
				X: float64(n), Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
				Extra: map[string]float64{"escalated": agg.Escalated.Mean()},
			})
			xs = append(xs, float64(n))
			ys = append(ys, agg.MaxLoad.Mean())
		}
		_, slopeLL, r2LL := stats.FitAgainst(xs, ys, stats.LogLog)
		t.Notes = append(t.Notes, fmt.Sprintf("%s: fit vs log log n slope %.3f (r²=%.3f)", rg.name, slopeLL, r2LL))
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// Lemma1Cells validates Lemma 1: the maximum Voronoi cell is
// O(K log n / M). Each point reports the measured max cell size and the
// ratio to the K·ln(n)/M envelope, which must stay Θ(1).
func Lemma1Cells(opt Options) (*Table, error) {
	trials := opt.trials(5, 100)
	t := &Table{
		ID:     "lemma1",
		Title:  "Voronoi tessellation: max cell size vs K·ln(n)/M (Lemma 1)",
		XLabel: "n",
		YLabel: "max cell size",
		Notes:  []string{fmt.Sprintf("trials/point = %d", trials)},
	}
	type cfg struct{ k, m int }
	for _, c := range []cfg{{50, 1}, {200, 4}, {500, 10}} {
		s := Series{Name: fmt.Sprintf("K=%d,M=%d", c.k, c.m)}
		for _, side := range []int{20, 30, 45} {
			g := grid.New(side, grid.Torus)
			src := xrand.NewSource(opt.seed() + uint64(c.k+side))
			var maxCell, ratio stats.Summary
			bound := float64(c.k) * math.Log(float64(g.N())) / float64(c.m)
			for i := 0; i < trials; i++ {
				p := cache.Place(g.N(), c.m, dist.NewUniform(c.k), cache.WithReplacement, src.Stream(uint64(i)))
				st := voronoi.Analyze(g, p, src.Stream(uint64(1000+i)))
				maxCell.Add(float64(st.MaxCell))
				ratio.Add(float64(st.MaxCell) / bound)
			}
			s.Points = append(s.Points, Point{
				X: float64(g.N()), Y: maxCell.Mean(), CI: maxCell.CI95(),
				Extra: map[string]float64{"ratio_to_bound": ratio.Mean(), "bound": bound},
			})
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes, "expected: ratio_to_bound stays Θ(1) across n (Lemma 1 upper bound)")
	return t, nil
}

// ConfigGraphStats validates Lemma 2 (goodness) and Lemma 3 (H almost
// Δ-regular with Δ = Θ(M²r²/K)) at n = 2025, K = n, M = n^0.4 across
// radii. Columns report degree mean, CV, and the ratio to the predicted Δ.
func ConfigGraphStats(opt Options) (*Table, error) {
	trials := opt.trials(3, 50)
	t := &Table{
		ID:     "confgraph",
		Title:  "Configuration graph H: degree structure vs Lemma 3 prediction (n=2025, K=n, M=n^0.4)",
		XLabel: "r",
		YLabel: "mean degree",
		Notes:  []string{fmt.Sprintf("trials/point = %d", trials)},
	}
	g := grid.New(45, grid.Torus)
	n := g.N()
	m := int(math.Pow(float64(n), 0.4)) // ≈ 21
	s := Series{Name: "H degree"}
	for _, r := range []int{6, 10, 14, 18} {
		src := xrand.NewSource(opt.seed() + uint64(r))
		var mean, cv, ratio, minT, maxPair stats.Summary
		for i := 0; i < trials; i++ {
			p := cache.Place(n, m, dist.NewUniform(n), cache.WithReplacement, src.Stream(uint64(i)))
			h := confgraph.Build(g, p, r)
			ds := h.Stats(g, p, r)
			mean.Add(ds.Mean)
			cv.Add(ds.CV)
			if ds.PredDelta > 0 {
				ratio.Add(ds.Mean / ds.PredDelta)
			}
			good := p.CheckGoodness(5000, src.Stream(uint64(100+i)))
			minT.Add(float64(good.MinT))
			maxPair.Add(float64(good.MaxPairT))
		}
		s.Points = append(s.Points, Point{
			X: float64(r), Y: mean.Mean(), CI: mean.CI95(),
			Extra: map[string]float64{
				"degree_cv":      cv.Mean(),
				"ratio_to_delta": ratio.Mean(),
				"min_t(u)":       minT.Mean(),
				"max_t(u,v)":     maxPair.Mean(),
			},
		})
	}
	t.Series = append(t.Series, s)
	t.Notes = append(t.Notes,
		"expected: degree_cv small (almost regular), ratio_to_delta Θ(1), min t(u) ≥ δM (Lemma 2), max t(u,v) = O(1)")
	return t, nil
}

// Example3Study validates Example 3: with M = 1 and K = n^(1-ε) ≪ n the
// system decomposes into K disjoint balls-into-bins sub-problems and
// Strategy II achieves O(log log n) max load, versus Θ(log n/ log log n)-
// like growth for the one-choice baseline.
func Example3Study(opt Options) (*Table, error) {
	trials := opt.trials(12, 1000)
	t := &Table{
		ID:     "example3",
		Title:  "Example 3: M=1, K=√n — two choices vs one choice",
		XLabel: "n",
		YLabel: "max load",
		Notes:  []string{fmt.Sprintf("trials/point = %d", trials)},
	}
	for _, spec := range []struct {
		name string
		kind sim.StrategyKind
	}{
		{"two-choices (r=inf)", sim.TwoChoices},
		{"one-choice (r=inf)", sim.OneChoiceRandom},
	} {
		s := Series{Name: spec.name}
		xs := make([]float64, 0, len(theoremSides))
		ys := make([]float64, 0, len(theoremSides))
		for _, side := range theoremSides {
			n := side * side
			cfg := sim.Config{
				Side: side, K: int(math.Sqrt(float64(n))), M: 1,
				Strategy: sim.StrategySpec{Kind: spec.kind, Radius: core.RadiusUnbounded},
				Seed:     opt.seed() + uint64(side)*13,
			}
			agg, err := sim.Run(cfg, trials, opt.Workers)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95()})
			xs = append(xs, float64(n))
			ys = append(ys, agg.MaxLoad.Mean())
		}
		_, slope, r2 := stats.FitAgainst(xs, ys, stats.LogLog)
		t.Notes = append(t.Notes, fmt.Sprintf("%s: slope vs log log n = %.3f (r²=%.3f)", spec.name, slope, r2))
		t.Series = append(t.Series, s)
	}
	return t, nil
}
