package experiments

import (
	"fmt"
	"sort"

	"repro/internal/sweep"
)

// sweepSpecs holds the paper's headline parameter studies as declarative
// sweep grid specs for cmd/sweep -preset: the same (Config, trial)
// schedule the experiment runners use, but expressed as content-hashed
// shards so a fleet can compute them with crash tolerance and merge
// them bit-identically to a single host.
//
// Specs are kept as JSON (not constructed structs) on purpose: the JSON
// document is the canonical spec content that journals and artifacts
// hash, so what ships here is exactly what a user could put in a file.
var sweepSpecs = map[string]string{
	// smoke is the CI preset: seconds of CPU, exercising both strategy
	// families over a small torus. The sweep-smoke CI job runs it twice —
	// once under chaos, once direct — and diffs the artifacts.
	"smoke": `{
	  "name": "smoke",
	  "trials": 8,
	  "blocks": 4,
	  "seed": 2017,
	  "base": {"side": 10, "k": 100, "m": 2},
	  "axes": [
	    {"field": "strategy", "values": ["nearest", "two-choices"]},
	    {"field": "radius", "values": [2, 4]}
	  ]
	}`,
	// radius reproduces the Figure 2 axis: max-load and cost of the
	// two-choices strategy as the proximity radius r grows.
	"radius": `{
	  "name": "radius",
	  "trials": 200,
	  "blocks": 8,
	  "seed": 2017,
	  "base": {"side": 50, "k": 2500, "m": 4, "strategy": "two-choices"},
	  "axes": [
	    {"field": "radius", "values": [1, 2, 3, 4, 6, 8, 12, 16]}
	  ]
	}`,
	// strategies is the Figure 1 comparison: all four placement
	// strategies across library sizes at fixed cache budget.
	"strategies": `{
	  "name": "strategies",
	  "trials": 200,
	  "blocks": 8,
	  "seed": 2017,
	  "base": {"side": 40, "m": 4, "radius": 4},
	  "axes": [
	    {"field": "strategy", "values": ["nearest", "one-choice", "two-choices", "oracle"]},
	    {"field": "k", "values": [800, 1600, 3200, 6400]}
	  ]
	}`,
	// churn sweeps replica-churn intensity under the robustness
	// extensions, the regime the crash-tolerant orchestration itself is
	// motivated by.
	"churn": `{
	  "name": "churn",
	  "trials": 200,
	  "blocks": 8,
	  "seed": 2017,
	  "base": {"side": 30, "k": 900, "m": 4, "strategy": "two-choices", "radius": 4, "churn": "replicas"},
	  "axes": [
	    {"field": "churn_rate", "values": [0.001, 0.01, 0.05, 0.1]}
	  ]
	}`,
}

// SweepIDs returns all sweep preset names, sorted.
func SweepIDs() []string {
	ids := make([]string, 0, len(sweepSpecs))
	for id := range sweepSpecs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SweepSpec resolves a sweep preset into a parsed, validated spec.
func SweepSpec(id string) (*sweep.Spec, error) {
	src, ok := sweepSpecs[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown sweep preset %q (have %v)", id, SweepIDs())
	}
	return sweep.ParseSpec([]byte(src))
}
