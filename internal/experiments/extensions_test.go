package experiments

import "testing"

func TestPlacementPoliciesTiny(t *testing.T) {
	tb, err := PlacementPolicies(tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	if len(tb.Series) != 4 {
		t.Fatalf("placement table has %d series, want 4", len(tb.Series))
	}
}

func TestLinkCongestionTiny(t *testing.T) {
	tb, err := LinkCongestion(tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	// Nearest must carry less max-link traffic than unbounded 2-choices.
	nearest := tb.Series[0].Points[0].Y
	unbounded := tb.Series[2].Points[0].Y
	if nearest >= unbounded {
		t.Fatalf("linkload: nearest %.1f not below unbounded %.1f", nearest, unbounded)
	}
	for _, s := range tb.Series {
		if s.Points[0].Extra["congestion_factor"] < 1 {
			t.Fatalf("%s congestion factor below 1", s.Name)
		}
	}
}

func TestHeavyLoadTiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 3
	tb, err := HeavyLoad(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	// One-choice gap at c=16 must exceed two-choice gap at c=16.
	twoGap := tb.Series[0].Points[len(tb.Series[0].Points)-1].Y
	oneGap := tb.Series[1].Points[len(tb.Series[1].Points)-1].Y
	if twoGap >= oneGap {
		t.Fatalf("heavyload: two-choice gap %.2f not below one-choice %.2f", twoGap, oneGap)
	}
}

func TestBetaChoiceTiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 4
	tb, err := BetaChoice(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	pts := tb.Series[0].Points
	if !(pts[len(pts)-1].Y < pts[0].Y) {
		t.Fatalf("beta sweep not decreasing: %.2f -> %.2f", pts[0].Y, pts[len(pts)-1].Y)
	}
}

func TestDirectoryOverheadTiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 1
	tb, err := DirectoryOverhead(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	// DHT lookup cost must grow with n and exceed the polling radius at
	// the largest scale.
	dhtPts := tb.Series[0].Points
	pollPts := tb.Series[1].Points
	last := len(dhtPts) - 1
	if dhtPts[last].Y <= dhtPts[0].Y {
		t.Fatalf("dht cost not growing: %.2f -> %.2f", dhtPts[0].Y, dhtPts[last].Y)
	}
	if dhtPts[last].Y <= pollPts[last].Y {
		t.Fatalf("dht cost %.2f not above polling radius %.2f at max n",
			dhtPts[last].Y, pollPts[last].Y)
	}
}

func TestPopularityDriftTiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 2
	tb, err := PopularityDrift(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	if len(tb.Series) != 3 {
		t.Fatalf("drift table has %d series, want 3", len(tb.Series))
	}
	// Averaged over the later epochs, the clairvoyant policy must beat
	// static (the placement has drifted away from the demand).
	lateMean := func(s Series) float64 {
		sum, n := 0.0, 0
		for _, p := range s.Points[len(s.Points)/2:] {
			sum += p.Y
			n++
		}
		return sum / float64(n)
	}
	var staleLoad, clairLoad float64
	for _, s := range tb.Series {
		switch s.Name {
		case "stale(t=0 truth)":
			staleLoad = lateMean(s)
		case "clairvoyant":
			clairLoad = lateMean(s)
		}
	}
	if !(clairLoad < staleLoad) {
		t.Fatalf("drift: clairvoyant %.2f not below stale %.2f in late epochs", clairLoad, staleLoad)
	}
}

func TestHeteroTiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 2
	tb, err := Hetero(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	if len(tb.Series) != 3 {
		t.Fatalf("hetero table has %d series, want 3", len(tb.Series))
	}
	for _, s := range tb.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s has %d points, want one per profile", s.Name, len(s.Points))
		}
	}
	// The arrival series must actually exercise the join machinery at the
	// skewed profiles, and its vacancy counters must stay absent from the
	// capacity series.
	for _, s := range tb.Series {
		arrival := s.Name == "two-choices/arrival"
		for i, p := range s.Points {
			_, ok := p.Extra["arrivals"]
			if ok != arrival {
				t.Fatalf("%s point %d: arrivals extra present=%v, want %v", s.Name, i, ok, arrival)
			}
			if arrival && p.Extra["arrivals"] <= 0 {
				t.Fatalf("%s point %d: no arrival events recorded", s.Name, i)
			}
		}
	}
}
