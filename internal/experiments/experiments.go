// Package experiments reproduces every table and figure of the paper's
// evaluation (§V) plus validation studies for the formal results (Lemma 1,
// Lemma 2/3, Theorems 1-4, Example 3) and the §VI queueing conjecture.
//
// Each experiment is a function from Options to a Table — a named set of
// (x, y) series with confidence intervals — that can be rendered to CSV or
// markdown, benchmarked from bench_test.go, or driven from cmd/figures.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Preset scales the number of trials per point.
type Preset int

const (
	// Quick targets CI: minutes of CPU for the full suite, wider error
	// bars but identical estimators and identical qualitative shapes.
	Quick Preset = iota
	// Paper approaches the paper's replica counts (800-10000 runs per
	// point); hours of CPU.
	Paper
)

// ParsePreset converts a CLI name.
func ParsePreset(s string) (Preset, error) {
	switch strings.ToLower(s) {
	case "quick":
		return Quick, nil
	case "paper", "full":
		return Paper, nil
	}
	return 0, fmt.Errorf("experiments: unknown preset %q (want quick or paper)", s)
}

// String implements fmt.Stringer.
func (p Preset) String() string {
	if p == Paper {
		return "paper"
	}
	return "quick"
}

// Options configures an experiment run.
type Options struct {
	// Preset selects default trial counts (Quick or Paper).
	Preset Preset
	// Trials overrides the preset trial count when positive.
	Trials int
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed roots all randomness (default 2017, the paper's year).
	Seed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 2017
	}
	return o.Seed
}

// trials resolves the trial count for an experiment whose presets are
// (quick, paper).
func (o Options) trials(quick, paper int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Preset == Paper {
		return paper
	}
	return quick
}

// Point is one measured x/y pair with a 95% CI half-width on y and
// optional extra columns.
type Point struct {
	X     float64
	Y     float64
	CI    float64
	Extra map[string]float64
}

// Series is one labelled curve.
type Series struct {
	Name   string
	Points []Point
}

// Table is one reproduced figure or table.
type Table struct {
	ID     string // e.g. "fig1"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// extraColumns returns the sorted union of Extra keys across all points.
func (t *Table) extraColumns() []string {
	set := map[string]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			for k := range p.Extra {
				set[k] = true
			}
		}
	}
	cols := make([]string, 0, len(set))
	for k := range set {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	return cols
}

// WriteCSV emits the table in long form: series,x,y,ci[,extras...].
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	extras := t.extraColumns()
	header := append([]string{"series", t.XLabel, t.YLabel, "ci95"}, extras...)
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, s := range t.Series {
		for _, p := range s.Points {
			row := []string{s.Name, f(p.X), f(p.Y), f(p.CI)}
			for _, k := range extras {
				row = append(row, f(p.Extra[k]))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Markdown renders the table, suitable for EXPERIMENTS.md: a pivot with
// one row per x value when the series share an x grid, or one block per
// series when x values are measured quantities that never align (e.g. the
// Fig. 5 trade-off scatter).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	// Collect the x grid.
	xsSet := map[float64]bool{}
	points := 0
	for _, s := range t.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
			points++
		}
	}
	// When over 70% of points carry a unique x (measured scatter, e.g.
	// Fig. 5's cost axis), a shared pivot grid would be mostly empty —
	// render per-series blocks instead.
	if len(t.Series) > 1 && 10*len(xsSet) > 7*points {
		return t.markdownBlocks(&b)
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "| %s |", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %s |", s.Name)
	}
	b.WriteString("\n|---|")
	for range t.Series {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "| %.6g |", x)
		for _, s := range t.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.3f ± %.3f", p.Y, p.CI)
					break
				}
			}
			fmt.Fprintf(&b, " %s |", cell)
		}
		b.WriteString("\n")
	}
	t.writeNotes(&b)
	return b.String()
}

// markdownBlocks renders one compact sub-table per series (scatter data).
func (t *Table) markdownBlocks(b *strings.Builder) string {
	for _, s := range t.Series {
		fmt.Fprintf(b, "**%s**\n\n| %s | %s |\n|---|---|\n", s.Name, t.XLabel, t.YLabel)
		for _, p := range s.Points {
			fmt.Fprintf(b, "| %.4g | %.3f ± %.3f |\n", p.X, p.Y, p.CI)
		}
		b.WriteString("\n")
	}
	t.writeNotes(b)
	return b.String()
}

func (t *Table) writeNotes(b *strings.Builder) {
	for _, n := range t.Notes {
		fmt.Fprintf(b, "\n> %s\n", n)
	}
}
