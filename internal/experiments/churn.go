package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// churnRates sweeps the migration intensity from the static baseline
// (rate 0 = ChurnNone, the frozen-placement engine) to one migration
// per request.
var churnRates = []float64{0, 0.1, 0.25, 0.5, 1}

// Churn probes the §VI dynamic regime through the churn engine: caches
// migrate replicas mid-trial (uniformly, or chasing a drifting
// popularity) while Strategy II keeps assigning requests against the
// live placement. Static vs dynamic load curves: the x axis is the
// migration rate (expected events per request), the rate-0 point is the
// ChurnNone engine every golden matrix freezes. Both candidate-
// enumeration disciplines run the uniform schedule, which doubles as a
// visible cross-check that the incremental TileIndex maintenance agrees
// with the exact path (the churn schedules are identical by
// construction; see sim's TestChurnScheduleIndexInvariant).
//
// Expected shape: because migrations preserve every |S_j| (the
// placement profile never decays, only replica geography moves), the
// max-load curves stay near the static baseline — the two-choices
// process is robust to placement churn, the paper's implicit premise
// for deferring dynamics to future work. The cost curve drifts with the
// geography instead.
func Churn(opt Options) (*Table, error) {
	const (
		side   = 25 // n = 625, 8+ pipeline chunks per trial
		k      = 2000
		m      = 4
		radius = 6
	)
	trials := opt.trials(6, 400)
	t := &Table{
		ID:     "churn",
		Title:  "Dynamic re-placement: max load vs churn rate (n=625, K=2000, M=4, two-choices r=6)",
		XLabel: "churn rate (migrations/request)",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d; %d requests per trial (8 pipeline chunks)", trials, 8*1024),
			"rate 0 is the static ChurnNone engine (frozen by the golden matrices); higher rates migrate replicas mid-trial via incremental Placement/TileIndex splices",
			"replicas: uniform replica migration; drift: migrations chase a shot-noise popularity drifter",
			"|S_j| is invariant under migration, so load stays near the static curve while mean cost drifts with replica geography",
		},
	}
	series := []struct {
		name  string
		churn sim.ChurnMode
		index sim.IndexMode
	}{
		{"replicas (exact path)", sim.ChurnReplicas, sim.IndexNone},
		{"replicas (tile index)", sim.ChurnReplicas, sim.IndexTiles},
		{"drift (tile index)", sim.ChurnDrift, sim.IndexTiles},
	}
	var cfgs []sim.Config
	for _, s := range series {
		for _, rate := range churnRates {
			cfg := sim.Config{
				Side: side, K: k, M: m,
				Popularity: sim.PopSpec{Kind: sim.PopZipf, Gamma: 0.8},
				Strategy:   sim.StrategySpec{Kind: sim.TwoChoices, Radius: radius},
				Requests:   8 * 1024,
				Index:      s.index,
				Seed:       opt.seed() + uint64(17*int(s.churn)+3*int(s.index)),
			}
			if rate > 0 {
				cfg.Churn = s.churn
				cfg.ChurnRate = rate
			}
			cfgs = append(cfgs, cfg)
		}
	}
	aggs, err := runGrid(cfgs, trials, opt)
	if err != nil {
		return nil, err
	}
	for i, s := range series {
		sr := Series{Name: s.name}
		for j, rate := range churnRates {
			agg := aggs[i*len(churnRates)+j]
			sr.Points = append(sr.Points, Point{
				X: rate, Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
				Extra: map[string]float64{
					"cost":          agg.MeanCost.Mean(),
					"churn_events":  agg.ChurnEvents.Mean(),
					"churn_skipped": agg.ChurnSkipped.Mean(),
				},
			})
		}
		t.Series = append(t.Series, sr)
	}
	return t, nil
}
