package experiments

import "testing"

func TestWideGridTiny(t *testing.T) {
	tb, err := WideGrid(tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	if len(tb.Series) != 2 {
		t.Fatalf("widegrid should have 2 strategy curves, got %d", len(tb.Series))
	}
	// Streaming extras must actually flow through the aggregate.
	for _, s := range tb.Series {
		for _, p := range s.Points {
			if p.Extra["hopmax"] <= 0 || p.Extra["loadp99"] <= 0 {
				t.Fatalf("widegrid %s: streaming extras missing at n=%v: %+v", s.Name, p.X, p.Extra)
			}
		}
	}
	// Two choices balances at least as well as nearest at the widest pilot
	// world (generous slack: tiny trial counts).
	i, ii := tb.Series[0], tb.Series[1]
	if ii.Points[len(ii.Points)-1].Y > i.Points[len(i.Points)-1].Y+1 {
		t.Fatalf("widegrid: strategy II load %.2f above strategy I %.2f",
			ii.Points[len(ii.Points)-1].Y, i.Points[len(i.Points)-1].Y)
	}
}
