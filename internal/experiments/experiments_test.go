package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOpt keeps experiment tests fast: 2 trials per point.
var tinyOpt = Options{Trials: 2, Workers: 0, Seed: 99}

func TestParsePreset(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Preset
		ok   bool
	}{
		{"quick", Quick, true}, {"paper", Paper, true}, {"full", Paper, true},
		{"QUICK", Quick, true}, {"bogus", 0, false},
	} {
		got, err := ParsePreset(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParsePreset(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParsePreset(%q) accepted", tc.in)
		}
	}
	if Quick.String() != "quick" || Paper.String() != "paper" {
		t.Fatal("Preset strings wrong")
	}
}

func TestOptionsResolution(t *testing.T) {
	if (Options{}).seed() != 2017 {
		t.Fatal("default seed wrong")
	}
	if (Options{Seed: 5}).seed() != 5 {
		t.Fatal("explicit seed ignored")
	}
	if (Options{}).trials(7, 100) != 7 {
		t.Fatal("quick preset trials wrong")
	}
	if (Options{Preset: Paper}).trials(7, 100) != 100 {
		t.Fatal("paper preset trials wrong")
	}
	if (Options{Trials: 3, Preset: Paper}).trials(7, 100) != 3 {
		t.Fatal("override trials ignored")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(registry) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(registry))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
	for _, id := range ids {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted unknown id")
	}
}

// checkTable verifies structural invariants every reproduced table must
// satisfy.
func checkTable(t *testing.T, tb *Table) {
	t.Helper()
	if tb.ID == "" || tb.Title == "" || tb.XLabel == "" || tb.YLabel == "" {
		t.Fatalf("table metadata incomplete: %+v", tb)
	}
	if len(tb.Series) == 0 {
		t.Fatal("table has no series")
	}
	for _, s := range tb.Series {
		if s.Name == "" {
			t.Fatal("unnamed series")
		}
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		for _, p := range s.Points {
			if p.CI < 0 {
				t.Fatalf("series %s: negative CI %v", s.Name, p.CI)
			}
		}
	}
	// CSV round-trips without error and contains every series name.
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := buf.String()
	for _, s := range tb.Series {
		if !strings.Contains(out, s.Name) {
			t.Fatalf("CSV missing series %s", s.Name)
		}
	}
	// Markdown renders and mentions the title.
	md := tb.Markdown()
	if !strings.Contains(md, tb.ID) || !strings.Contains(md, "|") {
		t.Fatalf("markdown malformed:\n%s", md)
	}
}

func TestFigure1Tiny(t *testing.T) {
	tb, err := Figure1(tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	if len(tb.Series) != 4 {
		t.Fatalf("fig1 should have 4 cache-size curves, got %d", len(tb.Series))
	}
	// M=100 curve must sit at or below M=1 at the largest n (more cache,
	// better balance).
	m1 := tb.Series[0].Points[len(tb.Series[0].Points)-1].Y
	m100 := tb.Series[3].Points[len(tb.Series[3].Points)-1].Y
	if m100 > m1+0.5 {
		t.Fatalf("fig1: M=100 load %.2f above M=1 load %.2f", m100, m1)
	}
}

func TestFigure2Tiny(t *testing.T) {
	tb, err := Figure2(tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	// Cost decreases in M for every K, and increases in K at fixed M.
	for _, s := range tb.Series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if last >= first {
			t.Fatalf("fig2 %s: cost did not fall from M=1 (%.2f) to M=100 (%.2f)", s.Name, first, last)
		}
	}
	if tb.Series[0].Points[0].Y >= tb.Series[2].Points[0].Y {
		t.Fatalf("fig2: K=100 cost %.2f not below K=2000 cost %.2f at M=1",
			tb.Series[0].Points[0].Y, tb.Series[2].Points[0].Y)
	}
}

func TestFigure34Tiny(t *testing.T) {
	// Trim to the small-n prefix for test speed by using the tiny trial
	// count; full-size grids still run (seconds).
	if testing.Short() {
		t.Skip("fig3/4 grid too large for -short")
	}
	opt := tinyOpt
	opt.Trials = 2
	load, cost, err := Figure34(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, load)
	checkTable(t, cost)
	// Fig 4 shape: cost grows with n (Θ(√n)) for every M.
	for _, s := range cost.Series {
		if s.Points[len(s.Points)-1].Y <= s.Points[0].Y {
			t.Fatalf("fig4 %s: cost not growing with n", s.Name)
		}
	}
	// Fig 3 shape: at the largest n, ample replication (M=10) beats M=1.
	last := len(load.Series[0].Points) - 1
	if load.Series[2].Points[last].Y > load.Series[0].Points[last].Y {
		t.Fatalf("fig3: M=10 load %.2f above M=1 load %.2f at max n",
			load.Series[2].Points[last].Y, load.Series[0].Points[last].Y)
	}
}

func TestFigure5Tiny(t *testing.T) {
	tb, err := Figure5(tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	if len(tb.Series) != 7 {
		t.Fatalf("fig5 should have 7 cache-size curves, got %d", len(tb.Series))
	}
	// Radius extras must be recorded for trade-off interpretation.
	if _, ok := tb.Series[0].Points[0].Extra["radius"]; !ok {
		t.Fatal("fig5 points missing radius extra")
	}
	// High-memory curve must reach a lower max load than the M=1 curve
	// somewhere along the sweep.
	minY := func(s Series) float64 {
		m := s.Points[0].Y
		for _, p := range s.Points {
			if p.Y < m {
				m = p.Y
			}
		}
		return m
	}
	if !(minY(tb.Series[6]) < minY(tb.Series[0])) {
		t.Fatalf("fig5: M=200 best load %.2f not below M=1 best load %.2f",
			minY(tb.Series[6]), minY(tb.Series[0]))
	}
}

func TestZipfCostTableTiny(t *testing.T) {
	tb, err := ZipfCostTable(tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	// γ=2.5 must scale much flatter in K than γ=0.5.
	var e05, e25 float64
	for _, s := range tb.Series {
		switch s.Name {
		case "gamma=0.5":
			e05 = s.Points[0].Extra["measured_exponent"]
		case "gamma=2.5":
			e25 = s.Points[0].Extra["measured_exponent"]
		}
	}
	if !(e25 < e05-0.2) {
		t.Fatalf("zipf exponents: gamma=2.5 %.3f not clearly below gamma=0.5 %.3f", e25, e05)
	}
}

func TestUniformCostLawTiny(t *testing.T) {
	tb, err := UniformCostLaw(tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "r²") || strings.Contains(n, "r2") {
			found = true
		}
	}
	if !found {
		t.Fatal("fit note missing")
	}
}

func TestTheorem12FitTiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 4
	tb, err := Theorem12Fit(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	// Max load must grow from smallest to largest n in the Thm 1 regime.
	s := tb.Series[0]
	if s.Points[len(s.Points)-1].Y <= s.Points[0].Y {
		t.Fatalf("thm1 regime: max load not growing (%.2f -> %.2f)",
			s.Points[0].Y, s.Points[len(s.Points)-1].Y)
	}
}

func TestTheorem4RegimesTiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 4
	tb, err := Theorem4Regimes(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	// Above-threshold two-choices must end below Strategy I at max n,
	// and below the strict below-threshold variant (whose radius misses
	// pile onto origins).
	last := len(tb.Series[0].Points) - 1
	above, below, nearest := tb.Series[0].Points[last].Y, tb.Series[1].Points[last].Y, tb.Series[2].Points[last].Y
	if !(above < nearest) {
		t.Fatalf("thm4: above-threshold load %.2f not below nearest %.2f", above, nearest)
	}
	if !(above < below) {
		t.Fatalf("thm4: above-threshold load %.2f not below strict below-threshold %.2f", above, below)
	}
}

func TestLemma1CellsTiny(t *testing.T) {
	tb, err := Lemma1Cells(tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	for _, s := range tb.Series {
		for _, p := range s.Points {
			ratio := p.Extra["ratio_to_bound"]
			if ratio <= 0 || ratio > 4 {
				t.Fatalf("lemma1 %s: ratio %.2f outside Θ(1) band", s.Name, ratio)
			}
		}
	}
}

func TestConfigGraphStatsTiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 1
	tb, err := ConfigGraphStats(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	for _, p := range tb.Series[0].Points {
		if p.Extra["degree_cv"] > 0.5 {
			t.Fatalf("confgraph: degree CV %.3f too high", p.Extra["degree_cv"])
		}
		if r := p.Extra["ratio_to_delta"]; r < 0.2 || r > 5 {
			t.Fatalf("confgraph: ratio to Δ %.2f outside Θ(1) band", r)
		}
	}
}

func TestExample3Tiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 4
	tb, err := Example3Study(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	// Two-choices must beat one-choice at the largest n.
	last := len(tb.Series[0].Points) - 1
	if !(tb.Series[0].Points[last].Y < tb.Series[1].Points[last].Y) {
		t.Fatalf("example3: two-choices %.2f not below one-choice %.2f",
			tb.Series[0].Points[last].Y, tb.Series[1].Points[last].Y)
	}
}

func TestSupermarketTiny(t *testing.T) {
	opt := tinyOpt
	opt.Trials = 1
	tb, err := Supermarket(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb)
	// JSQ(2) max queue at λ=0.95 below random's.
	lastJSQ := tb.Series[0].Points[len(tb.Series[0].Points)-1].Y
	lastRnd := tb.Series[1].Points[len(tb.Series[1].Points)-1].Y
	if !(lastJSQ < lastRnd) {
		t.Fatalf("supermarket: JSQ(2) %.1f not below random %.1f at high load", lastJSQ, lastRnd)
	}
}

func TestMarkdownGrid(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "T", XLabel: "n", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Y: 2, CI: 0.1}, {X: 2, Y: 3, CI: 0.1}}},
			{Name: "b", Points: []Point{{X: 1, Y: 5, CI: 0.2}}},
		},
		Notes: []string{"note!"},
	}
	md := tb.Markdown()
	for _, want := range []string{"| n | a | b |", "2.000 ± 0.100", "5.000 ± 0.200", "note!"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestCSVExtraColumns(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "T", XLabel: "n", YLabel: "y",
		Series: []Series{{Name: "a", Points: []Point{
			{X: 1, Y: 2, CI: 0.1, Extra: map[string]float64{"zz": 7, "aa": 3}},
		}}},
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if head != "series,n,y,ci95,aa,zz" {
		t.Fatalf("csv header %q", head)
	}
	if !strings.Contains(buf.String(), ",3,7") {
		t.Fatalf("csv extras missing: %s", buf.String())
	}
}
