package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// wideGridSides spans the quick preset (CI-sized pilot worlds) and the
// paper preset, which pushes past the paper's largest simulated network
// (n = 1.2·10⁵) to a million servers.
var (
	wideGridSidesQuick = []int{40, 70}
	wideGridSidesPaper = []int{316, 550, 1000}
)

// WideGrid is the beyond-the-paper scaling sweep: Strategy I vs
// Strategy II on tori up to Side = 1000 (n = 10⁶ servers, 10⁶ requests
// per trial), runnable at flat memory because every trial uses the
// streaming metrics mode (constant-memory hop/load accumulators, no O(n)
// metric vectors) and the split-stream request discipline (batched
// generation, allocation-free request loop). Reported per point: max
// load, mean cost, and the streaming extras (hop max/std, 99th-percentile
// node load).
func WideGrid(opt Options) (*Table, error) {
	sides := wideGridSidesQuick
	if opt.Preset == Paper {
		sides = wideGridSidesPaper
	}
	trials := opt.trials(4, 25)
	t := &Table{
		ID:     "widegrid",
		Title:  "Wide worlds: Strategy I vs II up to n=10⁶ (streaming metrics, K=10⁴, M=10)",
		XLabel: "n",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d; preset %s sides %v", trials, opt.Preset, sides),
			"split-stream request discipline + streaming metrics: request path allocates nothing, no O(n) metric vector is materialized",
			"tile-bucketed spatial replica index (IndexTiles): S_j ∩ B_r(u) enumerated per covered tile, making the Side=1000 two-choices trial sub-second",
			"expected shape: Strategy I grows with log n; Strategy II stays near log log n at cost Θ(r)",
		},
	}
	kinds := []struct {
		name string
		kind sim.StrategyKind
	}{
		{"strategy I (nearest)", sim.Nearest},
		{"strategy II (two choices)", sim.TwoChoices},
	}
	var cfgs []sim.Config
	for _, k := range kinds {
		for _, side := range sides {
			cfgs = append(cfgs, sim.Config{
				Side: side, K: 10000, M: 10,
				Strategy: sim.StrategySpec{Kind: k.kind, Radius: wideGridRadius(side)},
				Metrics:  sim.MetricsStreaming,
				Streams:  sim.StreamsSplit,
				Index:    sim.IndexTiles,
				Seed:     opt.seed() + uint64(1000*int(k.kind)+side),
			})
		}
	}
	aggs, err := runGrid(cfgs, trials, opt)
	if err != nil {
		return nil, err
	}
	for i, k := range kinds {
		s := Series{Name: k.name}
		for j, side := range sides {
			agg := aggs[i*len(sides)+j]
			s.Points = append(s.Points, Point{
				X: float64(side * side), Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
				Extra: map[string]float64{
					"cost":    agg.MeanCost.Mean(),
					"hopmax":  agg.HopMax.Mean(),
					"hopstd":  agg.HopStd.Mean(),
					"loadp99": agg.LoadP99.Mean(),
					"radius":  float64(wideGridRadius(side)),
				},
			})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// wideGridRadius scales Strategy II's proximity constraint like n^β with
// the world (r = Side/25, floored at 8), keeping the Theorem 4 regime
// α + 2β ≥ 1 as the sweep widens. Strategy I ignores it.
func wideGridRadius(side int) int {
	return max(8, side/25)
}
