package experiments

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/dht"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// DirectoryOverhead quantifies the control-plane cost the paper assumes
// away (§VI: replica location "by periodic polling of nearby servers" or
// DHTs): an exact DHT directory charges a Θ(√n) round trip to each file's
// home node, while radius-r polling charges Θ(r) but only sees B_r(u).
// The series compare both against the data-plane cost of Strategy II.
func DirectoryOverhead(opt Options) (*Table, error) {
	trials := opt.trials(5, 200)
	t := &Table{
		ID:     "directory",
		Title:  "Content-location control cost: DHT directory vs local polling (K=500, M=10)",
		XLabel: "n",
		YLabel: "hops per lookup",
		Notes: []string{
			fmt.Sprintf("trials/point = %d; polling radius r = ceil(n^0.3)", trials),
			"expected: DHT lookup cost grows Θ(√n); polling cost Θ(r) = Θ(n^0.3); the paper's locality assumption is the difference between the two curves",
		},
	}
	sides := []int{15, 25, 35, 45}
	dhtSeries := Series{Name: "dht directory (round trip)"}
	pollSeries := Series{Name: "local polling (radius)"}
	for _, side := range sides {
		g := grid.New(side, grid.Torus)
		n := g.N()
		r := int(math.Ceil(math.Pow(float64(n), 0.3)))
		src := xrand.NewSource(opt.seed() + uint64(side))
		var dhtCost stats.Summary
		for i := 0; i < trials; i++ {
			p := cache.Place(n, 10, dist.NewUniform(500), cache.WithReplacement, src.Stream(uint64(i)))
			ring := dht.NewRing(n, 64)
			dir := dht.NewDirectory(ring, g, p)
			dhtCost.Add(dir.MeanLookupCost())
		}
		dhtSeries.Points = append(dhtSeries.Points, Point{
			X: float64(n), Y: dhtCost.Mean(), CI: dhtCost.CI95(),
		})
		// Polling cost: one probe wave to radius r (the cache-content
		// dynamic is slow, §VI, so this amortizes; we charge the r-hop
		// wavefront as the per-refresh cost).
		pollSeries.Points = append(pollSeries.Points, Point{
			X: float64(n), Y: float64(r), CI: 0,
			Extra: map[string]float64{"ball_size": float64(g.BallSize(r))},
		})
	}
	t.Series = append(t.Series, dhtSeries, pollSeries)
	xs := make([]float64, len(dhtSeries.Points))
	ys := make([]float64, len(dhtSeries.Points))
	for i, p := range dhtSeries.Points {
		xs[i], ys[i] = p.X, p.Y
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"dht cost growth exponent in n: %.3f (theory 0.5)", stats.GrowthExponent(xs, ys)))
	return t, nil
}
