package experiments

import (
	"fmt"

	"repro/internal/queueing"
	"repro/internal/stats"
)

// Supermarket probes the §VI conjecture: the continuous-time
// proximity-aware supermarket model mirrors the static balls-into-bins
// behaviour. Max queue length is measured against per-server load λ for
// JSQ(2) versus random assignment (d = 1), both radius-constrained.
func Supermarket(opt Options) (*Table, error) {
	trials := opt.trials(3, 50)
	t := &Table{
		ID:     "supermarket",
		Title:  "Supermarket model (§VI): max queue vs arrival rate, JSQ(2) vs random",
		XLabel: "lambda",
		YLabel: "max queue",
		Notes: []string{
			fmt.Sprintf("trials/point = %d; n = 625, K = 200, M = 8, r = 6, horizon 300", trials),
			"expected: JSQ(2) max queue stays near-flat in λ while random assignment grows sharply — the continuous-time power of two choices",
		},
	}
	for _, spec := range []struct {
		name    string
		choices int
	}{
		{"JSQ(2), r=6", 2},
		{"random (d=1), r=6", 1},
	} {
		s := Series{Name: spec.name}
		for _, lambda := range []float64{0.5, 0.7, 0.8, 0.9, 0.95} {
			var maxQ, sojourn stats.Summary
			for i := 0; i < trials; i++ {
				res, err := queueing.Run(queueing.Config{
					Side: 25, K: 200, M: 8,
					Lambda:  lambda,
					Radius:  6,
					Choices: spec.choices,
					Horizon: 300,
					WarmUp:  60,
					Seed:    opt.seed() + uint64(i*10+spec.choices),
				})
				if err != nil {
					return nil, err
				}
				maxQ.Add(float64(res.MaxQueue))
				sojourn.Add(res.Sojourn.Mean())
			}
			s.Points = append(s.Points, Point{
				X: lambda, Y: maxQ.Mean(), CI: maxQ.CI95(),
				Extra: map[string]float64{"mean_sojourn": sojourn.Mean()},
			})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}
