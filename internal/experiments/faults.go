package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// faultFractions sweeps the expected failed fraction of the network from
// the all-live baseline (FaultsNone, the golden-pinned engine) to half
// the servers crashing over a trial with no recovery.
var faultFractions = []float64{0, 0.1, 0.25, 0.5}

// Faults probes robustness under node failure through the fault engine:
// servers crash mid-trial (uniformly, or by whole tile-aligned regions)
// with no recovery, the strategies mask dead nodes through the
// graceful-degradation ladder, and the surviving network keeps serving.
// The x axis is the expected failed fraction at trial end (FaultRate is
// scaled so frac·n crash events accrue over the trial); the fraction-0
// point is the FaultsNone engine every golden matrix freezes. Y is the
// max load over ALL nodes; availability, degraded-path mass (retried),
// dead population and backhaul volume ride along as extras.
//
// Expected shape: two-choices degrades gracefully — availability falls
// roughly linearly with the failed fraction (a dead fraction φ removes
// ≈ φ of the replicas, and only fully dead replica sets force backhaul)
// while max load grows modestly as the surviving nodes absorb the
// traffic. Regional failures hit harder at equal fractions: killing
// contiguous r-balls wipes whole neighborhoods of candidates, pushing
// more requests onto escalation and backhaul than independent crashes
// do.
func Faults(opt Options) (*Table, error) {
	const (
		side   = 25 // n = 625, 8 pipeline chunks per trial
		k      = 2000
		m      = 4
		radius = 6
		nReq   = 8 * 1024
	)
	trials := opt.trials(6, 400)
	t := &Table{
		ID:     "faults",
		Title:  "Node fault injection: max load and availability vs failed fraction (n=625, K=2000, M=4, r=6)",
		XLabel: "expected failed fraction at trial end",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d; %d requests per trial; FaultRate = frac·n/requests, RecoverRate = 0 (permanent crashes)", trials, nReq),
			"fraction 0 is the FaultsNone engine (frozen by the golden matrices); higher fractions crash nodes at chunk barriers via the namespace-7 fault stream",
			"crash: independent uniform node failures; regional: whole tile-aligned failure domains (regionSize geometry)",
			"strategies reject dead candidates and walk the degradation ladder: live-pool retry, escalation to r=∞ over live replicas, backhaul at the origin",
			"extras: availability = in-network served fraction; retried = degraded-path requests/trial; dead_nodes at trial end; backhaul requests/trial",
		},
	}
	series := []struct {
		name   string
		strat  sim.StrategySpec
		faults sim.FaultsMode
	}{
		{"two-choices/crash", sim.StrategySpec{Kind: sim.TwoChoices, Radius: radius}, sim.FaultsCrash},
		{"two-choices/regional", sim.StrategySpec{Kind: sim.TwoChoices, Radius: radius}, sim.FaultsRegional},
		{"nearest/crash", sim.StrategySpec{Kind: sim.Nearest}, sim.FaultsCrash},
	}
	n := float64(side * side)
	var cfgs []sim.Config
	for _, s := range series {
		for _, frac := range faultFractions {
			cfg := sim.Config{
				Side: side, K: k, M: m,
				Popularity: sim.PopSpec{Kind: sim.PopZipf, Gamma: 0.8},
				Strategy:   s.strat,
				Requests:   nReq,
				MissPolicy: sim.MissEscalate,
				Index:      sim.IndexTiles,
				Seed:       opt.seed() + uint64(23*int(s.faults)+5*int(s.strat.Kind)),
			}
			if frac > 0 {
				cfg.Faults = s.faults
				// Scale the event rate so ≈ frac·n nodes crash over the
				// trial: a regional event kills a whole failure domain, so
				// its rate divides by the per-event blast radius.
				cfg.FaultRate = frac * n / float64(nReq)
				if s.faults == sim.FaultsRegional {
					cfg.FaultRate /= float64(sim.RegionNodes(side))
				}
			}
			cfgs = append(cfgs, cfg)
		}
	}
	aggs, err := runGrid(cfgs, trials, opt)
	if err != nil {
		return nil, err
	}
	for i, s := range series {
		sr := Series{Name: s.name}
		for j, frac := range faultFractions {
			agg := aggs[i*len(faultFractions)+j]
			// The fraction-0 baseline runs FaultsNone, whose Results carry
			// no fault metrics: availability there is still 1 − backhaul
			// (uncached files backhaul even with every node live).
			extra := map[string]float64{
				"cost":         agg.MeanCost.Mean(),
				"availability": 1 - agg.Backhaul.Mean(),
				"retried":      0,
				"dead_nodes":   0,
				"backhaul":     agg.Backhaul.Mean() * float64(nReq),
			}
			if frac > 0 {
				extra["availability"] = agg.Availability.Mean()
				extra["retried"] = agg.Retried.Mean() * float64(nReq)
				extra["dead_nodes"] = agg.DeadNodes.Mean()
			}
			sr.Points = append(sr.Points, Point{
				X: frac, Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
				Extra: extra,
			})
		}
		t.Series = append(t.Series, sr)
	}
	return t, nil
}
