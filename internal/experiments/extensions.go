package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
)

// PlacementPolicies compares cache placement rules (proportional — the
// paper's model — versus square-root, uniform and capped) under a Zipf
// catalog, measuring the max load and cost of Strategy II. Proportional
// placement equalizes demand per replica (LoadSkew = 1) and is therefore
// the load-optimal rule — this experiment quantifies how much worse the
// popularity-blind alternatives are, and what they buy back in tail
// coverage (fewer uncached files).
func PlacementPolicies(opt Options) (*Table, error) {
	trials := opt.trials(10, 1000)
	t := &Table{
		ID:     "placement",
		Title:  "Placement policies under Zipf(1.2): Strategy II load and cost (n=2025, K=500, M=4)",
		XLabel: "radius",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d", trials),
			"expected: proportional lowest max load (per-replica demand skew 1); uniform worst (head replicas overwhelmed); sqrt/capped in between, with better tail coverage (lower uncached counts)",
		},
	}
	for _, pol := range []replication.Policy{
		replication.Proportional, replication.SquareRoot,
		replication.UniformPlace, replication.Capped,
	} {
		s := Series{Name: pol.String()}
		for _, r := range []int{4, 8, 16, 32} {
			cfg := sim.Config{
				Side: 45, K: 500, M: 4,
				Popularity:      sim.PopSpec{Kind: sim.PopZipf, Gamma: 1.2},
				PlacementPolicy: pol,
				Strategy:        sim.StrategySpec{Kind: sim.TwoChoices, Radius: r},
				Seed:            opt.seed() + uint64(int(pol)*100+r),
			}
			agg, err := sim.Run(cfg, trials, opt.Workers)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{
				X: float64(r), Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
				Extra: map[string]float64{
					"cost":      agg.MeanCost.Mean(),
					"escalated": agg.Escalated.Mean(),
					"uncached":  agg.Uncached.Mean(),
				},
			})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// LinkCongestion routes every delivery hop-by-hop and compares wire-level
// congestion across strategies: nearest replica minimizes total traffic;
// unbounded two-choices floods long paths; radius-r two-choices sits in
// between — the second face of the paper's proximity/balance trade-off.
func LinkCongestion(opt Options) (*Table, error) {
	trials := opt.trials(8, 500)
	t := &Table{
		ID:     "linkload",
		Title:  "Link-level congestion by strategy (n=2025, K=500, M=10, XY routing)",
		XLabel: "strategy_index",
		YLabel: "max link load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d", trials),
			"series are strategies; x enumerates them; extras carry congestion factor (max/mean link load) and server max load",
		},
	}
	specs := []struct {
		name string
		s    sim.StrategySpec
	}{
		{"nearest", sim.StrategySpec{Kind: sim.Nearest}},
		{"two-choices r=8", sim.StrategySpec{Kind: sim.TwoChoices, Radius: 8}},
		{"two-choices r=inf", sim.StrategySpec{Kind: sim.TwoChoices, Radius: core.RadiusUnbounded}},
	}
	for i, sp := range specs {
		cfg := sim.Config{
			Side: 45, K: 500, M: 10,
			Strategy:     sp.s,
			CollectLinks: true,
			Seed:         opt.seed() + uint64(i),
		}
		agg, err := sim.Run(cfg, trials, opt.Workers)
		if err != nil {
			return nil, err
		}
		t.Series = append(t.Series, Series{Name: sp.name, Points: []Point{{
			X: float64(i), Y: agg.MaxLinkLoad.Mean(), CI: agg.MaxLinkLoad.CI95(),
			Extra: map[string]float64{
				"congestion_factor": agg.LinkCongestion.Mean(),
				"server_max_load":   agg.MaxLoad.Mean(),
				"mean_cost":         agg.MeanCost.Mean(),
			},
		}}})
	}
	return t, nil
}

// HeavyLoad probes the heavily loaded case (Berenbrink et al., cited as
// [9]): with m = c·n requests the two-choice gap m/n + O(log log n) stays
// bounded while one-choice grows like √(m log n / n). We sweep c and
// report max load minus the average load m/n.
func HeavyLoad(opt Options) (*Table, error) {
	trials := opt.trials(10, 1000)
	t := &Table{
		ID:     "heavyload",
		Title:  "Heavily loaded case: max load − m/n vs request multiplier (n=1024, K=200, M=10, r=inf)",
		XLabel: "c (requests = c·n)",
		YLabel: "max load − m/n",
		Notes: []string{
			fmt.Sprintf("trials/point = %d", trials),
			"expected: two-choices gap stays O(log log n) — essentially flat in c; one-choice gap grows like √c (Berenbrink et al.)",
		},
	}
	n := 32 * 32
	for _, spec := range []struct {
		name string
		kind sim.StrategyKind
	}{
		{"two-choices", sim.TwoChoices},
		{"one-choice", sim.OneChoiceRandom},
	} {
		s := Series{Name: spec.name}
		for _, c := range []int{1, 2, 4, 8, 16} {
			cfg := sim.Config{
				Side: 32, K: 200, M: 10,
				Requests: c * n,
				Strategy: sim.StrategySpec{Kind: spec.kind, Radius: core.RadiusUnbounded},
				Seed:     opt.seed() + uint64(c),
			}
			agg, err := sim.Run(cfg, trials, opt.Workers)
			if err != nil {
				return nil, err
			}
			gap := agg.MaxLoad.Mean() - float64(c)
			s.Points = append(s.Points, Point{
				X: float64(c), Y: gap, CI: agg.MaxLoad.CI95(),
				Extra: map[string]float64{"max_load": agg.MaxLoad.Mean()},
			})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// BetaChoice sweeps the (1+β)-choice mixing parameter: β = 0 is the
// one-choice baseline, β = 1 full two-choices. The bulk of the balancing
// benefit arrives well before β = 1, so probing traffic can be halved at
// modest load cost — a practical knob the paper's scheme admits directly.
func BetaChoice(opt Options) (*Table, error) {
	trials := opt.trials(12, 1000)
	t := &Table{
		ID:     "beta-choice",
		Title:  "(1+β)-choice: max load vs β (n=2025, K=500, M=10, r=8)",
		XLabel: "beta",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d", trials),
			"expected: monotone decreasing, steep at small β, flat near 1 (diminishing returns of probe traffic)",
		},
	}
	s := Series{Name: "two-choices(beta)"}
	for _, beta := range []float64{0.001, 0.25, 0.5, 0.75, 0.999} {
		cfg := sim.Config{
			Side: 45, K: 500, M: 10,
			Strategy: sim.StrategySpec{Kind: sim.TwoChoices, Radius: 8, Beta: beta},
			Seed:     opt.seed() + uint64(beta*1000),
		}
		agg, err := sim.Run(cfg, trials, opt.Workers)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{
			X: beta, Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
			Extra: map[string]float64{"cost": agg.MeanCost.Mean()},
		})
	}
	t.Series = append(t.Series, s)
	return t, nil
}
