package experiments

import "testing"

// TestSweepPresetsParse guarantees every registered preset is a valid,
// fully expandable spec — a preset that fails to parse would otherwise
// only be discovered when someone launches a fleet.
func TestSweepPresetsParse(t *testing.T) {
	if len(SweepIDs()) == 0 {
		t.Fatal("no sweep presets registered")
	}
	for _, id := range SweepIDs() {
		spec, err := SweepSpec(id)
		if err != nil {
			t.Errorf("preset %q: %v", id, err)
			continue
		}
		if spec.Name != id {
			t.Errorf("preset %q names itself %q", id, spec.Name)
		}
		shards, err := spec.Shards()
		if err != nil {
			t.Errorf("preset %q shards: %v", id, err)
			continue
		}
		if len(shards) == 0 {
			t.Errorf("preset %q expands to no shards", id)
		}
	}
	if _, err := SweepSpec("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestSmokePresetIsQuick pins the CI contract: the smoke preset must
// stay small enough to run twice (chaos + direct) in the sweep-smoke
// job.
func TestSmokePresetIsQuick(t *testing.T) {
	spec, err := SweepSpec("smoke")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	if work := len(pts) * spec.Trials; work > 64 {
		t.Fatalf("smoke preset grew to %d point-trials; keep it CI-sized", work)
	}
}
