package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// stalenessWorkers sweeps the intra-trial shard count P.
var stalenessWorkers = []int{1, 2, 4, 8}

// Staleness probes two-choices allocation quality under stale load
// information — the question the sharded engine's load-visibility
// disciplines make experimentally accessible, and one the
// Pourmiri–Sauerwald–Stafford model (sequential requests, exact loads)
// cannot express. Three visibility regimes bracket each other:
//
//   - sequential (Workers = 0): every request sees the exact live loads
//     — the paper's process and the freshest possible signal;
//   - racy (ShardRacy): P workers share one atomic load vector; a read
//     misses only the adds still in flight on other workers, so
//     staleness grows with P;
//   - frozen (ShardDeterministic): strategies read the snapshot from
//     the last chunk barrier — the worst case, a full chunk of adds
//     invisible regardless of P — so chunk size, not worker count,
//     sets its staleness window.
//
// The x axis is P; one racy series per chunk size (the chunk bounds
// both the barrier cadence and the in-flight window), with the frozen
// and sequential curves as the stale/fresh envelopes. Expected shape:
// max load degrades from the sequential baseline toward the frozen
// ceiling as P and chunk grow, while mean cost stays put — staleness
// perturbs tie-breaking toward the wrong replica, not the replica
// geometry. Racy points are scheduling-dependent (not reproducible
// run-to-run); their means converge with trials like any other noisy
// estimator.
func Staleness(opt Options) (*Table, error) {
	const (
		side   = 25 // n = 625
		k      = 2000
		m      = 4
		radius = 6
		nReq   = 8 * 1024
	)
	trials := opt.trials(6, 400)
	t := &Table{
		ID:     "staleness",
		Title:  "Two choices under stale loads: max load vs shard count (n=625, K=2000, M=4, r=6)",
		XLabel: "intra-trial workers P",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d; %d requests per trial", trials, nReq),
			"racy: shared atomic load vector, reads unsynchronized with other workers' in-flight adds (staleness grows with P and chunk)",
			"frozen: chunk-barrier snapshot loads (ShardDeterministic) — the worst-case window, P-invariant by construction",
			"sequential: the Workers=0 engine, exact live loads — the paper's process, plotted flat as the fresh baseline",
			"racy points are scheduling-dependent; means converge with trials",
		},
	}
	base := sim.Config{
		Side: side, K: k, M: m,
		Popularity: sim.PopSpec{Kind: sim.PopZipf, Gamma: 0.8},
		Strategy:   sim.StrategySpec{Kind: sim.TwoChoices, Radius: radius},
		Requests:   nReq,
		Streams:    sim.StreamsSplit,
		Seed:       opt.seed(),
	}

	series := []struct {
		name  string
		shard sim.ShardMode
		chunk int
	}{
		{"racy chunk=64", sim.ShardRacy, 64},
		{"racy chunk=256", sim.ShardRacy, 256},
		{"racy chunk=1024", sim.ShardRacy, 1024},
		{"frozen chunk=1024", sim.ShardDeterministic, 1024},
	}
	var cfgs []sim.Config
	for _, s := range series {
		for _, p := range stalenessWorkers {
			cfg := base
			cfg.Workers = p
			cfg.Shard = s.shard
			cfg.Chunk = s.chunk
			cfgs = append(cfgs, cfg)
		}
	}
	seq := base // Workers = 0: the exact-load sequential engine
	cfgs = append(cfgs, seq)

	aggs, err := runGrid(cfgs, trials, opt)
	if err != nil {
		return nil, err
	}
	for i, s := range series {
		sr := Series{Name: s.name}
		for j, p := range stalenessWorkers {
			agg := aggs[i*len(stalenessWorkers)+j]
			sr.Points = append(sr.Points, Point{
				X: float64(p), Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
				Extra: map[string]float64{"cost": agg.MeanCost.Mean()},
			})
		}
		t.Series = append(t.Series, sr)
	}
	seqAgg := aggs[len(aggs)-1]
	flat := Series{Name: "sequential (exact loads)"}
	for _, p := range stalenessWorkers {
		flat.Points = append(flat.Points, Point{
			X: float64(p), Y: seqAgg.MaxLoad.Mean(), CI: seqAgg.MaxLoad.CI95(),
			Extra: map[string]float64{"cost": seqAgg.MeanCost.Mean()},
		})
	}
	t.Series = append(t.Series, flat)
	return t, nil
}
