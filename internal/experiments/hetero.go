package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// heteroProfiles sweeps capacity skew from the degenerate uniform
// profile (bit-identical to the homogeneous engine) through the
// two-tier split to the heavy-tailed power law.
var heteroProfiles = []struct {
	name    string
	profile sim.CacheProfile
}{
	{"uniform", sim.ProfileUniform},
	{"two-tier", sim.ProfileTwoTier},
	{"power-law", sim.ProfilePowerLaw},
}

// Hetero probes the heterogeneous-node extension: per-node cache sizes
// M_u drawn from a profile on the dedicated namespace-8 stream, service
// capacities C_u weighting the two-choices load comparison, and (in the
// arrival regime) ~25% of nodes starting vacant and joining mid-trial
// at chunk barriers. The x axis is the profile index (0 = uniform,
// 1 = two-tier, 2 = power-law); x=0 under HeteroCapacity is draw-for-
// draw identical to the homogeneous engine the golden matrices freeze.
// Y is the max load over all nodes; cost, backhaul and — for the
// arrival series — the join/vacancy counters ride along as extras.
//
// Expected shape: raw max load GROWS with skew under every strategy —
// by design. Big nodes hold more replicas and the weighted comparison
// deliberately routes extra load to them (it equalizes load/C_u, not
// raw load), so the raw maximum concentrates on the high-C_u nodes as
// the profile spreads. The claim worth checking is relative:
// capacity-weighted two-choices stays below nearest at every skew
// level (nearest cannot exploit capacity — it never compares loads),
// and the arrival series pays a penalty over its capacity twin while
// vacant nodes sit out the early chunks and the survivors absorb
// their share.
func Hetero(opt Options) (*Table, error) {
	const (
		side   = 25 // n = 625, 8 pipeline chunks per trial
		k      = 2000
		m      = 4
		radius = 6
		nReq   = 8 * 1024
		arrRt  = 0.02 // ≈ 164 scheduled joins/trial vs ≈ 156 vacant nodes
	)
	trials := opt.trials(6, 400)
	t := &Table{
		ID:     "hetero",
		Title:  "Node heterogeneity: max load vs capacity skew (n=625, K=2000, M=4, r=6)",
		XLabel: "cache-size profile (0=uniform, 1=two-tier, 2=power-law)",
		YLabel: "max load",
		Notes: []string{
			fmt.Sprintf("trials/point = %d; %d requests per trial; profiles draw M_u and C_u on the namespace-8 hetero stream", trials, nReq),
			"profile 0 under the capacity regime is the homogeneous engine (degenerate identity frozen by the golden matrices)",
			"two-tier: ~25% of nodes get (2M, C=2), the rest (2M/3, C=1); power-law: Pareto(α=1.5) sizes clamped to [1, 8M], C_u ∝ M_u",
			fmt.Sprintf("arrival series: ~25%% of nodes start vacant and join at chunk barriers (ArrivalRate %g, namespace-8 credit schedule)", arrRt),
			"extras: cost, backhaul requests/trial; arrivals and vacant (trial end) on the arrival series",
		},
	}
	series := []struct {
		name   string
		strat  sim.StrategySpec
		hetero sim.HeteroMode
	}{
		{"two-choices/capacity", sim.StrategySpec{Kind: sim.TwoChoices, Radius: radius}, sim.HeteroCapacity},
		{"nearest/capacity", sim.StrategySpec{Kind: sim.Nearest}, sim.HeteroCapacity},
		{"two-choices/arrival", sim.StrategySpec{Kind: sim.TwoChoices, Radius: radius}, sim.HeteroArrival},
	}
	var cfgs []sim.Config
	for _, s := range series {
		for _, p := range heteroProfiles {
			cfg := sim.Config{
				Side: side, K: k, M: m,
				Popularity: sim.PopSpec{Kind: sim.PopZipf, Gamma: 0.8},
				Strategy:   s.strat,
				Requests:   nReq,
				MissPolicy: sim.MissEscalate,
				Index:      sim.IndexTiles,
				Hetero:     s.hetero,
				Profile:    p.profile,
				Seed:       opt.seed() + uint64(31*int(s.hetero)+5*int(s.strat.Kind)),
			}
			if s.hetero == sim.HeteroArrival {
				cfg.ArrivalRate = arrRt
			}
			cfgs = append(cfgs, cfg)
		}
	}
	aggs, err := runGrid(cfgs, trials, opt)
	if err != nil {
		return nil, err
	}
	for i, s := range series {
		sr := Series{Name: s.name}
		for j := range heteroProfiles {
			agg := aggs[i*len(heteroProfiles)+j]
			extra := map[string]float64{
				"cost":     agg.MeanCost.Mean(),
				"backhaul": agg.Backhaul.Mean() * float64(nReq),
			}
			if s.hetero == sim.HeteroArrival {
				extra["arrivals"] = agg.ArrivalEvents.Mean()
				extra["vacant"] = agg.Vacant.Mean()
			}
			sr.Points = append(sr.Points, Point{
				X: float64(j), Y: agg.MaxLoad.Mean(), CI: agg.MaxLoad.CI95(),
				Extra: extra,
			})
		}
		t.Series = append(t.Series, sr)
	}
	return t, nil
}
