package workload

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/xrand"
)

func TestIRMMatchesProfile(t *testing.T) {
	pop := dist.NewZipf(20, 1.0)
	s := IRM{Pop: pop}
	if s.K() != 20 || s.Name() == "" {
		t.Fatal("IRM metadata wrong")
	}
	r := xrand.NewSource(1).Stream(0)
	counts := make([]int, 20)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[s.Next(r)]++
	}
	for j := 0; j < 20; j++ {
		if math.Abs(float64(counts[j])/draws-pop.P(j)) > 0.01 {
			t.Fatalf("file %d frequency off: %v vs %v", j, float64(counts[j])/draws, pop.P(j))
		}
	}
}

func TestShotNoiseValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"k=0":        func() { NewShotNoise(0, 10, 0.01, 100) },
		"boost<1":    func() { NewShotNoise(10, 0.5, 0.01, 100) },
		"birth=0":    func() { NewShotNoise(10, 10, 0, 100) },
		"birth=1":    func() { NewShotNoise(10, 10, 1, 100) },
		"lifespan<1": func() { NewShotNoise(10, 10, 0.01, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestShotNoiseActiveSetEquilibrium(t *testing.T) {
	// With birth rate b and death rate 1/L, the stationary active
	// fraction is b/(b + 1/L). Drive the chain and check the mean.
	k := 400
	s := NewShotNoise(k, 50, 0.002, 200) // stationary ≈ 0.286
	r := xrand.NewSource(2).Stream(0)
	var sum, n float64
	for i := 0; i < 20000; i++ {
		s.Next(r)
		if i > 5000 {
			sum += float64(s.ActiveCount())
			n++
		}
	}
	got := sum / n / float64(k)
	want := 0.002 / (0.002 + 1.0/200)
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("stationary active fraction %.3f, want ≈ %.3f", got, want)
	}
}

func TestShotNoiseBoostsActives(t *testing.T) {
	// Requests must concentrate on the active set: with boost B the
	// active-file hit fraction should approach B·a/(B·a + (1-a)) for
	// active fraction a.
	k := 200
	s := NewShotNoise(k, 100, 0.001, 300)
	r := xrand.NewSource(3).Stream(0)
	hits, total := 0, 0
	for i := 0; i < 30000; i++ {
		f := s.Next(r)
		if i > 5000 {
			total++
			if s.d.active[f] {
				hits++
			}
		}
	}
	frac := float64(hits) / float64(total)
	if frac < 0.7 {
		t.Fatalf("active files get only %.3f of requests despite 100x boost", frac)
	}
}

func TestShotNoiseTruthTracksWeights(t *testing.T) {
	s := NewShotNoise(50, 10, 0.01, 100)
	r := xrand.NewSource(4).Stream(0)
	for i := 0; i < 500; i++ {
		s.Next(r)
	}
	truth := s.Truth()
	for j := 0; j < 50; j++ {
		wantBoost := s.d.active[j]
		isBig := truth.P(j) > 1.5/50.0/2 // boosted files carry ≫ uniform mass
		if wantBoost != (truth.P(j) > 0.02) && wantBoost != isBig {
			t.Fatalf("truth profile inconsistent at %d: active=%v p=%v", j, s.d.active[j], truth.P(j))
		}
	}
	if s.Name() == "" || s.K() != 50 {
		t.Fatal("metadata wrong")
	}
}

func TestGeometricSkipMean(t *testing.T) {
	r := xrand.NewSource(5).Stream(0)
	p := 0.05
	var sum float64
	const draws = 200000
	for i := 0; i < draws; i++ {
		sum += float64(geometricSkip(r, p))
	}
	mean := sum / draws
	want := (1 - p) / p // mean failures before success
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("geometric skip mean %.2f, want %.2f", mean, want)
	}
	if geometricSkip(r, 1) != 0 {
		t.Fatal("p=1 must skip 0")
	}
}

func TestWindowValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"k=0":    func() { NewWindow(0, 5) },
		"size=0": func() { NewWindow(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWindowSlides(t *testing.T) {
	w := NewWindow(3, 4)
	for _, f := range []int{0, 0, 1, 2} {
		w.Observe(f)
	}
	if w.Len() != 4 {
		t.Fatalf("len %d", w.Len())
	}
	// Window now [0,0,1,2]: counts 2,1,1 (+1 smoothing → 3,2,2 of 7).
	e := w.Estimate()
	if math.Abs(e.P(0)-3.0/7) > 1e-12 {
		t.Fatalf("P(0) = %v", e.P(0))
	}
	// Push two more 2s: window becomes [1,2,2,2] → counts 0,1,3.
	w.Observe(2)
	w.Observe(2)
	e = w.Estimate()
	if math.Abs(e.P(0)-1.0/7) > 1e-12 || math.Abs(e.P(2)-4.0/7) > 1e-12 {
		t.Fatalf("slide wrong: P(0)=%v P(2)=%v", e.P(0), e.P(2))
	}
}

func TestWindowPartialFill(t *testing.T) {
	w := NewWindow(4, 100)
	w.Observe(3)
	if w.Len() != 1 {
		t.Fatalf("len %d", w.Len())
	}
	e := w.Estimate()
	// counts: 0,0,0,1 (+1 each) → 1,1,1,2 of 5.
	if math.Abs(e.P(3)-0.4) > 1e-12 {
		t.Fatalf("P(3) = %v", e.P(3))
	}
}

func TestWindowEstimateConvergesToTruth(t *testing.T) {
	pop := dist.NewZipf(30, 1.1)
	w := NewWindow(30, 20000)
	r := xrand.NewSource(6).Stream(0)
	for i := 0; i < 20000; i++ {
		w.Observe(pop.Sample(r))
	}
	if tv := TotalVariation(pop, w.Estimate()); tv > 0.03 {
		t.Fatalf("window estimate TV distance %.4f from truth, want < 0.03", tv)
	}
}

func TestTotalVariation(t *testing.T) {
	a := dist.NewCustom([]float64{1, 0}, "a")
	b := dist.NewCustom([]float64{0, 1}, "b")
	if tv := TotalVariation(a, b); math.Abs(tv-1) > 1e-12 {
		t.Fatalf("disjoint TV = %v, want 1", tv)
	}
	if tv := TotalVariation(a, a); tv != 0 {
		t.Fatalf("self TV = %v", tv)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	TotalVariation(a, dist.NewUniform(3))
}

func BenchmarkShotNoiseNext(b *testing.B) {
	s := NewShotNoise(2000, 50, 0.0005, 500)
	r := xrand.NewSource(1).Stream(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Next(r)
	}
}
