// Package workload generalizes the paper's request process. The paper
// assumes the independent reference model (IRM): every request draws its
// file i.i.d. from a static popularity profile. Real catalogs drift (§VI
// defers "dynamic library popularity profiles" to DHT-based adaptation),
// so this package adds:
//
//   - IRM — the paper's stream, for baseline parity;
//   - ShotNoise — files become active in Poisson-arriving "shots" whose
//     request intensity decays over a finite lifespan (the standard
//     model for video-catalog churn), so the instantaneous popularity
//     drifts away from any placement computed at time zero;
//   - Window — a sliding-window empirical popularity estimator that a
//     re-placement policy can consume to chase the drift.
//
// Streams are deterministic given their RNG, and expose the *ground
// truth* instantaneous profile so experiments can separate estimation
// error from adaptation lag.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/dist"
)

// Stream produces a sequence of file requests.
type Stream interface {
	// Next returns the requested file for step t (t increases by 1 per
	// call; implementations may use it as a clock).
	Next(r *rand.Rand) int
	// K returns the library size.
	K() int
	// Name identifies the stream in experiment output.
	Name() string
}

// IRM is the paper's independent reference model: i.i.d. draws from a
// fixed profile.
type IRM struct {
	Pop dist.Popularity
}

// Next implements Stream.
func (s IRM) Next(r *rand.Rand) int { return s.Pop.Sample(r) }

// K implements Stream.
func (s IRM) K() int { return s.Pop.K() }

// Name implements Stream.
func (s IRM) Name() string { return "irm(" + s.Pop.Name() + ")" }

// Drifter is the shot-noise activity core, factored out so consumers
// that manage their own samplers (the simulation engine's drift-coupled
// churn rebuilds a conditioned alias table into reusable arenas) can
// drive the drift without ShotNoise's per-rebuild allocations. Each of
// the k files is either dormant (weight 1) or active (weight boost);
// files activate independently with probability birthRate per Step and
// stay active for a geometric lifetime with mean lifespan steps.
// Deterministic given its RNG; Step and Reset never allocate.
type Drifter struct {
	k         int
	boost     float64 // weight multiplier while active
	birthRate float64 // per-file activation probability per step
	deathRate float64 // per-file deactivation probability per step
	active    []bool
	weights   []float64
	dirty     bool
}

// NewDrifter builds the activity core over k files. boost ≥ 1 is the
// activity multiplier; expected concurrent actives ≈ k·birth/(birth+death).
func NewDrifter(k int, boost, birthRate, lifespan float64) *Drifter {
	if k <= 0 {
		panic(fmt.Sprintf("workload: need k > 0, got %d", k))
	}
	if boost < 1 || birthRate <= 0 || birthRate >= 1 || lifespan < 1 {
		panic(fmt.Sprintf("workload: invalid shot-noise params boost=%v birth=%v lifespan=%v",
			boost, birthRate, lifespan))
	}
	d := &Drifter{
		k:         k,
		boost:     boost,
		birthRate: birthRate,
		deathRate: 1 / lifespan,
		active:    make([]bool, k),
		weights:   make([]float64, k),
	}
	for i := range d.weights {
		d.weights[i] = 1
	}
	return d
}

// K returns the library size.
func (d *Drifter) K() int { return d.k }

// Step evolves the active set by one tick.
func (d *Drifter) Step(r *rand.Rand) {
	// Evolving every file every tick is O(k); instead exploit that
	// births and deaths are rare: draw binomial counts via expected
	// thinning. For simplicity and exactness we flip a coin per file
	// only with the aggregate probability trick: sample the number of
	// transitions from the exact binomial via repeated geometric skips.
	flip := func(p float64, match func(i int) bool, set func(i int)) {
		if p <= 0 {
			return
		}
		// Geometric skipping over the k files.
		i := 0
		for {
			skip := geometricSkip(r, p)
			i += skip
			if i >= d.k {
				return
			}
			if match(i) {
				set(i)
				d.dirty = true
			}
			i++
		}
	}
	flip(d.birthRate, func(i int) bool { return !d.active[i] }, func(i int) {
		d.active[i] = true
		d.weights[i] = d.boost
	})
	flip(d.deathRate, func(i int) bool { return d.active[i] }, func(i int) {
		d.active[i] = false
		d.weights[i] = 1
	})
}

// Weights returns the live instantaneous weight vector (1 dormant,
// boost active). The caller must not mutate it; it changes on Step.
func (d *Drifter) Weights() []float64 { return d.weights }

// Dirty reports whether the active set changed since the last
// ClearDirty — the signal to rebuild a sampler over Weights.
func (d *Drifter) Dirty() bool { return d.dirty }

// ClearDirty acknowledges a sampler rebuild.
func (d *Drifter) ClearDirty() { d.dirty = false }

// Reset returns every file to dormant and marks the drifter dirty, so
// per-trial consumers start from a deterministic state.
func (d *Drifter) Reset() {
	clear(d.active)
	for i := range d.weights {
		d.weights[i] = 1
	}
	d.dirty = true
}

// ActiveCount returns the current number of active files.
func (d *Drifter) ActiveCount() int {
	c := 0
	for _, a := range d.active {
		if a {
			c++
		}
	}
	return c
}

// ShotNoise models catalog churn as a request stream: a Drifter evolves
// the active set one tick per request, and files are sampled from the
// instantaneous weights. The active set turns over continuously,
// dragging the instantaneous popularity away from the long-run average.
type ShotNoise struct {
	d       *Drifter
	sampler *dist.Alias
}

// NewShotNoise builds a shot-noise stream over k files. Parameters as in
// NewDrifter.
func NewShotNoise(k int, boost, birthRate float64, lifespan float64) *ShotNoise {
	s := &ShotNoise{d: NewDrifter(k, boost, birthRate, lifespan)}
	s.rebuild()
	return s
}

func (s *ShotNoise) rebuild() {
	k := s.d.k
	probs := make([]float64, k)
	sum := 0.0
	for _, w := range s.d.weights {
		sum += w
	}
	for i, w := range s.d.weights {
		probs[i] = w / sum
	}
	s.sampler = dist.NewAlias(probs)
	s.d.ClearDirty()
}

// geometricSkip returns the number of failures before the next success of
// a Bernoulli(p) sequence, via inverse-transform sampling.
func geometricSkip(r *rand.Rand, p float64) int {
	q := 1 - p
	if q <= 0 {
		return 0
	}
	u := r.Float64()
	if u <= 0 {
		return 0
	}
	skip := int(math.Log(u) / math.Log(q))
	if skip < 0 {
		return 0
	}
	return skip
}

// Next implements Stream.
func (s *ShotNoise) Next(r *rand.Rand) int {
	s.d.Step(r)
	if s.d.Dirty() {
		s.rebuild()
	}
	return s.sampler.Sample(r)
}

// K implements Stream.
func (s *ShotNoise) K() int { return s.d.k }

// Name implements Stream.
func (s *ShotNoise) Name() string { return fmt.Sprintf("shotnoise(boost=%.0f)", s.d.boost) }

// ActiveCount returns the current number of active files.
func (s *ShotNoise) ActiveCount() int { return s.d.ActiveCount() }

// Truth returns the instantaneous ground-truth popularity.
func (s *ShotNoise) Truth() dist.Popularity {
	return dist.NewCustom(append([]float64(nil), s.d.weights...), "shotnoise-truth")
}

// Window is a sliding-window popularity estimator: it counts the last
// size requests per file and exposes the empirical distribution with
// +1 smoothing (so newly risen files are never assigned zero placement
// mass).
type Window struct {
	k      int
	size   int
	buf    []int32
	counts []int
	pos    int
	filled bool
}

// NewWindow returns an estimator over k files with the given window size.
func NewWindow(k, size int) *Window {
	if k <= 0 || size <= 0 {
		panic(fmt.Sprintf("workload: need k > 0 and size > 0, got %d, %d", k, size))
	}
	return &Window{k: k, size: size, buf: make([]int32, size), counts: make([]int, k)}
}

// Observe records one request.
func (w *Window) Observe(file int) {
	if w.filled {
		w.counts[w.buf[w.pos]]--
	}
	w.buf[w.pos] = int32(file)
	w.counts[file]++
	w.pos++
	if w.pos == w.size {
		w.pos = 0
		w.filled = true
	}
}

// Len returns the number of requests currently in the window.
func (w *Window) Len() int {
	if w.filled {
		return w.size
	}
	return w.pos
}

// Estimate returns the smoothed empirical popularity.
func (w *Window) Estimate() dist.Popularity {
	weights := make([]float64, w.k)
	for i, c := range w.counts {
		weights[i] = float64(c) + 1
	}
	return dist.NewCustom(weights, "window-estimate")
}

// TotalVariation computes the TV distance between two profiles over the
// same library — the adaptation-lag metric used by the drift experiment.
func TotalVariation(a, b dist.Popularity) float64 {
	if a.K() != b.K() {
		panic("workload: profile size mismatch")
	}
	s := 0.0
	for j := 0; j < a.K(); j++ {
		d := a.P(j) - b.P(j)
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / 2
}
