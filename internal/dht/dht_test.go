package dht

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/xrand"
)

func TestNewRingPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":      func() { NewRing(0, 4) },
		"vnodes=0": func() { NewRing(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLookupDeterministicAndValid(t *testing.T) {
	r := NewRing(64, 32)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		a, b := r.Lookup(key), r.Lookup(key)
		if a != b {
			t.Fatalf("lookup of %q unstable: %d vs %d", key, a, b)
		}
		if a < 0 || a >= 64 {
			t.Fatalf("lookup of %q out of range: %d", key, a)
		}
	}
}

func TestLookupMatchesBruteForce(t *testing.T) {
	r := NewRing(16, 8)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("bf%d", i)
		pos := hash64(key)
		// Brute force: smallest point ≥ pos, else global minimum.
		var best *vpoint
		var minPt *vpoint
		for idx := range r.points {
			p := &r.points[idx]
			if minPt == nil || p.pos < minPt.pos {
				minPt = p
			}
			if p.pos >= pos && (best == nil || p.pos < best.pos) {
				best = p
			}
		}
		want := minPt.node
		if best != nil {
			want = best.node
		}
		if got := r.Lookup(key); got != want {
			t.Fatalf("Lookup(%q) = %d, brute force %d", key, got, want)
		}
	}
}

func TestKeyBalanceImprovesWithVnodes(t *testing.T) {
	cv := func(vnodes int) float64 {
		s := NewRing(50, vnodes).KeyBalance(20000)
		if s.Mean() == 0 {
			t.Fatal("no keys landed")
		}
		return s.Std() / s.Mean()
	}
	lo, hi := cv(1), cv(128)
	if hi >= lo {
		t.Fatalf("vnodes=128 CV %.3f not below vnodes=1 CV %.3f", hi, lo)
	}
	if hi > 0.5 {
		t.Fatalf("128-vnode balance too poor: CV %.3f", hi)
	}
}

func TestJoinLeaveConsistency(t *testing.T) {
	// Consistent hashing's defining property: removing one of n nodes
	// remaps only ≈ 1/n of keys; adding it back restores every mapping.
	const n, keys = 40, 8000
	r := NewRing(n, 64)
	before := make([]int32, keys)
	for i := range before {
		before[i] = r.Lookup(fmt.Sprintf("key-%d", i))
	}
	r.Leave(7)
	moved := 0
	for i := range before {
		now := r.Lookup(fmt.Sprintf("key-%d", i))
		if now != before[i] {
			if before[i] != 7 {
				t.Fatalf("key %d moved from %d to %d though node 7 left", i, before[i], now)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac > 3.0/n {
		t.Fatalf("leave remapped %.3f of keys, want ≈ 1/%d", frac, n)
	}
	r.Join(7)
	for i := range before {
		if got := r.Lookup(fmt.Sprintf("key-%d", i)); got != before[i] {
			t.Fatalf("rejoin did not restore key %d: %d vs %d", i, got, before[i])
		}
	}
	// Idempotent operations.
	r.Join(7)
	r.Leave(99999)
	if r.Nodes() != n {
		t.Fatalf("node count %d after idempotent ops", r.Nodes())
	}
}

func TestLeaveLastNodePanics(t *testing.T) {
	r := NewRing(1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("removing the last node did not panic")
		}
	}()
	r.Leave(0)
}

func TestSuccessorsDistinct(t *testing.T) {
	prop := func(seed uint64, cRaw uint8) bool {
		r := NewRing(20, 16)
		count := int(cRaw)%20 + 1
		key := fmt.Sprintf("s%d", seed)
		succ := r.Successors(key, count)
		if len(succ) != count {
			return false
		}
		seen := map[int32]bool{}
		for _, u := range succ {
			if seen[u] || u < 0 || u >= 20 {
				return false
			}
			seen[u] = true
		}
		// First successor must agree with Lookup.
		return succ[0] == r.Lookup(key)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessorsPanicsWhenTooMany(t *testing.T) {
	r := NewRing(3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversubscribed successors did not panic")
		}
	}()
	r.Successors("x", 4)
}

func TestDirectoryCosts(t *testing.T) {
	g := grid.New(15, grid.Torus)
	p := cache.Place(g.N(), 4, dist.NewUniform(50), cache.WithReplacement,
		xrand.NewSource(1).Stream(0))
	ring := NewRing(g.N(), 32)
	d := NewDirectory(ring, g, p)
	// Lookup cost is twice the torus distance to the home node.
	for j := 0; j < 10; j++ {
		home := int(ring.Home(j))
		for _, u := range []int{0, 7, 100} {
			if got, want := d.LookupCost(u, j), 2*g.Dist(u, home); got != want {
				t.Fatalf("LookupCost(%d,%d) = %d, want %d", u, j, got, want)
			}
		}
		if d.LookupCost(int(ring.Home(j)), j) != 0 {
			t.Fatal("self-home lookup should be free")
		}
	}
	// Directory is authoritative.
	for j := 0; j < p.K(); j++ {
		reps := d.Replicas(j)
		if len(reps) != len(p.Replicas(j)) {
			t.Fatalf("directory replica list differs for %d", j)
		}
	}
	// Mean lookup cost ≈ 2 × mean torus distance (home nodes ~uniform).
	mean := d.MeanLookupCost()
	// Mean L1 distance on an odd L-torus is ~L/2; allow a wide band.
	l := float64(g.Side())
	if mean < 0.6*l || mean > 1.4*l {
		t.Fatalf("mean lookup cost %.2f outside plausible band around %.1f", mean, l)
	}
}

func TestDirectoryMismatchPanics(t *testing.T) {
	g := grid.New(4, grid.Torus)
	p := cache.Place(9, 1, dist.NewUniform(5), cache.WithReplacement,
		xrand.NewSource(0).Stream(0))
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched directory did not panic")
		}
	}()
	NewDirectory(NewRing(16, 8), g, p)
}

func BenchmarkLookup(b *testing.B) {
	r := NewRing(2025, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Lookup(FileKey(i % 500))
	}
}

func BenchmarkRingBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NewRing(2025, 64)
	}
}
