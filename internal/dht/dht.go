// Package dht implements the consistent-hashing content-location layer the
// paper's §VI sketches (citing Karger et al. and DHT-based replica
// location): every file has a "home" directory node, determined by hashing
// onto a ring of virtual nodes, where its replica list is registered. A
// requesting server contacts the home node to learn S_j ∩ B_r(u) before
// running Strategy II, so the control-plane cost of the paper's "polling"
// assumption can be quantified instead of assumed away.
package dht

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/stats"
)

// hash64 hashes a byte-string key to a ring position. Raw FNV-1a clusters
// badly on short sequential keys (arc-length CV ~6× theory), so the output
// is passed through a SplitMix64 finalizer for full avalanche.
func hash64(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	z := h.Sum64()
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// vpoint is one virtual node on the ring.
type vpoint struct {
	pos  uint64
	node int32
}

// Ring is a consistent-hashing ring over integer node IDs with virtual
// nodes. The zero value is unusable; build with NewRing.
type Ring struct {
	points []vpoint
	vnodes int
	nodes  map[int32]bool
}

// NewRing builds a ring over nodes 0..n-1 with the given number of virtual
// points per node (more vnodes = better key balance; 64-128 is typical).
func NewRing(n, vnodes int) *Ring {
	if n <= 0 || vnodes <= 0 {
		panic(fmt.Sprintf("dht: need n > 0 and vnodes > 0, got %d, %d", n, vnodes))
	}
	r := &Ring{vnodes: vnodes, nodes: make(map[int32]bool, n)}
	for u := 0; u < n; u++ {
		r.addPoints(int32(u))
		r.nodes[int32(u)] = true
	}
	r.sortPoints()
	return r
}

func (r *Ring) addPoints(u int32) {
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, vpoint{
			pos:  hash64(fmt.Sprintf("node-%d-v%d", u, v)),
			node: u,
		})
	}
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].node < r.points[j].node
	})
}

// Nodes returns the number of live nodes.
func (r *Ring) Nodes() int { return len(r.nodes) }

// Join adds node u (no-op if present).
func (r *Ring) Join(u int32) {
	if r.nodes[u] {
		return
	}
	r.nodes[u] = true
	r.addPoints(u)
	r.sortPoints()
}

// Leave removes node u (no-op if absent). It panics if u is the last node
// — an empty ring cannot answer lookups.
func (r *Ring) Leave(u int32) {
	if !r.nodes[u] {
		return
	}
	if len(r.nodes) == 1 {
		panic("dht: cannot remove the last node")
	}
	delete(r.nodes, u)
	w := 0
	for _, p := range r.points {
		if p.node != u {
			r.points[w] = p
			w++
		}
	}
	r.points = r.points[:w]
}

// Lookup returns the home node for a key: the owner of the first virtual
// point at or after the key's ring position (wrapping).
func (r *Ring) Lookup(key string) int32 {
	pos := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// FileKey is the canonical key for file j's directory entry.
func FileKey(j int) string { return fmt.Sprintf("file-%d", j) }

// Home returns file j's directory node.
func (r *Ring) Home(j int) int32 { return r.Lookup(FileKey(j)) }

// Successors returns the first count distinct nodes at or after the key's
// position — the standard replica set of consistent hashing. It panics if
// count exceeds the number of live nodes.
func (r *Ring) Successors(key string, count int) []int32 {
	if count > len(r.nodes) {
		panic(fmt.Sprintf("dht: %d successors requested of %d nodes", count, len(r.nodes)))
	}
	out := make([]int32, 0, count)
	seen := make(map[int32]bool, count)
	pos := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	for len(out) < count {
		if i == len(r.points) {
			i = 0
		}
		u := r.points[i].node
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
		i++
	}
	return out
}

// KeyBalance hashes sample keys and summarizes how evenly they land across
// nodes (per-node key counts; CV shrinks as vnodes grow).
func (r *Ring) KeyBalance(sampleKeys int) stats.Summary {
	counts := make(map[int32]int, len(r.nodes))
	for i := 0; i < sampleKeys; i++ {
		counts[r.Lookup(fmt.Sprintf("sample-%d", i))]++
	}
	var s stats.Summary
	for u := range r.nodes {
		s.Add(float64(counts[u]))
	}
	return s
}

// Directory is the DHT-backed replica directory for one placement: file j's
// replica list is registered at Home(j), and lookups pay torus round-trip
// control cost from the requester to the home node.
type Directory struct {
	ring *Ring
	g    *grid.Grid
	p    *cache.Placement
}

// NewDirectory registers placement p's replica lists over ring r.
func NewDirectory(ring *Ring, g *grid.Grid, p *cache.Placement) *Directory {
	if g.N() != p.N() || ring.Nodes() != g.N() {
		panic("dht: ring, grid and placement disagree on node count")
	}
	return &Directory{ring: ring, g: g, p: p}
}

// LookupCost returns the control-plane hop cost for origin u to learn file
// j's replica list: the torus round trip to the home node (0 when u is its
// own home).
func (d *Directory) LookupCost(u, j int) int {
	home := int(d.ring.Home(j))
	return 2 * d.g.Dist(u, home)
}

// Replicas returns file j's registered replica list (the directory is
// authoritative: identical to the placement's).
func (d *Directory) Replicas(j int) []int32 { return d.p.Replicas(j) }

// MeanLookupCost estimates the average control cost over files and
// uniformly random origins: Σ_j over sampled origins of LookupCost / N.
// With homes hashed uniformly this approaches twice the mean torus
// distance, i.e. Θ(√n) — the price of exact global directories, versus
// the Θ(r) local polling the paper assumes. Sampling every (origin, file)
// pair is O(nK); origins are strided for large n.
func (d *Directory) MeanLookupCost() float64 {
	n := d.g.N()
	stride := 1
	if n > 4096 {
		stride = n / 4096
	}
	var sum float64
	var count int
	for j := 0; j < d.p.K(); j++ {
		home := int(d.ring.Home(j))
		for u := 0; u < n; u += stride {
			sum += float64(2 * d.g.Dist(u, home))
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
