package grid

import "testing"

// FuzzDistBall cross-checks Dist, BallSizeAt and Ball membership on
// arbitrary lattices; it runs its seed corpus under plain `go test` and
// explores further under `go test -fuzz=FuzzDistBall ./internal/grid`.
func FuzzDistBall(f *testing.F) {
	f.Add(uint8(5), uint8(7), uint8(12), uint8(3), true)
	f.Add(uint8(1), uint8(0), uint8(0), uint8(0), false)
	f.Add(uint8(2), uint8(1), uint8(3), uint8(9), true)
	f.Add(uint8(16), uint8(200), uint8(90), uint8(30), false)
	f.Fuzz(func(t *testing.T, lRaw, uRaw, vRaw, rRaw uint8, torus bool) {
		l := int(lRaw)%16 + 1
		topo := Bounded
		if torus {
			topo = Torus
		}
		g := New(l, topo)
		u := int(uRaw) % g.N()
		v := int(vRaw) % g.N()
		r := int(rRaw) % (g.Diameter() + 2)

		d := g.Dist(u, v)
		if d != g.Dist(v, u) {
			t.Fatalf("asymmetric distance %d vs %d", d, g.Dist(v, u))
		}
		if d < 0 || d > g.Diameter() {
			t.Fatalf("distance %d outside [0, %d]", d, g.Diameter())
		}
		ball := g.Ball(u, r, nil)
		if len(ball) != g.BallSizeAt(u, r) {
			t.Fatalf("Ball has %d nodes, BallSizeAt says %d", len(ball), g.BallSizeAt(u, r))
		}
		inBall := d <= r
		found := false
		for _, w := range ball {
			if int(w) == v {
				found = true
			}
			if g.Dist(u, int(w)) > r {
				t.Fatalf("ball member %d at distance %d > %d", w, g.Dist(u, int(w)), r)
			}
		}
		if found != inBall {
			t.Fatalf("membership mismatch: d=%d r=%d found=%v", d, r, found)
		}
	})
}
