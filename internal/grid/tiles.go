package grid

// Tile geometry for the spatial replica index.
//
// The lattice is partitioned into t×t tiles (the last tile of a row or
// column is smaller when t does not divide L). A radius-r ball overlaps
// only the O((r/t+2)²) tiles around its origin, so any per-tile bucketed
// structure — the cache package's TileIndex — can enumerate S_j ∩ B_r(u)
// by walking that tile cover instead of the whole replica list or the
// whole ball. Cover computes the overlap set per query; CoverTable
// precomputes it as a template over the origin's offset inside its tile,
// which is all a torus query depends on.
//
// Each covered tile is classified full (every cell within distance r of
// the origin) or partial (some cells beyond r). Candidates in full tiles
// need no distance check; partial tiles are filtered cell by cell.

// Tiling partitions a lattice into square tiles and fixes the tile-major
// node enumeration the replica index buckets by. Immutable after New and
// safe for concurrent use; per-query scratch lives in CoverBuf.
type Tiling struct {
	g        *Grid
	t        int     // tile side length
	perSide  int     // tiles per axis = ceil(L/t)
	tileOf   []int32 // node id → tile id
	order    []int32 // node ids grouped by tile id, ascending inside each tile
	orderOff []int32 // per tile: start offset into order (length Tiles+1)
	txOf     []int16 // tile id → tile x index (memoized: Classify is hot)
	tyOf     []int16 // tile id → tile y index
}

// NewTiling partitions g into t×t tiles. It panics if t <= 0.
func (g *Grid) NewTiling(t int) *Tiling {
	if t <= 0 {
		panic("grid: tile size must be positive")
	}
	if t > g.l {
		t = g.l
	}
	tl := &Tiling{g: g, t: t, perSide: (g.l + t - 1) / t}
	tl.tileOf = make([]int32, g.n)
	for u := 0; u < g.n; u++ {
		tl.tileOf[u] = int32(int(g.yOf[u])/t*tl.perSide + int(g.xOf[u])/t)
	}
	// Counting sort by tile id keeps each tile's nodes ascending.
	counts := make([]int32, tl.Tiles()+1)
	for _, tid := range tl.tileOf {
		counts[tid+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	tl.order = make([]int32, g.n)
	for u := 0; u < g.n; u++ {
		tid := tl.tileOf[u]
		tl.order[counts[tid]] = int32(u)
		counts[tid]++
	}
	// counts now holds end offsets; rebuild the start-offset index.
	tl.orderOff = make([]int32, tl.Tiles()+1)
	copy(tl.orderOff[1:], counts[:tl.Tiles()])
	tl.txOf = make([]int16, tl.Tiles())
	tl.tyOf = make([]int16, tl.Tiles())
	for id := range tl.txOf {
		tl.txOf[id] = int16(id % tl.perSide)
		tl.tyOf[id] = int16(id / tl.perSide)
	}
	return tl
}

// Classify reports whether tile tid overlaps B_r(u) and whether it lies
// fully inside — the same classification Cover emits, computable for one
// tile in O(1). The spatial index uses it to intersect a sparse per-file
// tile directory with a ball by walking the directory instead of the
// cover.
func (tl *Tiling) Classify(tid int32, u, r int) (overlap, full bool) {
	ux, uy := tl.g.Coord(u)
	xlo, xhi := tl.axisRange(int32(tl.txOf[tid]))
	dxMin, dxMax := tl.axisMinMax(ux, xlo, xhi)
	if dxMin > r {
		return false, false
	}
	ylo, yhi := tl.axisRange(int32(tl.tyOf[tid]))
	dyMin, dyMax := tl.axisMinMax(uy, ylo, yhi)
	return dxMin+dyMin <= r, dxMax+dyMax <= r
}

// Grid returns the underlying lattice.
func (tl *Tiling) Grid() *Grid { return tl.g }

// TileSize returns the tile side length t.
func (tl *Tiling) TileSize() int { return tl.t }

// Tiles returns the number of tiles.
func (tl *Tiling) Tiles() int { return tl.perSide * tl.perSide }

// TileOf returns the tile containing node u.
func (tl *Tiling) TileOf(u int32) int32 { return tl.tileOf[u] }

// Order returns every node id grouped by tile (tile ids ascending, node
// ids ascending within a tile). The caller must not mutate it.
func (tl *Tiling) Order() []int32 { return tl.order }

// OrderOff returns the per-tile offsets into Order: tile t's nodes are
// Order()[OrderOff()[t]:OrderOff()[t+1]]. The caller must not mutate it.
func (tl *Tiling) OrderOff() []int32 { return tl.orderOff }

// CoverBuf holds one query's tile cover plus the per-axis scratch the
// computation reuses. IDs[i] is a covered tile; Full[i] reports whether
// every cell of that tile lies within the query radius of the origin.
type CoverBuf struct {
	IDs  []int32
	Full []bool
	xs   []int32
	ys   []int32
}

// axisTiles appends the distinct tile indices along one axis whose cell
// range intersects [c-r, c+r] (wrapped on the torus, clamped on the
// bounded grid). Indices are emitted walking the interval left to right;
// on a torus the walk wraps at most once, so duplicates can only pair a
// trailing index with a leading one and the linear dedup scan stays O(1)
// amortized over the tiny result.
func (tl *Tiling) axisTiles(c, r int, dst []int32) []int32 {
	l, t := tl.g.l, tl.t
	if tl.g.topo != Torus {
		lo, hi := c-r, c+r
		if lo < 0 {
			lo = 0
		}
		if hi >= l {
			hi = l - 1
		}
		for i := int32(lo / t); i <= int32(hi/t); i++ {
			dst = append(dst, i)
		}
		return dst
	}
	if 2*r+1 >= l {
		for i := int32(0); i < int32(tl.perSide); i++ {
			dst = append(dst, i)
		}
		return dst
	}
	base := len(dst)
	for x := c - r; x <= c+r; {
		wx := x % l
		if wx < 0 {
			wx += l
		}
		ti := int32(wx / t)
		dup := false
		for _, seen := range dst[base:] {
			if seen == ti {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, ti)
		}
		// Jump to the next tile boundary; the last tile of the axis is
		// clipped to the lattice edge when t does not divide L.
		x += min((int(ti)+1)*t, l) - wx
	}
	return dst
}

// axisRange returns the cell interval [lo, hi] of tile index i on one axis.
func (tl *Tiling) axisRange(i int32) (lo, hi int) {
	lo = int(i) * tl.t
	hi = lo + tl.t - 1
	if hi >= tl.g.l {
		hi = tl.g.l - 1
	}
	return lo, hi
}

// axisMinMax returns the smallest and largest axis distance from
// coordinate c to any cell of the interval [lo, hi]. Both bounds are
// exact: on the torus the distance peaks at the antipode(s) of c, so an
// interval containing one attains the axis diameter.
func (tl *Tiling) axisMinMax(c, lo, hi int) (dmin, dmax int) {
	g := tl.g
	dlo, dhi := g.axisDist(c, lo), g.axisDist(c, hi)
	if lo <= c && c <= hi {
		dmin = 0
	} else {
		dmin = min(dlo, dhi)
	}
	dmax = max(dlo, dhi)
	if g.topo == Torus {
		half := g.l / 2
		for _, ap := range [2]int{c + half, c + (g.l+1)/2} {
			ap %= g.l
			if lo <= ap && ap <= hi {
				dmax = half
				break
			}
		}
	}
	return dmin, dmax
}

// Cover fills b with the tiles overlapping B_r(u) and their full/partial
// classification. Every node within distance r of u belongs to exactly
// one emitted tile, and no tile is emitted twice.
func (tl *Tiling) Cover(u, r int, b *CoverBuf) {
	b.IDs, b.Full = b.IDs[:0], b.Full[:0]
	if r < 0 {
		return
	}
	ux, uy := tl.g.Coord(u)
	b.xs = tl.axisTiles(ux, r, b.xs[:0])
	b.ys = tl.axisTiles(uy, r, b.ys[:0])
	for _, ty := range b.ys {
		ylo, yhi := tl.axisRange(ty)
		dyMin, dyMax := tl.axisMinMax(uy, ylo, yhi)
		if dyMin > r {
			continue
		}
		for _, tx := range b.xs {
			xlo, xhi := tl.axisRange(tx)
			dxMin, dxMax := tl.axisMinMax(ux, xlo, xhi)
			if dxMin+dyMin > r {
				continue
			}
			b.IDs = append(b.IDs, ty*int32(tl.perSide)+tx)
			b.Full = append(b.Full, dxMax+dyMax <= r)
		}
	}
}

// CoverTable replays Cover for one fixed radius from precomputed
// per-origin-offset templates: on a torus with uniform tiles the cover
// depends only on the origin's offset inside its tile, so the tile
// deltas and full/partial flags are computed once per (tiling, radius)
// and replayed with one add and one wrap per tile.
type CoverTable struct {
	tl    *Tiling
	start []int32 // per offset (oy*t+ox), indexes into dtx/dty/full
	dtx   []int16
	dty   []int16
	full  []bool
	// Row-span form of the same template: one entry per covered tile
	// row, for consumers that walk rows instead of tiles.
	rowStart []int32 // per offset, indexes into rows
	rows     []CoverRow
	// Template-wide delta extremes, for the O(1) Bounds fast path.
	minD, maxD int
}

// CoverRow is one tile-row of a cover template, in deltas relative to
// the origin's tile: row Dty covers tile columns [C0, C1], of which
// [F0, F1] lie fully inside the ball (F0 > F1 when none does). Within a
// row the covered columns and the full columns are always contiguous —
// the tile overlap condition is dxMin ≤ r−dyMin and the full condition
// dxMax ≤ r−dyMax, and both dxMin and dxMax are V-shaped in the column.
type CoverRow struct {
	Dty, C0, C1, F0, F1 int16
}

// NewCoverTable precomputes the radius-r cover template. It returns nil
// when the template does not apply — bounded grids (boundary clipping is
// origin-dependent), tiles that do not divide the side evenly (absolute
// tiles are not translates of each other), and radii whose cover wraps
// onto itself — in which case callers fall back to Cover.
func (tl *Tiling) NewCoverTable(r int) *CoverTable {
	g, t := tl.g, tl.t
	if g.topo != Torus || r < 0 || g.l%t != 0 {
		return nil
	}
	// Unwrapped per-axis distances must equal the wrapped distances for
	// every cell of every covered tile; the farthest such cell sits at
	// most r+t-1 away on one axis, and the inequality must be strict —
	// at 2(r+t-1) = L (even L) the antipodal cell is reached from both
	// directions and the template would emit its tile twice.
	if 2*(r+t-1) >= g.l {
		return nil
	}
	ct := &CoverTable{tl: tl}
	span := r/t + 1
	for oy := 0; oy < t; oy++ {
		for ox := 0; ox < t; ox++ {
			ct.start = append(ct.start, int32(len(ct.dtx)))
			ct.rowStart = append(ct.rowStart, int32(len(ct.rows)))
			for dty := -span; dty <= span; dty++ {
				dyMin, dyMax := absRangeMinMax(dty*t-oy, dty*t-oy+t-1)
				if dyMin > r {
					continue
				}
				row := CoverRow{Dty: int16(dty), C0: 1, C1: 0, F0: 1, F1: 0}
				for dtx := -span; dtx <= span; dtx++ {
					dxMin, dxMax := absRangeMinMax(dtx*t-ox, dtx*t-ox+t-1)
					if dxMin+dyMin > r {
						continue
					}
					full := dxMax+dyMax <= r
					ct.dtx = append(ct.dtx, int16(dtx))
					ct.dty = append(ct.dty, int16(dty))
					ct.full = append(ct.full, full)
					if row.C0 > row.C1 {
						row.C0 = int16(dtx)
					}
					row.C1 = int16(dtx)
					if full {
						if row.F0 > row.F1 {
							row.F0 = int16(dtx)
						}
						row.F1 = int16(dtx)
					}
				}
				if row.C0 <= row.C1 {
					ct.rows = append(ct.rows, row)
				}
			}
		}
	}
	ct.start = append(ct.start, int32(len(ct.dtx)))
	ct.rowStart = append(ct.rowStart, int32(len(ct.rows)))
	for i := range ct.dtx {
		ct.minD = min(ct.minD, int(ct.dtx[i]), int(ct.dty[i]))
		ct.maxD = max(ct.maxD, int(ct.dtx[i]), int(ct.dty[i]))
	}
	return ct
}

// Bounds returns the smallest and largest tile id of the radius cover
// around u in O(1), with ok=false when the cover wraps around the torus
// (the ids then do not form one ascending run). The bounds bracket the
// cover: lo is the first covered tile, hi the last.
func (ct *CoverTable) Bounds(u int) (lo, hi int32, ok bool) {
	tl := ct.tl
	t, per := tl.t, tl.perSide
	ux, uy := int(tl.g.xOf[u]), int(tl.g.yOf[u])
	utx, uty := ux/t, uy/t
	if utx+ct.minD < 0 || utx+ct.maxD >= per || uty+ct.minD < 0 || uty+ct.maxD >= per {
		return 0, 0, false
	}
	off := (uy%t)*t + ux%t
	s, e := ct.start[off], ct.start[off+1]-1
	lo = int32((uty+int(ct.dty[s]))*per + utx + int(ct.dtx[s]))
	hi = int32((uty+int(ct.dty[e]))*per + utx + int(ct.dtx[e]))
	return lo, hi, true
}

// absRangeMinMax returns min/max of |v| over the integer interval [lo, hi].
func absRangeMinMax(lo, hi int) (dmin, dmax int) {
	alo, ahi := lo, hi
	if alo < 0 {
		alo = -alo
	}
	if ahi < 0 {
		ahi = -ahi
	}
	if lo <= 0 && 0 <= hi {
		dmin = 0
	} else {
		dmin = min(alo, ahi)
	}
	return dmin, max(alo, ahi)
}

// Template exposes the raw cover template for origin u — the parallel
// tile-delta/full arrays of u's intra-tile offset plus the coordinates
// needed to resolve absolute tile ids (tile = wrap(uty+dty)*per +
// wrap(utx+dtx)). The spatial index's hottest loop consumes the template
// in place instead of materializing a CoverBuf. Callers must not mutate
// the returned slices.
func (ct *CoverTable) Template(u int) (dtx, dty []int16, full []bool, utx, uty, per int) {
	tl := ct.tl
	t := tl.t
	ux, uy := int(tl.g.xOf[u]), int(tl.g.yOf[u])
	off := (uy%t)*t + ux%t
	lo, hi := ct.start[off], ct.start[off+1]
	return ct.dtx[lo:hi], ct.dty[lo:hi], ct.full[lo:hi], ux / t, uy / t, tl.perSide
}

// Rows exposes the row-span template for origin u, plus the coordinates
// needed to resolve absolute tiles (row = wrap(uty+Dty), columns
// wrap(utx+C0..C1)). Callers must not mutate the returned slice.
func (ct *CoverTable) Rows(u int) (rows []CoverRow, utx, uty, per int) {
	tl := ct.tl
	t := tl.t
	ux, uy := int(tl.g.xOf[u]), int(tl.g.yOf[u])
	off := (uy%t)*t + ux%t
	return ct.rows[ct.rowStart[off]:ct.rowStart[off+1]], ux / t, uy / t, tl.perSide
}

// Cover fills b with the radius-r cover around u — identical as a
// (tile, full) set to Tiling.Cover at the table's radius.
func (ct *CoverTable) Cover(u int, b *CoverBuf) {
	b.IDs, b.Full = b.IDs[:0], b.Full[:0]
	tl := ct.tl
	t, per := tl.t, tl.perSide
	ux, uy := int(tl.g.xOf[u]), int(tl.g.yOf[u])
	utx, uty := ux/t, uy/t
	off := (uy%t)*t + ux%t
	for i := ct.start[off]; i < ct.start[off+1]; i++ {
		tx := utx + int(ct.dtx[i])
		if tx >= per {
			tx -= per
		} else if tx < 0 {
			tx += per
		}
		ty := uty + int(ct.dty[i])
		if ty >= per {
			ty -= per
		} else if ty < 0 {
			ty += per
		}
		b.IDs = append(b.IDs, int32(ty*per+tx))
		b.Full = append(b.Full, ct.full[i])
	}
}
