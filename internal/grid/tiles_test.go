package grid

import (
	"math/rand/v2"
	"testing"
)

// bruteCover computes, for every tile, whether it intersects B_r(u) and
// whether it is fully inside, by scanning every node.
func bruteCover(g *Grid, tl *Tiling, u, r int) (overlap, full map[int32]bool) {
	overlap = map[int32]bool{}
	full = map[int32]bool{}
	inBall := make(map[int32]int) // tile → in-ball node count
	total := make(map[int32]int)  // tile → node count
	for v := 0; v < g.N(); v++ {
		tid := tl.TileOf(int32(v))
		total[tid]++
		if g.Dist(u, v) <= r {
			inBall[tid]++
		}
	}
	for tid, c := range inBall {
		if c > 0 {
			overlap[tid] = true
			full[tid] = c == total[tid]
		}
	}
	return overlap, full
}

// coverConfigs spans topologies, divisible and non-divisible tile sizes,
// and radii from tiny to wrapping.
func coverConfigs() []struct {
	l, t, r int
	topo    Topology
} {
	return []struct {
		l, t, r int
		topo    Topology
	}{
		{12, 3, 2, Torus},
		{12, 3, 4, Torus},
		{12, 4, 3, Torus},
		{12, 5, 4, Torus}, // t does not divide L
		{13, 4, 5, Torus}, // odd side
		{10, 3, 7, Torus}, // cover wraps onto itself
		{9, 2, 8, Torus},  // 2r+1 >= L: whole torus
		{12, 3, 2, Bounded},
		{12, 5, 6, Bounded},
		{7, 7, 3, Bounded}, // single tile
		{16, 1, 5, Torus},  // tile size 1
	}
}

func TestCoverMatchesBruteForce(t *testing.T) {
	for _, c := range coverConfigs() {
		g := New(c.l, c.topo)
		tl := g.NewTiling(c.t)
		var buf CoverBuf
		for _, u := range []int{0, 1, c.l - 1, g.N() / 2, g.N() - 1, g.N() / 3} {
			tl.Cover(u, c.r, &buf)
			wantOverlap, wantFull := bruteCover(g, tl, u, c.r)
			seen := map[int32]bool{}
			for i, tid := range buf.IDs {
				if seen[tid] {
					t.Fatalf("l=%d t=%d r=%d %v u=%d: tile %d emitted twice", c.l, c.t, c.r, c.topo, u, tid)
				}
				seen[tid] = true
				if buf.Full[i] && !wantFull[tid] {
					t.Errorf("l=%d t=%d r=%d %v u=%d: tile %d marked full but has out-of-ball cells", c.l, c.t, c.r, c.topo, u, tid)
				}
			}
			// Every overlapping tile must be covered (no in-ball node missed);
			// and every tile the brute force calls full must be marked full
			// (partial misclassification would only cost distance checks, but
			// the classification is exact, so pin it).
			for tid := range wantOverlap {
				if !seen[tid] {
					t.Fatalf("l=%d t=%d r=%d %v u=%d: overlapping tile %d not covered", c.l, c.t, c.r, c.topo, u, tid)
				}
			}
			for i, tid := range buf.IDs {
				if wantFull[tid] && !buf.Full[i] {
					t.Errorf("l=%d t=%d r=%d %v u=%d: tile %d is fully in-ball but marked partial", c.l, c.t, c.r, c.topo, u, tid)
				}
			}
		}
	}
}

// TestCoverTableMatchesCover: wherever the template applies it must
// reproduce the per-query cover exactly (as a tile → full map).
func TestCoverTableMatchesCover(t *testing.T) {
	applied := 0
	for _, c := range coverConfigs() {
		g := New(c.l, c.topo)
		tl := g.NewTiling(c.t)
		ct := tl.NewCoverTable(c.r)
		if ct == nil {
			continue
		}
		applied++
		var direct, templ CoverBuf
		for u := 0; u < g.N(); u++ {
			tl.Cover(u, c.r, &direct)
			ct.Cover(u, &templ)
			want := map[int32]bool{}
			for i, tid := range direct.IDs {
				want[tid] = direct.Full[i]
			}
			if len(templ.IDs) != len(direct.IDs) {
				t.Fatalf("l=%d t=%d r=%d u=%d: template %d tiles, direct %d", c.l, c.t, c.r, u, len(templ.IDs), len(direct.IDs))
			}
			for i, tid := range templ.IDs {
				f, ok := want[tid]
				if !ok || f != templ.Full[i] {
					t.Fatalf("l=%d t=%d r=%d u=%d: template tile %d full=%v, direct %v (present %v)", c.l, c.t, c.r, u, tid, templ.Full[i], f, ok)
				}
			}
		}
	}
	if applied == 0 {
		t.Fatal("no config exercised the cover template")
	}
	for _, bad := range []struct {
		l, t, r int
		topo    Topology
	}{
		{12, 3, 2, Bounded}, // bounded: clipping is origin-dependent
		{12, 5, 2, Torus},   // t does not divide L
		{10, 3, 7, Torus},   // 2(r+t-1) > L: wrapped distances diverge
		{10, 1, 5, Torus},   // 2(r+t-1) = L: the antipodal tile would be emitted twice
	} {
		if New(bad.l, bad.topo).NewTiling(bad.t).NewCoverTable(bad.r) != nil {
			t.Errorf("l=%d t=%d r=%d %v: template should not apply", bad.l, bad.t, bad.r, bad.topo)
		}
	}
}

// TestTilingOrder: Order is a permutation of all nodes, grouped by
// ascending tile with ascending node ids inside each group.
func TestTilingOrder(t *testing.T) {
	for _, c := range coverConfigs() {
		g := New(c.l, c.topo)
		tl := g.NewTiling(c.t)
		order := tl.Order()
		if len(order) != g.N() {
			t.Fatalf("order length %d, want %d", len(order), g.N())
		}
		seen := make([]bool, g.N())
		lastTile, lastNode := int32(-1), int32(-1)
		for _, u := range order {
			if seen[u] {
				t.Fatalf("node %d repeated in order", u)
			}
			seen[u] = true
			tid := tl.TileOf(u)
			switch {
			case tid < lastTile:
				t.Fatalf("tile order regressed: %d after %d", tid, lastTile)
			case tid > lastTile:
				lastTile, lastNode = tid, u
			case u < lastNode:
				t.Fatalf("node order regressed inside tile %d: %d after %d", tid, u, lastNode)
			default:
				lastNode = u
			}
		}
	}
}

// TestTileOfGeometry: TileOf matches coordinate arithmetic and every tile
// is a contiguous t×t (or clipped) block.
func TestTileOfGeometry(t *testing.T) {
	g := New(11, Torus)
	tl := g.NewTiling(4) // 11 = 4+4+3: clipped last tiles
	if tl.Tiles() != 9 {
		t.Fatalf("Tiles() = %d, want 9", tl.Tiles())
	}
	for u := 0; u < g.N(); u++ {
		x, y := g.Coord(u)
		want := int32((y/4)*3 + x/4)
		if tl.TileOf(int32(u)) != want {
			t.Fatalf("TileOf(%d) = %d, want %d", u, tl.TileOf(int32(u)), want)
		}
	}
}

// TestCoverRandomized cross-checks random (u, r) pairs on random lattices
// against the brute force, including exhaustive in-ball membership: the
// union of covered tiles must contain the whole ball, with full tiles
// containing no out-of-ball cell.
func TestCoverRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	var buf CoverBuf
	for it := 0; it < 200; it++ {
		l := 5 + rng.IntN(20)
		topo := Topology(rng.IntN(2))
		g := New(l, topo)
		ts := 1 + rng.IntN(l)
		tl := g.NewTiling(ts)
		u := rng.IntN(g.N())
		r := rng.IntN(l + 2)
		tl.Cover(u, r, &buf)
		covered := map[int32]bool{}
		full := map[int32]bool{}
		for i, tid := range buf.IDs {
			covered[tid] = true
			full[tid] = buf.Full[i]
		}
		for v := 0; v < g.N(); v++ {
			tid := tl.TileOf(int32(v))
			in := g.Dist(u, v) <= r
			if in && !covered[tid] {
				t.Fatalf("l=%d t=%d r=%d u=%d %v: in-ball node %d in uncovered tile %d", l, ts, r, u, topo, v, tid)
			}
			if !in && full[tid] {
				t.Fatalf("l=%d t=%d r=%d u=%d %v: out-of-ball node %d in full tile %d", l, ts, r, u, topo, v, tid)
			}
		}
	}
}
