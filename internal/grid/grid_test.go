package grid

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

// bruteDist recomputes the hop distance from first principles.
func bruteDist(g *Grid, u, v int) int {
	ux, uy := g.Coord(u)
	vx, vy := g.Coord(v)
	abs := func(a int) int {
		if a < 0 {
			return -a
		}
		return a
	}
	dx, dy := abs(ux-vx), abs(uy-vy)
	if g.Topology() == Torus {
		if w := g.Side() - dx; w < dx {
			dx = w
		}
		if w := g.Side() - dy; w < dy {
			dy = w
		}
	}
	return dx + dy
}

// bruteBall enumerates B_r(u) by scanning every node.
func bruteBall(g *Grid, u, r int) []int32 {
	var out []int32
	for v := 0; v < g.N(); v++ {
		if g.Dist(u, v) <= r {
			out = append(out, int32(v))
		}
	}
	return out
}

func sortedCopy(s []int32) []int32 {
	c := append([]int32(nil), s...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func equalSets(t *testing.T, got, want []int32, what string) {
	t.Helper()
	g, w := sortedCopy(got), sortedCopy(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d nodes, want %d", what, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: element %d: got %d want %d", what, i, g[i], w[i])
		}
	}
}

func TestTopologyString(t *testing.T) {
	if Torus.String() != "torus" || Bounded.String() != "grid" {
		t.Fatalf("unexpected names: %v %v", Torus, Bounded)
	}
	if Topology(9).String() != "Topology(9)" {
		t.Fatalf("unexpected fallback: %v", Topology(9))
	}
}

func TestParseTopology(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Topology
		ok   bool
	}{
		{"torus", Torus, true},
		{"grid", Bounded, true},
		{"bounded", Bounded, true},
		{"ring", 0, false},
	} {
		got, err := ParseTopology(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseTopology(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseTopology(%q) succeeded, want error", tc.in)
		}
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, Torus) did not panic")
		}
	}()
	New(0, Torus)
}

func TestNewSquare(t *testing.T) {
	for _, tc := range []struct{ n, side int }{
		{1, 1}, {2, 2}, {4, 2}, {5, 3}, {9, 3}, {100, 10}, {101, 11}, {2025, 45},
	} {
		g := NewSquare(tc.n, Torus)
		if g.Side() != tc.side {
			t.Errorf("NewSquare(%d): side = %d, want %d", tc.n, g.Side(), tc.side)
		}
		if g.N() != tc.side*tc.side {
			t.Errorf("NewSquare(%d): n = %d, want %d", tc.n, g.N(), tc.side*tc.side)
		}
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	g := New(7, Torus)
	for u := 0; u < g.N(); u++ {
		x, y := g.Coord(u)
		if g.ID(x, y) != u {
			t.Fatalf("round trip failed for %d -> (%d,%d)", u, x, y)
		}
	}
}

func TestWrap(t *testing.T) {
	g := New(5, Torus)
	for _, tc := range []struct{ x, y, wx, wy int }{
		{0, 0, 0, 0}, {5, 5, 0, 0}, {-1, -1, 4, 4}, {7, -6, 2, 4}, {-10, 12, 0, 2},
	} {
		x, y := g.Wrap(tc.x, tc.y)
		if x != tc.wx || y != tc.wy {
			t.Errorf("Wrap(%d,%d) = (%d,%d), want (%d,%d)", tc.x, tc.y, x, y, tc.wx, tc.wy)
		}
	}
}

func TestDistMatchesBrute(t *testing.T) {
	for _, topo := range []Topology{Torus, Bounded} {
		for _, l := range []int{1, 2, 3, 5, 8} {
			g := New(l, topo)
			for u := 0; u < g.N(); u++ {
				for v := 0; v < g.N(); v++ {
					if got, want := g.Dist(u, v), bruteDist(g, u, v); got != want {
						t.Fatalf("%v L=%d Dist(%d,%d)=%d want %d", topo, l, u, v, got, want)
					}
				}
			}
		}
	}
}

func TestDistMetricProperties(t *testing.T) {
	g := New(9, Torus)
	cfg := &quick.Config{MaxCount: 500}
	symmetric := func(a, b uint16) bool {
		u, v := int(a)%g.N(), int(b)%g.N()
		return g.Dist(u, v) == g.Dist(v, u)
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a uint16) bool {
		u := int(a) % g.N()
		return g.Dist(u, u) == 0
	}
	if err := quick.Check(identity, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c uint16) bool {
		u, v, w := int(a)%g.N(), int(b)%g.N(), int(c)%g.N()
		return g.Dist(u, w) <= g.Dist(u, v)+g.Dist(v, w)
	}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestDiameter(t *testing.T) {
	for _, tc := range []struct {
		l    int
		topo Topology
		want int
	}{
		{5, Torus, 4}, {6, Torus, 6}, {5, Bounded, 8}, {1, Torus, 0}, {1, Bounded, 0},
	} {
		g := New(tc.l, tc.topo)
		if got := g.Diameter(); got != tc.want {
			t.Errorf("L=%d %v Diameter = %d, want %d", tc.l, tc.topo, got, tc.want)
		}
		// Diameter must be attained and never exceeded.
		maxD := 0
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if d := g.Dist(u, v); d > maxD {
					maxD = d
				}
			}
		}
		if maxD != tc.want {
			t.Errorf("L=%d %v observed max dist %d, want %d", tc.l, tc.topo, maxD, tc.want)
		}
	}
}

func TestBallSizeMatchesBrute(t *testing.T) {
	for _, topo := range []Topology{Torus, Bounded} {
		for _, l := range []int{1, 2, 3, 4, 5, 7, 10} {
			g := New(l, topo)
			for u := 0; u < g.N(); u++ {
				for r := -1; r <= g.Diameter()+2; r++ {
					want := 0
					for v := 0; v < g.N(); v++ {
						if r >= 0 && g.Dist(u, v) <= r {
							want++
						}
					}
					if got := g.BallSizeAt(u, r); got != want {
						t.Fatalf("%v L=%d BallSizeAt(%d,%d)=%d want %d", topo, l, u, r, got, want)
					}
					if topo == Torus {
						if got := g.BallSize(r); got != want {
							t.Fatalf("torus L=%d BallSize(%d)=%d want %d (u=%d)", l, r, got, want, u)
						}
					}
				}
			}
		}
	}
}

func TestBallSizeInteriorFormula(t *testing.T) {
	// For r below the wrap threshold, |B_r| = 2r(r+1)+1 on the torus.
	g := New(101, Torus)
	for r := 0; r <= 50; r++ {
		want := 2*r*(r+1) + 1
		if got := g.BallSize(r); got != want {
			t.Fatalf("BallSize(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestBallMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, topo := range []Topology{Torus, Bounded} {
		for _, l := range []int{1, 2, 3, 5, 9} {
			g := New(l, topo)
			for trial := 0; trial < 30; trial++ {
				u := rng.IntN(g.N())
				r := rng.IntN(g.Diameter() + 2)
				got := g.Ball(u, r, nil)
				equalSets(t, got, bruteBall(g, u, r), "Ball")
				// No duplicates.
				seen := map[int32]bool{}
				for _, v := range got {
					if seen[v] {
						t.Fatalf("%v L=%d Ball(%d,%d) duplicate node %d", topo, l, u, r, v)
					}
					seen[v] = true
				}
			}
		}
	}
}

func TestBallReusesDst(t *testing.T) {
	g := New(10, Torus)
	buf := make([]int32, 0, 64)
	b1 := g.Ball(3, 2, buf)
	if len(b1) != g.BallSize(2) {
		t.Fatalf("ball size %d, want %d", len(b1), g.BallSize(2))
	}
	if cap(b1) != cap(buf) {
		t.Fatalf("Ball reallocated despite sufficient capacity")
	}
}

func TestRingMatchesBrute(t *testing.T) {
	for _, topo := range []Topology{Torus, Bounded} {
		for _, l := range []int{1, 2, 3, 5, 8} {
			g := New(l, topo)
			for u := 0; u < g.N(); u += 3 {
				for r := 0; r <= g.Diameter()+1; r++ {
					var want []int32
					for v := 0; v < g.N(); v++ {
						if g.Dist(u, v) == r {
							want = append(want, int32(v))
						}
					}
					got := g.Ring(u, r, nil)
					equalSets(t, got, want, "Ring")
				}
			}
		}
	}
}

func TestRingZeroIsSelf(t *testing.T) {
	g := New(6, Torus)
	r := g.Ring(17, 0, nil)
	if len(r) != 1 || r[0] != 17 {
		t.Fatalf("Ring(u, 0) = %v, want [17]", r)
	}
}

func TestRingsPartitionBall(t *testing.T) {
	g := New(9, Torus)
	u := 40
	for r := 0; r <= g.Diameter(); r++ {
		total := 0
		for k := 0; k <= r; k++ {
			total += len(g.Ring(u, k, nil))
		}
		if total != g.BallSize(r) {
			t.Fatalf("rings 0..%d sum to %d, ball size %d", r, total, g.BallSize(r))
		}
	}
}

func TestNeighbors(t *testing.T) {
	g := New(5, Torus)
	for u := 0; u < g.N(); u++ {
		nb := g.Neighbors(u, nil)
		if len(nb) != 4 {
			t.Fatalf("torus node %d has %d neighbors, want 4", u, len(nb))
		}
		for _, v := range nb {
			if g.Dist(u, int(v)) != 1 {
				t.Fatalf("neighbor %d of %d at distance %d", v, u, g.Dist(u, int(v)))
			}
		}
	}
	gb := New(3, Bounded)
	// Corner has 2, edge 3, center 4.
	if got := len(gb.Neighbors(0, nil)); got != 2 {
		t.Errorf("bounded corner: %d neighbors, want 2", got)
	}
	if got := len(gb.Neighbors(1, nil)); got != 3 {
		t.Errorf("bounded edge: %d neighbors, want 3", got)
	}
	if got := len(gb.Neighbors(4, nil)); got != 4 {
		t.Errorf("bounded center: %d neighbors, want 4", got)
	}
}

func TestNeighborsDegenerate(t *testing.T) {
	g := New(1, Torus)
	if nb := g.Neighbors(0, nil); len(nb) != 0 {
		t.Fatalf("1x1 torus should have no self neighbors, got %v", nb)
	}
}

func TestRadiusForBallSize(t *testing.T) {
	g := New(45, Torus) // n = 2025
	for _, target := range []int{0, 1, 2, 5, 13, 100, 1000, 2025} {
		r := g.RadiusForBallSize(target)
		if g.BallSize(r) < target {
			t.Fatalf("RadiusForBallSize(%d) = %d but BallSize = %d", target, r, g.BallSize(r))
		}
		if r > 0 && g.BallSize(r-1) >= target {
			t.Fatalf("RadiusForBallSize(%d) = %d not minimal", target, r)
		}
	}
}

func TestVertexTransitivityOfTorusBalls(t *testing.T) {
	// Property: on the torus |B_r(u)| is the same for every u.
	g := New(8, Torus)
	check := func(a uint16, b uint8) bool {
		u := int(a) % g.N()
		r := int(b) % (g.Diameter() + 1)
		return g.BallSizeAt(u, r) == g.BallSize(r)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDist(b *testing.B) {
	g := New(347, Torus)
	u, v := 12345, 98765
	for i := 0; i < b.N; i++ {
		_ = g.Dist(u, v)
	}
}

func BenchmarkBallR10(b *testing.B) {
	g := New(347, Torus)
	buf := make([]int32, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = g.Ball(60000, 10, buf[:0])
	}
}
