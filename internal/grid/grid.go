// Package grid implements the 2-D lattice topologies the paper's cache
// network lives on: the √n×√n torus (the default analysis model, Remark 1)
// and the bounded grid (the physical deployment the torus approximates).
//
// Nodes are identified by a dense integer index in [0, n) with row-major
// layout: node id = y*L + x. All distances are shortest-path hop counts,
// which on these 4-regular lattices equal the (wrapped) L1 distance.
package grid

import "fmt"

// Topology selects between the torus and the bounded grid.
type Topology int

const (
	// Torus wraps both dimensions; every node has exactly 4 neighbors and
	// the graph is vertex-transitive (no boundary effects).
	Torus Topology = iota
	// Bounded is the plain √n×√n grid with boundary.
	Bounded
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Torus:
		return "torus"
	case Bounded:
		return "grid"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// ParseTopology converts a CLI-style name into a Topology.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "torus":
		return Torus, nil
	case "grid", "bounded":
		return Bounded, nil
	}
	return 0, fmt.Errorf("grid: unknown topology %q (want torus or grid)", s)
}

// Grid is an immutable L×L lattice. The zero value is not usable; use New.
type Grid struct {
	l    int
	n    int
	topo Topology
	// xOf/yOf memoize Coord: distance math is the innermost loop of every
	// strategy, and two table loads beat two integer divisions there.
	xOf, yOf []int32
	// xy packs both coordinates (x<<16 | y) so Dist touches one cache
	// line per node instead of two — the lookups are random-access over
	// Θ(n) tables, so at wide-world sizes the miss count is the cost.
	xy []int32
}

// New returns an L×L lattice with the given topology.
// It panics if l <= 0; the paper always uses l = √n ≥ 1.
func New(l int, topo Topology) *Grid {
	if l <= 0 {
		panic(fmt.Sprintf("grid: side length must be positive, got %d", l))
	}
	g := &Grid{l: l, n: l * l, topo: topo}
	g.xOf = make([]int32, g.n)
	g.yOf = make([]int32, g.n)
	if l < 1<<15 { // both packed halves must stay non-negative
		g.xy = make([]int32, g.n)
	}
	for u := 0; u < g.n; u++ {
		x, y := int32(u%l), int32(u/l)
		g.xOf[u] = x
		g.yOf[u] = y
		if g.xy != nil {
			g.xy[u] = x<<16 | y
		}
	}
	return g
}

// NewSquare returns the smallest square lattice with at least n nodes.
// The paper indexes experiments by the number of servers n; perfect squares
// are used throughout, and this helper rounds up for convenience.
func NewSquare(n int, topo Topology) *Grid {
	l := 1
	for l*l < n {
		l++
	}
	return New(l, topo)
}

// Side returns the lattice side length L.
func (g *Grid) Side() int { return g.l }

// N returns the number of nodes n = L².
func (g *Grid) N() int { return g.n }

// Topology reports whether the lattice wraps.
func (g *Grid) Topology() Topology { return g.topo }

// Coord returns the (x, y) coordinates of node u.
func (g *Grid) Coord(u int) (x, y int) { return int(g.xOf[u]), int(g.yOf[u]) }

// ID returns the node index for coordinates (x, y), which must be in range.
func (g *Grid) ID(x, y int) int { return y*g.l + x }

// Wrap maps arbitrary integer coordinates onto the torus (or clamps nothing
// on the bounded grid, where the caller must stay in range).
func (g *Grid) Wrap(x, y int) (int, int) {
	x %= g.l
	if x < 0 {
		x += g.l
	}
	y %= g.l
	if y < 0 {
		y += g.l
	}
	return x, y
}

// axisDist is the 1-D distance along one axis, wrapped iff torus.
func (g *Grid) axisDist(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if g.topo == Torus && g.l-d < d {
		d = g.l - d
	}
	return d
}

// Dist returns the shortest-path hop distance between nodes u and v.
func (g *Grid) Dist(u, v int) int {
	if g.xy != nil {
		pu, pv := g.xy[u], g.xy[v]
		return g.axisDist(int(pu>>16), int(pv>>16)) + g.axisDist(int(pu&0xffff), int(pv&0xffff))
	}
	ux, uy := g.Coord(u)
	vx, vy := g.Coord(v)
	return g.axisDist(ux, vx) + g.axisDist(uy, vy)
}

// Diameter returns the maximum distance between any two nodes.
func (g *Grid) Diameter() int {
	if g.topo == Torus {
		return 2 * (g.l / 2)
	}
	return 2 * (g.l - 1)
}

// BallSize returns |B_r(u)| on the torus: the number of nodes at distance
// at most r from any node. On the torus the count is node-independent;
// on the bounded grid this returns the unclipped interior value and callers
// who need exact boundary counts should use BallSizeAt.
func (g *Grid) BallSize(r int) int {
	if r < 0 {
		return 0
	}
	if g.topo == Torus {
		if r >= g.Diameter() {
			return g.n
		}
		// Count lattice points with wrapped L1 distance ≤ r by summing
		// per-row widths; exact for all r < diameter.
		count := 0
		half := g.l / 2
		for dy := -half; dy < g.l-half; dy++ {
			ay := dy
			if ay < 0 {
				ay = -ay
			}
			if wrapped := g.l - ay; g.topo == Torus && wrapped < ay {
				ay = wrapped
			}
			if ay > r {
				continue
			}
			rem := r - ay
			// x offsets range over one period; width is min(2*rem+1, L).
			w := 2*rem + 1
			if w > g.l {
				w = g.l
			}
			count += w
		}
		return count
	}
	return g.BallSizeAt(0, r)
}

// BallSizeAt returns |B_r(u)| exactly, honoring boundaries on bounded grids.
func (g *Grid) BallSizeAt(u, r int) int {
	if r < 0 {
		return 0
	}
	if g.topo == Torus {
		return g.BallSize(r)
	}
	if r >= g.Diameter() {
		return g.n
	}
	ux, uy := g.Coord(u)
	count := 0
	for dy := -r; dy <= r; dy++ {
		y := uy + dy
		if y < 0 || y >= g.l {
			continue
		}
		ady := dy
		if ady < 0 {
			ady = -ady
		}
		rem := r - ady
		lo, hi := ux-rem, ux+rem
		if lo < 0 {
			lo = 0
		}
		if hi >= g.l {
			hi = g.l - 1
		}
		if hi >= lo {
			count += hi - lo + 1
		}
	}
	return count
}

// Ball appends every node within distance r of u to dst and returns it.
// The order is deterministic (rows scanned top to bottom). Pass dst = nil
// or a recycled slice to control allocation.
func (g *Grid) Ball(u, r int, dst []int32) []int32 {
	if r < 0 {
		return dst
	}
	if r >= g.Diameter() {
		for v := 0; v < g.n; v++ {
			dst = append(dst, int32(v))
		}
		return dst
	}
	ux, uy := g.Coord(u)
	seenRow := make(map[int]bool, 2*r+2)
	for dy := -r; dy <= r; dy++ {
		y := uy + dy
		if g.topo == Torus {
			y = ((y % g.l) + g.l) % g.l
		} else if y < 0 || y >= g.l {
			continue
		}
		if g.topo == Torus {
			if seenRow[y] {
				continue // small torus: rows alias when 2r+1 ≥ L
			}
			seenRow[y] = true
		}
		ady := dy
		if ady < 0 {
			ady = -ady
		}
		rem := r - ady
		if g.topo == Torus && ady > g.l/2 {
			// With wrapping the true vertical distance may be smaller;
			// recompute via axisDist for correctness on small tori.
			ady = g.axisDist(uy, y)
			if ady > r {
				continue
			}
			rem = r - ady
		}
		if g.topo == Torus && 2*rem+1 >= g.l {
			base := y * g.l
			for x := 0; x < g.l; x++ {
				dst = append(dst, int32(base+x))
			}
			continue
		}
		for dx := -rem; dx <= rem; dx++ {
			x := ux + dx
			if g.topo == Torus {
				x = ((x % g.l) + g.l) % g.l
			} else if x < 0 || x >= g.l {
				continue
			}
			dst = append(dst, int32(y*g.l+x))
		}
	}
	return dst
}

// Ring appends every node at distance exactly r from u to dst and returns
// it. Ring(u, 0) yields u itself.
func (g *Grid) Ring(u, r int, dst []int32) []int32 {
	if r < 0 {
		return dst
	}
	if r == 0 {
		return append(dst, int32(u))
	}
	ux, uy := g.Coord(u)
	// Walk the diamond |dx|+|dy| = r. On small tori the diamond wraps onto
	// itself: nodes can repeat or land closer than r, so dedupe and
	// re-verify the distance in that regime only.
	var seen map[int32]bool
	if g.topo == Torus && 2*r >= g.l {
		seen = make(map[int32]bool, 4*r)
	}
	emit := func(dx, dy int) {
		x, y := ux+dx, uy+dy
		if g.topo == Torus {
			x, y = g.Wrap(x, y)
		} else if x < 0 || x >= g.l || y < 0 || y >= g.l {
			return
		}
		id := int32(g.ID(x, y))
		if seen != nil {
			if g.Dist(u, int(id)) != r || seen[id] {
				return
			}
			seen[id] = true
		}
		dst = append(dst, id)
	}
	for dx := -r; dx <= r; dx++ {
		adx := dx
		if adx < 0 {
			adx = -adx
		}
		dy := r - adx
		emit(dx, dy)
		if dy != 0 {
			emit(dx, -dy)
		}
	}
	return dst
}

// Neighbors appends the direct lattice neighbors of u (degree 4 on the
// torus; 2–4 on the bounded grid) to dst and returns it.
func (g *Grid) Neighbors(u int, dst []int32) []int32 {
	ux, uy := g.Coord(u)
	type off struct{ dx, dy int }
	for _, o := range [...]off{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		x, y := ux+o.dx, uy+o.dy
		if g.topo == Torus {
			x, y = g.Wrap(x, y)
		} else if x < 0 || x >= g.l || y < 0 || y >= g.l {
			continue
		}
		v := g.ID(x, y)
		if v != u { // L==1 degenerate torus
			dst = append(dst, int32(v))
		}
	}
	return dst
}

// RadiusForBallSize returns the smallest r with |B_r| ≥ target on the
// torus. Used to translate the paper's r = n^β into a concrete hop radius.
func (g *Grid) RadiusForBallSize(target int) int {
	if target <= 1 {
		return 0
	}
	lo, hi := 0, g.Diameter()
	for lo < hi {
		mid := (lo + hi) / 2
		if g.BallSize(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
