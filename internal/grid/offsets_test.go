package grid

import "testing"

// TestBallTableMatchesBall pins the contract the compiled simulation layer
// relies on: the template replays Ball's output byte for byte, for every
// origin, on every torus size where it claims to apply.
func TestBallTableMatchesBall(t *testing.T) {
	for _, l := range []int{3, 4, 5, 7, 8, 12, 15} {
		g := New(l, Torus)
		for r := 0; r <= l; r++ {
			bt := g.NewBallTable(r)
			if 2*r+1 >= l || r >= g.Diameter() {
				if bt != nil {
					t.Fatalf("L=%d r=%d: table should not apply", l, r)
				}
				continue
			}
			if bt == nil {
				t.Fatalf("L=%d r=%d: expected a table", l, r)
			}
			if bt.Size() != g.BallSize(r) {
				t.Fatalf("L=%d r=%d: size %d want %d", l, r, bt.Size(), g.BallSize(r))
			}
			for u := 0; u < g.N(); u++ {
				want := g.Ball(u, r, nil)
				got := bt.Append(u, nil)
				if len(want) != len(got) {
					t.Fatalf("L=%d r=%d u=%d: len %d want %d", l, r, u, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("L=%d r=%d u=%d: pos %d got %d want %d", l, r, u, i, got[i], want[i])
					}
				}
			}
		}
	}
	if New(5, Bounded).NewBallTable(2) != nil {
		t.Fatal("bounded grid must not produce a ball table")
	}
}

// TestRingTableMatchesRing pins the same replay contract for rings,
// including the fallback above MaxR.
func TestRingTableMatchesRing(t *testing.T) {
	for _, l := range []int{3, 4, 5, 7, 10, 13} {
		g := New(l, Torus)
		rt := g.NewRingTable()
		if rt == nil {
			t.Fatalf("L=%d: expected a ring table", l)
		}
		for d := 0; d <= g.Diameter()+1; d++ {
			for u := 0; u < g.N(); u++ {
				want := g.Ring(u, d, nil)
				got := rt.Ring(u, d, nil)
				if len(want) != len(got) {
					t.Fatalf("L=%d d=%d u=%d: len %d want %d", l, d, u, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("L=%d d=%d u=%d: pos %d got %d want %d", l, d, u, i, got[i], want[i])
					}
				}
			}
		}
	}
	if New(5, Bounded).NewRingTable() != nil {
		t.Fatal("bounded grid must not produce a ring table")
	}
}
