package grid

// Precomputed enumeration templates for balls and rings on the torus.
//
// Ball and Ring re-derive the diamond |dx|+|dy| ≤ r on every call. On the
// torus the enumeration is translation-invariant whenever the diamond does
// not wrap onto itself, so the relative offsets can be computed once per
// (grid, radius) and replayed for any origin with two adds and two
// conditional wraps per node. The templates reproduce Ball's and Ring's
// output order exactly (verified by property tests), so compiled and
// direct enumeration are interchangeable bit for bit in any sampling that
// indexes into the result.

// BallTable replays B_r(·) for one fixed radius from precomputed offsets.
type BallTable struct {
	g      *Grid
	r      int
	dx, dy []int16
}

// NewBallTable precomputes the ball template for radius r. It returns nil
// when the template does not apply — bounded grids (boundary clipping is
// origin-dependent) and tori whose diamond wraps or fills whole rows
// (2r+1 ≥ L, where Ball switches to absolute-order row emission) — in
// which case callers fall back to Ball.
func (g *Grid) NewBallTable(r int) *BallTable {
	if g.topo != Torus || r < 0 || 2*r+1 >= g.l || r >= g.Diameter() {
		return nil
	}
	t := &BallTable{g: g, r: r}
	for dy := -r; dy <= r; dy++ {
		ady := dy
		if ady < 0 {
			ady = -ady
		}
		rem := r - ady
		for dx := -rem; dx <= rem; dx++ {
			t.dx = append(t.dx, int16(dx))
			t.dy = append(t.dy, int16(dy))
		}
	}
	return t
}

// Radius returns the radius the table was built for.
func (t *BallTable) Radius() int { return t.r }

// Size returns |B_r|.
func (t *BallTable) Size() int { return len(t.dx) }

// Node returns the i-th node of B_r(u) (Ball enumeration order) in O(1),
// without materializing the ball. i must lie in [0, Size()).
func (t *BallTable) Node(u, i int) int32 {
	return t.NodeAt(int(t.g.xOf[u]), int(t.g.yOf[u]), i)
}

// NodeAt is Node with the origin's coordinates supplied by the caller —
// no coordinate-table loads, which matters in rejection loops that probe
// the same origin many times.
func (t *BallTable) NodeAt(ux, uy, i int) int32 {
	l := t.g.l
	x := ux + int(t.dx[i])
	if x >= l {
		x -= l
	} else if x < 0 {
		x += l
	}
	y := uy + int(t.dy[i])
	if y >= l {
		y -= l
	} else if y < 0 {
		y += l
	}
	return int32(y*l + x)
}

// Append appends every node within distance r of u to dst, in the same
// order as Grid.Ball(u, r, dst).
func (t *BallTable) Append(u int, dst []int32) []int32 {
	l := t.g.l
	ux, uy := u%l, u/l
	for i := range t.dx {
		x := ux + int(t.dx[i])
		if x >= l {
			x -= l
		} else if x < 0 {
			x += l
		}
		y := uy + int(t.dy[i])
		if y >= l {
			y -= l
		} else if y < 0 {
			y += l
		}
		dst = append(dst, int32(y*l+x))
	}
	return dst
}

// RingTable replays rings of every radius 0..MaxR from one precomputed
// offset arena (total size Θ(n)), falling back to Ring beyond MaxR.
type RingTable struct {
	g      *Grid
	start  []int32 // start[d] indexes the first offset of ring d
	dx, dy []int16
	maxR   int
}

// NewRingTable precomputes ring templates for the torus. Rings wrap onto
// themselves once 2d ≥ L, so templates cover d ≤ (L-1)/2; Ring handles
// larger radii (the nearest-replica search rarely reaches them). It
// returns nil on bounded grids.
func (g *Grid) NewRingTable() *RingTable {
	if g.topo != Torus {
		return nil
	}
	maxR := (g.l - 1) / 2
	if d := g.Diameter(); maxR > d {
		maxR = d
	}
	t := &RingTable{g: g, maxR: maxR}
	for d := 0; d <= maxR; d++ {
		t.start = append(t.start, int32(len(t.dx)))
		if d == 0 {
			t.dx = append(t.dx, 0)
			t.dy = append(t.dy, 0)
			continue
		}
		// Same order as Ring: dx = -d..d, emit (dx, d-|dx|) then its
		// mirror (dx, |dx|-d) when non-degenerate.
		for dx := -d; dx <= d; dx++ {
			adx := dx
			if adx < 0 {
				adx = -adx
			}
			dy := d - adx
			t.dx = append(t.dx, int16(dx))
			t.dy = append(t.dy, int16(dy))
			if dy != 0 {
				t.dx = append(t.dx, int16(dx))
				t.dy = append(t.dy, int16(-dy))
			}
		}
	}
	t.start = append(t.start, int32(len(t.dx)))
	return t
}

// MaxR returns the largest radius served from the template arena.
func (t *RingTable) MaxR() int { return t.maxR }

// Ring appends every node at distance exactly d from u to dst, in the same
// order as Grid.Ring(u, d, dst).
func (t *RingTable) Ring(u, d int, dst []int32) []int32 {
	if d < 0 {
		return dst
	}
	if d > t.maxR {
		return t.g.Ring(u, d, dst)
	}
	l := t.g.l
	ux, uy := u%l, u/l
	for i := t.start[d]; i < t.start[d+1]; i++ {
		x := ux + int(t.dx[i])
		if x >= l {
			x -= l
		} else if x < 0 {
			x += l
		}
		y := uy + int(t.dy[i])
		if y >= l {
			y -= l
		} else if y < 0 {
			y += l
		}
		dst = append(dst, int32(y*l+x))
	}
	return dst
}
