package routing

import (
	"math/rand/v2"
	"testing"

	"repro/internal/grid"
)

// TestAppendLinksMatchesRoute: the link id sequence must be exactly the
// links Route increments — cross-checked by replaying AppendLinks into a
// counter map and comparing against the LinkLoads delta.
func TestAppendLinksMatchesRoute(t *testing.T) {
	for _, topo := range []grid.Topology{grid.Torus, grid.Bounded} {
		g := grid.New(9, topo)
		rng := rand.New(rand.NewPCG(3, 4))
		var buf []uint64
		for it := 0; it < 300; it++ {
			src, dst := rng.IntN(g.N()), rng.IntN(g.N())
			l := NewLinkLoads(g)
			hops := l.Route(src, dst)
			buf = AppendLinks(g, src, dst, buf[:0])
			if len(buf) != hops || hops != g.Dist(src, dst) {
				t.Fatalf("%v %d->%d: %d link ids, %d hops, dist %d", topo, src, dst, len(buf), hops, g.Dist(src, dst))
			}
			counts := map[uint64]int64{}
			for _, id := range buf {
				counts[id]++
			}
			for u := 0; u < g.N(); u++ {
				for d := East; d < numDirs; d++ {
					if got := counts[LinkID(u, d)]; got != l.Load(u, d) {
						t.Fatalf("%v %d->%d link (%d,%v): AppendLinks %d vs Route %d", topo, src, dst, u, d, got, l.Load(u, d))
					}
				}
			}
		}
	}
}
