package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/xrand"
)

func TestDirString(t *testing.T) {
	want := map[Dir]string{East: "east", West: "west", North: "north", South: "south"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Dir %d = %q, want %q", d, d.String(), s)
		}
	}
	if Dir(9).String() != "Dir(9)" {
		t.Fatal("fallback Dir string wrong")
	}
}

func TestRouteLengthEqualsDist(t *testing.T) {
	for _, topo := range []grid.Topology{grid.Torus, grid.Bounded} {
		g := grid.New(9, topo)
		l := NewLinkLoads(g)
		for u := 0; u < g.N(); u += 2 {
			for v := 0; v < g.N(); v += 3 {
				if got, want := l.Route(u, v), g.Dist(u, v); got != want {
					t.Fatalf("%v Route(%d,%d) = %d hops, Dist = %d", topo, u, v, got, want)
				}
			}
		}
	}
}

func TestPathIsValidWalk(t *testing.T) {
	prop := func(seed uint64, lRaw uint8) bool {
		l := int(lRaw)%10 + 2
		g := grid.New(l, grid.Torus)
		r := xrand.NewSource(seed).Stream(0)
		src, dst := r.IntN(g.N()), r.IntN(g.N())
		path := Path(g, src, dst)
		if path[0] != int32(src) || path[len(path)-1] != int32(dst) {
			return false
		}
		if len(path)-1 != g.Dist(src, dst) {
			return false
		}
		for i := 1; i < len(path); i++ {
			if g.Dist(int(path[i-1]), int(path[i])) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteTotalsMatchPathLengths(t *testing.T) {
	g := grid.New(7, grid.Torus)
	l := NewLinkLoads(g)
	r := xrand.NewSource(4).Stream(0)
	var want int64
	for i := 0; i < 500; i++ {
		u, v := r.IntN(g.N()), r.IntN(g.N())
		want += int64(g.Dist(u, v))
		l.Route(u, v)
	}
	if l.Total() != want {
		t.Fatalf("total link crossings %d, want %d", l.Total(), want)
	}
}

func TestLinkAccountingPerDirection(t *testing.T) {
	g := grid.New(5, grid.Torus)
	l := NewLinkLoads(g)
	// One hop east from node 0 (=(0,0)) to node 1 (=(1,0)).
	if hops := l.Route(0, 1); hops != 1 {
		t.Fatalf("adjacent route %d hops", hops)
	}
	if l.Load(0, East) != 1 {
		t.Fatalf("east link of 0 has load %d", l.Load(0, East))
	}
	if l.Total() != 1 || l.Max() != 1 {
		t.Fatalf("totals wrong: %d %d", l.Total(), l.Max())
	}
	// Wrapped west: 0 -> 4 is 1 hop west on a 5-torus.
	l2 := NewLinkLoads(g)
	l2.Route(0, 4)
	if l2.Load(0, West) != 1 {
		t.Fatalf("wrapped west link load %d", l2.Load(0, West))
	}
	// Vertical: 0 -> (0,1)=5 goes south.
	l3 := NewLinkLoads(g)
	l3.Route(0, 5)
	if l3.Load(0, South) != 1 {
		t.Fatalf("south link load %d", l3.Load(0, South))
	}
	l4 := NewLinkLoads(g)
	l4.Route(5, 0)
	if l4.Load(5, North) != 1 {
		t.Fatalf("north link load %d", l4.Load(5, North))
	}
}

func TestSelfRouteIsFree(t *testing.T) {
	g := grid.New(6, grid.Torus)
	l := NewLinkLoads(g)
	if l.Route(7, 7) != 0 || l.Total() != 0 {
		t.Fatal("self route should touch no links")
	}
	p := Path(g, 7, 7)
	if len(p) != 1 || p[0] != 7 {
		t.Fatalf("self path %v", p)
	}
}

func TestCongestionFactor(t *testing.T) {
	g := grid.New(4, grid.Torus)
	l := NewLinkLoads(g)
	if l.CongestionFactor() != 0 {
		t.Fatal("idle network should report 0")
	}
	// Hammer one link.
	for i := 0; i < 10; i++ {
		l.Route(0, 1)
	}
	if cf := l.CongestionFactor(); cf <= 1 {
		t.Fatalf("hot link congestion factor %v, want > 1", cf)
	}
	s := l.Summary()
	if s.N() != g.N()*4 {
		t.Fatalf("summary over %d links, want %d", s.N(), g.N()*4)
	}
}

func TestUniformTrafficNearEvenOnTorus(t *testing.T) {
	// Random src/dst traffic on a torus should spread almost evenly:
	// congestion factor close to 1 (vertex-transitivity), certainly < 2.
	g := grid.New(10, grid.Torus)
	l := NewLinkLoads(g)
	r := xrand.NewSource(8).Stream(0)
	for i := 0; i < 200000; i++ {
		l.Route(r.IntN(g.N()), r.IntN(g.N()))
	}
	if cf := l.CongestionFactor(); cf > 1.5 {
		t.Fatalf("uniform torus traffic congestion factor %v, want < 1.5", cf)
	}
}

func TestBoundedGridCenterHotter(t *testing.T) {
	// On the bounded grid, uniform traffic concentrates in the middle —
	// the boundary effect the torus removes (Remark 1).
	g := grid.New(9, grid.Bounded)
	l := NewLinkLoads(g)
	r := xrand.NewSource(9).Stream(0)
	for i := 0; i < 100000; i++ {
		l.Route(r.IntN(g.N()), r.IntN(g.N()))
	}
	center := l.Load(g.ID(4, 4), East)
	corner := l.Load(g.ID(0, 0), East)
	if center <= corner {
		t.Fatalf("center link %d not hotter than corner link %d", center, corner)
	}
}

func BenchmarkRoute(b *testing.B) {
	g := grid.New(45, grid.Torus)
	l := NewLinkLoads(g)
	r := xrand.NewSource(1).Stream(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Route(r.IntN(g.N()), r.IntN(g.N()))
	}
}
