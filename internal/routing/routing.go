// Package routing materializes the multi-hop delivery the paper abstracts
// as "communication cost": requests are routed hop by hop over torus links
// using deterministic dimension-ordered (XY) routing, and per-link traffic
// is accumulated. This turns the scalar cost C into a link-congestion
// profile, exposing a second load-balancing dimension (wire load) that the
// serving-node metric hides: nearest-replica keeps total traffic minimal,
// while radius-r two-choices spreads server load at the price of extra
// transit traffic concentrated around popular replicas.
package routing

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/stats"
)

// Dir enumerates the four torus link directions.
type Dir int

// Link directions out of a node.
const (
	East Dir = iota
	West
	North
	South
	numDirs
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case East:
		return "east"
	case West:
		return "west"
	case North:
		return "north"
	case South:
		return "south"
	default:
		return fmt.Sprintf("Dir(%d)", int(d))
	}
}

// LinkLoads accumulates traffic per directed link. Link (u, d) is the
// outgoing link of node u in direction d.
type LinkLoads struct {
	g    *grid.Grid
	load []int64 // n × numDirs, indexed u*4+d
}

// NewLinkLoads returns a zeroed accumulator over g's links.
func NewLinkLoads(g *grid.Grid) *LinkLoads {
	return &LinkLoads{g: g, load: make([]int64, g.N()*int(numDirs))}
}

// Grid returns the underlying lattice.
func (l *LinkLoads) Grid() *grid.Grid { return l.g }

// Reset zeroes every link counter so the accumulator can be reused for a
// new trial without reallocating.
func (l *LinkLoads) Reset() { clear(l.load) }

// Load returns the traffic on node u's outgoing link in direction d.
func (l *LinkLoads) Load(u int, d Dir) int64 { return l.load[u*int(numDirs)+int(d)] }

// add records one message crossing u's outgoing link d.
func (l *LinkLoads) add(u int, d Dir) { l.load[u*int(numDirs)+int(d)]++ }

// Total returns the total link crossings (= Σ path lengths).
func (l *LinkLoads) Total() int64 {
	var t int64
	for _, v := range l.load {
		t += v
	}
	return t
}

// Max returns the most-loaded link's traffic.
func (l *LinkLoads) Max() int64 {
	var m int64
	for _, v := range l.load {
		if v > m {
			m = v
		}
	}
	return m
}

// Summary returns moments of the per-link load distribution (all 4n
// directed links, including idle ones).
func (l *LinkLoads) Summary() stats.Summary {
	var s stats.Summary
	for _, v := range l.load {
		s.Add(float64(v))
	}
	return s
}

// CongestionFactor is Max / mean-over-links: 1.0 means perfectly even wire
// utilization; large values flag hot links.
func (l *LinkLoads) CongestionFactor() float64 {
	s := l.Summary()
	if s.Mean() == 0 {
		return 0
	}
	return float64(l.Max()) / s.Mean()
}

// signedStep returns the per-axis step count and direction for the
// shortest wrapped path from a to b along one axis of length L.
func signedStep(a, b, length int, wrap bool) (steps int, forward bool) {
	d := b - a
	if d < 0 {
		d = -d
		forward = false
	} else {
		forward = true
	}
	if wrap && length-d < d {
		// Going the other way around is shorter.
		return length - d, !forward
	}
	return d, forward
}

// walkLinks visits every directed link of the XY (x first, then y)
// shortest path from src to dst, in traversal order, and returns the
// hop count (= grid.Dist(src, dst)). The single walker behind both the
// exact accounting (Route) and the streaming sketch feed (AppendLinks),
// so the two can never diverge.
func walkLinks(g *grid.Grid, src, dst int, visit func(u int, d Dir)) int {
	sx, sy := g.Coord(src)
	dx, dy := g.Coord(dst)
	wrap := g.Topology() == grid.Torus
	hops := 0

	// X leg.
	steps, fwd := signedStep(sx, dx, g.Side(), wrap)
	x, y := sx, sy
	for i := 0; i < steps; i++ {
		u := g.ID(x, y)
		if fwd {
			visit(u, East)
			x++
		} else {
			visit(u, West)
			x--
		}
		if wrap {
			x, _ = g.Wrap(x, 0)
		}
		hops++
	}
	// Y leg.
	steps, fwd = signedStep(sy, dy, g.Side(), wrap)
	for i := 0; i < steps; i++ {
		u := g.ID(x, y)
		if fwd {
			visit(u, South) // y grows "downward" in row-major layout
			y++
		} else {
			visit(u, North)
			y--
		}
		if wrap {
			_, y = g.Wrap(0, y)
		}
		hops++
	}
	return hops
}

// Route walks the XY shortest path from src to dst, incrementing every
// traversed link. It returns the hop count, which always equals
// grid.Dist(src, dst).
func (l *LinkLoads) Route(src, dst int) int {
	return walkLinks(l.g, src, dst, l.add)
}

// LinkID identifies node u's outgoing link in direction d, matching the
// LinkLoads indexing. Stable across trials of one grid.
func LinkID(u int, d Dir) uint64 { return uint64(u)*uint64(numDirs) + uint64(d) }

// AppendLinks appends the directed link ids of the XY route from src to
// dst — the exact links Route would increment, in order — and returns
// the slice. It materializes nothing else, which is what lets the
// streaming metrics mode feed per-link sketches without the O(n) link
// vector.
func AppendLinks(g *grid.Grid, src, dst int, out []uint64) []uint64 {
	walkLinks(g, src, dst, func(u int, d Dir) {
		out = append(out, LinkID(u, d))
	})
	return out
}

// Path returns the node sequence of the XY route from src to dst without
// recording traffic (for tests and visualization).
func Path(g *grid.Grid, src, dst int) []int32 {
	out := []int32{int32(src)}
	sx, sy := g.Coord(src)
	dx, dy := g.Coord(dst)
	wrap := g.Topology() == grid.Torus
	x, y := sx, sy
	steps, fwd := signedStep(sx, dx, g.Side(), wrap)
	for i := 0; i < steps; i++ {
		if fwd {
			x++
		} else {
			x--
		}
		if wrap {
			x, _ = g.Wrap(x, 0)
		}
		out = append(out, int32(g.ID(x, y)))
	}
	steps, fwd = signedStep(sy, dy, g.Side(), wrap)
	for i := 0; i < steps; i++ {
		if fwd {
			y++
		} else {
			y--
		}
		if wrap {
			_, y = g.Wrap(0, y)
		}
		out = append(out, int32(g.ID(x, y)))
	}
	return out
}
