package sweep

import (
	"strings"
	"testing"
)

// specJSON is the canonical small test spec: 2×2 grid, 6 trials in 3
// blocks.
const specJSON = `{
  "name": "unit",
  "trials": 6,
  "blocks": 3,
  "seed": 99,
  "base": {"side": 10, "k": 40, "m": 2},
  "axes": [
    {"field": "strategy", "values": ["nearest", "two-choices"]},
    {"field": "radius", "values": [2, 3]}
  ]
}`

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	return s
}

func TestParseSpecExpansion(t *testing.T) {
	s := mustParse(t, specJSON)
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	// Last axis fastest: strategy=nearest holds while radius cycles.
	wantLabels := []string{
		"strategy=nearest,radius=2", "strategy=nearest,radius=3",
		"strategy=two-choices,radius=2", "strategy=two-choices,radius=3",
	}
	for i, p := range pts {
		if p.Label != wantLabels[i] {
			t.Fatalf("point %d label %q, want %q", i, p.Label, wantLabels[i])
		}
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
		if p.Config.Seed != 99 {
			t.Fatalf("point %d seed %d, want 99", i, p.Config.Seed)
		}
	}

	shards, err := s.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4*3 {
		t.Fatalf("got %d shards, want 12", len(shards))
	}
	seen := map[string]bool{}
	for i, sh := range shards {
		if seen[sh.Key] {
			t.Fatalf("duplicate shard key %.12s", sh.Key)
		}
		seen[sh.Key] = true
		if sh.Point != i/3 || sh.Block != i%3 {
			t.Fatalf("shard %d is (point %d, block %d), want (%d, %d)", i, sh.Point, sh.Block, i/3, i%3)
		}
		if sh.Lo >= sh.Hi || sh.Hi > 6 {
			t.Fatalf("shard %d range [%d,%d) out of bounds", i, sh.Lo, sh.Hi)
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	s := mustParse(t, `{"trials": 4, "base": {"side": 5, "k": 10, "m": 1}}`)
	if s.Name != "sweep" || s.Seed != 2017 || s.Blocks != 4 {
		t.Fatalf("defaults wrong: name=%q seed=%d blocks=%d", s.Name, s.Seed, s.Blocks)
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Label != "base" {
		t.Fatalf("axis-free spec: %d points, label %q", len(pts), pts[0].Label)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for name, src := range map[string]string{
		"empty":          ``,
		"junk":           `not json`,
		"trailing":       `{"trials":1,"base":{"side":5,"k":10,"m":1}} extra`,
		"unknown field":  `{"trials":1,"nope":1,"base":{"side":5,"k":10,"m":1}}`,
		"no trials":      `{"base":{"side":5,"k":10,"m":1}}`,
		"huge trials":    `{"trials":9999999,"base":{"side":5,"k":10,"m":1}}`,
		"blocks>trials":  `{"trials":2,"blocks":5,"base":{"side":5,"k":10,"m":1}}`,
		"neg blocks":     `{"trials":2,"blocks":-1,"base":{"side":5,"k":10,"m":1}}`,
		"huge side":      `{"trials":1,"base":{"side":99999,"k":10,"m":1}}`,
		"zero k":         `{"trials":1,"base":{"side":5,"k":0,"m":1}}`,
		"unknown axis":   `{"trials":1,"base":{"side":5,"k":10,"m":1},"axes":[{"field":"zzz","values":[1]}]}`,
		"dup axis":       `{"trials":1,"base":{"side":5,"k":10,"m":1},"axes":[{"field":"m","values":[1]},{"field":"m","values":[2]}]}`,
		"empty axis":     `{"trials":1,"base":{"side":5,"k":10,"m":1},"axes":[{"field":"m","values":[]}]}`,
		"type mismatch":  `{"trials":1,"base":{"side":5,"k":10,"m":1},"axes":[{"field":"m","values":["two"]}]}`,
		"frac int":       `{"trials":1,"base":{"side":5,"k":10,"m":1},"axes":[{"field":"m","values":[1.5]}]}`,
		"bad strategy":   `{"trials":1,"base":{"side":5,"k":10,"m":1,"strategy":"wat"}}`,
		"engine invalid": `{"trials":1,"base":{"side":5,"k":10,"m":1,"workers":3,"chunk":7}}`,
	} {
		if _, err := ParseSpec([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSpecHashStable(t *testing.T) {
	a := mustParse(t, specJSON)
	b := mustParse(t, specJSON)
	if a.Hash() != b.Hash() {
		t.Fatal("same spec hashes differently")
	}
	c := mustParse(t, strings.Replace(specJSON, `"seed": 99`, `"seed": 100`, 1))
	if a.Hash() == c.Hash() {
		t.Fatal("different specs share a hash")
	}

	// Shard keys must be stable too: same spec, same keys.
	sa, _ := a.Shards()
	sb, _ := b.Shards()
	for i := range sa {
		if sa[i].Key != sb[i].Key {
			t.Fatalf("shard %d key unstable", i)
		}
	}
}

func TestGridCapEnforced(t *testing.T) {
	// 3 axes × 1024 values each = 2^30 points ≫ maxPoints.
	var vals strings.Builder
	for i := 0; i < 1024; i++ {
		if i > 0 {
			vals.WriteByte(',')
		}
		vals.WriteString("1")
	}
	src := `{"trials":1,"base":{"side":5,"k":10,"m":1},"axes":[` +
		`{"field":"m","values":[` + vals.String() + `]},` +
		`{"field":"k","values":[` + vals.String() + `]},` +
		`{"field":"side","values":[` + vals.String() + `]}]}`
	if _, err := ParseSpec([]byte(src)); err == nil {
		t.Fatal("10^9-point grid accepted")
	}
}
