package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Chaos configures worker-side fault injection: every path the sweep
// must survive in production — crashes mid-shard, stragglers whose
// leases expire under them, and double deliveries — exercised on
// purpose. All decisions come from one seeded stream, so a chaos run is
// reproducible; none of them can change the merged artifact, which is
// the property the chaos CI job pins.
type Chaos struct {
	// KillProb abandons a leased shard halfway through its trials —
	// the worker "crashes": no completion, no further heartbeats, and
	// the lease expires back into the queue.
	KillProb float64
	// Kills caps the number of kills (0 = unlimited).
	Kills int
	// DelayProb stalls the shard before completion by up to MaxDelay —
	// a straggler whose lease may expire and be reassigned, producing a
	// duplicate completion for the idempotent merge to drop.
	DelayProb float64
	// MaxDelay bounds the injected stall.
	MaxDelay time.Duration
	// DupProb delivers the completion twice, exercising the
	// verified-equal duplicate path directly.
	DupProb float64
	// Seed roots the chaos decision stream.
	Seed uint64
}

// WorkerOptions tune a Worker; the zero value is ready for use.
type WorkerOptions struct {
	// ID names the worker in coordinator status (default "worker").
	ID string
	// Client overrides the HTTP client (default: 10s timeout).
	Client *http.Client
	// Poll is the idle backoff when every shard is leased elsewhere
	// (default 50ms).
	Poll time.Duration
	// BackoffBase/BackoffMax bound the exponential retry backoff on
	// transient coordinator errors (defaults 50ms / 2s).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// Chaos enables fault injection (nil = none).
	Chaos *Chaos
}

// Worker pulls shards from a coordinator over the work-queue protocol,
// executes them through sim.World.RunBlock, and delivers content-hashed
// results. It retries transient coordinator errors (connection refused,
// 5xx) with exponential backoff plus jitter, heartbeats its lease every
// TTL/3 while computing, keeps computing even if a heartbeat is lost
// (the completion is keyed by content, so a reassigned shard merges
// idempotently), and drains gracefully on request.
type Worker struct {
	base  string
	opt   WorkerOptions
	rng   *rand.Rand // backoff jitter + chaos decisions
	kills int
	drain atomic.Bool

	lastCfg   sim.Config
	lastWorld *sim.World

	// Shards/Abandoned/Duplicates count completed, chaos-killed and
	// duplicate-acked shards for reporting.
	Shards     int
	Abandoned  int
	Duplicates int
}

// NewWorker returns a worker bound to the coordinator at base
// (e.g. "http://127.0.0.1:8090").
func NewWorker(base string, opt WorkerOptions) *Worker {
	if opt.ID == "" {
		opt.ID = "worker"
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if opt.Poll <= 0 {
		opt.Poll = 50 * time.Millisecond
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 50 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 2 * time.Second
	}
	seed := uint64(0x5eed)
	if opt.Chaos != nil {
		seed = opt.Chaos.Seed
	}
	return &Worker{base: base, opt: opt, rng: rand.New(rand.NewPCG(seed, 0x7081))}
}

// RequestDrain asks the worker to exit after its current shard — the
// worker half of SIGTERM graceful drain.
func (w *Worker) RequestDrain() { w.drain.Store(true) }

// errTransient marks retryable coordinator failures.
var errTransient = errors.New("sweep: transient coordinator error")

// errKilled marks a chaos-injected worker crash.
var errKilled = errors.New("sweep: chaos kill")

// backoff returns the jittered exponential delay for retry attempt n
// (0-based): the raw delay doubles from BackoffBase up to BackoffMax,
// and the jitter draws uniformly from [delay/2, delay] so synchronized
// workers spread out instead of stampeding a recovering coordinator.
func (w *Worker) backoff(attempt int) time.Duration {
	d := w.opt.BackoffBase << min(attempt, 20)
	if d <= 0 || d > w.opt.BackoffMax {
		d = w.opt.BackoffMax
	}
	half := d / 2
	return half + time.Duration(w.rng.Int64N(int64(half)+1))
}

// Run pulls and executes shards until the coordinator reports the sweep
// done (nil), the context is cancelled, or a drain is requested (nil).
func (w *Worker) Run(ctx context.Context) error {
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.drain.Load() {
			return nil
		}
		var reply LeaseReply
		if err := w.call(ctx, "/v1/lease", LeaseRequest{Worker: w.opt.ID}, &reply); err != nil {
			if !errors.Is(err, errTransient) {
				return err
			}
			if !sleepCtx(ctx, w.backoff(attempt)) {
				return ctx.Err()
			}
			attempt++
			continue
		}
		attempt = 0
		switch {
		case reply.Done, reply.Draining:
			return nil
		case reply.Shard == nil:
			if !sleepCtx(ctx, w.opt.Poll) {
				return ctx.Err()
			}
			continue
		}
		if err := w.runShard(ctx, reply); err != nil {
			switch {
			case errors.Is(err, errKilled):
				w.Abandoned++
				continue
			case ctx.Err() != nil:
				return ctx.Err()
			default:
				return err
			}
		}
		w.Shards++
	}
}

// runShard executes one leased shard under a heartbeat and delivers its
// result. Execution errors are reported to the coordinator via
// /v1/fail; panics are recovered into failures so a poisoned shard
// cannot take the worker down with it.
func (w *Worker) runShard(ctx context.Context, grant LeaseReply) error {
	sh := *grant.Shard
	hbStop := w.heartbeat(ctx, grant.Lease, time.Duration(grant.TTLMillis)*time.Millisecond)

	agg, err := w.execute(ctx, sh)
	hbStop()
	if err != nil {
		if errors.Is(err, errKilled) || ctx.Err() != nil {
			return err
		}
		// Report the failure so the coordinator can re-queue or fail the
		// shard; losing the report is fine — the lease will expire.
		w.call(ctx, "/v1/fail", FailRequest{Key: sh.Key, Error: err.Error()}, &struct{}{})
		return fmt.Errorf("sweep: shard %.12s: %w", sh.Key, err)
	}

	res := NewShardResult(sh.Key, agg)
	if c := w.opt.Chaos; c != nil && c.DelayProb > 0 && w.rng.Float64() < c.DelayProb {
		if !sleepCtx(ctx, time.Duration(w.rng.Int64N(int64(c.MaxDelay)+1))) {
			return ctx.Err()
		}
	}
	deliveries := 1
	if c := w.opt.Chaos; c != nil && c.DupProb > 0 && w.rng.Float64() < c.DupProb {
		deliveries = 2
	}
	for d := 0; d < deliveries; d++ {
		if err := w.complete(ctx, res); err != nil {
			return err
		}
	}
	return nil
}

// execute compiles the shard's configuration (memoizing the last world,
// since consecutive shards often share a grid point) and folds its
// trial block in ascending order — the exact RunSeries partial.
func (w *Worker) execute(ctx context.Context, sh Shard) (agg sim.Aggregate, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if w.lastWorld == nil || w.lastCfg != sh.Config {
		world, cerr := sim.Compile(sh.Config)
		if cerr != nil {
			return agg, cerr
		}
		w.lastWorld, w.lastCfg = world, sh.Config
	}
	killAt := -1
	if c := w.opt.Chaos; c != nil && c.KillProb > 0 && (c.Kills == 0 || w.kills < c.Kills) &&
		w.rng.Float64() < c.KillProb {
		killAt = sh.Lo + (sh.Hi-sh.Lo)/2
	}
	r := w.lastWorld.NewRunner()
	for t := sh.Lo; t < sh.Hi; t++ {
		if err := ctx.Err(); err != nil {
			return agg, err
		}
		if t == killAt {
			w.kills++
			return agg, errKilled
		}
		agg.Add(r.RunTrial(uint64(t)))
	}
	return agg, nil
}

// complete delivers a result, retrying transient errors indefinitely
// (bounded by ctx): the work is already paid for, and the idempotent
// merge makes re-delivery safe even across coordinator restarts.
func (w *Worker) complete(ctx context.Context, res ShardResult) error {
	for attempt := 0; ; attempt++ {
		var rep CompleteReply
		err := w.call(ctx, "/v1/complete", res, &rep)
		if err == nil {
			if rep.Duplicate {
				w.Duplicates++
			}
			return nil
		}
		if !errors.Is(err, errTransient) {
			return err
		}
		if !sleepCtx(ctx, w.backoff(attempt)) {
			return ctx.Err()
		}
	}
}

// heartbeat renews the lease every TTL/3 until stopped. A failed
// renewal (lost lease, restarted coordinator) does NOT abort the shard:
// the completion is keyed by content, so finishing is always at worst a
// verified duplicate.
func (w *Worker) heartbeat(ctx context.Context, id uint64, ttl time.Duration) (stop func()) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				w.call(ctx, "/v1/renew", RenewRequest{Lease: id}, &struct{}{})
			}
		}
	}()
	return func() { close(done) }
}

// call POSTs one JSON request. Connection errors and 5xx answers map to
// errTransient (retryable); 4xx answers are permanent protocol errors.
func (w *Worker) call(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opt.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %v", errTransient, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%w: %s from %s", errTransient, resp.Status, path)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("sweep: %s answered %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out)
}

// sleepCtx sleeps d or until ctx is done; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
