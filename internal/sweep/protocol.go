package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// The work-queue protocol is four POSTs and a GET, all JSON:
//
//	POST /v1/lease    {"worker":W}            → LeaseReply
//	POST /v1/renew    {"lease":N}             → 200 | 410 gone
//	POST /v1/complete ShardResult             → CompleteReply | 409 mismatch
//	POST /v1/fail     {"key":K,"error":E}     → 200
//	GET  /v1/status                           → Status
//
// Completions are keyed by shard content hash, never by lease, so a
// worker can deliver a result to a coordinator that restarted (and
// re-leased the shard) since the work was handed out — the definition
// of at-least-once delivery with idempotent merge.

// LeaseRequest is the POST /v1/lease body.
type LeaseRequest struct {
	// Worker is a diagnostic worker identity (shown in status).
	Worker string `json:"worker"`
}

// LeaseReply is the POST /v1/lease answer. Exactly one of Shard, Done,
// Draining or "nothing available right now" (all fields zero) holds.
type LeaseReply struct {
	// Shard is the leased work unit, when one was available.
	Shard *Shard `json:"shard,omitempty"`
	// Lease identifies the grant for renewals.
	Lease uint64 `json:"lease,omitempty"`
	// TTLMillis is the lease duration; renew well inside it.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// Done reports that every shard is finished: workers should exit.
	Done bool `json:"done,omitempty"`
	// Draining reports a coordinator shutting down: workers should exit
	// without waiting for Done.
	Draining bool `json:"draining,omitempty"`
}

// RenewRequest is the POST /v1/renew body.
type RenewRequest struct {
	// Lease is the grant being renewed.
	Lease uint64 `json:"lease"`
}

// FailRequest is the POST /v1/fail body: a worker reporting that a
// shard's execution errored (as opposed to the worker dying, which the
// lease deadline handles).
type FailRequest struct {
	// Key is the failed shard's content hash.
	Key string `json:"key"`
	// Error describes the failure.
	Error string `json:"error"`
}

// CompleteReply is the POST /v1/complete answer.
type CompleteReply struct {
	// Duplicate reports the result was already recorded (and verified
	// equal) — the normal outcome of a reassigned straggler finishing.
	Duplicate bool `json:"duplicate,omitempty"`
}

// Status is the GET /v1/status payload.
type Status struct {
	// SpecHash identifies the sweep being coordinated.
	SpecHash string `json:"spec_hash"`
	// Total counts all shards; Done/Leased/Pending/Failed partition it.
	Total   int `json:"total"`
	Done    int `json:"done"`
	Leased  int `json:"leased"`
	Pending int `json:"pending"`
	Failed  int `json:"failed"`
	// Draining reports a coordinator in graceful shutdown.
	Draining bool `json:"draining"`
}

// ShardResult is one completed shard: the block aggregate plus its own
// content hash, so duplicates verify equal byte-for-byte and a torn
// journal line is detected on recovery.
type ShardResult struct {
	// Key is the shard's content hash (Shard.Key).
	Key string `json:"key"`
	// Agg is the block's trial aggregate, folded in ascending trial
	// order (sim.World.RunBlock).
	Agg sim.Aggregate `json:"agg"`
	// Hash is the SHA-256 of the canonical JSON of Agg.
	Hash string `json:"hash"`
}

// aggHash computes the canonical content hash of an aggregate.
func aggHash(agg sim.Aggregate) string {
	b, err := json.Marshal(agg)
	if err != nil {
		panic(fmt.Sprintf("sweep: aggregate does not marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// NewShardResult stamps agg with its content hash for shard key.
func NewShardResult(key string, agg sim.Aggregate) ShardResult {
	return ShardResult{Key: key, Agg: agg, Hash: aggHash(agg)}
}

// Verify recomputes the result's content hash and reports corruption
// (a torn journal line, a buggy worker, or bit rot in transit).
func (r ShardResult) Verify() error {
	if r.Key == "" {
		return fmt.Errorf("sweep: shard result without a key")
	}
	if got := aggHash(r.Agg); got != r.Hash {
		return fmt.Errorf("sweep: shard %.12s result hash mismatch (got %.12s, want %.12s)", r.Key, got, r.Hash)
	}
	return nil
}
