package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
	"repro/internal/stats"
)

// MergeShards folds completed shard results into per-point aggregates.
// The fold visits shards in (point, ascending block) order — the exact
// partition and merge order of sim.RunSeries — so the output is
// bit-identical to sim.RunSeries(cfgs, spec.Trials, spec.Blocks) run in
// a single process, no matter how many workers computed the shards, in
// what order, or how many times. Every result's content hash is
// re-verified; a missing or corrupt shard is an error, never a silent
// gap in the artifact.
func MergeShards(spec *Spec, results map[string]ShardResult) ([]sim.Aggregate, error) {
	shards, err := spec.Shards()
	if err != nil {
		return nil, err
	}
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	out := make([]sim.Aggregate, len(pts))
	for _, sh := range shards {
		res, ok := results[sh.Key]
		if !ok {
			return nil, fmt.Errorf("sweep: shard %.12s (point %d block %d) missing from results", sh.Key, sh.Point, sh.Block)
		}
		if err := res.Verify(); err != nil {
			return nil, err
		}
		out[sh.Point].Merge(res.Agg)
	}
	return out, nil
}

// RunDirect computes the sweep in-process through sim.RunSeries with
// the spec's block partition — the single-host reference every
// distributed run must match byte-for-byte. It is both the golden
// generator for CI and the fallback when no fleet is available.
func RunDirect(spec *Spec) ([]sim.Aggregate, error) {
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	cfgs := make([]sim.Config, len(pts))
	for i, p := range pts {
		cfgs[i] = p.Config
	}
	return sim.RunSeries(cfgs, spec.Trials, spec.Blocks)
}

// ftoa renders a float in its shortest exact form, the formatting rule
// both artifact writers share: equal float64 values produce equal
// bytes, so bit-identical aggregates produce bit-identical artifacts.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// csvHeader is the fixed artifact schema: identity columns, then the
// Definition 1 metrics with their confidence intervals, then the
// robustness/dynamics summaries (zero when the regime is off).
var csvHeader = []string{
	"point", "label", "trials",
	"max_load_mean", "max_load_ci95", "max_load_min", "max_load_max",
	"mean_cost_mean", "mean_cost_ci95",
	"escalated_mean", "backhaul_mean", "uncached_mean",
	"churn_events_mean", "availability_mean", "retried_mean",
}

// WriteCSV emits the merged sweep artifact: one row per grid point in
// expansion order, floats in shortest exact form.
func WriteCSV(w io.Writer, spec *Spec, aggs []sim.Aggregate) error {
	pts, err := spec.Points()
	if err != nil {
		return err
	}
	if len(aggs) != len(pts) {
		return fmt.Errorf("sweep: %d aggregates for %d points", len(aggs), len(pts))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i, p := range pts {
		a := aggs[i]
		row := []string{
			strconv.Itoa(p.Index), p.Label, strconv.Itoa(a.Trials),
			ftoa(a.MaxLoad.Mean()), ftoa(a.MaxLoad.CI95()), ftoa(a.MaxLoad.Min()), ftoa(a.MaxLoad.Max()),
			ftoa(a.MeanCost.Mean()), ftoa(a.MeanCost.CI95()),
			ftoa(a.Escalated.Mean()), ftoa(a.Backhaul.Mean()), ftoa(a.Uncached.Mean()),
			ftoa(a.ChurnEvents.Mean()), ftoa(a.Availability.Mean()), ftoa(a.Retried.Mean()),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ArtifactPoint is one grid point of the JSON artifact.
type ArtifactPoint struct {
	// Index and Label identify the point (expansion order, axis
	// assignments).
	Index int `json:"index"`
	// Label lists the point's axis assignments.
	Label string `json:"label"`
	// Spec is the resolved point spec.
	Spec PointSpec `json:"spec"`
	// Agg is the merged aggregate with full streaming moments — exact
	// enough to extend the sweep later without re-running it.
	Agg sim.Aggregate `json:"agg"`
}

// Artifact is the JSON artifact: sweep identity plus every merged
// point. Struct fields only (no maps), so encoding is deterministic.
type Artifact struct {
	// Name and SpecHash identify the sweep.
	Name string `json:"name"`
	// SpecHash is the canonical spec content hash.
	SpecHash string `json:"spec_hash"`
	// Trials and Blocks record the schedule the artifact merged.
	Trials int `json:"trials"`
	// Blocks is the merge partition (part of the result identity).
	Blocks int `json:"blocks"`
	// Seed is the root seed.
	Seed uint64 `json:"seed"`
	// Points holds the merged results in expansion order.
	Points []ArtifactPoint `json:"points"`
}

// WriteJSON emits the merged sweep artifact as deterministic JSON.
func WriteJSON(w io.Writer, spec *Spec, aggs []sim.Aggregate) error {
	pts, err := spec.Points()
	if err != nil {
		return err
	}
	if len(aggs) != len(pts) {
		return fmt.Errorf("sweep: %d aggregates for %d points", len(aggs), len(pts))
	}
	art := Artifact{
		Name: spec.Name, SpecHash: spec.Hash(),
		Trials: spec.Trials, Blocks: spec.Blocks, Seed: spec.Seed,
		Points: make([]ArtifactPoint, len(pts)),
	}
	for i, p := range pts {
		art.Points[i] = ArtifactPoint{Index: p.Index, Label: p.Label, Spec: p.Spec, Agg: aggs[i]}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(art)
}

// Summarize renders one aggregate's headline for logs.
func Summarize(label string, a sim.Aggregate) string {
	return fmt.Sprintf("%-30s L=%s C=%s", label, summShort(a.MaxLoad), summShort(a.MeanCost))
}

func summShort(s stats.Summary) string {
	return fmt.Sprintf("%.3f±%.3f", s.Mean(), s.CI95())
}
