package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"repro/internal/sim"
)

// Lease/assignment errors.
var (
	// ErrLeaseGone reports a renewal for a lease that expired or was
	// never granted (e.g. the coordinator restarted since the grant).
	ErrLeaseGone = errors.New("sweep: lease expired or unknown")
	// ErrResultMismatch reports a duplicate completion whose aggregate
	// differs from the recorded one — impossible for correct
	// deterministic workers, so it is surfaced loudly instead of merged.
	ErrResultMismatch = errors.New("sweep: duplicate completion does not match recorded result")
	// ErrUnknownShard reports a completion or failure for a key outside
	// this sweep.
	ErrUnknownShard = errors.New("sweep: unknown shard key")
)

// DefaultLeaseTTL is the lease deadline granted to workers; renewals
// arrive every TTL/3, so one missed heartbeat survives and a crashed
// worker's shard re-enters the queue within a TTL.
const DefaultLeaseTTL = 10 * time.Second

// DefaultMaxAttempts bounds explicit execution failures per shard
// (worker-reported errors, not lease expiries): past it the shard — and
// the sweep — is marked failed rather than retried forever.
const DefaultMaxAttempts = 5

// CoordinatorOptions tune a Coordinator; the zero value is ready for
// production use.
type CoordinatorOptions struct {
	// LeaseTTL is the lease deadline (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// MaxAttempts bounds worker-reported failures per shard
	// (0 = DefaultMaxAttempts).
	MaxAttempts int
	// FlakeProb injects chaos: the HTTP front answers 503 to that
	// fraction of lease/complete calls, exercising worker retry paths.
	FlakeProb float64
	// FlakeSeed seeds the chaos injection stream.
	FlakeSeed uint64
	// Now overrides the clock (tests).
	Now func() time.Time
}

type shardPhase int

const (
	shardPending shardPhase = iota
	shardLeased
	shardDone
	shardFailed
)

// lease is one outstanding grant.
type lease struct {
	shard    int
	worker   string
	deadline time.Time
}

// Coordinator owns a sweep: the expanded shard list, the lease table,
// the completion journal and the merged results. All methods are safe
// for concurrent use; the HTTP front (Handler) is a thin JSON wrapper
// over Lease/Renew/Complete/Fail/Status.
type Coordinator struct {
	spec     *Spec
	specHash string
	points   []Point
	shards   []Shard
	journal  *Journal // nil = ephemeral (no crash recovery)

	mu        sync.Mutex
	phase     []shardPhase
	attempts  []int
	byKey     map[string]int
	leases    map[uint64]*lease
	results   map[string]ShardResult
	nextLease uint64
	draining  bool
	failure   error
	done      chan struct{}
	expiries  int // leases reclaimed after deadline
	dupes     int // duplicate completions verified equal and dropped

	leaseTTL    time.Duration
	maxAttempts int
	now         func() time.Time

	flakeMu sync.Mutex
	flake   *rand.Rand
	flakeP  float64
}

// NewCoordinator expands spec, opens (or recovers) the journal at
// journalPath — "" runs without one — and returns a coordinator ready
// to serve leases. Shards already present in the journal are marked
// done, so a restart resumes instead of re-running completed work.
func NewCoordinator(spec *Spec, journalPath string, opt CoordinatorOptions) (*Coordinator, error) {
	shards, err := spec.Shards()
	if err != nil {
		return nil, err
	}
	points, err := spec.Points()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		spec:        spec,
		specHash:    spec.Hash(),
		points:      points,
		shards:      shards,
		phase:       make([]shardPhase, len(shards)),
		attempts:    make([]int, len(shards)),
		byKey:       make(map[string]int, len(shards)),
		leases:      map[uint64]*lease{},
		results:     make(map[string]ShardResult, len(shards)),
		done:        make(chan struct{}),
		leaseTTL:    opt.LeaseTTL,
		maxAttempts: opt.MaxAttempts,
		now:         opt.Now,
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = DefaultLeaseTTL
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = DefaultMaxAttempts
	}
	if c.now == nil {
		c.now = time.Now
	}
	if opt.FlakeProb > 0 {
		c.flakeP = opt.FlakeProb
		c.flake = rand.New(rand.NewPCG(opt.FlakeSeed, 0x5eed))
	}
	for i, sh := range shards {
		c.byKey[sh.Key] = i
	}
	if journalPath != "" {
		j, recovered, _, err := OpenJournal(journalPath, c.specHash)
		if err != nil {
			return nil, err
		}
		c.journal = j
		for _, res := range recovered {
			if i, ok := c.byKey[res.Key]; ok && c.phase[i] != shardDone {
				c.phase[i] = shardDone
				c.results[res.Key] = res
			}
		}
	}
	c.mu.Lock()
	c.checkTerminal()
	c.mu.Unlock()
	return c, nil
}

// Spec returns the coordinated sweep spec.
func (c *Coordinator) Spec() *Spec { return c.spec }

// checkTerminal closes the done channel once no shard can make further
// progress: every shard settled, or — while draining — every lease
// settled (pending shards stay in the journal's debt for the next
// invocation to resume). Callers must hold c.mu.
func (c *Coordinator) checkTerminal() {
	var open int
	for _, p := range c.phase {
		switch {
		case p == shardLeased:
			open++
		case p == shardPending && !c.draining:
			open++
		}
	}
	if open == 0 {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
}

// reclaimExpired returns expired leases to the pending pool. Callers
// must hold c.mu.
func (c *Coordinator) reclaimExpired(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.deadline) {
			if c.phase[l.shard] == shardLeased {
				c.phase[l.shard] = shardPending
				c.expiries++
			}
			delete(c.leases, id)
		}
	}
}

// Lease hands the next available shard to a worker. The reply is one
// of: a grant, Done (all work finished or failed — exit), Draining
// (coordinator shutting down — exit), or empty (everything is leased
// right now — poll again shortly; a straggler's lease may expire).
func (c *Coordinator) Lease(worker string) LeaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return LeaseReply{Draining: true}
	}
	now := c.now()
	c.reclaimExpired(now)
	select {
	case <-c.done:
		return LeaseReply{Done: true}
	default:
	}
	for i := range c.shards {
		if c.phase[i] != shardPending {
			continue
		}
		c.phase[i] = shardLeased
		c.nextLease++
		id := c.nextLease
		c.leases[id] = &lease{shard: i, worker: worker, deadline: now.Add(c.leaseTTL)}
		sh := c.shards[i]
		return LeaseReply{Shard: &sh, Lease: id, TTLMillis: c.leaseTTL.Milliseconds()}
	}
	return LeaseReply{} // all in flight; poll again
}

// Renew extends a lease's deadline (the worker heartbeat).
func (c *Coordinator) Renew(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpired(c.now())
	l, ok := c.leases[id]
	if !ok {
		return ErrLeaseGone
	}
	l.deadline = c.now().Add(c.leaseTTL)
	return nil
}

// Complete records one shard result. Completions are idempotent and
// at-least-once: they are keyed by shard content hash, accepted even
// after the lease expired or the coordinator restarted, journaled
// before they are acknowledged, and duplicates are verified equal and
// dropped (a mismatched duplicate is an error — deterministic workers
// cannot produce one).
func (c *Coordinator) Complete(res ShardResult) (duplicate bool, err error) {
	if err := res.Verify(); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.byKey[res.Key]
	if !ok {
		return false, ErrUnknownShard
	}
	if c.phase[i] == shardDone {
		if c.results[res.Key].Hash != res.Hash {
			return false, fmt.Errorf("%w: shard %.12s", ErrResultMismatch, res.Key)
		}
		c.dupes++
		return true, nil
	}
	if c.journal != nil {
		if err := c.journal.Append(res); err != nil {
			return false, fmt.Errorf("sweep: journal append: %w", err)
		}
	}
	c.phase[i] = shardDone
	c.results[res.Key] = res
	for id, l := range c.leases {
		if l.shard == i {
			delete(c.leases, id)
		}
	}
	c.checkTerminal()
	return false, nil
}

// Fail records a worker-reported execution error. The shard re-enters
// the queue until MaxAttempts is exhausted, at which point the shard —
// and the sweep — is marked failed.
func (c *Coordinator) Fail(key, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.byKey[key]
	if !ok {
		return ErrUnknownShard
	}
	if c.phase[i] == shardDone || c.phase[i] == shardFailed {
		return nil
	}
	for id, l := range c.leases {
		if l.shard == i {
			delete(c.leases, id)
		}
	}
	c.attempts[i]++
	if c.attempts[i] >= c.maxAttempts {
		c.phase[i] = shardFailed
		if c.failure == nil {
			c.failure = fmt.Errorf("sweep: shard %.12s failed %d times, last error: %s", key, c.attempts[i], msg)
		}
		c.checkTerminal()
		return nil
	}
	c.phase[i] = shardPending
	return nil
}

// Drain switches the coordinator into graceful shutdown: no new leases
// are granted (workers are told to exit), in-flight completions are
// still accepted and journaled, and Wait returns once every outstanding
// lease has completed or expired — pending shards stay in the journal's
// debt for the next invocation to resume. A watcher goroutine reclaims
// leases whose workers died mid-drain, so Wait cannot hang on a ghost.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	already := c.draining
	c.draining = true
	c.checkTerminal()
	c.mu.Unlock()
	if already {
		return
	}
	go func() {
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				c.mu.Lock()
				c.reclaimExpired(c.now())
				c.checkTerminal()
				c.mu.Unlock()
			}
		}
	}()
}

// Status snapshots the sweep's progress.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpired(c.now())
	st := Status{SpecHash: c.specHash, Total: len(c.shards), Draining: c.draining}
	for _, p := range c.phase {
		switch p {
		case shardDone:
			st.Done++
		case shardLeased:
			st.Leased++
		case shardFailed:
			st.Failed++
		default:
			st.Pending++
		}
	}
	return st
}

// Expiries reports how many leases were reclaimed after their deadline
// (crashed or stalled workers); Dupes reports how many duplicate
// completions were verified equal and dropped.
func (c *Coordinator) Expiries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.expiries
}

// Dupes reports duplicate completions dropped after verification.
func (c *Coordinator) Dupes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dupes
}

// Wait blocks until every shard is done (nil) or the sweep failed
// permanently, or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

// Merged folds the completed shard results into per-point aggregates in
// the exact partition and order of sim.RunSeries (see MergeShards).
func (c *Coordinator) Merged() ([]sim.Aggregate, error) {
	c.mu.Lock()
	results := make(map[string]ShardResult, len(c.results))
	for k, v := range c.results {
		results[k] = v
	}
	c.mu.Unlock()
	return MergeShards(c.spec, results)
}

// Close releases the journal.
func (c *Coordinator) Close() error {
	if c.journal != nil {
		return c.journal.Close()
	}
	return nil
}

// maxBodyBytes caps work-queue request bodies; a shard result is a few
// KB of JSON, so anything near the cap is garbage, not work.
const maxBodyBytes = 1 << 20

// Handler returns the coordinator's HTTP front: the minimal work-queue
// protocol documented in protocol.go, with every body capped by
// http.MaxBytesReader and chaos 503 injection when FlakeProb is set.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		if c.flaky() {
			http.Error(w, "chaos: flaked", http.StatusServiceUnavailable)
			return
		}
		var req LeaseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		writeJSON(w, c.Lease(req.Worker))
	})
	mux.HandleFunc("POST /v1/renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := c.Renew(req.Lease); err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		if c.flaky() {
			http.Error(w, "chaos: flaked", http.StatusServiceUnavailable)
			return
		}
		var res ShardResult
		if !decodeBody(w, r, &res) {
			return
		}
		dup, err := c.Complete(res)
		switch {
		case errors.Is(err, ErrResultMismatch):
			http.Error(w, err.Error(), http.StatusConflict)
			return
		case errors.Is(err, ErrUnknownShard):
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, CompleteReply{Duplicate: dup})
	})
	mux.HandleFunc("POST /v1/fail", func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := c.Fail(req.Key, req.Error); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	return mux
}

// flaky rolls the chaos 503 die.
func (c *Coordinator) flaky() bool {
	if c.flake == nil {
		return false
	}
	c.flakeMu.Lock()
	defer c.flakeMu.Unlock()
	return c.flake.Float64() < c.flakeP
}

// decodeBody parses a capped JSON body, answering 400/413 on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON answers with a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
