// Package sweep is the fleet-scale sweep orchestration layer: it
// expands a declarative grid spec (axes × base point × seeds) into
// deterministically-keyed (Config, trial-block) shards, serves them to
// worker processes over a minimal HTTP work-queue protocol with
// lease-based assignment, and merges the per-shard results into CSV and
// JSON artifacts that are byte-identical to a single-process
// sim.RunSeries run — even when workers crash, stall, double-deliver,
// or the coordinator itself is killed and restarted from its journal.
//
// The robustness model (see docs/sweep.md for the full treatment):
//
//   - shards are content-keyed and idempotent: any shard can be re-run
//     anywhere, and duplicate completions are verified equal and dropped;
//   - leases expire and re-enter the queue, so crashed or stalled
//     workers only delay their shards;
//   - every completion is appended to a fsync'd journal before it is
//     acknowledged, so a restarted coordinator resumes without
//     re-running finished work;
//   - the merge folds block aggregates in the exact partition and order
//     of sim.RunSeries, which is what makes the distributed artifact
//     bit-identical to the single-host one.
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/grid"
	"repro/internal/sim"
)

// Expansion caps: a spec is a hand-written document, so anything past
// these bounds is a typo (or a fuzzer), not a workload.
const (
	maxAxes       = 8
	maxAxisValues = 1024
	maxPoints     = 1 << 16
	maxTrials     = 1 << 20
	maxBlocks     = 4096
	maxSide       = 4096
	maxK          = 1 << 24
	maxM          = 1 << 20
	maxRequests   = 1 << 30
)

// PointSpec is the flag-level description of one simulated
// configuration — the JSON spelling of the knobs cmd/cachesim exposes.
// The zero value of every optional field selects the engine default;
// Side, K and M are mandatory (in the spec base, after axis
// application).
type PointSpec struct {
	// Side is the lattice side L (n = L² servers).
	Side int `json:"side"`
	// Topology is "torus" (default) or "grid".
	Topology string `json:"topology,omitempty"`
	// K is the library size; M the per-node cache size.
	K int `json:"k"`
	// M is the per-node cache size.
	M int `json:"m"`
	// Gamma is the Zipf exponent (0 = uniform popularity).
	Gamma float64 `json:"gamma,omitempty"`
	// Strategy is "nearest" (default), "two-choices", "one-choice" or
	// "oracle".
	Strategy string `json:"strategy,omitempty"`
	// Radius is the proximity radius in hops (-1 = unbounded).
	Radius int `json:"radius,omitempty"`
	// Choices is d for the choice strategies (0 → 2).
	Choices int `json:"choices,omitempty"`
	// Beta selects the (1+β)-choice process for two-choices.
	Beta float64 `json:"beta,omitempty"`
	// WithoutReplacement samples candidates distinct when possible.
	WithoutReplacement bool `json:"without_replacement,omitempty"`
	// Requests is the request count per trial (0 = n).
	Requests int `json:"requests,omitempty"`
	// Miss is the miss policy: "resample" (default), "escalate", "origin".
	Miss string `json:"miss,omitempty"`
	// Metrics is "scalar" (default), "links" or "streaming".
	Metrics string `json:"metrics,omitempty"`
	// Streams is "interleaved" (default) or "split".
	Streams string `json:"streams,omitempty"`
	// Index is "none" (default) or "tiles".
	Index string `json:"index,omitempty"`
	// Churn is "none" (default), "replicas" or "drift".
	Churn string `json:"churn,omitempty"`
	// ChurnRate is expected replica migrations per request.
	ChurnRate float64 `json:"churn_rate,omitempty"`
	// Faults is "none" (default), "crash" or "regional".
	Faults string `json:"faults,omitempty"`
	// FaultRate is expected crash events per request.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// RecoverRate is expected recovery events per request.
	RecoverRate float64 `json:"recover_rate,omitempty"`
	// Workers is the intra-trial shard count P (0 = sequential engine).
	Workers int `json:"workers,omitempty"`
	// Shard is "deterministic" (default) or "racy".
	Shard string `json:"shard,omitempty"`
	// Chunk overrides the pipeline block size (0 = engine default).
	Chunk int `json:"chunk,omitempty"`
}

// Config translates the point into a validated engine configuration
// rooted at the given seed.
func (p PointSpec) Config(seed uint64) (sim.Config, error) {
	var cfg sim.Config
	topo := p.Topology
	if topo == "" {
		topo = "torus"
	}
	tp, err := grid.ParseTopology(topo)
	if err != nil {
		return cfg, err
	}
	mp, err := sim.ParseMiss(p.Miss)
	if err != nil {
		return cfg, err
	}
	mm, err := sim.ParseMetricsMode(p.Metrics)
	if err != nil {
		return cfg, err
	}
	st, err := sim.ParseStreams(p.Streams)
	if err != nil {
		return cfg, err
	}
	ix, err := sim.ParseIndex(p.Index)
	if err != nil {
		return cfg, err
	}
	ch, err := sim.ParseChurn(p.Churn)
	if err != nil {
		return cfg, err
	}
	fm, err := sim.ParseFaults(p.Faults)
	if err != nil {
		return cfg, err
	}
	sh, err := sim.ParseShard(p.Shard)
	if err != nil {
		return cfg, err
	}
	cfg = sim.Config{
		Side: p.Side, Topology: tp, K: p.K, M: p.M,
		Requests: p.Requests, MissPolicy: mp, Metrics: mm, Streams: st, Index: ix,
		Churn: ch, ChurnRate: p.ChurnRate,
		Faults: fm, FaultRate: p.FaultRate, RecoverRate: p.RecoverRate,
		Workers: p.Workers, Shard: sh, Chunk: p.Chunk,
		Seed: seed,
	}
	if p.Gamma > 0 {
		cfg.Popularity = sim.PopSpec{Kind: sim.PopZipf, Gamma: p.Gamma}
	}
	switch p.Strategy {
	case "nearest", "":
		cfg.Strategy = sim.StrategySpec{Kind: sim.Nearest}
	case "two-choices", "two":
		cfg.Strategy = sim.StrategySpec{
			Kind: sim.TwoChoices, Radius: p.Radius, Choices: p.Choices,
			WithoutReplacement: p.WithoutReplacement, Beta: p.Beta,
		}
	case "one-choice", "one":
		cfg.Strategy = sim.StrategySpec{Kind: sim.OneChoiceRandom, Radius: p.Radius}
	case "oracle":
		cfg.Strategy = sim.StrategySpec{Kind: sim.Oracle, Radius: p.Radius}
	default:
		return cfg, fmt.Errorf("sweep: unknown strategy %q", p.Strategy)
	}
	if err := sim.Validate(cfg); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Axis is one swept dimension: a point-spec field name and the values
// it takes. The grid is the cross product of all axes over the base
// point, expanded in listed order with the last axis fastest.
type Axis struct {
	// Field names the PointSpec knob the axis sweeps (JSON spelling,
	// e.g. "side", "radius", "churn_rate", "strategy").
	Field string `json:"field"`
	// Values are the swept values; numbers, strings or booleans
	// matching the field's type.
	Values []any `json:"values"`
}

// Spec is a declarative sweep grid: a base point, the axes swept over
// it, and the trial schedule. ParseSpec is the only constructor that
// guarantees a valid, normalized spec.
type Spec struct {
	// Name labels the sweep (artifact metadata; default "sweep").
	Name string `json:"name"`
	// Trials is the number of independent trials per grid point.
	Trials int `json:"trials"`
	// Blocks is the number of trial blocks (shards) each point is split
	// into — the unit of distribution AND the merge partition, so it is
	// part of the reproducible result identity: a sweep at B blocks is
	// bit-identical to sim.RunSeries(cfgs, trials, B). 0 defaults to
	// min(trials, 8).
	Blocks int `json:"blocks,omitempty"`
	// Seed roots all randomness (0 defaults to 2017).
	Seed uint64 `json:"seed,omitempty"`
	// Base is the grid origin every axis assignment is applied to.
	Base PointSpec `json:"base"`
	// Axes are the swept dimensions (may be empty: a one-point grid).
	Axes []Axis `json:"axes,omitempty"`
}

// setters maps axis field names to their PointSpec assignment.
var setters = map[string]func(*PointSpec, any) error{
	"side":                func(p *PointSpec, v any) (err error) { p.Side, err = asInt(v); return },
	"topology":            func(p *PointSpec, v any) (err error) { p.Topology, err = asString(v); return },
	"k":                   func(p *PointSpec, v any) (err error) { p.K, err = asInt(v); return },
	"m":                   func(p *PointSpec, v any) (err error) { p.M, err = asInt(v); return },
	"gamma":               func(p *PointSpec, v any) (err error) { p.Gamma, err = asFloat(v); return },
	"strategy":            func(p *PointSpec, v any) (err error) { p.Strategy, err = asString(v); return },
	"radius":              func(p *PointSpec, v any) (err error) { p.Radius, err = asInt(v); return },
	"choices":             func(p *PointSpec, v any) (err error) { p.Choices, err = asInt(v); return },
	"beta":                func(p *PointSpec, v any) (err error) { p.Beta, err = asFloat(v); return },
	"without_replacement": func(p *PointSpec, v any) (err error) { p.WithoutReplacement, err = asBool(v); return },
	"requests":            func(p *PointSpec, v any) (err error) { p.Requests, err = asInt(v); return },
	"miss":                func(p *PointSpec, v any) (err error) { p.Miss, err = asString(v); return },
	"metrics":             func(p *PointSpec, v any) (err error) { p.Metrics, err = asString(v); return },
	"streams":             func(p *PointSpec, v any) (err error) { p.Streams, err = asString(v); return },
	"index":               func(p *PointSpec, v any) (err error) { p.Index, err = asString(v); return },
	"churn":               func(p *PointSpec, v any) (err error) { p.Churn, err = asString(v); return },
	"churn_rate":          func(p *PointSpec, v any) (err error) { p.ChurnRate, err = asFloat(v); return },
	"faults":              func(p *PointSpec, v any) (err error) { p.Faults, err = asString(v); return },
	"fault_rate":          func(p *PointSpec, v any) (err error) { p.FaultRate, err = asFloat(v); return },
	"recover_rate":        func(p *PointSpec, v any) (err error) { p.RecoverRate, err = asFloat(v); return },
	"workers":             func(p *PointSpec, v any) (err error) { p.Workers, err = asInt(v); return },
	"shard":               func(p *PointSpec, v any) (err error) { p.Shard, err = asString(v); return },
	"chunk":               func(p *PointSpec, v any) (err error) { p.Chunk, err = asInt(v); return },
}

func asInt(v any) (int, error) {
	f, ok := v.(float64)
	if !ok || f != float64(int(f)) {
		return 0, fmt.Errorf("sweep: %v (%T) is not an integer", v, v)
	}
	return int(f), nil
}

func asFloat(v any) (float64, error) {
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("sweep: %v (%T) is not a number", v, v)
	}
	return f, nil
}

func asString(v any) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("sweep: %v (%T) is not a string", v, v)
	}
	return s, nil
}

func asBool(v any) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("sweep: %v (%T) is not a boolean", v, v)
	}
	return b, nil
}

// ParseSpec decodes, normalizes and validates a JSON sweep spec:
// unknown fields and trailing garbage are rejected, defaults (name,
// seed, blocks) are filled in, expansion caps are enforced, and every
// expanded grid point must produce a valid engine configuration. The
// returned spec is ready for Points, Shards and the coordinator.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: bad spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("sweep: trailing data after spec document")
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	if _, err := s.Points(); err != nil {
		return nil, err
	}
	return &s, nil
}

// normalize fills defaults and enforces the structural caps.
func (s *Spec) normalize() error {
	if s.Name == "" {
		s.Name = "sweep"
	}
	if s.Seed == 0 {
		s.Seed = 2017
	}
	if s.Trials <= 0 || s.Trials > maxTrials {
		return fmt.Errorf("sweep: trials must be in [1, %d], got %d", maxTrials, s.Trials)
	}
	if s.Blocks == 0 {
		s.Blocks = min(s.Trials, 8)
	}
	if s.Blocks < 0 || s.Blocks > min(s.Trials, maxBlocks) {
		return fmt.Errorf("sweep: blocks must be in [1, min(trials, %d)], got %d", maxBlocks, s.Blocks)
	}
	if len(s.Axes) > maxAxes {
		return fmt.Errorf("sweep: at most %d axes, got %d", maxAxes, len(s.Axes))
	}
	points := 1
	seen := map[string]bool{}
	for _, ax := range s.Axes {
		if _, ok := setters[ax.Field]; !ok {
			return fmt.Errorf("sweep: unknown axis field %q", ax.Field)
		}
		if seen[ax.Field] {
			return fmt.Errorf("sweep: duplicate axis field %q", ax.Field)
		}
		seen[ax.Field] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("sweep: axis %q has no values", ax.Field)
		}
		if len(ax.Values) > maxAxisValues {
			return fmt.Errorf("sweep: axis %q has %d values (max %d)", ax.Field, len(ax.Values), maxAxisValues)
		}
		points *= len(ax.Values)
		if points > maxPoints {
			return fmt.Errorf("sweep: grid exceeds %d points", maxPoints)
		}
	}
	return nil
}

// checkCaps bounds the numeric knobs of one expanded point so a typo'd
// (or fuzzed) spec cannot demand a multi-terabyte world.
func (p PointSpec) checkCaps() error {
	switch {
	case p.Side < 1 || p.Side > maxSide:
		return fmt.Errorf("sweep: side must be in [1, %d], got %d", maxSide, p.Side)
	case p.K < 1 || p.K > maxK:
		return fmt.Errorf("sweep: k must be in [1, %d], got %d", maxK, p.K)
	case p.M < 1 || p.M > maxM:
		return fmt.Errorf("sweep: m must be in [1, %d], got %d", maxM, p.M)
	case p.Requests < 0 || p.Requests > maxRequests:
		return fmt.Errorf("sweep: requests must be in [0, %d], got %d", maxRequests, p.Requests)
	}
	return nil
}

// Point is one expanded grid point: the resolved point spec, its
// compiled-from configuration and a human-readable axis label.
type Point struct {
	// Index is the point's position in expansion order.
	Index int
	// Label lists the point's axis assignments ("side=20,radius=4"),
	// or "base" for an axis-free spec.
	Label string
	// Spec is the base point with this point's axis values applied.
	Spec PointSpec
	// Config is the validated engine configuration.
	Config sim.Config
}

// formatValue renders one axis value for labels (shortest float form,
// so labels are deterministic across hosts).
func formatValue(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Points expands the grid in deterministic order: axes as listed, last
// axis fastest (row-major). Every point is validated (caps + engine
// configuration).
func (s *Spec) Points() ([]Point, error) {
	total := 1
	for _, ax := range s.Axes {
		total *= len(ax.Values)
	}
	pts := make([]Point, 0, total)
	idx := make([]int, len(s.Axes))
	for i := 0; i < total; i++ {
		p := s.Base
		var label strings.Builder
		for a, ax := range s.Axes {
			v := ax.Values[idx[a]]
			if err := setters[ax.Field](&p, v); err != nil {
				return nil, fmt.Errorf("sweep: axis %q value %d: %w", ax.Field, idx[a], err)
			}
			if a > 0 {
				label.WriteByte(',')
			}
			fmt.Fprintf(&label, "%s=%s", ax.Field, formatValue(v))
		}
		if err := p.checkCaps(); err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, label.String(), err)
		}
		cfg, err := p.Config(s.Seed)
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, label.String(), err)
		}
		lbl := label.String()
		if lbl == "" {
			lbl = "base"
		}
		pts = append(pts, Point{Index: i, Label: lbl, Spec: p, Config: cfg})
		// Odometer increment, last axis fastest.
		for a := len(s.Axes) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(s.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return pts, nil
}

// Hash returns the canonical content hash of the normalized spec
// (hex SHA-256 of its canonical JSON). It names the sweep in journals
// and artifacts, so a resumed coordinator can refuse a journal written
// by a different spec.
func (s *Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A parsed spec re-marshals by construction; anything else is a
		// programming error.
		panic(fmt.Sprintf("sweep: spec does not marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Shard is one leased work unit: the trial block [Lo, Hi) of one grid
// point, content-keyed so completions are idempotent across retries,
// reassignments and coordinator restarts.
type Shard struct {
	// Key is the shard's content hash (see shardKey).
	Key string `json:"key"`
	// Point is the grid-point index the shard belongs to.
	Point int `json:"point"`
	// Block is the shard's block index within the point's partition.
	Block int `json:"block"`
	// Lo is the first trial of the block.
	Lo int `json:"lo"`
	// Hi is one past the last trial of the block.
	Hi int `json:"hi"`
	// Config is the full engine configuration to run.
	Config sim.Config `json:"config"`
}

// shardKey derives the content hash of one (config, block) work unit.
// Hashing the full config JSON (not the spec) makes any shard
// re-runnable standalone: the key pins exactly what must be computed.
func shardKey(specHash string, point, block, lo, hi int, cfg sim.Config) string {
	cb, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("sweep: config does not marshal: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|", specHash, point, block, lo, hi)
	h.Write(cb)
	return hex.EncodeToString(h.Sum(nil))
}

// Shards expands the spec into its full work list in deterministic
// (point, block) order — the merge order of the final reduction.
func (s *Spec) Shards() ([]Shard, error) {
	pts, err := s.Points()
	if err != nil {
		return nil, err
	}
	hash := s.Hash()
	shards := make([]Shard, 0, len(pts)*s.Blocks)
	for _, p := range pts {
		for b := 0; b < s.Blocks; b++ {
			lo, hi := sim.BlockRange(s.Trials, s.Blocks, b)
			shards = append(shards, Shard{
				Key:   shardKey(hash, p.Index, b, lo, hi, p.Config),
				Point: p.Index, Block: b, Lo: lo, Hi: hi,
				Config: p.Config,
			})
		}
	}
	return shards, nil
}
