package sweep

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCrashRecoveryBitIdentical is the end-to-end robustness pin: a
// sweep that suffers a chaos-killed worker mid-shard AND a coordinator
// kill-and-restart mid-run must still produce artifacts byte-identical
// to a direct single-process RunSeries run.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	spec := mustParse(t, `{
	  "name": "crash",
	  "trials": 8,
	  "blocks": 4,
	  "seed": 13,
	  "base": {"side": 6, "k": 20, "m": 2},
	  "axes": [{"field": "strategy", "values": ["nearest", "two-choices"]}]
	}`)
	journal := filepath.Join(t.TempDir(), "crash.journal")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Phase 1: coordinator with journal; one worker that chaos-crashes
	// mid-way through its first shard, abandoning the lease, then keeps
	// working. Run until some — but not all — shards are done, then kill
	// the coordinator (no drain: close the server and journal cold).
	c1, err := NewCoordinator(spec, journal, CoordinatorOptions{LeaseTTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	wA := NewWorker(srv1.URL, WorkerOptions{
		ID:          "crasher",
		Poll:        5 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Chaos:       &Chaos{KillProb: 1, Kills: 1, Seed: 21},
	})
	ctxA, cancelA := context.WithCancel(ctx)
	doneA := make(chan error, 1)
	go func() { doneA <- wA.Run(ctxA) }()

	deadline := time.Now().Add(30 * time.Second)
	for c1.Status().Done < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("phase 1 stalled: %+v", c1.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	midway := c1.Status()
	srv1.Close() // coordinator "crashes": connections drop cold
	cancelA()
	<-doneA
	c1.Close()
	if wA.Abandoned < 1 {
		t.Fatalf("chaos kill did not fire: abandoned=%d", wA.Abandoned)
	}
	if midway.Done >= midway.Total {
		t.Fatalf("phase 1 finished everything (%+v); crash not mid-run", midway)
	}

	// Phase 2: restart the coordinator from the journal. Every
	// acknowledged shard must already be done; the rest is finished by
	// two fresh workers that both double-deliver every completion (both,
	// so the duplicate path is exercised no matter which worker wins the
	// lease race for the remaining shards — phase 1 guarantees at least
	// one is left).
	c2, err := NewCoordinator(spec, journal, CoordinatorOptions{LeaseTTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Status(); st.Done < midway.Done {
		t.Fatalf("journal lost work: recovered %d done, had %d", st.Done, midway.Done)
	}
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	workers := []*Worker{
		NewWorker(srv2.URL, WorkerOptions{
			ID: "dup-a", Poll: 5 * time.Millisecond,
			BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
			Chaos: &Chaos{DupProb: 1, Seed: 31},
		}),
		NewWorker(srv2.URL, WorkerOptions{
			ID: "dup-b", Poll: 5 * time.Millisecond,
			BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
			Chaos: &Chaos{DupProb: 1, Seed: 47},
		}),
	}
	errs := make(chan error, len(workers))
	for _, w := range workers {
		go func(w *Worker) { errs <- w.Run(ctx) }(w)
	}
	if err := c2.Wait(ctx); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	for range workers {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if st := c2.Status(); st.Done != st.Total {
		t.Fatalf("not all shards done: %+v", st)
	}
	if c2.Dupes() < 1 {
		t.Fatalf("duplicate-delivery path not exercised: dupes=%d", c2.Dupes())
	}

	// The verdict: merged artifacts must equal the direct run's bytes.
	merged, err := c2.Merged()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunDirect(spec)
	if err != nil {
		t.Fatal(err)
	}
	var gotCSV, wantCSV, gotJSON, wantJSON strings.Builder
	if err := WriteCSV(&gotCSV, spec, merged); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&wantCSV, spec, direct); err != nil {
		t.Fatal(err)
	}
	if gotCSV.String() != wantCSV.String() {
		t.Fatalf("CSV artifact not byte-identical to direct run:\n got: %s\nwant: %s", gotCSV.String(), wantCSV.String())
	}
	if err := WriteJSON(&gotJSON, spec, merged); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&wantJSON, spec, direct); err != nil {
		t.Fatal(err)
	}
	if gotJSON.String() != wantJSON.String() {
		t.Fatal("JSON artifact not byte-identical to direct run")
	}
}
