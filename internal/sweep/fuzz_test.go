package sweep

import (
	"strings"
	"testing"
)

// FuzzParseSpec extends the parser fuzz convention of internal/sim to
// the sweep grid-spec parser. The contract: ParseSpec never panics, and
// every accepted spec is fully usable — Points and Shards succeed, the
// expansion respects the caps, and the hash is well-formed. Parse-time
// caps make this safe to fuzz: no accepted input can demand a
// multi-terabyte world or a billion-point grid.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		// Valid specs.
		`{"trials":2,"base":{"side":5,"k":10,"m":1}}`,
		specJSON,
		`{"trials":1,"seed":1,"base":{"side":3,"k":4,"m":1},"axes":[{"field":"gamma","values":[0.5,0.8]}]}`,
		`{"trials":4,"blocks":2,"base":{"side":4,"k":8,"m":2,"strategy":"two-choices","radius":2,"without_replacement":true}}`,
		// Junk, truncation, type confusion.
		``, `null`, `0`, `[]`, `"spec"`, `{`, `{"trials":`,
		`{"trials":"two","base":{}}`,
		`{"trials":2,"base":{"side":5,"k":10,"m":1}}{"again":true}`,
		// Unicode and control characters.
		string(rune(0)), "日本語", `{"name":"日本語","trials":1,"base":{"side":5,"k":10,"m":1}}`,
		// Deep nesting.
		strings.Repeat(`{"base":`, 100) + strings.Repeat(`}`, 100),
		strings.Repeat(`[`, 1000),
		// Huge axes and out-of-cap values.
		`{"trials":1,"base":{"side":5,"k":10,"m":1},"axes":[{"field":"side","values":[99999999]}]}`,
		`{"trials":1048577,"base":{"side":5,"k":10,"m":1}}`,
		`{"trials":1,"base":{"side":5,"k":16777217,"m":1}}`,
		`{"trials":1,"base":{"side":5,"k":10,"m":1},"axes":[{"field":"m","values":[` +
			strings.TrimSuffix(strings.Repeat("1,", 2000), ",") + `]}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted specs must be fully usable and inside the caps.
		pts, err := s.Points()
		if err != nil {
			t.Fatalf("accepted spec fails Points: %v", err)
		}
		if len(pts) == 0 || len(pts) > maxPoints {
			t.Fatalf("accepted spec expands to %d points", len(pts))
		}
		shards, err := s.Shards()
		if err != nil {
			t.Fatalf("accepted spec fails Shards: %v", err)
		}
		if len(shards) != len(pts)*s.Blocks {
			t.Fatalf("%d shards for %d points × %d blocks", len(shards), len(pts), s.Blocks)
		}
		if s.Trials < 1 || s.Trials > maxTrials || s.Blocks < 1 || s.Blocks > s.Trials {
			t.Fatalf("accepted spec outside caps: trials=%d blocks=%d", s.Trials, s.Blocks)
		}
		if len(s.Hash()) != 64 {
			t.Fatalf("malformed spec hash %q", s.Hash())
		}
	})
}
