package sweep

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// tinySpec is a one-point, 4-trial, 2-block spec: 2 shards total.
func tinySpec(t *testing.T) *Spec {
	t.Helper()
	return mustParse(t, `{"trials":4,"blocks":2,"seed":7,"base":{"side":5,"k":10,"m":1}}`)
}

// runShardDirect computes a shard's true result in-process.
func runShardDirect(t *testing.T, sh Shard) ShardResult {
	t.Helper()
	world, err := sim.Compile(sh.Config)
	if err != nil {
		t.Fatal(err)
	}
	return NewShardResult(sh.Key, world.RunBlock(uint64(sh.Lo), uint64(sh.Hi)))
}

func TestCoordinatorLeaseCompleteMerge(t *testing.T) {
	spec := tinySpec(t)
	c, err := NewCoordinator(spec, "", CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; ; i++ {
		rep := c.Lease("w")
		if rep.Done {
			break
		}
		if rep.Shard == nil {
			t.Fatalf("round %d: no shard and not done: %+v", i, rep)
		}
		if dup, err := c.Complete(runShardDirect(t, *rep.Shard)); err != nil || dup {
			t.Fatalf("complete: dup=%v err=%v", dup, err)
		}
	}
	st := c.Status()
	if st.Done != 2 || st.Pending != 0 || st.Leased != 0 || st.Failed != 0 {
		t.Fatalf("status %+v", st)
	}

	got, err := c.Merged()
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunDirect(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged diverges from RunDirect:\n got %+v\nwant %+v", got, want)
	}
}

func TestLeaseExpiryReassigns(t *testing.T) {
	spec := tinySpec(t)
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, err := NewCoordinator(spec, "", CoordinatorOptions{LeaseTTL: time.Second, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	first := c.Lease("crasher")
	if first.Shard == nil {
		t.Fatal("no shard")
	}
	// Both shards leased: next lease is empty (poll).
	second := c.Lease("crasher")
	if second.Shard == nil {
		t.Fatal("no second shard")
	}
	if rep := c.Lease("other"); rep.Shard != nil || rep.Done {
		t.Fatalf("over-leased: %+v", rep)
	}

	// Renewal holds the lease across the deadline.
	now = now.Add(800 * time.Millisecond)
	if err := c.Renew(first.Lease); err != nil {
		t.Fatal(err)
	}
	now = now.Add(800 * time.Millisecond)
	// first was renewed at t+800ms (deadline t+1.8s): still held at
	// t+1.6s. second expired at t+1s: reassigned.
	rep := c.Lease("other")
	if rep.Shard == nil || rep.Shard.Key != second.Shard.Key {
		t.Fatalf("expected second shard reassigned, got %+v", rep)
	}
	if c.Expiries() != 1 {
		t.Fatalf("expiries = %d, want 1", c.Expiries())
	}
	// The expired lease is gone for renewal.
	if err := c.Renew(second.Lease); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("renew of expired lease: %v", err)
	}

	// The crasher's result is still accepted after expiry (content-keyed,
	// at-least-once): the reassigned worker's copy then counts duplicate.
	res := runShardDirect(t, *second.Shard)
	if dup, err := c.Complete(res); err != nil || dup {
		t.Fatalf("late complete: dup=%v err=%v", dup, err)
	}
	if dup, err := c.Complete(res); err != nil || !dup {
		t.Fatalf("duplicate complete: dup=%v err=%v", dup, err)
	}
	if c.Dupes() != 1 {
		t.Fatalf("dupes = %d, want 1", c.Dupes())
	}
}

func TestCompleteRejectsCorruptAndForeign(t *testing.T) {
	spec := tinySpec(t)
	c, err := NewCoordinator(spec, "", CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	shards, _ := spec.Shards()
	good := runShardDirect(t, shards[0])

	// Unknown key.
	foreign := good
	foreign.Key = strings.Repeat("ab", 32)
	if _, err := c.Complete(foreign); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("foreign key: %v", err)
	}
	// Corrupt payload (hash no longer matches).
	corrupt := good
	corrupt.Agg.Trials++
	if _, err := c.Complete(corrupt); err == nil {
		t.Fatal("corrupt result accepted")
	}
	// Mismatched duplicate: same key, different (self-consistent) agg.
	if _, err := c.Complete(good); err != nil {
		t.Fatal(err)
	}
	other := good
	other.Agg.Trials++
	other.Hash = aggHash(other.Agg)
	if _, err := c.Complete(other); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("mismatched duplicate: %v", err)
	}
}

func TestFailMaxAttempts(t *testing.T) {
	spec := tinySpec(t)
	c, err := NewCoordinator(spec, "", CoordinatorOptions{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	shards, _ := spec.Shards()
	key := shards[0].Key

	if err := c.Fail(key, "boom 1"); err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); st.Failed != 0 || st.Pending != 2 {
		t.Fatalf("after 1 failure: %+v", st)
	}
	if err := c.Fail(key, "boom 2"); err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); st.Failed != 1 {
		t.Fatalf("after max failures: %+v", st)
	}

	// Finish the surviving shard; Wait must surface the recorded failure.
	if _, err := c.Complete(runShardDirect(t, shards[1])); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err == nil || !strings.Contains(err.Error(), "boom 2") {
		t.Fatalf("Wait = %v, want recorded failure", err)
	}
	// A failed sweep must not merge silently.
	if _, err := c.Merged(); err == nil {
		t.Fatal("merged a sweep with a failed shard")
	}
}

func TestDrainStopsLeasing(t *testing.T) {
	spec := tinySpec(t)
	c, err := NewCoordinator(spec, "", CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first := c.Lease("w")
	if first.Shard == nil {
		t.Fatal("no shard")
	}
	c.Drain()
	if rep := c.Lease("w"); !rep.Draining {
		t.Fatalf("lease during drain: %+v", rep)
	}
	// In-flight completions still land.
	if _, err := c.Complete(runShardDirect(t, *first.Shard)); err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); st.Done != 1 || !st.Draining {
		t.Fatalf("status %+v", st)
	}
	// With the only lease settled, a draining coordinator's Wait returns
	// even though a shard is still pending (it resumes from the journal
	// next invocation) — the property SIGTERM handling depends on.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("Wait after drain: %v", err)
	}
}

func TestJournalRecovery(t *testing.T) {
	spec := tinySpec(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	c, err := NewCoordinator(spec, path, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shards, _ := spec.Shards()
	if _, err := c.Complete(runShardDirect(t, shards[0])); err != nil {
		t.Fatal(err)
	}
	c.Close() // "kill" the coordinator

	// Restart: shard 0 must already be done.
	c2, err := NewCoordinator(spec, path, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Status(); st.Done != 1 || st.Pending != 1 {
		t.Fatalf("recovered status %+v", st)
	}
	rep := c2.Lease("w")
	if rep.Shard == nil || rep.Shard.Key != shards[1].Key {
		t.Fatalf("recovered coordinator leased %+v, want shard 1", rep)
	}
	if _, err := c2.Complete(runShardDirect(t, *rep.Shard)); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Merged()
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunDirect(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("journal-recovered merge diverges from RunDirect")
	}
}

func TestJournalTornTailDropped(t *testing.T) {
	spec := tinySpec(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	c, err := NewCoordinator(spec, path, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shards, _ := spec.Shards()
	if _, err := c.Complete(runShardDirect(t, shards[0])); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Tear the tail: append half a record, as a crash mid-write would.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"done","res":{"key":"beef`)
	f.Close()

	_, recovered, dropped, err := OpenJournal(path, spec.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || dropped != 1 {
		t.Fatalf("recovered %d dropped %d, want 1/1", len(recovered), dropped)
	}
}

func TestJournalRefusesForeignSpec(t *testing.T) {
	spec := tinySpec(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _, _, err := OpenJournal(path, spec.Hash())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	other := mustParse(t, `{"trials":2,"base":{"side":5,"k":10,"m":1}}`)
	if _, err := NewCoordinator(other, path, CoordinatorOptions{}); err == nil {
		t.Fatal("coordinator adopted a foreign journal")
	}
}

func TestWorkerBackoffBounds(t *testing.T) {
	w := NewWorker("http://invalid", WorkerOptions{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	})
	for attempt := 0; attempt < 64; attempt++ {
		d := w.backoff(attempt)
		if d < 5*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside [base/2, max]", attempt, d)
		}
	}
	// Early attempts must actually grow toward the cap.
	if d := w.backoff(10); d < 50*time.Millisecond {
		t.Fatalf("backoff(10) = %v, want saturated near max", d)
	}
}

func TestHTTPWorkQueueWithFlakes(t *testing.T) {
	spec := tinySpec(t)
	c, err := NewCoordinator(spec, "", CoordinatorOptions{FlakeProb: 0.3, FlakeSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	w := NewWorker(srv.URL, WorkerOptions{
		ID:          "flaketest",
		Poll:        5 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if w.Shards != 2 {
		t.Fatalf("worker completed %d shards, want 2", w.Shards)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := c.Merged()
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunDirect(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("flaky-path merge diverges from RunDirect")
	}
}

func TestHTTPBodyCapAndBadJSON(t *testing.T) {
	spec := tinySpec(t)
	c, err := NewCoordinator(spec, "", CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/lease", "application/json",
		strings.NewReader(`{"worker":"`+strings.Repeat("x", maxBodyBytes+1)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %s, want 413", resp.Status)
	}

	resp, err = http.Post(srv.URL+"/v1/complete", "application/json", strings.NewReader(`{garbage`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %s, want 400", resp.Status)
	}
}

func TestArtifactWriters(t *testing.T) {
	spec := tinySpec(t)
	aggs, err := RunDirect(spec)
	if err != nil {
		t.Fatal(err)
	}
	var csvA, csvB, jsonA, jsonB strings.Builder
	if err := WriteCSV(&csvA, spec, aggs); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csvB, spec, aggs); err != nil {
		t.Fatal(err)
	}
	if csvA.String() != csvB.String() {
		t.Fatal("CSV writer not deterministic")
	}
	if !strings.HasPrefix(csvA.String(), "point,label,trials,max_load_mean") {
		t.Fatalf("CSV header wrong: %.80s", csvA.String())
	}
	if err := WriteJSON(&jsonA, spec, aggs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jsonB, spec, aggs); err != nil {
		t.Fatal(err)
	}
	if jsonA.String() != jsonB.String() {
		t.Fatal("JSON writer not deterministic")
	}
	if !strings.Contains(jsonA.String(), spec.Hash()) {
		t.Fatal("JSON artifact missing spec hash")
	}
	// Length mismatch is an error, not a truncated artifact.
	if err := WriteCSV(&csvA, spec, aggs[:0]); err == nil {
		t.Fatal("short aggregate slice accepted")
	}
}

func TestMergeShardsMissing(t *testing.T) {
	spec := tinySpec(t)
	shards, _ := spec.Shards()
	results := map[string]ShardResult{shards[0].Key: runShardDirect(t, shards[0])}
	if _, err := MergeShards(spec, results); err == nil {
		t.Fatal("merged with a missing shard")
	}
}
