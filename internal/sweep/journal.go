package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalRecord is one line of the append-only coordinator journal.
// The first line of a journal is a spec record naming the sweep; every
// later line is a done record carrying one verified shard result.
type journalRecord struct {
	T    string       `json:"t"`              // "spec" or "done"
	Hash string       `json:"hash,omitempty"` // spec hash (t = "spec")
	Res  *ShardResult `json:"res,omitempty"`  // completed shard (t = "done")
}

// Journal is the coordinator's append-only completion log: one JSON
// line per finished shard, fsync'd before the completion is
// acknowledged, so a killed coordinator restarted over the same file
// resumes with every acknowledged shard already done. Records are
// self-verifying (ShardResult.Hash), so a torn tail line — the only
// damage an append-only file can suffer from a crash — is detected and
// dropped on recovery instead of poisoning the merge.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (or creates) the journal at path for the sweep
// identified by specHash. A fresh file is stamped with a spec record; an
// existing file is recovered: its spec record must match specHash (a
// journal from a different sweep is refused), and every verifiable done
// record is returned so the coordinator can mark those shards complete.
// Unparseable or unverifiable lines (torn writes) are counted in
// dropped, not treated as fatal.
func OpenJournal(path, specHash string) (j *Journal, recovered []ShardResult, dropped int, err error) {
	if _, serr := os.Stat(path); serr == nil {
		recovered, dropped, err = recoverJournal(path, specHash)
		if err != nil {
			return nil, nil, 0, err
		}
		f, ferr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return nil, nil, 0, ferr
		}
		return &Journal{f: f, path: path}, recovered, dropped, nil
	}
	f, ferr := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if ferr != nil {
		return nil, nil, 0, ferr
	}
	j = &Journal{f: f, path: path}
	if err := j.append(journalRecord{T: "spec", Hash: specHash}); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return j, nil, 0, nil
}

// recoverJournal replays an existing journal file.
func recoverJournal(path, specHash string) (results []ShardResult, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawSpec := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil {
			dropped++ // torn write
			continue
		}
		switch rec.T {
		case "spec":
			if rec.Hash != specHash {
				return nil, 0, fmt.Errorf("sweep: journal %s belongs to spec %.12s, not %.12s (remove it to start over)",
					path, rec.Hash, specHash)
			}
			sawSpec = true
		case "done":
			if rec.Res == nil || rec.Res.Verify() != nil {
				dropped++
				continue
			}
			results = append(results, *rec.Res)
		default:
			dropped++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if !sawSpec {
		return nil, 0, fmt.Errorf("sweep: journal %s has no spec record (remove it to start over)", path)
	}
	return results, dropped, nil
}

// append writes one record and forces it to stable storage.
func (j *Journal) append(rec journalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Append records one completed shard. It returns only after the record
// is fsync'd — the durability point the completion ack depends on.
func (j *Journal) Append(res ShardResult) error {
	return j.append(journalRecord{T: "done", Res: &res})
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
