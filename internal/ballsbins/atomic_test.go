package ballsbins

import (
	"sync"
	"testing"
)

func TestAtomicLoadsBasics(t *testing.T) {
	l := NewAtomicLoads(4)
	if l.N() != 4 {
		t.Fatalf("N = %d, want 4", l.N())
	}
	if got := l.Add(2); got != 1 {
		t.Fatalf("first Add returned %d, want 1", got)
	}
	if got := l.Add(2); got != 2 {
		t.Fatalf("second Add returned %d, want 2", got)
	}
	l.Add(0)
	if l.Load(2) != 2 || l.Load(0) != 1 || l.Load(1) != 0 {
		t.Fatalf("loads = [%d %d %d %d]", l.Load(0), l.Load(1), l.Load(2), l.Load(3))
	}
	if l.Max() != 2 {
		t.Fatalf("Max = %d, want 2", l.Max())
	}
	if l.Total() != 3 {
		t.Fatalf("Total = %d, want 3", l.Total())
	}
	l.Reset()
	if l.Max() != 0 || l.Total() != 0 {
		t.Fatalf("after Reset: Max=%d Total=%d", l.Max(), l.Total())
	}
}

func TestNewAtomicLoadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAtomicLoads(0) did not panic")
		}
	}()
	NewAtomicLoads(0)
}

// TestAtomicLoadsConcurrentAdds hammers one vector from many goroutines
// and checks conservation plus the max-over-Add-returns invariant. Run
// under -race this also proves the access pattern is data-race-free.
func TestAtomicLoadsConcurrentAdds(t *testing.T) {
	const (
		workers = 8
		perW    = 10000
		bins    = 64
	)
	l := NewAtomicLoads(bins)
	maxes := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := 0
			for i := 0; i < perW; i++ {
				// Deterministic skewed spray; reads interleave with
				// other workers' adds, as in the racy engine.
				b := (i*i + w) % bins
				_ = l.Load((b + 1) % bins)
				if v := l.Add(b); v > m {
					m = v
				}
			}
			maxes[w] = m
		}(w)
	}
	wg.Wait()
	if got, want := l.Total(), workers*perW; got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	m := 0
	for _, v := range maxes {
		if v > m {
			m = v
		}
	}
	if got := l.Max(); got != m {
		t.Fatalf("Max scan = %d, max over Add returns = %d", got, m)
	}
}
