package ballsbins

import (
	"fmt"
	"sync/atomic"
)

// AtomicLoads is the lock-free shared-memory variant of Loads used by the
// simulation engine's ShardRacy discipline: P workers place balls into one
// shared vector with atomic increments while reading other bins' loads
// without any synchronization beyond the atomics themselves. Reads are
// therefore *stale* — a worker may observe a bin's load from before
// another worker's in-flight increments — which is exactly the
// outdated-information allocation model the racy mode studies. Every
// access is atomic, so the vector is data-race-free by construction even
// though its results are scheduling-dependent.
type AtomicLoads struct {
	bins []int32
}

// NewAtomicLoads returns an all-zero atomic load vector over n bins.
func NewAtomicLoads(n int) *AtomicLoads {
	if n <= 0 {
		panic(fmt.Sprintf("ballsbins: need n > 0 bins, got %d", n))
	}
	return &AtomicLoads{bins: make([]int32, n)}
}

// N returns the number of bins.
func (l *AtomicLoads) N() int { return len(l.bins) }

// Load returns the current load of bin i (an atomic, possibly stale read
// when other workers are concurrently adding).
func (l *AtomicLoads) Load(i int) int {
	return int(atomic.LoadInt32(&l.bins[i]))
}

// Add places one ball into bin i and returns the bin's new load. The
// return value lets each worker maintain a running maximum without a
// shared max cell: the true maximum load is the max over all Add returns.
func (l *AtomicLoads) Add(i int) int {
	return int(atomic.AddInt32(&l.bins[i], 1))
}

// Max scans for the current maximum load. Exact only while no Adds are in
// flight (e.g. at a trial barrier); concurrent callers get a lower bound.
func (l *AtomicLoads) Max() int {
	var m int32
	for i := range l.bins {
		if v := atomic.LoadInt32(&l.bins[i]); v > m {
			m = v
		}
	}
	return int(m)
}

// Total returns the number of balls placed so far (exact at quiescence).
func (l *AtomicLoads) Total() int {
	t := 0
	for i := range l.bins {
		t += int(atomic.LoadInt32(&l.bins[i]))
	}
	return t
}

// Reset zeroes the vector for a new trial. Callers must guarantee
// quiescence (no concurrent Add/Load); the engine resets only while its
// workers are parked at a barrier, which establishes the happens-before
// edge that makes the plain clear race-free.
func (l *AtomicLoads) Reset() { clear(l.bins) }
