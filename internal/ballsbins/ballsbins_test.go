package ballsbins

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestLoadsBasics(t *testing.T) {
	l := NewLoads(5)
	if l.N() != 5 || l.Max() != 0 || l.Total() != 0 {
		t.Fatal("fresh loads not zero")
	}
	l.Add(2)
	l.Add(2)
	l.Add(4)
	if l.Load(2) != 2 || l.Load(4) != 1 || l.Load(0) != 0 {
		t.Fatalf("loads wrong: %v %v %v", l.Load(2), l.Load(4), l.Load(0))
	}
	if l.Max() != 2 || l.Total() != 3 {
		t.Fatalf("max=%d total=%d", l.Max(), l.Total())
	}
	h := l.Histogram()
	if h[0] != 3 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestNewLoadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLoads(0) did not panic")
		}
	}()
	NewLoads(0)
}

func TestPickLesser(t *testing.T) {
	r := xrand.NewSource(0).Stream(0)
	l := NewLoads(3)
	l.Add(0)
	if got := l.PickLesser(0, 1, r); got != 1 {
		t.Fatalf("PickLesser chose loaded bin %d", got)
	}
	if got := l.PickLesser(1, 0, r); got != 1 {
		t.Fatalf("PickLesser chose loaded bin %d (swapped)", got)
	}
	// Ties are ~uniform.
	c0 := 0
	for i := 0; i < 10000; i++ {
		if l.PickLesser(1, 2, r) == 1 {
			c0++
		}
	}
	if c0 < 4500 || c0 > 5500 {
		t.Fatalf("tie break picked first %d/10000 times", c0)
	}
}

func TestProcessesConserveBalls(t *testing.T) {
	prop := func(seed uint64, nRaw, mRaw uint8, dRaw uint8) bool {
		n := int(nRaw)%50 + 1
		m := int(mRaw) % 200
		d := int(dRaw)%4 + 1
		r := xrand.NewSource(seed).Stream(0)
		if OneChoice(n, m, r).Total() != m {
			return false
		}
		if DChoice(n, m, d, r).Total() != m {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DChoice d=0 did not panic")
		}
	}()
	DChoice(10, 10, 0, xrand.NewSource(0).Stream(0))
}

func TestMaxLoadMonotoneInChoices(t *testing.T) {
	// Averaged over trials, more choices ⇒ lower (or equal) max load.
	src := xrand.NewSource(42)
	n, m, trials := 1000, 1000, 40
	avg := func(d int) float64 {
		s := 0
		for i := 0; i < trials; i++ {
			s += DChoice(n, m, d, src.Stream(uint64(d*1000+i))).Max()
		}
		return float64(s) / float64(trials)
	}
	a1, a2, a4 := avg(1), avg(2), avg(4)
	if !(a1 > a2 && a2 >= a4) {
		t.Fatalf("max load not decreasing in d: d=1:%.2f d=2:%.2f d=4:%.2f", a1, a2, a4)
	}
	// The d=1 → d=2 gap must be substantial (exponential improvement):
	// for n = 1000, one-choice ≈ 5-7 and two-choice ≈ 2-3.
	if a1-a2 < 1.5 {
		t.Fatalf("two-choice improvement too small: %.2f vs %.2f", a1, a2)
	}
}

func TestTwoChoiceMatchesTheoryScale(t *testing.T) {
	// For n = m = 4096, two-choice max load should hug
	// log log n / log 2 + O(1) ≈ 3.05 + O(1): assert it's within [2, 6].
	src := xrand.NewSource(7)
	sum := 0
	const trials = 25
	for i := 0; i < trials; i++ {
		sum += TwoChoice(4096, 4096, src.Stream(uint64(i))).Max()
	}
	got := float64(sum) / trials
	if got < 2 || got > 6 {
		t.Fatalf("two-choice avg max load %v, want within [2, 6] near theory %.2f",
			got, TheoryTwoChoiceMax(4096))
	}
}

func TestGraphAllocateCompleteEqualsTwoChoice(t *testing.T) {
	// On K_n the graph process is the two-choice process without
	// self-pairs; average max loads should agree within noise.
	src := xrand.NewSource(11)
	n := 256
	kn := CompleteGraph(n)
	const trials = 60
	sumG, sumT := 0, 0
	for i := 0; i < trials; i++ {
		sumG += GraphAllocate(kn, n, src.Stream(uint64(i))).Max()
		sumT += TwoChoice(n, n, src.Stream(uint64(1000+i))).Max()
	}
	ag, at := float64(sumG)/trials, float64(sumT)/trials
	if diff := ag - at; diff < -0.75 || diff > 0.75 {
		t.Fatalf("K_n graph alloc %.2f vs two-choice %.2f differ beyond noise", ag, at)
	}
}

func TestGraphAllocateRingWorseThanComplete(t *testing.T) {
	// Theorem 5 needs ∆ ≥ polylog; the ring (∆=2) must lose to K_n.
	src := xrand.NewSource(13)
	n := 4096
	ring := RingGraph(n)
	kn := CompleteGraph(n)
	const trials = 30
	sr, sk := 0, 0
	for i := 0; i < trials; i++ {
		sr += GraphAllocate(ring, n, src.Stream(uint64(i))).Max()
		sk += GraphAllocate(kn, n, src.Stream(uint64(500+i))).Max()
	}
	if !(float64(sr)/trials > float64(sk)/trials+0.4) {
		t.Fatalf("ring avg %.2f should exceed complete avg %.2f markedly",
			float64(sr)/trials, float64(sk)/trials)
	}
}

func TestGraphAllocatePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty graph did not panic")
		}
	}()
	GraphAllocate(&EdgeList{Nodes: 3}, 1, xrand.NewSource(0).Stream(0))
}

func TestEdgeLists(t *testing.T) {
	kn := CompleteGraph(5)
	if kn.NumEdges() != 10 || kn.NumNodes() != 5 {
		t.Fatalf("K_5: %d edges %d nodes", kn.NumEdges(), kn.NumNodes())
	}
	ring := RingGraph(5)
	if ring.NumEdges() != 5 {
		t.Fatalf("C_5: %d edges", ring.NumEdges())
	}
	u, v := ring.Edge(4)
	if u != 4 || v != 0 {
		t.Fatalf("C_5 closing edge (%d,%d)", u, v)
	}
}

func TestTheoryCurvesMonotone(t *testing.T) {
	if !(TheoryOneChoiceMax(1000) > TheoryTwoChoiceMax(1000)) {
		t.Fatal("one-choice theory must exceed two-choice theory")
	}
	if !(TheoryOneChoiceMax(100000) > TheoryOneChoiceMax(100)) {
		t.Fatal("one-choice theory must grow with n")
	}
	if TheoryTwoChoiceMax(4) < 0 || TheoryOneChoiceMax(2) < 0 {
		t.Fatal("theory curves must be non-negative for tiny n")
	}
}

func BenchmarkTwoChoice(b *testing.B) {
	src := xrand.NewSource(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TwoChoice(10000, 10000, src.Stream(uint64(i)))
	}
}

func BenchmarkGraphAllocateRing(b *testing.B) {
	ring := RingGraph(10000)
	src := xrand.NewSource(2)
	for i := 0; i < b.N; i++ {
		_ = GraphAllocate(ring, 10000, src.Stream(uint64(i)))
	}
}
