package ballsbins

import "fmt"

// loadReader is the read side of a load vector — structurally identical
// to core.LoadReader (declared locally to keep this leaf package free of
// engine imports), so a WeightedLoads satisfies the strategies' reader
// interface wherever a Loads or AtomicLoads does.
type loadReader interface {
	Load(i int) int
}

// WeightedLoads presents a capacity-normalized view of an underlying
// load vector: Load(u) returns inner.Load(u)·mult[u], where mult[u] is a
// per-node multiplier inversely proportional to node u's service
// capacity C_u. Comparing weighted loads is comparing load/C_u — the
// heterogeneous two-choices rule — without leaving integer arithmetic:
// the engine scales every multiplier by a common factor (LCM of the
// capacity range) so the division never rounds. Writes stay on the raw
// inner vector (the wrapper has no Add); only the comparison view is
// weighted, so MaxLoad and the per-trial accounting keep reporting raw
// request counts.
//
// The zero WeightedLoads is empty; Bind installs the view in place so
// per-trial rebinding allocates nothing.
type WeightedLoads struct {
	inner loadReader
	mult  []int32
}

// NewWeightedLoads returns a weighted view of inner under mult.
func NewWeightedLoads(inner loadReader, mult []int32) *WeightedLoads {
	w := &WeightedLoads{}
	w.Bind(inner, mult)
	return w
}

// Bind installs (inner, mult) as the wrapped vector and multipliers,
// reusing the receiver. Every multiplier must be positive.
func (w *WeightedLoads) Bind(inner loadReader, mult []int32) {
	if inner == nil {
		panic("ballsbins: WeightedLoads needs an inner load vector")
	}
	for i, m := range mult {
		if m <= 0 {
			panic(fmt.Sprintf("ballsbins: WeightedLoads multiplier %d for bin %d must be positive", m, i))
		}
	}
	w.inner = inner
	w.mult = mult
}

// Load returns the capacity-weighted load of bin i.
func (w *WeightedLoads) Load(i int) int { return w.inner.Load(i) * int(w.mult[i]) }

// Inner returns the wrapped raw load vector.
func (w *WeightedLoads) Inner() loadReader { return w.inner }
