// Package ballsbins implements the classical balanced-allocation models the
// paper builds on: the one-choice process (max load Θ(log n / log log n)),
// the d-choice process of Azar et al. (max load log log n / log d + Θ(1)),
// and the graph-restricted allocation of Kenthapadi & Panigrahy (Theorem 5),
// where each ball picks a random edge of a bin graph and goes to the
// lighter endpoint. These serve as analytic baselines for the cache-network
// strategies and as property-test oracles.
package ballsbins

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Loads tracks per-bin occupancy during an allocation process.
type Loads struct {
	bins []int32
	max  int32
}

// NewLoads returns an all-zero load vector over n bins.
func NewLoads(n int) *Loads {
	if n <= 0 {
		panic(fmt.Sprintf("ballsbins: need n > 0 bins, got %d", n))
	}
	return &Loads{bins: make([]int32, n)}
}

// N returns the number of bins.
func (l *Loads) N() int { return len(l.bins) }

// Load returns the current load of bin i.
func (l *Loads) Load(i int) int { return int(l.bins[i]) }

// Add places one ball into bin i.
func (l *Loads) Add(i int) {
	l.bins[i]++
	if l.bins[i] > l.max {
		l.max = l.bins[i]
	}
}

// Max returns the current maximum load.
func (l *Loads) Max() int { return int(l.max) }

// Total returns the number of balls placed so far.
func (l *Loads) Total() int {
	t := 0
	for _, b := range l.bins {
		t += int(b)
	}
	return t
}

// Histogram returns counts[v] = number of bins with load exactly v.
func (l *Loads) Histogram() []int {
	h := make([]int, l.max+1)
	for _, b := range l.bins {
		h[b]++
	}
	return h
}

// PickLesser returns whichever of bins a, b currently has the smaller
// load, breaking ties uniformly at random — the paper's tie rule.
func (l *Loads) PickLesser(a, b int, r *rand.Rand) int {
	switch {
	case l.bins[a] < l.bins[b]:
		return a
	case l.bins[b] < l.bins[a]:
		return b
	case r.IntN(2) == 0:
		return a
	default:
		return b
	}
}

// OneChoice throws m balls into n bins uniformly and returns the loads.
func OneChoice(n, m int, r *rand.Rand) *Loads {
	l := NewLoads(n)
	for i := 0; i < m; i++ {
		l.Add(r.IntN(n))
	}
	return l
}

// DChoice throws m balls into n bins; each ball samples d independent
// uniform bins (with replacement, the Azar et al. model) and joins the
// least loaded, ties broken uniformly among the minima.
func DChoice(n, m, d int, r *rand.Rand) *Loads {
	if d < 1 {
		panic(fmt.Sprintf("ballsbins: need d >= 1 choices, got %d", d))
	}
	l := NewLoads(n)
	for i := 0; i < m; i++ {
		best := r.IntN(n)
		ties := 1
		for c := 1; c < d; c++ {
			cand := r.IntN(n)
			switch {
			case l.bins[cand] < l.bins[best]:
				best = cand
				ties = 1
			case l.bins[cand] == l.bins[best] && cand != best:
				// Reservoir-style uniform tie breaking among minima.
				ties++
				if r.IntN(ties) == 0 {
					best = cand
				}
			}
		}
		l.Add(best)
	}
	return l
}

// TwoChoice is DChoice with d = 2, the paper's Example 1 reference model.
func TwoChoice(n, m int, r *rand.Rand) *Loads { return DChoice(n, m, 2, r) }

// EdgeGraph is the minimal bin-graph interface for the Kenthapadi–
// Panigrahy process: a set of edges sampled by index.
type EdgeGraph interface {
	// NumEdges returns e(G).
	NumEdges() int
	// Edge returns the endpoints of edge i.
	Edge(i int) (u, v int)
	// NumNodes returns the number of bins.
	NumNodes() int
}

// GraphAllocate throws m balls: each ball picks a uniform random edge of g
// and joins the lighter endpoint (ties uniform). This is the allocation
// process of Theorem 5 ([10] in the paper).
func GraphAllocate(g EdgeGraph, m int, r *rand.Rand) *Loads {
	if g.NumEdges() == 0 {
		panic("ballsbins: graph has no edges")
	}
	l := NewLoads(g.NumNodes())
	for i := 0; i < m; i++ {
		u, v := g.Edge(r.IntN(g.NumEdges()))
		l.Add(l.PickLesser(u, v, r))
	}
	return l
}

// EdgeList is a concrete EdgeGraph backed by a slice of endpoint pairs.
type EdgeList struct {
	Nodes int
	Ends  [][2]int32
}

// NumEdges implements EdgeGraph.
func (e *EdgeList) NumEdges() int { return len(e.Ends) }

// Edge implements EdgeGraph.
func (e *EdgeList) Edge(i int) (int, int) { return int(e.Ends[i][0]), int(e.Ends[i][1]) }

// NumNodes implements EdgeGraph.
func (e *EdgeList) NumNodes() int { return e.Nodes }

// CompleteGraph returns the edge list of K_n; GraphAllocate on it recovers
// the unrestricted two-choice process (up to self-pair sampling).
func CompleteGraph(n int) *EdgeList {
	e := &EdgeList{Nodes: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			e.Ends = append(e.Ends, [2]int32{int32(u), int32(v)})
		}
	}
	return e
}

// RingGraph returns the cycle C_n, a maximally sparse regular graph where
// the power of two choices is known to fail (max load Ω(log n)).
func RingGraph(n int) *EdgeList {
	e := &EdgeList{Nodes: n}
	for u := 0; u < n; u++ {
		e.Ends = append(e.Ends, [2]int32{int32(u), int32((u + 1) % n)})
	}
	return e
}

// TheoryOneChoiceMax returns the asymptotic one-choice maximum load for
// m = n balls: log n / log log n (leading order).
func TheoryOneChoiceMax(n int) float64 {
	ln := math.Log(float64(n))
	if ln <= 1 {
		return 1
	}
	return ln / math.Log(ln)
}

// TheoryTwoChoiceMax returns the asymptotic two-choice maximum load for
// m = n balls: log log n / log 2 (leading order).
func TheoryTwoChoiceMax(n int) float64 {
	ln := math.Log(float64(n))
	if ln <= 1 {
		return 1
	}
	return math.Log(ln) / math.Ln2
}

// Reset zeroes the load vector so the allocation can be reused for a new
// trial without reallocating the bins.
func (l *Loads) Reset() {
	clear(l.bins)
	l.max = 0
}
