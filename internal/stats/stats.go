// Package stats provides the summary statistics, histograms and
// shape-fitting helpers the experiment harness uses to compare measured
// curves against the paper's asymptotic predictions (log n, log log n,
// √(K/M), Θ(r), ...).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Summary holds streaming moments of a sample (Welford's algorithm), so
// trial results can be folded in one at a time without storing them all.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another summary into s (parallel reduction). Min/max and
// moments combine exactly (Chan et al. pairwise update).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	d := o.mean - s.mean
	tot := n1 + n2
	s.mean += d * n2 / tot
	s.m2 += o.m2 + d*d*n1*n2/tot
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// summaryWire is the JSON shape of a Summary. The moments travel as raw
// float64 values: encoding/json emits the shortest representation that
// round-trips exactly, so a marshal/unmarshal cycle is bit-faithful —
// the property the sweep coordinator's merge relies on to keep
// distributed artifacts byte-identical to single-host runs.
type summaryWire struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON implements json.Marshaler, exposing the streaming moments.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryWire{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON implements json.Unmarshaler; it restores the exact
// moments written by MarshalJSON.
func (s *Summary) UnmarshalJSON(b []byte) error {
	var w summaryWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.N < 0 {
		return fmt.Errorf("stats: summary with negative n %d", w.N)
	}
	*s = Summary{n: w.N, mean: w.Mean, m2: w.M2, min: w.Min, max: w.Max}
	return nil
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// SE returns the standard error of the mean.
func (s *Summary) SE() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.SE() }

// String renders "mean ± ci95 (n=...)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.N())
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the data using the
// nearest-rank method. It sorts a copy; intended for end-of-run reporting.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), data...)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	idx := int(math.Ceil(q*float64(len(c)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c[idx]
}

// LinearFit computes the least-squares line y = a + b·x and the Pearson
// correlation r² over paired samples. It panics on mismatched or empty
// input (programming error in the harness, not data).
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic(fmt.Sprintf("stats: LinearFit needs matched non-empty slices, got %d/%d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return my, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// FitAgainst regresses ys against shape(xs): returns the fit of
// y = a + b·shape(x) plus r². Use it to test, e.g., max load vs log n
// (Theorem 1) or vs log log n (Theorem 4).
func FitAgainst(xs, ys []float64, shape func(float64) float64) (a, b, r2 float64) {
	tx := make([]float64, len(xs))
	for i, x := range xs {
		tx[i] = shape(x)
	}
	return LinearFit(tx, ys)
}

// Shapes used throughout the experiment harness.
var (
	// Log is the natural log shape for Θ(log n) laws.
	Log = func(x float64) float64 { return math.Log(x) }
	// LogLog is the iterated log shape for Θ(log log n) laws; it clamps
	// below at x = e so small pilot points don't produce -Inf.
	LogLog = func(x float64) float64 {
		l := math.Log(x)
		if l < 1 {
			l = 1
		}
		return math.Log(l)
	}
	// Sqrt is the √x shape for Θ(√(K/M)) communication-cost laws.
	Sqrt = math.Sqrt
	// Identity fits y against x directly.
	Identity = func(x float64) float64 { return x }
)

// GrowthExponent estimates p in y ∝ x^p from the endpoints of a log-log
// regression over all points. Used to verify, e.g., C ∝ K^{1-γ/2} in the
// Theorem 3 Zipf table.
func GrowthExponent(xs, ys []float64) float64 {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN()
	}
	_, b, _ := LinearFit(lx, ly)
	return b
}

// Histogram is a fixed-width integer histogram for load distributions.
type Histogram struct {
	counts []int64
	total  int64
}

// NewHistogram returns a histogram for values in [0, maxValue].
func NewHistogram(maxValue int) *Histogram {
	return &Histogram{counts: make([]int64, maxValue+1)}
}

// Observe records value v, clamping into range.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	h.counts[v]++
	h.total++
}

// Merge adds another histogram's mass (sizes must match).
func (h *Histogram) Merge(o *Histogram) {
	if len(h.counts) != len(o.counts) {
		panic("stats: merging histograms of different sizes")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// Count returns the number of observations equal to v (after clamping).
func (h *Histogram) Count(v int) int64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the histogram mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, c := range h.counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.total)
}

// Accumulator streams integer-valued observations into constant memory:
// Welford moments and running min/max (via Summary) plus a bounded
// clamping histogram for quantiles. It is the unmaterialized-metrics
// building block of the simulation engine's streaming mode — a trial folds
// every delivery (and every node's final load) into one of these instead
// of materializing O(n) metric vectors, so memory stays flat as worlds
// grow to 10⁶ nodes. Reset reuses the histogram arena, so steady-state
// observation and reset are allocation-free.
type Accumulator struct {
	sum  Summary
	hist []int64 // counts for values 0..len-1; the top bucket clamps
}

// NewAccumulator returns an accumulator whose histogram resolves values in
// [0, bound]; larger observations clamp into the top bucket (they still
// enter the exact moments and max). It panics if bound < 0.
func NewAccumulator(bound int) *Accumulator {
	if bound < 0 {
		panic(fmt.Sprintf("stats: NewAccumulator needs bound >= 0, got %d", bound))
	}
	return &Accumulator{hist: make([]int64, bound+1)}
}

// Reset clears the accumulator for a new trial without reallocating.
func (a *Accumulator) Reset() {
	a.sum = Summary{}
	clear(a.hist)
}

// Observe folds one non-negative observation in.
func (a *Accumulator) Observe(v int) {
	a.sum.Add(float64(v))
	if v < 0 {
		v = 0
	}
	if v >= len(a.hist) {
		v = len(a.hist) - 1
	}
	a.hist[v]++
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.sum.N() }

// Mean returns the exact mean of all observations.
func (a *Accumulator) Mean() float64 { return a.sum.Mean() }

// Std returns the exact sample standard deviation of all observations.
func (a *Accumulator) Std() float64 { return a.sum.Std() }

// Max returns the exact largest observation (0 when empty).
func (a *Accumulator) Max() int { return int(a.sum.Max()) }

// Quantile returns the smallest histogram value v such that at least a
// q-fraction of the observations are ≤ v (nearest-rank on the bounded
// histogram; observations beyond the bound clamp into the top bucket). It
// returns 0 for an empty accumulator.
func (a *Accumulator) Quantile(q float64) int {
	n := int64(a.sum.N())
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for v, c := range a.hist {
		cum += c
		if cum >= rank {
			return v
		}
	}
	return len(a.hist) - 1
}

// Merge folds another accumulator into a (parallel reduction). Histogram
// bounds must match.
func (a *Accumulator) Merge(o *Accumulator) {
	if len(a.hist) != len(o.hist) {
		panic("stats: merging accumulators of different bounds")
	}
	a.sum.Merge(o.sum)
	for i, c := range o.hist {
		a.hist[i] += c
	}
}

// Tail returns the fraction of observations ≥ v.
func (h *Histogram) Tail(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var s int64
	for i := v; i < len(h.counts); i++ {
		if i >= 0 {
			s += h.counts[i]
		}
	}
	return float64(s) / float64(h.total)
}
