package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// These tests pin Accumulator.Merge and Reset under the adversarial
// shard shapes the sharded simulation engine produces: empty shards
// (worker counts beyond the granule count), single-sample shards,
// values on the histogram clamp boundary, and arbitrary merge
// groupings. Merge is the load-bearing reduction for every parallel
// streaming metric — a chunk's per-granule accumulators fold into the
// trial accumulator at each barrier — so its exactness properties
// (counts, histogram mass, max) and its float behaviour (moments exact
// in expectation, stable under grouping) are frozen here.

// fillAcc distributes obs round-robin over k accumulators and returns
// them; shard i gets obs[i], obs[i+k], ...
func fillAcc(obs []int, k, bound int) []*Accumulator {
	accs := make([]*Accumulator, k)
	for i := range accs {
		accs[i] = NewAccumulator(bound)
	}
	for i, v := range obs {
		accs[i%k].Observe(v)
	}
	return accs
}

// mergeAll folds accs into a fresh accumulator in the given order.
func mergeAll(accs []*Accumulator, order []int, bound int) *Accumulator {
	m := NewAccumulator(bound)
	for _, i := range order {
		m.Merge(accs[i])
	}
	return m
}

// TestAccumulatorMergeMatchesSerial: a k-way shard-and-merge reproduces
// the serial fold's exact quantities (count, max, histogram-derived
// quantiles) and its moments to float tolerance, for shard counts that
// force empty and single-sample shards.
func TestAccumulatorMergeMatchesSerial(t *testing.T) {
	const bound = 16
	obs := []int{3, 0, 16, 7, 2, 16, 1, 25, 4, 4, 0, 9, 11, 1, 30, 16}
	serial := NewAccumulator(bound)
	for _, v := range obs {
		serial.Observe(v)
	}
	// k > len(obs) leaves shards empty; k = len(obs) makes every shard
	// single-sample.
	for _, k := range []int{1, 2, 3, 5, len(obs), len(obs) + 7} {
		accs := fillAcc(obs, k, bound)
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}
		m := mergeAll(accs, order, bound)
		if m.N() != serial.N() {
			t.Fatalf("k=%d: N = %d, want %d", k, m.N(), serial.N())
		}
		if m.Max() != serial.Max() {
			t.Fatalf("k=%d: Max = %d, want %d", k, m.Max(), serial.Max())
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if got, want := m.Quantile(q), serial.Quantile(q); got != want {
				t.Errorf("k=%d q=%v: Quantile = %d, want %d (histogram mass must merge exactly)", k, q, got, want)
			}
		}
		if d := math.Abs(m.Mean() - serial.Mean()); d > 1e-12 {
			t.Errorf("k=%d: Mean off by %v", k, d)
		}
		if d := math.Abs(m.Std() - serial.Std()); d > 1e-9 {
			t.Errorf("k=%d: Std off by %v", k, d)
		}
	}
}

// TestAccumulatorMergeOrderPermutations: for a fixed shard partition,
// merging the shards in a fixed order is what the engine relies on for
// P-invariance — but the exact quantities must be identical under
// *every* permutation, and the moments must agree across permutations
// to tolerance. Shards include an empty one and a single-sample one by
// construction.
func TestAccumulatorMergeOrderPermutations(t *testing.T) {
	const bound = 8
	accs := []*Accumulator{
		NewAccumulator(bound), // stays empty
		NewAccumulator(bound),
		NewAccumulator(bound),
		NewAccumulator(bound),
	}
	accs[1].Observe(8) // clamp boundary value, single sample
	for _, v := range []int{0, 3, 3, 12, 7} {
		accs[2].Observe(v) // 12 clamps into the top bucket
	}
	for _, v := range []int{1, 1, 2, 8, 0, 5} {
		accs[3].Observe(v)
	}
	perms := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 3, 0, 2},
		{2, 0, 3, 1},
	}
	ref := mergeAll(accs, perms[0], bound)
	for _, p := range perms[1:] {
		m := mergeAll(accs, p, bound)
		if m.N() != ref.N() || m.Max() != ref.Max() {
			t.Fatalf("perm %v: N/Max = %d/%d, want %d/%d", p, m.N(), m.Max(), ref.N(), ref.Max())
		}
		for q := 0.0; q <= 1.0; q += 0.1 {
			if m.Quantile(q) != ref.Quantile(q) {
				t.Errorf("perm %v q=%.1f: Quantile = %d, want %d", p, q, m.Quantile(q), ref.Quantile(q))
			}
		}
		if d := math.Abs(m.Mean() - ref.Mean()); d > 1e-12 {
			t.Errorf("perm %v: Mean off by %v", p, d)
		}
		if d := math.Abs(m.Std() - ref.Std()); d > 1e-9 {
			t.Errorf("perm %v: Std off by %v", p, d)
		}
	}
}

// TestAccumulatorMergeEmptyIdentity: merging an empty accumulator is an
// identity in both directions — the exact shape the engine hits when a
// chunk has fewer granules than workers.
func TestAccumulatorMergeEmptyIdentity(t *testing.T) {
	const bound = 8
	a := NewAccumulator(bound)
	for _, v := range []int{2, 5, 8, 1} {
		a.Observe(v)
	}
	before := *a
	a.Merge(NewAccumulator(bound))
	if a.N() != before.N() || a.Mean() != before.Mean() || a.Std() != before.Std() || a.Max() != before.Max() {
		t.Errorf("merging empty changed the accumulator: %+v -> %+v", before.sum, a.sum)
	}
	empty := NewAccumulator(bound)
	empty.Merge(a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() || empty.Std() != a.Std() || empty.Max() != a.Max() {
		t.Errorf("empty.Merge(a) did not copy a: N=%d mean=%v", empty.N(), empty.Mean())
	}
	if empty.Quantile(0.5) != a.Quantile(0.5) {
		t.Errorf("empty.Merge(a) lost histogram mass: q50 %d vs %d", empty.Quantile(0.5), a.Quantile(0.5))
	}
}

// TestAccumulatorResetBetweenMergeRounds models the engine's barrier
// cycle: per-granule accumulators are merged then Reset, round after
// round, and must behave as if freshly constructed each round — no
// residue in the moments, the max, or the histogram (including the
// clamp bucket).
func TestAccumulatorResetBetweenMergeRounds(t *testing.T) {
	const bound = 4
	rng := rand.New(rand.NewPCG(1, 2))
	gran := []*Accumulator{NewAccumulator(bound), NewAccumulator(bound), NewAccumulator(bound)}
	trial := NewAccumulator(bound)
	oracle := NewAccumulator(bound)
	for round := 0; round < 10; round++ {
		for _, acc := range gran {
			// Rounds leave some granules empty; values straddle the
			// clamp bound.
			k := rng.IntN(4)
			for i := 0; i < k; i++ {
				v := rng.IntN(2 * bound)
				acc.Observe(v)
				oracle.Observe(v)
			}
		}
		for _, acc := range gran {
			trial.Merge(acc)
			acc.Reset()
			if acc.N() != 0 || acc.Max() != 0 || acc.Quantile(1) != 0 {
				t.Fatalf("round %d: Reset left residue: N=%d Max=%d", round, acc.N(), acc.Max())
			}
		}
	}
	if trial.N() != oracle.N() || trial.Max() != oracle.Max() {
		t.Fatalf("after 10 rounds: N/Max = %d/%d, want %d/%d", trial.N(), trial.Max(), oracle.N(), oracle.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 1} {
		if trial.Quantile(q) != oracle.Quantile(q) {
			t.Errorf("q=%v: %d, want %d", q, trial.Quantile(q), oracle.Quantile(q))
		}
	}
	if d := math.Abs(trial.Mean() - oracle.Mean()); d > 1e-12 {
		t.Errorf("Mean off by %v after merge/Reset rounds", d)
	}
}

// TestSummaryMergeBoundaryShapes covers the raw Summary merge the
// accumulator rides on: empty-into-empty, empty-into-full,
// full-into-empty, and single-sample merges must preserve min/max and
// the exact count.
func TestSummaryMergeBoundaryShapes(t *testing.T) {
	var a, b Summary
	a.Merge(b)
	if a.N() != 0 {
		t.Fatalf("empty.Merge(empty): N = %d", a.N())
	}
	b.Add(4)
	a.Merge(b) // full into empty: copies
	if a.N() != 1 || a.Min() != 4 || a.Max() != 4 {
		t.Fatalf("empty.Merge({4}) = n%d [%v,%v]", a.N(), a.Min(), a.Max())
	}
	var c Summary
	a.Merge(c) // empty into full: identity
	if a.N() != 1 || a.Min() != 4 || a.Max() != 4 {
		t.Fatalf("identity merge broke summary: n%d [%v,%v]", a.N(), a.Min(), a.Max())
	}
	var d Summary
	d.Add(-2)
	a.Merge(d)
	if a.N() != 2 || a.Min() != -2 || a.Max() != 4 || a.Mean() != 1 {
		t.Fatalf("single-sample merge: n%d [%v,%v] mean %v", a.N(), a.Min(), a.Max(), a.Mean())
	}
}
