package stats

import "fmt"

// SpaceSaving is the Metwally–Agrawal–El Abbadi heavy-hitter sketch: it
// monitors at most k keys with per-key count and overestimation error,
// in O(k) memory and O(1) amortized time per observation. The engine's
// streaming metrics mode feeds every traversed link id through one of
// these to recover an approximate maximum link load for worlds whose
// exact per-link vector (O(n)) is never materialized.
//
// Guarantees, with N = total observations and c_min the smallest
// monitored count (0 while fewer than k distinct keys were seen):
//
//   - every monitored key's estimate overestimates its true count by at
//     most its recorded error ≤ c_min ≤ N/k;
//   - MaxCount() ≥ the true maximum count of ANY key (monitored or
//     not), and exceeds it by at most ErrorBound() ≤ N/k;
//   - while distinct keys ≤ k, all counts are exact (ErrorBound 0).
//
// The structure is the classic stream-summary: monitored keys live in
// buckets of equal count, buckets form a doubly-linked list ascending by
// count, so increment and evict-min are both O(1); key lookup is an
// open-addressing hash table with backward-shift deletion. All state
// lives in arrays allocated at construction; Observe and Reset never
// allocate, which keeps the simulation engine's request loop at 0
// allocs/op.
type SpaceSaving struct {
	k int
	n int64

	// Monitored-key slots.
	key      []uint64
	count    []int64
	err      []int64
	slotBuck []int32 // bucket holding this slot
	slotPrev []int32 // within-bucket doubly-linked slot list
	slotNext []int32
	size     int
	maxCount int64

	// Buckets (≤ k live at a time), a doubly-linked list ascending by
	// count. bMin is the head (smallest count).
	bCount []int64
	bHead  []int32
	bPrev  []int32
	bNext  []int32
	bFree  []int32 // free-list stack of bucket ids
	nFree  int
	bMin   int32

	// Open-addressing key → slot table, power-of-two sized.
	table   []int32
	mask    uint64
	evicted bool
}

// NewSpaceSaving returns a sketch monitoring up to k keys. It panics if
// k <= 0.
func NewSpaceSaving(k int) *SpaceSaving {
	if k <= 0 {
		panic(fmt.Sprintf("stats: SpaceSaving needs k > 0, got %d", k))
	}
	tsize := 4
	for tsize < 4*k {
		tsize <<= 1
	}
	s := &SpaceSaving{
		k:        k,
		key:      make([]uint64, k),
		count:    make([]int64, k),
		err:      make([]int64, k),
		slotBuck: make([]int32, k),
		slotPrev: make([]int32, k),
		slotNext: make([]int32, k),
		bCount:   make([]int64, k),
		bHead:    make([]int32, k),
		bPrev:    make([]int32, k),
		bNext:    make([]int32, k),
		bFree:    make([]int32, k),
		table:    make([]int32, tsize),
		mask:     uint64(tsize - 1),
	}
	s.Reset()
	return s
}

// Reset clears the sketch for a new stream without reallocating.
func (s *SpaceSaving) Reset() {
	s.n, s.size, s.maxCount, s.bMin = 0, 0, 0, -1
	s.evicted = false
	for i := range s.table {
		s.table[i] = -1
	}
	for i := 0; i < s.k; i++ {
		s.bFree[i] = int32(s.k - 1 - i)
	}
	s.nFree = s.k
}

// hash mixes a key (SplitMix64 finalizer).
func hash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// find returns the slot monitoring key, or -1.
func (s *SpaceSaving) find(key uint64) int32 {
	i := hash(key) & s.mask
	for {
		slot := s.table[i]
		if slot < 0 {
			return -1
		}
		if s.key[slot] == key {
			return slot
		}
		i = (i + 1) & s.mask
	}
}

// insert adds key → slot to the table (the key must be absent).
func (s *SpaceSaving) insert(key uint64, slot int32) {
	i := hash(key) & s.mask
	for s.table[i] >= 0 {
		i = (i + 1) & s.mask
	}
	s.table[i] = slot
}

// remove deletes key from the table by backward-shift (no tombstones).
func (s *SpaceSaving) remove(key uint64) {
	i := hash(key) & s.mask
	for {
		slot := s.table[i]
		if slot >= 0 && s.key[slot] == key {
			break
		}
		i = (i + 1) & s.mask
	}
	j := i
	for {
		s.table[i] = -1
		for {
			j = (j + 1) & s.mask
			slot := s.table[j]
			if slot < 0 {
				return
			}
			h := hash(s.key[slot]) & s.mask
			// Move the entry back iff its home does not lie in (i, j].
			if (j-h)&s.mask >= (j-i)&s.mask {
				s.table[i] = slot
				i = j
				break
			}
		}
	}
}

// newBucket takes a free bucket with the given count and links it after
// prev (-1: at the head).
func (s *SpaceSaving) newBucket(count int64, prev int32) int32 {
	s.nFree--
	b := s.bFree[s.nFree]
	s.bCount[b] = count
	s.bHead[b] = -1
	s.bPrev[b] = prev
	if prev < 0 {
		s.bNext[b] = s.bMin
		if s.bMin >= 0 {
			s.bPrev[s.bMin] = b
		}
		s.bMin = b
	} else {
		s.bNext[b] = s.bNext[prev]
		if s.bNext[prev] >= 0 {
			s.bPrev[s.bNext[prev]] = b
		}
		s.bNext[prev] = b
	}
	return b
}

// dropBucket unlinks an empty bucket and frees it.
func (s *SpaceSaving) dropBucket(b int32) {
	p, n := s.bPrev[b], s.bNext[b]
	if p >= 0 {
		s.bNext[p] = n
	} else {
		s.bMin = n
	}
	if n >= 0 {
		s.bPrev[n] = p
	}
	s.bFree[s.nFree] = b
	s.nFree++
}

// attach puts slot at the head of bucket b.
func (s *SpaceSaving) attach(slot, b int32) {
	h := s.bHead[b]
	s.slotPrev[slot] = -1
	s.slotNext[slot] = h
	if h >= 0 {
		s.slotPrev[h] = slot
	}
	s.bHead[b] = slot
	s.slotBuck[slot] = b
}

// detach removes slot from its bucket's list (the bucket is not freed).
func (s *SpaceSaving) detach(slot int32) {
	p, n := s.slotPrev[slot], s.slotNext[slot]
	if p >= 0 {
		s.slotNext[p] = n
	} else {
		s.bHead[s.slotBuck[slot]] = n
	}
	if n >= 0 {
		s.slotPrev[n] = p
	}
}

// bump moves slot from count c to c+1, relinking buckets as needed.
// When slot is its bucket's only member and no c+1 bucket exists, the
// bucket is re-labeled in place (ordering is preserved: the successor's
// count exceeds c) — this also keeps the free list sound when all k
// buckets are live, where allocate-then-free would underflow it.
func (s *SpaceSaving) bump(slot int32) {
	b := s.slotBuck[slot]
	c := s.count[slot] + 1
	s.count[slot] = c
	target := s.bNext[b]
	if s.bHead[b] == slot && s.slotNext[slot] < 0 {
		// Sole member of b.
		if target < 0 || s.bCount[target] != c {
			s.bCount[b] = c
		} else {
			s.detach(slot)
			s.attach(slot, target)
			s.dropBucket(b)
		}
	} else {
		// b keeps other members, so at most k-1 buckets are live and the
		// free list cannot be empty when a new bucket is needed.
		s.detach(slot)
		if target < 0 || s.bCount[target] != c {
			target = s.newBucket(c, b)
		}
		s.attach(slot, target)
	}
	if c > s.maxCount {
		s.maxCount = c
	}
}

// Observe folds one key occurrence into the sketch.
func (s *SpaceSaving) Observe(key uint64) {
	s.n++
	if slot := s.find(key); slot >= 0 {
		s.bump(slot)
		return
	}
	if s.size < s.k {
		slot := int32(s.size)
		s.size++
		s.key[slot] = key
		s.count[slot] = 1
		s.err[slot] = 0
		s.insert(key, slot)
		if s.bMin < 0 || s.bCount[s.bMin] != 1 {
			s.newBucket(1, -1)
		}
		s.attach(slot, s.bMin)
		if s.maxCount < 1 {
			s.maxCount = 1
		}
		return
	}
	// Evict the minimum: the new key inherits its count as error.
	s.evicted = true
	victim := s.bHead[s.bMin]
	s.remove(s.key[victim])
	s.insert(key, victim)
	s.key[victim] = key
	s.err[victim] = s.count[victim]
	s.bump(victim)
}

// N returns the number of observations.
func (s *SpaceSaving) N() int64 { return s.n }

// Len returns the number of monitored keys.
func (s *SpaceSaving) Len() int { return s.size }

// Exact reports whether no eviction has happened yet, in which case
// every monitored count is the key's true count.
func (s *SpaceSaving) Exact() bool { return !s.evicted }

// MaxCount returns the largest monitored count: an upper bound on the
// true maximum count of any key, tight to within ErrorBound().
func (s *SpaceSaving) MaxCount() int64 { return s.maxCount }

// ErrorBound returns the worst-case overestimation of any monitored
// count: the minimum monitored count once the sketch is full (≤ N/k),
// 0 before (all counts exact).
func (s *SpaceSaving) ErrorBound() int64 {
	if !s.evicted || s.bMin < 0 {
		return 0
	}
	// Errors are inherited from evicted minima, so they never exceed the
	// current minimum count.
	return s.bCount[s.bMin]
}

// Estimate returns the monitored estimate for key: count ≥ the true
// count, overestimating by at most err. ok is false for unmonitored
// keys (whose true count is then at most ErrorBound()).
func (s *SpaceSaving) Estimate(key uint64) (count, err int64, ok bool) {
	slot := s.find(key)
	if slot < 0 {
		return 0, 0, false
	}
	return s.count[slot], s.err[slot], true
}
