package stats

import (
	"encoding/json"
	"math"
	"testing"
)

// TestSummaryJSONRoundTrip pins the exact-transport property: a Summary
// survives JSON encode/decode with every moment bit-identical, so
// distributed merges over the wire equal in-process merges.
func TestSummaryJSONRoundTrip(t *testing.T) {
	var s Summary
	// Irrational-ish values with no short decimal form.
	for _, v := range []float64{math.Pi, math.Sqrt2, 1.0 / 3.0, 1e-300, 6.02214076e23} {
		s.Add(v)
	}

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("summary mutated in JSON transit:\n got %+v\nwant %+v", got, s)
	}

	// Merging decoded halves must equal merging the originals.
	var a, c Summary
	a.Add(math.Pi)
	a.Add(1.0 / 3.0)
	c.Add(math.Sqrt2)
	ab, _ := json.Marshal(a)
	cb, _ := json.Marshal(c)
	var a2, c2 Summary
	if err := json.Unmarshal(ab, &a2); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(cb, &c2); err != nil {
		t.Fatal(err)
	}
	direct, wire := a, a2
	direct.Merge(c)
	wire.Merge(c2)
	if direct != wire {
		t.Fatalf("merge after transit diverges:\n got %+v\nwant %+v", wire, direct)
	}
}

// TestSummaryUnmarshalRejectsNegativeN checks the decoder refuses a
// corrupt count instead of producing a Summary that underflows later.
func TestSummaryUnmarshalRejectsNegativeN(t *testing.T) {
	var s Summary
	if err := json.Unmarshal([]byte(`{"n":-3,"mean":0,"m2":0,"min":0,"max":0}`), &s); err == nil {
		t.Fatal("negative n accepted")
	}
}

// TestSummaryZeroRoundTrip checks the zero value (no samples) transits
// cleanly — empty regime summaries (churn off, faults off) are common.
func TestSummaryZeroRoundTrip(t *testing.T) {
	var s Summary
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("zero summary mutated: got %+v", got)
	}
}
