package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v ± %v", what, got, want, tol)
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	almost(t, s.Mean(), 5, 1e-12, "mean")
	almost(t, s.Std(), math.Sqrt(32.0/7), 1e-12, "std")
	if s.Min() != 2 || s.Max() != 9 || s.N() != 8 {
		t.Fatalf("min/max/n wrong: %v %v %v", s.Min(), s.Max(), s.N())
	}
	if s.SE() <= 0 || s.CI95() != 1.96*s.SE() {
		t.Fatalf("SE/CI wrong: %v %v", s.SE(), s.CI95())
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.SE() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Var() != 0 || s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Fatalf("single-point summary wrong: %+v", s)
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	prop := func(seed uint64, split uint8) bool {
		r := xrand.NewSource(seed).Stream(0)
		n := 60
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()*5 + 10
		}
		cut := int(split) % n
		var whole, a, b Summary
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		return math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Var()-whole.Var()) < 1e-9 &&
			a.Min() == whole.Min() && a.Max() == whole.Max() && a.N() == whole.N()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	b.Add(5)
	a.Merge(b) // empty <- nonempty
	if a.Mean() != 5 || a.N() != 1 {
		t.Fatalf("merge into empty failed: %+v", a)
	}
	var c Summary
	a.Merge(c) // nonempty <- empty
	if a.Mean() != 5 || a.N() != 1 {
		t.Fatalf("merge of empty changed summary: %+v", a)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	if q := Quantile(data, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(data, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(data, 0.5); q != 5 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(data, 0.9); q != 9 {
		t.Fatalf("p90 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if data[0] != 9 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2 := LinearFit(xs, ys)
	almost(t, a, 3, 1e-12, "intercept")
	almost(t, b, 2, 1e-12, "slope")
	almost(t, r2, 1, 1e-12, "r2")
}

func TestLinearFitDegenerate(t *testing.T) {
	a, b, r2 := LinearFit([]float64{2, 2, 2}, []float64{1, 5, 9})
	if b != 0 || a != 5 || r2 != 0 {
		t.Fatalf("constant-x fit: a=%v b=%v r2=%v", a, b, r2)
	}
	a, b, r2 = LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if b != 0 || a != 4 || r2 != 1 {
		t.Fatalf("constant-y fit: a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched fit did not panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestLinearFitNoisy(t *testing.T) {
	r := xrand.NewSource(5).Stream(0)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 1.5*xs[i] - 7 + r.NormFloat64()*3
	}
	a, b, r2 := LinearFit(xs, ys)
	almost(t, b, 1.5, 0.05, "noisy slope")
	almost(t, a, -7, 5, "noisy intercept")
	if r2 < 0.99 {
		t.Fatalf("r2 = %v too low", r2)
	}
}

func TestFitAgainstLogShape(t *testing.T) {
	// y = 2·log(x) + 1 exactly.
	xs := []float64{10, 100, 1000, 10000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*math.Log(x) + 1
	}
	a, b, r2 := FitAgainst(xs, ys, Log)
	almost(t, a, 1, 1e-9, "log fit intercept")
	almost(t, b, 2, 1e-9, "log fit slope")
	almost(t, r2, 1, 1e-9, "log fit r2")
}

func TestLogLogClamp(t *testing.T) {
	if v := LogLog(1.01); math.IsNaN(v) || math.IsInf(v, 0) || v != 0 {
		t.Fatalf("LogLog near 1 = %v, want clamped 0", v)
	}
	almost(t, LogLog(math.E*math.E), math.Ln2, 1e-12, "loglog(e^2)")
}

func TestGrowthExponent(t *testing.T) {
	// y = 3·x^0.75
	xs := []float64{10, 100, 1000, 10000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 0.75)
	}
	almost(t, GrowthExponent(xs, ys), 0.75, 1e-9, "exponent")
	if !math.IsNaN(GrowthExponent([]float64{1}, []float64{2})) {
		t.Fatal("single point should give NaN")
	}
	// Non-positive points are skipped, not fatal.
	almost(t, GrowthExponent([]float64{0, 10, 100, 1000}, []float64{5, 30, 300, 3000}), 1, 1e-9, "skip zeros")
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 1, 1, 3, 5, 9, -2} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(0) != 2 /* -2 clamped */ || h.Count(5) != 2 /* 9 clamped */ {
		t.Fatalf("counts wrong: %d %d %d", h.Count(1), h.Count(0), h.Count(5))
	}
	if h.Count(-1) != 0 || h.Count(100) != 0 {
		t.Fatal("out-of-range Count should be 0")
	}
	wantMean := float64(0+0+1+1+3+5+5) / 7
	almost(t, h.Mean(), wantMean, 1e-12, "histogram mean")
	almost(t, h.Tail(3), 3.0/7, 1e-12, "tail(3)")
	almost(t, h.Tail(0), 1, 1e-12, "tail(0)")
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(3), NewHistogram(3)
	a.Observe(1)
	b.Observe(2)
	b.Observe(3)
	a.Merge(b)
	if a.Total() != 3 || a.Count(2) != 1 || a.Count(3) != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestHistogramMergePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched merge did not panic")
		}
	}()
	NewHistogram(3).Merge(NewHistogram(4))
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(4)
	if h.Mean() != 0 || h.Tail(0) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 97))
	}
}
