package stats

import (
	"math/rand/v2"
	"testing"
)

// exactCounts is the brute-force oracle.
func exactCounts(stream []uint64) map[uint64]int64 {
	m := map[uint64]int64{}
	for _, k := range stream {
		m[k]++
	}
	return m
}

func maxCount(m map[uint64]int64) int64 {
	var mx int64
	for _, c := range m {
		if c > mx {
			mx = c
		}
	}
	return mx
}

// zipfStream draws a skewed key stream (the link-load shape: few hot
// keys, a long uniform tail).
func zipfStream(n, universe int, skew float64, seed uint64) []uint64 {
	rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
	out := make([]uint64, n)
	for i := range out {
		if rng.Float64() < skew {
			out[i] = uint64(rng.IntN(8)) // hot set
		} else {
			out[i] = uint64(8 + rng.IntN(universe-8))
		}
	}
	return out
}

// TestSpaceSavingInvariants checks the sketch's guarantees against the
// exact counts on skewed and uniform streams, across capacities.
func TestSpaceSavingInvariants(t *testing.T) {
	for _, tc := range []struct {
		name     string
		stream   []uint64
		capacity int
	}{
		{"skewed", zipfStream(20000, 5000, 0.5, 1), 64},
		{"uniform", zipfStream(20000, 5000, 0, 2), 128},
		{"tiny-capacity", zipfStream(5000, 500, 0.3, 3), 8},
		{"few-keys", zipfStream(5000, 20, 0, 4), 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSpaceSaving(tc.capacity)
			for _, k := range tc.stream {
				s.Observe(k)
			}
			exact := exactCounts(tc.stream)
			if s.N() != int64(len(tc.stream)) {
				t.Fatalf("N = %d, want %d", s.N(), len(tc.stream))
			}
			bound := s.ErrorBound()
			if nk := s.N() / int64(tc.capacity); bound > nk {
				t.Fatalf("ErrorBound %d exceeds N/k = %d", bound, nk)
			}
			trueMax := maxCount(exact)
			if s.MaxCount() < trueMax {
				t.Fatalf("MaxCount %d below true max %d", s.MaxCount(), trueMax)
			}
			if s.MaxCount() > trueMax+bound {
				t.Fatalf("MaxCount %d exceeds true max %d + bound %d", s.MaxCount(), trueMax, bound)
			}
			if len(exact) <= tc.capacity {
				if !s.Exact() {
					t.Fatalf("distinct keys %d ≤ k %d but sketch not exact", len(exact), tc.capacity)
				}
				for k, c := range exact {
					got, errv, ok := s.Estimate(k)
					if !ok || got != c || errv != 0 {
						t.Fatalf("key %d: estimate %d±%d ok=%v, want exact %d", k, got, errv, ok, c)
					}
				}
			}
			// Every monitored estimate brackets its true count.
			for k := range exact {
				if got, errv, ok := s.Estimate(k); ok {
					if got < exact[k] {
						t.Fatalf("key %d: estimate %d underestimates true %d", k, got, exact[k])
					}
					if got-errv > exact[k] {
						t.Fatalf("key %d: estimate %d - err %d exceeds true %d", k, got, errv, exact[k])
					}
				}
			}
		})
	}
}

// TestSpaceSavingAllBucketsDistinct: with every monitored count pairwise
// distinct all k buckets are live; bumping past a count gap must reuse
// the emptied bucket in place instead of allocating from the exhausted
// free list (regression: this panicked with a free-list underflow).
func TestSpaceSavingAllBucketsDistinct(t *testing.T) {
	s := NewSpaceSaving(2)
	for _, k := range []uint64{1, 2, 2, 2} {
		s.Observe(k) // counts {1:1, 2:3}: distinct, with a gap above
	}
	if got, _, ok := s.Estimate(2); !ok || got != 3 {
		t.Fatalf("Estimate(2) = %d, %v; want 3, true", got, ok)
	}
	if got, _, ok := s.Estimate(1); !ok || got != 1 {
		t.Fatalf("Estimate(1) = %d, %v; want 1, true", got, ok)
	}
	// Stress the same shape at a larger capacity: k keys driven to
	// pairwise-distinct counts, then bumped through gaps in both orders.
	s = NewSpaceSaving(8)
	for key := uint64(0); key < 8; key++ {
		for c := uint64(0); c <= 2*key; c++ {
			s.Observe(key)
		}
	}
	for key := uint64(0); key < 8; key++ {
		s.Observe(key) // every bump crosses into a count gap
	}
	for key := uint64(0); key < 8; key++ {
		if got, _, ok := s.Estimate(key); !ok || got != int64(2*key+2) {
			t.Fatalf("Estimate(%d) = %d, %v; want %d", key, got, ok, 2*key+2)
		}
	}
}

// TestSpaceSavingResetReuse: a reset sketch behaves like a fresh one.
func TestSpaceSavingResetReuse(t *testing.T) {
	s := NewSpaceSaving(32)
	for _, k := range zipfStream(10000, 1000, 0.4, 7) {
		s.Observe(k)
	}
	s.Reset()
	if s.N() != 0 || s.Len() != 0 || s.MaxCount() != 0 || s.ErrorBound() != 0 {
		t.Fatalf("reset sketch not empty: N=%d len=%d max=%d", s.N(), s.Len(), s.MaxCount())
	}
	stream := zipfStream(10000, 1000, 0.4, 8)
	fresh := NewSpaceSaving(32)
	for _, k := range stream {
		s.Observe(k)
		fresh.Observe(k)
	}
	if s.MaxCount() != fresh.MaxCount() || s.ErrorBound() != fresh.ErrorBound() || s.Len() != fresh.Len() {
		t.Fatalf("reused sketch diverges from fresh: max %d/%d bound %d/%d",
			s.MaxCount(), fresh.MaxCount(), s.ErrorBound(), fresh.ErrorBound())
	}
}

// TestSpaceSavingObserveAllocs: the observation path never allocates.
func TestSpaceSavingObserveAllocs(t *testing.T) {
	s := NewSpaceSaving(64)
	stream := zipfStream(4096, 2000, 0.3, 9)
	i := 0
	if n := testing.AllocsPerRun(2000, func() {
		s.Observe(stream[i&4095])
		i++
	}); n != 0 {
		t.Errorf("Observe allocates %.2f/op, want 0", n)
	}
}

// TestSpaceSavingAdversarialChurn: a rotating key pattern maximizes
// evictions and exercises the backward-shift hash deletion; cross-check
// table consistency via Estimate on every key.
func TestSpaceSavingAdversarialChurn(t *testing.T) {
	s := NewSpaceSaving(16)
	var stream []uint64
	for round := 0; round < 2000; round++ {
		stream = append(stream, uint64(round%97), uint64(round%31))
	}
	for _, k := range stream {
		s.Observe(k)
	}
	exact := exactCounts(stream)
	monitored := 0
	for k := range exact {
		if got, _, ok := s.Estimate(k); ok {
			monitored++
			if got < exact[k] {
				t.Fatalf("key %d: estimate %d < true %d", k, got, exact[k])
			}
		}
	}
	if monitored != s.Len() {
		t.Fatalf("Estimate found %d monitored keys, sketch reports %d — hash table corrupted", monitored, s.Len())
	}
}
