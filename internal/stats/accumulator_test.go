package stats

import (
	"math"
	"sort"
	"testing"
)

func TestAccumulatorMomentsAndMax(t *testing.T) {
	obs := []int{3, 0, 7, 7, 2, 9, 1, 4, 4, 4}
	a := NewAccumulator(16)
	var want Summary
	for _, v := range obs {
		a.Observe(v)
		want.Add(float64(v))
	}
	if a.N() != len(obs) {
		t.Fatalf("N = %d, want %d", a.N(), len(obs))
	}
	if a.Mean() != want.Mean() || a.Std() != want.Std() {
		t.Fatalf("moments %v/%v, want %v/%v", a.Mean(), a.Std(), want.Mean(), want.Std())
	}
	if a.Max() != 9 {
		t.Fatalf("Max = %d, want 9", a.Max())
	}
}

func TestAccumulatorQuantileMatchesSort(t *testing.T) {
	obs := []int{5, 1, 1, 3, 8, 2, 2, 2, 6, 0, 9, 9}
	a := NewAccumulator(32)
	for _, v := range obs {
		a.Observe(v)
	}
	sorted := append([]int(nil), obs...)
	sort.Ints(sorted)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if got := a.Quantile(q); got != sorted[idx] {
			t.Fatalf("Quantile(%v) = %d, want %d", q, got, sorted[idx])
		}
	}
}

func TestAccumulatorClampsBeyondBound(t *testing.T) {
	a := NewAccumulator(4)
	for _, v := range []int{1, 100, 200} {
		a.Observe(v)
	}
	// Exact stats see the true values; the histogram clamps.
	if a.Max() != 200 {
		t.Fatalf("Max = %d, want 200", a.Max())
	}
	if got := a.Quantile(1); got != 4 {
		t.Fatalf("clamped Quantile(1) = %d, want top bucket 4", got)
	}
}

func TestAccumulatorResetAndZeroAllocs(t *testing.T) {
	a := NewAccumulator(64)
	if n := testing.AllocsPerRun(20, func() {
		a.Reset()
		for v := 0; v < 100; v++ {
			a.Observe(v % 9)
		}
		_ = a.Quantile(0.99)
	}); n != 0 {
		t.Fatalf("steady-state observe/reset allocates %.1f/op, want 0", n)
	}
	a.Reset()
	if a.N() != 0 || a.Max() != 0 || a.Quantile(0.5) != 0 {
		t.Fatalf("reset accumulator not empty: n=%d max=%d", a.N(), a.Max())
	}
}

func TestAccumulatorMerge(t *testing.T) {
	a, b, both := NewAccumulator(16), NewAccumulator(16), NewAccumulator(16)
	for v := 0; v < 10; v++ {
		a.Observe(v)
		both.Observe(v)
	}
	for v := 5; v < 15; v++ {
		b.Observe(v)
		both.Observe(v)
	}
	a.Merge(b)
	// Pairwise moment combination is exact in math but not in float bits.
	if a.N() != both.N() || math.Abs(a.Mean()-both.Mean()) > 1e-12 || a.Max() != both.Max() {
		t.Fatalf("merge mismatch: %v vs %v", a, both)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("Quantile(%v): %d vs %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	a.Merge(NewAccumulator(8))
}
