package voronoi

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/xrand"
)

// placeAll returns a placement on n nodes where the membership is driven
// by the given explicit node->files table (for hand-built scenarios we
// just use real random placement; the exact cases below use M=K so every
// node is a replica, or tiny libraries).
func randomPlacement(n, k, m int, seed uint64) *cache.Placement {
	return cache.Place(n, m, dist.NewUniform(k), cache.WithReplacement, xrand.NewSource(seed).Stream(0))
}

func TestComputeMatchesBruteForce(t *testing.T) {
	g := grid.New(7, grid.Torus)
	p := randomPlacement(g.N(), 6, 2, 1)
	r := xrand.NewSource(2).Stream(0)
	for j := 0; j < p.K(); j++ {
		tess := Compute(g, p, j, r)
		reps := p.Replicas(j)
		for u := 0; u < g.N(); u++ {
			if len(reps) == 0 {
				if tess.Owner[u] != -1 || tess.Dist[u] != -1 {
					t.Fatalf("file %d uncached but node %d assigned", j, u)
				}
				continue
			}
			want := math.MaxInt
			for _, s := range reps {
				if d := g.Dist(u, int(s)); d < want {
					want = d
				}
			}
			if int(tess.Dist[u]) != want {
				t.Fatalf("file %d node %d: BFS dist %d, brute %d", j, u, tess.Dist[u], want)
			}
			// Owner must be a replica at exactly that distance.
			if !p.Has(int(tess.Owner[u]), j) {
				t.Fatalf("owner %d does not cache file %d", tess.Owner[u], j)
			}
			if g.Dist(u, int(tess.Owner[u])) != want {
				t.Fatalf("owner %d at distance %d, want %d", tess.Owner[u], g.Dist(u, int(tess.Owner[u])), want)
			}
		}
	}
}

func TestCellSizesPartitionTorus(t *testing.T) {
	g := grid.New(9, grid.Torus)
	p := randomPlacement(g.N(), 4, 1, 3)
	r := xrand.NewSource(4).Stream(0)
	for j := 0; j < p.K(); j++ {
		tess := Compute(g, p, j, r)
		if len(p.Replicas(j)) == 0 {
			continue
		}
		total := 0
		for owner, sz := range tess.CellSize {
			if !p.Has(int(owner), j) {
				t.Fatalf("cell owner %d is not a replica of %d", owner, j)
			}
			total += sz
		}
		if total != g.N() {
			t.Fatalf("file %d: cells cover %d of %d nodes", j, total, g.N())
		}
		if tess.MaxCell() <= 0 || tess.MaxCell() > g.N() {
			t.Fatalf("file %d: absurd max cell %d", j, tess.MaxCell())
		}
	}
}

func TestSingleReplicaOwnsEverything(t *testing.T) {
	// With K=1, M=1 every node caches file 0... use n=1 instead: place a
	// single-node network. Simpler: craft K files but check a file with
	// exactly one replica.
	g := grid.New(8, grid.Torus)
	// Try seeds until some file has exactly one replica.
	for seed := uint64(0); seed < 50; seed++ {
		p := randomPlacement(g.N(), 200, 1, seed)
		for j := 0; j < p.K(); j++ {
			if len(p.Replicas(j)) == 1 {
				tess := Compute(g, p, j, xrand.NewSource(9).Stream(0))
				if tess.MaxCell() != g.N() {
					t.Fatalf("single replica owns %d nodes, want %d", tess.MaxCell(), g.N())
				}
				return
			}
		}
	}
	t.Skip("no singleton replica found (astronomically unlikely)")
}

func TestTieBreakIsBalancedOnSymmetricPair(t *testing.T) {
	// Two replicas diametrically opposite on an even torus: equidistant
	// nodes must split ~50/50 between owners over repeated randomized
	// tessellations.
	g := grid.New(6, grid.Torus)
	// Build placement with K=1; nodes 0 and 21 (=3*6+3, the antipode of
	// (0,0)) both cache file 0. Craft via custom popularity over 1 file:
	// M=1 ⇒ every node caches file 0; instead use direct construction.
	// Simplest: use K=1, M=1 so all nodes replicate; tie-break check then
	// degenerates. So construct the two-replica world by brute force:
	// place with K large until exactly-two-replica file found.
	for seed := uint64(0); seed < 200; seed++ {
		p := randomPlacement(g.N(), 120, 1, seed)
		for j := 0; j < p.K(); j++ {
			reps := p.Replicas(j)
			if len(reps) != 2 {
				continue
			}
			a, b := int(reps[0]), int(reps[1])
			// Count equidistant nodes.
			eq := 0
			for u := 0; u < g.N(); u++ {
				if g.Dist(u, a) == g.Dist(u, b) {
					eq++
				}
			}
			if eq == 0 {
				continue
			}
			r := xrand.NewSource(31).Stream(0)
			aWins := 0
			const trials = 400
			for i := 0; i < trials; i++ {
				tess := Compute(g, p, j, r)
				for u := 0; u < g.N(); u++ {
					if g.Dist(u, a) == g.Dist(u, b) && int(tess.Owner[u]) == a {
						aWins++
					}
				}
			}
			frac := float64(aWins) / float64(trials*eq)
			if math.Abs(frac-0.5) > 0.08 {
				t.Fatalf("equidistant nodes go to first replica %.3f of the time, want ~0.5", frac)
			}
			return
		}
	}
	t.Skip("no two-replica file found")
}

func TestAnalyzeAggregates(t *testing.T) {
	g := grid.New(10, grid.Torus)
	p := randomPlacement(g.N(), 20, 2, 5)
	st := Analyze(g, p, xrand.NewSource(6).Stream(0))
	if st.FilesChecked != len(p.CachedFiles()) {
		t.Fatalf("checked %d files, want %d", st.FilesChecked, len(p.CachedFiles()))
	}
	if st.MaxCell < int(math.Ceil(float64(g.N())/float64(maxReplicas(p)))) {
		t.Fatalf("max cell %d below pigeonhole bound", st.MaxCell)
	}
	if st.MeanMaxCell <= 0 || st.MeanMaxCell > float64(g.N()) {
		t.Fatalf("mean max cell %v out of range", st.MeanMaxCell)
	}
	if st.MeanDist < 0 || st.MeanDist > float64(g.Diameter()) {
		t.Fatalf("mean dist %v out of range", st.MeanDist)
	}
}

func maxReplicas(p *cache.Placement) int {
	m := 1
	for j := 0; j < p.K(); j++ {
		if r := len(p.Replicas(j)); r > m {
			m = r
		}
	}
	return m
}

func TestLemma1Scaling(t *testing.T) {
	// Lemma 1: max cell size = O(K log n / M) under uniform popularity.
	// Measure the ratio maxCell / (K ln n / M) across scales; it should
	// stay bounded (we assert < 4, generous for the constant).
	if testing.Short() {
		t.Skip("scaling study skipped in -short")
	}
	src := xrand.NewSource(77)
	for _, tc := range []struct{ l, k, m int }{
		{20, 50, 1}, {30, 50, 1}, {45, 50, 1}, {45, 200, 4}, {45, 500, 10},
	} {
		g := grid.New(tc.l, grid.Torus)
		bound := float64(tc.k) * math.Log(float64(g.N())) / float64(tc.m)
		worst := 0.0
		const trials = 5
		for i := 0; i < trials; i++ {
			p := cache.Place(g.N(), tc.m, dist.NewUniform(tc.k), cache.WithReplacement, src.Stream(uint64(i)))
			st := Analyze(g, p, src.Stream(uint64(1000+i)))
			if r := float64(st.MaxCell) / bound; r > worst {
				worst = r
			}
		}
		if worst > 4 {
			t.Errorf("L=%d K=%d M=%d: maxCell/(K ln n/M) = %.2f, want O(1) < 4", tc.l, tc.k, tc.m, worst)
		}
	}
}

func BenchmarkCompute45(b *testing.B) {
	g := grid.New(45, grid.Torus)
	p := randomPlacement(g.N(), 100, 1, 1)
	r := xrand.NewSource(0).Stream(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Compute(g, p, i%p.K(), r)
	}
}
