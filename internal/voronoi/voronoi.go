// Package voronoi computes, for each file W_j, the Voronoi tessellation V_j
// that Strategy I induces on the torus: every node belongs to the cell of
// its nearest replica of W_j (§III). Cells are computed by multi-source BFS
// seeded at the replica set S_j, which costs O(n) per file and yields both
// nearest distances and cell sizes. Lemma 1's bound — max cell size
// O(K log n / M) — is validated against these exact tessellations.
package voronoi

import (
	"math/rand/v2"

	"repro/internal/cache"
	"repro/internal/grid"
)

// Tessellation is the Voronoi diagram of one file's replica set.
type Tessellation struct {
	// Owner[u] is the replica node serving u (-1 if the file has no
	// replicas anywhere).
	Owner []int32
	// Dist[u] is the hop distance from u to Owner[u] (-1 if unserved).
	Dist []int32
	// CellSize maps each replica node to the number of nodes it owns.
	CellSize map[int32]int
}

// Compute builds the tessellation of file j under placement p on g. Ties
// (equidistant replicas) are broken uniformly at random with r, matching
// Strategy I's tie rule; pass a deterministic stream for reproducibility.
func Compute(g *grid.Grid, p *cache.Placement, j int, r *rand.Rand) *Tessellation {
	n := g.N()
	t := &Tessellation{
		Owner:    make([]int32, n),
		Dist:     make([]int32, n),
		CellSize: make(map[int32]int),
	}
	for i := range t.Owner {
		t.Owner[i] = -1
		t.Dist[i] = -1
	}
	seeds := p.Replicas(j)
	if len(seeds) == 0 {
		return t
	}
	// Multi-source BFS. To realize *uniform* tie breaking among
	// equidistant sources, process each frontier level in random order
	// and, when a node is reached at the same level by several owners,
	// replace the owner with probability 1/(ties so far + 1)
	// (reservoir sampling over claimants).
	type claim struct {
		node  int32
		owner int32
	}
	cur := make([]claim, 0, len(seeds))
	ties := make(map[int32]int, 16) // node -> claims seen this level
	for _, s := range seeds {
		cur = append(cur, claim{node: s, owner: s})
	}
	depth := int32(0)
	var next []claim
	nb := make([]int32, 0, 4)
	for len(cur) > 0 {
		// Assign current level.
		clear(ties)
		for _, c := range cur {
			switch {
			case t.Dist[c.node] == -1:
				t.Dist[c.node] = depth
				t.Owner[c.node] = c.owner
				ties[c.node] = 1
			case t.Dist[c.node] == depth:
				// Same-level competing claim: reservoir replace.
				ties[c.node]++
				if r.IntN(ties[c.node]) == 0 {
					t.Owner[c.node] = c.owner
				}
			}
		}
		// Expand.
		next = next[:0]
		for _, c := range cur {
			if t.Dist[c.node] != depth || t.Owner[c.node] != c.owner {
				continue // lost the claim; don't propagate this owner
			}
			nb = g.Neighbors(int(c.node), nb[:0])
			for _, v := range nb {
				if t.Dist[v] == -1 || t.Dist[v] == depth+1 {
					next = append(next, claim{node: v, owner: c.owner})
				}
			}
		}
		cur, next = next, cur
		depth++
	}
	for u := 0; u < n; u++ {
		if t.Owner[u] >= 0 {
			t.CellSize[t.Owner[u]]++
		}
	}
	return t
}

// MaxCell returns the largest cell size (0 when the file is uncached).
func (t *Tessellation) MaxCell() int {
	m := 0
	for _, s := range t.CellSize {
		if s > m {
			m = s
		}
	}
	return m
}

// Stats aggregates tessellation shape over all cached files of a placement.
type Stats struct {
	MaxCell      int     // max over files of max cell size
	MeanMaxCell  float64 // mean over files of max cell size
	MeanDist     float64 // average nearest-replica distance over (node, file)
	FilesChecked int
}

// Analyze computes tessellations for every cached file and aggregates
// Lemma 1's quantities. Cost is O(nK); intended for n, K ≤ a few thousand.
func Analyze(g *grid.Grid, p *cache.Placement, r *rand.Rand) Stats {
	var st Stats
	var sumMax, sumDist, distCount float64
	for _, j := range p.CachedFiles() {
		t := Compute(g, p, int(j), r)
		mc := t.MaxCell()
		if mc > st.MaxCell {
			st.MaxCell = mc
		}
		sumMax += float64(mc)
		for _, d := range t.Dist {
			if d >= 0 {
				sumDist += float64(d)
				distCount++
			}
		}
		st.FilesChecked++
	}
	if st.FilesChecked > 0 {
		st.MeanMaxCell = sumMax / float64(st.FilesChecked)
	}
	if distCount > 0 {
		st.MeanDist = sumDist / distCount
	}
	return st
}
