package cache

import "slices"

// This file implements the cheap deep-clone path behind the served
// mode's copy-on-write snapshots (internal/serve): the mutator applies
// churn and fault events to a private shadow placement and publishes
// immutable copies at batch boundaries, so concurrent readers never
// observe a half-spliced structure. Clone is a handful of memcpys over
// the flat CSR arenas — no per-node allocation, no rebuild — which is
// what keeps the publish cadence cheap next to a from-scratch Place.

// Clone returns a standalone deep copy of p: every backing arena
// (forward map, replica CSR, cached-file list and — unlike the internal
// build-path clone — the tile index, when present) is copied into
// independently owned memory, so the copy is unaffected by later
// mutation of p or by the next Place call on the Placer that built p.
// The copy preserves p's layout: a mutable (churn-enabled) placement
// clones mutable, so ReplaceReplica/SwapReplicas keep working on it,
// while readers that treat the clone as frozen get a consistent
// immutable view. Cost is O(n·M) memcpy — no per-node allocations and
// no index rebuild.
func (p *Placement) Clone() *Placement {
	c := *p
	c.files = slices.Clone(p.files)
	c.nodeOff = slices.Clone(p.nodeOff)
	c.lens = slices.Clone(p.lens)
	c.nodes = slices.Clone(p.nodes)
	c.repOff = slices.Clone(p.repOff)
	c.cachedFiles = slices.Clone(p.cachedFiles)
	c.caps = slices.Clone(p.caps)
	c.capOff = slices.Clone(p.capOff)
	if p.tix != nil {
		c.tix = p.tix.clone(c.repOff)
	}
	return &c
}

// clone deep-copies the tile index for a cloned placement whose replica
// CSR offsets are repOff (the index borrows them rather than owning a
// second copy, mirroring the build-path layout). The build scratch
// (entryTile) is dropped: clones are never rebuilt, only spliced by
// replaceReplica, which touches no scratch.
func (ix *TileIndex) clone(repOff []int32) *TileIndex {
	c := *ix
	c.repOff = repOff
	c.nodes = slices.Clone(ix.nodes)
	c.dirTiles = slices.Clone(ix.dirTiles)
	c.dirStart = slices.Clone(ix.dirStart)
	c.dirOff = slices.Clone(ix.dirOff)
	c.dirLen = slices.Clone(ix.dirLen)
	c.bitWords = slices.Clone(ix.bitWords[:ix.blocks*ix.wordsPer])
	c.bitOf = slices.Clone(ix.bitOf)
	c.entryTile = nil
	return &c
}

// Clone returns a standalone deep copy of the liveness tracker: bitmap,
// permutation and (when a tiling is bound) per-tile live counts are
// copied; the tiling geometry itself is immutable and shared. Used by
// the served mode to publish frozen liveness views alongside placement
// snapshots.
func (lv *Liveness) Clone() *Liveness {
	c := *lv
	c.words = slices.Clone(lv.words)
	c.perm = slices.Clone(lv.perm)
	c.pos = slices.Clone(lv.pos)
	c.tileLive = slices.Clone(lv.tileLive)
	return &c
}
