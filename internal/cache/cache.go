// Package cache implements the paper's cache content placement phase
// (§II-B): every node independently caches M files drawn i.i.d. from the
// popularity profile *with replacement* (proportional placement). The
// package also maintains the inverted replica index used by both request
// assignment strategies, and exposes the structural quantities t(u) and
// t(u,v) from the goodness property (Definition 5, Lemma 2).
//
// Placements are stored in CSR (compressed sparse row) form: the forward
// map node → files and the inverted index file → replica nodes each live
// in one flat backing array with an offset index, instead of n + K little
// heap-allocated slices. A Placer owns the backing arrays plus all build
// scratch, so the per-trial placement build of the simulation engine is
// allocation-free after the first trial.
package cache

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"repro/internal/dist"
	"repro/internal/grid"
)

// Mode selects how the M slots of a node are filled.
type Mode int

const (
	// WithReplacement matches the paper: M i.i.d. draws per node, so a
	// node may cache fewer than M *distinct* files (t(u) ≤ M).
	WithReplacement Mode = iota
	// WithoutReplacement is an ablation variant: M distinct files per
	// node, drawn by popularity-weighted sampling without replacement.
	WithoutReplacement
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case WithReplacement:
		return "with-replacement"
	case WithoutReplacement:
		return "without-replacement"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Placement is a cache assignment for n nodes over a K-file library, in
// CSR layout. Build one per simulation trial with Place, or — on the hot
// path — through a reusable Placer. Placements are immutable once built,
// with one exception: placements built by a churn-enabled Placer
// (Placer.EnableChurn) additionally support in-place replica migration
// through ReplaceReplica, the primitive behind the engine's §VI dynamic
// regime.
type Placement struct {
	n, k, m int

	// Forward map, node → distinct cached files, sorted ascending
	// (length t(u) ≤ M). Two layouts share the accessors:
	//
	//	immutable (lens == nil): files[nodeOff[u]:nodeOff[u+1]], tight CSR;
	//	mutable  (lens != nil):  files[u*m : u*m+lens[u]], M-stride slabs
	//	                         so ReplaceReplica can grow and shrink a
	//	                         node's list without shifting the arena.
	files   []int32
	nodeOff []int32 // length n+1 (immutable layout only)
	lens    []int32 // per-node list length (mutable layout only)

	// nodes[repOff[j]:repOff[j+1]] lists the nodes caching file j, sorted
	// ascending. This is S_j in the paper's notation. Segment lengths are
	// invariant under ReplaceReplica (it migrates replicas, never changes
	// |S_j|), which is what lets the CSR stay splice-able in place.
	nodes  []int32
	repOff []int32 // length k+1

	// cachedFiles lists files with at least one replica, ascending.
	cachedFiles []int32

	// caps and capOff carry heterogeneous per-node capacities
	// (Placer.EnableHetero): caps[u] = M_u, and capOff is its prefix sum
	// (length n+1), which replaces the uniform M stride on mutable
	// layouts — node u's slab lives at files[capOff[u]:capOff[u]+lens[u]].
	// Both are nil on homogeneous placements, keeping the u*m arithmetic
	// byte-for-byte untouched.
	caps   []int32
	capOff []int32

	// tix is the optional spatial replica index (see TileIndex), built
	// only by Placers with EnableTiles.
	tix *TileIndex
	// unsorted marks EnableTiles placements, whose per-node file lists
	// skip the sort; NodeFiles-order consumers must not assume order.
	// Churn-enabled placements always sort (ReplaceReplica keeps order).
	unsorted bool
}

// nodeSpan returns node u's file list under either forward layout.
func (p *Placement) nodeSpan(u int) []int32 {
	if p.lens != nil {
		base := p.slabBase(u)
		return p.files[base : base+int(p.lens[u])]
	}
	return p.files[p.nodeOff[u]:p.nodeOff[u+1]]
}

// Cap returns node u's slot capacity M_u — M on homogeneous placements,
// the per-node capacity installed by Placer.SetHetero otherwise.
func (p *Placement) Cap(u int) int {
	if p.caps == nil {
		return p.m
	}
	return int(p.caps[u])
}

// slabBase returns where node u's forward slab (and draw span) starts:
// the uniform u·M stride, or the capacity prefix under EnableHetero.
func (p *Placement) slabBase(u int) int {
	if p.capOff == nil {
		return u * p.m
	}
	return int(p.capOff[u])
}

// TileIndex returns the spatial replica index, or nil when the placement
// was built without one.
func (p *Placement) TileIndex() *TileIndex { return p.tix }

// Placer builds placements into reusable backing arrays. One Placer
// serves one (n, m, k) shape; each Place call overwrites the arrays of
// the previously returned Placement, so a Placer must only be used when
// at most one placement per Placer is live at a time (the per-worker
// trial loop of the simulation engine). Use the package-level Place for
// an independently-owned placement.
type Placer struct {
	n, m, k int
	p       Placement

	draws  []int32 // n·m flat slot draws (with-replacement batch)
	counts []int32 // per-file replica count, then CSR fill cursor
	mark   []uint64
	stamp  uint64

	// Tile-index state (EnableTiles): the geometry and the index arenas.
	tiling *grid.Tiling
	tix    TileIndex
	// noSort skips the per-node file-list sort (EnableTiles): the
	// replica-side CSR comes out identical either way (it is built by a
	// node-ascending scatter), and the indexed strategies never read
	// per-node order — but NodeFiles/Has/TPair then see unspecified
	// order, so only the index-backed engine path may opt in.
	noSort bool
	// mutable builds placements in the churn layout (EnableChurn):
	// M-stride forward slabs and a capacity-padded tile directory, so
	// ReplaceReplica can splice every structure in place.
	mutable bool

	// Heterogeneity state (EnableHetero/SetHetero): per-trial node
	// capacities up to maxCap and an optional vacancy mask.
	hetero   bool
	maxCap   int
	totalCap int    // Σ caps of the current trial
	vacant   []bool // borrowed per trial; vacant[u] ⇒ u is placed empty
}

// slotCap returns the per-node slab capacity every arena must budget
// for: maxCap under EnableHetero, the uniform M otherwise.
func (pl *Placer) slotCap() int {
	if pl.hetero {
		return pl.maxCap
	}
	return pl.m
}

// vacantAt reports whether node u sits out the current trial's build.
func (pl *Placer) vacantAt(u int) bool { return pl.vacant != nil && pl.vacant[u] }

// EnableHetero prepares the Placer for heterogeneous per-node capacities
// of up to maxCap slots: the draw, forward and replica arenas are
// re-budgeted for the worst case, and every subsequent Place call must
// be preceded by SetHetero installing that trial's capacity vector. It
// must be called before EnableChurn and EnableTiles, which size their
// arenas off the slot capacity, and panics otherwise.
func (pl *Placer) EnableHetero(maxCap int) {
	if pl.mutable || pl.tiling != nil {
		panic("cache: EnableHetero must precede EnableChurn/EnableTiles")
	}
	if maxCap < pl.m {
		panic(fmt.Sprintf("cache: EnableHetero maxCap %d below M=%d", maxCap, pl.m))
	}
	if pl.hetero {
		return
	}
	pl.hetero = true
	pl.maxCap = maxCap
	pl.draws = make([]int32, pl.n*maxCap)
	pl.p.files = make([]int32, 0, pl.n*min(maxCap, pl.k))
	pl.p.nodes = make([]int32, pl.n*min(maxCap, pl.k))
	pl.p.capOff = make([]int32, pl.n+1)
}

// SetHetero installs the next trial's per-node capacities (caps[u] = M_u,
// each in [1, maxCap]) and optional vacancy mask. Vacant nodes are
// placed empty; under WithReplacement their batch draws are still
// consumed (the batch is one SampleBatch call), so the placement RNG
// schedule depends only on the capacity vector, not on which nodes are
// vacant. Both slices are borrowed until the next SetHetero call.
func (pl *Placer) SetHetero(caps []int32, vacant []bool) {
	if !pl.hetero {
		panic("cache: SetHetero without EnableHetero")
	}
	if len(caps) != pl.n {
		panic(fmt.Sprintf("cache: SetHetero got %d caps for n=%d nodes", len(caps), pl.n))
	}
	p := &pl.p
	p.caps = caps
	pl.vacant = vacant
	total := int32(0)
	for u, c := range caps {
		if c < 1 || int(c) > pl.maxCap {
			panic(fmt.Sprintf("cache: SetHetero cap %d for node %d outside [1, %d]", c, u, pl.maxCap))
		}
		p.capOff[u] = total
		total += c
	}
	p.capOff[pl.n] = total
	pl.totalCap = int(total)
}

// EnableChurn makes every subsequent Place call build a mutable
// placement: the forward map moves to M-stride slabs (tight CSR cannot
// grow a node's list in place) and, when EnableTiles is also active, the
// tile directory is capacity-padded per file (see buildTileIndex). The
// build consumes the RNG in exactly the same order as the immutable
// layout, so a churn-enabled placement starts bit-identical in content to
// its immutable twin; only the memory layout differs. Churn-enabled
// placements always keep node lists sorted (ReplaceReplica maintains the
// order), so NodeFiles-order consumers remain usable even with tiles.
func (pl *Placer) EnableChurn() {
	if pl.mutable {
		return
	}
	pl.mutable = true
	pl.noSort = false
	pl.p.files = make([]int32, pl.n*pl.slotCap())
	pl.p.lens = make([]int32, pl.n)
}

// NewPlacer returns a Placer for n nodes of m slots over a k-file library.
// It panics on non-positive dimensions (misconfiguration, not runtime
// input).
func NewPlacer(n, m, k int) *Placer {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("cache: need n > 0 and m > 0, got n=%d m=%d", n, m))
	}
	if k <= 0 {
		panic(fmt.Sprintf("cache: need k > 0, got k=%d", k))
	}
	pl := &Placer{
		n: n, m: m, k: k,
		draws:  make([]int32, n*m),
		counts: make([]int32, k),
		mark:   make([]uint64, k),
	}
	pl.p = Placement{
		n: n, k: k, m: m,
		files:       make([]int32, 0, n*min(m, k)),
		nodeOff:     make([]int32, n+1),
		nodes:       make([]int32, n*min(m, k)),
		repOff:      make([]int32, k+1),
		cachedFiles: make([]int32, 0, k),
	}
	return pl
}

// Place draws a placement: n nodes, M slots each, files sampled from pop.
// It panics on non-positive n or m (misconfiguration, not runtime input).
func Place(n, m int, pop dist.Popularity, mode Mode, r *rand.Rand) *Placement {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("cache: need n > 0 and m > 0, got n=%d m=%d", n, m))
	}
	// Clone off the Placer so the returned Placement owns right-sized
	// arrays instead of pinning the builder's scratch (draws/marks/counts)
	// for its whole lifetime.
	return NewPlacer(n, m, pop.K()).Place(pop, mode, r).clone()
}

// clone returns a standalone copy of p with independently owned arrays.
func (p *Placement) clone() *Placement {
	c := *p
	c.files = slices.Clone(p.files)
	c.nodeOff = slices.Clone(p.nodeOff)
	c.lens = slices.Clone(p.lens)
	c.nodes = slices.Clone(p.nodes)
	c.repOff = slices.Clone(p.repOff)
	c.cachedFiles = slices.Clone(p.cachedFiles)
	c.caps = slices.Clone(p.caps)
	c.capOff = slices.Clone(p.capOff)
	c.tix = nil // the tile index lives in the builder's arenas
	return &c
}

// Place draws a placement into the Placer's backing arrays, invalidating
// any previously returned Placement. The RNG is consumed in exactly the
// same order as the original one-slice-per-node build, so results are bit
// identical for identical (pop, mode, r) histories.
func (pl *Placer) Place(pop dist.Popularity, mode Mode, r *rand.Rand) *Placement {
	if pop.K() != pl.k {
		panic(fmt.Sprintf("cache: placer built for k=%d, profile has k=%d", pl.k, pop.K()))
	}
	if pl.hetero && pl.totalCap == 0 {
		panic("cache: Place with EnableHetero needs SetHetero first")
	}
	p := &pl.p
	if !pl.mutable {
		p.files = p.files[:0]
	}

	switch mode {
	case WithReplacement:
		// Batched sampling: all slot draws (n·M, or Σ M_u under
		// EnableHetero) in one call — identical RNG consumption to
		// per-slot draws, see dist.BatchSampler — then a counting dedup
		// per node via stamped marks; no per-node sort input copy, no map.
		// The draw arena shares the slab layout (slabBase/Cap), so on the
		// homogeneous path the spans below are exactly the historical
		// u·M strides.
		total := pl.n * pl.m
		if pl.hetero {
			total = pl.totalCap
		}
		dist.SampleBatch(pop, r, pl.draws[:total])
		if pl.mutable {
			for u := 0; u < pl.n; u++ {
				pl.stamp++
				base, ln := p.slabBase(u), 0
				if !pl.vacantAt(u) {
					for _, f := range pl.draws[base : base+p.Cap(u)] {
						if pl.mark[f] != pl.stamp {
							pl.mark[f] = pl.stamp
							p.files[base+ln] = f
							ln++
						}
					}
					slices.Sort(p.files[base : base+ln])
				}
				p.lens[u] = int32(ln)
			}
			break
		}
		for u := 0; u < pl.n; u++ {
			pl.stamp++
			start := len(p.files)
			if !pl.vacantAt(u) {
				base := p.slabBase(u)
				for _, f := range pl.draws[base : base+p.Cap(u)] {
					if pl.mark[f] != pl.stamp {
						pl.mark[f] = pl.stamp
						p.files = append(p.files, f)
					}
				}
				if !pl.noSort {
					slices.Sort(p.files[start:])
				}
			}
			p.nodeOff[u+1] = int32(len(p.files))
		}
	case WithoutReplacement:
		if pl.mutable {
			pl.placeWithoutReplacementMutable(pop, r)
		} else {
			pl.placeWithoutReplacement(pop, r)
		}
	default:
		panic(fmt.Sprintf("cache: unknown mode %v", mode))
	}

	pl.buildReplicaIndex()
	p.unsorted = pl.noSort
	if pl.tiling != nil {
		pl.buildTileIndex()
	} else {
		p.tix = nil
	}
	return p
}

// placeWithoutReplacement fills each node with m distinct files. The
// rejection loop is fast while m << K (the paper's M ≪ K standing
// assumption); a marked sweep completes the draw when rejection stalls.
func (pl *Placer) placeWithoutReplacement(pop dist.Popularity, r *rand.Rand) {
	p := &pl.p
	for u := 0; u < pl.n; u++ {
		pl.stamp++
		start := len(p.files)
		want := p.Cap(u)
		switch {
		case pl.vacantAt(u):
			// Vacant: placed empty, no draws consumed (per-node rejection
			// sampling has no batch to burn).
		case want >= pl.k:
			// Degenerate: cache the whole library.
			for j := int32(0); j < int32(pl.k); j++ {
				p.files = append(p.files, j)
			}
		default:
			tries := 0
			for len(p.files)-start < want {
				f := int32(pop.Sample(r))
				if pl.mark[f] != pl.stamp {
					pl.mark[f] = pl.stamp
					p.files = append(p.files, f)
				}
				tries++
				if tries > 64*want && len(p.files)-start < want {
					pl.fillRemainder(start, want, r)
					break
				}
			}
		}
		if !pl.noSort {
			slices.Sort(p.files[start:])
		}
		p.nodeOff[u+1] = int32(len(p.files))
	}
}

// placeWithoutReplacementMutable mirrors placeWithoutReplacement for the
// churn (M-stride) layout: identical RNG consumption order, slab writes
// instead of CSR appends.
func (pl *Placer) placeWithoutReplacementMutable(pop dist.Popularity, r *rand.Rand) {
	p := &pl.p
	for u := 0; u < pl.n; u++ {
		pl.stamp++
		base, ln := p.slabBase(u), 0
		want := p.Cap(u)
		switch {
		case pl.vacantAt(u):
			// Vacant: placed empty, no draws consumed.
		case want >= pl.k:
			// Degenerate: cache the whole library.
			for j := int32(0); j < int32(pl.k); j++ {
				p.files[base+ln] = j
				ln++
			}
		default:
			tries := 0
			for ln < want {
				f := int32(pop.Sample(r))
				if pl.mark[f] != pl.stamp {
					pl.mark[f] = pl.stamp
					p.files[base+ln] = f
					ln++
				}
				tries++
				if tries > 64*want && ln < want {
					ln = pl.fillRemainderMutable(base, ln, want, r)
					break
				}
			}
		}
		slices.Sort(p.files[base : base+ln])
		p.lens[u] = int32(ln)
	}
}

// fillRemainderMutable is fillRemainder for the churn layout: same
// uniform completion over the unmarked files, written into the slab.
// Returns the completed list length.
func (pl *Placer) fillRemainderMutable(base, ln, want int, r *rand.Rand) int {
	p := &pl.p
	missing := make([]int32, 0, pl.k-ln)
	for j := int32(0); j < int32(pl.k); j++ {
		if pl.mark[j] != pl.stamp {
			missing = append(missing, j)
		}
	}
	for ln < want && len(missing) > 0 {
		i := r.IntN(len(missing))
		p.files[base+ln] = missing[i]
		ln++
		missing[i] = missing[len(missing)-1]
		missing = missing[:len(missing)-1]
	}
	return ln
}

// fillRemainder completes a without-replacement draw uniformly over the
// unmarked files when popularity rejection stalls (extremely skewed Zipf).
func (pl *Placer) fillRemainder(start, want int, r *rand.Rand) {
	p := &pl.p
	missing := make([]int32, 0, pl.k-(len(p.files)-start))
	for j := int32(0); j < int32(pl.k); j++ {
		if pl.mark[j] != pl.stamp {
			missing = append(missing, j)
		}
	}
	for len(p.files)-start < want && len(missing) > 0 {
		i := r.IntN(len(missing))
		p.files = append(p.files, missing[i])
		missing[i] = missing[len(missing)-1]
		missing = missing[:len(missing)-1]
	}
}

// buildReplicaIndex constructs the inverted CSR index in two passes:
// count replicas per file, prefix-sum into offsets, then scatter node ids.
// Scanning nodes in ascending order keeps every S_j sorted for free.
func (pl *Placer) buildReplicaIndex() {
	p := &pl.p
	clear(pl.counts)
	if p.lens != nil {
		for u := 0; u < pl.n; u++ {
			for _, f := range p.nodeSpan(u) {
				pl.counts[f]++
			}
		}
	} else {
		for _, f := range p.files {
			pl.counts[f]++
		}
	}
	total := int32(0)
	for j := 0; j < pl.k; j++ {
		p.repOff[j] = total
		total += pl.counts[j]
		pl.counts[j] = p.repOff[j] // reuse as fill cursor
	}
	p.repOff[pl.k] = total
	p.nodes = p.nodes[:total]
	for u := 0; u < pl.n; u++ {
		for _, f := range p.nodeSpan(u) {
			p.nodes[pl.counts[f]] = int32(u)
			pl.counts[f]++
		}
	}
	p.cachedFiles = p.cachedFiles[:0]
	for j := 0; j < pl.k; j++ {
		if p.repOff[j+1] > p.repOff[j] {
			p.cachedFiles = append(p.cachedFiles, int32(j))
		}
	}
}

// N returns the number of nodes.
func (p *Placement) N() int { return p.n }

// K returns the library size.
func (p *Placement) K() int { return p.k }

// M returns the per-node slot count.
func (p *Placement) M() int { return p.m }

// Replicas returns S_j, the sorted node list caching file j. The caller
// must not mutate the returned slice.
func (p *Placement) Replicas(j int) []int32 { return p.nodes[p.repOff[j]:p.repOff[j+1]] }

// NodeFiles returns the distinct files cached at node u, sorted ascending
// except on indexed (EnableTiles, churn-disabled) placements, whose lists
// carry unspecified order. The caller must not mutate the returned slice,
// and on churn-enabled placements the slice is only valid until the next
// ReplaceReplica call.
func (p *Placement) NodeFiles(u int) []int32 { return p.nodeSpan(u) }

// Has reports whether node u caches file j. Sorted-scan for the short
// lists that dominate (t(u) ≤ M, typically ≤ a few dozen), binary search
// beyond; both avoid the closure dispatch of sort.Search on what is the
// single hottest lookup of the ball-side candidate sampler. On indexed
// (EnableTiles, churn-disabled) placements, whose node lists are
// unsorted, it falls back to a full linear scan — correct, just not the
// hot-path shape (the index-backed strategies never call it). Churn-
// enabled placements always keep lists sorted, so the fast paths apply.
func (p *Placement) Has(u, j int) bool {
	files := p.nodeSpan(u)
	f := int32(j)
	if p.unsorted {
		for _, v := range files {
			if v == f {
				return true
			}
		}
		return false
	}
	if len(files) <= 32 {
		for _, v := range files {
			if v >= f {
				return v == f
			}
		}
		return false
	}
	_, ok := slices.BinarySearch(files, f)
	return ok
}

// T returns t(u), the number of distinct files cached at node u.
func (p *Placement) T(u int) int {
	if p.lens != nil {
		return int(p.lens[u])
	}
	return int(p.nodeOff[u+1] - p.nodeOff[u])
}

// TPair returns t(u,v) = |T(u,v)|, the number of distinct files cached at
// both u and v, via sorted-list intersection. It panics on indexed
// (EnableTiles, churn-disabled) placements, whose node lists are
// unsorted — better a loud failure than a silently wrong intersection
// count. Churn-enabled placements keep lists sorted and are fine.
func (p *Placement) TPair(u, v int) int {
	if p.unsorted {
		panic("cache: TPair needs sorted node lists; indexed (EnableTiles) placements skip the sort")
	}
	a, b := p.NodeFiles(u), p.NodeFiles(v)
	t, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			t++
			i++
			j++
		}
	}
	return t
}

// CachedFiles returns the sorted list of files with at least one replica
// anywhere in the network. The caller must not mutate the returned slice.
func (p *Placement) CachedFiles() []int32 { return p.cachedFiles }

// UncachedCount returns the number of library files with zero replicas.
// Non-zero values trigger the miss policies discussed in DESIGN.md §4.4.
func (p *Placement) UncachedCount() int { return p.k - len(p.cachedFiles) }

// Goodness summarizes Definition 5: the placement is (δ, µ)-good when
// every node has t(u) ≥ δM and every sampled pair has t(u,v) < µ.
type Goodness struct {
	MinT     int     // min_u t(u)
	MeanT    float64 // average t(u)
	MaxPairT int     // max t(u,v) over the sampled pairs
	Pairs    int     // number of pairs inspected
}

// IsGood reports whether the summary satisfies the (δ, µ) thresholds.
func (g Goodness) IsGood(delta float64, mu int, m int) bool {
	return float64(g.MinT) >= delta*float64(m) && g.MaxPairT < mu
}

// CheckGoodness computes the goodness summary. Exhaustive pair checking is
// Θ(n²); pairSamples > 0 bounds the work by sampling random pairs instead
// (0 means exhaustive, which is fine for n ≤ a few thousand).
func (p *Placement) CheckGoodness(pairSamples int, r *rand.Rand) Goodness {
	g := Goodness{MinT: p.m + 1}
	sum := 0
	for u := 0; u < p.n; u++ {
		t := p.T(u)
		sum += t
		if t < g.MinT {
			g.MinT = t
		}
	}
	g.MeanT = float64(sum) / float64(p.n)
	if pairSamples <= 0 {
		for u := 0; u < p.n; u++ {
			for v := u + 1; v < p.n; v++ {
				if t := p.TPair(u, v); t > g.MaxPairT {
					g.MaxPairT = t
				}
				g.Pairs++
			}
		}
		return g
	}
	for i := 0; i < pairSamples; i++ {
		u := r.IntN(p.n)
		v := r.IntN(p.n)
		if u == v {
			continue
		}
		if t := p.TPair(u, v); t > g.MaxPairT {
			g.MaxPairT = t
		}
		g.Pairs++
	}
	return g
}

// ReplicaCountHistogram returns counts[c] = number of files with exactly c
// replicas, for c in 0..n (used by Example 2's analysis and by tests).
func (p *Placement) ReplicaCountHistogram() []int {
	maxC := 0
	for j := 0; j < p.k; j++ {
		if c := p.ReplicaCount(j); c > maxC {
			maxC = c
		}
	}
	counts := make([]int, maxC+1)
	for j := 0; j < p.k; j++ {
		counts[p.ReplicaCount(j)]++
	}
	return counts
}

// ReplicaCount returns |S_j| without materializing the slice header.
func (p *Placement) ReplicaCount(j int) int { return int(p.repOff[j+1] - p.repOff[j]) }
