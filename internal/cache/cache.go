// Package cache implements the paper's cache content placement phase
// (§II-B): every node independently caches M files drawn i.i.d. from the
// popularity profile *with replacement* (proportional placement). The
// package also maintains the inverted replica index used by both request
// assignment strategies, and exposes the structural quantities t(u) and
// t(u,v) from the goodness property (Definition 5, Lemma 2).
package cache

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/dist"
)

// Mode selects how the M slots of a node are filled.
type Mode int

const (
	// WithReplacement matches the paper: M i.i.d. draws per node, so a
	// node may cache fewer than M *distinct* files (t(u) ≤ M).
	WithReplacement Mode = iota
	// WithoutReplacement is an ablation variant: M distinct files per
	// node, drawn by popularity-weighted sampling without replacement.
	WithoutReplacement
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case WithReplacement:
		return "with-replacement"
	case WithoutReplacement:
		return "without-replacement"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Placement is an immutable cache assignment for n nodes over a K-file
// library. Build one per simulation trial with Place.
type Placement struct {
	n, k, m int

	// nodeFiles[u] lists the distinct files cached at node u, sorted
	// ascending (length t(u) ≤ M).
	nodeFiles [][]int32

	// replicas[j] lists the nodes caching file j (sorted ascending).
	// This is S_j in the paper's notation.
	replicas [][]int32

	// cachedFiles lists files with at least one replica, ascending.
	cachedFiles []int32
}

// Place draws a placement: n nodes, M slots each, files sampled from pop.
// It panics on non-positive n or m (misconfiguration, not runtime input).
func Place(n, m int, pop dist.Popularity, mode Mode, r *rand.Rand) *Placement {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("cache: need n > 0 and m > 0, got n=%d m=%d", n, m))
	}
	k := pop.K()
	p := &Placement{
		n:         n,
		k:         k,
		m:         m,
		nodeFiles: make([][]int32, n),
		replicas:  make([][]int32, k),
	}
	scratch := make([]int32, 0, m)
	for u := 0; u < n; u++ {
		scratch = scratch[:0]
		switch mode {
		case WithReplacement:
			for s := 0; s < m; s++ {
				scratch = append(scratch, int32(pop.Sample(r)))
			}
		case WithoutReplacement:
			if m >= k {
				// Degenerate: cache the whole library.
				for j := 0; j < k; j++ {
					scratch = append(scratch, int32(j))
				}
			} else {
				// Rejection sampling is fast while m << K (the paper's
				// M ≪ K standing assumption); fall back to a marked
				// sweep when the ratio is high.
				seen := make(map[int32]bool, m)
				tries := 0
				for len(scratch) < m {
					f := int32(pop.Sample(r))
					if !seen[f] {
						seen[f] = true
						scratch = append(scratch, f)
					}
					tries++
					if tries > 64*m && len(scratch) < m {
						scratch = fillRemainder(scratch, m, seen, k, r)
						break
					}
				}
			}
		default:
			panic(fmt.Sprintf("cache: unknown mode %v", mode))
		}
		p.setNode(u, scratch)
	}
	for j, s := range p.replicas {
		if len(s) > 0 {
			p.cachedFiles = append(p.cachedFiles, int32(j))
		}
		_ = s
	}
	return p
}

// fillRemainder completes a without-replacement draw uniformly over the
// unseen files when popularity rejection stalls (extremely skewed Zipf).
func fillRemainder(scratch []int32, m int, seen map[int32]bool, k int, r *rand.Rand) []int32 {
	missing := make([]int32, 0, k-len(seen))
	for j := int32(0); j < int32(k); j++ {
		if !seen[j] {
			missing = append(missing, j)
		}
	}
	for len(scratch) < m && len(missing) > 0 {
		i := r.IntN(len(missing))
		scratch = append(scratch, missing[i])
		missing[i] = missing[len(missing)-1]
		missing = missing[:len(missing)-1]
	}
	return scratch
}

// setNode dedupes, sorts and stores the slot draws for node u and updates
// the replica index.
func (p *Placement) setNode(u int, slots []int32) {
	distinct := append([]int32(nil), slots...)
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	w := 0
	for i, f := range distinct {
		if i == 0 || f != distinct[w-1] {
			distinct[w] = f
			w++
		}
	}
	distinct = distinct[:w]
	p.nodeFiles[u] = distinct
	for _, f := range distinct {
		p.replicas[f] = append(p.replicas[f], int32(u))
	}
}

// N returns the number of nodes.
func (p *Placement) N() int { return p.n }

// K returns the library size.
func (p *Placement) K() int { return p.k }

// M returns the per-node slot count.
func (p *Placement) M() int { return p.m }

// Replicas returns S_j, the sorted node list caching file j. The caller
// must not mutate the returned slice.
func (p *Placement) Replicas(j int) []int32 { return p.replicas[j] }

// NodeFiles returns the sorted distinct files cached at node u. The caller
// must not mutate the returned slice.
func (p *Placement) NodeFiles(u int) []int32 { return p.nodeFiles[u] }

// Has reports whether node u caches file j (binary search, O(log t(u))).
func (p *Placement) Has(u, j int) bool {
	files := p.nodeFiles[u]
	i := sort.Search(len(files), func(i int) bool { return files[i] >= int32(j) })
	return i < len(files) && files[i] == int32(j)
}

// T returns t(u), the number of distinct files cached at node u.
func (p *Placement) T(u int) int { return len(p.nodeFiles[u]) }

// TPair returns t(u,v) = |T(u,v)|, the number of distinct files cached at
// both u and v, via sorted-list intersection.
func (p *Placement) TPair(u, v int) int {
	a, b := p.nodeFiles[u], p.nodeFiles[v]
	t, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			t++
			i++
			j++
		}
	}
	return t
}

// CachedFiles returns the sorted list of files with at least one replica
// anywhere in the network. The caller must not mutate the returned slice.
func (p *Placement) CachedFiles() []int32 { return p.cachedFiles }

// UncachedCount returns the number of library files with zero replicas.
// Non-zero values trigger the miss policies discussed in DESIGN.md §4.4.
func (p *Placement) UncachedCount() int { return p.k - len(p.cachedFiles) }

// Goodness summarizes Definition 5: the placement is (δ, µ)-good when
// every node has t(u) ≥ δM and every sampled pair has t(u,v) < µ.
type Goodness struct {
	MinT     int     // min_u t(u)
	MeanT    float64 // average t(u)
	MaxPairT int     // max t(u,v) over the sampled pairs
	Pairs    int     // number of pairs inspected
}

// IsGood reports whether the summary satisfies the (δ, µ) thresholds.
func (g Goodness) IsGood(delta float64, mu int, m int) bool {
	return float64(g.MinT) >= delta*float64(m) && g.MaxPairT < mu
}

// CheckGoodness computes the goodness summary. Exhaustive pair checking is
// Θ(n²); pairSamples > 0 bounds the work by sampling random pairs instead
// (0 means exhaustive, which is fine for n ≤ a few thousand).
func (p *Placement) CheckGoodness(pairSamples int, r *rand.Rand) Goodness {
	g := Goodness{MinT: p.m + 1}
	sum := 0
	for u := 0; u < p.n; u++ {
		t := p.T(u)
		sum += t
		if t < g.MinT {
			g.MinT = t
		}
	}
	g.MeanT = float64(sum) / float64(p.n)
	if pairSamples <= 0 {
		for u := 0; u < p.n; u++ {
			for v := u + 1; v < p.n; v++ {
				if t := p.TPair(u, v); t > g.MaxPairT {
					g.MaxPairT = t
				}
				g.Pairs++
			}
		}
		return g
	}
	for i := 0; i < pairSamples; i++ {
		u := r.IntN(p.n)
		v := r.IntN(p.n)
		if u == v {
			continue
		}
		if t := p.TPair(u, v); t > g.MaxPairT {
			g.MaxPairT = t
		}
		g.Pairs++
	}
	return g
}

// ReplicaCountHistogram returns counts[c] = number of files with exactly c
// replicas, for c in 0..n (used by Example 2's analysis and by tests).
func (p *Placement) ReplicaCountHistogram() []int {
	maxC := 0
	for _, s := range p.replicas {
		if len(s) > maxC {
			maxC = len(s)
		}
	}
	counts := make([]int, maxC+1)
	for _, s := range p.replicas {
		counts[len(s)]++
	}
	return counts
}
