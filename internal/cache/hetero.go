package cache

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"repro/internal/dist"
)

// This file implements node arrival — the cache layer of the engine's
// HeteroArrival regime. A vacant node (placed empty by SetHetero's
// vacancy mask) joins the network mid-trial: its forward slab is filled
// with a fresh draw from the placement profile and every derived
// structure is rebuilt in place. Arrivals are the one mutation that
// grows replica segments (|S_j| is invariant under ReplaceReplica and
// SwapReplicas, which is what lets those splice), so the replica CSR and
// the tile index cannot be spliced here — they are rebuilt into the same
// arenas, which EnableHetero budgeted for the worst case. Rebuild cost
// is O(Σ M_u), the cost of the scatter passes of a from-scratch build;
// the engine triggers at most a handful of arrivals per trial, all at
// chunk barriers.

// ArriveNode fills vacant node u with up to Cap(u) files drawn from pop
// (the same per-node draw a from-scratch build performs) and rebuilds
// the replica CSR — and, when present, the tile index — in place. The
// capacity-padded tile directories are re-padded to the grown segment
// widths (see buildMutableDirectory), which is the rebuild half of the
// grow-or-rebuild contract asserted by the replaceReplica overflow
// panic. Allocation-free; the Placement and TileIndex pointers returned
// by the preceding Place stay valid because the rebuild rewrites their
// backing arrays. It panics unless the Placer is hetero- and
// churn-enabled and node u is currently empty.
func (pl *Placer) ArriveNode(u int32, pop dist.Popularity, mode Mode, r *rand.Rand) {
	p := &pl.p
	if !pl.hetero {
		panic("cache: ArriveNode needs EnableHetero")
	}
	if !pl.mutable {
		panic("cache: ArriveNode needs a churn-enabled placement (Placer.EnableChurn)")
	}
	if p.lens[u] != 0 {
		panic(fmt.Sprintf("cache: ArriveNode: node %d is not vacant (t=%d)", u, p.lens[u]))
	}
	base, want := p.slabBase(int(u)), p.Cap(int(u))
	pl.stamp++
	ln := 0
	switch mode {
	case WithReplacement:
		span := pl.draws[base : base+want]
		dist.SampleBatch(pop, r, span)
		for _, f := range span {
			if pl.mark[f] != pl.stamp {
				pl.mark[f] = pl.stamp
				p.files[base+ln] = f
				ln++
			}
		}
	case WithoutReplacement:
		if want >= pl.k {
			for j := int32(0); j < int32(pl.k); j++ {
				p.files[base+ln] = j
				ln++
			}
		} else {
			tries := 0
			for ln < want {
				f := int32(pop.Sample(r))
				if pl.mark[f] != pl.stamp {
					pl.mark[f] = pl.stamp
					p.files[base+ln] = f
					ln++
				}
				tries++
				if tries > 64*want && ln < want {
					ln = pl.fillRemainderMutable(base, ln, want, r)
					break
				}
			}
		}
	default:
		panic(fmt.Sprintf("cache: unknown mode %v", mode))
	}
	slices.Sort(p.files[base : base+ln])
	p.lens[u] = int32(ln)
	if pl.vacant != nil {
		pl.vacant[u] = false
	}
	pl.buildReplicaIndex()
	if pl.tiling != nil {
		pl.buildTileIndex()
	}
}
