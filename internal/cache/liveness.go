package cache

import "repro/internal/grid"

// Liveness tracks which nodes of a fixed-geometry world are alive. The
// fault engine mutates it at chunk barriers (crash and recovery events);
// the strategies consult it on every candidate so dead servers never
// serve requests while the placement itself stays untouched — liveness
// masks serving, it does not move replicas.
//
// Three views of the same state are kept in lockstep so every consumer
// gets its natural O(1) operation:
//
//   - a bitmap (words): Live(u) is one load and one mask — the per
//     candidate check on the strategies' hot paths;
//   - a permutation (perm/pos): perm[0:live] holds the live nodes and
//     perm[live:] the dead ones, with pos as its inverse, so Kill and
//     Revive are O(1) boundary swaps and the fault scheduler draws a
//     uniform live (or dead) node with a single bounded random index —
//     no rejection loop that degenerates as the world empties;
//   - optional per-tile live counts (tileLive, via BindTiling): the
//     spatial replica index skips whole tiles whose live count is zero
//     before touching their replica runs.
//
// Not safe for concurrent mutation; the engine mutates it only at chunk
// barriers, between which workers read it concurrently.
type Liveness struct {
	n     int
	words []uint64
	perm  []int32
	pos   []int32
	live  int

	tl       *grid.Tiling
	tileLive []int32
}

// NewLiveness returns a tracker over n nodes, all live.
func NewLiveness(n int) *Liveness {
	lv := &Liveness{
		n:     n,
		words: make([]uint64, (n+63)/64),
		perm:  make([]int32, n),
		pos:   make([]int32, n),
	}
	lv.Reset()
	return lv
}

// BindTiling attaches per-tile live counts over tl (nil detaches). The
// counts are maintained incrementally by Kill/Revive; TileLive reads them.
func (lv *Liveness) BindTiling(tl *grid.Tiling) {
	lv.tl = tl
	if tl == nil {
		lv.tileLive = nil
		return
	}
	if cap(lv.tileLive) < tl.Tiles() {
		lv.tileLive = make([]int32, tl.Tiles())
	}
	lv.tileLive = lv.tileLive[:tl.Tiles()]
	for i := range lv.tileLive {
		lv.tileLive[i] = 0
	}
	for u := int32(0); u < int32(lv.n); u++ {
		if lv.Live(int(u)) {
			lv.tileLive[tl.TileOf(u)]++
		}
	}
}

// Reset revives every node (the per-trial initial state).
func (lv *Liveness) Reset() {
	for i := range lv.words {
		lv.words[i] = ^uint64(0)
	}
	if tail := lv.n % 64; tail != 0 {
		lv.words[len(lv.words)-1] = (uint64(1) << tail) - 1
	}
	for i := range lv.perm {
		lv.perm[i] = int32(i)
		lv.pos[i] = int32(i)
	}
	lv.live = lv.n
	if lv.tl != nil {
		lv.BindTiling(lv.tl)
	}
}

// Live reports whether node u is alive.
func (lv *Liveness) Live(u int) bool {
	return lv.words[uint(u)>>6]&(1<<(uint(u)&63)) != 0
}

// LiveCount returns the number of live nodes.
func (lv *Liveness) LiveCount() int { return lv.live }

// DeadCount returns the number of dead nodes.
func (lv *Liveness) DeadCount() int { return lv.n - lv.live }

// LiveAt returns the i-th live node, 0 ≤ i < LiveCount(). The mapping is
// a bijection onto the live set, so a uniform i draws a uniform live node.
func (lv *Liveness) LiveAt(i int) int32 { return lv.perm[i] }

// DeadAt returns the i-th dead node, 0 ≤ i < DeadCount().
func (lv *Liveness) DeadAt(i int) int32 { return lv.perm[lv.live+i] }

// Kill marks node u dead. It reports false (and does nothing) when u is
// already dead.
func (lv *Liveness) Kill(u int32) bool {
	if !lv.Live(int(u)) {
		return false
	}
	lv.words[uint(u)>>6] &^= 1 << (uint(u) & 63)
	lv.live--
	lv.swap(u, int32(lv.live))
	if lv.tileLive != nil {
		lv.tileLive[lv.tl.TileOf(u)]--
	}
	return true
}

// Revive marks node u live again. It reports false (and does nothing)
// when u is already live.
func (lv *Liveness) Revive(u int32) bool {
	if lv.Live(int(u)) {
		return false
	}
	lv.words[uint(u)>>6] |= 1 << (uint(u) & 63)
	lv.swap(u, int32(lv.live))
	lv.live++
	if lv.tileLive != nil {
		lv.tileLive[lv.tl.TileOf(u)]++
	}
	return true
}

// swap moves node u to permutation slot j (the live/dead boundary).
func (lv *Liveness) swap(u, j int32) {
	i := lv.pos[u]
	v := lv.perm[j]
	lv.perm[i], lv.perm[j] = v, u
	lv.pos[v], lv.pos[u] = i, j
}

// TileLive returns the live-node count of tile tid. Valid only after
// BindTiling.
func (lv *Liveness) TileLive(tid int32) int32 { return lv.tileLive[tid] }

// Tiling returns the tiling bound by BindTiling, or nil.
func (lv *Liveness) Tiling() *grid.Tiling { return lv.tl }
