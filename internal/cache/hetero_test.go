package cache

import (
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/dist"
	"repro/internal/grid"
)

// heteroCaps returns a mixed capacity vector in [1, maxCap] with every
// value hit, the deterministic skew the variable-stride tests run under.
func heteroCaps(n, maxCap int) []int32 {
	caps := make([]int32, n)
	for u := range caps {
		caps[u] = int32(1 + u%maxCap)
	}
	return caps
}

// TestHeteroDegenerateMatchesHomogeneous: a hetero-enabled Placer whose
// capacity vector is uniformly M must reproduce the homogeneous engine's
// placement draw for draw — same RNG history, same node lists, same
// replica CSR, same cached set — across placement modes and layouts.
// The variable-stride CSR (per-node capOff offsets instead of the
// M-stride slab) is a pure layout change.
func TestHeteroDegenerateMatchesHomogeneous(t *testing.T) {
	const side, m, k = 8, 3, 60
	n := side * side
	g := grid.New(side, grid.Torus)
	pop := dist.NewZipf(k, 1.0)
	caps := make([]int32, n)
	for u := range caps {
		caps[u] = m
	}
	for _, mode := range []Mode{WithReplacement, WithoutReplacement} {
		for _, layout := range []struct {
			name          string
			tiles, mutate bool
		}{
			{name: "immutable"},
			{name: "churn", mutate: true},
			{name: "churn+tiles", tiles: true, mutate: true},
		} {
			r1 := rand.New(rand.NewPCG(7, 9))
			r2 := rand.New(rand.NewPCG(7, 9))
			ref := NewPlacer(n, m, k).Place(pop, mode, r1)
			het := NewPlacer(n, m, k)
			het.EnableHetero(m)
			if layout.tiles {
				het.EnableTiles(g.NewTiling(2))
			}
			if layout.mutate {
				het.EnableChurn()
			}
			het.SetHetero(caps, nil)
			got := het.Place(pop, mode, r2)
			for u := 0; u < n; u++ {
				if got.Cap(u) != m {
					t.Fatalf("mode=%v %s node %d: Cap=%d, want %d", mode, layout.name, u, got.Cap(u), m)
				}
				gf := slices.Clone(got.NodeFiles(u))
				slices.Sort(gf)
				if !slices.Equal(ref.NodeFiles(u), gf) {
					t.Fatalf("mode=%v %s node %d: files %v != %v", mode, layout.name, u, gf, ref.NodeFiles(u))
				}
			}
			for j := 0; j < k; j++ {
				if !slices.Equal(ref.Replicas(j), got.Replicas(j)) {
					t.Fatalf("mode=%v %s file %d: replicas differ", mode, layout.name, j)
				}
			}
			if !slices.Equal(ref.CachedFiles(), got.CachedFiles()) {
				t.Fatalf("mode=%v %s: cached sets differ", mode, layout.name)
			}
		}
	}
}

// TestHeteroStormAgainstRebuild is the variable-stride extension of
// TestReplaceReplicaStorm: over a mixed-capacity placement with vacant
// nodes, random legal migration/swap batches interleave with node
// arrivals (which rebuild the replica CSR and tile index in place), and
// after every batch each incremental structure must be set-equal to a
// from-scratch rebuild. This is the property contract that lets churn
// and arrivals compose mid-trial.
func TestHeteroStormAgainstRebuild(t *testing.T) {
	const side, m, k, maxCap = 8, 3, 60, 6
	n := side * side
	g := grid.New(side, grid.Torus)
	caps := heteroCaps(n, maxCap)
	for _, tc := range []struct {
		name  string
		pop   dist.Popularity
		tiles bool
		mode  Mode
	}{
		{name: "uniform/plain", pop: dist.NewUniform(k)},
		{name: "uniform/tiles", pop: dist.NewUniform(k), tiles: true},
		{name: "zipf/tiles", pop: dist.NewZipf(k, 1.2), tiles: true},
		{name: "zipf/tiles/without-replacement", pop: dist.NewZipf(k, 1.2), tiles: true, mode: WithoutReplacement},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewPCG(0xBEEF, 21))
			pl := NewPlacer(n, m, k)
			pl.EnableHetero(maxCap)
			var tl *grid.Tiling
			if tc.tiles {
				tl = g.NewTiling(2)
				pl.EnableTiles(tl)
			}
			pl.EnableChurn()
			vacant := make([]bool, n)
			var vacantList []int32
			for u := 0; u < n; u += 5 {
				vacant[u] = true
				vacantList = append(vacantList, int32(u))
			}
			pl.SetHetero(caps, vacant)
			p := pl.Place(tc.pop, tc.mode, r)
			for _, u := range vacantList {
				if p.T(int(u)) != 0 {
					t.Fatalf("vacant node %d placed with %d files", u, p.T(int(u)))
				}
			}
			checkAgainstRebuild(t, p, tl)
			moved, swapped, arrived := 0, 0, 0
			for batch := 0; batch < 24; batch++ {
				for e := 0; e < 25; e++ {
					slot := r.IntN(p.ReplicaSlots())
					j, u := p.SlotReplica(slot)
					v := int32(r.IntN(n))
					if vacant[v] {
						continue // the engine's vacant-destination skip
					}
					if p.CanReplace(j, u, v) {
						p.ReplaceReplica(j, u, v)
						moved++
						continue
					}
					if v == u || p.Has(int(v), j) || p.T(int(v)) < p.Cap(int(v)) {
						continue
					}
					vFiles := p.NodeFiles(int(v))
					j2 := int(vFiles[r.IntN(len(vFiles))])
					if p.CanSwap(j, u, j2, v) {
						p.SwapReplicas(j, u, j2, v)
						swapped++
					}
				}
				if batch%4 == 3 && len(vacantList) > 0 {
					i := r.IntN(len(vacantList))
					u := vacantList[i]
					vacantList[i] = vacantList[len(vacantList)-1]
					vacantList = vacantList[:len(vacantList)-1]
					pl.ArriveNode(u, tc.pop, tc.mode, r)
					vacant[u] = false
					if p.T(int(u)) == 0 {
						t.Fatalf("arrival left node %d empty", u)
					}
					arrived++
				}
				checkAgainstRebuild(t, p, tl)
			}
			// Without-replacement fills every node to capacity, so plain
			// migrations are degenerate there (see
			// TestWithoutReplacementChurnDegenerate) — churn is swap-only.
			if (moved == 0 && tc.mode != WithoutReplacement) || swapped == 0 || arrived < 3 {
				t.Fatalf("storm too tame (moved=%d swapped=%d arrived=%d); test is vacuous",
					moved, swapped, arrived)
			}
			// A re-Place on the same Placer must fully reset the arenas.
			pl.SetHetero(caps, nil)
			p = pl.Place(tc.pop, tc.mode, r)
			checkAgainstRebuild(t, p, tl)
		})
	}
}

// TestHeteroArriveNodeRepadsDirectory pins the rebuild half of the
// grow-or-rebuild contract: an arrival grows |S_j| for every file the
// joining node drew, and the rebuild must re-pad each sparse file's
// tile-directory capacity to min(|S_j|, Tiles) — so post-arrival churn
// splices have the headroom the capacity panic assumes.
func TestHeteroArriveNodeRepadsDirectory(t *testing.T) {
	const side, m, k, maxCap = 8, 3, 60, 6
	n := side * side
	g := grid.New(side, grid.Torus)
	tl := g.NewTiling(2)
	pop := dist.NewUniform(k)
	r := rand.New(rand.NewPCG(4, 44))
	pl := NewPlacer(n, m, k)
	pl.EnableHetero(maxCap)
	pl.EnableTiles(tl)
	pl.EnableChurn()
	caps := heteroCaps(n, maxCap)
	vacant := make([]bool, n)
	u := int32(17)
	caps[u] = maxCap // the arrival draws a full-width slab
	vacant[u] = true
	pl.SetHetero(caps, vacant)
	p := pl.Place(pop, WithReplacement, r)

	pl.ArriveNode(u, pop, WithReplacement, r)
	if p.T(int(u)) == 0 {
		t.Fatal("arrival left the node empty")
	}
	ix := p.TileIndex()
	grown := 0
	for j := 0; j < k; j++ {
		want := int32(0)
		if ix.FileBits(j) == nil {
			want = min(int32(len(p.Replicas(j))), int32(tl.Tiles()))
		}
		if got := ix.dirOff[j+1] - ix.dirOff[j]; got != want {
			t.Fatalf("file %d: directory capacity %d after arrival, want %d", j, got, want)
		}
	}
	for _, f := range p.NodeFiles(int(u)) {
		if ix.FileBits(int(f)) == nil {
			grown++
		}
	}
	if grown == 0 {
		t.Fatal("arrival grew no sparse file; re-pad not exercised")
	}
	checkAgainstRebuild(t, p, tl)

	// Post-arrival splices must still be legal against the re-padded
	// directory.
	moved := 0
	for e := 0; e < 200; e++ {
		slot := r.IntN(p.ReplicaSlots())
		j, src := p.SlotReplica(slot)
		v := int32(r.IntN(n))
		if !vacantSkip(vacant, v) && p.CanReplace(j, src, v) {
			p.ReplaceReplica(j, src, v)
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no post-arrival migration applied; splice headroom not exercised")
	}
	checkAgainstRebuild(t, p, tl)
}

func vacantSkip(vacant []bool, v int32) bool { return vacant[v] }

// TestHeteroTileDirectoryOverflowPanics pins the loud half of the
// grow-or-rebuild contract: a splice that needs a directory entry beyond
// the file's padded capacity — the state a grown |S_j| reaches when a
// caller skips the ArriveNode rebuild — must panic rather than corrupt a
// neighbouring file's directory. The test forges the stale-capacity
// state by clamping one file's capacity to its current length.
func TestHeteroTileDirectoryOverflowPanics(t *testing.T) {
	const side, m, k = 8, 3, 60
	n := side * side
	g := grid.New(side, grid.Torus)
	tl := g.NewTiling(2)
	pop := dist.NewUniform(k)
	r := rand.New(rand.NewPCG(12, 13))
	pl := NewPlacer(n, m, k)
	pl.EnableTiles(tl)
	pl.EnableChurn()
	p := pl.Place(pop, WithReplacement, r)
	ix := p.TileIndex()

	// Find a migration that must insert a NEW directory entry without
	// freeing one: u's tile run holds ≥ 2 replicas (no removal) and v's
	// tile is absent from the directory (insertion).
	for j := 0; j < k; j++ {
		if ix.FileBits(j) != nil || len(p.Replicas(j)) < 2 {
			continue
		}
		tiles, starts, segEnd := ix.FileRuns(j)
		for d, tu := range tiles {
			end := segEnd
			if d+1 < len(starts) {
				end = starts[d+1]
			}
			if end-starts[d] < 2 {
				continue // removal would drop the entry and free a slot
			}
			u := ix.Nodes()[starts[d]]
			for v := int32(0); v < int32(n); v++ {
				tv := tl.TileOf(v)
				if tv == tu || !p.CanReplace(j, u, v) {
					continue
				}
				if _, present := slices.BinarySearch(tiles, tv); present {
					continue
				}
				// Forge the stale capacity: pretend the build padded file
				// j only to its current directory length.
				ix.dirOff[j+1] = ix.dirOff[j] + ix.dirLen[j]
				mustPanic(t, "directory overflow", func() { p.ReplaceReplica(j, u, v) })
				return
			}
		}
	}
	t.Fatal("no overflow-inducing migration found; placement shape too degenerate")
}

// TestHeteroArriveNodePanics pins the precondition contract.
func TestHeteroArriveNodePanics(t *testing.T) {
	pop := dist.NewUniform(10)
	r := rand.New(rand.NewPCG(1, 2))

	plain := NewPlacer(9, 2, 10)
	plain.EnableChurn()
	plain.Place(pop, WithReplacement, r)
	mustPanic(t, "no EnableHetero", func() { plain.ArriveNode(0, pop, WithReplacement, r) })

	frozen := NewPlacer(9, 2, 10)
	frozen.EnableHetero(2)
	frozen.SetHetero([]int32{2, 2, 2, 2, 2, 2, 2, 2, 2}, nil)
	frozen.Place(pop, WithReplacement, r)
	mustPanic(t, "immutable layout", func() { frozen.ArriveNode(0, pop, WithReplacement, r) })

	het := NewPlacer(9, 2, 10)
	het.EnableHetero(2)
	het.EnableChurn()
	het.SetHetero([]int32{2, 2, 2, 2, 2, 2, 2, 2, 2}, make([]bool, 9))
	p := het.Place(pop, WithReplacement, r)
	var occupied int32 = -1
	for u := 0; u < 9; u++ {
		if p.T(u) > 0 {
			occupied = int32(u)
			break
		}
	}
	if occupied < 0 {
		t.Fatal("placement left every node empty")
	}
	mustPanic(t, "non-vacant node", func() { het.ArriveNode(occupied, pop, WithReplacement, r) })
}
