package cache

import "repro/internal/grid"

// TileIndex is the spatial replica index: every file's replica list
// re-ordered tile-major (by grid.Tiling tile id, node ids ascending
// inside a tile) plus a sparse per-file tile directory, so the radius-
// bounded strategies can enumerate S_j ∩ B_r(u) by walking only the
// tiles overlapping B_r(u) instead of the whole replica list or ball.
//
// Layout, mirroring the Placement CSR:
//
//	nodes[repOff[j]:repOff[j+1]]   — S_j re-ordered tile-major
//	dirTiles[dirOff[j]:dirOff[j+1]] — the distinct tiles holding replicas
//	                                  of j, ascending
//	dirStart[d]                    — offset into nodes of directory entry
//	                                  d's run; the run ends at the next
//	                                  entry's start (or the segment end)
//
// A TileIndex is built into reusable arenas by its Placer and is
// invalidated, like the Placement that carries it, by the next Place
// call on that Placer. On churn-enabled builds (Placer.EnableChurn) the
// index is additionally maintained incrementally: every
// Placement.ReplaceReplica splices the affected tile run, directory and
// bitmap in place (see churn.go), so readers always observe a state
// identical to a from-scratch rebuild of the mutated placement.
type TileIndex struct {
	tl       *grid.Tiling
	repOff   []int32 // borrowed from the Placement (length k+1)
	nodes    []int32
	dirTiles []int32
	dirStart []int32
	dirOff   []int32 // length k+1
	// dirLen holds per-file directory lengths on churn-enabled builds,
	// whose dirOff prefixes pad each file to its capacity
	// min(|S_j|, Tiles) so replaceReplica can insert entries in place.
	// nil on immutable builds (length = dirOff[j+1]-dirOff[j]).
	dirLen []int32

	// Dense-file bitmaps: files with |S_j| ≥ n/8 (at most 8M of them,
	// since Σ|S_j| ≤ nM) get a node bitmap, so the strategies can sample
	// them by ball-cell rejection — O(1) membership, acceptance ≥ 1/8 —
	// instead of walking tile runs. Under Zipf request skew these few
	// files carry half the stream.
	bitWords []uint64 // block arena: one n-bit map per dense file
	bitOf    []int32  // per file: block index, or -1
	wordsPer int
	blocks   int // blocks handed out this placement

	entryTile []int32 // build scratch: tile of each nodes[] entry
}

// denseBitThreshold returns the replica count from which a file gets a
// bitmap: an eighth of the nodes.
func denseBitThreshold(n int) int32 { return int32((n + 7) / 8) }

// Tiling returns the tile geometry the index buckets by.
func (ix *TileIndex) Tiling() *grid.Tiling { return ix.tl }

// Nodes returns the tile-major replica arena; FileRuns offsets index
// into it. The caller must not mutate it.
func (ix *TileIndex) Nodes() []int32 { return ix.nodes }

// Replicas returns S_j in tile-major order (a permutation of
// Placement.Replicas(j)) for files below the dense threshold. Dense
// files (FileBits != nil) carry no tile-major list — their segment is
// stale scratch; query them through the bitmap. The caller must not
// mutate the returned slice.
func (ix *TileIndex) Replicas(j int) []int32 { return ix.nodes[ix.repOff[j]:ix.repOff[j+1]] }

// FileRuns returns file j's tile directory: tiles[d] holds replicas
// nodes[starts[d]:end(d)] where end(d) is starts[d+1] for all but the
// last entry, and segEnd for the last. Both slices are empty for files
// with no replicas (and for dense bitmap files). The caller must not
// mutate them.
func (ix *TileIndex) FileRuns(j int) (tiles, starts []int32, segEnd int32) {
	lo, hi := ix.dirOff[j], ix.dirOff[j+1]
	if ix.dirLen != nil {
		hi = lo + ix.dirLen[j]
	}
	return ix.dirTiles[lo:hi], ix.dirStart[lo:hi], ix.repOff[j+1]
}

// FileBits returns file j's node bitmap (bit u set ⇔ u ∈ S_j), or nil
// when j is below the dense threshold. The caller must not mutate it.
func (ix *TileIndex) FileBits(j int) []uint64 {
	b := ix.bitOf[j]
	if b < 0 {
		return nil
	}
	return ix.bitWords[int(b)*ix.wordsPer : (int(b)+1)*ix.wordsPer]
}

// EnableTiles makes every subsequent Place call additionally build a
// TileIndex over tl into reusable arenas, attached to the returned
// Placement. The tiling must cover the same node count as the Placer.
//
// Indexed placements skip the per-node file-list sort: the replica-side
// CSR (Replicas, ReplicaCount, CachedFiles) is bit-identical either
// way, but NodeFiles order becomes unspecified, so NodeFiles-order
// consumers (Has, TPair, CheckGoodness) must not be used on them. The
// index-backed strategies never are.
func (pl *Placer) EnableTiles(tl *grid.Tiling) {
	if tl.Grid().N() != pl.n {
		panic("cache: tiling and placer disagree on node count")
	}
	if pl.tiling == tl {
		return
	}
	pl.tiling = tl
	pl.noSort = !pl.mutable // churn keeps lists sorted for in-place splices
	arena := pl.n * min(pl.slotCap(), pl.k)
	wordsPer := (pl.n + 63) / 64
	// Σ|S_j| ≤ n·slotCap bounds files above n/8 (slotCap = M, or the
	// heterogeneous maxCap under EnableHetero).
	maxDense := min(8*pl.slotCap(), pl.k)
	pl.tix = TileIndex{
		tl:        tl,
		nodes:     make([]int32, arena),
		entryTile: make([]int32, arena),
		dirTiles:  make([]int32, 0, arena),
		dirStart:  make([]int32, 0, arena),
		dirOff:    make([]int32, pl.k+1),
		bitWords:  make([]uint64, maxDense*wordsPer),
		bitOf:     make([]int32, pl.k),
		wordsPer:  wordsPer,
	}
}

// buildTileIndex fills the index arenas for the placement just built.
// Dense files get node bitmaps (sampled by ball-cell rejection, so they
// need no tile runs and are skipped by the scatter); every other file's
// replicas are scattered tile-major through per-file cursors (each
// segment comes out sorted by tile for free, exactly like the replica
// index scatter sorts by node), then each segment is walked once to emit
// its directory runs. All passes are O(n·M).
func (pl *Placer) buildTileIndex() {
	p, ix := &pl.p, &pl.tix

	// Dense-file bitmaps first — the scatter consults them. Clear only
	// the blocks the previous placement used; the block count cannot
	// exceed the arena by the Σ|S_j| ≤ nM argument.
	clear(ix.bitWords[:ix.blocks*ix.wordsPer])
	ix.blocks = 0
	thresh := denseBitThreshold(pl.n)
	for j := range ix.bitOf {
		ix.bitOf[j] = -1
	}
	for _, j := range p.cachedFiles {
		if p.repOff[j+1]-p.repOff[j] < thresh {
			continue
		}
		words := ix.bitWords[ix.blocks*ix.wordsPer : (ix.blocks+1)*ix.wordsPer]
		for _, u := range p.nodes[p.repOff[j]:p.repOff[j+1]] {
			words[u>>6] |= 1 << (uint(u) & 63)
		}
		ix.bitOf[j] = int32(ix.blocks)
		ix.blocks++
	}

	ix.repOff = p.repOff
	copy(pl.counts, p.repOff[:pl.k]) // reuse counts as fill cursors
	ix.nodes = ix.nodes[:len(p.nodes)]
	ix.entryTile = ix.entryTile[:len(p.nodes)]
	// Iterating tiles through the order index makes each entry's tile id
	// free (no per-node lookup or division); recording it alongside the
	// scatter lets the directory walk below read tiles sequentially.
	order, orderOff := pl.tiling.Order(), pl.tiling.OrderOff()
	for tid := int32(0); tid < int32(pl.tiling.Tiles()); tid++ {
		for _, u := range order[orderOff[tid]:orderOff[tid+1]] {
			for _, f := range p.nodeSpan(int(u)) {
				if ix.bitOf[f] >= 0 {
					continue // dense: served by the bitmap, no runs needed
				}
				ix.nodes[pl.counts[f]] = u
				ix.entryTile[pl.counts[f]] = tid
				pl.counts[f]++
			}
		}
	}
	if pl.mutable {
		pl.buildMutableDirectory()
	} else {
		ix.dirTiles, ix.dirStart = ix.dirTiles[:0], ix.dirStart[:0]
		for j := 0; j < pl.k; j++ {
			ix.dirOff[j] = int32(len(ix.dirTiles))
			if ix.bitOf[j] >= 0 {
				continue // dense: empty directory by design
			}
			last := int32(-1)
			for i := p.repOff[j]; i < p.repOff[j+1]; i++ {
				if tid := ix.entryTile[i]; tid != last {
					ix.dirTiles = append(ix.dirTiles, tid)
					ix.dirStart = append(ix.dirStart, i)
					last = tid
				}
			}
		}
		ix.dirOff[pl.k] = int32(len(ix.dirTiles))
	}
	p.tix = ix
}

// buildMutableDirectory lays the tile directory out with per-file
// capacity min(|S_j|, Tiles) — the most entries file j can ever occupy,
// since |S_j| is invariant under ReplaceReplica — so replaceReplica can
// insert and remove entries by memmove inside the file's own span.
// Σ capacities ≤ Σ|S_j| keeps the padded layout inside the same arena
// as the tight one. Actual lengths live in dirLen (see FileRuns).
func (pl *Placer) buildMutableDirectory() {
	p, ix := &pl.p, &pl.tix
	if ix.dirLen == nil {
		ix.dirLen = make([]int32, pl.k)
	}
	maxTiles := int32(pl.tiling.Tiles())
	total := int32(0)
	for j := 0; j < pl.k; j++ {
		ix.dirOff[j] = total
		if ix.bitOf[j] < 0 {
			total += min(p.repOff[j+1]-p.repOff[j], maxTiles)
		}
	}
	ix.dirOff[pl.k] = total
	ix.dirTiles = ix.dirTiles[:total]
	ix.dirStart = ix.dirStart[:total]
	for j := 0; j < pl.k; j++ {
		ln := int32(0)
		if ix.bitOf[j] < 0 {
			base := ix.dirOff[j]
			last := int32(-1)
			for i := p.repOff[j]; i < p.repOff[j+1]; i++ {
				if tid := ix.entryTile[i]; tid != last {
					ix.dirTiles[base+ln] = tid
					ix.dirStart[base+ln] = i
					ln++
					last = tid
				}
			}
		}
		ix.dirLen[j] = ln
	}
}
