package cache

import (
	"math/rand/v2"
	"testing"

	"repro/internal/grid"
)

// livenessInvariants cross-checks the three views of one Liveness: the
// bitmap, the perm/pos permutation, and (when bound) the per-tile live
// counts, against each other and against a brute-force recount.
func livenessInvariants(t *testing.T, lv *Liveness) {
	t.Helper()
	n := lv.n
	// perm must be a permutation of [0, n) and pos its inverse.
	seen := make([]bool, n)
	for i, u := range lv.perm {
		if u < 0 || int(u) >= n || seen[u] {
			t.Fatalf("perm[%d] = %d is not a permutation entry", i, u)
		}
		seen[u] = true
		if lv.pos[u] != int32(i) {
			t.Fatalf("pos[%d] = %d, want %d", u, lv.pos[u], i)
		}
	}
	// perm[0:live] must be exactly the bitmap's live set.
	live := 0
	for u := 0; u < n; u++ {
		if lv.Live(u) {
			live++
			if lv.pos[u] >= int32(lv.live) {
				t.Fatalf("live node %d sits in the dead segment (pos %d, boundary %d)", u, lv.pos[u], lv.live)
			}
		} else if lv.pos[u] < int32(lv.live) {
			t.Fatalf("dead node %d sits in the live segment (pos %d, boundary %d)", u, lv.pos[u], lv.live)
		}
	}
	if live != lv.LiveCount() || n-live != lv.DeadCount() {
		t.Fatalf("counts: bitmap %d live, tracker %d live / %d dead", live, lv.LiveCount(), lv.DeadCount())
	}
	// Tile counts must match a brute-force recount.
	if tl := lv.Tiling(); tl != nil {
		want := make([]int32, tl.Tiles())
		for u := 0; u < n; u++ {
			if lv.Live(u) {
				want[tl.TileOf(int32(u))]++
			}
		}
		for tid := range want {
			if got := lv.TileLive(int32(tid)); got != want[tid] {
				t.Fatalf("tile %d live count %d, want %d", tid, got, want[tid])
			}
		}
	}
}

// TestLivenessStorm hammers Kill/Revive with a random storm and checks
// every invariant after each phase, with and without a bound tiling.
func TestLivenessStorm(t *testing.T) {
	const side = 9
	n := side * side
	g := grid.New(side, grid.Torus)
	for _, tile := range []int{0, 3} {
		lv := NewLiveness(n)
		if tile > 0 {
			lv.BindTiling(g.NewTiling(tile))
		}
		livenessInvariants(t, lv)
		r := rand.New(rand.NewPCG(11, uint64(tile)))
		for step := 0; step < 2000; step++ {
			u := int32(r.IntN(n))
			wasLive := lv.Live(int(u))
			if r.IntN(2) == 0 {
				if lv.Kill(u) != wasLive {
					t.Fatalf("Kill(%d) reported %v, node was live=%v", u, !wasLive, wasLive)
				}
			} else {
				if lv.Revive(u) != !wasLive {
					t.Fatalf("Revive(%d) reported %v, node was live=%v", u, wasLive, wasLive)
				}
			}
			if step%97 == 0 {
				livenessInvariants(t, lv)
			}
		}
		livenessInvariants(t, lv)
		// Reset restores the all-live state.
		lv.Reset()
		if lv.LiveCount() != n || lv.DeadCount() != 0 {
			t.Fatalf("after Reset: %d live / %d dead", lv.LiveCount(), lv.DeadCount())
		}
		livenessInvariants(t, lv)
	}
}

// TestLivenessDraws: LiveAt/DeadAt enumerate exactly the live and dead
// sets, so uniform indices give uniform nodes with no rejection loop.
func TestLivenessDraws(t *testing.T) {
	const n = 50
	lv := NewLiveness(n)
	killed := map[int32]bool{3: true, 17: true, 44: true, 0: true}
	for u := range killed {
		lv.Kill(u)
	}
	if lv.DeadCount() != len(killed) {
		t.Fatalf("dead count %d, want %d", lv.DeadCount(), len(killed))
	}
	gotDead := map[int32]bool{}
	for i := 0; i < lv.DeadCount(); i++ {
		gotDead[lv.DeadAt(i)] = true
	}
	for u := range killed {
		if !gotDead[u] {
			t.Fatalf("killed node %d missing from DeadAt enumeration %v", u, gotDead)
		}
	}
	for i := 0; i < lv.LiveCount(); i++ {
		if killed[lv.LiveAt(i)] {
			t.Fatalf("dead node %d surfaced by LiveAt(%d)", lv.LiveAt(i), i)
		}
	}
	// Double Kill / double Revive are refused.
	if lv.Kill(3) {
		t.Error("double Kill accepted")
	}
	lv.Revive(3)
	if lv.Revive(3) {
		t.Error("double Revive accepted")
	}
}

// TestLivenessBindTilingLate: binding a tiling after kills must recount
// from the current bitmap, not assume all-live.
func TestLivenessBindTilingLate(t *testing.T) {
	const side = 6
	g := grid.New(side, grid.Torus)
	lv := NewLiveness(side * side)
	lv.Kill(0)
	lv.Kill(7)
	lv.BindTiling(g.NewTiling(3))
	livenessInvariants(t, lv)
}
