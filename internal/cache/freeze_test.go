package cache

import (
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/dist"
	"repro/internal/grid"
)

// buildMutableIndexed returns a churn-enabled, tile-indexed placement
// plus its tiling — the exact layout the served mode snapshots.
func buildMutableIndexed(t *testing.T, seed uint64) (*Placement, *grid.Tiling) {
	t.Helper()
	const side, ts, k, m = 8, 4, 60, 3
	g := grid.New(side, grid.Torus)
	tl := g.NewTiling(ts)
	pl := NewPlacer(g.N(), m, k)
	pl.EnableChurn()
	pl.EnableTiles(tl)
	r := rand.New(rand.NewPCG(seed, 1))
	return pl.Place(dist.NewZipf(k, 0.8), WithReplacement, r), tl
}

// TestCloneIndependence mutates the original after cloning (and the
// clone after that) and checks that neither side observes the other's
// mutations, with full structural validation of both.
func TestCloneIndependence(t *testing.T) {
	p, tl := buildMutableIndexed(t, 7)
	c := p.Clone()
	if !c.Mutable() {
		t.Fatal("clone of a mutable placement is not mutable")
	}
	if c.TileIndex() == nil {
		t.Fatal("clone dropped the tile index")
	}

	// Snapshot the clone's view of every file before mutating p.
	before := make([][]int32, p.K())
	for j := range before {
		before[j] = slices.Clone(c.Replicas(j))
	}

	r := rand.New(rand.NewPCG(11, 2))
	storm(t, p, r, 200)
	for j := range before {
		if !slices.Equal(c.Replicas(j), before[j]) {
			t.Fatalf("file %d: mutating the original changed the clone", j)
		}
	}
	checkAgainstRebuild(t, p, tl)
	checkAgainstRebuild(t, c, tl)

	// Mutate the clone; the original must hold its post-storm state.
	after := make([][]int32, p.K())
	for j := range after {
		after[j] = slices.Clone(p.Replicas(j))
	}
	storm(t, c, r, 200)
	for j := range after {
		if !slices.Equal(p.Replicas(j), after[j]) {
			t.Fatalf("file %d: mutating the clone changed the original", j)
		}
	}
	checkAgainstRebuild(t, c, tl)
}

// storm applies n random legal migrations (free-slot moves or full-cache
// swaps), mirroring the churn engine's event shape.
func storm(t *testing.T, p *Placement, r *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		j, u := p.SlotReplica(r.IntN(p.ReplicaSlots()))
		v := int32(r.IntN(p.N()))
		if v == u || p.Has(int(v), j) {
			continue
		}
		if p.T(int(v)) < p.M() {
			p.ReplaceReplica(j, u, v)
			continue
		}
		vFiles := p.NodeFiles(int(v))
		j2 := int(vFiles[r.IntN(len(vFiles))])
		if p.CanSwap(j, u, j2, v) {
			p.SwapReplicas(j, u, j2, v)
		}
	}
}

// TestCloneSurvivesPlacerReuse checks that a clone is decoupled from the
// Placer arenas: re-placing through the same Placer must not disturb it.
func TestCloneSurvivesPlacerReuse(t *testing.T) {
	const side, ts, k, m = 6, 3, 40, 2
	g := grid.New(side, grid.Torus)
	tl := g.NewTiling(ts)
	pl := NewPlacer(g.N(), m, k)
	pl.EnableChurn()
	pl.EnableTiles(tl)
	r := rand.New(rand.NewPCG(3, 9))
	p := pl.Place(dist.NewUniform(k), WithReplacement, r)
	c := p.Clone()
	before := make([][]int32, k)
	for j := range before {
		before[j] = slices.Clone(c.Replicas(j))
	}
	pl.Place(dist.NewUniform(k), WithReplacement, r) // overwrites p's arenas
	for j := range before {
		if !slices.Equal(c.Replicas(j), before[j]) {
			t.Fatalf("file %d: placer reuse changed the clone", j)
		}
	}
	checkAgainstRebuild(t, c, tl)
}

// TestLivenessClone checks deep-copy semantics of the liveness tracker,
// including the per-tile live counts.
func TestLivenessClone(t *testing.T) {
	g := grid.New(6, grid.Torus)
	tl := g.NewTiling(3)
	lv := NewLiveness(g.N())
	lv.BindTiling(tl)
	lv.Kill(5)
	lv.Kill(17)
	c := lv.Clone()
	if c.LiveCount() != lv.LiveCount() || c.Live(5) || c.Live(17) || !c.Live(0) {
		t.Fatal("clone does not reproduce the liveness state")
	}
	lv.Kill(9)
	c.Revive(5)
	if lv.Live(5) {
		t.Fatal("reviving in the clone leaked into the original")
	}
	if !c.Live(9) {
		t.Fatal("killing in the original leaked into the clone")
	}
	for tid := int32(0); tid < int32(tl.Tiles()); tid++ {
		want := int32(0)
		order, off := tl.Order(), tl.OrderOff()
		for _, u := range order[off[tid]:off[tid+1]] {
			if c.Live(int(u)) {
				want++
			}
		}
		if c.TileLive(tid) != want {
			t.Fatalf("tile %d: clone live count %d, want %d", tid, c.TileLive(tid), want)
		}
	}
}
