package cache

import (
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/dist"
	"repro/internal/grid"
)

// TestMutableBuildMatchesImmutable: a churn-enabled build must produce
// the same placement content (node lists, replica lists, cached set) as
// the immutable layout from the same RNG history, for both placement
// modes and with or without the tile index.
func TestMutableBuildMatchesImmutable(t *testing.T) {
	const side, m, k = 8, 3, 60
	n := side * side
	g := grid.New(side, grid.Torus)
	pop := dist.NewZipf(k, 1.0)
	for _, mode := range []Mode{WithReplacement, WithoutReplacement} {
		for _, tiles := range []bool{false, true} {
			r1 := rand.New(rand.NewPCG(7, 9))
			r2 := rand.New(rand.NewPCG(7, 9))
			ref := NewPlacer(n, m, k).Place(pop, mode, r1)
			mut := NewPlacer(n, m, k)
			if tiles {
				mut.EnableTiles(g.NewTiling(2))
			}
			mut.EnableChurn()
			got := mut.Place(pop, mode, r2)
			if !got.Mutable() {
				t.Fatal("EnableChurn placement not mutable")
			}
			for u := 0; u < n; u++ {
				if !slices.Equal(ref.NodeFiles(u), got.NodeFiles(u)) {
					t.Fatalf("mode=%v tiles=%v node %d: files %v != %v",
						mode, tiles, u, got.NodeFiles(u), ref.NodeFiles(u))
				}
			}
			for j := 0; j < k; j++ {
				if !slices.Equal(ref.Replicas(j), got.Replicas(j)) {
					t.Fatalf("mode=%v tiles=%v file %d: replicas differ", mode, tiles, j)
				}
			}
			if !slices.Equal(ref.CachedFiles(), got.CachedFiles()) {
				t.Fatalf("mode=%v tiles=%v: cached sets differ", mode, tiles)
			}
		}
	}
}

// checkAgainstRebuild verifies every incremental structure of p against
// a from-scratch rebuild from p's forward map: the replica CSR, and —
// when a tile index is attached — the tile-major segments, the tile
// directory and the dense-file bitmaps, using exactly the construction
// rule of buildTileIndex.
func checkAgainstRebuild(t *testing.T, p *Placement, tl *grid.Tiling) {
	t.Helper()
	n, k := p.N(), p.K()
	// Forward-map invariants + the model replica sets.
	model := make([]map[int32]bool, k)
	for j := range model {
		model[j] = map[int32]bool{}
	}
	for u := 0; u < n; u++ {
		files := p.NodeFiles(u)
		if !slices.IsSorted(files) {
			t.Fatalf("node %d file list unsorted: %v", u, files)
		}
		if len(files) != p.T(u) {
			t.Fatalf("node %d: len(files)=%d, T=%d", u, len(files), p.T(u))
		}
		for i, f := range files {
			if i > 0 && files[i-1] == f {
				t.Fatalf("node %d caches file %d twice", u, f)
			}
			model[f][int32(u)] = true
		}
	}
	for j := 0; j < k; j++ {
		reps := p.Replicas(j)
		if !slices.IsSorted(reps) {
			t.Fatalf("file %d replica segment unsorted: %v", j, reps)
		}
		if len(reps) != len(model[j]) {
			t.Fatalf("file %d: |S_j|=%d, model has %d", j, len(reps), len(model[j]))
		}
		for _, u := range reps {
			if !model[j][u] {
				t.Fatalf("file %d: replica at %d not in forward map", j, u)
			}
		}
	}
	ix := p.TileIndex()
	if ix == nil {
		return
	}
	// From-scratch rebuild of the tile-major segments: walk tiles in
	// order, nodes ascending inside, emitting each non-dense file's
	// replicas — the construction rule of buildTileIndex.
	segs := make([][]int32, k)
	order, orderOff := tl.Order(), tl.OrderOff()
	for tid := int32(0); tid < int32(tl.Tiles()); tid++ {
		for _, u := range order[orderOff[tid]:orderOff[tid+1]] {
			for _, f := range p.NodeFiles(int(u)) {
				if ix.FileBits(int(f)) == nil {
					segs[f] = append(segs[f], u)
				}
			}
		}
	}
	for j := 0; j < k; j++ {
		if bits := ix.FileBits(j); bits != nil {
			for u := 0; u < n; u++ {
				got := bits[u>>6]&(1<<(uint(u)&63)) != 0
				if got != model[j][int32(u)] {
					t.Fatalf("dense file %d: bit for node %d = %v, model %v",
						j, u, got, model[j][int32(u)])
				}
			}
			continue
		}
		seg := ix.Replicas(j)
		if !slices.Equal(seg, segs[j]) {
			t.Fatalf("file %d: tile-major segment %v, rebuild %v", j, seg, segs[j])
		}
		tiles, starts, segEnd := ix.FileRuns(j)
		if len(tiles) != len(starts) {
			t.Fatalf("file %d: directory tiles/starts length mismatch", j)
		}
		// Rebuild the directory from the rebuilt segment and compare.
		var wantTiles, wantStarts []int32
		last := int32(-1)
		for i, u := range segs[j] {
			if tid := tl.TileOf(u); tid != last {
				wantTiles = append(wantTiles, tid)
				wantStarts = append(wantStarts, ix.repOffOf(j)+int32(i))
				last = tid
			}
		}
		if !slices.Equal(tiles, wantTiles) || !slices.Equal(starts, wantStarts) {
			t.Fatalf("file %d: directory (%v,%v), rebuild (%v,%v)",
				j, tiles, starts, wantTiles, wantStarts)
		}
		if segEnd != ix.repOffOf(j)+int32(len(segs[j])) {
			t.Fatalf("file %d: segEnd %d, want %d", j, segEnd, ix.repOffOf(j)+int32(len(segs[j])))
		}
	}
}

// repOffOf exposes the segment start for the rebuild check.
func (ix *TileIndex) repOffOf(j int) int32 { return ix.repOff[j] }

// TestReplaceReplicaStorm interleaves random legal ReplaceReplica
// batches with full set-equality checks against a from-scratch rebuild,
// across index modes, placement modes and popularity profiles — the
// property contract of the churn subsystem.
func TestReplaceReplicaStorm(t *testing.T) {
	const side, m = 8, 3
	n := side * side
	g := grid.New(side, grid.Torus)
	for _, tc := range []struct {
		name  string
		k     int
		pop   dist.Popularity
		tiles bool
		mode  Mode
	}{
		{name: "uniform/plain", k: 60, pop: dist.NewUniform(60)},
		{name: "uniform/tiles", k: 60, pop: dist.NewUniform(60), tiles: true},
		{name: "zipf/tiles", k: 40, pop: dist.NewZipf(40, 1.2), tiles: true},
		{name: "zipf-dense/tiles", k: 8, pop: dist.NewZipf(8, 1.2), tiles: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewPCG(0xC0FFEE, 42))
			pl := NewPlacer(n, m, tc.k)
			var tl *grid.Tiling
			if tc.tiles {
				tl = g.NewTiling(2)
				pl.EnableTiles(tl)
			}
			pl.EnableChurn()
			p := pl.Place(tc.pop, tc.mode, r)
			checkAgainstRebuild(t, p, tl)
			moved, swapped := 0, 0
			for batch := 0; batch < 30; batch++ {
				for e := 0; e < 25; e++ {
					slot := r.IntN(p.ReplicaSlots())
					j, u := p.SlotReplica(slot)
					v := int32(r.IntN(n))
					if p.CanReplace(j, u, v) {
						p.ReplaceReplica(j, u, v)
						moved++
						continue
					}
					if v == u || p.Has(int(v), j) || p.T(int(v)) < p.M() {
						continue
					}
					vFiles := p.NodeFiles(int(v))
					j2 := int(vFiles[r.IntN(len(vFiles))])
					if p.CanSwap(j, u, j2, v) {
						p.SwapReplicas(j, u, j2, v)
						swapped++
					}
				}
				checkAgainstRebuild(t, p, tl)
			}
			if moved == 0 || swapped == 0 {
				t.Fatalf("storm too tame (moved=%d swapped=%d); test is vacuous", moved, swapped)
			}
			// A re-Place on the same Placer must fully reset the arenas.
			p = pl.Place(tc.pop, tc.mode, r)
			checkAgainstRebuild(t, p, tl)
		})
	}
}

// TestWithoutReplacementChurnDegenerate pins the documented degeneracy:
// without-replacement placements fill every node with exactly M distinct
// files, so no node ever has a free slot and no plain migration
// (ReplaceReplica) is legal — churn over such a placement proceeds
// exclusively through SwapReplicas exchanges.
func TestWithoutReplacementChurnDegenerate(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	pl := NewPlacer(16, 3, 40)
	pl.EnableChurn()
	p := pl.Place(dist.NewZipf(40, 1.2), WithoutReplacement, r)
	for slot := 0; slot < p.ReplicaSlots(); slot++ {
		j, u := p.SlotReplica(slot)
		for v := 0; v < p.N(); v++ {
			if p.CanReplace(j, u, int32(v)) {
				t.Fatalf("file %d u=%d v=%d: migration legal on a full placement", j, u, v)
			}
		}
	}
}

// TestSlotReplica checks the flat-slot inverse mapping against the CSR.
func TestSlotReplica(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 5))
	pl := NewPlacer(25, 2, 30)
	pl.EnableChurn()
	p := pl.Place(dist.NewZipf(30, 0.9), WithReplacement, r)
	slot := 0
	for j := 0; j < p.K(); j++ {
		for _, u := range p.Replicas(j) {
			gotJ, gotU := p.SlotReplica(slot)
			if gotJ != j || gotU != u {
				t.Fatalf("slot %d: got (%d,%d), want (%d,%d)", slot, gotJ, gotU, j, u)
			}
			slot++
		}
	}
	if slot != p.ReplicaSlots() {
		t.Fatalf("ReplicaSlots=%d, enumerated %d", p.ReplicaSlots(), slot)
	}
}

// TestReplaceReplicaPanics pins the loud-failure contract for illegal
// migrations and immutable placements.
func TestReplaceReplicaPanics(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	imm := NewPlacer(9, 2, 10).Place(dist.NewUniform(10), WithReplacement, r)
	mustPanic(t, "immutable", func() { imm.ReplaceReplica(0, 0, 1) })

	pl := NewPlacer(9, 2, 10)
	pl.EnableChurn()
	p := pl.Place(dist.NewUniform(10), WithReplacement, r)
	var j int
	var u int32
	for f := 0; f < p.K(); f++ {
		if len(p.Replicas(f)) > 0 {
			j, u = f, p.Replicas(f)[0]
			break
		}
	}
	mustPanic(t, "same node", func() { p.ReplaceReplica(j, u, u) })
	for v := int32(0); v < int32(p.N()); v++ {
		if v != u && !p.Has(int(v), j) && p.T(int(v)) >= p.M() {
			mustPanic(t, "full node", func() { p.ReplaceReplica(j, u, v) })
			break
		}
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	f()
}

// BenchmarkReplaceReplica measures the incremental maintenance cost per
// migration event (placement CSR + tile index splices) at a paper-ish
// shape — the number docs/perf.md weighs against a full rebuild.
func BenchmarkReplaceReplica(b *testing.B) {
	const side, m, k = 70, 10, 10000
	n := side * side
	g := grid.New(side, grid.Torus)
	r := rand.New(rand.NewPCG(11, 13))
	pl := NewPlacer(n, m, k)
	pl.EnableTiles(g.NewTiling(7))
	pl.EnableChurn()
	p := pl.Place(dist.NewZipf(k, 1.2), WithReplacement, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := r.IntN(p.ReplicaSlots())
		j, u := p.SlotReplica(slot)
		v := int32(r.IntN(n))
		if p.CanReplace(j, u, v) {
			p.ReplaceReplica(j, u, v)
		}
	}
}
