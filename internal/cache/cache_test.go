package cache

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/xrand"
)

func TestModeString(t *testing.T) {
	if WithReplacement.String() != "with-replacement" ||
		WithoutReplacement.String() != "without-replacement" ||
		Mode(7).String() != "Mode(7)" {
		t.Fatal("unexpected Mode strings")
	}
}

func TestPlacePanics(t *testing.T) {
	r := xrand.NewSource(0).Stream(0)
	pop := dist.NewUniform(5)
	for name, fn := range map[string]func(){
		"n=0":      func() { Place(0, 1, pop, WithReplacement, r) },
		"m=0":      func() { Place(1, 0, pop, WithReplacement, r) },
		"bad mode": func() { Place(1, 1, pop, Mode(9), r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// checkInvariants verifies structural consistency between the forward map
// (nodeFiles) and the inverted index (replicas).
func checkInvariants(t *testing.T, p *Placement) {
	t.Helper()
	// Node file lists sorted, distinct, within bounds, length ≤ M.
	totalFromNodes := 0
	for u := 0; u < p.N(); u++ {
		files := p.NodeFiles(u)
		if len(files) > p.M() || len(files) == 0 {
			t.Fatalf("node %d has %d distinct files, want 1..%d", u, len(files), p.M())
		}
		if !sort.SliceIsSorted(files, func(i, j int) bool { return files[i] < files[j] }) {
			t.Fatalf("node %d files not sorted: %v", u, files)
		}
		for i, f := range files {
			if f < 0 || int(f) >= p.K() {
				t.Fatalf("node %d file %d out of range", u, f)
			}
			if i > 0 && f == files[i-1] {
				t.Fatalf("node %d duplicate file %d", u, f)
			}
		}
		totalFromNodes += len(files)
		if p.T(u) != len(files) {
			t.Fatalf("T(%d) = %d, want %d", u, p.T(u), len(files))
		}
	}
	// Replica lists must be the exact inverse.
	totalFromReplicas := 0
	cached := 0
	for j := 0; j < p.K(); j++ {
		reps := p.Replicas(j)
		totalFromReplicas += len(reps)
		if len(reps) > 0 {
			cached++
		}
		if !sort.SliceIsSorted(reps, func(a, b int) bool { return reps[a] < reps[b] }) {
			t.Fatalf("replicas of %d not sorted", j)
		}
		for _, u := range reps {
			if !p.Has(int(u), j) {
				t.Fatalf("replica index says node %d caches %d but Has disagrees", u, j)
			}
		}
	}
	if totalFromNodes != totalFromReplicas {
		t.Fatalf("index mismatch: %d node entries vs %d replica entries", totalFromNodes, totalFromReplicas)
	}
	if len(p.CachedFiles()) != cached {
		t.Fatalf("CachedFiles has %d entries, want %d", len(p.CachedFiles()), cached)
	}
	if p.UncachedCount() != p.K()-cached {
		t.Fatalf("UncachedCount = %d, want %d", p.UncachedCount(), p.K()-cached)
	}
}

func TestPlaceInvariantsProperty(t *testing.T) {
	prop := func(seed uint64, nRaw, kRaw, mRaw uint8, zipf bool) bool {
		n := int(nRaw)%40 + 1
		k := int(kRaw)%30 + 1
		m := int(mRaw)%10 + 1
		var pop dist.Popularity
		if zipf {
			pop = dist.NewZipf(k, 0.8)
		} else {
			pop = dist.NewUniform(k)
		}
		r := xrand.NewSource(seed).Stream(0)
		for _, mode := range []Mode{WithReplacement, WithoutReplacement} {
			p := Place(n, m, pop, mode, r)
			checkInvariants(t, p) // Fatals with full context on violation
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceInvariantsLarge(t *testing.T) {
	r := xrand.NewSource(7).Stream(0)
	p := Place(2025, 10, dist.NewUniform(500), WithReplacement, r)
	checkInvariants(t, p)
}

func TestWithoutReplacementAlwaysDistinctM(t *testing.T) {
	r := xrand.NewSource(3).Stream(0)
	p := Place(200, 8, dist.NewZipf(50, 1.5), WithoutReplacement, r)
	for u := 0; u < p.N(); u++ {
		if p.T(u) != 8 {
			t.Fatalf("node %d has t(u)=%d, want exactly 8 without replacement", u, p.T(u))
		}
	}
}

func TestWithoutReplacementWholeLibrary(t *testing.T) {
	r := xrand.NewSource(3).Stream(0)
	p := Place(10, 20, dist.NewUniform(5), WithoutReplacement, r)
	for u := 0; u < p.N(); u++ {
		if p.T(u) != 5 {
			t.Fatalf("node %d caches %d files, want all 5", u, p.T(u))
		}
	}
}

func TestWithoutReplacementSkewedZipf(t *testing.T) {
	// Extremely skewed Zipf forces the fillRemainder fallback.
	r := xrand.NewSource(9).Stream(0)
	p := Place(50, 30, dist.NewZipf(40, 6), WithoutReplacement, r)
	for u := 0; u < p.N(); u++ {
		if p.T(u) != 30 {
			t.Fatalf("node %d has %d distinct files, want 30", u, p.T(u))
		}
	}
	checkInvariants(t, p)
}

func TestM1TUIsOne(t *testing.T) {
	r := xrand.NewSource(1).Stream(0)
	p := Place(100, 1, dist.NewUniform(50), WithReplacement, r)
	for u := 0; u < 100; u++ {
		if p.T(u) != 1 {
			t.Fatalf("M=1 node %d has t(u)=%d", u, p.T(u))
		}
	}
}

func TestHas(t *testing.T) {
	r := xrand.NewSource(2).Stream(0)
	p := Place(30, 3, dist.NewUniform(10), WithReplacement, r)
	for u := 0; u < p.N(); u++ {
		inSet := map[int32]bool{}
		for _, f := range p.NodeFiles(u) {
			inSet[f] = true
		}
		for j := 0; j < p.K(); j++ {
			if p.Has(u, j) != inSet[int32(j)] {
				t.Fatalf("Has(%d, %d) = %v inconsistent", u, j, p.Has(u, j))
			}
		}
	}
}

func TestTPair(t *testing.T) {
	r := xrand.NewSource(4).Stream(0)
	p := Place(40, 5, dist.NewUniform(12), WithReplacement, r)
	for u := 0; u < p.N(); u++ {
		for v := 0; v < p.N(); v++ {
			want := 0
			for _, f := range p.NodeFiles(u) {
				if p.Has(v, int(f)) {
					want++
				}
			}
			if got := p.TPair(u, v); got != want {
				t.Fatalf("TPair(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestTPairSelfEqualsT(t *testing.T) {
	r := xrand.NewSource(5).Stream(0)
	p := Place(25, 4, dist.NewUniform(9), WithReplacement, r)
	for u := 0; u < p.N(); u++ {
		if p.TPair(u, u) != p.T(u) {
			t.Fatalf("TPair(u,u) = %d, T(u) = %d", p.TPair(u, u), p.T(u))
		}
	}
}

func TestReplicaCountsMatchBinomial(t *testing.T) {
	// Each node caches file j with prob q = 1-(1-p_j)^M independently, so
	// E|S_j| = n·q. Check the empirical mean over files.
	r := xrand.NewSource(6).Stream(0)
	n, k, m := 2000, 100, 5
	p := Place(n, m, dist.NewUniform(k), WithReplacement, r)
	q := 1 - math.Pow(1-1.0/float64(k), float64(m))
	want := float64(n) * q
	total := 0
	for j := 0; j < k; j++ {
		total += len(p.Replicas(j))
	}
	got := float64(total) / float64(k)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("mean replica count %v, want %v ± 5%%", got, want)
	}
}

func TestZipfPlacementSkew(t *testing.T) {
	// Proportional placement must replicate popular files more.
	r := xrand.NewSource(8).Stream(0)
	p := Place(3000, 2, dist.NewZipf(100, 1.2), WithReplacement, r)
	top := len(p.Replicas(0))
	bottom := len(p.Replicas(99))
	if top <= bottom {
		t.Fatalf("rank-0 file has %d replicas, rank-99 has %d; placement ignores popularity", top, bottom)
	}
}

func TestGoodnessExhaustiveVsSampled(t *testing.T) {
	r := xrand.NewSource(10).Stream(0)
	p := Place(60, 4, dist.NewUniform(30), WithReplacement, r)
	exact := p.CheckGoodness(0, r)
	if exact.Pairs != 60*59/2 {
		t.Fatalf("exhaustive pair count %d", exact.Pairs)
	}
	sampled := p.CheckGoodness(500, r)
	if sampled.MaxPairT > exact.MaxPairT {
		t.Fatalf("sampled max t(u,v) %d exceeds exhaustive %d", sampled.MaxPairT, exact.MaxPairT)
	}
	if exact.MinT < 1 || exact.MeanT < 1 {
		t.Fatalf("degenerate t(u) stats: %+v", exact)
	}
}

func TestGoodnessLemma2Regime(t *testing.T) {
	// Lemma 2 regime: K = n, M = n^α with α < 1/2. For n = 2025, α ≈ 0.35
	// gives M ≈ 14. Expect t(u) ≥ δM with δ = (1-α)/3 and small t(u,v).
	r := xrand.NewSource(11).Stream(0)
	n := 2025
	m := 14
	p := Place(n, m, dist.NewUniform(n), WithReplacement, r)
	g := p.CheckGoodness(20000, r)
	delta := (1.0 - 0.35) / 3
	mu := 5 // µ ≥ 5/(1-2α) ≈ 17 suffices per Lemma 2; empirically pairs share ≪ that
	if !g.IsGood(delta, mu+1, m) {
		t.Fatalf("placement not (δ,µ)-good in Lemma 2 regime: %+v", g)
	}
}

func TestReplicaCountHistogram(t *testing.T) {
	r := xrand.NewSource(12).Stream(0)
	p := Place(100, 2, dist.NewUniform(40), WithReplacement, r)
	h := p.ReplicaCountHistogram()
	totalFiles := 0
	weighted := 0
	for c, cnt := range h {
		totalFiles += cnt
		weighted += c * cnt
	}
	if totalFiles != p.K() {
		t.Fatalf("histogram covers %d files, want %d", totalFiles, p.K())
	}
	wantWeighted := 0
	for j := 0; j < p.K(); j++ {
		wantWeighted += len(p.Replicas(j))
	}
	if weighted != wantWeighted {
		t.Fatalf("histogram mass %d, want %d", weighted, wantWeighted)
	}
}

func TestPlacementDeterminism(t *testing.T) {
	p1 := Place(100, 3, dist.NewUniform(20), WithReplacement, xrand.NewSource(42).Stream(9))
	p2 := Place(100, 3, dist.NewUniform(20), WithReplacement, xrand.NewSource(42).Stream(9))
	for u := 0; u < 100; u++ {
		a, b := p1.NodeFiles(u), p2.NodeFiles(u)
		if len(a) != len(b) {
			t.Fatalf("node %d differs", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d file %d differs", u, i)
			}
		}
	}
}

func BenchmarkPlaceN2025M10(b *testing.B) {
	pop := dist.NewUniform(500)
	src := xrand.NewSource(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Place(2025, 10, pop, WithReplacement, src.Stream(uint64(i)))
	}
}

func BenchmarkTPair(b *testing.B) {
	p := Place(2025, 100, dist.NewUniform(2000), WithReplacement, xrand.NewSource(1).Stream(0))
	for i := 0; i < b.N; i++ {
		_ = p.TPair(i%2025, (i*7+13)%2025)
	}
}

// BenchmarkPlacePaperScale measures the placement build at the acceptance
// point (n=4900, M=10, K=10^4 Zipf γ=1.2).
func BenchmarkPlacePaperScale(b *testing.B) {
	pop := dist.NewZipf(10000, 1.2)
	src := xrand.NewSource(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Place(4900, 10, pop, WithReplacement, src.Stream(uint64(i)))
	}
}
