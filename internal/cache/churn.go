package cache

import (
	"fmt"
	"slices"
)

// This file implements in-place placement mutation — the cache layer of
// the engine's §VI dynamic regime. A churn-enabled Placer
// (Placer.EnableChurn) builds placements whose every structure can be
// spliced without arena reallocation:
//
//   - forward map: M-stride slabs, so a node's list grows/shrinks by a
//     memmove of at most M entries;
//   - replica CSR: |S_j| is invariant under ReplaceReplica, so a
//     migration is a rotation inside the file's segment;
//   - TileIndex: dense files flip two bitmap bits; sparse files splice
//     the tile-major run and the capacity-padded tile directory.
//
// Every mutation preserves the exact invariants the from-scratch build
// establishes (sorted node lists, node-sorted replica segments,
// tile-major index segments with ascending directories), which is what
// the mutation-storm property tests assert batch by batch.

// Mutable reports whether the placement supports ReplaceReplica (it was
// built by a churn-enabled Placer).
func (p *Placement) Mutable() bool { return p.lens != nil }

// CanReplace reports whether ReplaceReplica(j, u, v) is a legal
// migration: u caches j, and v is a distinct node that does not cache j
// and has a free slot. The churn engine uses it to drop infeasible
// events instead of panicking.
func (p *Placement) CanReplace(j int, u, v int32) bool {
	return u != v && p.T(int(v)) < p.Cap(int(v)) && !p.Has(int(v), j) && p.Has(int(u), j)
}

// ReplaceReplica migrates file j's replica from node u to node v,
// splicing the forward map, the replica CSR and (when present) the tile
// index in place — O(t(u) + t(v)) for the forward slabs, O(|S_j|) for
// the CSR segment, and O(|S_j| + directory entries) for the tile index;
// no allocation on any path. |S_j| and the cached-file set are invariant
// (the placement profile never drifts, only replica geography), so
// conditioned request samplers and dense-file classifications built at
// trial start stay valid. It panics unless the placement is mutable and
// the migration is legal (see CanReplace) — the engine validates events
// first, so a violation here is a programming error.
func (p *Placement) ReplaceReplica(j int, u, v int32) {
	if p.lens == nil {
		panic("cache: ReplaceReplica needs a churn-enabled placement (Placer.EnableChurn)")
	}
	if u == v {
		panic("cache: ReplaceReplica needs distinct nodes")
	}
	if !p.Has(int(u), j) {
		panic(fmt.Sprintf("cache: ReplaceReplica: node %d does not cache file %d", u, j))
	}
	if int(p.lens[v]) >= p.Cap(int(v)) {
		panic(fmt.Sprintf("cache: ReplaceReplica: node %d has no free slot", v))
	}
	if p.Has(int(v), j) {
		panic(fmt.Sprintf("cache: ReplaceReplica: node %d already caches file %d", v, j))
	}
	p.forwardDrop(u, int32(j))
	p.forwardAdd(v, int32(j))
	p.migrate(j, u, v)
}

// CanSwap reports whether SwapReplicas(j, u, j2, v) is a legal exchange:
// distinct nodes, distinct files, each source caches the file it gives
// and neither caches the file it receives.
func (p *Placement) CanSwap(j int, u int32, j2 int, v int32) bool {
	return u != v && j != j2 &&
		p.Has(int(u), j) && p.Has(int(v), j2) &&
		!p.Has(int(v), j) && !p.Has(int(u), j2)
}

// SwapReplicas exchanges two replicas atomically: file j migrates u → v
// while file j2 migrates v → u. Both nodes keep their distinct-file
// count, so the exchange is legal even when both caches are full — the
// form churn takes in the common K ≫ M regime, where almost every node
// caches exactly M distinct files and a migration into a full cache
// must displace something. Cost and invariants are those of two
// ReplaceReplica calls; it panics unless the exchange is legal (see
// CanSwap).
func (p *Placement) SwapReplicas(j int, u int32, j2 int, v int32) {
	if p.lens == nil {
		panic("cache: SwapReplicas needs a churn-enabled placement (Placer.EnableChurn)")
	}
	if !p.CanSwap(j, u, j2, v) {
		panic(fmt.Sprintf("cache: illegal swap of files (%d,%d) between nodes (%d,%d)", j, j2, u, v))
	}
	p.forwardDrop(u, int32(j))
	p.forwardAdd(u, int32(j2))
	p.forwardDrop(v, int32(j2))
	p.forwardAdd(v, int32(j))
	p.migrate(j, u, v)
	p.migrate(j2, v, u)
}

// forwardDrop removes file f from node u's slab (sorted memmove). The
// caller has validated membership.
func (p *Placement) forwardDrop(u, f int32) {
	base := p.slabBase(int(u))
	span := p.files[base : base+int(p.lens[u])]
	i, _ := slices.BinarySearch(span, f)
	copy(span[i:], span[i+1:])
	p.lens[u]--
}

// forwardAdd inserts file f into node u's slab (sorted memmove). The
// caller has validated the free slot and non-membership.
func (p *Placement) forwardAdd(u, f int32) {
	base := p.slabBase(int(u))
	ln := int(p.lens[u])
	span := p.files[base : base+ln+1]
	i, _ := slices.BinarySearch(span[:ln], f)
	copy(span[i+1:], span[i:ln])
	span[i] = f
	p.lens[u]++
}

// migrate splices file j's replica u → v through the replica CSR and,
// when present, the tile index. Forward slabs are the caller's job.
func (p *Placement) migrate(j int, u, v int32) {
	spliceSorted(p.nodes[p.repOff[j]:p.repOff[j+1]], u, v)
	if p.tix != nil {
		p.tix.replaceReplica(j, u, v)
	}
}

// spliceSorted replaces old with new in the sorted segment seg with one
// memmove, restoring ascending order.
func spliceSorted(seg []int32, old, new int32) {
	i, ok := slices.BinarySearch(seg, old)
	if !ok {
		panic("cache: replica splice: node not in segment")
	}
	switch {
	case new > old:
		j, _ := slices.BinarySearch(seg[i+1:], new)
		j += i + 1 // first index > i with seg[j] ≥ new
		copy(seg[i:], seg[i+1:j])
		seg[j-1] = new
	case new < old:
		j, _ := slices.BinarySearch(seg[:i], new)
		copy(seg[j+1:i+1], seg[j:i])
		seg[j] = new
	default:
		panic("cache: replica splice: nodes must differ")
	}
}

// ReplicaSlots returns the total replica count Σ_j |S_j| — the size of
// the flat replica arena, and the natural weight for drawing a uniform
// cached replica (file ∝ |S_j|).
func (p *Placement) ReplicaSlots() int { return int(p.repOff[p.k]) }

// SlotReplica maps a flat replica-arena index (0 ≤ slot < ReplicaSlots)
// to its (file, node) pair by binary-searching the CSR offsets — the
// O(log K) inverse the churn engine uses to draw a uniform replica.
func (p *Placement) SlotReplica(slot int) (file int, node int32) {
	s := int32(slot)
	lo, hi := 0, p.k // invariant: repOff[lo] ≤ s < repOff[hi]
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.repOff[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, p.nodes[slot]
}

// replaceReplica splices the tile index for the migration of file j's
// replica from u to v. Dense files flip two bitmap bits; sparse files
// rotate the tile-major segment and splice the capacity-padded
// directory (remove u's run entry when it empties, insert v's when its
// tile is new). O(|S_j| + directory entries), allocation-free.
func (ix *TileIndex) replaceReplica(j int, u, v int32) {
	if b := ix.bitOf[j]; b >= 0 {
		words := ix.bitWords[int(b)*ix.wordsPer : (int(b)+1)*ix.wordsPer]
		words[u>>6] &^= 1 << (uint(u) & 63)
		words[v>>6] |= 1 << (uint(v) & 63)
		return
	}
	if ix.dirLen == nil {
		panic("cache: tile-index splice needs a churn-enabled build")
	}
	s1 := ix.repOff[j+1]
	dBase := int(ix.dirOff[j])
	dn := int(ix.dirLen[j])
	dir := ix.dirTiles[dBase : dBase+dn]
	starts := ix.dirStart[dBase : dBase+dn]
	tu, tv := ix.tl.TileOf(u), ix.tl.TileOf(v)

	// Remove u from its run. Runs are (tile, node)-sorted, so both the
	// directory entry and the in-run position binary-search.
	du, ok := slices.BinarySearch(dir, tu)
	if !ok {
		panic("cache: tile-index splice: source tile has no run")
	}
	ru0 := starts[du]
	ru1 := s1
	if du+1 < dn {
		ru1 = starts[du+1]
	}
	pu, ok := slices.BinarySearch(ix.nodes[ru0:ru1], u)
	if !ok {
		panic("cache: tile-index splice: node not in its tile run")
	}
	puAbs := int(ru0) + pu
	copy(ix.nodes[puAbs:s1-1], ix.nodes[puAbs+1:s1])
	for i := du + 1; i < dn; i++ {
		starts[i]--
	}
	if ru1-ru0 == 1 { // u was the run's only replica: drop the entry
		copy(dir[du:], dir[du+1:])
		copy(starts[du:], starts[du+1:])
		dn--
		ix.dirLen[j]--
	}
	dir, starts = dir[:dn], starts[:dn]

	// Insert v. The segment's valid data now ends at s1-1; the insertion
	// restores the full |S_j| width.
	dv, ok := slices.BinarySearch(dir, tv)
	var pvAbs int32
	if ok {
		rv0 := starts[dv]
		rv1 := s1 - 1
		if dv+1 < dn {
			rv1 = starts[dv+1]
		}
		pv, _ := slices.BinarySearch(ix.nodes[rv0:rv1], v)
		pvAbs = rv0 + int32(pv)
	} else {
		// New directory entry at dv; its run starts where the next run
		// currently begins (or at the end of the valid data). The padded
		// capacity min(|S_j| at build, Tiles) admits every reachable
		// splice while |S_j| is invariant; a grown segment (node arrival)
		// must rebuild instead — Placer.ArriveNode re-pads — so hitting
		// the capacity here means a caller mutated a stale-capacity index.
		if int32(dn) >= ix.dirOff[j+1]-ix.dirOff[j] {
			panic(fmt.Sprintf("cache: tile-index splice: file %d's directory is at capacity; a grown |S_j| needs a rebuild (Placer.ArriveNode)", j))
		}
		pvAbs = s1 - 1
		if dv < dn {
			pvAbs = starts[dv]
		}
		dir = ix.dirTiles[dBase : dBase+dn+1]
		starts = ix.dirStart[dBase : dBase+dn+1]
		copy(dir[dv+1:], dir[dv:dn])
		copy(starts[dv+1:], starts[dv:dn])
		dir[dv] = tv
		starts[dv] = pvAbs
		dn++
		ix.dirLen[j]++
	}
	copy(ix.nodes[pvAbs+1:s1], ix.nodes[pvAbs:s1-1])
	ix.nodes[pvAbs] = v
	for i := dv + 1; i < dn; i++ {
		starts[i]++
	}
}
