package cache

import (
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/dist"
	"repro/internal/grid"
)

// tileWorlds spans library skew, topology, tile size and cache size.
func tileWorlds() []struct {
	name  string
	l, t  int
	topo  grid.Topology
	k, m  int
	gamma float64
} {
	return []struct {
		name  string
		l, t  int
		topo  grid.Topology
		k, m  int
		gamma float64
	}{
		{"uniform-torus", 12, 3, grid.Torus, 150, 2, 0},
		{"zipf-torus", 15, 4, grid.Torus, 60, 3, 1.2},
		{"uniform-grid", 10, 3, grid.Bounded, 80, 2, 0},
		{"tile1", 8, 1, grid.Torus, 40, 2, 0.8},
		{"clipped-tiles", 11, 4, grid.Torus, 50, 2, 0},
		{"dense", 6, 2, grid.Torus, 8, 4, 0},
	}
}

func buildIndexed(t *testing.T, l, ts int, topo grid.Topology, k, m int, gamma float64, seed uint64) (*grid.Grid, *Placement) {
	t.Helper()
	g := grid.New(l, topo)
	tl := g.NewTiling(ts)
	pl := NewPlacer(g.N(), m, k)
	pl.EnableTiles(tl)
	var pop dist.Popularity = dist.NewUniform(k)
	if gamma > 0 {
		pop = dist.NewZipf(k, gamma)
	}
	r := rand.New(rand.NewPCG(seed, seed^0x9e37))
	return g, pl.Place(pop, WithReplacement, r)
}

// TestTileIndexIntegrity: for every file, the tile-major list is a
// permutation of Replicas(j); runs are non-empty, tile-ascending, node-
// ascending inside, and every run's nodes actually live in its tile.
func TestTileIndexIntegrity(t *testing.T) {
	for _, w := range tileWorlds() {
		t.Run(w.name, func(t *testing.T) {
			_, p := buildIndexed(t, w.l, w.t, w.topo, w.k, w.m, w.gamma, 42)
			ix := p.TileIndex()
			if ix == nil {
				t.Fatal("TileIndex not attached")
			}
			tl := ix.Tiling()
			denseSeen := 0
			for j := 0; j < p.K(); j++ {
				want := slices.Clone(p.Replicas(j))
				if bits := ix.FileBits(j); bits != nil {
					// Dense file: represented by its bitmap (exactly the
					// replica set), with an empty tile directory.
					denseSeen++
					var fromBits []int32
					for u := 0; u < p.N(); u++ {
						if bits[u>>6]&(1<<(uint(u)&63)) != 0 {
							fromBits = append(fromBits, int32(u))
						}
					}
					if !slices.Equal(fromBits, want) {
						t.Fatalf("file %d: bitmap holds %v, want S_j %v", j, fromBits, want)
					}
					if tiles, _, _ := ix.FileRuns(j); len(tiles) != 0 {
						t.Fatalf("file %d: dense file has %d tile runs, want none", j, len(tiles))
					}
					continue
				}
				got := slices.Clone(ix.Replicas(j))
				slices.Sort(got)
				if !slices.Equal(got, want) {
					t.Fatalf("file %d: tile-major list is not a permutation of S_j: %v vs %v", j, ix.Replicas(j), want)
				}
				tiles, starts, segEnd := ix.FileRuns(j)
				if len(want) == 0 {
					if len(tiles) != 0 {
						t.Fatalf("file %d: empty S_j with %d runs", j, len(tiles))
					}
					continue
				}
				covered := 0
				nodes := ix.Nodes()
				for d := range tiles {
					tile, start := tiles[d], starts[d]
					if d > 0 && tile <= tiles[d-1] {
						t.Fatalf("file %d: tile run order regressed at %d", j, d)
					}
					end := segEnd
					if d+1 < len(starts) {
						end = starts[d+1]
					}
					if end <= start {
						t.Fatalf("file %d: empty run %d", j, d)
					}
					for i := start; i < end; i++ {
						if tl.TileOf(nodes[i]) != tile {
							t.Fatalf("file %d run %d: node %d is in tile %d, not %d", j, d, nodes[i], tl.TileOf(nodes[i]), tile)
						}
						if i > start && nodes[i] <= nodes[i-1] {
							t.Fatalf("file %d run %d: node order regressed", j, d)
						}
					}
					covered += int(end - start)
				}
				if covered != len(want) {
					t.Fatalf("file %d: runs cover %d replicas, want %d", j, covered, len(want))
				}
			}
			if w.name == "dense" && denseSeen == 0 {
				t.Fatal("dense fixture produced no bitmap files")
			}
		})
	}
}

// TestTileIndexReuseAcrossPlacements: rebuilding through the same Placer
// must leave the index consistent with the new placement (arenas reused,
// contents refreshed) and not disturb RNG-determinism of the placement
// itself.
func TestTileIndexReuseAcrossPlacements(t *testing.T) {
	g := grid.New(12, grid.Torus)
	tl := g.NewTiling(3)
	pop := dist.NewZipf(100, 1.0)

	plain := NewPlacer(g.N(), 2, 100)
	indexed := NewPlacer(g.N(), 2, 100)
	indexed.EnableTiles(tl)
	r1 := rand.New(rand.NewPCG(5, 6))
	r2 := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 4; trial++ {
		pp := plain.Place(pop, WithReplacement, r1)
		pi := indexed.Place(pop, WithReplacement, r2)
		if pp.TileIndex() != nil {
			t.Fatal("plain placer grew a tile index")
		}
		ix := pi.TileIndex()
		if ix == nil {
			t.Fatal("indexed placer lost its tile index")
		}
		for j := 0; j < 100; j++ {
			if !slices.Equal(pp.Replicas(j), pi.Replicas(j)) {
				t.Fatalf("trial %d file %d: index build perturbed the placement", trial, j)
			}
			if ix.FileBits(j) != nil {
				continue // dense: checked via bitmap in TestTileIndexIntegrity
			}
			got := slices.Clone(ix.Replicas(j))
			slices.Sort(got)
			if !slices.Equal(got, pi.Replicas(j)) {
				t.Fatalf("trial %d file %d: stale index contents", trial, j)
			}
		}
	}
}

// TestTileIndexBuildAllocs: after warm-up, rebuilding placement + index
// through a reused Placer allocates nothing.
func TestTileIndexBuildAllocs(t *testing.T) {
	g := grid.New(20, grid.Torus)
	tl := g.NewTiling(4)
	pop := dist.NewZipf(200, 1.2)
	pl := NewPlacer(g.N(), 3, 200)
	pl.EnableTiles(tl)
	r := rand.New(rand.NewPCG(9, 9))
	pl.Place(pop, WithReplacement, r)
	pl.Place(pop, WithReplacement, r)
	if n := testing.AllocsPerRun(5, func() {
		pl.Place(pop, WithReplacement, r)
	}); n != 0 {
		t.Errorf("steady-state indexed Place allocates %.1f/op, want 0", n)
	}
}

// TestPlacementCloneDropsIndex: the public Place path and clone never
// leak builder-owned index arenas.
func TestPlacementCloneDropsIndex(t *testing.T) {
	g := grid.New(6, grid.Torus)
	r := rand.New(rand.NewPCG(1, 2))
	p := Place(g.N(), 2, dist.NewUniform(10), WithReplacement, r)
	if p.TileIndex() != nil {
		t.Fatal("package-level Place attached a tile index")
	}
}

// TestIndexedPlacementGuards: NodeFiles-order consumers stay safe on
// indexed placements — Has falls back to a correct full scan, TPair
// fails loudly instead of returning a wrong intersection.
func TestIndexedPlacementGuards(t *testing.T) {
	_, p := buildIndexed(t, 10, 3, grid.Torus, 30, 4, 1.2, 6)
	for u := 0; u < p.N(); u++ {
		cached := map[int32]bool{}
		for _, f := range p.NodeFiles(u) {
			cached[f] = true
		}
		for j := 0; j < p.K(); j++ {
			if got := p.Has(u, j); got != cached[int32(j)] {
				t.Fatalf("Has(%d, %d) = %v on indexed placement, want %v", u, j, got, cached[int32(j)])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TPair on an indexed placement should panic")
		}
	}()
	p.TPair(0, 1)
}
