package repro_test

import (
	"strings"
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := repro.Config{
		Side: 15, K: 50, M: 4,
		Strategy: repro.StrategySpec{Kind: repro.TwoChoices, Radius: 5},
		Seed:     1,
	}
	agg, err := repro.Run(cfg, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Trials != 8 || agg.MaxLoad.Mean() < 1 {
		t.Fatalf("aggregate wrong: %v", agg)
	}
	res, err := repro.RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad < 1 {
		t.Fatalf("trial wrong: %+v", res)
	}
}

func TestFacadeLowLevelComposition(t *testing.T) {
	// Compose the exported building blocks directly, as a downstream
	// user would.
	g := repro.NewGrid(10, repro.Torus)
	src := repro.RandomSource(3)
	pop := repro.NewZipf(20, 1.0)
	p := repro.Place(g.N(), 3, pop, repro.WithReplacement, src.Stream(0))
	strat := repro.NewTwoChoice(g, p, repro.TwoChoiceConfig{Radius: repro.RadiusUnbounded})
	loads := repro.NewLoads(g.N())
	r := src.Split(9).Stream(0)
	for i := 0; i < g.N(); i++ {
		req := repro.Request{Origin: int32(r.IntN(g.N())), File: int32(pop.Sample(r))}
		a := strat.Assign(req, loads, r)
		loads.Add(int(a.Server))
	}
	if loads.Total() != g.N() {
		t.Fatalf("placed %d balls, want %d", loads.Total(), g.N())
	}
	if loads.Max() < 1 {
		t.Fatal("no load recorded")
	}
}

func TestFacadeQueueing(t *testing.T) {
	res, err := repro.RunQueue(repro.QueueConfig{
		Side: 10, K: 20, M: 4, Lambda: 0.6, Radius: -1, Horizon: 60, WarmUp: 10, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals == 0 || res.MaxQueue < 1 {
		t.Fatalf("queueing run degenerate: %+v", res)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := repro.ExperimentIDs()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "zipf-cost", "supermarket"} {
		if !seen[want] {
			t.Fatalf("experiment %q missing from registry %v", want, ids)
		}
	}
	if _, err := repro.Experiment("no-such-id", repro.ExpOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	tb, err := repro.Experiment("lemma1", repro.ExpOptions{Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Markdown(), "lemma1") {
		t.Fatal("experiment table malformed")
	}
}
