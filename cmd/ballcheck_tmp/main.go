package main

import (
	"fmt"

	"repro/internal/sim"
)

func main() {
	// Skewed Zipf + small radius: popular files have |S_j| >> |B_r|,
	// which drives the new ball-side rejection sampler on HEAD.
	cfgs := []sim.Config{
		{Side: 15, K: 10, M: 5, Seed: 7,
			Popularity: sim.PopSpec{Kind: sim.PopZipf, Gamma: 2.0},
			Strategy:   sim.StrategySpec{Kind: sim.TwoChoices, Radius: 2}},
		{Side: 30, K: 100, M: 10, Seed: 9,
			Popularity: sim.PopSpec{Kind: sim.PopZipf, Gamma: 1.5},
			Strategy:   sim.StrategySpec{Kind: sim.TwoChoices, Radius: 3}},
	}
	for _, cfg := range cfgs {
		for t := uint64(0); t < 3; t++ {
			r, err := sim.RunTrial(cfg, t)
			if err != nil {
				panic(err)
			}
			fmt.Printf("L=%d C=%v esc=%d bh=%d\n", r.MaxLoad, r.MeanCost, r.Escalated, r.Backhaul)
		}
	}
}
