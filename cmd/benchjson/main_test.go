package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkRunTrial-8         	     100	   4034538 ns/op	       0 B/op	       0 allocs/op
BenchmarkWideWorldTrial-8   	       1	1003456789 ns/op	   11770 B/op	      29 allocs/op
BenchmarkCompile-8          	     500	    210042 ns/op
PASS
ok  	repro/internal/sim	12.3s
pkg: repro/internal/dist
BenchmarkRunTrial-8         	     200	   2000000 ns/op	      16 B/op	       1 allocs/op
BenchmarkZipfSample 	100000000	        11.43 ns/op
ok  	repro/internal/dist	1.2s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"BenchmarkCompile", "BenchmarkRunTrial", "BenchmarkRunTrial#2",
		"BenchmarkWideWorldTrial", "BenchmarkZipfSample",
	}
	if names := sortedNames(got); strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("parsed %v, want %v", names, want)
	}
	wt := got["BenchmarkWideWorldTrial"]
	if wt.Iterations != 1 || wt.NsPerOp != 1003456789 || *wt.BytesPerOp != 11770 || *wt.AllocsPerOp != 29 {
		t.Fatalf("wide trial entry %+v", wt)
	}
	if c := got["BenchmarkCompile"]; c.BytesPerOp != nil || c.AllocsPerOp != nil || c.NsPerOp != 210042 {
		t.Fatalf("compile entry %+v", c)
	}
	if z := got["BenchmarkZipfSample"]; z.NsPerOp != 11.43 || z.Iterations != 100000000 {
		t.Fatalf("zipf entry %+v", z)
	}
	// The duplicate across packages survives with a #2 suffix.
	if d := got["BenchmarkRunTrial#2"]; d.NsPerOp != 2000000 {
		t.Fatalf("duplicate entry %+v", d)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmarkBroken abc def\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed garbage: %v", got)
	}
}
