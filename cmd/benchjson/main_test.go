package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkRunTrial-8         	     100	   4034538 ns/op	       0 B/op	       0 allocs/op
BenchmarkWideWorldTrial-8   	       1	1003456789 ns/op	   11770 B/op	      29 allocs/op
BenchmarkCompile-8          	     500	    210042 ns/op
PASS
ok  	repro/internal/sim	12.3s
pkg: repro/internal/dist
BenchmarkRunTrial-8         	     200	   2000000 ns/op	      16 B/op	       1 allocs/op
BenchmarkZipfSample 	100000000	        11.43 ns/op
ok  	repro/internal/dist	1.2s
`

func TestParseBenchOutput(t *testing.T) {
	var warns strings.Builder
	got, err := parse(strings.NewReader(sample), &warns)
	if err != nil {
		t.Fatal(err)
	}
	if warns.Len() != 0 {
		t.Fatalf("clean input produced warnings: %s", warns.String())
	}
	want := []string{
		"BenchmarkCompile", "BenchmarkRunTrial", "BenchmarkRunTrial#2",
		"BenchmarkWideWorldTrial", "BenchmarkZipfSample",
	}
	if names := sortedNames(got); strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("parsed %v, want %v", names, want)
	}
	wt := got["BenchmarkWideWorldTrial"]
	if wt.Iterations != 1 || wt.NsPerOp != 1003456789 || *wt.BytesPerOp != 11770 || *wt.AllocsPerOp != 29 {
		t.Fatalf("wide trial entry %+v", wt)
	}
	if c := got["BenchmarkCompile"]; c.BytesPerOp != nil || c.AllocsPerOp != nil || c.NsPerOp != 210042 {
		t.Fatalf("compile entry %+v", c)
	}
	if z := got["BenchmarkZipfSample"]; z.NsPerOp != 11.43 || z.Iterations != 100000000 {
		t.Fatalf("zipf entry %+v", z)
	}
	// The duplicate across packages survives with a #2 suffix.
	if d := got["BenchmarkRunTrial#2"]; d.NsPerOp != 2000000 {
		t.Fatalf("duplicate entry %+v", d)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmarkBroken abc def\nok\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed garbage: %v", got)
	}
}

// TestParseSkipsMalformedLines pins the resilience contract: corrupt
// benchmark lines are skipped with a warning, and every healthy line —
// before or after the corruption — still lands in the output. An
// aborted archive job used to lose the whole run to one torn line.
func TestParseSkipsMalformedLines(t *testing.T) {
	for name, tc := range map[string]struct {
		in        string
		wantNames string
		wantWarns int
	}{
		"bad ns/op value": {
			in:        "BenchmarkGood-8 100 5 ns/op\nBenchmarkBad-8 100 xx ns/op\nBenchmarkAlso-8 10 7 ns/op\n",
			wantNames: "BenchmarkAlso,BenchmarkGood",
			wantWarns: 1,
		},
		"bad iteration count": {
			in:        "BenchmarkBad-8 abc 5 ns/op extra junk\nBenchmarkGood-8 100 5 ns/op\n",
			wantNames: "BenchmarkGood",
			wantWarns: 1,
		},
		"truncated line": {
			in:        "BenchmarkCut-8 100\nBenchmarkGood-8 100 5 ns/op\n",
			wantNames: "BenchmarkGood",
			wantWarns: 1,
		},
		"bad B/op": {
			in:        "BenchmarkBad-8 100 5 ns/op ?? B/op\nBenchmarkGood-8 100 5 ns/op 16 B/op\n",
			wantNames: "BenchmarkGood",
			wantWarns: 1,
		},
		"bad allocs/op": {
			in:        "BenchmarkBad-8 100 5 ns/op 16 B/op NaNish allocs/op\nBenchmarkGood-8 100 5 ns/op\n",
			wantNames: "BenchmarkGood",
			wantWarns: 1,
		},
		"interleaved panic output": {
			in: "BenchmarkGood-8 100 5 ns/op\npanic: runtime error: index out of range\n" +
				"goroutine 1 [running]:\nBenchmarkLater-8 10 9 ns/op\n",
			wantNames: "BenchmarkGood,BenchmarkLater",
			wantWarns: 0,
		},
		"no metrics at all": {
			in:        "BenchmarkOdd-8 100 5 widgets/op\nBenchmarkGood-8 100 5 ns/op\n",
			wantNames: "BenchmarkGood",
			wantWarns: 0, // well-formed line, just no ns/op: silently not a result
		},
	} {
		var warns strings.Builder
		got, err := parse(strings.NewReader(tc.in), &warns)
		if err != nil {
			t.Errorf("%s: parse aborted: %v", name, err)
			continue
		}
		if names := strings.Join(sortedNames(got), ","); names != tc.wantNames {
			t.Errorf("%s: parsed %q, want %q", name, names, tc.wantNames)
		}
		if n := strings.Count(warns.String(), "benchjson: line"); n != tc.wantWarns {
			t.Errorf("%s: %d warnings, want %d:\n%s", name, n, tc.wantWarns, warns.String())
		}
	}
}

// TestWarnTruncatesEcho keeps warning lines bounded even when the
// corrupt input line is enormous.
func TestWarnTruncatesEcho(t *testing.T) {
	var w strings.Builder
	warn(&w, 3, "test", strings.Repeat("x", 10_000))
	if len(w.String()) > 200 {
		t.Fatalf("warning echoes %d bytes", len(w.String()))
	}
}
