// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON map (benchmark name → ns/op, B/op, allocs/op,
// iterations), so CI can archive a structured perf trajectory next to
// the benchstat-friendly text artifact and future PRs can diff numbers
// programmatically:
//
//	go test -bench . -benchtime=1x -run '^$' ./... | benchjson > BENCH_$SHA.json
//
// Malformed or truncated benchmark lines — an interrupted run, an OOM
// kill mid-line, interleaved panic output — are skipped with a warning
// on stderr rather than aborting: a perf archive with one corrupt line
// should still yield every other result.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	Extra       []string `json:"extra,omitempty"` // unrecognized metric tokens, verbatim
}

func main() {
	out, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark lines ("BenchmarkX-8   10   123 ns/op ...")
// from bench output, ignoring everything else (pkg headers, PASS/ok).
// A line that looks like a benchmark but carries an unparseable value
// is skipped with a warning to warnw — only I/O errors abort the run.
// Duplicate names (the same benchmark across packages or repeated runs)
// get "#2", "#3", ... suffixes, mirroring benchstat's disambiguation.
func parse(r io.Reader, warnw io.Writer) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		f := strings.Fields(sc.Text())
		if len(f) == 0 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		if len(f) < 4 {
			warn(warnw, lineno, "truncated benchmark line", sc.Text())
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			warn(warnw, lineno, "bad iteration count", sc.Text())
			continue
		}
		e := Entry{Iterations: iters}
		seen, bad := false, false
		for i := 2; i+1 < len(f) && !bad; i += 2 {
			val, unit := f[i], f[i+1]
			switch unit {
			case "ns/op":
				if e.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
					warn(warnw, lineno, "bad ns/op value", sc.Text())
					bad = true
				}
				seen = true
			case "B/op":
				b, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					warn(warnw, lineno, "bad B/op value", sc.Text())
					bad = true
					break
				}
				e.BytesPerOp = &b
			case "allocs/op":
				a, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					warn(warnw, lineno, "bad allocs/op value", sc.Text())
					bad = true
					break
				}
				e.AllocsPerOp = &a
			default:
				e.Extra = append(e.Extra, val+" "+unit)
			}
		}
		if bad || !seen {
			continue
		}
		name := f[0]
		// Strip the GOMAXPROCS suffix ("-8") for stable names across hosts.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		key := name
		for n := 2; ; n++ {
			if _, dup := out[key]; !dup {
				break
			}
			key = fmt.Sprintf("%s#%d", name, n)
		}
		out[key] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// warn reports one skipped line.
func warn(w io.Writer, lineno int, why, line string) {
	if w == nil {
		return
	}
	const maxEcho = 120
	if len(line) > maxEcho {
		line = line[:maxEcho] + "…"
	}
	fmt.Fprintf(w, "benchjson: line %d skipped (%s): %s\n", lineno, why, line)
}

// sortedNames is kept for tests (stable listing of parsed benchmarks).
func sortedNames(m map[string]Entry) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
