// Command linkcheck validates the repository's markdown cross-links: it
// scans the given files (and, recursively, directories) for inline
// links and checks that every relative target resolves to an existing
// file — with fragment targets checked against the destination's
// headings. External (http/https/mailto) links are reported but not
// fetched, keeping the check hermetic for CI. Exit status 1 when any
// link is broken.
//
// Usage:
//
//	go run ./cmd/linkcheck README.md docs
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links [text](target), skipping images
// by stripping the leading ! at match time.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^()\s]+)\)`)

// headingRe matches ATX headings, whose normalized text forms the
// anchor namespace of a file.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"README.md", "docs"}
	}
	var files []string
	for _, arg := range args {
		fi, err := os.Stat(arg)
		if err != nil {
			fail("%v", err)
		}
		if !fi.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return err
		})
		if err != nil {
			fail("%v", err)
		}
	}
	broken, external, checked := 0, 0, 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fail("%v", err)
		}
		for _, m := range linkRe.FindAllStringSubmatchIndex(string(data), -1) {
			if m[0] > 0 && data[m[0]-1] == '!' {
				continue // image
			}
			target := string(data[m[2]:m[3]])
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				external++
				continue
			}
			checked++
			if msg := checkRelative(file, target); msg != "" {
				fmt.Fprintf(os.Stderr, "linkcheck: %s: %s\n", file, msg)
				broken++
			}
		}
	}
	fmt.Printf("linkcheck: %d files, %d relative links checked, %d external skipped, %d broken\n",
		len(files), checked, external, broken)
	if broken > 0 {
		os.Exit(1)
	}
}

// checkRelative resolves target against the linking file and returns a
// diagnostic when the destination (or its heading fragment) is missing.
func checkRelative(from, target string) string {
	path, frag, _ := strings.Cut(target, "#")
	dest := from
	if path != "" {
		dest = filepath.Join(filepath.Dir(from), path)
		if _, err := os.Stat(dest); err != nil {
			return fmt.Sprintf("broken link %q (%s does not exist)", target, dest)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(dest, ".md") {
		return "" // fragments into non-markdown files are not checkable
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	for _, h := range headingRe.FindAllStringSubmatch(string(data), -1) {
		if anchorOf(h[1]) == strings.ToLower(frag) {
			return ""
		}
	}
	return fmt.Sprintf("broken fragment %q (no matching heading in %s)", target, dest)
}

// anchorOf normalizes a heading to its GitHub-style anchor: lower case,
// punctuation dropped (ASCII and Unicode alike — an em-dash vanishes,
// its flanking spaces both become hyphens), spaces to hyphens.
func anchorOf(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_',
			unicode.IsLetter(r), unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}

// fail prints a fatal diagnostic and exits non-zero.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "linkcheck: "+format+"\n", args...)
	os.Exit(1)
}
