package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAnchorOf(t *testing.T) {
	for heading, want := range map[string]string{
		"Layer map":                       "layer-map",
		"Compile: everything, once":       "compile-everything-once",
		"PR 4 — tile-bucketed (r=8)":      "pr-4--tile-bucketed-r8",
		"  Trailing hashes  ":             "trailing-hashes",
		"Streaming link sketch (`X.Y`)":   "streaming-link-sketch-xy",
		"What the golden matrices freeze": "what-the-golden-matrices-freeze",
	} {
		if got := anchorOf(heading); got != want {
			t.Errorf("anchorOf(%q) = %q, want %q", heading, got, want)
		}
	}
}

func TestCheckRelative(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.md")
	b := filepath.Join(dir, "b.md")
	if err := os.WriteFile(a, []byte("# Top\n\nsee [b](b.md) and [sec](b.md#real-section)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("## Real section\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for target, wantBroken := range map[string]bool{
		"b.md":              false,
		"b.md#real-section": false,
		"b.md#no-such":      true,
		"missing.md":        true,
		"#top":              false,
		"#absent":           true,
	} {
		msg := checkRelative(a, target)
		if (msg != "") != wantBroken {
			t.Errorf("checkRelative(a.md, %q) = %q, want broken=%v", target, msg, wantBroken)
		}
	}
}
