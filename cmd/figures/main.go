// Command figures regenerates the paper's tables and figures as CSV files
// plus a markdown summary on stdout.
//
// Examples:
//
//	figures -list
//	figures -id fig1 -preset quick -out results/
//	figures -id all -preset paper -out results/   # hours of CPU
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/experiments"
)

func main() {
	var (
		id     = flag.String("id", "all", "experiment id or 'all' (see -list)")
		preset = flag.String("preset", "quick", "quick or paper")
		trials = flag.Int("trials", 0, "override trials per point (0 = preset default)")
		out    = flag.String("out", "results", "output directory for CSV files")
		seed   = flag.Uint64("seed", 2017, "root random seed")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, i := range repro.ExperimentIDs() {
			fmt.Println(i)
		}
		return
	}
	p, err := experiments.ParsePreset(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	opt := repro.ExpOptions{Preset: p, Trials: *trials, Seed: *seed}

	ids := []string{*id}
	if *id == "all" {
		ids = repro.ExperimentIDs()
	}
	if err := run(ids, opt, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// run executes each experiment, writes <out>/<id>.csv and prints the
// markdown summary to stdout.
func run(ids []string, opt repro.ExpOptions, out string, stdout io.Writer) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, eid := range ids {
		start := time.Now()
		table, err := repro.Experiment(eid, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", eid, err)
		}
		path := filepath.Join(out, eid+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := table.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n(%s, wrote %s)\n\n", table.Markdown(), time.Since(start).Round(time.Millisecond), path)
	}
	return nil
}
