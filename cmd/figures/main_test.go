package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/experiments"
)

// TestRunWritesCSV smoke-tests the figure pipeline end to end: the
// quick preset (single trial) must write one CSV per experiment id into
// the output directory with the expected header row, and print a
// markdown summary per experiment.
func TestRunWritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	// The two fastest experiment ids under -preset quick -trials 1,
	// with their pinned CSV headers.
	headers := map[string]string{
		"example3":  "series,n,max load,ci95",
		"placement": "series,radius,max load,ci95,cost,escalated,uncached",
	}
	ids := make([]string, 0, len(headers))
	for id := range headers {
		ids = append(ids, id)
	}

	dir := t.TempDir()
	var stdout bytes.Buffer
	opt := repro.ExpOptions{Preset: experiments.Quick, Trials: 1, Seed: 2017}
	if err := run(ids, opt, dir, &stdout); err != nil {
		t.Fatal(err)
	}

	for id, header := range headers {
		f, err := os.Open(filepath.Join(dir, id+".csv"))
		if err != nil {
			t.Fatalf("%s: missing CSV: %v", id, err)
		}
		sc := bufio.NewScanner(f)
		if !sc.Scan() {
			t.Fatalf("%s: empty CSV", id)
		}
		if got := sc.Text(); got != header {
			t.Errorf("%s: header %q, want %q", id, got, header)
		}
		rows := 0
		for sc.Scan() {
			rows++
		}
		f.Close()
		if rows == 0 {
			t.Errorf("%s: CSV has a header but no data rows", id)
		}
	}
	if out := stdout.String(); strings.Count(out, "wrote ") != len(ids) {
		t.Errorf("stdout summarized %d experiments, want %d:\n%s",
			strings.Count(out, "wrote "), len(ids), out)
	}
}

// TestRunUnknownID checks the error path surfaces the offending id.
func TestRunUnknownID(t *testing.T) {
	opt := repro.ExpOptions{Preset: experiments.Quick, Trials: 1, Seed: 2017}
	err := run([]string{"no-such-figure"}, opt, t.TempDir(), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "no-such-figure") {
		t.Fatalf("err = %v, want mention of the unknown id", err)
	}
}
